// Multimedia: the interactive-multimedia scenario of Figure 2. One
// participant streams three media to another over a lossy ATM network:
//
//   - video: no flow control, no error control — late frames are
//     useless, so losses are tolerated;
//   - audio: the same unreliable configuration;
//   - text/data: credit-based flow control + selective-repeat error
//     control — every byte must arrive.
//
// The example shows NCS's per-connection QoS selection doing its job:
// the media streams lose frames but never stall, while the data channel
// delivers everything intact across the same lossy fabric.
//
// Run with: go run ./examples/multimedia
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ncs"
)

const (
	videoFrames = 60
	audioFrames = 120
	dataBlocks  = 20
	cellLoss    = 0.02
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := ncs.NewNetwork()
	defer nw.Close()

	sender, err := nw.NewSystem("participant-1")
	if err != nil {
		return err
	}
	receiver, err := nw.NewSystem("participant-2")
	if err != nil {
		return err
	}

	lossy := ncs.QoS{CellLossRate: cellLoss, Seed: 42}

	// Three connections, three QoS configurations (Figure 2).
	video, err := sender.Connect("participant-2", ncs.Options{
		Interface:    ncs.ACI,
		FlowControl:  ncs.FlowNone,
		ErrorControl: ncs.ErrorNone,
		SDUSize:      1024,
		QoS:          lossy,
	})
	if err != nil {
		return err
	}
	audio, err := sender.Connect("participant-2", ncs.Options{
		Interface:    ncs.ACI,
		FlowControl:  ncs.FlowNone,
		ErrorControl: ncs.ErrorNone,
		SDUSize:      256,
		QoS:          lossy,
	})
	if err != nil {
		return err
	}
	data, err := sender.Connect("participant-2", ncs.Options{
		Interface:    ncs.ACI,
		FlowControl:  ncs.FlowCredit,
		ErrorControl: ncs.ErrorSelectiveRepeat,
		SDUSize:      1024,
		AckTimeout:   30 * time.Millisecond,
		QoS:          lossy,
	})
	if err != nil {
		return err
	}

	videoIn, err := receiver.Accept()
	if err != nil {
		return err
	}
	audioIn, err := receiver.Accept()
	if err != nil {
		return err
	}
	dataIn, err := receiver.Accept()
	if err != nil {
		return err
	}

	type streamStats struct {
		delivered, lostFrames, lostSDUs int
	}
	collect := func(conn *ncs.Connection, frames int, stats *streamStats, done chan<- struct{}) {
		defer close(done)
		for i := 0; i < frames; i++ {
			m, err := conn.RecvMessage()
			if err != nil {
				return
			}
			stats.delivered++
			stats.lostSDUs += m.Lost
		}
	}

	var vStats, aStats, dStats streamStats
	vDone := make(chan struct{})
	aDone := make(chan struct{})
	dDone := make(chan struct{})

	// Receiver side: media streams read with a deadline (a frame whose
	// end segment vanished is skipped at the playout deadline); the
	// data stream reads reliably.
	go func() {
		defer close(vDone)
		for {
			m, err := videoIn.RecvMessageTimeout(250 * time.Millisecond)
			if err != nil {
				return
			}
			vStats.delivered++
			vStats.lostSDUs += m.Lost
		}
	}()
	go func() {
		defer close(aDone)
		for {
			m, err := audioIn.RecvMessageTimeout(250 * time.Millisecond)
			if err != nil {
				return
			}
			aStats.delivered++
			aStats.lostSDUs += m.Lost
		}
	}()
	go collect(dataIn, dataBlocks, &dStats, dDone)

	// Sender side: pump the three streams concurrently.
	videoErr := make(chan error, 1)
	go func() {
		frame := bytes.Repeat([]byte{0xF1}, 8*1024)
		for i := 0; i < videoFrames; i++ {
			if err := video.Send(frame); err != nil {
				videoErr <- err
				return
			}
		}
		videoErr <- nil
	}()
	audioErr := make(chan error, 1)
	go func() {
		sample := bytes.Repeat([]byte{0xA0}, 1024)
		for i := 0; i < audioFrames; i++ {
			if err := audio.Send(sample); err != nil {
				audioErr <- err
				return
			}
		}
		audioErr <- nil
	}()
	dataErr := make(chan error, 1)
	go func() {
		block := bytes.Repeat([]byte("important-document"), 500) // ~9 KB
		for i := 0; i < dataBlocks; i++ {
			if err := data.Send(block); err != nil {
				dataErr <- err
				return
			}
		}
		dataErr <- nil
	}()

	for _, ch := range []chan error{videoErr, audioErr, dataErr} {
		if err := <-ch; err != nil {
			return err
		}
	}
	<-dDone // the data stream must deliver everything
	<-vDone // media streams end at their playout deadline
	<-aDone

	fmt.Printf("video: %d/%d frames delivered, %d segments lost inside frames (unreliable, cell loss %.0f%%)\n",
		vStats.delivered, videoFrames, vStats.lostSDUs, cellLoss*100)
	fmt.Printf("audio: %d/%d frames delivered, %d segments lost (unreliable)\n",
		aStats.delivered, audioFrames, aStats.lostSDUs)
	fmt.Printf("data : %d/%d blocks delivered (selective repeat: no loss)\n",
		dStats.delivered, dataBlocks)

	if dStats.delivered != dataBlocks {
		return fmt.Errorf("reliable stream lost data: %d/%d", dStats.delivered, dataBlocks)
	}
	fmt.Println("per-connection QoS: media tolerated loss, data stayed intact.")
	return nil
}
