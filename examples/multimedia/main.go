// Multimedia: the interactive-multimedia scenario of Figure 2. One
// participant streams three media to another over a lossy ATM network —
// on ONE connection, with each medium riding its own stream:
//
//   - control/data: the connection's default stream 0 (plain Send /
//     RecvMessage — exactly the pre-streams API);
//   - video: a dedicated stream carrying bulky 8KB frames;
//   - audio: a second stream of small, frequent samples.
//
// Every stream shares the connection's selective-repeat error control
// and credit-based flow control, but each has its OWN credit window:
// the bulky video flow can exhaust only its own credits, so audio
// samples and control blocks keep flowing even while video floods the
// link — and even while the viewer lags. The receiver deliberately
// delays draining video for a moment to show that an unconsumed stream
// parks by itself without stalling its siblings.
//
// (Earlier revisions of this example worked around the single-flow
// delivery model with three separate connections, one per medium. The
// stream mux makes that plumbing unnecessary.)
//
// Run with: go run ./examples/multimedia
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"ncs"
)

const (
	videoFrames = 60
	audioFrames = 120
	dataBlocks  = 20
	cellLoss    = 0.02
	videoLag    = 150 * time.Millisecond // how long the viewer ignores video
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := ncs.NewNetwork()
	defer nw.Close()

	sender, err := nw.NewSystem("participant-1")
	if err != nil {
		return err
	}
	receiver, err := nw.NewSystem("participant-2")
	if err != nil {
		return err
	}

	// One connection for the whole session: reliable (selective repeat
	// recovers the fabric's cell loss for every stream) and credit flow
	// controlled per stream.
	conn, err := sender.Connect("participant-2", ncs.Options{
		Interface:    ncs.ACI,
		FlowControl:  ncs.FlowCredit,
		ErrorControl: ncs.ErrorSelectiveRepeat,
		SDUSize:      1024,
		AckTimeout:   30 * time.Millisecond,
		QoS:          ncs.QoS{CellLossRate: cellLoss, Seed: 42},
	})
	if err != nil {
		return err
	}
	peer, err := receiver.Accept()
	if err != nil {
		return err
	}

	// The sender opens one stream per medium; control rides stream 0.
	video, err := conn.OpenStream()
	if err != nil {
		return err
	}
	audio, err := conn.OpenStream()
	if err != nil {
		return err
	}

	type mediaStats struct {
		delivered atomic.Int64
		done      chan struct{}
	}
	newStats := func() *mediaStats { return &mediaStats{done: make(chan struct{})} }
	vStats, aStats, dStats := newStats(), newStats(), newStats()

	drain := func(recv func() ([]byte, error), frames int, stats *mediaStats) {
		defer close(stats.done)
		for i := 0; i < frames; i++ {
			if _, err := recv(); err != nil {
				return
			}
			stats.delivered.Add(1)
		}
	}

	// Receiver side: accept the two media streams (identified by their
	// IDs — stream IDs are connection-scoped and visible on both ends),
	// then drain each medium on its own goroutine. Video is left
	// unconsumed for videoLag first: its frames park on its own stream
	// and its credit window simply stops refilling, without blocking
	// audio or control.
	// duringLag snapshots how much audio and data arrived while the
	// viewer was ignoring video — the isolation evidence.
	var audioDuringLag, dataDuringLag atomic.Int64
	acceptErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, err := peer.AcceptStreamTimeout(5 * time.Second)
			if err != nil {
				acceptErr <- err
				return
			}
			acceptErr <- nil
			switch st.ID() {
			case video.ID():
				time.Sleep(videoLag) // the lagging viewer
				audioDuringLag.Store(aStats.delivered.Load())
				dataDuringLag.Store(dStats.delivered.Load())
				drain(st.Recv, videoFrames, vStats)
			case audio.ID():
				drain(st.Recv, audioFrames, aStats)
			}
		}()
	}
	go drain(peer.Recv, dataBlocks, dStats)

	// Sender side: pump the three media concurrently.
	pump := func(send func([]byte) error, payload []byte, frames int) chan error {
		ch := make(chan error, 1)
		go func() {
			for i := 0; i < frames; i++ {
				if err := send(payload); err != nil {
					ch <- err
					return
				}
			}
			ch <- nil
		}()
		return ch
	}
	videoErr := pump(video.Send, bytes.Repeat([]byte{0xF1}, 8*1024), videoFrames)
	audioErr := pump(audio.Send, bytes.Repeat([]byte{0xA0}, 1024), audioFrames)
	dataErr := pump(conn.Send, bytes.Repeat([]byte("important-document"), 500), dataBlocks)

	for i := 0; i < 2; i++ {
		if err := <-acceptErr; err != nil {
			return err
		}
	}
	for _, ch := range []chan error{videoErr, audioErr, dataErr} {
		if err := <-ch; err != nil {
			return err
		}
	}
	<-vStats.done
	<-aStats.done
	<-dStats.done

	fmt.Printf("video: %d/%d frames on stream %d (viewer lagged %v; frames parked on video's own credits)\n",
		vStats.delivered.Load(), videoFrames, video.ID(), videoLag)
	fmt.Printf("audio: %d/%d samples on stream %d (%d arrived while the viewer lagged)\n",
		aStats.delivered.Load(), audioFrames, audio.ID(), audioDuringLag.Load())
	fmt.Printf("data : %d/%d blocks on stream 0 (%d arrived while the viewer lagged)\n",
		dStats.delivered.Load(), dataBlocks, dataDuringLag.Load())

	for _, s := range []struct {
		name  string
		stats *mediaStats
		want  int
	}{
		{"video", vStats, videoFrames},
		{"audio", aStats, audioFrames},
		{"data", dStats, dataBlocks},
	} {
		if got := int(s.stats.delivered.Load()); got != s.want {
			return fmt.Errorf("%s stream lost data: %d/%d", s.name, got, s.want)
		}
	}
	// The isolation claim: while the viewer ignored video — its frames
	// parked, its credit window spent — the sibling flows kept moving.
	// (On this fabric every flow also pays selective-repeat recovery
	// rounds for the cell loss; that pacing is loss recovery, shared
	// with the old three-connection layout, not head-of-line blocking.)
	if audioDuringLag.Load() == 0 || dataDuringLag.Load() == 0 {
		return fmt.Errorf("siblings stalled behind the unconsumed video stream (audio %d, data %d during lag)",
			audioDuringLag.Load(), dataDuringLag.Load())
	}
	fmt.Println("three media, one connection: per-stream credits kept every flow independent.")
	return nil
}
