// Cluster: the heterogeneous environment of Figure 3. Three homogeneous
// clusters each use the communication interface their platform supports
// best — HPI inside a tightly coupled cluster, ACI inside an ATM-attached
// cluster — while the clusters interconnect portably over SCI. A
// process group spanning all nine nodes then runs a broadcast, a global
// reduction, and barriers over the spanning-tree multicast.
//
// Run with: go run ./examples/cluster
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"ncs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The ATM cluster rides a small switched fabric with capacity
	// management: two switches joined by an OC-3-class trunk.
	topo := ncs.NewTopology()
	topo.AddSwitch("atm-sw1").AddSwitch("atm-sw2")
	if err := topo.Link("atm-sw1", "atm-sw2", ncs.LinkSpec{
		Delay:    500 * time.Microsecond,
		CellRate: 365_000, // ≈155 Mbit/s of 53-byte cells
	}); err != nil {
		return err
	}
	if err := topo.AttachHost("atm-probe-a", "atm-sw1"); err != nil {
		return err
	}
	if err := topo.AttachHost("atm-probe-b", "atm-sw2"); err != nil {
		return err
	}
	nw := ncs.NewNetworkWithTopology(topo)
	defer nw.Close()

	// Three clusters of three nodes (Figure 3's P1..Pn per cluster).
	clusters := map[string]ncs.Options{
		"trap": {Interface: ncs.HPI}, // homogeneous cluster 2 (Trap)
		"atm": { // homogeneous cluster 3 (native ATM via the fabric)
			Interface: ncs.ACI,
			QoS:       ncs.QoS{PeakCellRate: 50_000},
		},
		"socket": {Interface: ncs.SCI}, // homogeneous cluster 1 (Socket)
	}

	// Intra-cluster traffic: each cluster uses its own interface.
	for name, opts := range clusters {
		a, err := nw.NewSystem(name + "-probe-a")
		if err != nil {
			return err
		}
		b, err := nw.NewSystem(name + "-probe-b")
		if err != nil {
			return err
		}
		conn, err := a.Connect(name+"-probe-b", opts)
		if err != nil {
			return err
		}
		peer, err := b.Accept()
		if err != nil {
			return err
		}
		go func() {
			if m, err := peer.Recv(); err == nil {
				_ = peer.Send(m)
			}
		}()
		if err := conn.Send([]byte("intra-cluster ping")); err != nil {
			return err
		}
		if _, err := conn.Recv(); err != nil {
			return err
		}
		fmt.Printf("cluster %-7s intra-cluster echo over %v ok\n",
			name, conn.Options().Interface)
		conn.Close()
		peer.Close()
	}

	// Inter-cluster group: all nodes join one process group over SCI,
	// the portable interconnect of Figure 3.
	var names []string
	for _, cluster := range []string{"socket", "trap", "atm"} {
		for i := 0; i < 3; i++ {
			names = append(names, fmt.Sprintf("%s-%d", cluster, i))
		}
	}
	groups, err := ncs.BuildGroup(nw, names, ncs.Options{Interface: ncs.SCI},
		ncs.MulticastSpanningTree)
	if err != nil {
		return err
	}

	// Broadcast a work descriptor from rank 0, locally "process" it,
	// reduce the partial results, and barrier between phases.
	var wg sync.WaitGroup
	results := make([]uint64, len(groups))
	errs := make([]error, len(groups))
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *ncs.Group) {
			defer wg.Done()
			errs[i] = member(g, results)
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", i, err)
		}
	}
	fmt.Printf("group of %d nodes across 3 clusters: broadcast + reduce + barrier ok\n",
		len(groups))
	fmt.Printf("global sum of rank contributions: %d (want %d)\n",
		results[0], len(groups)*(len(groups)+1)/2)
	return nil
}

func member(g *ncs.Group, results []uint64) error {
	// Phase 1: rank 0 broadcasts the work unit.
	var work []byte
	if g.Rank() == 0 {
		work = []byte("work-unit-42")
	}
	work, err := g.Broadcast(0, work)
	if err != nil {
		return err
	}
	if string(work) != "work-unit-42" {
		return fmt.Errorf("rank %d received wrong work unit %q", g.Rank(), work)
	}
	if err := g.Barrier(); err != nil {
		return err
	}

	// Phase 2: contribute rank+1 and reduce the global sum everywhere.
	contrib := binary.BigEndian.AppendUint64(nil, uint64(g.Rank()+1))
	sum, err := g.AllReduce(contrib, func(a, b []byte) []byte {
		return binary.BigEndian.AppendUint64(nil,
			binary.BigEndian.Uint64(a)+binary.BigEndian.Uint64(b))
	})
	if err != nil {
		return err
	}
	if g.Rank() == 0 {
		results[0] = binary.BigEndian.Uint64(sum)
	}
	return g.Barrier()
}
