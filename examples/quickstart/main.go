// Quickstart: two NCS systems exchange messages over each of the three
// communication interfaces, then once more over the §4.2 fast path.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ncs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := ncs.NewNetwork()
	defer nw.Close()

	alice, err := nw.NewSystem("alice")
	if err != nil {
		return err
	}
	bob, err := nw.NewSystem("bob")
	if err != nil {
		return err
	}

	configs := []struct {
		name string
		opts ncs.Options
	}{
		{"SCI (sockets)", ncs.Options{Interface: ncs.SCI}},
		{"ACI (ATM virtual circuit)", ncs.Options{Interface: ncs.ACI}},
		{"HPI (in-process)", ncs.Options{Interface: ncs.HPI}},
		{"HPI fast path (§4.2)", ncs.Options{Interface: ncs.HPI, FastPath: true}},
	}

	for _, cfg := range configs {
		conn, err := alice.Connect("bob", cfg.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		peer, err := bob.Accept()
		if err != nil {
			return err
		}

		// Echo server on bob's side.
		go func() {
			for {
				m, err := peer.Recv()
				if err != nil {
					return
				}
				if err := peer.Send(m); err != nil {
					return
				}
			}
		}()

		msg := []byte("hello through " + cfg.name)
		start := time.Now()
		if err := conn.Send(msg); err != nil {
			return err
		}
		got, err := conn.Recv()
		if err != nil {
			return err
		}
		fmt.Printf("%-28s round trip %8v  %q\n", cfg.name, time.Since(start), got)

		conn.Close()
		peer.Close()
	}
	return nil
}
