// Jacobi: a classic HPDC kernel — iterative solution of Laplace's
// equation on a 2-D grid, row-partitioned across four NCS processes.
// Each iteration exchanges halo rows with neighbours over point-to-point
// NCS connections and agrees on convergence with an AllReduce over the
// spanning-tree multicast. This is the kind of fine-grained,
// communication-heavy application the paper's thread-based programming
// paradigm targets (§2).
//
// Run with: go run ./examples/jacobi
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sync"

	"ncs"
)

const (
	workers   = 4
	gridRows  = 64 // per worker
	gridCols  = 128
	maxIters  = 500
	tolerance = 5e-2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := ncs.NewNetwork()
	defer nw.Close()

	names := make([]string, workers)
	for i := range names {
		names[i] = fmt.Sprintf("jacobi-%d", i)
	}
	// The group provides the AllReduce; halo exchange reuses its mesh
	// via dedicated neighbour connections below.
	groups, err := ncs.BuildGroup(nw, names, ncs.Options{Interface: ncs.HPI},
		ncs.MulticastSpanningTree)
	if err != nil {
		return err
	}

	// Dedicated halo connections between vertical neighbours.
	type haloPair struct{ up, down *ncs.Connection }
	halos := make([]haloPair, workers)
	for i := 0; i < workers-1; i++ {
		sys, err := nw.NewSystem(fmt.Sprintf("halo-%d", i))
		if err != nil {
			return err
		}
		peerSys, err := nw.NewSystem(fmt.Sprintf("halo-%d-peer", i))
		if err != nil {
			return err
		}
		conn, err := sys.Connect(peerSys.Name(), ncs.Options{Interface: ncs.HPI})
		if err != nil {
			return err
		}
		peer, err := peerSys.Accept()
		if err != nil {
			return err
		}
		halos[i].down = conn // worker i sends its bottom row down
		halos[i+1].up = peer // worker i+1 receives from above
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	itersUsed := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			itersUsed[w], errs[w] = worker(w, groups[w], halos[w].up, halos[w].down)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", w, err)
		}
	}
	if itersUsed[0] >= maxIters {
		fmt.Printf("jacobi stopped at the iteration cap (%d) before reaching tol %.0e\n",
			maxIters, tolerance)
	} else {
		fmt.Printf("jacobi converged: %d workers × %d×%d rows, %d iterations, tol %.0e\n",
			workers, gridRows, gridCols, itersUsed[0], tolerance)
	}
	return nil
}

// worker owns rows of the grid; up/down are halo connections to the
// vertical neighbours (nil at the boundary).
func worker(rank int, g *ncs.Group, up, down *ncs.Connection) (int, error) {
	cur := newGrid(rank)
	next := make([][]float64, gridRows)
	for i := range next {
		next[i] = make([]float64, gridCols)
	}
	haloUp := make([]float64, gridCols)   // ghost row above
	haloDown := make([]float64, gridCols) // ghost row below

	for iter := 1; iter <= maxIters; iter++ {
		// Halo exchange: send boundary rows, receive ghosts. Sends run
		// as compute threads so both directions overlap (§2's
		// computation/communication overlap in miniature).
		sendErr := make(chan error, 2)
		pending := 0
		if up != nil {
			pending++
			go func() { sendErr <- up.Send(encodeRow(cur[0])) }()
		}
		if down != nil {
			pending++
			go func() { sendErr <- down.Send(encodeRow(cur[gridRows-1])) }()
		}
		if up != nil {
			row, err := up.Recv()
			if err != nil {
				return iter, err
			}
			decodeRow(row, haloUp)
		}
		if down != nil {
			row, err := down.Recv()
			if err != nil {
				return iter, err
			}
			decodeRow(row, haloDown)
		}
		for i := 0; i < pending; i++ {
			if err := <-sendErr; err != nil {
				return iter, err
			}
		}

		// Stencil update + local residual.
		localMax := 0.0
		for i := 0; i < gridRows; i++ {
			above := haloUp
			if i > 0 {
				above = cur[i-1]
			} else if up == nil {
				above = cur[i] // insulated boundary
			}
			below := haloDown
			if i < gridRows-1 {
				below = cur[i+1]
			} else if down == nil {
				below = cur[i]
			}
			for j := 0; j < gridCols; j++ {
				left, right := j-1, j+1
				if left < 0 {
					left = 0
				}
				if right >= gridCols {
					right = gridCols - 1
				}
				v := 0.25 * (above[j] + below[j] + cur[i][left] + cur[i][right])
				if d := math.Abs(v - cur[i][j]); d > localMax {
					localMax = d
				}
				next[i][j] = v
			}
		}
		cur, next = next, cur

		// Global convergence: max-reduce the residual everywhere.
		buf := binary.BigEndian.AppendUint64(nil, math.Float64bits(localMax))
		global, err := g.AllReduce(buf, maxOp)
		if err != nil {
			return iter, err
		}
		if math.Float64frombits(binary.BigEndian.Uint64(global)) < tolerance {
			return iter, nil
		}
	}
	return maxIters, nil
}

func maxOp(a, b []byte) []byte {
	va := math.Float64frombits(binary.BigEndian.Uint64(a))
	vb := math.Float64frombits(binary.BigEndian.Uint64(b))
	if vb > va {
		va = vb
	}
	return binary.BigEndian.AppendUint64(nil, math.Float64bits(va))
}

// newGrid initialises rank-local rows: a hot left wall drives the flow.
func newGrid(rank int) [][]float64 {
	g := make([][]float64, gridRows)
	for i := range g {
		g[i] = make([]float64, gridCols)
		g[i][0] = 100.0
	}
	return g
}

func encodeRow(row []float64) []byte {
	out := make([]byte, 0, len(row)*8)
	for _, v := range row {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func decodeRow(p []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.BigEndian.Uint64(p[i*8:]))
	}
}
