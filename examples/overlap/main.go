// Overlap: the WAN motivation of the paper's introduction. When the
// propagation delay dwarfs the transmission time — the paper's example
// is 8 µs of transmission against 15 ms of cross-country propagation —
// the only way to keep the processor busy is to overlap computation
// with communication. This example runs the same pipelined workload
// twice over a high-latency link:
//
//  1. synchronously: send a block, wait for the acknowledged result,
//     then compute;
//  2. overlapped: NCS compute threads keep computing while transfers
//     are in flight, the thread-based structure of §2.
//
// Run with: go run ./examples/overlap
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ncs"
)

const (
	blocks    = 8
	blockSize = 4096
	computeMS = 10
	// A WAN-grade one-way propagation delay (the paper's NYNET numbers).
	propagation = 15 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sync, err := measure(false)
	if err != nil {
		return err
	}
	overlapped, err := measure(true)
	if err != nil {
		return err
	}
	fmt.Printf("synchronous : %v\n", sync)
	fmt.Printf("overlapped  : %v\n", overlapped)
	fmt.Printf("speedup     : %.2fx — computation hidden behind %v of propagation\n",
		float64(sync)/float64(overlapped), propagation)
	return nil
}

func measure(overlap bool) (time.Duration, error) {
	nw := ncs.NewNetwork()
	defer nw.Close()

	conn, peer, err := ncs.Pair(nw, "worker", "reducer", ncs.Options{
		Interface: ncs.ACI,
		QoS:       ncs.QoS{Delay: propagation},
		// A WAN pipe needs a deeper credit window than the default: the
		// bandwidth-delay product would otherwise idle the link (§3.3's
		// per-connection flow configuration at work).
		FlowConfig: ncs.FlowConfig{InitialCredits: 32, MaxCredits: 64},
	})
	if err != nil {
		return 0, err
	}

	// The reducer echoes a small result for every block. Replies are
	// sent from their own compute threads: a reliable send blocks until
	// acknowledged, and the reducer should not stall its receive loop
	// on the client's acknowledgment latency.
	go func() {
		for {
			m, err := peer.Recv()
			if err != nil {
				return
			}
			reply := m[:16]
			go func() { _ = peer.Send(reply) }()
		}
	}()

	block := bytes.Repeat([]byte{7}, blockSize)
	compute := func() {
		deadline := time.Now().Add(computeMS * time.Millisecond)
		for time.Now().Before(deadline) {
		}
	}

	start := time.Now()
	if !overlap {
		// Synchronous: each block's round trip serialises with compute.
		for i := 0; i < blocks; i++ {
			if err := conn.Send(block); err != nil {
				return 0, err
			}
			if _, err := conn.Recv(); err != nil {
				return 0, err
			}
			compute()
		}
		return time.Since(start), nil
	}

	// Overlapped: one NCS compute thread per block pipelines the
	// round trips (reliable sends block until acknowledged, so separate
	// threads are what lets their delays overlap), while the main
	// thread computes.
	commErr := make(chan error, 1)
	go func() {
		sendErrs := make(chan error, blocks)
		for i := 0; i < blocks; i++ {
			go func() { sendErrs <- conn.Send(block) }()
		}
		for i := 0; i < blocks; i++ {
			if err := <-sendErrs; err != nil {
				commErr <- err
				return
			}
		}
		for i := 0; i < blocks; i++ {
			if _, err := conn.Recv(); err != nil {
				commErr <- err
				return
			}
		}
		commErr <- nil
	}()
	for i := 0; i < blocks; i++ {
		compute()
	}
	if err := <-commErr; err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
