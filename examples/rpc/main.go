// RPC example: a small key-value store served over NCS.
//
// A server system registers Get/Put/Delete handlers on an RPC server
// and accepts connections; several client systems then hammer it with
// concurrent calls through RPC clients that multiplex every in-flight
// call over one connection each. The last section shows deadline
// handling: a call into a deliberately slow method expires client-side
// and the server skips the stale work.
//
// Requests and responses are framed with ncs.Packer/Unpacker — the
// same external data representation NCS itself frames RPC headers
// with, so the service works unchanged across heterogeneous hosts.
//
// Run with: go run ./examples/rpc
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"ncs"
)

// store is the service state: one mutex-guarded map shared by every
// handler invocation (handlers run concurrently on the server's worker
// pool).
type store struct {
	mu sync.Mutex
	m  map[string][]byte
}

var errNotFound = errors.New("key not found")

func (s *store) get(_ context.Context, req []byte) ([]byte, error) {
	u := ncs.NewUnpacker(req)
	key := u.String()
	if err := u.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	val, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", errNotFound, key)
	}
	return val, nil
}

func (s *store) put(_ context.Context, req []byte) ([]byte, error) {
	u := ncs.NewUnpacker(req)
	key := u.String()
	val := u.Bytes() // Unpacker copies, so the value outlives the call
	if err := u.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.m[key] = val
	s.mu.Unlock()
	return nil, nil
}

func (s *store) delete(_ context.Context, req []byte) ([]byte, error) {
	u := ncs.NewUnpacker(req)
	key := u.String()
	if err := u.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil, nil
}

// putReq frames a Put request: string key, opaque value.
func putReq(key string, val []byte) []byte {
	return ncs.NewPacker().String(key).Bytes(val).Message()
}

// keyReq frames a Get/Delete request: just the string key.
func keyReq(key string) []byte {
	return ncs.NewPacker().String(key).Message()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := ncs.NewNetwork()
	defer nw.Close()

	server, err := nw.NewSystem("kv-server")
	if err != nil {
		return err
	}

	// The service: three named methods over one shared store, dispatched
	// on a 4-worker pool. "slow" exists to demonstrate deadlines.
	kv := &store{m: make(map[string][]byte)}
	srv := ncs.NewServer(ncs.RPCServerOptions{Workers: 4})
	srv.Handle("kv.Get", kv.get)
	srv.Handle("kv.Put", kv.put)
	srv.Handle("kv.Delete", kv.delete)
	srv.Handle("slow", func(ctx context.Context, req []byte) ([]byte, error) {
		select {
		case <-time.After(time.Second):
			return req, nil
		case <-ctx.Done(): // the caller's propagated deadline
			return nil, ctx.Err()
		}
	})
	defer srv.Shutdown()

	// Accept loop: every client connection is handed to the same server,
	// which demultiplexes all of them onto its worker pool.
	go func() {
		for {
			conn, err := server.Accept()
			if err != nil {
				return
			}
			srv.ServeConn(conn)
		}
	}()

	// Three client systems, each with its own connection and RPC client,
	// each running several concurrent goroutines.
	const clients, goroutines, keysEach = 3, 4, 5
	var wg sync.WaitGroup
	errCh := make(chan error, clients*goroutines)
	for ci := 0; ci < clients; ci++ {
		sys, err := nw.NewSystem(fmt.Sprintf("kv-client-%d", ci))
		if err != nil {
			return err
		}
		conn, err := sys.Connect("kv-server", ncs.Options{Interface: ncs.SCI})
		if err != nil {
			return err
		}
		cli := ncs.NewClient(conn)
		defer cli.Close()

		for gi := 0; gi < goroutines; gi++ {
			wg.Add(1)
			go func(ci, gi int) {
				defer wg.Done()
				ctx := context.Background()
				for k := 0; k < keysEach; k++ {
					key := fmt.Sprintf("client%d/g%d/key%d", ci, gi, k)
					val := []byte(fmt.Sprintf("value-%d-%d-%d", ci, gi, k))
					if _, err := cli.Call(ctx, "kv.Put", putReq(key, val)); err != nil {
						errCh <- fmt.Errorf("put %s: %w", key, err)
						return
					}
					got, err := cli.Call(ctx, "kv.Get", keyReq(key))
					if err != nil {
						errCh <- fmt.Errorf("get %s: %w", key, err)
						return
					}
					if string(got) != string(val) {
						errCh <- fmt.Errorf("get %s: got %q want %q", key, got, val)
						return
					}
				}
			}(ci, gi)
		}
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}
	total := clients * goroutines * keysEach
	fmt.Printf("stored and read back %d keys from %d clients x %d goroutines\n",
		total, clients, goroutines)

	// Application errors propagate with the failing method attached.
	probe, err := nw.NewSystem("kv-probe")
	if err != nil {
		return err
	}
	conn, err := probe.Connect("kv-server", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		return err
	}
	cli := ncs.NewClient(conn)
	defer cli.Close()

	if _, err := cli.Call(context.Background(), "kv.Delete", keyReq("client0/g0/key0")); err != nil {
		return err
	}
	_, err = cli.Call(context.Background(), "kv.Get", keyReq("client0/g0/key0"))
	var se *ncs.RPCServerError
	if !errors.As(err, &se) {
		return fmt.Errorf("expected a server error after delete, got %v", err)
	}
	fmt.Printf("deleted key now fails with: %v\n", err)

	// Deadline handling: the slow method takes 1s, the caller gives it
	// 50ms. The call fails fast and the budget travels in the header, so
	// the server abandons the work too.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.Call(ctx, "slow", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("expected DeadlineExceeded from slow call, got %v", err)
	}
	fmt.Printf("slow call expired after %v: %v\n", time.Since(start).Round(time.Millisecond), err)
	return nil
}
