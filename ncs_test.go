package ncs_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncs"
)

func TestQuickstartFlow(t *testing.T) {
	nw := ncs.NewNetwork()
	defer nw.Close()

	conn, peer, err := ncs.Pair(nw, "alice", "bob", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := conn.Send([]byte("hello, NCS")); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	msg, err := peer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "hello, NCS" {
		t.Fatalf("got %q", msg)
	}
}

func TestPublicOptionsMatrix(t *testing.T) {
	cases := []ncs.Options{
		{Interface: ncs.SCI},
		{Interface: ncs.HPI, FastPath: true},
		{Interface: ncs.ACI, FlowControl: ncs.FlowWindow, ErrorControl: ncs.ErrorGoBackN},
		{Interface: ncs.ACI, FlowControl: ncs.FlowCredit, ErrorControl: ncs.ErrorSelectiveRepeat,
			QoS: ncs.QoS{PeakCellRate: 500_000}},
	}
	for i, opts := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			nw := ncs.NewNetwork()
			defer nw.Close()
			conn, peer, err := ncs.Pair(nw, "a", "b", opts)
			if err != nil {
				t.Fatal(err)
			}
			msg := bytes.Repeat([]byte{7}, 9000)
			errCh := make(chan error, 1)
			go func() { errCh <- conn.Send(msg) }()
			got, err := peer.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatal("mismatch")
			}
		})
	}
}

func TestPublicGroupAPI(t *testing.T) {
	nw := ncs.NewNetwork()
	defer nw.Close()

	groups, err := ncs.BuildGroup(nw, []string{"g0", "g1", "g2", "g3"},
		ncs.Options{Interface: ncs.HPI}, ncs.MulticastSpanningTree)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(a, b []byte) []byte {
		return binary.BigEndian.AppendUint64(nil,
			binary.BigEndian.Uint64(a)+binary.BigEndian.Uint64(b))
	}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *ncs.Group) {
			defer wg.Done()
			val := binary.BigEndian.AppendUint64(nil, uint64(g.Rank()))
			res, err := g.AllReduce(val, sum)
			if err != nil {
				t.Errorf("rank %d: %v", g.Rank(), err)
				return
			}
			if got := binary.BigEndian.Uint64(res); got != 6 {
				t.Errorf("rank %d: allreduce = %d, want 6", g.Rank(), got)
			}
		}(g)
	}
	wg.Wait()
}

func TestPublicGroupConfigAPI(t *testing.T) {
	nw := ncs.NewNetwork()
	defer nw.Close()

	groups, err := ncs.BuildGroupConfig(nw, []string{"gc0", "gc1", "gc2"},
		ncs.Options{Interface: ncs.HPI}, ncs.GroupConfig{
			Algorithm: ncs.MulticastSpanningTree,
			Deadline:  2 * time.Second,
			ChunkSize: 1024,
		})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *ncs.Group) {
			defer wg.Done()
			parts := make([][]byte, g.Size())
			for i := range parts {
				parts[i] = []byte{byte(g.Rank()), byte(i)}
			}
			out, err := g.AllToAll(parts)
			if err != nil {
				t.Errorf("rank %d alltoall: %v", g.Rank(), err)
				return
			}
			for src, p := range out {
				if len(p) != 2 || p[0] != byte(src) || p[1] != byte(g.Rank()) {
					t.Errorf("rank %d: bad part from %d: %v", g.Rank(), src, p)
				}
			}
		}(g)
	}
	wg.Wait()

	// The deadline surfaces through the public error export.
	start := time.Now()
	if _, err := groups[1].Broadcast(0, nil); !errors.Is(err, ncs.ErrGroupDeadline) {
		t.Fatalf("err = %v, want ErrGroupDeadline", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("deadline failed to bound the wait")
	}
}

func TestPublicErrors(t *testing.T) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "x", "y", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		t.Fatal(err)
	}
	_ = conn
	if _, err := peer.RecvTimeout(20 * time.Millisecond); err != ncs.ErrRecvTimeout {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
}

func TestPublicThreadServices(t *testing.T) {
	pkg := ncs.NewThreads(ncs.UserLevelThreads)
	defer pkg.Shutdown()

	mu := pkg.NewMutex()
	sem := pkg.NewSemaphore(0)
	shared := 0

	producer, err := pkg.Spawn("producer", func() {
		for i := 0; i < 10; i++ {
			mu.Lock()
			shared++
			mu.Unlock()
			sem.Release()
			pkg.Yield()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := pkg.Spawn("consumer", func() {
		for i := 0; i < 10; i++ {
			sem.Acquire()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	producer.Join()
	consumer.Join()
	if shared != 10 {
		t.Fatalf("shared = %d", shared)
	}
}

func TestComputeThreadsDriveConnections(t *testing.T) {
	// Compute Threads using NCS primitives, per the paper's programming
	// model: a kernel-level package so the blocking Send suspends only
	// its thread.
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "ct-a", "ct-b", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		t.Fatal(err)
	}
	pkg := ncs.NewThreads(ncs.KernelLevelThreads)
	defer pkg.Shutdown()

	sender, err := pkg.Spawn("sender", func() {
		for i := 0; i < 5; i++ {
			if err := conn.Send([]byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := pkg.Spawn("receiver", func() {
		for i := 0; i < 5; i++ {
			m, err := peer.Recv()
			if err != nil || m[0] != byte(i) {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sender.Join()
	receiver.Join()
}

func TestPublicTopologyRouting(t *testing.T) {
	topo := ncs.NewTopology()
	topo.AddSwitch("campus").AddSwitch("downtown")
	if err := topo.Link("campus", "downtown", ncs.LinkSpec{
		Delay:    2 * time.Millisecond,
		CellRate: 200_000,
	}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("uni", "campus"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("lab", "downtown"); err != nil {
		t.Fatal(err)
	}

	nw := ncs.NewNetworkWithTopology(topo)
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "uni", "lab", ncs.Options{
		Interface: ncs.ACI,
		QoS:       ncs.QoS{PeakCellRate: 50_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	go conn.Send([]byte("routed hello"))
	msg, err := peer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "routed hello" {
		t.Fatalf("got %q", msg)
	}
	// The path's 2 ms propagation must be observable end to end.
	if since := time.Since(start); since < 2*time.Millisecond {
		t.Fatalf("delivery in %v; path delay not applied", since)
	}
	// Two circuits (data + control) × 50k cells each = 100k reserved.
	if got := topo.Reserved("campus", "downtown"); got != 100_000 {
		t.Fatalf("reserved = %d, want 100000 (data + control VCs)", got)
	}
}

func ExamplePair() {
	nw := ncs.NewNetwork()
	defer nw.Close()

	conn, peer, err := ncs.Pair(nw, "alice", "bob", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	go conn.Send([]byte("hello, NCS"))
	msg, _ := peer.Recv()
	fmt.Println(string(msg))
	// Output: hello, NCS
}
