package ncs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"

	"ncs/internal/telemetry"
)

// expvarOnce guards the one-time expvar publication: expvar.Publish
// panics on a duplicate name, and ServeDebug may be called per-mux.
var expvarOnce sync.Once

// ServeDebug mounts NCS's live-introspection endpoints on mux and
// returns it; a nil mux allocates a fresh http.ServeMux. Nothing is
// served until the caller passes the returned handler to an HTTP
// server, so a process that never calls ServeDebug (or never serves
// the mux) exposes nothing:
//
//	go http.ListenAndServe("localhost:6060", ncs.ServeDebug(nil))
//
// The endpoints:
//
//   - /metrics: Prometheus text exposition of every registered
//     instrument (counters, gauges, histograms with cumulative
//     buckets), named ncs_<layer>_<subsystem>_<metric>.
//   - /debug/vars: expvar JSON; the full metrics snapshot is published
//     under the "ncs" key, next to the runtime's memstats/cmdline.
//   - /debug/pprof/...: the standard Go profiler endpoints (heap,
//     goroutine, CPU profile, execution trace).
//
// The handlers read the process-global instrument registry, so one
// endpoint observes every System in the process.
func ServeDebug(mux *http.ServeMux) *http.ServeMux {
	if mux == nil {
		mux = http.NewServeMux()
	}
	expvarOnce.Do(func() {
		expvar.Publish("ncs", expvar.Func(func() any {
			return telemetry.Capture()
		}))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The only write errors are the client hanging up mid-scrape;
		// there is nobody left to report them to.
		_ = telemetry.Capture().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
