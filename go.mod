module ncs

go 1.24
