// Package ncs is a Go implementation of NCS — the NYNET Communication
// System — the multithreaded message-passing system for high performance
// distributed computing described in:
//
//	Park, Lee, Hariri. "A Multithreaded Message-Passing System for High
//	Performance Distributed Computing Applications." Syracuse
//	University, 1998.
//
// NCS provides low-latency, high-throughput communication services whose
// behaviour is selected per connection at runtime:
//
//   - four communication interfaces: SCI (sockets, portable), ACI
//     (ATM virtual circuits with per-connection QoS, simulated), HPI
//     (a trap-style in-process interface for tightly coupled
//     clusters), and UDP (real datagram sockets with batched
//     sendmmsg/recvmmsg syscalls and optional seeded wire impairment);
//   - flow control algorithms: credit-based (default), window-based,
//     rate-based, or none;
//   - error control algorithms: selective repeat (default), go-back-N,
//     or none;
//   - multicast algorithms for group communication: repetitive
//     send/receive or a binomial spanning tree, under a full collective
//     repertoire (Broadcast, Reduce, Barrier, Scatter, Gather,
//     AllGather, ReduceScatter, AllToAll) with per-operation deadlines,
//     tagged frames that detect members falling out of step,
//     chunk-pipelined large broadcasts, and nonblocking variants
//     (IBroadcast, IAllReduce, IAllGather) returning awaitable handles
//     so one member keeps thousands of collectives in flight;
//   - separated control and data connections: acknowledgments and
//     credits never compete with payload for data-path bandwidth;
//   - a thread-per-function runtime (Master, Flow Control, Error
//     Control, Control Send/Receive, and per-connection Send/Receive
//     threads) plus a thread-bypassing fast path for latency-critical
//     connections (§4.2 of the paper);
//   - an RPC layer on top of any connection: multiplexed named-method
//     request/response calls with per-call deadlines, application-error
//     propagation, and a worker-pool dispatcher running on either
//     thread architecture (NewClient, NewServer), plus streaming calls
//     (client-stream, server-stream, bidi) whose chunk flows ride
//     dedicated multiplexed streams;
//   - multiplexed streams: any connection carries N independent ordered
//     channels (Connection.OpenStream / AcceptStream), each with its
//     own receiver-advertised credit window, so bulk transfer on one
//     stream never head-of-line-blocks latency-sensitive traffic on
//     another.
//
// # Quick start
//
//	nw := ncs.NewNetwork()
//	defer nw.Close()
//
//	alice, _ := nw.NewSystem("alice")
//	bob, _ := nw.NewSystem("bob")
//
//	conn, _ := alice.Connect("bob", ncs.Options{Interface: ncs.HPI})
//	peer, _ := bob.Accept()
//
//	go conn.Send([]byte("hello, NCS"))
//	msg, _ := peer.Recv()
//
// Connections are full duplex; Send blocks until the transfer completes
// under the connection's error control scheme. Group communication
// (broadcast, reduce, scatter/gather, all-to-all, barrier) is built
// with BuildGroup; BuildGroupConfig additionally tunes the collective
// engine's deadline and broadcast chunk size.
//
// For request/response workloads, attach the RPC layer to both ends of
// a connection instead of hand-rolling matching over Send/Recv:
//
//	srv := ncs.NewServer(ncs.RPCServerOptions{})
//	srv.Handle("echo", func(ctx context.Context, req []byte) ([]byte, error) {
//		return req, nil
//	})
//	srv.ServeConn(peer)
//	defer srv.Shutdown()
//
//	cli := ncs.NewClient(conn)
//	defer cli.Close()
//	resp, _ := cli.Call(context.Background(), "echo", []byte("hi"))
//
// To carry independent message flows over one connection without
// head-of-line blocking, open additional streams. Stream 0 is the
// connection's default Send/Recv channel; each further stream has its
// own ordered delivery and its own credit window:
//
//	bulk, _ := conn.OpenStream()       // dialer side
//	go bulk.Send(largePayload)         // never starves conn.Send/Recv
//
//	st, _ := peer.AcceptStream()       // acceptor side
//	data, _ := st.Recv()
package ncs

import (
	"ncs/internal/atm"
	"ncs/internal/core"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/group"
	"ncs/internal/mcast"
	"ncs/internal/netsim"
	"ncs/internal/rpc"
	"ncs/internal/telemetry"
	"ncs/internal/thread"
	"ncs/internal/transport"
)

// Core runtime types.
type (
	// Network is the signaling fabric binding Systems together.
	Network = core.Network
	// System is one NCS process attached to a Network.
	System = core.System
	// Connection is a configured point-to-point NCS connection.
	Connection = core.Connection
	// Options selects a connection's interface, flow control, error
	// control, SDU size, QoS, and fast-path mode.
	Options = core.Options
	// Message is a received payload plus loss metadata (unreliable
	// connections report how many SDUs never arrived).
	Message = core.Message
	// Runtime selects a connection's runtime architecture: the paper's
	// thread-per-connection model (RuntimeThreaded) or the System's
	// shard pool (RuntimeSharded), which scales to thousands of
	// concurrent connections at O(shards) goroutines.
	Runtime = core.Runtime
	// Inbox is a shared delivery queue: connections bound to one
	// (Connection.BindInbox) merge their deliveries into a single
	// stream, so a fixed worker pool can serve thousands of
	// connections without a receive goroutine per connection.
	Inbox = core.Inbox
	// InboxMessage is one Inbox delivery: the message and the
	// connection it arrived on.
	InboxMessage = core.InboxMessage
	// ShardStats snapshots a System's shard pool (System.ShardStats).
	ShardStats = core.ShardStats
	// MemStats estimates a System's per-connection memory footprint —
	// retained heap per connection, live reassembly sessions, and armed
	// timer-wheel timers (System.MemStats). The capacity-planning
	// companion to ShardStats: idle connections on the sharded runtime
	// should hold their estimated bytes near the bare-struct floor and
	// contribute zero pending timers.
	MemStats = core.MemStats
	// SendTrace is the Table I per-stage send-cost breakdown captured
	// by Connection.SendInstrumented.
	SendTrace = core.SendTrace
	// Stats are the cumulative per-connection counters returned by
	// Connection.Stats.
	Stats = core.Stats
	// Stream is one ordered message channel multiplexed over a
	// Connection (Connection.OpenStream / AcceptStream). Each stream
	// carries its own receiver-advertised credit window, so a slow or
	// unconsumed stream never head-of-line-blocks its siblings or the
	// connection's default Send/Recv channel.
	Stream = core.Stream
	// QoS is the ATM traffic contract applied to ACI connections.
	QoS = atm.QoS
	// Topology is a switched ATM fabric: switches, capacity-managed
	// links, and host attachments. ACI connections over a topology are
	// routed hop by hop and admitted against link capacity.
	Topology = atm.Topology
	// LinkSpec describes one physical link of a Topology.
	LinkSpec = atm.LinkSpec
	// Group is a process group supporting the collective repertoire —
	// Broadcast, Reduce, AllReduce, Barrier, Scatter, Gather,
	// AllGather, ReduceScatter, AllToAll — over a selectable multicast
	// algorithm, with per-operation deadlines and tagged frames that
	// detect members falling out of step.
	Group = group.Group
	// GroupConfig tunes a group's collective engine: multicast
	// algorithm, per-operation deadline, broadcast pipelining chunk.
	GroupConfig = group.Config
	// GroupHandle is one in-flight nonblocking collective, returned by
	// Group.IBroadcast, Group.IAllReduce, and Group.IAllGather. Await
	// it with Wait, poll with Done/Err, and read results with
	// Data/Parts once complete. A member may keep thousands of
	// operations in flight; they execute in submission order on one
	// engine goroutine per member, not one per operation.
	GroupHandle = group.Handle
	// ReduceOp combines two partial reduction values. It must be
	// associative; partials always combine in ascending rank order, so
	// non-commutative operations are deterministic.
	ReduceOp = group.ReduceOp
	// FlowConfig tunes the selected flow control algorithm.
	FlowConfig = flowctl.Config
)

// Fault-injection types (internal/netsim), re-exported so applications
// and tests can put a hostile network under a connection: configure a
// simulated HPI link via Options.HPILink, or cell-level circuit
// impairments via QoS.Impair / QoS.Schedule and Topology LinkSpecs.
// Every impairment decision is drawn from the link's seeded RNG, so a
// failure run replays exactly from its seed.
type (
	// LinkParams configures one direction of a simulated link:
	// bandwidth, delay, loss, and programmable impairments.
	LinkParams = netsim.Params
	// Impairments selects the programmable failure modes of a link:
	// duplication, reordering, Gilbert–Elliott burst loss, partition.
	Impairments = netsim.Impairments
	// GilbertElliott parameterises two-state burst loss.
	GilbertElliott = netsim.GilbertElliott
	// ImpairPhase is one packet-count-keyed step of a deterministic
	// impairment schedule.
	ImpairPhase = netsim.Phase
	// ImpairStats counts the impairment decisions a link has made.
	ImpairStats = netsim.ImpairStats
)

// Interface kinds (§2, "Multiple Communication Interfaces").
const (
	// SCI is the Socket Communication Interface: TCP, maximally
	// portable; NCS flow/error control is bypassed (TCP provides both).
	SCI = transport.SCI
	// ACI is the ATM Communication Interface: AAL5 frames over
	// simulated virtual circuits with per-connection QoS.
	ACI = transport.ACI
	// HPI is the High Performance Interface: an in-process, trap-style
	// path with minimal per-message overhead.
	HPI = transport.HPI
	// UDP is the real-wire datagram interface: framed SDUs over UDP
	// sockets with syscall batching (sendmmsg/recvmmsg on Linux) and
	// optional seeded impairment at the socket boundary. Unreliable at
	// the wire, so connections default to selective-repeat error
	// control and credit flow control, like ACI.
	UDP = transport.UDP
)

// Real-wire UDP transport (internal/transport): the same Conn contract
// the in-process interfaces implement, carried over real sockets.
// Options.Interface = UDP gives a core Connection a loopback UDP data
// path (tuned via Options.UDPLink); DialUDP/ListenUDP expose the raw
// transport directly for wire-level tools and tests.
type (
	// UDPLink tunes a UDP transport: syscall batch depth, datagram
	// size cap, socket buffers, and the seeded wire impairment the
	// chaos harness drives.
	UDPLink = transport.UDPLink
	// TransportConn is the transport-level connection contract
	// (Send/Recv of whole datagrams with pooled-buffer variants) that
	// DialUDP and TransportListener.Accept return.
	TransportConn = transport.Conn
	// TransportListener accepts transport-level connections
	// (ListenUDP).
	TransportListener = transport.Listener
)

// DialUDP connects to a UDP transport listener and completes the open
// handshake, retrying against loss until the listener answers or the
// retry budget is spent.
func DialUDP(addr string, link *UDPLink) (TransportConn, error) {
	return transport.DialUDP(addr, link)
}

// ListenUDP binds a UDP transport listener on addr (e.g.
// "127.0.0.1:0"). Closing the listener tears down its accepted conns,
// which share the listener's socket.
func ListenUDP(addr string, link *UDPLink) (TransportListener, error) {
	return transport.ListenUDP(addr, link)
}

// BatchSyscallsSupported reports whether this platform sends and
// receives UDP datagrams in batched syscalls (sendmmsg/recvmmsg);
// elsewhere the transport falls back to one syscall per datagram.
func BatchSyscallsSupported() bool { return transport.BatchSyscallsSupported() }

// Flow control algorithms (§3.3).
const (
	FlowNone   = flowctl.None
	FlowCredit = flowctl.Credit
	FlowWindow = flowctl.Window
	FlowRate   = flowctl.Rate
)

// Congestion controllers for credit flow control, selected via
// Options.FlowConfig.Controller. The controller sits between the
// receiver's credit grants and the wire: a grant is necessary but not
// sufficient for admission — in-flight must also fit the controller's
// window. Static admits everything granted (the receiver's buffer is
// the only limit); AIMD probes additively and halves on loss; RTT
// backs off when grant round trips inflate past the observed minimum.
const (
	FlowControllerStatic = flowctl.ControllerStatic
	FlowControllerAIMD   = flowctl.ControllerAIMD
	FlowControllerRTT    = flowctl.ControllerRTT
)

// FlowControllerKind selects a congestion controller in FlowConfig.
type FlowControllerKind = flowctl.ControllerKind

// Error control algorithms (§3.2).
const (
	ErrorNone            = errctl.None
	ErrorSelectiveRepeat = errctl.SelectiveRepeat
	ErrorGoBackN         = errctl.GoBackN
)

// Multicast algorithms (§2).
const (
	MulticastRepetitive   = mcast.Repetitive
	MulticastSpanningTree = mcast.SpanningTree
)

// Runtime architectures (Options.Runtime).
const (
	// RuntimeThreaded is the paper's architecture: dedicated Send,
	// Receive, and Control Send/Receive threads per connection. The
	// default; lowest latency at modest connection counts.
	RuntimeThreaded = core.RuntimeThreaded
	// RuntimeSharded drives connections from a fixed pool of I/O
	// shards (default GOMAXPROCS, see System.SetShards) that
	// demultiplex receives and coalesce sends across all sharded
	// connections — the many-connection scale-out.
	RuntimeSharded = core.RuntimeSharded
)

// NewInbox creates a shared delivery queue holding up to depth
// undelivered messages (default 1024 when depth <= 0); see Inbox.
func NewInbox(depth int) *Inbox { return core.NewInbox(depth) }

// Errors re-exported for matching with errors.Is.
var (
	ErrSystemClosed    = core.ErrSystemClosed
	ErrConnClosed      = core.ErrConnClosed
	ErrRecvTimeout     = core.ErrRecvTimeout
	ErrPeerUnreachable = core.ErrPeerUnreachable
	ErrInboxClosed     = core.ErrInboxClosed
	ErrStreamClosed    = core.ErrStreamClosed
	// ErrGroupDeadline reports a collective that did not complete
	// within the group's per-operation deadline.
	ErrGroupDeadline = group.ErrDeadline
	// ErrGroupMismatch reports group members whose collective calls
	// fell out of step.
	ErrGroupMismatch = group.ErrMismatch
)

// RPC layer (internal/rpc): multiplexed request/response calls over any
// NCS connection.
type (
	// RPCClient issues multiplexed named-method calls over one
	// connection; create one with NewClient.
	RPCClient = rpc.Client
	// RPCServer dispatches calls from any number of connections onto a
	// worker pool; create one with NewServer.
	RPCServer = rpc.Server
	// RPCHandler services one call on the server.
	RPCHandler = rpc.Handler
	// RPCServerOptions sizes the server's dispatcher and selects its
	// thread architecture.
	RPCServerOptions = rpc.ServerOptions
	// RPCClientCall is an open streaming call on an RPCClient
	// (OpenClientStream / OpenServerStream / OpenBidiStream): chunks
	// move with Send/Recv on a dedicated multiplexed stream, and
	// Result collects the handler's final reply.
	RPCClientCall = rpc.ClientCall
	// RPCServerCall is the handler-side end of a streaming call's
	// chunk flow (see RPCStreamHandler).
	RPCServerCall = rpc.ServerCall
	// RPCStreamHandler services one streaming call registered with
	// RPCServer.HandleStream.
	RPCStreamHandler = rpc.StreamHandler
	// RPCStreamMode declares a streaming call's chunk-flow directions.
	RPCStreamMode = rpc.StreamMode
	// RPCServerError is an application error propagated from a handler
	// to the caller; match it with errors.As.
	RPCServerError = rpc.ServerError
)

// Streaming-call modes (values for RPCStreamMode).
const (
	// RPCClientStream: the client Sends chunks, the server replies once.
	RPCClientStream = rpc.ClientStream
	// RPCServerStream: the client requests once, the server Sends chunks.
	RPCServerStream = rpc.ServerStream
	// RPCBidiStream: both directions chunk concurrently.
	RPCBidiStream = rpc.BidiStream
)

// RPC errors re-exported for matching with errors.Is.
var (
	ErrRPCNoMethod      = rpc.ErrNoMethod
	ErrRPCShuttingDown  = rpc.ErrShuttingDown
	ErrRPCClientClosed  = rpc.ErrClientClosed
	ErrRPCStreamAborted = rpc.ErrStreamAborted
)

// NewClient attaches an RPC client to an established connection. The
// client owns the connection's receive side and tears the connection
// down on Close.
func NewClient(conn *Connection) *RPCClient { return rpc.NewClient(conn) }

// NewServer creates an RPC server and starts its worker pool. Register
// handlers with Handle, attach accepted connections with ServeConn, and
// stop with Shutdown (which drains in-flight calls).
func NewServer(opts RPCServerOptions) *RPCServer { return rpc.NewServer(opts) }

// Multithreading services (§2: "thread synchronization, thread
// management"). Compute Threads run application work and use NCS
// primitives to communicate; the two package architectures correspond
// to §4.1's QuickThreads-style user-level scheduler and Pthread-style
// kernel-level threads.
type (
	// ThreadPackage provides Spawn, Yield, and synchronisation
	// primitives for Compute Threads.
	ThreadPackage = thread.Package
	// Thread is a handle on a spawned Compute Thread.
	Thread = thread.Thread
	// Mutex is a lock usable from Compute Threads.
	Mutex = thread.Mutex
	// Semaphore is a counting semaphore usable from Compute Threads.
	Semaphore = thread.Semaphore
)

// Thread package architectures.
const (
	// KernelLevelThreads maps Compute Threads onto goroutines: blocking
	// calls suspend only the calling thread.
	KernelLevelThreads = thread.KernelLevel
	// UserLevelThreads is a cooperative run-to-block scheduler with
	// very cheap context switches; one blocking system call stalls
	// every thread in the package (§4.1).
	UserLevelThreads = thread.UserLevel
)

// NewThreads creates a Compute Thread package of the given
// architecture. Shut it down after all threads finish.
func NewThreads(model thread.Model) ThreadPackage { return thread.New(model) }

// NewNetwork creates a fabric on which Systems are registered. The
// caller owns it and must Close it.
func NewNetwork() *Network { return core.NewNetwork() }

// NewTopology creates an empty switched ATM fabric description.
func NewTopology() *Topology { return atm.NewTopology() }

// NewNetworkWithTopology creates a fabric whose ACI connections are
// routed over the given switched topology with connection admission
// control. Attach each system's name to a switch with
// Topology.AttachHost before connecting over ACI.
func NewNetworkWithTopology(t *Topology) *Network {
	return core.NewNetworkWithTopology(t)
}

// BuildGroup registers one system per name on the network and connects
// them in a full mesh with the given per-connection options, returning
// one Group handle per member, indexed by rank. The multicast algorithm
// governs Broadcast/Reduce dissemination; pass 0 for the spanning-tree
// default.
func BuildGroup(nw *Network, names []string, opts Options, alg mcast.Algorithm) ([]*Group, error) {
	return group.Build(nw, names, opts, alg)
}

// ConnectGroup builds a group over already-registered systems.
func ConnectGroup(systems []*System, opts Options, alg mcast.Algorithm) ([]*Group, error) {
	return group.Connect(systems, opts, alg)
}

// BuildGroupConfig is BuildGroup with full collective-engine
// configuration: multicast algorithm, per-operation deadline, and the
// broadcast pipelining chunk size.
func BuildGroupConfig(nw *Network, names []string, opts Options, cfg GroupConfig) ([]*Group, error) {
	return group.BuildConfig(nw, names, opts, cfg)
}

// ConnectGroupConfig is ConnectGroup with full collective-engine
// configuration.
func ConnectGroupConfig(systems []*System, opts Options, cfg GroupConfig) ([]*Group, error) {
	return group.ConnectConfig(systems, opts, cfg)
}

// Observability (internal/telemetry): the unified metrics, lifecycle
// tracing, and snapshot layer. Instrument names and semantics are
// catalogued in internal/telemetry's package documentation; serve them
// live with ServeDebug or capture them programmatically here.
type (
	// Telemetry is a System-wide observability snapshot
	// (System.Telemetry): per-System memory and shard summaries plus a
	// reading of every registered instrument across all layers.
	Telemetry = core.Telemetry
	// MetricsSnapshot is a point-in-time reading of every registered
	// instrument — counters, gauges, and latency histograms. Diff two
	// with Delta, export one with WritePrometheus.
	MetricsSnapshot = telemetry.Snapshot
	// Trace is one sampled message's lifecycle record: monotonic
	// nanosecond stamps at each TraceStage from send enqueue to
	// application delivery. On an in-process (HPI) connection both
	// sides stamp the same record, so one Trace spans the full path.
	Trace = telemetry.Trace
	// TraceStage is one point in a traced message's life.
	TraceStage = telemetry.TraceStage
)

// Lifecycle trace stages, in path order.
const (
	StageEnqueued    = telemetry.StageEnqueued
	StageStaged      = telemetry.StageStaged
	StageWireOut     = telemetry.StageWireOut
	StageWireIn      = telemetry.StageWireIn
	StageReassembled = telemetry.StageReassembled
	StageDelivered   = telemetry.StageDelivered
)

// CaptureMetrics reads every registered instrument. The snapshot is
// process-global: one reading covers every System, connection, and
// layer in the process.
func CaptureMetrics() MetricsSnapshot { return telemetry.Capture() }

// EnableTracing turns on sampled message-lifecycle tracing: every
// every-th sent message (minimum 1: trace everything) is stamped
// through the stack and its completed Trace is kept in a ring holding
// the most recent capacity records (default 256). Tracing is
// process-global and off by default; when off the per-message cost is
// a single nil check.
func EnableTracing(every, capacity int) { telemetry.EnableTracing(every, capacity) }

// DisableTracing turns sampled tracing back off and discards the
// collected traces.
func DisableTracing() { telemetry.DisableTracing() }

// TakeTraces drains and returns the completed traces collected since
// the last call (newest last). It returns nil when tracing is off.
func TakeTraces() []Trace { return telemetry.TakeTraces() }

// Pair is a convenience for examples, tests and benchmarks: it creates
// two systems on the network and returns both ends of a connection
// between them.
func Pair(nw *Network, a, b string, opts Options) (*Connection, *Connection, error) {
	sa, err := nw.NewSystem(a)
	if err != nil {
		return nil, nil, err
	}
	sb, err := nw.NewSystem(b)
	if err != nil {
		return nil, nil, err
	}
	conn, err := sa.Connect(b, opts)
	if err != nil {
		return nil, nil, err
	}
	peer, err := sb.Accept()
	if err != nil {
		return nil, nil, err
	}
	return conn, peer, nil
}
