package ncs_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ncs"
)

// TestServeDebug drives real traffic through a connection and then
// scrapes the introspection endpoints: the Prometheus exposition must
// carry the core counters that traffic moved, expvar must publish the
// same snapshot under "ncs", and the pprof index must answer.
func TestServeDebug(t *testing.T) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "dbg-a", "dbg-b", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	defer peer.Close()
	for i := 0; i < 4; i++ {
		if err := conn.Send([]byte("observe me")); err != nil {
			t.Fatal(err)
		}
		if _, err := peer.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(ncs.ServeDebug(nil))
	defer srv.Close()

	scrape := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	metrics := scrape("/metrics")
	for _, want := range []string{
		"# TYPE ncs_core_conn_send_msgs_total counter",
		"ncs_core_conn_send_msgs_total",
		"ncs_core_conn_recv_bytes_total",
		"ncs_core_send_sendq_depth_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	vars := scrape("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["ncs"]; !ok {
		t.Error("/debug/vars does not publish the \"ncs\" snapshot")
	}

	if idx := scrape("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}

// TestLifecycleTracing exercises the public tracing surface: with
// tracing on at sample rate 1, a round trip must yield traces whose
// stamps appear in path order.
func TestLifecycleTracing(t *testing.T) {
	ncs.EnableTracing(1, 16)
	defer ncs.DisableTracing()

	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "trace-a", "trace-b", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	defer peer.Close()
	if err := conn.Send([]byte("stamp me")); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Recv(); err != nil {
		t.Fatal(err)
	}

	traces := ncs.TakeTraces()
	if len(traces) == 0 {
		t.Fatal("no traces collected at sample rate 1")
	}
	tr := traces[len(traces)-1]
	stages := []ncs.TraceStage{
		ncs.StageEnqueued, ncs.StageStaged, ncs.StageWireOut,
		ncs.StageWireIn, ncs.StageReassembled, ncs.StageDelivered,
	}
	var prev int64
	for _, st := range stages {
		ns := tr.Stage(st)
		if ns == 0 {
			t.Fatalf("stage %v never stamped: %+v", st, tr)
		}
		if ns < prev {
			t.Fatalf("stage %v stamped before its predecessor: %+v", st, tr)
		}
		prev = ns
	}
}
