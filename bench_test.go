// Benchmarks regenerating the paper's evaluation (§4), one per table
// and figure, plus ablations of the design choices DESIGN.md calls out.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// The sweep-style reports (full size ranges in the paper's layout) come
// from cmd/ncs-bench; these benchmarks time the representative points
// under the Go benchmark harness.
package ncs_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ncs"
	"ncs/internal/bench"
	"ncs/internal/platform"
	"ncs/internal/thread"
)

// ---------------------------------------------------------------------------
// Table I: session overhead of a threaded 1-byte send.

func BenchmarkTableI_InstrumentedSend1B(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "t1a", "t1b", ncs.Options{Interface: ncs.SCI, Instrument: true})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	msg := []byte{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.SendInstrumented(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tr := conn.LastTrace(); tr != nil {
		b.ReportMetric(float64(tr.SessionOverhead().Nanoseconds()), "session-ns")
		b.ReportMetric(float64(tr.DataTransfer().Nanoseconds()), "transfer-ns")
	}
}

// ---------------------------------------------------------------------------
// Figure 10: user-level vs kernel-level thread package. Each iteration
// is one full scaled run at the given message size; the reported metric
// is the per-send-iteration time the figure plots.

func BenchmarkFigure10(b *testing.B) {
	for _, model := range []thread.Model{thread.UserLevel, thread.KernelLevel} {
		for _, size := range []int{1024, 65536} {
			b.Run(fmt.Sprintf("%s/%s", model, sizeName(size)), func(b *testing.B) {
				var total time.Duration
				for i := 0; i < b.N; i++ {
					fig := bench.Figure10(bench.Fig10Config{
						Sizes:      []int{size},
						Iterations: 10,
					})
					for _, s := range fig.Series {
						if s.Label == model.String() {
							total += s.Points[0].Value
						}
					}
				}
				b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "ns/send-iter")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 11: threaded send vs native socket.

func BenchmarkFigure11(b *testing.B) {
	for _, model := range []thread.Model{thread.UserLevel, thread.KernelLevel} {
		for _, size := range []int{1, 65536} {
			b.Run(fmt.Sprintf("%s/%s", model, sizeName(size)), func(b *testing.B) {
				data := bench.Figure11(bench.Fig11Config{Sizes: []int{size}, Iterations: b.N})
				for _, s := range data.Fig.Series {
					if s.Label == model.String() && data.Native.Points[0].Value > 0 {
						ratio := float64(s.Points[0].Value) / float64(data.Native.Points[0].Value)
						b.ReportMetric(ratio, "ratio-to-native")
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 12 and 13: echo round trips, NCS vs p4/MPI/PVM.

func benchmarkEcho(b *testing.B, sys bench.SystemKind, local, remote platform.Platform, size int) {
	b.Helper()
	series, err := bench.RunEcho(bench.EchoConfig{
		System:     sys,
		Local:      local,
		Remote:     remote,
		Sizes:      []int{size},
		Iterations: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(series.Points[0].Value.Nanoseconds()), "rtt-ns")
}

func BenchmarkFigure12_SUN4(b *testing.B) {
	for _, sys := range bench.AllSystems {
		for _, size := range []int{4096, 65536} {
			b.Run(fmt.Sprintf("%v/%s", sys, sizeName(size)), func(b *testing.B) {
				benchmarkEcho(b, sys, platform.SUN4, platform.SUN4, size)
			})
		}
	}
}

func BenchmarkFigure12_RS6000(b *testing.B) {
	for _, sys := range bench.AllSystems {
		for _, size := range []int{4096, 65536} {
			b.Run(fmt.Sprintf("%v/%s", sys, sizeName(size)), func(b *testing.B) {
				benchmarkEcho(b, sys, platform.RS6000, platform.RS6000, size)
			})
		}
	}
}

func BenchmarkFigure13_Heterogeneous(b *testing.B) {
	for _, sys := range bench.AllSystems {
		for _, size := range []int{4096, 65536} {
			b.Run(fmt.Sprintf("%v/%s", sys, sizeName(size)), func(b *testing.B) {
				benchmarkEcho(b, sys, platform.SUN4, platform.RS6000, size)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Core NCS micro-benchmarks: raw send/recv across interfaces.

func BenchmarkNCSSendRecv(b *testing.B) {
	kinds := map[string]ncs.Options{
		"HPI":          {Interface: ncs.HPI},
		"SCI":          {Interface: ncs.SCI},
		"ACI":          {Interface: ncs.ACI},
		"HPI-fastpath": {Interface: ncs.HPI, FastPath: true},
	}
	for name, opts := range kinds {
		for _, size := range []int{1, 4096, 65536} {
			b.Run(fmt.Sprintf("%s/%s", name, sizeName(size)), func(b *testing.B) {
				nw := ncs.NewNetwork()
				defer nw.Close()
				conn, peer, err := ncs.Pair(nw, "bench-a", "bench-b", opts)
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					for {
						m, err := peer.Recv()
						if err != nil {
							return
						}
						if err := peer.Send(m[:1]); err != nil {
							return
						}
					}
				}()
				msg := make([]byte, size)
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := conn.Send(msg); err != nil {
						b.Fatal(err)
					}
					if _, err := conn.Recv(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6).

// BenchmarkAblationFastPath quantifies §4.2: the session overhead
// removed by replacing the per-connection threads with procedures.
func BenchmarkAblationFastPath(b *testing.B) {
	for _, mode := range []string{"threaded", "fastpath"} {
		for _, size := range []int{1, 65536} {
			b.Run(fmt.Sprintf("%s/%s", mode, sizeName(size)), func(b *testing.B) {
				nw := ncs.NewNetwork()
				defer nw.Close()
				conn, peer, err := ncs.Pair(nw, "ab-a", "ab-b", ncs.Options{
					Interface: ncs.HPI,
					FastPath:  mode == "fastpath",
				})
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						if _, err := peer.Recv(); err != nil {
							return
						}
					}
				}()
				msg := make([]byte, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := conn.Send(msg); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				conn.Close()
				peer.Close()
				<-done
			})
		}
	}
}

// BenchmarkAblationControlPlane quantifies the §2 separation: split
// control/data connections versus control multiplexed in-band.
func BenchmarkAblationControlPlane(b *testing.B) {
	for _, mode := range []string{"separate", "inband"} {
		b.Run(mode, func(b *testing.B) {
			nw := ncs.NewNetwork()
			defer nw.Close()
			conn, peer, err := ncs.Pair(nw, "cp-a", "cp-b", ncs.Options{
				Interface:     ncs.ACI,
				FlowControl:   ncs.FlowCredit,
				ErrorControl:  ncs.ErrorSelectiveRepeat,
				SDUSize:       2048,
				InbandControl: mode == "inband",
			})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					m, err := peer.Recv()
					if err != nil {
						return
					}
					if err := peer.Send(m[:1]); err != nil {
						return
					}
				}
			}()
			msg := make([]byte, 32*1024)
			b.SetBytes(int64(len(msg)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := conn.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSDU sweeps the §3.2 segmentation trade-off.
func BenchmarkAblationSDU(b *testing.B) {
	for _, sdu := range []int{1024, 4096, 16384, 60000} {
		b.Run(fmt.Sprintf("sdu-%s", sizeName(sdu)), func(b *testing.B) {
			nw := ncs.NewNetwork()
			defer nw.Close()
			conn, peer, err := ncs.Pair(nw, "sdu-a", "sdu-b", ncs.Options{
				Interface: ncs.ACI,
				SDUSize:   sdu,
			})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					m, err := peer.Recv()
					if err != nil {
						return
					}
					if err := peer.Send(m[:1]); err != nil {
						return
					}
				}
			}()
			msg := make([]byte, 64*1024)
			b.SetBytes(int64(len(msg)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := conn.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCredits compares starvation-prone small windows with
// ample static credit over a high-latency path (§3.3's dynamic credit
// motivation).
func BenchmarkAblationCredits(b *testing.B) {
	for _, credits := range []int{1, 4, 32} {
		b.Run(fmt.Sprintf("initial-%d", credits), func(b *testing.B) {
			nw := ncs.NewNetwork()
			defer nw.Close()
			conn, peer, err := ncs.Pair(nw, "cr-a", "cr-b", ncs.Options{
				Interface:    ncs.ACI,
				FlowControl:  ncs.FlowCredit,
				ErrorControl: ncs.ErrorSelectiveRepeat,
				SDUSize:      1024,
				FlowConfig:   ncs.FlowConfig{InitialCredits: credits, MaxCredits: 64},
				QoS:          ncs.QoS{Delay: time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					m, err := peer.Recv()
					if err != nil {
						return
					}
					if err := peer.Send(m[:1]); err != nil {
						return
					}
				}
			}()
			msg := make([]byte, 16*1024)
			b.SetBytes(int64(len(msg)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := conn.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupCollectives covers the two multicast algorithms.
func BenchmarkGroupCollectives(b *testing.B) {
	for _, algName := range []string{"spanning-tree", "repetitive"} {
		b.Run("broadcast-"+algName, func(b *testing.B) {
			alg := ncs.MulticastSpanningTree
			if algName == "repetitive" {
				alg = ncs.MulticastRepetitive
			}
			nw := ncs.NewNetwork()
			defer nw.Close()
			names := make([]string, 8)
			for i := range names {
				names[i] = fmt.Sprintf("bm-%s-%d", algName, i)
			}
			groups, err := ncs.BuildGroup(nw, names, ncs.Options{Interface: ncs.HPI}, alg)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 4096)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				errCh := make(chan error, len(groups))
				for _, g := range groups {
					go func(g *ncs.Group) {
						var msg []byte
						if g.Rank() == 0 {
							msg = payload
						}
						_, err := g.Broadcast(0, msg)
						errCh <- err
					}(g)
				}
				for range groups {
					if err := <-errCh; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Allocation-regression benchmarks for the pooled buffer pipeline.
// These two points are the acceptance gates for internal/buf: the HPI
// fast-path echo (§4.2's thread-bypassing procedures) and a threaded
// SCI 4KB send. Track them with:
//
//	go test -bench='BenchmarkAlloc' -benchmem -count=10 | benchstat
//
// BenchmarkAllocHPIFastpathEcho measures one full echo round trip
// (Send + Recv on both sides) over the in-process HPI with the fast
// path enabled on both endpoints.
func BenchmarkAllocHPIFastpathEcho(b *testing.B) {
	runAllocFastpathEcho(b, "fp")
}

// BenchmarkAllocTelemetryHotPath is the telemetry layer's acceptance
// gate: the identical fast-path 4KB echo, but with lifecycle tracing
// sampling every message on top of the always-on metrics counters. The
// baseline holds it to the same allocs/op as the plain echo — the
// unified telemetry layer must add zero allocations to the hot path.
func BenchmarkAllocTelemetryHotPath(b *testing.B) {
	ncs.EnableTracing(1, 256)
	defer ncs.DisableTracing()
	runAllocFastpathEcho(b, "tel")
}

// runAllocFastpathEcho is the shared body of the fast-path alloc
// gates: one 4KB echo round trip per iteration.
func runAllocFastpathEcho(b *testing.B, tag string) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "alloc-"+tag+"-a", "alloc-"+tag+"-b", ncs.Options{
		Interface: ncs.HPI,
		FastPath:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := peer.Recv()
			if err != nil {
				return
			}
			if err := peer.Send(m); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 4096)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	conn.Close()
	peer.Close()
	<-done
}

// BenchmarkAllocHPIShardedEcho measures the same echo round trip on
// the sharded runtime: both endpoints driven by their systems' shard
// pools instead of per-connection threads. The gate keeps the shard
// path's queue hop from growing per-message allocations.
func BenchmarkAllocHPIShardedEcho(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "alloc-sh-a", "alloc-sh-b", ncs.Options{
		Interface: ncs.HPI,
		Runtime:   ncs.RuntimeSharded,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := peer.Recv()
			if err != nil {
				return
			}
			if err := peer.Send(m); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 4096)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	conn.Close()
	peer.Close()
	<-done
}

// BenchmarkAllocSCISend4KB measures a threaded 4KB send over SCI (TCP
// loopback), the configuration where the Send Thread's staging and the
// transport framing dominate per-message allocation.
func BenchmarkAllocSCISend4KB(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "alloc-sci-a", "alloc-sci-b", ncs.Options{
		Interface: ncs.SCI,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 4096)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	conn.Close()
	peer.Close()
	<-done
}

// BenchmarkAllocCreditSend gates the credit flow-control path: a
// threaded 4KB HPI send with receiver-advertised credits on, so every
// iteration crosses admission (grant check + controller window),
// arrival accounting, threshold refills, and piggybacked grants. The
// baseline holds the whole credit machinery — including its telemetry
// — to the same steady-state allocations as an ungated send: the
// per-refill grant frame is the only permitted extra, amortised across
// the refill interval.
func BenchmarkAllocCreditSend(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "alloc-credit-a", "alloc-credit-b", ncs.Options{
		Interface:   ncs.HPI,
		FlowControl: ncs.FlowCredit,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 4096)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	conn.Close()
	peer.Close()
	<-done
}

// BenchmarkAllocStreamSend gates the multiplexed-stream send path: the
// same threaded 4KB HPI credit-controlled send as
// BenchmarkAllocCreditSend, but on a stream opened with OpenStream —
// per-stream admission (the stream's own credit engine), the stream ID
// in the frame header, the queue-residency slot, and the receive-side
// demux into the stream's parking queue. The baseline holds the
// per-stream path within one allocation of the stream-0 path.
func BenchmarkAllocStreamSend(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "alloc-stream-a", "alloc-stream-b", ncs.Options{
		Interface:   ncs.HPI,
		FlowControl: ncs.FlowCredit,
	})
	if err != nil {
		b.Fatal(err)
	}
	st, err := conn.OpenStream()
	if err != nil {
		b.Fatal(err)
	}
	accepted := make(chan *ncs.Stream, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rst, err := peer.AcceptStream()
		if err != nil {
			return
		}
		accepted <- rst
		for {
			if _, err := rst.Recv(); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 4096)
	if err := st.Send(msg); err != nil { // open the stream on the peer
		b.Fatal(err)
	}
	<-accepted
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	conn.Close()
	peer.Close()
	<-done
}

// BenchmarkAllocUDPSend gates the real-wire send path: a 4KB send over
// a UDP loopback connection under the interface's defaults (selective
// repeat + credit flow control, since the wire itself is unreliable).
// Every iteration crosses SDU staging, the frame header prepend (an
// iovec, not a copy), the batched sendmmsg path, and the receive side's
// pooled-slot refill — the steady state must stay at fixed allocations
// per message.
func BenchmarkAllocUDPSend(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "alloc-udp-a", "alloc-udp-b", ncs.Options{
		Interface: ncs.UDP,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 4096)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	conn.Close()
	peer.Close()
	<-done
}

// BenchmarkAllocUDPEcho measures the full wire round trip: 4KB out and
// 4KB back through real loopback sockets, covering both directions of
// the framing, demux, and pooled receive queue.
func BenchmarkAllocUDPEcho(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "alloc-udpecho-a", "alloc-udpecho-b", ncs.Options{
		Interface: ncs.UDP,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := peer.Recv()
			if err != nil {
				return
			}
			if err := peer.Send(m); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 4096)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	conn.Close()
	peer.Close()
	<-done
}

// runCollectiveBench drives one collective op across every member of a
// prebuilt group and waits for the stragglers, reporting errors.
func runCollectiveBench(b *testing.B, groups []*ncs.Group, op func(*ncs.Group) error) {
	b.Helper()
	errCh := make(chan error, len(groups))
	for _, g := range groups {
		go func(g *ncs.Group) { errCh <- op(g) }(g)
	}
	for range groups {
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
	}
}

// allocGroup builds the 4-member HPI spanning-tree group the collective
// alloc gates run on.
func allocGroup(b *testing.B, tag string) []*ncs.Group {
	b.Helper()
	nw := ncs.NewNetwork()
	b.Cleanup(nw.Close)
	names := make([]string, 4)
	for i := range names {
		names[i] = fmt.Sprintf("alloc-coll-%s-%d", tag, i)
	}
	groups, err := ncs.BuildGroup(nw, names, ncs.Options{Interface: ncs.HPI},
		ncs.MulticastSpanningTree)
	if err != nil {
		b.Fatal(err)
	}
	return groups
}

// BenchmarkAllocCollectiveBroadcast gates the collective engine's
// allocation behaviour: one 4 KB broadcast across a 4-member group —
// frame staging through the pooled pipeline, inbox demultiplexing, and
// payload views instead of copies. The count covers the whole group
// (all four members' work), not one endpoint.
func BenchmarkAllocCollectiveBroadcast(b *testing.B) {
	groups := allocGroup(b, "bcast")
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCollectiveBench(b, groups, func(g *ncs.Group) error {
			var msg []byte
			if g.Rank() == 0 {
				msg = payload
			}
			_, err := g.Broadcast(0, msg)
			return err
		})
	}
}

// BenchmarkAllocCollectiveAllReduce gates the combining-tree path: a
// 512-byte allreduce (reduce up the rank-ordered tree, broadcast down).
func BenchmarkAllocCollectiveAllReduce(b *testing.B) {
	groups := allocGroup(b, "allred")
	value := make([]byte, 512)
	keep := func(a, _ []byte) []byte { return a }
	b.SetBytes(int64(len(value)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCollectiveBench(b, groups, func(g *ncs.Group) error {
			_, err := g.AllReduce(value, keep)
			return err
		})
	}
}

// BenchmarkAllocIdleConnBytes measures the heap cost of one
// established-but-quiet sharded connection: the number the
// per-connection memory diet (lazy sessions, shared timer wheel)
// drives down, and the one benchgate's bytes/idleconn gate protects.
// The measurement is a single GC-fenced HeapAlloc delta across
// building idleConnSample connection pairs — not a timed loop — so
// the benchmark reports ns/op as 0 and the time gate skips it, while
// the custom metric gates across machines.
func BenchmarkAllocIdleConnBytes(b *testing.B) {
	const idleConnSample = 256
	nw := ncs.NewNetwork()
	defer nw.Close()
	opts := ncs.Options{Interface: ncs.HPI, Runtime: ncs.RuntimeSharded}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	conns := make([]*ncs.Connection, 0, 2*idleConnSample)
	for i := 0; i < idleConnSample; i++ {
		c, p, err := ncs.Pair(nw, fmt.Sprintf("idle-a-%d", i), fmt.Sprintf("idle-b-%d", i), opts)
		if err != nil {
			b.Fatal(err)
		}
		conns = append(conns, c, p)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	per := 0.0
	if after.HeapAlloc > before.HeapAlloc {
		per = float64(after.HeapAlloc-before.HeapAlloc) / float64(len(conns))
	}

	for i := 0; i < b.N; i++ {
		// The measurement above is one-shot; nothing meaningful to time.
	}
	runtime.KeepAlive(conns)
	b.ReportMetric(per, "bytes/idleconn")
	b.ReportMetric(0, "ns/op")
}

// ---------------------------------------------------------------------------
// RPC layer benchmarks. BenchmarkAllocRPCEchoHPIFastpath is the alloc
// acceptance gate for the RPC subsystem: one full call round trip
// (encode, multiplex, dispatch on the worker pool, reply, demultiplex)
// must stay in low single-digit allocs/op — the pooled call states,
// XDR encoders, and buffer pipeline doing their job.

// rpcEchoPair builds an RPC client/server echo pair over one connection.
func rpcEchoPair(b *testing.B, nw *ncs.Network, opts ncs.Options) (*ncs.RPCClient, *ncs.RPCServer) {
	b.Helper()
	conn, peer, err := ncs.Pair(nw, "rpc-bench-a", "rpc-bench-b", opts)
	if err != nil {
		b.Fatal(err)
	}
	srv := ncs.NewServer(ncs.RPCServerOptions{Workers: 4})
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	srv.ServeConn(peer)
	b.Cleanup(srv.Shutdown)
	cli := ncs.NewClient(conn)
	b.Cleanup(func() { cli.Close() })
	return cli, srv
}

func benchmarkRPCEcho(b *testing.B, opts ncs.Options, size int) {
	b.Helper()
	nw := ncs.NewNetwork()
	defer nw.Close()
	cli, _ := rpcEchoPair(b, nw, opts)
	req := make([]byte, size)
	ctx := context.Background()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, "echo", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocRPCEchoHPIFastpath: the acceptance gate — an RPC echo
// round trip over the §4.2 fast path must cost at most 8 allocs/op.
func BenchmarkAllocRPCEchoHPIFastpath(b *testing.B) {
	benchmarkRPCEcho(b, ncs.Options{Interface: ncs.HPI, FastPath: true}, 4096)
}

// BenchmarkAllocRPCEchoSCI tracks the threaded TCP-loopback variant.
func BenchmarkAllocRPCEchoSCI(b *testing.B) {
	benchmarkRPCEcho(b, ncs.Options{Interface: ncs.SCI}, 4096)
}

// BenchmarkAllocRPCStreamChunk gates the streaming-call chunk path: one
// chunk round trip on an established bidirectional call (client Send,
// handler echo, client Recv) over the threaded HPI runtime. Call setup
// and teardown stay outside the timed region — the steady-state cost is
// what a long-lived stream pays per chunk.
func BenchmarkAllocRPCStreamChunk(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "rpc-chunk-a", "rpc-chunk-b", ncs.Options{
		Interface: ncs.HPI,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := ncs.NewServer(ncs.RPCServerOptions{Workers: 2})
	srv.HandleStream("chunkecho", func(_ context.Context, _ []byte, sc *ncs.RPCServerCall) ([]byte, error) {
		for {
			chunk, err := sc.Recv()
			if err != nil {
				return nil, nil
			}
			if err := sc.Send(chunk); err != nil {
				return nil, nil
			}
		}
	})
	srv.ServeConn(peer)
	defer srv.Shutdown()
	c := ncs.NewClient(conn)
	defer c.Close()
	ctx := context.Background()
	cc, err := c.OpenBidiStream(ctx, "chunkecho", nil)
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 4096)
	if err := cc.Send(chunk); err != nil { // warm the chunk pipeline
		b.Fatal(err)
	}
	if _, err := cc.Recv(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cc.Send(chunk); err != nil {
			b.Fatal(err)
		}
		if _, err := cc.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cc.CloseSend()
	if _, err := cc.Result(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRPCEchoSizes sweeps payload sizes over the fast path.
func BenchmarkRPCEchoSizes(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(sizeName(size), func(b *testing.B) {
			benchmarkRPCEcho(b, ncs.Options{Interface: ncs.HPI, FastPath: true}, size)
		})
	}
}

// BenchmarkRPCEchoConcurrent measures multiplexed throughput: many
// goroutines share one threaded HPI connection and its server pool.
func BenchmarkRPCEchoConcurrent(b *testing.B) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	cli, _ := rpcEchoPair(b, nw, ncs.Options{Interface: ncs.HPI})
	req := make([]byte, 512)
	b.SetBytes(int64(len(req)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := cli.Call(ctx, "echo", req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func sizeName(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
