// Command ncs-echo is the paper's §4.3 round-trip measurement program
// as a standalone tool: it sets up a client and an echo server as two
// NCS systems and reports round-trip times across the message-size
// sweep, for any interface / flow-control / error-control combination.
//
// Usage:
//
//	ncs-echo                              # defaults: HPI, 100 iterations
//	ncs-echo -iface aci -fc credit -ec sr -loss 0.01
//	ncs-echo -iface sci -sizes 1,1024,65536 -iters 50
//	ncs-echo -iface udp -loss 0.01            # real loopback sockets, impaired
//	ncs-echo -fastpath
//	ncs-echo -stats 1s                    # periodic telemetry line on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ncs"
)

func main() {
	var (
		iface    = flag.String("iface", "hpi", "interface: sci, aci, hpi, udp")
		fc       = flag.String("fc", "", "flow control: none, credit, window, rate (default per interface)")
		ec       = flag.String("ec", "", "error control: none, sr, gbn (default per interface)")
		sizesArg = flag.String("sizes", "1,1024,4096,8192,16384,32768,65536", "comma-separated message sizes")
		iters    = flag.Int("iters", 100, "iterations per size (best/worst dropped)")
		loss     = flag.Float64("loss", 0, "ACI cell loss rate [0,1]")
		fastpath = flag.Bool("fastpath", false, "use the thread-bypassing fast path")
		sdu      = flag.Int("sdu", 4096, "SDU size (segmentation unit)")
		stats    = flag.Duration("stats", 0, "emit a telemetry stats line to stderr at this interval (0: off)")
	)
	flag.Parse()
	if err := run(*iface, *fc, *ec, *sizesArg, *iters, *loss, *fastpath, *sdu, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "ncs-echo:", err)
		os.Exit(1)
	}
}

// statsLoop prints one telemetry line per interval until stop closes:
// per-interval message and byte counts from the unified instrument
// registry, plus the recovery counters that explain a slow interval.
// It writes to stderr so the stdout results table stays clean.
func statsLoop(every time.Duration, stop <-chan struct{}) {
	prev := ncs.CaptureMetrics()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			cur := ncs.CaptureMetrics()
			d := cur.Delta(prev)
			prev = cur
			fmt.Fprintf(os.Stderr,
				"stats: sent %d msgs / %d B, recv %d msgs / %d B, retransmit %d SDUs, window stalls %d, credit waits %d\n",
				d.Counters["core.conn.send_msgs_total"],
				d.Counters["core.conn.send_bytes_total"],
				d.Counters["core.conn.recv_msgs_total"],
				d.Counters["core.conn.recv_bytes_total"],
				d.Counters["errctl.send.retransmit_sdus_total"],
				d.Counters["flowctl.window.stall_total"],
				d.Counters["flowctl.credit.wait_total"])
		}
	}
}

func run(iface, fc, ec, sizesArg string, iters int, loss float64, fastpath bool, sdu int, stats time.Duration) error {
	opts := ncs.Options{SDUSize: sdu, FastPath: fastpath}
	switch iface {
	case "sci":
		opts.Interface = ncs.SCI
	case "aci":
		opts.Interface = ncs.ACI
		opts.QoS = ncs.QoS{CellLossRate: loss}
	case "hpi":
		opts.Interface = ncs.HPI
	case "udp":
		// Real loopback datagram sockets; -loss here is per datagram
		// (one SDU packet each), applied by the seeded wire impairer
		// as i.i.d. loss (a degenerate one-state Gilbert–Elliott).
		opts.Interface = ncs.UDP
		if loss > 0 {
			opts.UDPLink = &ncs.UDPLink{Impair: ncs.Impairments{
				Burst: ncs.GilbertElliott{LossGood: loss},
			}}
		}
	default:
		return fmt.Errorf("unknown interface %q", iface)
	}
	switch fc {
	case "":
	case "none":
		opts.FlowControl = ncs.FlowNone
	case "credit":
		opts.FlowControl = ncs.FlowCredit
	case "window":
		opts.FlowControl = ncs.FlowWindow
	case "rate":
		opts.FlowControl = ncs.FlowRate
	default:
		return fmt.Errorf("unknown flow control %q", fc)
	}
	switch ec {
	case "":
	case "none":
		opts.ErrorControl = ncs.ErrorNone
	case "sr":
		opts.ErrorControl = ncs.ErrorSelectiveRepeat
	case "gbn":
		opts.ErrorControl = ncs.ErrorGoBackN
	default:
		return fmt.Errorf("unknown error control %q", ec)
	}

	var sizes []int
	for _, f := range strings.Split(sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", f, err)
		}
		sizes = append(sizes, n)
	}

	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "echo-client", "echo-server", opts)
	if err != nil {
		return err
	}

	go func() {
		for {
			m, err := peer.Recv()
			if err != nil {
				return
			}
			if err := peer.Send(m); err != nil {
				return
			}
		}
	}()

	if stats > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go statsLoop(stats, stop)
	}

	fmt.Printf("NCS echo: iface=%s fc=%v ec=%v fastpath=%v sdu=%d iters=%d\n",
		iface, opts.FlowControl, opts.ErrorControl, fastpath, sdu, iters)
	fmt.Printf("%-10s %14s %14s\n", "size", "rtt", "throughput")
	for _, size := range sizes {
		msg := make([]byte, size)
		samples := make([]time.Duration, 0, iters)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if err := conn.Send(msg); err != nil {
				return err
			}
			if _, err := conn.Recv(); err != nil {
				return err
			}
			samples = append(samples, time.Since(start))
		}
		rtt := trimmedMean(samples)
		mbps := float64(2*size) / rtt.Seconds() / 1e6
		fmt.Printf("%-10d %14v %11.2f MB/s\n", size, rtt, mbps)
	}
	return nil
}

func trimmedMean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	if len(ds) <= 2 {
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}
	min, max := ds[0], ds[0]
	var sum time.Duration
	for _, d := range ds {
		sum += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return (sum - min - max) / time.Duration(len(ds)-2)
}
