package main

import (
	"testing"
	"time"
)

func TestRunBasicConfigs(t *testing.T) {
	cases := []struct {
		name          string
		iface, fc, ec string
		fastpath      bool
		loss          float64
	}{
		{name: "hpi-defaults", iface: "hpi"},
		{name: "sci-defaults", iface: "sci"},
		{name: "aci-credit-sr", iface: "aci", fc: "credit", ec: "sr", loss: 0.01},
		{name: "hpi-fastpath", iface: "hpi", fastpath: true},
		{name: "aci-window-gbn", iface: "aci", fc: "window", ec: "gbn"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.iface, tc.fc, tc.ec, "1,1024", 3, tc.loss, tc.fastpath, 512, 0)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunWithStats drives the sweep with the periodic stats line
// enabled at a short interval: the run must complete and the ticker
// goroutine must not outlive it (run closes its stop channel).
func TestRunWithStats(t *testing.T) {
	if err := run("hpi", "", "", "1,1024", 5, 0, false, 512, time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("carrier-pigeon", "", "", "1", 1, 0, false, 512, 0); err == nil {
		t.Error("bad interface accepted")
	}
	if err := run("hpi", "psychic", "", "1", 1, 0, false, 512, 0); err == nil {
		t.Error("bad flow control accepted")
	}
	if err := run("hpi", "", "hope", "1", 1, 0, false, 512, 0); err == nil {
		t.Error("bad error control accepted")
	}
	if err := run("hpi", "", "", "1,banana", 1, 0, false, 512, 0); err == nil {
		t.Error("bad size list accepted")
	}
}

func TestTrimmedMean(t *testing.T) {
	ds := []time.Duration{10, 1, 100} // drops 1 and 100
	if got := trimmedMean(ds); got != 10 {
		t.Fatalf("trimmedMean = %v", got)
	}
	if got := trimmedMean([]time.Duration{4, 6}); got != 5 {
		t.Fatalf("trimmedMean(2) = %v", got)
	}
}
