// Command benchgate is the CI benchmark-regression gate: it compares
// two Go benchmark output files (a checked-in baseline and a fresh
// run, both produced with -benchmem, ideally -count=6 or more) and
// exits nonzero when the fresh run regresses.
//
// Gates:
//
//   - allocs/op: any increase of the median fails. Allocation counts
//     are deterministic enough that a +1 is a real regression (a lost
//     pooling or staging optimisation), which is exactly what the
//     pooled-buffer pipeline's acceptance numbers protect.
//   - ns/op: a median regression beyond -time-threshold (default 10%)
//     fails — but only when both files were recorded on the same CPU
//     model (the "cpu:" header line). Absolute ns/op is meaningless
//     across machines, so a cross-CPU comparison downgrades time
//     regressions to warnings instead of flaking PRs red whenever the
//     CI runner generation differs from the baseline machine.
//   - bytes/idleconn: a median regression beyond -mem-threshold
//     (default 10%) fails. This custom metric (ReportMetric from the
//     idle-memory benchmark) is the heap cost of one established,
//     quiet connection — the number the 100k-connection scale work
//     drove down — and, like allocs/op, it is CPU-independent, so it
//     gates across machines.
//
// Benchmarks present in only one file are reported but do not fail
// the gate: a brand-new benchmark has no baseline yet (refresh the
// baseline to start gating it — see README "Scaling" for the refresh
// command), and a deleted one gates nothing.
//
// Usage:
//
//	benchgate [-time-threshold 0.10] [-mem-threshold 0.10] baseline.txt current.txt
//
// benchstat (golang.org/x/perf) renders a nicer statistical comparison
// of the same two files; benchgate exists to turn the comparison into
// a reliable pass/fail without parsing benchstat's output format.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("time-threshold", 0.10, "fail when median ns/op regresses more than this fraction")
	memThreshold := flag.Float64("mem-threshold", 0.10, "fail when median bytes/idleconn regresses more than this fraction")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-time-threshold 0.10] [-mem-threshold 0.10] baseline.txt current.txt")
		os.Exit(2)
	}
	base, baseCPU, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, curCPU, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report, failed := compare(base, cur, *threshold, *memThreshold, baseCPU == curCPU)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}
