package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line's gated metrics.
type sample struct {
	nsPerOp      float64
	allocsPerOp  float64
	hasAllocs    bool
	bytesPerConn float64 // custom "bytes/idleconn" metric (ReportMetric)
	hasBytes     bool
}

// bench aggregates repeated runs (-count=N) of one benchmark.
type bench struct {
	times  []float64
	allocs []float64
	bytes  []float64 // bytes/idleconn samples
}

// parseFile reads Go benchmark output: lines of the form
//
//	BenchmarkName-8  92341  12345 ns/op  67 B/op  8 allocs/op
//
// keyed by benchmark name with the trailing -GOMAXPROCS stripped, so a
// baseline recorded on an 8-core machine compares against a 4-core
// run. The "cpu:" header line, when present, identifies the machine
// the run was recorded on (see compare: absolute ns/op is only gated
// between matching CPUs).
func parseFile(path string) (map[string]*bench, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	out := make(map[string]*bench)
	cpu := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		name, s, ok := parseLine(line)
		if !ok {
			continue
		}
		b := out[name]
		if b == nil {
			b = &bench{}
			out[name] = b
		}
		b.times = append(b.times, s.nsPerOp)
		if s.hasAllocs {
			b.allocs = append(b.allocs, s.allocsPerOp)
		}
		if s.hasBytes {
			b.bytes = append(b.bytes, s.bytesPerConn)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, "", fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, cpu, nil
}

// parseLine extracts one benchmark result line; ok is false for
// non-benchmark lines (headers, PASS, etc.).
func parseLine(line string) (name string, s sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	name = stripProcs(fields[0])
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp = v
			ok = true
		case "allocs/op":
			s.allocsPerOp = v
			s.hasAllocs = true
		case "bytes/idleconn":
			// The idle-memory benchmark's custom metric (ReportMetric):
			// estimated heap bytes per established-but-quiet connection.
			s.bytesPerConn = v
			s.hasBytes = true
			ok = true
		}
	}
	return name, s, ok
}

// stripProcs removes the -GOMAXPROCS suffix from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare gates cur against base, returning a human-readable report
// and whether any gate failed. The time gate only fails when both
// runs were recorded on the same CPU model: absolute ns/op is not
// comparable across machines (a runner-generation change would flake
// every PR red), so on a CPU mismatch time regressions downgrade to
// warnings while the allocs/op gate — deterministic everywhere —
// stays hard. The bytes/idleconn gate is likewise CPU-independent
// (heap layout does not depend on clock speed) and fails on a median
// regression beyond memThreshold: it is how the per-connection memory
// diet stays dieted.
func compare(base, cur map[string]*bench, timeThreshold, memThreshold float64, sameCPU bool) (string, bool) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	failed := false
	if !sameCPU {
		b.WriteString("note: baseline and current runs are from different CPUs; time/op regressions are warnings, allocs/op still gates\n")
	}
	for _, name := range names {
		c := cur[name]
		bl, inBase := base[name]
		if !inBase {
			fmt.Fprintf(&b, "NEW    %s: no baseline (refresh testdata/bench-baseline.txt to start gating it)\n", name)
			continue
		}
		ct, bt := median(c.times), median(bl.times)
		switch {
		case bt > 0 && ct > bt*(1+timeThreshold) && sameCPU:
			fmt.Fprintf(&b, "FAIL   %s: time/op %.0fns vs baseline %.0fns (+%.1f%%, threshold %.0f%%)\n",
				name, ct, bt, 100*(ct/bt-1), 100*timeThreshold)
			failed = true
		case bt > 0 && ct > bt*(1+timeThreshold):
			fmt.Fprintf(&b, "WARN   %s: time/op %.0fns vs baseline %.0fns (+%.1f%%, different CPU — not gated)\n",
				name, ct, bt, 100*(ct/bt-1))
		default:
			fmt.Fprintf(&b, "ok     %s: time/op %.0fns vs %.0fns\n", name, ct, bt)
		}
		if len(c.allocs) > 0 && len(bl.allocs) > 0 {
			ca, ba := median(c.allocs), median(bl.allocs)
			if ca > ba {
				fmt.Fprintf(&b, "FAIL   %s: allocs/op %.0f vs baseline %.0f — the pooled pipeline lost an optimisation\n",
					name, ca, ba)
				failed = true
			}
		}
		if len(c.bytes) > 0 && len(bl.bytes) > 0 {
			cm, bm := median(c.bytes), median(bl.bytes)
			if bm > 0 && cm > bm*(1+memThreshold) {
				fmt.Fprintf(&b, "FAIL   %s: bytes/idleconn %.0f vs baseline %.0f (+%.1f%%, threshold %.0f%%) — idle connections got fatter\n",
					name, cm, bm, 100*(cm/bm-1), 100*memThreshold)
				failed = true
			}
		}
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(&b, "GONE   %s: in baseline but not in this run\n", name)
		}
	}
	if failed {
		b.WriteString("benchgate: REGRESSION — see FAIL lines above\n")
	} else {
		b.WriteString("benchgate: all gates passed\n")
	}
	return b.String(), failed
}
