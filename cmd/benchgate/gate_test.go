package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineSample = `goos: linux
goarch: amd64
pkg: ncs
BenchmarkAllocHPIFastpathEcho-8   	  123456	      9000 ns/op	 455.1 MB/s	      67 B/op	       2 allocs/op
BenchmarkAllocHPIFastpathEcho-8   	  123456	     10000 ns/op	 455.1 MB/s	      67 B/op	       2 allocs/op
BenchmarkAllocHPIFastpathEcho-8   	  123456	     11000 ns/op	 455.1 MB/s	      67 B/op	       2 allocs/op
BenchmarkAllocSCISend4KB-8        	   50000	     20000 ns/op	     120 B/op	       2 allocs/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFile(t *testing.T) {
	p := writeTemp(t, "base.txt", baselineSample)
	got, _, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b := got["BenchmarkAllocHPIFastpathEcho"]
	if b == nil {
		t.Fatalf("benchmark not parsed (keys: %v)", got)
	}
	if len(b.times) != 3 || median(b.times) != 10000 {
		t.Fatalf("times = %v, want 3 samples with median 10000", b.times)
	}
	if len(b.allocs) != 3 || median(b.allocs) != 2 {
		t.Fatalf("allocs = %v, want 3 samples of 2", b.allocs)
	}
}

func TestStripProcsCrossMachine(t *testing.T) {
	// A 4-core run must compare against an 8-core baseline.
	cur := `BenchmarkAllocSCISend4KB-4  50000  20500 ns/op  120 B/op  2 allocs/op` + "\n"
	base, _, err := parseFile(writeTemp(t, "b.txt", baselineSample))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := parseFile(writeTemp(t, "c.txt", cur))
	if err != nil {
		t.Fatal(err)
	}
	report, failed := compare(base, c, 0.10, 0.10, true)
	if failed {
		t.Fatalf("2.5%% time delta failed the 10%% gate:\n%s", report)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	base, _, _ := parseFile(writeTemp(t, "b.txt", baselineSample))
	cur := `BenchmarkAllocSCISend4KB-8  50000  20000 ns/op  180 B/op  3 allocs/op` + "\n"
	c, _, _ := parseFile(writeTemp(t, "c.txt", cur))
	report, failed := compare(base, c, 0.10, 0.10, true)
	if !failed {
		t.Fatalf("+1 alloc/op passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op 3 vs baseline 2") {
		t.Fatalf("report does not explain the alloc regression:\n%s", report)
	}
}

func TestTimeRegressionFails(t *testing.T) {
	base, _, _ := parseFile(writeTemp(t, "b.txt", baselineSample))
	cur := `BenchmarkAllocSCISend4KB-8  50000  25000 ns/op  120 B/op  2 allocs/op` + "\n"
	c, _, _ := parseFile(writeTemp(t, "c.txt", cur))
	report, failed := compare(base, c, 0.10, 0.10, true)
	if !failed {
		t.Fatalf("+25%% time/op passed the 10%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("no FAIL line:\n%s", report)
	}
}

func TestTimeImprovementAndSlackPass(t *testing.T) {
	base, _, _ := parseFile(writeTemp(t, "b.txt", baselineSample))
	cur := `BenchmarkAllocSCISend4KB-8  50000  21900 ns/op  120 B/op  2 allocs/op
BenchmarkAllocHPIFastpathEcho-8  123456  5000 ns/op  67 B/op  1 allocs/op
` // -9.5% is inside the 10% band; faster + fewer allocs always passes
	c, _, _ := parseFile(writeTemp(t, "c.txt", cur))
	report, failed := compare(base, c, 0.10, 0.10, true)
	if failed {
		t.Fatalf("improvement or in-band noise failed the gate:\n%s", report)
	}
}

// TestCrossCPUTimeNotGated pins the flake guard: when baseline and
// current runs come from different CPU models, a time/op blowup is a
// warning (absolute ns/op is not comparable across machines) — but an
// allocs/op regression still fails, because allocation counts are
// deterministic everywhere.
func TestCrossCPUTimeNotGated(t *testing.T) {
	baseSrc := "cpu: Intel(R) Xeon(R) Processor @ 2.10GHz\n" + baselineSample
	curSrc := "cpu: AMD EPYC 7763\nBenchmarkAllocSCISend4KB-8  50000  90000 ns/op  120 B/op  2 allocs/op\n"
	base, baseCPU, err := parseFile(writeTemp(t, "b.txt", baseSrc))
	if err != nil {
		t.Fatal(err)
	}
	c, curCPU, err := parseFile(writeTemp(t, "c.txt", curSrc))
	if err != nil {
		t.Fatal(err)
	}
	if baseCPU == curCPU || baseCPU == "" || curCPU == "" {
		t.Fatalf("cpu lines not parsed: %q vs %q", baseCPU, curCPU)
	}
	report, failed := compare(base, c, 0.10, 0.10, baseCPU == curCPU)
	if failed {
		t.Fatalf("cross-CPU time delta failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "WARN") {
		t.Fatalf("cross-CPU time regression not surfaced as a warning:\n%s", report)
	}

	// Same machines, same numbers: the alloc gate still bites.
	curSrc = "cpu: AMD EPYC 7763\nBenchmarkAllocSCISend4KB-8  50000  90000 ns/op  120 B/op  5 allocs/op\n"
	c, _, _ = parseFile(writeTemp(t, "c2.txt", curSrc))
	if _, failed := compare(base, c, 0.10, 0.10, false); !failed {
		t.Fatal("allocs/op regression passed on cross-CPU comparison")
	}
}

// TestIdleConnBytesGate pins the memory gate: the bytes/idleconn
// custom metric (ReportMetric from the idle-memory benchmark) fails
// on a median regression beyond the mem threshold, passes inside it,
// and — unlike ns/op — gates even across CPU models, because heap
// layout does not depend on clock speed.
func TestIdleConnBytesGate(t *testing.T) {
	baseSrc := `BenchmarkAllocIdleConnBytes-8  1  0 ns/op  800.0 bytes/idleconn
BenchmarkAllocIdleConnBytes-8  1  0 ns/op  820.0 bytes/idleconn
BenchmarkAllocIdleConnBytes-8  1  0 ns/op  810.0 bytes/idleconn
`
	base, _, err := parseFile(writeTemp(t, "b.txt", baseSrc))
	if err != nil {
		t.Fatal(err)
	}

	// +5% median: inside the 10% band.
	okSrc := `BenchmarkAllocIdleConnBytes-8  1  0 ns/op  850.0 bytes/idleconn` + "\n"
	c, _, _ := parseFile(writeTemp(t, "ok.txt", okSrc))
	report, failed := compare(base, c, 0.10, 0.10, false)
	if failed {
		t.Fatalf("+5%% bytes/idleconn failed the 10%% gate:\n%s", report)
	}

	// +50% median: fat connections fail, even cross-CPU.
	fatSrc := `BenchmarkAllocIdleConnBytes-8  1  0 ns/op  1215.0 bytes/idleconn` + "\n"
	c, _, _ = parseFile(writeTemp(t, "fat.txt", fatSrc))
	report, failed = compare(base, c, 0.10, 0.10, false)
	if !failed {
		t.Fatalf("+50%% bytes/idleconn passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "bytes/idleconn 1215 vs baseline 810") {
		t.Fatalf("report does not explain the memory regression:\n%s", report)
	}
}

func TestNewBenchmarkDoesNotFail(t *testing.T) {
	base, _, _ := parseFile(writeTemp(t, "b.txt", baselineSample))
	cur := baselineSample + "BenchmarkBrandNew-8  1000  99999 ns/op  5000 B/op  99 allocs/op\n"
	c, _, _ := parseFile(writeTemp(t, "c.txt", cur))
	report, failed := compare(base, c, 0.10, 0.10, true)
	if failed {
		t.Fatalf("unbaselined benchmark failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "NEW") {
		t.Fatalf("new benchmark not reported:\n%s", report)
	}
}
