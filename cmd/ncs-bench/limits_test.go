package main

import (
	"strings"
	"testing"
)

func TestParseMemAvailable(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want int64
	}{
		{"typical", "MemTotal:       131072000 kB\nMemFree:        1000 kB\nMemAvailable:   2048 kB\n", 2048 * 1024},
		{"first line", "MemAvailable: 16 kB\n", 16 * 1024},
		{"absent", "MemTotal: 1000 kB\nMemFree: 100 kB\n", 0},
		{"malformed value", "MemAvailable: lots kB\n", 0},
		{"empty", "", 0},
	}
	for _, tc := range cases {
		if got := parseMemAvailable([]byte(tc.in)); got != tc.want {
			t.Errorf("%s: parseMemAvailable = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestCheckScaleConnsClamp pins the guard-rail behaviour: a sweep
// that would blow past the host's memory must refuse with a message
// naming the request, the limit, and the -max-conns override — not
// hang or OOM partway through establishment.
func TestCheckScaleConnsClamp(t *testing.T) {
	if err := checkScaleConns(4096, 4096); err != nil {
		t.Fatalf("at-limit request refused: %v", err)
	}
	if err := checkScaleConns(100, 100000); err != nil {
		t.Fatalf("small request refused: %v", err)
	}
	err := checkScaleConns(100000, 8192)
	if err == nil {
		t.Fatal("over-limit request accepted")
	}
	for _, want := range []string{"100000", "8192", "-max-conns"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestRunScaleRefusesOverLimit drives the clamp through runScale: an
// explicit -max-conns below the requested sweep must turn into the
// clear refusal, before any connection is built.
func TestRunScaleRefusesOverLimit(t *testing.T) {
	sc := scaleOpts{max: 100000, maxConns: 1024, dur: 0, out: ""}
	err := runScale(sc)
	if err == nil {
		t.Fatal("over-limit sweep accepted")
	}
	if !strings.Contains(err.Error(), "100000") || !strings.Contains(err.Error(), "1024") {
		t.Fatalf("refusal does not explain itself: %v", err)
	}
}

func TestHostConnLimitPositive(t *testing.T) {
	if limit := hostConnLimit(); limit < 1 {
		t.Fatalf("hostConnLimit = %d, want >= 1", limit)
	}
}
