package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ncs/internal/bench"
)

// quickScale, quickCollective and quickPressure keep test runs of the
// sweep experiments small.
var (
	quickScale      = scaleOpts{max: 16, dur: 50 * time.Millisecond, out: ""}
	quickCollective = collectiveOpts{members: 3, iters: 2, maxSize: 4096, out: ""}
	quickPressure   = pressureOpts{conns: 32, dur: 100 * time.Millisecond, out: ""}
	// quickWire's near-zero ratio floor keeps the functional test from
	// asserting a performance property; the real floor is the wire CI
	// gate's business.
	quickWire = wireOpts{dur: 30 * time.Millisecond, out: "", minRatio: 0.01, minSpeedup: 0.01}
	// quickStreams likewise: a handful of calls and a ratio ceiling far
	// above anything a functional run can hit.
	quickStreams = streamsOpts{calls: 30, maxRatio: 1000, out: ""}
)

func TestRunTable1(t *testing.T) {
	if err := run("table1", "sun4", 2, quickScale, quickCollective, quickPressure, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig12SmallIters(t *testing.T) {
	if testing.Short() {
		t.Skip("echo sweep")
	}
	if err := run("fig12", "rs6000", 2, quickScale, quickCollective, quickPressure, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
}

func TestRunRPC(t *testing.T) {
	if err := run("rpc", "sun4", 1, quickScale, quickCollective, quickPressure, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
}

func TestRunLoss(t *testing.T) {
	if err := run("loss", "sun4", 1, quickScale, quickCollective, quickPressure, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
}

// TestRunScale runs a miniature sweep and checks the JSON artifact is
// written and well-formed.
func TestRunScale(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scale.json")
	sc := scaleOpts{max: 32, dur: 50 * time.Millisecond, out: out}
	if err := run("scale", "sun4", 1, sc, quickCollective, quickPressure, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.ScaleResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_scale.json does not parse: %v", err)
	}
	// Two runtimes × the one sweep point under the cap ({16}).
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Messages == 0 || p.Throughput <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
	}
}

// TestRunScaleTelemetry checks that -telemetry embeds a non-empty
// instrument snapshot in the JSON artifact: the sweep's own echo
// traffic must have moved the core counters.
func TestRunScaleTelemetry(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scale.json")
	sc := scaleOpts{max: 16, dur: 50 * time.Millisecond, out: out, telemetry: true}
	if err := run("scale", "sun4", 1, sc, quickCollective, quickPressure, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.ScaleResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_scale.json does not parse: %v", err)
	}
	if res.Telemetry == nil {
		t.Fatal("-telemetry set but the artifact has no telemetry section")
	}
	if n := res.Telemetry.Counters["core.conn.send_msgs_total"]; n == 0 {
		t.Fatalf("telemetry delta shows no sent messages across the sweep: %+v", res.Telemetry.Counters)
	}
}

// captureStreams runs fn with stdout and stderr redirected to pipes
// and returns what each stream received.
func captureStreams(t *testing.T, fn func()) (stdout, stderr string) {
	t.Helper()
	or, ow, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	er, ew, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = ow, ew
	defer func() { os.Stdout, os.Stderr = oldOut, oldErr }()
	outc := make(chan string, 1)
	errc := make(chan string, 1)
	go func() { b, _ := io.ReadAll(or); outc <- string(b) }()
	go func() { b, _ := io.ReadAll(er); errc <- string(b) }()
	fn()
	ow.Close()
	ew.Close()
	return <-outc, <-errc
}

// TestScaleDiagnosticsOnStderr pins the stream split: the results
// table goes to stdout, the "wrote <path>" diagnostic to stderr, so a
// redirected table is never interleaved with bookkeeping lines.
func TestScaleDiagnosticsOnStderr(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scale.json")
	sc := scaleOpts{max: 16, dur: 50 * time.Millisecond, out: out}
	var runErr error
	stdout, stderr := captureStreams(t, func() {
		runErr = run("scale", "sun4", 1, sc, quickCollective, quickPressure, quickWire, quickStreams)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if strings.Contains(stdout, "wrote ") {
		t.Errorf("\"wrote\" diagnostic interleaved with the stdout results table:\n%s", stdout)
	}
	if !strings.Contains(stderr, "wrote "+out) {
		t.Errorf("stderr missing the \"wrote %s\" diagnostic: %q", out, stderr)
	}
	if !strings.Contains(stdout, "Scale experiment") && !strings.Contains(stdout, "runtime") {
		t.Errorf("stdout does not look like the results table:\n%s", stdout)
	}
}

// TestRunCollective runs a miniature collective sweep and checks the
// JSON artifact is written and well-formed.
func TestRunCollective(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_collective.json")
	cc := collectiveOpts{members: 3, iters: 2, maxSize: 4096, out: out}
	if err := run("collective", "sun4", 1, quickScale, cc, quickPressure, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.CollectiveResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_collective.json does not parse: %v", err)
	}
	// 2 runtimes × 2 algorithms × 3 ops × 1 size under the cap.
	if len(res.Points) != 12 {
		t.Fatalf("got %d points, want 12", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MicrosPer <= 0 || p.OpsPerSec <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
	}
}

// TestRunStreams runs a miniature streams sweep and checks the JSON
// artifact is written and well-formed. The generous ratio ceiling
// keeps this a functional test; the perf assertion belongs to the
// full-size acceptance run and the CI smoke.
func TestRunStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("paced bulk sweep")
	}
	out := filepath.Join(t.TempDir(), "BENCH_streams.json")
	so := streamsOpts{calls: 50, maxRatio: 1000, out: out}
	if err := run("streams", "sun4", 1, quickScale, quickCollective, quickPressure, quickWire, so); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.StreamsResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_streams.json does not parse: %v", err)
	}
	// {netsim, udp} × {baseline, contended}.
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Calls == 0 || p.P99Micros <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
		if p.Phase == "contended" && p.BulkBytes == 0 {
			t.Fatalf("contended point moved no bulk: %+v", p)
		}
	}
}

// TestRunPressure runs a miniature pressure sweep and checks the JSON
// artifact is written and well-formed, with the verdict enforced (run
// returns an error when the sweep regresses, so a failed acceptance
// cannot write an artifact and still exit 0).
func TestRunPressure(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_pressure.json")
	pc := pressureOpts{conns: 32, dur: 100 * time.Millisecond, out: out}
	if err := run("pressure", "sun4", 1, quickScale, quickCollective, pc, quickWire, quickStreams); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.PressureResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_pressure.json does not parse: %v", err)
	}
	// The four sweep cells: static/clean, static/burst, aimd/burst,
	// rtt/burst.
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Messages == 0 || p.Throughput <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
	}
	if res.PeakOutstanding <= 0 || res.PeakOutstanding > res.BufferBudget {
		t.Fatalf("fan-in peak %d outside (0, budget %d]", res.PeakOutstanding, res.BufferBudget)
	}
}

// TestRunWire runs a miniature wire sweep and checks the JSON artifact
// is written and well-formed, with every cell populated for both
// transports.
func TestRunWire(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_wire.json")
	wc := wireOpts{dur: 30 * time.Millisecond, out: out, minRatio: 0.01, minSpeedup: 0.01}
	if err := run("wire", "sun4", 1, quickScale, quickCollective, quickPressure, wc, quickStreams); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.WireResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_wire.json does not parse: %v", err)
	}
	// 2 transports × 3 sizes × 3 batch depths.
	if len(res.Points) != 18 {
		t.Fatalf("got %d points, want 18", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Sent == 0 || p.Delivered == 0 || p.Throughput <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
		if p.Transport == "netsim" && p.SyscallsPerMsg != 0 {
			t.Fatalf("netsim cell reports syscalls: %+v", p)
		}
	}
}

// TestRunRejectsUnknown pins the failure mode: an unknown -exp value
// must return an error (main exits nonzero on it) that lists the valid
// experiments, so a typo cannot silently succeed.
func TestRunRejectsUnknown(t *testing.T) {
	err := run("fig99", "sun4", 1, quickScale, quickCollective, quickPressure, quickWire, quickStreams)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range []string{"table1", "fig12", "rpc", "loss", "scale", "collective", "pressure", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-experiment error does not list %q: %v", want, err)
		}
	}
	if err := run("fig12", "cray", 1, quickScale, quickCollective, quickPressure, quickWire, quickStreams); err == nil {
		t.Error("unknown platform accepted")
	}
	for _, max := range []int{0, -1} {
		sc := quickScale
		sc.max = max
		if err := run("scale", "sun4", 1, sc, quickCollective, quickPressure, quickWire, quickStreams); err == nil {
			t.Errorf("scale accepted -scale-max %d", max)
		}
	}
	for _, conns := range []int{0, -1} {
		pc := quickPressure
		pc.conns = conns
		if err := run("pressure", "sun4", 1, quickScale, quickCollective, pc, quickWire, quickStreams); err == nil {
			t.Errorf("pressure accepted -pressure-conns %d", conns)
		}
	}
}

// TestExperimentListComplete keeps the usage/error roster in sync with
// the runnable experiments.
func TestExperimentListComplete(t *testing.T) {
	exps := experiments("sun4", 1, quickScale, quickCollective, quickPressure, quickWire, quickStreams)
	list := experimentList("sun4", 1, quickScale, quickCollective, quickPressure, quickWire, quickStreams)
	if len(list) != len(exps)+1 { // +1 for "all"
		t.Fatalf("experiment list %v out of sync with table (%d entries)", list, len(exps))
	}
	for name := range exps {
		found := false
		for _, l := range list {
			if l == name {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from list %v", name, list)
		}
	}
}
