package main

import "testing"

func TestRunTable1(t *testing.T) {
	if err := run("table1", "sun4", 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig12SmallIters(t *testing.T) {
	if testing.Short() {
		t.Skip("echo sweep")
	}
	if err := run("fig12", "rs6000", 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRPC(t *testing.T) {
	if err := run("rpc", "sun4", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunLoss(t *testing.T) {
	if err := run("loss", "sun4", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run("fig99", "sun4", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("fig12", "cray", 1); err == nil {
		t.Error("unknown platform accepted")
	}
}
