package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ncs"
	"ncs/internal/bench"
)

// The rpc experiment is not a figure from the paper: it measures the
// request/response layer built on top of the substrate the paper
// evaluates. One full RPC round trip covers XDR framing, call-ID
// multiplexing, transport, and server worker-pool dispatch, so the
// sweep shows what the §4.2 fast path buys an RPC workload, and the
// throughput run shows how far one connection multiplexes.

// rpcVariants are the connection configurations the latency sweep
// compares.
var rpcVariants = []struct {
	label string
	opts  ncs.Options
}{
	{"HPI-fastpath", ncs.Options{Interface: ncs.HPI, FastPath: true}},
	{"HPI-threaded", ncs.Options{Interface: ncs.HPI}},
	{"SCI", ncs.Options{Interface: ncs.SCI}},
}

var rpcSizes = []int{64, 1024, 4096, 16384, 65536}

func runRPC(iters int) error {
	fig := bench.Figure{
		Title:  "RPC echo round trip (client call -> server dispatch -> reply)",
		YLabel: "median round-trip time",
	}
	for _, v := range rpcVariants {
		series := bench.Series{Label: v.label}
		for _, size := range rpcSizes {
			rtt, err := rpcEchoRTT(v.opts, size, iters)
			if err != nil {
				return fmt.Errorf("rpc %s/%d: %w", v.label, size, err)
			}
			series.Points = append(series.Points, bench.Point{Size: size, Value: rtt})
		}
		fig.Series = append(fig.Series, series)
	}
	fmt.Print(fig.Render())

	rate, callers, err := rpcThroughput(iters)
	if err != nil {
		return err
	}
	fmt.Printf("multiplexed throughput: %.0f calls/s (%d concurrent callers, "+
		"512-byte echo, one HPI connection)\n", rate, callers)
	return nil
}

// rpcEcho builds an echo client/server pair over one connection with
// the given options.
func rpcEcho(nw *ncs.Network, opts ncs.Options, workers int) (*ncs.RPCClient, *ncs.RPCServer, error) {
	conn, peer, err := ncs.Pair(nw, "rpc-bench-client", "rpc-bench-server", opts)
	if err != nil {
		return nil, nil, err
	}
	srv := ncs.NewServer(ncs.RPCServerOptions{Workers: workers})
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	srv.ServeConn(peer)
	return ncs.NewClient(conn), srv, nil
}

// rpcEchoRTT measures the median round-trip time of iters sequential
// echo calls carrying size-byte payloads.
func rpcEchoRTT(opts ncs.Options, size, iters int) (time.Duration, error) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	cli, srv, err := rpcEcho(nw, opts, 2)
	if err != nil {
		return 0, err
	}
	defer srv.Shutdown()
	defer cli.Close()

	req := make([]byte, size)
	ctx := context.Background()
	if _, err := cli.Call(ctx, "echo", req); err != nil { // warm the pools
		return 0, err
	}
	samples := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := cli.Call(ctx, "echo", req); err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(start))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], nil
}

// rpcThroughput floods one threaded HPI connection with concurrent
// 512-byte echo calls and reports the sustained call rate.
func rpcThroughput(iters int) (rate float64, callers int, err error) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	cli, srv, err := rpcEcho(nw, ncs.Options{Interface: ncs.HPI}, 8)
	if err != nil {
		return 0, 0, err
	}
	defer srv.Shutdown()
	defer cli.Close()

	callers = 16
	callsEach := 25 * iters
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	start := time.Now()
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := make([]byte, 512)
			for i := 0; i < callsEach; i++ {
				if _, err := cli.Call(context.Background(), "echo", req); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	return float64(callers*callsEach) / elapsed.Seconds(), callers, nil
}
