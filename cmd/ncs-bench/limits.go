package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// The scale sweep's guard rail: a 100k-connection point is only
// meaningful on a host with the memory to hold 200k endpoints, and the
// failure mode of overshooting is an OOM kill or a swap-storm hang —
// neither of which tells the user what to do. The sweep therefore
// refuses up front, with arithmetic, when the requested point exceeds
// what the host can plausibly hold.

// perConnBudgetBytes is the deliberately conservative planning budget
// for one connection of the sweep: two endpoints' idle heap plus their
// share of queues, inbox slots, and latency samples once traffic
// starts. Idle endpoints measure far below this (see BENCH_scale.json
// idle_bytes_per_conn); the margin is what keeps the guard from
// passing a host straight into the OOM killer.
const perConnBudgetBytes = 64 * 1024

// fallbackConnLimit applies when the host's available memory cannot be
// read (non-Linux, restricted /proc): permissive enough for any sweep
// point on development hardware.
const fallbackConnLimit = 1 << 17

// hostConnLimit derives the largest connection count the sweep should
// attempt from the host's available memory, budgeting half of it at
// perConnBudgetBytes per connection.
func hostConnLimit() int {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return fallbackConnLimit
	}
	avail := parseMemAvailable(data)
	if avail <= 0 {
		return fallbackConnLimit
	}
	limit := int(avail / 2 / perConnBudgetBytes)
	if limit < 1 {
		limit = 1
	}
	return limit
}

// parseMemAvailable extracts MemAvailable from /proc/meminfo content,
// in bytes; 0 when absent or malformed.
func parseMemAvailable(meminfo []byte) int64 {
	sc := bufio.NewScanner(bytes.NewReader(meminfo))
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, "MemAvailable:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || kb < 0 {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// checkScaleConns validates the sweep's largest requested point
// against the effective connection limit, returning a self-explanatory
// error instead of letting the sweep hang or OOM.
func checkScaleConns(requested, limit int) error {
	if requested <= limit {
		return nil
	}
	return fmt.Errorf(
		"scale: %d connections exceeds the limit of %d (budgeting %d KB per connection, 2 endpoints each, against half of available memory); "+
			"run a smaller -scale-max, or raise -max-conns if the host really has the headroom",
		requested, limit, perConnBudgetBytes/1024)
}
