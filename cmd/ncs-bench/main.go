// Command ncs-bench regenerates the tables and figures of the paper's
// evaluation section (§4). Each experiment prints the measured series
// in the paper's layout, with the 1998 published values alongside where
// the paper gives them.
//
// Usage:
//
//	ncs-bench -exp table1
//	ncs-bench -exp fig10
//	ncs-bench -exp fig11
//	ncs-bench -exp fig12 -platform sun4
//	ncs-bench -exp fig12 -platform rs6000
//	ncs-bench -exp fig13
//	ncs-bench -exp rpc
//	ncs-bench -exp loss
//	ncs-bench -exp all
//
// The rpc experiment is not from the paper: it exercises the RPC layer
// (echo latency per interface, multiplexed throughput) built on top of
// the substrate the paper's figures evaluate. The loss experiment
// reproduces the paper's error-control comparison (§3.2): the same
// stream pushed through None, go-back-N, and selective repeat while
// the simulated link loses an increasing fraction of its packets.
package main

import (
	"flag"
	"fmt"
	"os"

	"ncs/internal/bench"
	"ncs/internal/platform"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1, fig10, fig11, fig12, fig13, rpc, loss, all")
		plat  = flag.String("platform", "sun4", "fig12 platform: sun4 or rs6000")
		iters = flag.Int("iters", 10, "iterations per point for echo experiments")
	)
	flag.Parse()
	if err := run(*exp, *plat, *iters); err != nil {
		fmt.Fprintln(os.Stderr, "ncs-bench:", err)
		os.Exit(1)
	}
}

func run(exp, plat string, iters int) error {
	switch exp {
	case "table1":
		return runTable1()
	case "fig10":
		return runFig10()
	case "fig11":
		return runFig11()
	case "fig12":
		return runFig12(plat, iters)
	case "fig13":
		return runFig13(iters)
	case "rpc":
		return runRPC(iters)
	case "loss":
		return runLoss(iters)
	case "all":
		for _, e := range []func() error{
			runTable1,
			runFig10,
			runFig11,
			func() error { return runFig12("sun4", iters) },
			func() error { return runFig12("rs6000", iters) },
			func() error { return runFig13(iters) },
			func() error { return runRPC(iters) },
			func() error { return runLoss(iters) },
		} {
			if err := e(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func runTable1() error {
	res, err := bench.TableI(bench.TableIConfig{})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runFig10() error {
	fig := bench.Figure10(bench.Fig10Config{})
	fmt.Print(fig.Render())
	fmt.Println("paper: curves cross at 4 KB; user-level climbs steeply beyond, " +
		"kernel-level stays near the compute load (overlap).")
	return nil
}

func runFig11() error {
	data := bench.Figure11(bench.Fig11Config{})
	fmt.Print(data.Fig.RenderRatio(data.Native))
	fmt.Println("paper: ratio ≈ 2.6–3.0 at 1 byte, decaying toward 1 at 64 KB.")
	return nil
}

func runFig12(plat string, iters int) error {
	var p platform.Platform
	switch plat {
	case "sun4":
		p = platform.SUN4
	case "rs6000":
		p = platform.RS6000
	default:
		return fmt.Errorf("unknown platform %q (want sun4 or rs6000)", plat)
	}
	fig, err := bench.FigureEcho(
		fmt.Sprintf("Figure 12: point-to-point echo over ATM, %s pair", p.Name),
		p, p, nil, iters)
	if err != nil {
		return err
	}
	fmt.Print(fig.Render())
	switch plat {
	case "sun4":
		fmt.Println("paper: NCS best on SUN-4; MPI and p4 degrade with size.")
	case "rs6000":
		fmt.Println("paper: p4 best on RS6000; PVM worst; NCS second.")
	}
	return nil
}

func runLoss(iters int) error {
	res, err := bench.LossSweep(bench.LossConfig{Messages: iters * 3})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Println("paper: \"none\" keeps line-rate timeliness but drops data; selective repeat\n" +
		"recovers with the fewest retransmissions; go-back-N replays the window tail.")
	return nil
}

func runFig13(iters int) error {
	fig, err := bench.FigureEcho(
		"Figure 13: echo over ATM, heterogeneous SUN-4 ↔ RS6000",
		platform.SUN4, platform.RS6000, nil, iters)
	if err != nil {
		return err
	}
	fmt.Print(fig.Render())
	fmt.Println("paper: NCS best; PVM comparable; p4 poor; MPI collapses at large sizes.")
	return nil
}
