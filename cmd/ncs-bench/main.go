// Command ncs-bench regenerates the tables and figures of the paper's
// evaluation section (§4). Each experiment prints the measured series
// in the paper's layout, with the 1998 published values alongside where
// the paper gives them.
//
// Usage:
//
//	ncs-bench -exp table1
//	ncs-bench -exp fig10
//	ncs-bench -exp fig11
//	ncs-bench -exp fig12 -platform sun4
//	ncs-bench -exp fig12 -platform rs6000
//	ncs-bench -exp fig13
//	ncs-bench -exp rpc
//	ncs-bench -exp loss
//	ncs-bench -exp scale -scale-max 4096 -scale-dur 400ms -scale-out BENCH_scale.json
//	ncs-bench -exp scale -telemetry
//	ncs-bench -exp collective -collective-members 8 -collective-out BENCH_collective.json
//	ncs-bench -exp pressure -pressure-conns 4096 -pressure-out BENCH_pressure.json
//	ncs-bench -exp wire -wire-dur 200ms -wire-out BENCH_wire.json
//	ncs-bench -exp streams -streams-calls 1000 -streams-out BENCH_streams.json
//	ncs-bench -exp all
//
// The rpc experiment is not from the paper: it exercises the RPC layer
// (echo latency per interface, multiplexed throughput) built on top of
// the substrate the paper's figures evaluate. The loss experiment
// reproduces the paper's error-control comparison (§3.2): the same
// stream pushed through None, go-back-N, and selective repeat while
// the simulated link loses an increasing fraction of its packets. The
// scale experiment is the many-connection sweep: a fan-in/fan-out echo
// workload from 16 to thousands of concurrent connections comparing
// the threaded and sharded runtimes on throughput, tail latency,
// goroutine count and allocations, with machine-readable results
// written as JSON for CI archival. The collective experiment sweeps the
// group layer's collectives — broadcast, allreduce, all-to-all — across
// both multicast algorithms (§2's repetitive vs. spanning tree),
// payload sizes, and both runtimes; its headline row shows the
// chunk-pipelined spanning-tree broadcast beating repetitive at large
// payloads. The pressure experiment stresses the credit flow control:
// a slow-consumer fan-in (default 4096 connections) that must hold the
// pooled-buffer population under a fixed budget, then a congestion
// controller sweep (static, AIMD, RTT-adaptive) over clean and
// Gilbert–Elliott burst-loss links whose verdict is that adaptivity
// does not collapse throughput. The wire experiment floods the real
// UDP loopback transport next to the in-process simulator across
// message sizes and syscall batch depths; on platforms with
// sendmmsg/recvmmsg its verdict asserts that batching beats the
// one-syscall-per-datagram wire at 4KB messages. The streams
// experiment demonstrates stream-level head-of-line isolation: RPC
// echo latency is measured on an idle connection, then again while a
// bulk transfer floods a sibling multiplexed stream on the SAME
// connection; per-stream credit windows must keep the contended RPC
// p99 within 2× of the baseline, over both the paced simulator and
// real UDP loopback.
//
// -telemetry embeds a metrics snapshot — the delta of every registered
// instrument across the experiment — in the scale and collective JSON
// artifacts, so archived runs carry the stack's own counters next to
// the measured series. Results tables print to stdout; diagnostics
// (like the "wrote <path>" confirmation) go to stderr, so redirecting
// stdout captures a clean table.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ncs/internal/bench"
	"ncs/internal/platform"
	"ncs/internal/telemetry"
)

// scaleOpts carries the scale experiment's knobs from flags to run.
type scaleOpts struct {
	max       int
	maxConns  int // hard clamp; 0 derives it from host memory
	dur       time.Duration
	out       string
	telemetry bool
}

// collectiveOpts carries the collective experiment's knobs.
type collectiveOpts struct {
	members   int
	iters     int
	maxSize   int
	out       string
	telemetry bool
}

// pressureOpts carries the pressure experiment's knobs.
type pressureOpts struct {
	conns     int
	dur       time.Duration
	out       string
	telemetry bool
}

// wireOpts carries the wire experiment's knobs.
type wireOpts struct {
	dur        time.Duration
	out        string
	minRatio   float64
	minSpeedup float64
}

// streamsOpts carries the streams experiment's knobs.
type streamsOpts struct {
	calls    int
	maxRatio float64
	out      string
}

// experiments maps each -exp value to its runner; "all" runs the
// paper's set in order. Kept as a table so the usage string and the
// unknown-experiment error can never drift from what actually runs.
func experiments(plat string, iters int, sc scaleOpts, cc collectiveOpts, pc pressureOpts, wc wireOpts, so streamsOpts) map[string]func() error {
	return map[string]func() error{
		"table1":     runTable1,
		"fig10":      runFig10,
		"fig11":      runFig11,
		"fig12":      func() error { return runFig12(plat, iters) },
		"fig13":      func() error { return runFig13(iters) },
		"rpc":        func() error { return runRPC(iters) },
		"loss":       func() error { return runLoss(iters) },
		"scale":      func() error { return runScale(sc) },
		"collective": func() error { return runCollective(cc) },
		"pressure":   func() error { return runPressure(pc) },
		"wire":       func() error { return runWire(wc) },
		"streams":    func() error { return runStreams(so) },
	}
}

// experimentList returns the valid -exp values, sorted, for usage and
// error messages.
func experimentList(plat string, iters int, sc scaleOpts, cc collectiveOpts, pc pressureOpts, wc wireOpts, so streamsOpts) []string {
	names := make([]string, 0, 13)
	for name := range experiments(plat, iters, sc, cc, pc, wc, so) {
		names = append(names, name)
	}
	names = append(names, "all")
	sort.Strings(names)
	return names
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, fig10, fig11, fig12, fig13, rpc, loss, scale, collective, pressure, wire, streams, all")
		plat     = flag.String("platform", "sun4", "fig12 platform: sun4 or rs6000")
		iters    = flag.Int("iters", 10, "iterations per point for echo experiments")
		scaleMax = flag.Int("scale-max", 4096, "scale: largest connection count in the sweep (sweep points: 16…100000; threaded points cap at 4096)")
		maxConns = flag.Int("max-conns", 0, "scale: refuse connection counts above this (0: derive from host memory)")
		scaleDur = flag.Duration("scale-dur", 400*time.Millisecond, "scale: measured interval per point")
		scaleOut = flag.String("scale-out", "BENCH_scale.json", "scale: JSON results path (empty: skip)")

		collMembers = flag.Int("collective-members", 8, "collective: group size")
		collIters   = flag.Int("collective-iters", 30, "collective: measured collectives per point")
		collMaxSize = flag.Int("collective-max-size", 256*1024, "collective: largest payload in the sweep")
		collOut     = flag.String("collective-out", "BENCH_collective.json", "collective: JSON results path (empty: skip)")

		pressConns = flag.Int("pressure-conns", 4096, "pressure: slow-consumer fan-in width")
		pressDur   = flag.Duration("pressure-dur", 400*time.Millisecond, "pressure: measured interval per phase/point")
		pressOut   = flag.String("pressure-out", "BENCH_pressure.json", "pressure: JSON results path (empty: skip)")

		wireDur        = flag.Duration("wire-dur", 200*time.Millisecond, "wire: send window per sweep cell")
		wireOut        = flag.String("wire-out", "BENCH_wire.json", "wire: JSON results path (empty: skip)")
		wireMinRatio   = flag.Float64("wire-min-ratio", 2.0, "wire: verdict floor for the batched transport's syscall reduction per SDU at 4KB")
		wireMinSpeedup = flag.Float64("wire-min-speedup", 1.0, "wire: verdict floor for batched-vs-unbatched UDP throughput at 4KB (CI smoke runs relax this for shared runners)")

		streamsCalls    = flag.Int("streams-calls", 1000, "streams: measured RPC round trips per phase")
		streamsMaxRatio = flag.Float64("streams-max-ratio", 2.0, "streams: verdict ceiling on contended-vs-baseline RPC p99 (CI smoke runs relax this for shared runners)")
		streamsOut      = flag.String("streams-out", "BENCH_streams.json", "streams: JSON results path (empty: skip)")

		withTelemetry = flag.Bool("telemetry", false, "embed a metrics snapshot (the instrument delta across the experiment) in the scale/collective/pressure JSON artifacts")
	)
	flag.Parse()
	sc := scaleOpts{max: *scaleMax, maxConns: *maxConns, dur: *scaleDur, out: *scaleOut, telemetry: *withTelemetry}
	cc := collectiveOpts{members: *collMembers, iters: *collIters, maxSize: *collMaxSize, out: *collOut, telemetry: *withTelemetry}
	pc := pressureOpts{conns: *pressConns, dur: *pressDur, out: *pressOut, telemetry: *withTelemetry}
	wc := wireOpts{dur: *wireDur, out: *wireOut, minRatio: *wireMinRatio, minSpeedup: *wireMinSpeedup}
	so := streamsOpts{calls: *streamsCalls, maxRatio: *streamsMaxRatio, out: *streamsOut}
	if flag.NArg() > 0 {
		// A bare "ncs-bench scale" would otherwise silently run the
		// default experiment set and exit 0.
		fmt.Fprintf(os.Stderr, "ncs-bench: unexpected argument %q (experiments are selected with -exp <name>)\n", flag.Arg(0))
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(experimentList(*plat, *iters, sc, cc, pc, wc, so), ", "))
		os.Exit(2)
	}
	if err := run(*exp, *plat, *iters, sc, cc, pc, wc, so); err != nil {
		fmt.Fprintln(os.Stderr, "ncs-bench:", err)
		os.Exit(1)
	}
}

func run(exp, plat string, iters int, sc scaleOpts, cc collectiveOpts, pc pressureOpts, wc wireOpts, so streamsOpts) error {
	exps := experiments(plat, iters, sc, cc, pc, wc, so)
	if e, ok := exps[exp]; ok {
		return e()
	}
	if exp == "all" {
		// The paper's experiments in publication order; scale is
		// excluded (it is the CI workload, minutes long at full sweep)
		// and runs via -exp scale.
		for _, name := range []string{"table1", "fig10", "fig11"} {
			if err := exps[name](); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, e := range []func() error{
			func() error { return runFig12("sun4", iters) },
			func() error { return runFig12("rs6000", iters) },
			func() error { return runFig13(iters) },
			func() error { return runRPC(iters) },
			func() error { return runLoss(iters) },
		} {
			if err := e(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q (experiments: %s)",
		exp, strings.Join(experimentList(plat, iters, sc, cc, pc, wc, so), ", "))
}

// runStreams executes the stream HOL-isolation experiment and writes
// the JSON artifact. Its verdict — RPC p99 under bulk contention on a
// sibling stream within the configured multiple of the uncontended
// baseline, over both the paced simulator and real UDP loopback — is
// the acceptance check for per-stream flow control, so a failure is an
// error and CI fails the step.
func runStreams(so streamsOpts) error {
	res, err := bench.StreamsSweep(bench.StreamsConfig{
		Calls:    so.calls,
		MaxRatio: so.maxRatio,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if so.out != "" {
		if err := res.WriteJSON(so.out); err != nil {
			return err
		}
		// Diagnostics go to stderr so redirected stdout stays a clean
		// results table.
		fmt.Fprintf(os.Stderr, "wrote %s\n", so.out)
	}
	if res.Regressed() {
		return fmt.Errorf("streams verdict: bulk on a sibling stream degraded RPC p99 beyond its ceiling (see verdict lines above)")
	}
	return nil
}

// runWire executes the wire transport sweep and writes the JSON
// artifact. The verdict (batched UDP cutting kernel crossings per SDU
// at 4KB without giving back throughput) only gates on platforms with
// sendmmsg/recvmmsg support; elsewhere the table still prints for the
// per-datagram fallback.
func runWire(wc wireOpts) error {
	res, err := bench.WireSweep(bench.WireConfig{
		Duration:   wc.dur,
		MinRatio:   wc.minRatio,
		MinSpeedup: wc.minSpeedup,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if wc.out != "" {
		if err := res.WriteJSON(wc.out); err != nil {
			return err
		}
		// Diagnostics go to stderr so redirected stdout stays a clean
		// results table.
		fmt.Fprintf(os.Stderr, "wrote %s\n", wc.out)
	}
	if res.Regressed() {
		return fmt.Errorf("wire verdict: batched UDP failed its syscall-reduction/throughput floors at 4KB (see verdict line above)")
	}
	return nil
}

// runPressure executes the flow-control pressure experiment and writes
// the JSON artifact. The sweep carries its own acceptance (bounded
// fan-in memory, no throughput collapse under burst loss), so a failed
// verdict is an error — CI fails the step.
func runPressure(pc pressureOpts) error {
	if pc.conns < 1 {
		return fmt.Errorf("pressure: -pressure-conns must be at least 1 (got %d)", pc.conns)
	}
	before := telemetry.Capture()
	res, err := bench.PressureSweep(bench.PressureConfig{
		Conns:    pc.conns,
		Duration: pc.dur,
	})
	if err != nil {
		return err
	}
	if pc.telemetry {
		delta := telemetry.Capture().Delta(before)
		res.Telemetry = &delta
	}
	fmt.Print(res.Render())
	if pc.out != "" {
		if err := res.WriteJSON(pc.out); err != nil {
			return err
		}
		// Diagnostics go to stderr so redirected stdout stays a clean
		// results table.
		fmt.Fprintf(os.Stderr, "wrote %s\n", pc.out)
	}
	if res.Regressed() {
		return fmt.Errorf("pressure verdict: credit flow control failed its acceptance (see verdict lines above)")
	}
	return nil
}

// runCollective executes the collective sweep and writes the JSON
// artifact.
func runCollective(cc collectiveOpts) error {
	if cc.members < 2 {
		return fmt.Errorf("collective: -collective-members must be at least 2 (got %d)", cc.members)
	}
	sizes := []int{}
	for _, s := range []int{4 * 1024, 64 * 1024, 256 * 1024} {
		if s <= cc.maxSize {
			sizes = append(sizes, s)
		}
	}
	if len(sizes) == 0 {
		sizes = []int{cc.maxSize}
	}
	before := telemetry.Capture()
	res, err := bench.CollectiveSweep(bench.CollectiveConfig{
		Members: cc.members,
		Iters:   cc.iters,
		Sizes:   sizes,
	})
	if err != nil {
		return err
	}
	if cc.telemetry {
		delta := telemetry.Capture().Delta(before)
		res.Telemetry = &delta
	}
	fmt.Print(res.Render())
	if cc.out != "" {
		if err := res.WriteJSON(cc.out); err != nil {
			return err
		}
		// Diagnostics go to stderr so redirected stdout stays a clean
		// results table.
		fmt.Fprintf(os.Stderr, "wrote %s\n", cc.out)
	}
	if res.Regressed() {
		return fmt.Errorf("collective verdict: pipelined spanning-tree broadcast lost to repetitive at a ≥64KB payload — pipelining regression (see verdict lines above)")
	}
	return nil
}

// runScale executes the many-connection sweep and writes the JSON
// artifact.
func runScale(sc scaleOpts) error {
	if sc.max < 1 {
		return fmt.Errorf("scale: -scale-max must be at least 1 (got %d)", sc.max)
	}
	limit := sc.maxConns
	if limit <= 0 {
		limit = hostConnLimit()
	}
	if err := checkScaleConns(sc.max, limit); err != nil {
		return err
	}
	conns := []int{}
	for _, n := range []int{16, 64, 256, 1024, 2048, 4096, 16384, 32768, 65536, 100000} {
		if n <= sc.max {
			conns = append(conns, n)
		}
	}
	if len(conns) == 0 {
		conns = []int{sc.max}
	}
	before := telemetry.Capture()
	res, err := bench.ScaleSweep(bench.ScaleConfig{
		Conns:    conns,
		Duration: sc.dur,
	})
	if err != nil {
		return err
	}
	if sc.telemetry {
		delta := telemetry.Capture().Delta(before)
		res.Telemetry = &delta
	}
	fmt.Print(res.Render())
	if sc.out != "" {
		if err := res.WriteJSON(sc.out); err != nil {
			return err
		}
		// Diagnostics go to stderr so redirected stdout stays a clean
		// results table.
		fmt.Fprintf(os.Stderr, "wrote %s\n", sc.out)
	}
	return nil
}

func runTable1() error {
	res, err := bench.TableI(bench.TableIConfig{})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runFig10() error {
	fig := bench.Figure10(bench.Fig10Config{})
	fmt.Print(fig.Render())
	fmt.Println("paper: curves cross at 4 KB; user-level climbs steeply beyond, " +
		"kernel-level stays near the compute load (overlap).")
	return nil
}

func runFig11() error {
	data := bench.Figure11(bench.Fig11Config{})
	fmt.Print(data.Fig.RenderRatio(data.Native))
	fmt.Println("paper: ratio ≈ 2.6–3.0 at 1 byte, decaying toward 1 at 64 KB.")
	return nil
}

func runFig12(plat string, iters int) error {
	var p platform.Platform
	switch plat {
	case "sun4":
		p = platform.SUN4
	case "rs6000":
		p = platform.RS6000
	default:
		return fmt.Errorf("unknown platform %q (want sun4 or rs6000)", plat)
	}
	fig, err := bench.FigureEcho(
		fmt.Sprintf("Figure 12: point-to-point echo over ATM, %s pair", p.Name),
		p, p, nil, iters)
	if err != nil {
		return err
	}
	fmt.Print(fig.Render())
	switch plat {
	case "sun4":
		fmt.Println("paper: NCS best on SUN-4; MPI and p4 degrade with size.")
	case "rs6000":
		fmt.Println("paper: p4 best on RS6000; PVM worst; NCS second.")
	}
	return nil
}

func runLoss(iters int) error {
	res, err := bench.LossSweep(bench.LossConfig{Messages: iters * 3})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Println("paper: \"none\" keeps line-rate timeliness but drops data; selective repeat\n" +
		"recovers with the fewest retransmissions; go-back-N replays the window tail.")
	return nil
}

func runFig13(iters int) error {
	fig, err := bench.FigureEcho(
		"Figure 13: echo over ATM, heterogeneous SUN-4 ↔ RS6000",
		platform.SUN4, platform.RS6000, nil, iters)
	if err != nil {
		return err
	}
	fmt.Print(fig.Render())
	fmt.Println("paper: NCS best; PVM comparable; p4 poor; MPI collapses at large sizes.")
	return nil
}
