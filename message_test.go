package ncs_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"ncs"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	msg := ncs.NewPacker().
		Int64(-42).
		Uint32(7).
		Float64(3.14159).
		Bool(true).
		String("typed message").
		Bytes([]byte{1, 2, 3}).
		Float64s([]float64{1.5, -2.5}).
		Int32s([]int32{10, -20, 30}).
		Message()

	u := ncs.NewUnpacker(msg)
	if got := u.Int64(); got != -42 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := u.Uint32(); got != 7 {
		t.Fatalf("Uint32 = %d", got)
	}
	if got := u.Float64(); got != 3.14159 {
		t.Fatalf("Float64 = %v", got)
	}
	if !u.Bool() {
		t.Fatal("Bool = false")
	}
	if got := u.String(); got != "typed message" {
		t.Fatalf("String = %q", got)
	}
	if got := u.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := u.Float64s(); len(got) != 2 || got[0] != 1.5 {
		t.Fatalf("Float64s = %v", got)
	}
	if got := u.Int32s(); len(got) != 3 || got[1] != -20 {
		t.Fatalf("Int32s = %v", got)
	}
	if u.Err() != nil {
		t.Fatal(u.Err())
	}
}

func TestUnpackerErrorSticks(t *testing.T) {
	u := ncs.NewUnpacker([]byte{0, 0}) // too short for anything
	_ = u.Int64()
	if u.Err() == nil {
		t.Fatal("short decode succeeded")
	}
	// Subsequent reads return zero values, not panics.
	if u.String() != "" || u.Bytes() != nil || u.Float64() != 0 {
		t.Fatal("post-error reads returned non-zero values")
	}
}

func TestTypedMessageOverConnection(t *testing.T) {
	nw := ncs.NewNetwork()
	defer nw.Close()
	conn, peer, err := ncs.Pair(nw, "tm-a", "tm-b", ncs.Options{Interface: ncs.HPI})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		msg := ncs.NewPacker().
			String("result").
			Float64s([]float64{math.Pi, math.E}).
			Message()
		_ = conn.Send(msg)
	}()
	raw, err := peer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	u := ncs.NewUnpacker(raw)
	if got := u.String(); got != "result" {
		t.Fatalf("label = %q", got)
	}
	vals := u.Float64s()
	if u.Err() != nil || len(vals) != 2 || vals[0] != math.Pi {
		t.Fatalf("vals = %v, err = %v", vals, u.Err())
	}
}

func TestQuickPackUnpack(t *testing.T) {
	f := func(i int64, s string, b []byte, fs []float64) bool {
		msg := ncs.NewPacker().Int64(i).String(s).Bytes(b).Float64s(fs).Message()
		u := ncs.NewUnpacker(msg)
		gi := u.Int64()
		gs := u.String()
		gb := u.Bytes()
		gf := u.Float64s()
		if u.Err() != nil {
			return false
		}
		if gi != i || gs != s || !bytes.Equal(gb, b) || len(gf) != len(fs) {
			return false
		}
		for k := range fs {
			if math.Float64bits(gf[k]) != math.Float64bits(fs[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
