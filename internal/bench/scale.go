package bench

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/core"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The scale experiment is the first many-connection workload: a
// fan-out/fan-in echo sweep comparing the two runtime architectures as
// the connection count climbs from tens to thousands. One process
// hosts both sides: a client system fanning requests out over N HPI
// connections (one echo outstanding per connection) and a server
// system fanning them in through a shared Inbox served by a fixed
// worker pool. Per point it reports sustained throughput, p50/p99
// round-trip latency, the process goroutine count at steady state
// (the headline difference: O(connections) threaded vs O(shards)
// sharded), and allocations per echo.
//
// Results render as a table and serialise to machine-readable JSON
// (BENCH_scale.json by default) so CI can archive them per run.

// ThreadedConnCap is the largest connection count a threaded point
// runs at: beyond it the paper's thread-per-connection architecture is
// ~8 goroutines per connection and exists only to be compared against,
// so the 16k–100k points run sharded only. The sweep logs every
// skipped threaded point rather than capping silently.
const ThreadedConnCap = 4096

// ScaleConfig parameterises the sweep.
type ScaleConfig struct {
	// Conns is the connection-count axis.
	// Default 16, 64, 256, 1024, 2048, 4096.
	Conns []int
	// Runtimes compared. Default threaded and sharded.
	Runtimes []core.Runtime
	// MsgSize is the echo payload; default 512 bytes (single-SDU).
	MsgSize int
	// Duration is the measured interval per point; default 400ms.
	Duration time.Duration
	// Workers sizes the client and server worker pools; default
	// GOMAXPROCS each.
	Workers int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Conns) == 0 {
		c.Conns = []int{16, 64, 256, 1024, 2048, 4096}
	}
	if len(c.Runtimes) == 0 {
		c.Runtimes = []core.Runtime{core.RuntimeThreaded, core.RuntimeSharded}
	}
	if c.MsgSize < 16 {
		c.MsgSize = 512
	}
	if c.Duration <= 0 {
		c.Duration = 400 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// ScalePoint is one measured cell of the sweep.
type ScalePoint struct {
	Runtime    string  `json:"runtime"`
	Conns      int     `json:"conns"`
	Messages   int64   `json:"messages"`
	Throughput float64 `json:"throughput_msgs_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	Goroutines int     `json:"goroutines"`
	AllocsPer  float64 `json:"allocs_per_op"`
	// IdleBytesPerConn is the measured heap cost of one idle
	// connection endpoint: the GC-settled HeapAlloc growth of
	// establishing the full mesh, divided by the 2×conns endpoints the
	// process hosts, sampled before any traffic. This is the number
	// the per-connection memory diet moves and the one benchgate
	// guards (BenchmarkAllocIdleConnBytes).
	IdleBytesPerConn float64 `json:"idle_bytes_per_conn"`
	// IdleGoroutines is the process goroutine count at the same idle
	// sample: threaded points grow ~8×conns, sharded points must not
	// grow with conns at all.
	IdleGoroutines int `json:"idle_goroutines"`
	// PendingTimers counts armed timer-wheel timers at idle across
	// both systems. Idle connections must contribute zero — heartbeats
	// and retransmissions only arm wheel slots while they are live.
	PendingTimers int `json:"pending_timers"`
	// EstBytesPerConn is System.MemStats' structural estimate for the
	// same endpoints — a cross-check that the estimator tracks the
	// measured heap cost.
	EstBytesPerConn float64 `json:"est_bytes_per_conn"`
	// Shards and PacketsPerBatch describe the sharded runtime's pool
	// (zero on threaded points).
	Shards          int     `json:"shards,omitempty"`
	PacketsPerBatch float64 `json:"packets_per_batch,omitempty"`
}

// ScaleResult is the full sweep.
type ScaleResult struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	MsgSize    int          `json:"msg_size"`
	DurationMS int64        `json:"duration_ms_per_point"`
	Points     []ScalePoint `json:"points"`
	// Telemetry, when the caller sets it (ncs-bench -telemetry), embeds
	// the process-global instrument delta captured across the sweep, so
	// the archived artifact carries the stack's own counters next to
	// the measured series.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// ScaleSweep runs the experiment.
func ScaleSweep(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MsgSize:    cfg.MsgSize,
		DurationMS: cfg.Duration.Milliseconds(),
	}
	base := runtime.NumGoroutine()
	for _, rt := range cfg.Runtimes {
		for _, n := range cfg.Conns {
			if rt == core.RuntimeThreaded && n > ThreadedConnCap {
				// Never a silent cap: a threaded point costs ~8
				// goroutines per connection, so the big points are
				// sharded-only by design, and the skip is announced.
				fmt.Fprintf(os.Stderr, "scale: skipping threaded %d conns (threaded cap %d; larger points run sharded only)\n",
					n, ThreadedConnCap)
				continue
			}
			pt, err := runScalePoint(rt, n, cfg)
			if err != nil {
				return nil, fmt.Errorf("scale %v/%d conns: %w", rt, n, err)
			}
			res.Points = append(res.Points, pt)
			// Let the previous point's teardown drain before the next
			// point samples its goroutine count, or a threaded point's
			// tens of thousands of exiting threads bleed into its
			// successor's measurement.
			awaitGoroutines(base+8, 10*time.Second)
		}
	}
	return res, nil
}

// awaitGoroutines polls until the process goroutine count drops to
// limit (or patience runs out — the next point's measurement then
// simply carries the residue).
func awaitGoroutines(limit int, patience time.Duration) {
	deadline := time.Now().Add(patience)
	for runtime.NumGoroutine() > limit && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}

// runScalePoint measures one (runtime, connection count) cell.
func runScalePoint(rt core.Runtime, conns int, cfg ScaleConfig) (ScalePoint, error) {
	nw := core.NewNetwork()
	defer nw.Close()
	client, err := nw.NewSystem("scale-client")
	if err != nil {
		return ScalePoint{}, err
	}
	server, err := nw.NewSystem("scale-server")
	if err != nil {
		return ScalePoint{}, err
	}

	// Heap floor before any connection exists: the idle-bytes sample
	// below charges establishment (and nothing else) to the endpoints.
	runtime.GC()
	var h0 runtime.MemStats
	runtime.ReadMemStats(&h0)

	// Server side: every accepted connection feeds one Inbox; a fixed
	// pool echoes. No per-connection goroutines on either runtime —
	// the server app scales the same way the sharded core does.
	serverIB := core.NewInbox(4 * conns)
	defer serverIB.Close()
	acceptErr := make(chan error, 1)
	go func() {
		for i := 0; i < conns; i++ {
			p, err := server.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			if err := p.BindInbox(serverIB); err != nil {
				acceptErr <- err
				return
			}
		}
		acceptErr <- nil
	}()

	opts := core.Options{Interface: transport.HPI, Runtime: rt}
	clientIB := core.NewInbox(4 * conns)
	defer clientIB.Close()
	cc := make([]*core.Connection, conns)
	for i := range cc {
		c, err := client.Connect("scale-server", opts)
		if err != nil {
			return ScalePoint{}, fmt.Errorf("connect %d: %w", i, err)
		}
		if err := c.BindInbox(clientIB); err != nil {
			return ScalePoint{}, err
		}
		cc[i] = c
	}
	if err := <-acceptErr; err != nil {
		return ScalePoint{}, err
	}

	// Idle sample: the whole mesh is up, nothing has sent. This is the
	// 100k-idle-connections number — bytes, goroutines, and armed
	// timers per established-but-quiet endpoint.
	runtime.GC()
	var h1 runtime.MemStats
	runtime.ReadMemStats(&h1)
	idleBytesPerConn := 0.0
	if h1.HeapAlloc > h0.HeapAlloc {
		idleBytesPerConn = float64(h1.HeapAlloc-h0.HeapAlloc) / float64(2*conns)
	}
	idleGoroutines := runtime.NumGoroutine()
	cms, sms := client.MemStats(), server.MemStats()
	pendingTimers := cms.PendingTimers + sms.PendingTimers
	estBytesPerConn := float64(cms.EstimatedBytes+sms.EstimatedBytes) / float64(2*conns)

	var serverWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		serverWG.Add(1)
		go func() {
			defer serverWG.Done()
			for {
				im, err := serverIB.Recv()
				if err != nil {
					return
				}
				if err := im.Conn.Send(im.Msg.Data); err != nil {
					return
				}
			}
		}()
	}

	// Client side: one echo outstanding per connection; a worker pool
	// turns each reply into the next request. Latency rides in the
	// payload's first 8 bytes.
	var (
		stop     atomic.Bool
		sent     atomic.Int64
		received atomic.Int64
		clientWG sync.WaitGroup
	)
	samples := make([][]time.Duration, cfg.Workers)
	sendOn := func(c *core.Connection, p []byte) error {
		binary.LittleEndian.PutUint64(p[:8], uint64(time.Now().UnixNano()))
		sent.Add(1)
		return c.Send(p)
	}
	for w := 0; w < cfg.Workers; w++ {
		clientWG.Add(1)
		go func(w int) {
			defer clientWG.Done()
			for {
				im, err := clientIB.Recv()
				if err != nil {
					return
				}
				t0 := int64(binary.LittleEndian.Uint64(im.Msg.Data[:8]))
				samples[w] = append(samples[w], time.Duration(time.Now().UnixNano()-t0))
				received.Add(1)
				if stop.Load() {
					continue
				}
				// The reply buffer becomes the next request: Send
				// completes its staging before returning, so reuse is
				// safe.
				if err := sendOn(im.Conn, im.Msg.Data); err != nil {
					return
				}
			}
		}(w)
	}

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	// Seed one outstanding echo per connection, then measure a clean
	// interval from the moment seeding finished.
	seed := make([]byte, cfg.MsgSize)
	for _, c := range cc {
		if err := sendOn(c, seed); err != nil {
			return ScalePoint{}, fmt.Errorf("seed send: %w", err)
		}
	}
	startCount := received.Load()
	start := time.Now()
	time.Sleep(cfg.Duration)
	goroutines := runtime.NumGoroutine()
	measured := received.Load() - startCount
	elapsed := time.Since(start)
	stop.Store(true)

	// Drain the tail: every request must come back (each connection
	// has at most one outstanding).
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < sent.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if received.Load() < sent.Load() {
		return ScalePoint{}, fmt.Errorf("drain: %d of %d echoes missing after 10s",
			sent.Load()-received.Load(), sent.Load())
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	st := client.ShardStats()
	sst := server.ShardStats()
	clientIB.Close()
	serverIB.Close()
	clientWG.Wait()
	serverWG.Wait()

	msgs := received.Load()
	if msgs == 0 || measured == 0 {
		return ScalePoint{}, errors.New("no echoes completed")
	}
	all := make([]time.Duration, 0, msgs)
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}
	pt := ScalePoint{
		Runtime:          rt.String(),
		Conns:            conns,
		Messages:         msgs,
		Throughput:       float64(measured) / elapsed.Seconds(),
		P50Micros:        pct(0.50),
		P99Micros:        pct(0.99),
		Goroutines:       goroutines,
		AllocsPer:        float64(m1.Mallocs-m0.Mallocs) / float64(msgs),
		IdleBytesPerConn: idleBytesPerConn,
		IdleGoroutines:   idleGoroutines,
		PendingTimers:    pendingTimers,
		EstBytesPerConn:  estBytesPerConn,
		Shards:           st.Shards + sst.Shards,
	}
	if b := st.Batches + sst.Batches; b > 0 {
		pt.PacketsPerBatch = float64(st.BatchedPackets+sst.BatchedPackets) / float64(b)
	}
	return pt, nil
}

// Render lays the sweep out as a comparison table.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: fan-in/fan-out echo, %d-byte payload, %d ms per point, GOMAXPROCS=%d\n",
		r.MsgSize, r.DurationMS, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-9s %7s %12s %10s %10s %11s %10s %10s %9s %7s %8s\n",
		"runtime", "conns", "msgs/sec", "p50 µs", "p99 µs", "goroutines", "allocs/op", "idle B/cn", "idle gor", "timers", "pkts/wr")
	for _, p := range r.Points {
		ppb := "-"
		if p.PacketsPerBatch > 0 {
			ppb = fmt.Sprintf("%.1f", p.PacketsPerBatch)
		}
		fmt.Fprintf(&b, "%-9s %7d %12.0f %10.1f %10.1f %11d %10.1f %10.0f %9d %7d %8s\n",
			p.Runtime, p.Conns, p.Throughput, p.P50Micros, p.P99Micros,
			p.Goroutines, p.AllocsPer, p.IdleBytesPerConn, p.IdleGoroutines,
			p.PendingTimers, ppb)
	}
	b.WriteString("(goroutines: whole process at steady state — threaded grows ~8×conns, sharded stays near 2×GOMAXPROCS+workers;\n" +
		" idle B/cn, idle gor, timers: heap bytes, goroutines, and armed wheel timers per idle endpoint after establishment, before traffic)\n")
	return b.String()
}

// WriteJSON writes the machine-readable result for CI archival.
func (r *ScaleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
