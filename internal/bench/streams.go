package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"ncs/internal/core"
	"ncs/internal/flowctl"
	"ncs/internal/netsim"
	"ncs/internal/rpc"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The streams experiment is the head-of-line-blocking demonstration
// for multiplexed streams: a latency-sensitive RPC workload and a
// bulk transfer share ONE connection over a constrained link, with
// the bulk riding its own stream (its own credit window) rather than
// interleaving with the RPC frames on the default channel.
//
// Each transport runs two phases. The baseline phase measures RPC
// echo latency on an otherwise idle connection; the contended phase
// repeats the measurement while a bulk sender floods a dedicated
// stream as fast as its credits allow. Because every stream has an
// independent credit window and the runtimes interleave sends at SDU
// granularity, an RPC frame waits behind at most a few bulk SDUs on
// the wire — never behind a whole bulk message or the bulk stream's
// backlog. The verdict: contended p99 must stay within MaxRatio (2×
// by default) of the baseline p99, on both the in-process simulator
// (with an explicitly paced, bounded-buffer link) and real UDP
// loopback sockets.

// StreamsConfig parameterises the experiment.
type StreamsConfig struct {
	// Calls is the number of measured RPC round trips per phase.
	// Default 1000 — p99 of a smaller sample is the worst two or three
	// calls, too noisy to gate on.
	Calls int
	// ReqSize is the RPC request/response payload size. Default 64.
	ReqSize int
	// BulkChunk is the bulk stream's per-message size. Default 256KB.
	BulkChunk int
	// MaxRatio is the verdict ceiling: each transport's contended p99
	// must be at most MaxRatio times its baseline p99. Default 2.0.
	MaxRatio float64
	// MinBaseMicros floors the verdict's denominator. On a fast
	// loopback an unloaded baseline p99 is tens of µs and fluctuates
	// 2× run to run on scheduler jitter alone; gating a ratio on that
	// denominator makes the verdict a coin flip. Below the floor the
	// ratio is computed against MinBaseMicros instead, so the ceiling
	// becomes an absolute budget (MaxRatio × floor) that still fails
	// loudly on real head-of-line regressions. Default 100.
	MinBaseMicros int64
	// Bandwidth paces the simulated link, bytes/second (netsim cells
	// only; UDP rides real loopback sockets). Default 100 MB/s.
	Bandwidth int64
	// Delay is the simulated link's one-way propagation delay (netsim
	// cells only). Default 300µs, so the baseline RTT is dominated by
	// a real link property rather than scheduler noise.
	Delay time.Duration
	// BufferBytes bounds the simulated link's sender buffer (netsim
	// cells only): the wire queue an RPC frame can find ahead of
	// itself. Default 32KB.
	BufferBytes int
}

func (c StreamsConfig) withDefaults() StreamsConfig {
	if c.Calls <= 0 {
		c.Calls = 1000
	}
	if c.ReqSize <= 0 {
		c.ReqSize = 64
	}
	if c.BulkChunk <= 0 {
		c.BulkChunk = 256 * 1024
	}
	if c.MaxRatio <= 0 {
		c.MaxRatio = 2.0
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 100 << 20
	}
	if c.Delay <= 0 {
		c.Delay = 300 * time.Microsecond
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 32 * 1024
	}
	if c.MinBaseMicros <= 0 {
		c.MinBaseMicros = 100
	}
	return c
}

// StreamsPoint is one measured phase on one transport.
type StreamsPoint struct {
	Transport string `json:"transport"` // "netsim" or "udp"
	Phase     string `json:"phase"`     // "baseline" or "contended"
	Calls     int    `json:"calls"`
	P50Micros int64  `json:"p50_micros"`
	P99Micros int64  `json:"p99_micros"`
	MaxMicros int64  `json:"max_micros"`
	// BulkBytes is the bulk payload delivered during the measurement
	// window (zero in baseline phases); BulkThroughput is that volume
	// over the window's wall clock. A contended phase with zero bulk
	// delivery measured nothing and fails the verdict.
	BulkBytes      int64   `json:"bulk_bytes"`
	BulkThroughput float64 `json:"bulk_throughput_bytes_per_sec"`
}

// StreamsResult is the full experiment plus its config.
type StreamsResult struct {
	Config    StreamsConfig       `json:"config"`
	Points    []StreamsPoint      `json:"points"`
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// StreamsSweep runs both phases on both transports.
func StreamsSweep(cfg StreamsConfig) (*StreamsResult, error) {
	cfg = cfg.withDefaults()
	res := &StreamsResult{Config: cfg}
	for _, tr := range []string{"netsim", "udp"} {
		for _, contended := range []bool{false, true} {
			pt, err := streamsCell(cfg, tr, contended)
			if err != nil {
				return res, fmt.Errorf("streams %s %s: %w", tr, pt.Phase, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func streamsOptions(cfg StreamsConfig, tr string) core.Options {
	// The credit window is sized near the link's bandwidth-delay
	// product rather than left at the deep default: the window is also
	// the bulk stream's standing in-flight, which is exactly the queue
	// a latency-sensitive frame can find ahead of itself at the
	// receiver's demux. Loopback's BDP is roughly one SDU (tens of µs
	// RTT at 100 MB/s), so the UDP cell runs an even tighter window
	// than the simulated 300µs link and still sustains full rate.
	switch tr {
	case "udp":
		fc := flowctl.Config{InitialCredits: 4, MaxCredits: 8}
		return core.Options{Interface: transport.UDP, FlowConfig: fc}
	default:
		fc := flowctl.Config{InitialCredits: 8, MaxCredits: 16}
		return core.Options{
			Interface:  transport.HPI,
			FlowConfig: fc,
			HPILink: &netsim.Params{
				Bandwidth:   cfg.Bandwidth,
				Delay:       cfg.Delay,
				BufferBytes: cfg.BufferBytes,
			},
		}
	}
}

func streamsCell(cfg StreamsConfig, tr string, contended bool) (StreamsPoint, error) {
	pt := StreamsPoint{Transport: tr, Phase: "baseline"}
	if contended {
		pt.Phase = "contended"
	}

	nw := core.NewNetwork()
	defer nw.Close()
	a, err := nw.NewSystem("streams-a")
	if err != nil {
		return pt, err
	}
	b, err := nw.NewSystem("streams-b")
	if err != nil {
		return pt, err
	}
	conn, err := a.Connect("streams-b", streamsOptions(cfg, tr))
	if err != nil {
		return pt, err
	}
	peer, err := b.AcceptTimeout(5 * time.Second)
	if err != nil {
		return pt, err
	}

	srv := rpc.NewServer(rpc.ServerOptions{Workers: 2})
	defer srv.Shutdown()
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	srv.ServeConn(peer)

	cli := rpc.NewClient(conn)
	defer cli.Close()

	// The bulk flow: a dedicated stream carrying BulkChunk-sized
	// messages for as long as the measurement runs, drained on the
	// peer so its credit window keeps refilling. delivered counts
	// consumption, so the contended verdict gates on bulk actually
	// moving during the window.
	//
	// The sender paces its offered load to cfg.Bandwidth on both
	// transports. The netsim link enforces that pace anyway; UDP
	// loopback does not, and an unpaced sender there turns the cell
	// into a CPU-timesharing benchmark (on a small runner the memcpy
	// and syscall flood saturates the cores, so the RPC tail measures
	// scheduler preemption, not the stack). Equal offered load keeps
	// the two cells comparable and keeps the verdict about queueing.
	var delivered atomic.Int64
	stop := make(chan struct{})
	senderDone := make(chan error, 1)
	if contended {
		drainReady := make(chan error, 1)
		go func() {
			st, err := peer.AcceptStreamTimeout(5 * time.Second)
			drainReady <- err
			if err != nil {
				return
			}
			for {
				data, err := st.Recv()
				if err != nil {
					return
				}
				delivered.Add(int64(len(data)))
			}
		}()
		st, err := conn.OpenStream()
		if err != nil {
			return pt, err
		}
		defer st.Close()
		go func() {
			chunk := make([]byte, cfg.BulkChunk)
			interval := time.Duration(float64(cfg.BulkChunk) / float64(cfg.Bandwidth) * float64(time.Second))
			next := time.Now()
			for {
				select {
				case <-stop:
					senderDone <- nil
					return
				default:
				}
				if err := st.Send(chunk); err != nil {
					senderDone <- err
					return
				}
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				} else if d < -interval {
					// Fell behind (credit stall); restart the schedule
					// instead of banking an unpaced burst.
					next = time.Now()
				}
			}
		}()
		if err := <-drainReady; err != nil {
			return pt, err
		}
	}

	ctx := context.Background()
	req := make([]byte, cfg.ReqSize)
	for i := 0; i < 20; i++ { // warmup: connection + stream credit ramp
		if _, err := cli.Call(ctx, "echo", req); err != nil {
			return pt, fmt.Errorf("warmup call: %w", err)
		}
	}

	samples := make([]time.Duration, 0, cfg.Calls)
	bulkStart := delivered.Load()
	start := time.Now()
	for i := 0; i < cfg.Calls; i++ {
		t0 := time.Now()
		if _, err := cli.Call(ctx, "echo", req); err != nil {
			return pt, fmt.Errorf("call %d: %w", i, err)
		}
		samples = append(samples, time.Since(t0))
	}
	elapsed := time.Since(start)
	pt.BulkBytes = delivered.Load() - bulkStart

	if contended {
		close(stop)
		if err := <-senderDone; err != nil {
			return pt, fmt.Errorf("bulk sender: %w", err)
		}
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pt.Calls = len(samples)
	pt.P50Micros = samples[len(samples)/2].Microseconds()
	pt.P99Micros = samples[len(samples)*99/100].Microseconds()
	pt.MaxMicros = samples[len(samples)-1].Microseconds()
	pt.BulkThroughput = float64(pt.BulkBytes) / elapsed.Seconds()
	return pt, nil
}

// verdict compares one transport's phases, with the baseline p99
// floored at MinBaseMicros (see StreamsConfig). ok is false when the
// sweep lacks usable cells or the contended phase moved no bulk
// (nothing was demonstrated).
func (r *StreamsResult) verdict(tr string) (ratio float64, ok bool) {
	var base, cont *StreamsPoint
	for i := range r.Points {
		p := &r.Points[i]
		if p.Transport != tr {
			continue
		}
		switch p.Phase {
		case "baseline":
			base = p
		case "contended":
			cont = p
		}
	}
	if base == nil || cont == nil || base.P99Micros <= 0 || cont.BulkBytes <= 0 {
		return 0, false
	}
	denom := base.P99Micros
	if denom < r.Config.MinBaseMicros {
		denom = r.Config.MinBaseMicros
	}
	return float64(cont.P99Micros) / float64(denom), true
}

// Regressed reports whether any transport broke the isolation bound:
// contended p99 beyond MaxRatio × baseline p99, or a contended phase
// that failed to generate contention.
func (r *StreamsResult) Regressed() bool {
	for _, tr := range []string{"netsim", "udp"} {
		ratio, ok := r.verdict(tr)
		if !ok || ratio > r.Config.MaxRatio {
			return true
		}
	}
	return false
}

// floorNote annotates a verdict line when the transport's baseline p99
// was below MinBaseMicros and the ratio was computed against the floor.
func (r *StreamsResult) floorNote(tr string) string {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Transport == tr && p.Phase == "baseline" && p.P99Micros > 0 && p.P99Micros < r.Config.MinBaseMicros {
			return fmt.Sprintf(" (floored to %dµs)", r.Config.MinBaseMicros)
		}
	}
	return ""
}

// Render formats the phase table and per-transport verdicts.
func (r *StreamsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Streams HOL isolation: %d-call RPC echo vs %dKB bulk chunks on a sibling stream\n",
		r.Config.Calls, r.Config.BulkChunk/1024)
	fmt.Fprintf(&b, "%-9s %-10s %7s %9s %9s %9s %12s %12s\n",
		"transport", "phase", "calls", "p50", "p99", "max", "bulk", "bulk rate")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-9s %-10s %7d %7dµs %7dµs %7dµs %9.1f MB %9.1f MB/s\n",
			p.Transport, p.Phase, p.Calls, p.P50Micros, p.P99Micros, p.MaxMicros,
			float64(p.BulkBytes)/1e6, p.BulkThroughput/1e6)
	}
	for _, tr := range []string{"netsim", "udp"} {
		switch ratio, ok := r.verdict(tr); {
		case !ok:
			fmt.Fprintf(&b, "verdict: FAIL %s (missing cells or no bulk delivered under contention)\n", tr)
		case ratio <= r.Config.MaxRatio:
			fmt.Fprintf(&b, "verdict: PASS %s: contended p99 = %.2fx baseline%s (ceiling %.1fx)\n",
				tr, ratio, r.floorNote(tr), r.Config.MaxRatio)
		default:
			fmt.Fprintf(&b, "verdict: FAIL %s: contended p99 = %.2fx baseline%s (ceiling %.1fx)\n",
				tr, ratio, r.floorNote(tr), r.Config.MaxRatio)
		}
	}
	return b.String()
}

// WriteJSON writes the machine-readable result for CI archival.
func (r *StreamsResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
