package bench

import (
	"strings"
	"testing"
	"time"

	"ncs/internal/platform"
	"ncs/internal/thread"
)

func TestMedianAndMeanTrimmed(t *testing.T) {
	ds := []time.Duration{5, 1, 100, 3, 4} // best=1 worst=100 dropped
	if m := median(ds); m != 4 {
		t.Fatalf("median = %v", m)
	}
	if m := meanTrimmed(ds); m != 4 {
		t.Fatalf("meanTrimmed = %v", m)
	}
	if meanTrimmed(nil) != 0 || median(nil) != 0 {
		t.Fatal("empty inputs should give 0")
	}
	if m := meanTrimmed([]time.Duration{6, 8}); m != 7 {
		t.Fatalf("meanTrimmed(2) = %v", m)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Title:  "test",
		YLabel: "time",
		Series: []Series{
			{Label: "a", Points: []Point{{1, time.Microsecond}, {1024, time.Millisecond}}},
			{Label: "b", Points: []Point{{1, 2 * time.Microsecond}, {1024, time.Second}}},
		},
	}
	out := f.Render()
	for _, want := range []string{"test", "a", "b", "1K", "1.00ms", "1.00s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	ratio := f.RenderRatio(f.Series[0])
	if !strings.Contains(ratio, "2.00") {
		t.Fatalf("RenderRatio missing ratio:\n%s", ratio)
	}
}

func TestMiniSendPathBothModels(t *testing.T) {
	for _, model := range []thread.Model{thread.UserLevel, thread.KernelLevel} {
		t.Run(model.String(), func(t *testing.T) {
			pkg := thread.New(model)
			defer pkg.Shutdown()
			cfg := Fig10Config{}.withDefaults()
			got := fig10Run(Fig10Config{
				Sizes:       []int{64},
				Iterations:  3,
				ComputeLoad: time.Millisecond,
			}.withDefaults(), model, 64)
			if got <= 0 {
				t.Fatalf("per-iteration time = %v", got)
			}
			_ = cfg
		})
	}
}

// TestFigure10Shape asserts the paper's qualitative result: at 64 KB
// the user-level package stalls (whole-process blocking) while the
// kernel-level package overlaps; below the crossover both sit near the
// compute load.
func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := Fig10Config{
		Sizes:      []int{1024, 65536},
		Iterations: 10,
	}
	fig := Figure10(cfg)
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	user, kernel := fig.Series[0], fig.Series[1]

	// Small message: both near the compute load (within 3x).
	load := cfg.withDefaults().ComputeLoad
	for _, s := range fig.Series {
		if s.Points[0].Value > 3*load {
			t.Errorf("%s at 1KB = %v, want near %v", s.Label, s.Points[0].Value, load)
		}
	}
	// Large message: user-level must be at least 3x kernel-level.
	u64, k64 := user.Points[1].Value, kernel.Points[1].Value
	if u64 < 3*k64 {
		t.Errorf("user-level at 64KB = %v, kernel-level = %v; want user >= 3x kernel", u64, k64)
	}
}

// TestFigure11Shape asserts the overhead ratio starts above 1 for tiny
// messages and shrinks as the message grows.
func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive experiment")
	}
	data := Figure11(Fig11Config{Sizes: []int{1, 65536}, Iterations: 100})
	for _, s := range data.Fig.Series {
		r1 := float64(s.Points[0].Value) / float64(data.Native.Points[0].Value)
		r64 := float64(s.Points[1].Value) / float64(data.Native.Points[1].Value)
		if r1 < 1.05 {
			t.Errorf("%s: ratio at 1B = %.2f, want > 1 (session overhead)", s.Label, r1)
		}
		if r64 >= r1 {
			t.Errorf("%s: ratio at 64KB (%.2f) should shrink vs 1B (%.2f)", s.Label, r64, r1)
		}
	}
}

func TestTableI(t *testing.T) {
	res, err := TableI(TableIConfig{Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionOverhead <= 0 || res.DataTransfer <= 0 {
		t.Fatalf("overheads: session=%v data=%v", res.SessionOverhead, res.DataTransfer)
	}
	if res.Total != res.SessionOverhead+res.DataTransfer {
		t.Fatal("total != session + data")
	}
	out := res.Render()
	for _, want := range []string{"Table I", "session overhead total", "274"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestEchoSmokeAllSystems(t *testing.T) {
	for _, sys := range AllSystems {
		t.Run(sys.String(), func(t *testing.T) {
			series, err := RunEcho(EchoConfig{
				System:     sys,
				Local:      platform.RS6000,
				Remote:     platform.RS6000,
				Sizes:      []int{1, 65536},
				Iterations: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range series.Points {
				if p.Value <= 0 {
					t.Fatalf("size %d: rtt = %v", p.Size, p.Value)
				}
			}
			// 64 KB must cost clearly more than 1 byte; at small gaps
			// (e.g. 4 KB on the fast platform) scheduler noise can
			// invert the comparison, so the smoke test uses the far
			// ends of the sweep.
			if series.Points[1].Value <= series.Points[0].Value {
				t.Fatalf("rtt(64K)=%v <= rtt(1B)=%v", series.Points[1].Value, series.Points[0].Value)
			}
		})
	}
}

// TestFigure12Shape asserts the RS6000 ordering the paper reports:
// p4 fastest, PVM slowest (daemon hop + XDR), NCS competitive.
func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	fig, err := FigureEcho("fig12-rs6000", platform.RS6000, platform.RS6000,
		[]int{65536}, 5)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) time.Duration {
		for _, s := range fig.Series {
			if s.Label == label {
				return s.Points[0].Value
			}
		}
		t.Fatalf("missing series %s", label)
		return 0
	}
	p4t, pvmt, ncst := get("p4"), get("PVM"), get("NCS")
	if p4t >= pvmt {
		t.Errorf("RS6000 64KB: p4 (%v) should beat PVM (%v)", p4t, pvmt)
	}
	if ncst >= pvmt {
		t.Errorf("RS6000 64KB: NCS (%v) should beat PVM (%v)", ncst, pvmt)
	}
}

// TestFigure13Shape asserts the heterogeneous ordering: NCS fastest,
// MPI slowest with a large gap.
func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	fig, err := FigureEcho("fig13-hetero", platform.SUN4, platform.RS6000,
		[]int{65536}, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]time.Duration{}
	for _, s := range fig.Series {
		vals[s.Label] = s.Points[0].Value
	}
	if vals["NCS"] >= vals["p4"] || vals["NCS"] >= vals["MPI"] {
		t.Errorf("hetero 64KB: NCS (%v) should beat p4 (%v) and MPI (%v)",
			vals["NCS"], vals["p4"], vals["MPI"])
	}
	if vals["MPI"] <= vals["p4"] {
		t.Errorf("hetero 64KB: MPI (%v) should be slower than p4 (%v)", vals["MPI"], vals["p4"])
	}
	if vals["MPI"] < 2*vals["NCS"] {
		t.Errorf("hetero 64KB: MPI (%v) should be >= 2x NCS (%v)", vals["MPI"], vals["NCS"])
	}
}
