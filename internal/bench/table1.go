package bench

import (
	"fmt"
	"strings"
	"time"

	"ncs/internal/core"
	"ncs/internal/transport"
)

// TableIConfig parameterises the Table I reproduction.
type TableIConfig struct {
	// Iterations of the 1-byte instrumented send. Default 200.
	Iterations int
	// MessageSize is 1 in the paper.
	MessageSize int
	// Interface carries the send; the paper used the BSD socket
	// interface. Default SCI.
	Interface transport.Kind
}

func (c TableIConfig) withDefaults() TableIConfig {
	if c.Iterations <= 0 {
		c.Iterations = 200
	}
	if c.MessageSize <= 0 {
		c.MessageSize = 1
	}
	if c.Interface == 0 {
		c.Interface = transport.SCI
	}
	return c
}

// TableIRow is one line of the reproduced table.
type TableIRow struct {
	Activity string
	Measured time.Duration
	PaperUS  float64 // the paper's published value, for side-by-side
}

// TableIResult is the reproduced Table I.
type TableIResult struct {
	Rows            []TableIRow
	SessionOverhead time.Duration
	DataTransfer    time.Duration
	Total           time.Duration
	// Paper totals for reference.
	PaperSessionUS, PaperDataUS, PaperTotalUS float64
}

// TableI reproduces "Cost of Sending 1-Byte Message via Send Thread":
// a threaded, instrumented NCS_send over the socket interface with flow
// and error control bypassed, exactly the §4.2 configuration. Absolute
// numbers reflect this machine; the paper's 1998 measurements are
// carried alongside for comparison. The structural claim preserved is
// the split into session overhead (everything threading adds) versus
// data transfer, and session overhead dominating at 1 byte relative to
// its share at large sizes.
func TableI(cfg TableIConfig) (*TableIResult, error) {
	cfg = cfg.withDefaults()

	nw := core.NewNetwork()
	defer nw.Close()
	a, err := nw.NewSystem("t1-sender")
	if err != nil {
		return nil, err
	}
	b, err := nw.NewSystem("t1-receiver")
	if err != nil {
		return nil, err
	}
	conn, err := a.Connect("t1-receiver", core.Options{
		Interface:  cfg.Interface,
		Instrument: true,
	})
	if err != nil {
		return nil, err
	}
	peer, err := b.AcceptTimeout(5 * time.Second)
	if err != nil {
		return nil, err
	}
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	defer func() { conn.Close(); peer.Close(); <-recvDone }()

	msg := make([]byte, cfg.MessageSize)
	type stages struct {
		entry, queue, switchIn, data, back, exit []time.Duration
	}
	var st stages
	for i := 0; i < cfg.Iterations; i++ {
		tr, err := conn.SendInstrumented(msg)
		if err != nil {
			return nil, err
		}
		st.entry = append(st.entry, tr.EntryAndHeader())
		st.queue = append(st.queue, tr.Queue())
		st.switchIn = append(st.switchIn, tr.SwitchToSendThread())
		st.data = append(st.data, tr.DataTransfer())
		st.back = append(st.back, tr.SwitchBack())
		st.exit = append(st.exit, tr.Exit())
	}

	rows := []TableIRow{
		{"NCS_send entry + header attach", median(st.entry), 14},             // rows 1-2: 10+4
		{"Queuing a message request", median(st.queue), 15},                  // row 3
		{"Context switch to Send Thread + dequeue", median(st.switchIn), 44}, // rows 4-5: 27+17
		{"Free request + context switch back", median(st.back), 35},          // rows 7-8: 10+25
		{"NCS_send exit (part of entry/exit)", median(st.exit), 0},
		{"Transmitting the message", median(st.data), 274}, // row 6
	}
	res := &TableIResult{
		Rows:           rows,
		DataTransfer:   median(st.data),
		PaperSessionUS: 108,
		PaperDataUS:    274,
		PaperTotalUS:   383,
	}
	for _, r := range rows[:5] {
		res.SessionOverhead += r.Measured
	}
	res.Total = res.SessionOverhead + res.DataTransfer
	return res, nil
}

// Render formats the table next to the paper's published values.
func (t *TableIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table I: cost of sending a 1-byte message via Send Thread\n")
	fmt.Fprintf(&b, "  %-42s %12s %12s\n", "activity", "measured", "paper (µs)")
	for _, r := range t.Rows {
		paper := "-"
		if r.PaperUS > 0 {
			paper = fmt.Sprintf("%.0f", r.PaperUS)
		}
		fmt.Fprintf(&b, "  %-42s %12v %12s\n", r.Activity, r.Measured, paper)
	}
	sessPct := 0.0
	if t.Total > 0 {
		sessPct = 100 * float64(t.SessionOverhead) / float64(t.Total)
	}
	fmt.Fprintf(&b, "  %-42s %12v %12.0f\n", "session overhead total", t.SessionOverhead, t.PaperSessionUS)
	fmt.Fprintf(&b, "  %-42s %12v %12.0f\n", "data transfer", t.DataTransfer, t.PaperDataUS)
	fmt.Fprintf(&b, "  %-42s %12v %12.0f\n", "total", t.Total, t.PaperTotalUS)
	fmt.Fprintf(&b, "  session overhead share: measured %.0f%%, paper 28%%\n", sessPct)
	return b.String()
}
