package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"ncs/internal/buf"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The wire experiment quantifies what the batched-syscall UDP
// transport buys: the same transport-level windowed flood pushed
// through the in-process simulator (the baseline every other
// experiment runs on) and through real loopback sockets, across
// message sizes and syscall batch depths. Batch depth 1 is the classic
// one-sendto-per-SDU transport; the wider depths amortise the kernel
// crossing with sendmmsg/recvmmsg.
//
// The verdict gates on what batching directly controls: kernel
// crossings per delivered SDU, which must shrink by MinRatio at the
// default 4KB message size, without giving back throughput
// (MinSpeedup). Throughput itself is reported but the headline ratio
// is deliberately not a throughput ratio — on kernels with cheap
// syscall entry (mitigations off, e.g. lightweight VMs) the wire cost
// is dominated by the per-datagram UDP stack and payload copies that
// batching cannot remove, so the syscall-count ratio is the portable
// invariant while the throughput gain varies from a few percent to
// integer factors depending on host syscall cost.

// WireConfig parameterises the sweep.
type WireConfig struct {
	// MsgSizes to sweep. Default 512, 4096, 16384.
	MsgSizes []int
	// Batches is the syscall batch-depth axis. Default 1, 8, 32.
	Batches []int
	// Duration of each cell's send window. Default 200ms.
	Duration time.Duration
	// MinRatio is the verdict threshold on syscall reduction: at 4KB
	// messages the batched transport must make at least MinRatio times
	// fewer kernel crossings per delivered SDU than the unbatched
	// (depth-1) wire. Default 2.0. Ignored where batch syscalls are
	// unsupported.
	MinRatio float64
	// MinSpeedup is the verdict threshold on throughput: the batched
	// cell's goodput must reach MinSpeedup × the unbatched cell's.
	// Default 1.0 (batching must not cost throughput); CI smoke runs
	// relax it for noisy shared runners.
	MinSpeedup float64
}

func (c WireConfig) withDefaults() WireConfig {
	if len(c.MsgSizes) == 0 {
		c.MsgSizes = []int{512, 4096, 16384}
	}
	if len(c.Batches) == 0 {
		c.Batches = []int{1, 8, 32}
	}
	if c.Duration <= 0 {
		c.Duration = 200 * time.Millisecond
	}
	if c.MinRatio <= 0 {
		c.MinRatio = 2.0
	}
	if c.MinSpeedup <= 0 {
		c.MinSpeedup = 1.0
	}
	return c
}

// WirePoint is one cell of the sweep: one transport, one message
// size, one batch depth.
type WirePoint struct {
	Transport string `json:"transport"` // "netsim" or "udp"
	MsgSize   int    `json:"msg_size"`
	Batch     int    `json:"batch"`
	Sent      int64  `json:"sent_msgs"`
	Delivered int64  `json:"delivered_msgs"`
	// Throughput is delivered payload over the cell's wall clock,
	// bytes/s. The flood is windowed, so delivered tracks sent except
	// for genuine wire loss written off by the stall detector.
	Throughput float64 `json:"throughput_bytes_per_sec"`
	// SyscallsPerMsg is kernel crossings (send+recv) per delivered
	// message — the quantity batching exists to shrink. Zero for
	// netsim cells, which make no syscalls at all.
	SyscallsPerMsg float64 `json:"syscalls_per_msg"`
}

// WireResult is the full sweep plus the environment facts the verdict
// depends on.
type WireResult struct {
	Config        WireConfig          `json:"config"`
	BatchSyscalls bool                `json:"batch_syscalls_supported"`
	Points        []WirePoint         `json:"points"`
	Telemetry     *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// WireSweep runs the matrix: {netsim, UDP loopback} × MsgSizes ×
// Batches.
func WireSweep(cfg WireConfig) (*WireResult, error) {
	cfg = cfg.withDefaults()
	res := &WireResult{Config: cfg, BatchSyscalls: transport.BatchSyscallsSupported()}
	for _, size := range cfg.MsgSizes {
		for _, batch := range cfg.Batches {
			for _, tr := range []string{"netsim", "udp"} {
				pt, err := wireCell(cfg, tr, size, batch)
				if err != nil {
					return res, fmt.Errorf("wire %s %dB batch %d: %w", tr, size, batch, err)
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	return res, nil
}

func wireCell(cfg WireConfig, tr string, size, batch int) (WirePoint, error) {
	pt := WirePoint{Transport: tr, MsgSize: size, Batch: batch}
	var send, recv transport.Conn
	var err error
	switch tr {
	case "udp":
		send, recv, err = transport.UDPPair(&transport.UDPLink{
			Batch:     batch,
			MaxPacket: size + 64,
		})
		if err != nil {
			return pt, err
		}
	default:
		send, recv = transport.HPIPair()
	}

	type recvTotal struct {
		msgs  int64
		bytes int64
	}
	var delivered atomic.Int64
	notify := make(chan struct{}, 1)
	done := make(chan recvTotal, 1)
	go func() {
		var r recvTotal
		for {
			b, err := recv.RecvBuf()
			if err != nil {
				done <- r
				return
			}
			r.msgs++
			r.bytes += int64(b.Len())
			b.Release()
			delivered.Store(r.msgs)
			select {
			case notify <- struct{}{}:
			default:
			}
		}
	}()

	// Sliding-window flood: an unpaced flood would overrun the
	// receiver's queues and turn the measurement into a drop-rate
	// contest, hiding the cost structure the sweep exists to expose.
	// The in-flight cap keeps outstanding bytes safely inside the
	// socket receive buffer so essentially everything lands. The wait
	// for window space blocks on the receiver's notify channel rather
	// than spinning — a busy-wait starves the netpoller on a
	// single-CPU host (the parked read loop then only wakes on
	// sysmon's 10ms fallback poll) and flattens every cell to the
	// window refill rate. A stalled window — a datagram that will
	// never arrive — is written off after a short grace rather than
	// wedging the cell.
	window := int64(192 * 1024 / size)
	if window > 128 {
		window = 128
	}
	if window < int64(batch) {
		window = int64(batch)
	}
	var lost int64
	bs := make([]*buf.Buffer, batch)
	stall := time.NewTimer(time.Hour)
	defer stall.Stop()
	before := telemetry.Capture()
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for time.Now().Before(deadline) {
		for pt.Sent-delivered.Load()-lost >= window {
			if !stall.Stop() {
				select {
				case <-stall.C:
				default:
				}
			}
			stall.Reset(time.Millisecond)
			select {
			case <-notify:
			case <-stall.C:
				if pt.Sent-delivered.Load()-lost >= window {
					lost = pt.Sent - delivered.Load()
				}
			}
		}
		if batch == 1 {
			if err := send.SendBuf(buf.Get(size)); err != nil {
				return pt, err
			}
			pt.Sent++
			continue
		}
		for i := range bs {
			bs[i] = buf.Get(size)
		}
		if err := send.SendBatch(bs); err != nil {
			return pt, err
		}
		pt.Sent += int64(batch)
	}
	elapsed := time.Since(start)
	send.Close()
	recv.Close()
	r := <-done
	delta := telemetry.Capture().Delta(before)

	pt.Delivered = r.msgs
	pt.Throughput = float64(r.bytes) / elapsed.Seconds()
	if tr == "udp" && r.msgs > 0 {
		sys := delta.Counters["transport.udp.send_syscalls_total"] +
			delta.Counters["transport.udp.recv_syscalls_total"]
		pt.SyscallsPerMsg = float64(sys) / float64(r.msgs)
	}
	return pt, nil
}

// udpVerdictAt4KB compares the unbatched (depth-1) UDP cell against
// the best batched UDP cell at the default SDU size. It returns the
// syscall-reduction factor (unbatched crossings per SDU over batched),
// the throughput speedup (batched goodput over unbatched), and whether
// the sweep contained both cells with usable data.
func (r *WireResult) udpVerdictAt4KB() (sysRatio, speedup float64, ok bool) {
	var base, best *WirePoint
	for i := range r.Points {
		p := &r.Points[i]
		if p.Transport != "udp" || p.MsgSize != 4096 {
			continue
		}
		if p.Batch == 1 {
			base = p
		} else if best == nil || p.Throughput > best.Throughput {
			best = p
		}
	}
	if base == nil || best == nil ||
		base.SyscallsPerMsg <= 0 || best.SyscallsPerMsg <= 0 ||
		base.Throughput <= 0 || best.Throughput <= 0 {
		return 0, 0, false
	}
	return base.SyscallsPerMsg / best.SyscallsPerMsg,
		best.Throughput / base.Throughput, true
}

// Regressed reports whether the verdict failed: on batch-syscall
// platforms, the batched transport at 4KB messages must make MinRatio
// times fewer kernel crossings per delivered SDU than the unbatched
// wire, at no less than MinSpeedup of its throughput.
func (r *WireResult) Regressed() bool {
	if !r.BatchSyscalls {
		return false
	}
	sysRatio, speedup, ok := r.udpVerdictAt4KB()
	return !ok || sysRatio < r.Config.MinRatio || speedup < r.Config.MinSpeedup
}

// Render formats the sweep table and verdict.
func (r *WireResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire transport sweep (%s send window per cell, batch syscalls: %v)\n",
		r.Config.Duration, r.BatchSyscalls)
	fmt.Fprintf(&b, "%-9s %8s %6s %12s %12s %14s %10s\n",
		"transport", "msg", "batch", "sent", "delivered", "goodput", "sys/msg")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-9s %8d %6d %12d %12d %11.2f MB/s %10.3f\n",
			p.Transport, p.MsgSize, p.Batch, p.Sent, p.Delivered,
			p.Throughput/1e6, p.SyscallsPerMsg)
	}
	switch sysRatio, speedup, ok := r.udpVerdictAt4KB(); {
	case !r.BatchSyscalls:
		b.WriteString("verdict: SKIP batched-vs-unbatched (platform lacks sendmmsg/recvmmsg; per-datagram fallback in use)\n")
	case !ok:
		b.WriteString("verdict: FAIL batched-vs-unbatched (sweep lacks usable 4KB UDP cells)\n")
	case sysRatio >= r.Config.MinRatio && speedup >= r.Config.MinSpeedup:
		fmt.Fprintf(&b, "verdict: PASS batched UDP at 4KB: %.1fx fewer syscalls/SDU (floor %.1fx), %.2fx throughput (floor %.2fx)\n",
			sysRatio, r.Config.MinRatio, speedup, r.Config.MinSpeedup)
	default:
		fmt.Fprintf(&b, "verdict: FAIL batched UDP at 4KB: %.1fx fewer syscalls/SDU (floor %.1fx), %.2fx throughput (floor %.2fx)\n",
			sysRatio, r.Config.MinRatio, speedup, r.Config.MinSpeedup)
	}
	return b.String()
}

// WriteJSON writes the machine-readable result for CI archival.
func (r *WireResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
