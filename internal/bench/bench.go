// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§4):
//
//	Table I    — per-stage cost of a 1-byte threaded NCS_send
//	Figure 10  — user-level vs kernel-level thread package under load
//	Figure 11  — threaded-send overhead ratio to the native interface
//	Figure 12  — echo round trip: NCS vs p4/PVM/MPI, same platform
//	Figure 13  — echo round trip on the heterogeneous platform pair
//
// The drivers are shared by cmd/ncs-bench (human-readable reports) and
// the repository's testing.B benchmarks. Where 1998 hardware matters,
// the experiments run over the simulated substrates (internal/netsim,
// internal/atm, internal/platform); see DESIGN.md §3 for the
// substitution rationale.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Point is one measurement of a series.
type Point struct {
	Size  int
	Value time.Duration
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced figure: a set of series over message sizes.
type Figure struct {
	Title  string
	YLabel string
	Series []Series
}

// DefaultSizes is the paper's message-size sweep for Figures 12–13.
var DefaultSizes = []int{1, 1024, 4096, 8192, 16384, 32768, 65536}

// ThreadSweepSizes is the sweep of Figures 10–11.
var ThreadSweepSizes = []int{1, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// Render formats the figure as an aligned text table, one row per
// message size, one column per series.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if f.YLabel != "" {
		fmt.Fprintf(&b, "values: %s\n", f.YLabel)
	}
	fmt.Fprintf(&b, "%-10s", "size")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')

	if len(f.Series) == 0 {
		return b.String()
	}
	for i, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-10s", sizeLabel(p.Size))
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %14s", fmtDuration(s.Points[i].Value))
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderRatio formats the figure with float ratios instead of durations
// (used by Figure 11, whose y-axis is a ratio to the native socket).
func (f Figure) RenderRatio(base Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-10s", "size")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	for i, bp := range base.Points {
		fmt.Fprintf(&b, "%-10s", sizeLabel(bp.Size))
		for _, s := range f.Series {
			if i < len(s.Points) && bp.Value > 0 {
				fmt.Fprintf(&b, " %14.2f", float64(s.Points[i].Value)/float64(bp.Value))
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sizeLabel(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dK", n/1024)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// median returns the middle value of the sorted copies of ds, after
// dropping the best and worst samples, matching the paper's averaging
// methodology ("averaged over 100 iterations after discarding the best
// and worst timings").
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	if len(sorted) > 2 {
		sorted = sorted[1 : len(sorted)-1]
	}
	return sorted[len(sorted)/2]
}

// meanTrimmed averages after dropping the best and worst samples.
func meanTrimmed(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	if len(ds) <= 2 {
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}
	min, max := ds[0], ds[0]
	var sum time.Duration
	for _, d := range ds {
		sum += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return (sum - min - max) / time.Duration(len(ds)-2)
}
