package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"ncs/internal/core"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/netsim"
	"ncs/internal/transport"
)

// The loss experiment reproduces the paper's error-control comparison
// (§3.2): the same message stream pushed through each error-control
// mode while the link loses an increasing fraction of its packets. It
// is the quantitative form of the paper's argument — selective repeat
// retransmits only what was lost, go-back-N replays the tail, and
// "none" trades completeness for timeliness — and it runs on the
// fault-injection layer the chaos harness uses, so every cell of the
// table is seeded and reproducible.

// LossConfig parameterises the sweep.
type LossConfig struct {
	// LossRates to sweep. Default 0, 1%, 5%, 10%.
	LossRates []float64
	// Modes compared. Default None, go-back-N, selective repeat.
	Modes []errctl.Algorithm
	// Messages per cell; default 30.
	Messages int
	// MsgSize in bytes; default 16 KB (multi-SDU at the 4 KB default).
	MsgSize int
	// Seed drives the link's loss process. Default 1.
	Seed int64
}

func (c LossConfig) withDefaults() LossConfig {
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0, 0.01, 0.05, 0.10}
	}
	if len(c.Modes) == 0 {
		c.Modes = []errctl.Algorithm{errctl.None, errctl.GoBackN, errctl.SelectiveRepeat}
	}
	if c.Messages <= 0 {
		c.Messages = 30
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 16 * 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LossPoint is one cell of the sweep.
type LossPoint struct {
	LossRate float64
	Mode     errctl.Algorithm
	// Elapsed is the wall time to move every message.
	Elapsed time.Duration
	// Goodput is delivered payload over elapsed time, bytes/second.
	Goodput float64
	// Retransmissions counts SDUs re-sent by error control.
	Retransmissions uint64
	// DeliveredMessages and LostSDUs describe what the receiver saw
	// (losses only ever non-zero for the None mode).
	DeliveredMessages int
	LostSDUs          int
}

// LossResult is the full sweep.
type LossResult struct {
	Config LossConfig
	Points []LossPoint
}

// LossSweep runs the error-control comparison over a lossy simulated
// HPI link (loss injected through the netsim impairment layer, seeded
// for reproducibility).
func LossSweep(cfg LossConfig) (LossResult, error) {
	cfg = cfg.withDefaults()
	res := LossResult{Config: cfg}
	for _, rate := range cfg.LossRates {
		for _, mode := range cfg.Modes {
			pt, err := lossCell(cfg, rate, mode)
			if err != nil {
				return res, fmt.Errorf("loss %.0f%% %v: %w", rate*100, mode, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func lossCell(cfg LossConfig, rate float64, mode errctl.Algorithm) (LossPoint, error) {
	nw := core.NewNetwork()
	defer nw.Close()
	opts := core.Options{
		Interface:    transport.HPI,
		ErrorControl: mode,
		FlowControl:  flowctl.Credit,
		AckTimeout:   25 * time.Millisecond,
		HPILink: &netsim.Params{
			Delay: 200 * time.Microsecond,
			Seed:  cfg.Seed,
			// i.i.d. loss expressed through the impairment layer's
			// burst model (good-state loss only), keeping the whole
			// failure process on the link's seeded RNG stream.
			Impair: netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: rate}},
		},
	}
	a, err := nw.NewSystem("loss-a")
	if err != nil {
		return LossPoint{}, err
	}
	b, err := nw.NewSystem("loss-b")
	if err != nil {
		return LossPoint{}, err
	}
	conn, err := a.Connect("loss-b", opts)
	if err != nil {
		return LossPoint{}, err
	}
	peer, err := b.AcceptTimeout(5 * time.Second)
	if err != nil {
		return LossPoint{}, err
	}
	defer conn.Close()
	defer peer.Close()

	msg := make([]byte, cfg.MsgSize)
	for i := range msg {
		msg[i] = byte(i)
	}
	pt := LossPoint{LossRate: rate, Mode: mode}
	// The receiver owns its counters and hands them back over the
	// channel, so an early error return here never races its updates.
	type recvResult struct {
		delivered, lostSDUs int
		err                 error
	}
	recvCh := make(chan recvResult, 1)
	go func() {
		var r recvResult
		for i := 0; i < cfg.Messages; i++ {
			m, err := peer.RecvMessageTimeout(10 * time.Second)
			if errors.Is(err, core.ErrRecvTimeout) && mode == errctl.None {
				// An unreliable message whose end SDU was lost never
				// completes; that is the mode's contract, not a stall.
				continue
			}
			if err != nil {
				r.err = err
				recvCh <- r
				return
			}
			r.delivered++
			r.lostSDUs += m.Lost
		}
		recvCh <- r
	}()

	start := time.Now()
	for i := 0; i < cfg.Messages; i++ {
		if err := conn.Send(msg); err != nil {
			return pt, err
		}
	}
	var r recvResult
	if mode == errctl.None {
		// Fire-and-forget: the transfer ends when the sender hands the
		// last SDU over; then give the tail time to land and unblock
		// the receiver by closing.
		pt.Elapsed = time.Since(start)
		time.Sleep(250 * time.Millisecond)
		conn.Close()
		peer.Close()
		r = <-recvCh
	} else {
		r = <-recvCh
		if r.err != nil {
			return pt, r.err
		}
		pt.Elapsed = time.Since(start)
	}
	pt.DeliveredMessages = r.delivered
	pt.LostSDUs = r.lostSDUs
	st := peer.Stats()
	pt.Goodput = float64(st.BytesReceived) / pt.Elapsed.Seconds()
	pt.Retransmissions = conn.Stats().Retransmissions
	return pt, nil
}

// Render formats the sweep as the paper-style comparison table.
func (r LossResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Error control under packet loss (%d × %d KB messages per cell, seed %d)\n",
		r.Config.Messages, r.Config.MsgSize/1024, r.Config.Seed)
	fmt.Fprintf(&b, "%-8s %-18s %12s %14s %8s %10s %8s\n",
		"loss", "mode", "elapsed", "goodput", "retx", "delivered", "lostSDU")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s %-18s %12s %11.2f MB/s %8d %10d %8d\n",
			fmt.Sprintf("%.0f%%", p.LossRate*100), p.Mode.String(),
			p.Elapsed.Round(time.Millisecond), p.Goodput/1e6,
			p.Retransmissions, p.DeliveredMessages, p.LostSDUs)
	}
	return b.String()
}
