package bench

import (
	"time"

	"ncs/internal/thread"
)

// Fig11Config parameterises the Figure 11 reproduction.
type Fig11Config struct {
	// Sizes defaults to ThreadSweepSizes.
	Sizes []int
	// Iterations per size. Default 50.
	Iterations int
}

func (c Fig11Config) withDefaults() Fig11Config {
	if len(c.Sizes) == 0 {
		c.Sizes = ThreadSweepSizes
	}
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
	return c
}

// Figure11Data holds the three curves needed for the overhead ratio:
// the native socket baseline and the threaded send path on each thread
// package.
type Figure11Data struct {
	Native Series
	Fig    Figure // user-level and kernel-level threaded sends
}

// Figure11 reproduces the §4.2 overhead-ratio experiment: the time of a
// synchronous threaded NCS_send (queue → Send Thread → transmit →
// switch back) relative to writing the native socket directly, for each
// thread package. The ratio starts well above 1 for 1-byte messages —
// the session overhead of Table I — and decays toward 1 as per-byte
// costs dominate.
func Figure11(cfg Fig11Config) Figure11Data {
	cfg = cfg.withDefaults()

	native := Series{Label: "native"}
	for _, size := range cfg.Sizes {
		native.Points = append(native.Points, Point{Size: size, Value: fig11Native(cfg, size)})
	}

	fig := Figure{
		Title:  "Figure 11: threaded send overhead relative to native socket",
		YLabel: "time per send (ratio printed against native)",
	}
	for _, model := range []thread.Model{thread.UserLevel, thread.KernelLevel} {
		s := Series{Label: model.String()}
		for _, size := range cfg.Sizes {
			s.Points = append(s.Points, Point{Size: size, Value: fig11Threaded(cfg, model, size)})
		}
		fig.Series = append(fig.Series, s)
	}
	return Figure11Data{Native: native, Fig: fig}
}

// fig11Native times a direct native write: the deterministic
// kernel-write sink (fixed syscall cost plus per-byte copy).
func fig11Native(cfg Fig11Config, size int) time.Duration {
	sink := newWriteSink()
	msg := make([]byte, size)
	samples := make([]time.Duration, 0, cfg.Iterations)
	for i := 0; i < cfg.Iterations; i++ {
		start := time.Now()
		_ = sink.Send(msg)
		samples = append(samples, time.Since(start))
	}
	return meanTrimmed(samples)
}

// fig11Threaded times the same write issued through the thread-package
// send path, waiting for the transmission to complete.
func fig11Threaded(cfg Fig11Config, model thread.Model, size int) time.Duration {
	pkg := thread.New(model)
	defer pkg.Shutdown()

	mini, err := newMiniSendPath(pkg, newWriteSink())
	if err != nil {
		return 0
	}

	msg := make([]byte, size)
	var result time.Duration
	th, err := pkg.Spawn("caller", func() {
		samples := make([]time.Duration, 0, cfg.Iterations)
		for i := 0; i < cfg.Iterations; i++ {
			start := time.Now()
			mini.sendSync(msg)
			samples = append(samples, time.Since(start))
		}
		result = meanTrimmed(samples)
	})
	if err != nil {
		mini.close()
		return 0
	}
	th.Join()
	mini.close()
	return result
}
