package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/buf"
	"ncs/internal/core"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/netsim"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The pressure experiment stresses the credit flow control from both
// ends.
//
// Phase A — bounded memory: a wide sharded fan-in (default 4096
// connections) of fast producers against a deliberately slow consumer
// pool, with error control off so the receiver-advertised credits are
// the ONLY thing standing between the producers and unbounded
// buffering — exactly the sender-OOM scenario credit flow control
// exists to prevent. The phase samples the pooled-buffer population
// (buf.Outstanding) throughout and fails if the peak ever exceeds a
// fixed per-connection budget.
//
// Phase B — controller sweep: a reliable 64-connection workload of
// multi-SDU messages, run clean and under Gilbert–Elliott burst loss,
// across the congestion controllers. The acceptance is that the
// adaptive AIMD controller under burst loss sustains at least
// PressureThroughputFloor of the static controller's clean-link
// throughput — adaptivity must not collapse the link it is protecting.

// PressureBudgetPerConn is Phase A's pooled-buffer budget per
// connection: the credit window (every admitted SDU stages one pooled
// buffer end to end) plus the shard send-queue and transport-pipe
// depths a connection can fill while parked. The phase fails when the
// sampled peak exceeds conns × this + PressureBudgetSlack.
const PressureBudgetPerConn = 192

// PressureBudgetSlack absorbs the process-wide constant population:
// control packets in flight, per-shard staging, and sampler skew.
const PressureBudgetSlack = 4096

// PressureThroughputFloor is Phase B's acceptance ratio: AIMD under
// burst loss vs static on a clean link.
const PressureThroughputFloor = 0.80

// pressureBurst is Phase B's loss process: short, clustered bursts
// (stationary loss ≈ 0.5% — a frame-level rate in the regime the
// paper's ATM measurements assume) — enough that every connection
// takes repeated grant and data losses over the measured interval, so
// a credit leak or controller collapse craters the ratio, while a
// healthy stack recovers at round-trip pace.
var pressureBurst = netsim.GilbertElliott{PGoodBad: 0.005, PBadGood: 0.5, LossBad: 0.5}

// PressureConfig parameterises the experiment.
type PressureConfig struct {
	// Conns is Phase A's fan-in width; default 4096.
	Conns int
	// Duration is the measured interval per phase/point; default 400ms.
	Duration time.Duration
	// Workers sizes the consumer pools; default GOMAXPROCS.
	Workers int
	// SweepConns is Phase B's connection count; default 64.
	SweepConns int
	// MsgSize is Phase B's message size; default 8192 (16 SDUs at the
	// 512-byte SDU both phases use).
	MsgSize int
}

func (c PressureConfig) withDefaults() PressureConfig {
	if c.Conns <= 0 {
		c.Conns = 4096
	}
	if c.Duration <= 0 {
		c.Duration = 400 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SweepConns <= 0 {
		c.SweepConns = 64
	}
	if c.MsgSize < 16 {
		c.MsgSize = 8192
	}
	return c
}

// PressurePoint is one Phase B cell.
type PressurePoint struct {
	Controller string  `json:"controller"`
	Link       string  `json:"link"` // "clean" or "burst"
	Messages   int64   `json:"messages"`
	Throughput float64 `json:"throughput_msgs_per_sec"`
}

// PressureResult is the full experiment.
type PressureResult struct {
	GOMAXPROCS int   `json:"gomaxprocs"`
	DurationMS int64 `json:"duration_ms_per_point"`

	// Phase A.
	Conns           int   `json:"conns"`
	PeakOutstanding int64 `json:"peak_outstanding_bufs"`
	BufferBudget    int64 `json:"buffer_budget"`
	FanInMessages   int64 `json:"fan_in_messages"`

	// Phase B.
	SweepConns int             `json:"sweep_conns"`
	MsgSize    int             `json:"msg_size"`
	Points     []PressurePoint `json:"points"`

	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// PressureSweep runs both phases.
func PressureSweep(cfg PressureConfig) (*PressureResult, error) {
	cfg = cfg.withDefaults()
	res := &PressureResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		DurationMS: cfg.Duration.Milliseconds(),
		Conns:      cfg.Conns,
		SweepConns: cfg.SweepConns,
		MsgSize:    cfg.MsgSize,
	}
	base := runtime.NumGoroutine()
	if err := runPressureFanIn(cfg, res); err != nil {
		return nil, fmt.Errorf("pressure fan-in: %w", err)
	}
	settle := func() {
		awaitGoroutines(base+8, 10*time.Second)
		// Flush the previous phase's dead heap before measuring the next
		// cell. The fan-in retires hundreds of MB, and the pooled-buffer
		// sync.Pool victim caches keep much of it reachable for two more
		// collections — on a small-GOMAXPROCS runner the inflated pacer
		// goal then turns every background GC during the sweep into a
		// 100ms+ stall, and the cells measure the collector instead of
		// the controllers. Two forced collections drop the victim caches
		// and reset the goal to the cell's real live set.
		runtime.GC()
		runtime.GC()
	}
	settle()
	sweep := []struct {
		ctrl  flowctl.ControllerKind
		burst bool
	}{
		{flowctl.ControllerStatic, false},
		{flowctl.ControllerStatic, true},
		{flowctl.ControllerAIMD, true},
		{flowctl.ControllerRTT, true},
	}
	for _, pt := range sweep {
		p, err := runPressurePoint(cfg, pt.ctrl, pt.burst)
		if err != nil {
			return nil, fmt.Errorf("pressure sweep %v: %w", pt.ctrl, err)
		}
		res.Points = append(res.Points, p)
		settle()
	}
	return res, nil
}

// runPressureFanIn is Phase A.
func runPressureFanIn(cfg PressureConfig, res *PressureResult) error {
	nw := core.NewNetwork()
	defer nw.Close()
	client, err := nw.NewSystem("pressure-client")
	if err != nil {
		return err
	}
	server, err := nw.NewSystem("pressure-server")
	if err != nil {
		return err
	}

	serverIB := core.NewInbox(2 * cfg.Conns)
	defer serverIB.Close()
	acceptErr := make(chan error, 1)
	go func() {
		for i := 0; i < cfg.Conns; i++ {
			p, err := server.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			if err := p.BindInbox(serverIB); err != nil {
				acceptErr <- err
				return
			}
		}
		acceptErr <- nil
	}()

	// Error control off, credit flow control on: admission credits are
	// the only backpressure between producers and the slow consumers.
	opts := core.Options{
		Interface:   transport.HPI,
		Runtime:     core.RuntimeSharded,
		FlowControl: flowctl.Credit,
		FlowConfig:  flowctl.Config{InitialCredits: 8, MaxCredits: 32},
		SDUSize:     512,
	}
	cc := make([]*core.Connection, cfg.Conns)
	for i := range cc {
		c, err := client.Connect("pressure-server", opts)
		if err != nil {
			return fmt.Errorf("connect %d: %w", i, err)
		}
		cc[i] = c
	}
	if err := <-acceptErr; err != nil {
		return err
	}

	// Slow consumers: the pool drains far below the producers' offered
	// rate, so the credit receivers must throttle the grants.
	var consumed atomic.Int64
	var serverWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		serverWG.Add(1)
		go func() {
			defer serverWG.Done()
			for {
				if _, err := serverIB.Recv(); err != nil {
					return
				}
				consumed.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	// Peak pooled-buffer sampler.
	var (
		peak        atomic.Int64
		stopSampler = make(chan struct{})
		samplerDone = make(chan struct{})
	)
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if n := buf.Outstanding(); n > peak.Load() {
					peak.Store(n)
				}
			case <-stopSampler:
				return
			}
		}
	}()

	// Fast producers: one per connection, each offering single-SDU
	// messages as fast as admission allows.
	var (
		stop     atomic.Bool
		clientWG sync.WaitGroup
	)
	msg := make([]byte, 512)
	for _, c := range cc {
		clientWG.Add(1)
		go func(c *core.Connection) {
			defer clientWG.Done()
			for !stop.Load() {
				if err := c.Send(msg); err != nil {
					return
				}
			}
		}(c)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	clientWG.Wait()
	close(stopSampler)
	<-samplerDone
	serverIB.Close()
	serverWG.Wait()

	res.PeakOutstanding = peak.Load()
	res.BufferBudget = int64(cfg.Conns)*PressureBudgetPerConn + PressureBudgetSlack
	res.FanInMessages = consumed.Load()
	if res.FanInMessages == 0 {
		return errors.New("no messages consumed")
	}
	return nil
}

// runPressurePoint is one Phase B cell: SweepConns reliable streams of
// multi-SDU messages under the chosen controller and link condition.
func runPressurePoint(cfg PressureConfig, kind flowctl.ControllerKind, burst bool) (PressurePoint, error) {
	nw := core.NewNetwork()
	defer nw.Close()
	client, err := nw.NewSystem("sweep-client")
	if err != nil {
		return PressurePoint{}, err
	}
	server, err := nw.NewSystem("sweep-server")
	if err != nil {
		return PressurePoint{}, err
	}

	link := "clean"
	opts := core.Options{
		Interface:    transport.HPI,
		Runtime:      core.RuntimeSharded,
		ErrorControl: errctl.SelectiveRepeat,
		FlowControl:  flowctl.Credit,
		// InitialCredits covers one message's SDU burst (MsgSize/SDUSize):
		// it is also the adaptive controllers' window floor, and a floor
		// below the per-message burst would hand every message a built-in
		// credit stall regardless of link condition — the cell would then
		// measure the floor, not the controller.
		FlowConfig: flowctl.Config{InitialCredits: 16, MaxCredits: 64, Controller: kind},
		SDUSize:    512,
		AckTimeout: 25 * time.Millisecond,
		// Adaptive RTO: with a ~200µs grant round trip, recovery from a
		// lost end-of-message SDU is RTT-paced rather than eating the
		// full 25ms fallback — the difference between measuring the
		// controllers and measuring the timeout constant.
		AdaptiveTimeout: true,
	}
	// Every cell runs over the same 100µs link; burst cells add only the
	// Gilbert–Elliott loss process, so the clean/burst ratio isolates
	// loss handling rather than conflating it with propagation delay.
	opts.HPILink = &netsim.Params{
		Delay: 100 * time.Microsecond,
		Seed:  int64(kind) + 42,
	}
	if burst {
		link = "burst"
		opts.HPILink.Impair = netsim.Impairments{Burst: pressureBurst}
	}

	serverIB := core.NewInbox(2 * cfg.SweepConns)
	defer serverIB.Close()
	acceptErr := make(chan error, 1)
	go func() {
		for i := 0; i < cfg.SweepConns; i++ {
			p, err := server.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			if err := p.BindInbox(serverIB); err != nil {
				acceptErr <- err
				return
			}
		}
		acceptErr <- nil
	}()
	cc := make([]*core.Connection, cfg.SweepConns)
	for i := range cc {
		c, err := client.Connect("sweep-server", opts)
		if err != nil {
			return PressurePoint{}, fmt.Errorf("connect %d: %w", i, err)
		}
		cc[i] = c
	}
	if err := <-acceptErr; err != nil {
		return PressurePoint{}, err
	}

	// Fast consumers: Phase B measures the send path's recovery, so the
	// receive side must never be the bottleneck.
	var serverWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		serverWG.Add(1)
		go func() {
			defer serverWG.Done()
			for {
				if _, err := serverIB.Recv(); err != nil {
					return
				}
			}
		}()
	}

	var (
		stop      atomic.Bool
		completed atomic.Int64
		clientWG  sync.WaitGroup
	)
	msg := make([]byte, cfg.MsgSize)
	for _, c := range cc {
		clientWG.Add(1)
		go func(c *core.Connection) {
			defer clientWG.Done()
			for !stop.Load() {
				if err := c.Send(msg); err != nil {
					return
				}
				completed.Add(1)
			}
		}(c)
	}
	// Warm the windows, then measure a clean interval.
	time.Sleep(cfg.Duration / 4)
	startCount := completed.Load()
	start := time.Now()
	time.Sleep(cfg.Duration)
	measured := completed.Load() - startCount
	elapsed := time.Since(start)
	stop.Store(true)
	clientWG.Wait()
	serverIB.Close()
	serverWG.Wait()

	if measured == 0 {
		return PressurePoint{}, fmt.Errorf("%s/%s: no messages completed", kind, link)
	}
	return PressurePoint{
		Controller: kind.String(),
		Link:       link,
		Messages:   measured,
		Throughput: float64(measured) / elapsed.Seconds(),
	}, nil
}

// point finds a Phase B cell by coordinates.
func (r *PressureResult) point(controller, link string) (PressurePoint, bool) {
	for _, p := range r.Points {
		if p.Controller == controller && p.Link == link {
			return p, true
		}
	}
	return PressurePoint{}, false
}

// verdict renders the acceptance lines and reports failure.
func (r *PressureResult) verdict() (string, bool) {
	var b strings.Builder
	failed := false
	if r.PeakOutstanding > r.BufferBudget {
		failed = true
		fmt.Fprintf(&b, "FAIL memory: peak %d pooled refs exceeds budget %d (%d conns × %d + %d)\n",
			r.PeakOutstanding, r.BufferBudget, r.Conns, PressureBudgetPerConn, PressureBudgetSlack)
	} else {
		fmt.Fprintf(&b, "memory: peak %d pooled refs within budget %d (%d conns × %d + %d)\n",
			r.PeakOutstanding, r.BufferBudget, r.Conns, PressureBudgetPerConn, PressureBudgetSlack)
	}
	baseline, ok1 := r.point("static", "clean")
	aimd, ok2 := r.point("aimd", "burst")
	if ok1 && ok2 && baseline.Throughput > 0 {
		ratio := aimd.Throughput / baseline.Throughput
		tag := "throughput"
		if ratio < PressureThroughputFloor {
			failed = true
			tag = "FAIL throughput"
		}
		fmt.Fprintf(&b, "%s: aimd under burst loss sustains %.0f%% of static clean (floor %.0f%%)\n",
			tag, ratio*100, PressureThroughputFloor*100)
	}
	return b.String(), failed
}

// Regressed reports whether either acceptance failed: the fan-in peak
// broke the buffer budget, or AIMD under burst loss fell below the
// throughput floor.
func (r *PressureResult) Regressed() bool {
	_, failed := r.verdict()
	return failed
}

// Render lays the experiment out for humans.
func (r *PressureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pressure: %d-conn slow-consumer fan-in + %d-conn controller sweep (%d-byte messages), %d ms per point, GOMAXPROCS=%d\n",
		r.Conns, r.SweepConns, r.MsgSize, r.DurationMS, r.GOMAXPROCS)
	fmt.Fprintf(&b, "fan-in: %d messages consumed, peak pooled refs %d (budget %d)\n",
		r.FanInMessages, r.PeakOutstanding, r.BufferBudget)
	fmt.Fprintf(&b, "%-12s %-7s %10s %14s\n", "controller", "link", "msgs", "msgs/sec")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %-7s %10d %14.0f\n", p.Controller, p.Link, p.Messages, p.Throughput)
	}
	v, _ := r.verdict()
	b.WriteString(v)
	return b.String()
}

// WriteJSON writes the machine-readable result for CI archival.
func (r *PressureResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
