package bench

import (
	"time"

	"ncs/internal/netsim"
	"ncs/internal/thread"
)

// Fig10Config parameterises the Figure 10 reproduction. The defaults
// are a time-scaled version of the paper's setup (100 ms compute load,
// 100 iterations, 32 KB socket buffer): the compute load shrinks from
// 100 ms to 2 ms and the iteration count from 100 to 20 so the sweep
// finishes in seconds, and the socket drain rate is set so that the
// structural crossover — the message size where cumulative production
// first outruns buffer-plus-drain and the user-level package starts
// stalling in the kernel — lands at 4 KB, where the paper observed it:
//
//	N·msg > Buf + drain·N·L  ⇒  msg* = Buf/N + drain·L
//
// With N=20, Buf=32 KB, L=2 ms: drain = (4096 − 32768/20)/0.002 ≈ 1.23 MB/s.
type Fig10Config struct {
	// Sizes is the message sweep; defaults to ThreadSweepSizes.
	Sizes []int
	// Iterations per size (the paper's 100). Default 20.
	Iterations int
	// ComputeLoad is the post-send computation (the paper's 100 ms).
	// Default 2 ms.
	ComputeLoad time.Duration
	// SocketBuffer is the kernel send buffer. Default 32 KB (paper).
	SocketBuffer int
	// DrainBytesPerSec is the rate the peer drains the socket.
	// Default 1.23 MB/s (calibrated crossover at 4 KB; see above).
	DrainBytesPerSec int64
}

func (c Fig10Config) withDefaults() Fig10Config {
	if len(c.Sizes) == 0 {
		c.Sizes = ThreadSweepSizes
	}
	if c.Iterations <= 0 {
		c.Iterations = 20
	}
	if c.ComputeLoad <= 0 {
		c.ComputeLoad = 2 * time.Millisecond
	}
	if c.SocketBuffer <= 0 {
		c.SocketBuffer = 32 * 1024
	}
	if c.DrainBytesPerSec <= 0 {
		c.DrainBytesPerSec = 1_230_000
	}
	return c
}

// Figure10 reproduces the §4.1 experiment: the Figure 9 test program —
// NCS_send followed by a fixed computation, repeated — on the
// user-level and kernel-level thread packages, over a socket with a
// bounded send buffer. The reported value is the average time per
// iteration. The expected shape: both curves sit near the compute load
// for small messages; past the crossover the user-level curve climbs
// steeply (a blocking send stalls the whole process) while the
// kernel-level curve stays flat (the blocked Send Thread overlaps the
// computation).
func Figure10(cfg Fig10Config) Figure {
	cfg = cfg.withDefaults()
	fig := Figure{
		Title:  "Figure 10: user-level vs kernel-level thread package (scaled)",
		YLabel: "avg time per send+compute iteration",
	}
	for _, model := range []thread.Model{thread.UserLevel, thread.KernelLevel} {
		s := Series{Label: model.String()}
		for _, size := range cfg.Sizes {
			s.Points = append(s.Points, Point{Size: size, Value: fig10Run(cfg, model, size)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

func fig10Run(cfg Fig10Config, model thread.Model, size int) time.Duration {
	pkg := thread.New(model)
	defer pkg.Shutdown()

	a, b := netsim.Pipe(netsim.Params{
		Bandwidth:   cfg.DrainBytesPerSec,
		BufferBytes: cfg.SocketBuffer,
	}, netsim.Params{})
	defer a.Close()
	defer b.Close()

	// The peer host drains the socket (an ordinary OS process, so a
	// plain goroutine regardless of the thread package under test).
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()

	mini, err := newMiniSendPath(pkg, a)
	if err != nil {
		return 0
	}

	msg := make([]byte, size)
	var elapsed time.Duration
	computeDone := make(chan struct{})
	computeThread, err := pkg.Spawn("compute", func() {
		defer close(computeDone)
		start := time.Now()
		for i := 0; i < cfg.Iterations; i++ {
			mini.send(msg)
			time.Sleep(cfg.ComputeLoad) // Computation(L)
		}
		elapsed = time.Since(start)
	})
	if err != nil {
		mini.close()
		return 0
	}
	computeThread.Join()
	<-computeDone
	// Abort the undrained backlog before joining the Send Thread:
	// closing the endpoint fails pending sends immediately instead of
	// draining them at the simulated line rate.
	a.Close()
	mini.close()
	<-drainDone
	return elapsed / time.Duration(cfg.Iterations)
}
