package bench

import (
	"fmt"
	"time"

	"ncs/internal/baseline/mpi"
	"ncs/internal/baseline/p4"
	"ncs/internal/baseline/pvm"
	"ncs/internal/core"
	"ncs/internal/netsim"
	"ncs/internal/platform"
	"ncs/internal/transport"
)

// SystemKind names a message-passing system under test.
type SystemKind int

// The four systems compared in Figures 12–13.
const (
	SysNCS SystemKind = iota + 1
	SysP4
	SysPVM
	SysMPI
)

// String implements fmt.Stringer.
func (s SystemKind) String() string {
	switch s {
	case SysNCS:
		return "NCS"
	case SysP4:
		return "p4"
	case SysPVM:
		return "PVM"
	case SysMPI:
		return "MPI"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(s))
	}
}

// AllSystems lists the systems in the paper's legend order.
var AllSystems = []SystemKind{SysNCS, SysP4, SysMPI, SysPVM}

// Messenger is the uniform send/recv surface the echo harness drives.
type Messenger interface {
	Send(p []byte) error
	Recv() ([]byte, error)
	Close() error
}

// EchoConfig parameterises one echo measurement.
type EchoConfig struct {
	System SystemKind
	// Local and Remote are the client's and server's platforms.
	Local, Remote platform.Platform
	// LinkBandwidth in bytes/second. Default 155 Mbit/s ÷ 8 (OC-3 ATM).
	LinkBandwidth int64
	// LinkDelay is the one-way propagation delay. Default 50 µs (LAN).
	LinkDelay time.Duration
	// Sizes defaults to DefaultSizes (1 B – 64 KB).
	Sizes []int
	// Iterations per size; best and worst are dropped. Default 10.
	Iterations int
}

func (c EchoConfig) withDefaults() EchoConfig {
	if c.LinkBandwidth <= 0 {
		c.LinkBandwidth = 155_000_000 / 8
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 50 * time.Microsecond
	}
	if len(c.Sizes) == 0 {
		c.Sizes = DefaultSizes
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	return c
}

// Calibrated cross-stack penalties (see EXPERIMENTS.md): on the
// heterogeneous pair, the TCP-chunked systems hit delayed-ACK/Nagle
// interactions between the two stacks on every multi-segment transfer.
// These constants set the Figure 13 magnitudes; the orderings come from
// the executed protocols.
const (
	heteroStallThreshold = 8 * 1024
	p4HeteroStall        = 100 * time.Millisecond
	mpiHeteroStall       = 150 * time.Millisecond
)

// RunEcho measures round-trip times for one system across the size
// sweep, using the paper's §4.3 echo methodology.
func RunEcho(cfg EchoConfig) (Series, error) {
	cfg = cfg.withDefaults()
	client, server, cleanup, err := buildEchoPair(cfg)
	if err != nil {
		return Series{}, err
	}
	defer cleanup()

	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		for {
			m, err := server.Recv()
			if err != nil {
				return
			}
			if err := server.Send(m); err != nil {
				return
			}
		}
	}()

	s := Series{Label: cfg.System.String()}
	for _, size := range cfg.Sizes {
		msg := make([]byte, size)
		samples := make([]time.Duration, 0, cfg.Iterations)
		for i := 0; i < cfg.Iterations; i++ {
			start := time.Now()
			if err := client.Send(msg); err != nil {
				return s, fmt.Errorf("echo send (%v, %d bytes): %w", cfg.System, size, err)
			}
			if _, err := client.Recv(); err != nil {
				return s, fmt.Errorf("echo recv (%v, %d bytes): %w", cfg.System, size, err)
			}
			samples = append(samples, time.Since(start))
		}
		s.Points = append(s.Points, Point{Size: size, Value: meanTrimmed(samples)})
	}
	client.Close()
	server.Close()
	<-serverDone
	return s, nil
}

// FigureEcho runs the full system sweep for one platform pair — the
// engine behind Figures 12 and 13.
func FigureEcho(title string, local, remote platform.Platform, sizes []int, iterations int) (Figure, error) {
	fig := Figure{Title: title, YLabel: "round-trip time"}
	for _, sys := range AllSystems {
		series, err := RunEcho(EchoConfig{
			System:     sys,
			Local:      local,
			Remote:     remote,
			Sizes:      sizes,
			Iterations: iterations,
		})
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// buildEchoPair assembles the system-specific stack over the simulated
// link and platforms.
func buildEchoPair(cfg EchoConfig) (client, server Messenger, cleanup func(), err error) {
	hetero := platform.Heterogeneous(cfg.Local, cfg.Remote)
	link := netsim.Params{Bandwidth: cfg.LinkBandwidth, Delay: cfg.LinkDelay}

	switch cfg.System {
	case SysNCS:
		nw := core.NewNetwork()
		a, err := nw.NewSystem("echo-client")
		if err != nil {
			nw.Close()
			return nil, nil, nil, err
		}
		b, err := nw.NewSystem("echo-server")
		if err != nil {
			nw.Close()
			return nil, nil, nil, err
		}
		local, remote := cfg.Local, cfg.Remote
		conn, err := a.Connect("echo-server", core.Options{
			Interface:    transport.ACI,
			QoS:          core.QoSForLink(cfg.LinkBandwidth, cfg.LinkDelay),
			Platform:     &local,
			PeerPlatform: &remote,
		})
		if err != nil {
			nw.Close()
			return nil, nil, nil, err
		}
		peer, err := b.AcceptTimeout(5 * time.Second)
		if err != nil {
			nw.Close()
			return nil, nil, nil, err
		}
		return ncsMessenger{conn}, ncsMessenger{peer}, nw.Close, nil

	case SysP4:
		c, s := stackPair(link, cfg.Local, cfg.Remote, hetero, p4HeteroStall)
		ec, es := p4.Pair(c, s, hetero)
		m1 := p4Messenger{ep: ec, plat: cfg.Local, convert: hetero}
		m2 := p4Messenger{ep: es, plat: cfg.Remote, convert: hetero}
		return m1, m2, func() { ec.Close(); es.Close() }, nil

	case SysMPI:
		c, s := stackPair(link, cfg.Local, cfg.Remote, hetero, mpiHeteroStall)
		r0, r1 := mpi.Pair(c, s, hetero)
		m1 := mpiMessenger{rk: r0, plat: cfg.Local, convert: hetero}
		m2 := mpiMessenger{rk: r1, plat: cfg.Remote, convert: hetero}
		return m1, m2, func() { r0.Close(); r1.Close() }, nil

	case SysPVM:
		// Task→pvmd is host-local (both endpoints pay the local host's
		// syscall/copy costs: the daemon is a real process); pvmd→pvmd
		// crosses the network link with the remote daemon and task
		// paying the remote host's costs. The default daemon route
		// therefore pays twice the per-fragment CPU cost of a direct
		// connection — the overhead PvmRouteDirect removes.
		hop := 0
		t1, t2, pvmCleanup := pvm.NewPair(pvm.PairConfig{
			MakeLink: func() (transport.Conn, transport.Conn) {
				hop++
				if hop == 1 {
					a, b := transport.HPIPair()
					return platform.Tax(a, cfg.Local), platform.Tax(b, cfg.Local)
				}
				a, b := transport.HPIPairWithParams(link, link)
				return platform.Tax(a, cfg.Remote), platform.Tax(b, cfg.Remote)
			},
		})
		m1 := pvmMessenger{task: t1, plat: cfg.Local}
		m2 := pvmMessenger{task: t2, plat: cfg.Remote}
		return m1, m2, pvmCleanup, nil

	default:
		return nil, nil, nil, fmt.Errorf("bench: unknown system %v", cfg.System)
	}
}

// stackPair builds the client and server transport stacks for the
// TCP-riding systems (p4, MPI): [stall] → [chunked] → tax → link.
// Chunk framing is a wire format, so if either platform chunks, both
// sides must speak it; a non-chunking platform uses a segment size
// large enough that its own writes stay whole.
func stackPair(link netsim.Params, local, remote platform.Platform, hetero bool, stall time.Duration) (transport.Conn, transport.Conn) {
	base1, base2 := transport.HPIPairWithParams(link, link)
	chunked := local.WriteChunk > 0 || remote.WriteChunk > 0
	c := stackSide(base1, local, chunked, hetero, stall)
	s := stackSide(base2, remote, chunked, hetero, stall)
	return c, s
}

func stackSide(base transport.Conn, plat platform.Platform, chunked, hetero bool, stall time.Duration) transport.Conn {
	var conn transport.Conn = platform.Tax(base, plat)
	if chunked {
		size := plat.WriteChunk
		if size <= 0 {
			size = 1 << 16
		}
		conn = transport.Chunked(conn, size)
	}
	if hetero && stall > 0 {
		conn = &stallConn{Conn: conn, threshold: heteroStallThreshold, perLarge: stall}
	}
	return conn
}

// stallConn charges a fixed penalty on every large send — the
// calibrated cross-stack TCP stall of Figure 13.
type stallConn struct {
	transport.Conn
	threshold int
	perLarge  time.Duration
}

func (s *stallConn) Send(p []byte) error {
	if len(p) > s.threshold {
		time.Sleep(s.perLarge)
	}
	return s.Conn.Send(p)
}

// ---------------------------------------------------------------------------
// Messenger adapters.

type ncsMessenger struct{ conn *core.Connection }

func (m ncsMessenger) Send(p []byte) error   { return m.conn.Send(p) }
func (m ncsMessenger) Recv() ([]byte, error) { return m.conn.Recv() }
func (m ncsMessenger) Close() error          { return m.conn.Close() }

type p4Messenger struct {
	ep      *p4.Endpoint
	plat    platform.Platform
	convert bool
}

func (m p4Messenger) Send(p []byte) error {
	if m.convert {
		platform.Charge(m.plat.XDRCost(len(p)))
	}
	return m.ep.Send(0, p)
}

func (m p4Messenger) Recv() ([]byte, error) {
	p, _, err := m.ep.Recv(p4.AnyType)
	if err != nil {
		return nil, err
	}
	if m.convert {
		platform.Charge(m.plat.XDRCost(len(p)))
	}
	return p, nil
}

func (m p4Messenger) Close() error { return m.ep.Close() }

type pvmMessenger struct {
	task *pvm.Task
	plat platform.Platform
}

func (m pvmMessenger) Send(p []byte) error {
	// PvmDataDefault always converts.
	platform.Charge(m.plat.XDRCost(len(p)))
	return m.task.Send(0, p)
}

func (m pvmMessenger) Recv() ([]byte, error) {
	p, _, _, err := m.task.Recv(pvm.AnyTask, pvm.AnyTag)
	if err != nil {
		return nil, err
	}
	platform.Charge(m.plat.XDRCost(len(p)))
	return p, nil
}

func (m pvmMessenger) Close() error { return m.task.Close() }

type mpiMessenger struct {
	rk      *mpi.Rank
	plat    platform.Platform
	convert bool
}

func (m mpiMessenger) Send(p []byte) error {
	if m.convert {
		platform.Charge(m.plat.XDRCost(len(p)))
	}
	return m.rk.Send(0, p)
}

func (m mpiMessenger) Recv() ([]byte, error) {
	p, _, err := m.rk.Recv(mpi.AnySource, mpi.AnyTag)
	if err != nil {
		return nil, err
	}
	if m.convert {
		platform.Charge(m.plat.XDRCost(len(p)))
	}
	return p, nil
}

func (m mpiMessenger) Close() error { return m.rk.Close() }
