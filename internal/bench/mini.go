package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/platform"
	"ncs/internal/thread"
)

// wireSender is the interface the mini send path writes to: either a
// simulated socket (netsim.Endpoint) or the deterministic kernel-write
// sink used by Figure 11.
type wireSender interface {
	Send(p []byte) error
}

// writeSink models the native socket write the paper's Figure 11 uses
// as its baseline: a fixed kernel-entry cost plus a per-byte copy cost.
// The constants are scaled so that the Go runtime's threading overhead
// occupies the same relative position the 1998 numbers gave NCS: a few
// times the native cost at one byte, amortised to ~1 at 64 KB.
type writeSink struct {
	fixed time.Duration
	perKB time.Duration
	buf   []byte
}

func newWriteSink() *writeSink {
	return &writeSink{fixed: 500 * time.Nanosecond, perKB: 500 * time.Nanosecond}
}

func (s *writeSink) Send(p []byte) error {
	platform.Charge(s.fixed + time.Duration(int64(s.perKB)*int64(len(p))/1024))
	s.buf = append(s.buf[:0], p...)
	return nil
}

// miniSendPath is the test program of Figure 9 made concrete: an
// NCS-style Send Thread fed by a message queue, running on a selectable
// thread package, transmitting over a simulated socket with a bounded
// kernel send buffer. It is deliberately smaller than internal/core —
// the §4.1 experiment isolates the thread architecture, so everything
// else is held to the minimum the paper's test code uses.
type miniSendPath struct {
	pkg thread.Package
	ep  wireSender

	mu    sync.Mutex
	queue [][]byte
	items thread.Semaphore

	sent    atomic.Int64 // transmissions completed (for sync sends)
	stopped atomic.Bool

	sendThread *thread.Thread
}

// newMiniSendPath spawns the Send Thread on the given package.
func newMiniSendPath(pkg thread.Package, ep wireSender) (*miniSendPath, error) {
	m := &miniSendPath{
		pkg:   pkg,
		ep:    ep,
		items: pkg.NewSemaphore(0),
	}
	th, err := pkg.Spawn("send-thread", m.sendLoop)
	if err != nil {
		return nil, err
	}
	m.sendThread = th
	return m, nil
}

// sendLoop is the Send Thread: wait for a queued request, transmit it.
// Blocking inside ep.Send is the crux of Figure 10: under the
// kernel-level package only this thread sleeps; under the user-level
// package the whole process stalls.
func (m *miniSendPath) sendLoop() {
	for {
		m.items.Acquire()
		if m.stopped.Load() {
			return
		}
		m.mu.Lock()
		pkt := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()

		_ = m.ep.Send(pkt)
		m.sent.Add(1)
	}
}

// send queues one message request and activates the Send Thread
// (NCS_send's queue + context switch, Table I rows 3–4). It does not
// wait for transmission.
func (m *miniSendPath) send(p []byte) {
	m.mu.Lock()
	m.queue = append(m.queue, p)
	m.mu.Unlock()
	m.items.Release()
	// Give the Send Thread the processor, as NCS_send's activation
	// context switch does. A no-op outside managed threads.
	m.pkg.Yield()
}

// sendSync queues one message and spins (yielding) until the Send
// Thread has transmitted it — the synchronous flow measured by Table I
// and Figure 11.
func (m *miniSendPath) sendSync(p []byte) {
	target := m.sent.Load() + 1
	m.send(p)
	for m.sent.Load() < target {
		m.pkg.Yield()
	}
}

// close stops the Send Thread.
func (m *miniSendPath) close() {
	m.stopped.Store(true)
	m.items.Release() // wake the send thread so it can observe stopped
	m.sendThread.Join()
}
