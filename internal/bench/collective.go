package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ncs/internal/core"
	"ncs/internal/group"
	"ncs/internal/mcast"
	"ncs/internal/netsim"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The collective experiment sweeps the group layer's headline
// operations — broadcast, allreduce, all-to-all — across both multicast
// algorithms (§2's repetitive vs. spanning tree), payload sizes from
// single-SDU to deep into the chunk pipeline, and both runtime
// architectures. The number the paper's §2 promises is visible in the
// broadcast rows: at large payloads the pipelined spanning tree beats
// repetitive send/receive, because the root pushes ⌈log₂ n⌉ copies
// instead of n-1 while interior ranks forward chunk k as the wire
// delivers chunk k+1.
//
// Results render as a table and serialise to machine-readable JSON
// (BENCH_collective.json by default) so CI can archive them per run.

// CollectiveConfig parameterises the sweep.
type CollectiveConfig struct {
	// Members is the group size; default 8.
	Members int
	// Ops is the operation axis; default broadcast, allreduce,
	// alltoall.
	Ops []string
	// Algorithms compared; default repetitive and spanning-tree.
	Algorithms []mcast.Algorithm
	// Sizes is the payload axis; default 4KB, 64KB, 256KB. For
	// alltoall the size is the whole per-member send volume (each of
	// the n-1 parts is Size/Members bytes).
	Sizes []int
	// Runtimes compared; default threaded and sharded.
	Runtimes []core.Runtime
	// Iters is the measured collective count per point; default 30.
	Iters int
	// ChunkSize overrides the broadcast pipelining unit (0: the group
	// default).
	ChunkSize int
	// LinkBandwidth paces every mesh link (bytes/second; default
	// 64 MB/s) and LinkBuffer bounds its send buffer (default 16 KB),
	// via the simulated link under the HPI data path. An unpaced
	// in-process link would hide the thing the experiment measures —
	// on a real network the root's interface serialises its fan-out,
	// which is exactly why the spanning tree wins at scale.
	LinkBandwidth int64
	LinkBuffer    int
}

func (c CollectiveConfig) withDefaults() CollectiveConfig {
	if c.Members < 2 {
		c.Members = 8
	}
	if len(c.Ops) == 0 {
		c.Ops = []string{"broadcast", "allreduce", "alltoall"}
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree}
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{4 * 1024, 64 * 1024, 256 * 1024}
	}
	if len(c.Runtimes) == 0 {
		c.Runtimes = []core.Runtime{core.RuntimeThreaded, core.RuntimeSharded}
	}
	if c.Iters <= 0 {
		c.Iters = 30
	}
	if c.LinkBandwidth <= 0 {
		c.LinkBandwidth = 64 << 20 // 64 MB/s — an OC-12-class link, in the
		// spirit of the paper's NYNET ATM testbed
	}
	if c.LinkBuffer <= 0 {
		c.LinkBuffer = 16 * 1024
	}
	if c.ChunkSize <= 0 {
		// A chunk's transmission time (≈500µs at the default bandwidth)
		// stays comfortably above the wire's pacing quantum, so
		// per-chunk serialisation is modelled faithfully.
		c.ChunkSize = 32 * 1024
	}
	return c
}

// CollectivePoint is one measured cell of the sweep.
type CollectivePoint struct {
	Op         string  `json:"op"`
	Alg        string  `json:"alg"`
	Runtime    string  `json:"runtime"`
	Size       int     `json:"size"`
	MicrosPer  float64 `json:"us_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
	AllocsPer  float64 `json:"allocs_per_op"`
	Goroutines int     `json:"goroutines"`
}

// CollectiveResult is the full sweep.
type CollectiveResult struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Members    int               `json:"members"`
	Iters      int               `json:"iters_per_point"`
	Points     []CollectivePoint `json:"points"`
	// Telemetry, when the caller sets it (ncs-bench -telemetry), embeds
	// the process-global instrument delta captured across the sweep.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// CollectiveSweep runs the experiment.
func CollectiveSweep(cfg CollectiveConfig) (*CollectiveResult, error) {
	cfg = cfg.withDefaults()
	res := &CollectiveResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Members:    cfg.Members,
		Iters:      cfg.Iters,
	}
	base := runtime.NumGoroutine()
	for _, rt := range cfg.Runtimes {
		for _, alg := range cfg.Algorithms {
			for _, op := range cfg.Ops {
				for _, size := range cfg.Sizes {
					pt, err := runCollectivePoint(cfg, rt, alg, op, size)
					if err != nil {
						return nil, fmt.Errorf("collective %v/%v/%s/%d: %w", rt, alg, op, size, err)
					}
					res.Points = append(res.Points, pt)
					awaitGoroutines(base+8, 10*time.Second)
				}
			}
		}
	}
	return res, nil
}

// runCollectivePoint measures one (runtime, algorithm, op, size) cell.
func runCollectivePoint(cfg CollectiveConfig, rt core.Runtime, alg mcast.Algorithm, op string, size int) (CollectivePoint, error) {
	nw := core.NewNetwork()
	defer nw.Close()
	names := make([]string, cfg.Members)
	for i := range names {
		names[i] = fmt.Sprintf("coll-%d", i)
	}
	groups, err := group.BuildConfig(nw, names,
		core.Options{
			Interface: transport.HPI,
			Runtime:   rt,
			HPILink: &netsim.Params{
				Bandwidth:   cfg.LinkBandwidth,
				BufferBytes: cfg.LinkBuffer,
				Seed:        1,
			},
		},
		group.Config{Algorithm: alg, ChunkSize: cfg.ChunkSize})
	if err != nil {
		return CollectivePoint{}, err
	}
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()

	iter, err := collectiveIter(op, cfg.Members, size)
	if err != nil {
		return CollectivePoint{}, err
	}
	runOnce := func() error {
		var wg sync.WaitGroup
		errs := make([]error, len(groups))
		for i, g := range groups {
			wg.Add(1)
			go func(i int, g *group.Group) {
				defer wg.Done()
				errs[i] = iter(g)
			}(i, g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Warm the connection pools and pipelines outside the window.
	for i := 0; i < 2; i++ {
		if err := runOnce(); err != nil {
			return CollectivePoint{}, err
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < cfg.Iters; i++ {
		if err := runOnce(); err != nil {
			return CollectivePoint{}, err
		}
	}
	elapsed := time.Since(start)
	goroutines := runtime.NumGoroutine()
	runtime.ReadMemStats(&m1)

	perOp := elapsed / time.Duration(cfg.Iters)
	return CollectivePoint{
		Op:         op,
		Alg:        alg.String(),
		Runtime:    rt.String(),
		Size:       size,
		MicrosPer:  float64(perOp.Nanoseconds()) / 1e3,
		OpsPerSec:  float64(cfg.Iters) / elapsed.Seconds(),
		MBPerSec:   float64(size) * float64(cfg.Iters) / elapsed.Seconds() / (1 << 20),
		AllocsPer:  float64(m1.Mallocs-m0.Mallocs) / float64(cfg.Iters),
		Goroutines: goroutines,
	}, nil
}

// collectiveIter builds one member's per-iteration body for the op.
func collectiveIter(op string, members, size int) (func(*group.Group) error, error) {
	keepA := func(a, b []byte) []byte { return a }
	switch op {
	case "broadcast":
		payload := make([]byte, size)
		return func(g *group.Group) error {
			var msg []byte
			if g.Rank() == 0 {
				msg = payload
			}
			_, err := g.Broadcast(0, msg)
			return err
		}, nil
	case "allreduce":
		return func(g *group.Group) error {
			_, err := g.AllReduce(make([]byte, size), keepA)
			return err
		}, nil
	case "alltoall":
		part := size / members
		if part < 1 {
			part = 1
		}
		return func(g *group.Group) error {
			parts := make([][]byte, g.Size())
			for i := range parts {
				parts[i] = make([]byte, part)
			}
			_, err := g.AllToAll(parts)
			return err
		}, nil
	default:
		return nil, fmt.Errorf("unknown collective op %q", op)
	}
}

// Render lays the sweep out as a comparison table.
func (r *CollectiveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Collectives: %d members, %d iters per point, GOMAXPROCS=%d\n",
		r.Members, r.Iters, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-9s %-10s %-13s %8s %12s %10s %11s\n",
		"runtime", "op", "algorithm", "size", "µs/op", "MB/s", "allocs/op")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-9s %-10s %-13s %8s %12.1f %10.1f %11.1f\n",
			p.Runtime, p.Op, p.Alg, sizeLabel(p.Size), p.MicrosPer, p.MBPerSec, p.AllocsPer)
	}
	v, _ := r.verdict()
	b.WriteString(v)
	return b.String()
}

// verdict summarises the headline comparison — pipelined spanning-tree
// broadcast against repetitive at the large (≥64KB) payload sizes — in
// deterministic (runtime, size) order, and reports whether the tree
// lost anywhere: the regression signal Regressed exposes.
func (r *CollectiveResult) verdict() (string, bool) {
	type key struct {
		rt   string
		size int
	}
	rep := make(map[key]float64)
	tree := make(map[key]float64)
	for _, p := range r.Points {
		if p.Op != "broadcast" || p.Size < 64*1024 {
			continue
		}
		k := key{p.Runtime, p.Size}
		switch p.Alg {
		case mcast.Repetitive.String():
			rep[k] = p.MicrosPer
		case mcast.SpanningTree.String():
			tree[k] = p.MicrosPer
		}
	}
	keys := make([]key, 0, len(rep))
	for k := range rep {
		if _, ok := tree[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rt != keys[j].rt {
			return keys[i].rt < keys[j].rt
		}
		return keys[i].size < keys[j].size
	})
	var b strings.Builder
	lost := false
	for _, k := range keys {
		rv, tv := rep[k], tree[k]
		rel := "beats"
		if tv >= rv {
			rel = "LOSES TO"
			lost = true
		}
		fmt.Fprintf(&b, "broadcast %s @%s: pipelined spanning-tree %s repetitive (%.0f µs vs %.0f µs, %.2fx)\n",
			k.rt, sizeLabel(k.size), rel, tv, rv, rv/tv)
	}
	return b.String(), lost
}

// Regressed reports whether the sweep's headline acceptance failed:
// the pipelined spanning-tree broadcast lost to repetitive at any
// measured ≥64KB payload. False when the sweep had no such comparison
// (small-size or single-algorithm runs).
func (r *CollectiveResult) Regressed() bool {
	_, lost := r.verdict()
	return lost
}

// WriteJSON writes the machine-readable result for CI archival.
func (r *CollectiveResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
