// Package p4 is a from-scratch Go port of the wire behaviour of the p4
// parallel programming system (Butler & Lusk, Argonne), one of the three
// comparators in the paper's §4.3 benchmark. It reproduces the protocol
// features that shape p4's performance curve:
//
//   - a single stream connection per process pair carrying typed
//     messages in-band (no separate control path — the contrast with
//     NCS's split planes);
//   - typed messages matched by message type at the receiver, with an
//     unexpected-message queue (p4's monitor queue);
//   - XDR conversion only between heterogeneous hosts (p4 negotiates
//     representations at connect time);
//   - one staging copy on each side: the sender coalesces header and
//     payload into a single buffer, the receiver copies out of the
//     stream buffer into the queue.
//
// Only the messaging layer is reproduced — p4's process-group startup
// (remote shells, procgroup files) is out of scope for a single-process
// benchmark harness.
package p4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ncs/internal/transport"
	"ncs/internal/xdr"
)

// AnyType matches any message type in Recv.
const AnyType = -1

// ErrClosed is returned on operations against a closed endpoint.
var ErrClosed = errors.New("p4: endpoint closed")

const headerSize = 16

// Endpoint is one side of a p4 process pair.
type Endpoint struct {
	id      int
	peerID  int
	conn    transport.Conn
	convert bool // XDR-encode payloads (heterogeneous pair)

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message // unexpected / waiting messages
	readErr error
	done    chan struct{}
}

type message struct {
	typ     int
	from    int
	payload []byte
}

// Config describes one endpoint of a p4 pair.
type Config struct {
	// ID and PeerID are p4 process identifiers.
	ID, PeerID int
	// Heterogeneous enables XDR conversion, as p4 does when the peers'
	// data representations differ.
	Heterogeneous bool
}

// New wraps a connected transport.Conn as a p4 endpoint and starts its
// receive loop.
func New(conn transport.Conn, cfg Config) *Endpoint {
	e := &Endpoint{
		id:      cfg.ID,
		peerID:  cfg.PeerID,
		conn:    conn,
		convert: cfg.Heterogeneous,
		done:    make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	go e.recvLoop()
	return e
}

// Send transmits a typed message to the peer (p4_send).
func (e *Endpoint) Send(typ int, payload []byte) error {
	body := payload
	if e.convert {
		enc := xdr.NewEncoder(len(payload) + 8)
		enc.PutOpaque(payload)
		body = enc.Bytes()
	}
	// p4 stages the message into one contiguous buffer before writing.
	buf := make([]byte, headerSize+len(body))
	binary.BigEndian.PutUint32(buf[0:], uint32(typ))
	binary.BigEndian.PutUint32(buf[4:], uint32(e.id))
	binary.BigEndian.PutUint32(buf[8:], uint32(e.peerID))
	binary.BigEndian.PutUint32(buf[12:], uint32(len(body)))
	copy(buf[headerSize:], body)
	if err := e.conn.Send(buf); err != nil {
		return ErrClosed
	}
	return nil
}

// Recv blocks for the next message whose type matches typ (AnyType
// matches all), returning the payload and the actual type.
func (e *Endpoint) Recv(typ int) ([]byte, int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for i, m := range e.queue {
			if typ == AnyType || m.typ == typ {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				return m.payload, m.typ, nil
			}
		}
		if e.readErr != nil {
			return nil, 0, e.readErr
		}
		e.cond.Wait()
	}
}

func (e *Endpoint) recvLoop() {
	for {
		raw, err := e.conn.Recv()
		if err != nil {
			e.mu.Lock()
			e.readErr = ErrClosed
			e.cond.Broadcast()
			e.mu.Unlock()
			return
		}
		if len(raw) < headerSize {
			continue
		}
		typ := int(int32(binary.BigEndian.Uint32(raw[0:])))
		from := int(binary.BigEndian.Uint32(raw[4:]))
		n := binary.BigEndian.Uint32(raw[12:])
		body := raw[headerSize:]
		if int(n) <= len(body) {
			body = body[:n]
		}
		var payload []byte
		if e.convert {
			dec := xdr.NewDecoder(body)
			p, err := dec.Opaque()
			if err != nil {
				continue
			}
			payload = make([]byte, len(p))
			copy(payload, p)
		} else {
			payload = make([]byte, len(body))
			copy(payload, body)
		}
		e.mu.Lock()
		e.queue = append(e.queue, message{typ: typ, from: from, payload: payload})
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// Close shuts the endpoint down.
func (e *Endpoint) Close() error {
	select {
	case <-e.done:
		return nil
	default:
		close(e.done)
	}
	return e.conn.Close()
}

// Pair returns two connected p4 endpoints over the given transport
// pair; heterogeneous enables representation conversion.
func Pair(a, b transport.Conn, heterogeneous bool) (*Endpoint, *Endpoint) {
	ea := New(a, Config{ID: 0, PeerID: 1, Heterogeneous: heterogeneous})
	eb := New(b, Config{ID: 1, PeerID: 0, Heterogeneous: heterogeneous})
	return ea, eb
}

// String describes the endpoint for diagnostics.
func (e *Endpoint) String() string {
	return fmt.Sprintf("p4(id=%d, peer=%d, xdr=%v)", e.id, e.peerID, e.convert)
}
