package p4

import (
	"bytes"
	"testing"

	"ncs/internal/transport"
)

func pair(t *testing.T, hetero bool) (*Endpoint, *Endpoint) {
	t.Helper()
	a, b := transport.HPIPair()
	ea, eb := Pair(a, b, hetero)
	t.Cleanup(func() { ea.Close(); eb.Close() })
	return ea, eb
}

func TestSendRecv(t *testing.T) {
	for _, hetero := range []bool{false, true} {
		name := "homogeneous"
		if hetero {
			name = "heterogeneous"
		}
		t.Run(name, func(t *testing.T) {
			a, b := pair(t, hetero)
			msg := bytes.Repeat([]byte("p4!"), 5000)
			if err := a.Send(7, msg); err != nil {
				t.Fatal(err)
			}
			got, typ, err := b.Recv(7)
			if err != nil {
				t.Fatal(err)
			}
			if typ != 7 || !bytes.Equal(got, msg) {
				t.Fatalf("typ=%d len=%d", typ, len(got))
			}
		})
	}
}

func TestTypeMatching(t *testing.T) {
	a, b := pair(t, false)
	if err := a.Send(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	// Receive type 2 first: type 1 must stay queued.
	got, _, err := b.Recv(2)
	if err != nil || string(got) != "second" {
		t.Fatalf("Recv(2) = %q, %v", got, err)
	}
	got, typ, err := b.Recv(AnyType)
	if err != nil || string(got) != "first" || typ != 1 {
		t.Fatalf("Recv(any) = %q (type %d), %v", got, typ, err)
	}
}

func TestEcho(t *testing.T) {
	a, b := pair(t, false)
	go func() {
		m, typ, err := b.Recv(AnyType)
		if err != nil {
			return
		}
		_ = b.Send(typ, m)
	}()
	msg := bytes.Repeat([]byte{0xaa}, 64*1024)
	if err := a.Send(3, msg); err != nil {
		t.Fatal(err)
	}
	got, _, err := a.Recv(3)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo failed: %v", err)
	}
}

func TestRecvAfterClose(t *testing.T) {
	a, b := pair(t, false)
	a.Close()
	b.Close()
	if _, _, err := b.Recv(AnyType); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Send(1, []byte("x")); err != ErrClosed {
		t.Fatalf("send err = %v, want ErrClosed", err)
	}
}

func TestString(t *testing.T) {
	a, _ := pair(t, true)
	if s := a.String(); s == "" {
		t.Fatal("empty String()")
	}
}
