// Package mpi is a from-scratch Go port of the point-to-point messaging
// behaviour of a mid-1990s MPI implementation (MPICH over TCP), the
// third comparator of the paper's §4.3 benchmark. It reproduces the
// protocol features that shape MPI's performance curve:
//
//   - the eager/rendezvous switch: messages up to EagerThreshold are
//     pushed immediately and buffered at the receiver if unexpected;
//     larger messages first exchange a request-to-send /
//     clear-to-send handshake, adding a full round trip — the cost
//     that makes MPI "perform very badly as the message size gets
//     bigger" on the high-latency heterogeneous path (Figure 13);
//   - matching by (source, tag) with posted-receive and
//     unexpected-message queues;
//   - data conversion on heterogeneous pairs (XDR, as MPICH's ch_p4
//     device did between different architectures).
package mpi

import (
	"encoding/binary"
	"errors"
	"sync"

	"ncs/internal/transport"
	"ncs/internal/xdr"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// DefaultEagerThreshold matches MPICH's historical TCP default region
// boundary (16 KB is representative of the era's builds).
const DefaultEagerThreshold = 16 * 1024

// ErrClosed is returned on operations against a closed rank.
var ErrClosed = errors.New("mpi: communicator closed")

const (
	pktEager uint8 = iota + 1
	pktRTS
	pktCTS
	pktData
)

const pktHeaderSize = 20

// Rank is one MPI process endpoint of a two-rank communicator.
type Rank struct {
	rank     int
	peer     int
	conn     transport.Conn
	eagerMax int
	convert  bool

	mu         sync.Mutex
	cond       *sync.Cond
	unexpected []envelope
	pendingRTS []envelope // rendezvous announcements awaiting a recv
	readErr    error

	ctsMu   sync.Mutex
	ctsCond *sync.Cond
	cts     map[uint32]bool // sender side: CTS received for sendID

	nextSend uint32
	done     chan struct{}
}

type envelope struct {
	src, tag int
	sendID   uint32
	payload  []byte // eager payload or rendezvous data
	isRTS    bool
	size     int
}

// Config describes one rank.
type Config struct {
	// Rank and Peer are the two ranks of the communicator.
	Rank, Peer int
	// EagerThreshold overrides DefaultEagerThreshold when positive.
	EagerThreshold int
	// Heterogeneous enables data conversion.
	Heterogeneous bool
}

// New wraps a connected transport.Conn as an MPI rank.
func New(conn transport.Conn, cfg Config) *Rank {
	if cfg.EagerThreshold <= 0 {
		cfg.EagerThreshold = DefaultEagerThreshold
	}
	r := &Rank{
		rank:     cfg.Rank,
		peer:     cfg.Peer,
		conn:     conn,
		eagerMax: cfg.EagerThreshold,
		convert:  cfg.Heterogeneous,
		cts:      make(map[uint32]bool),
		done:     make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	r.ctsCond = sync.NewCond(&r.ctsMu)
	go r.recvLoop()
	return r
}

// Send transmits payload with tag to the peer (MPI_Send). Messages over
// the eager threshold block in the rendezvous handshake until the
// receiver posts a matching receive.
func (r *Rank) Send(tag int, payload []byte) error {
	body := payload
	if r.convert {
		enc := xdr.NewEncoder(len(payload) + 8)
		enc.PutOpaque(payload)
		body = enc.Bytes()
	}
	r.mu.Lock()
	id := r.nextSend
	r.nextSend++
	r.mu.Unlock()

	if len(body) <= r.eagerMax {
		return r.writePkt(pktEager, tag, id, body)
	}
	// Rendezvous: RTS carries the envelope; wait for CTS; then DATA.
	if err := r.writePkt(pktRTS, tag, id, nil); err != nil {
		return err
	}
	r.ctsMu.Lock()
	for !r.cts[id] {
		if r.isClosed() {
			r.ctsMu.Unlock()
			return ErrClosed
		}
		r.ctsCond.Wait()
	}
	delete(r.cts, id)
	r.ctsMu.Unlock()
	return r.writePkt(pktData, tag, id, body)
}

// Recv blocks for a message matching (src, tag) and returns the payload
// and actual tag (MPI_Recv). Posting the receive releases any pending
// rendezvous sender.
func (r *Rank) Recv(src, tag int) ([]byte, int, error) {
	for {
		r.mu.Lock()
		// 1. Unexpected eager/data messages.
		for i, m := range r.unexpected {
			if matches(m, src, tag) {
				r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
				r.mu.Unlock()
				p, err := r.decode(m.payload)
				return p, m.tag, err
			}
		}
		// 2. Pending rendezvous announcements: grant CTS and wait for
		// the data packet.
		for i, m := range r.pendingRTS {
			if matches(m, src, tag) {
				r.pendingRTS = append(r.pendingRTS[:i], r.pendingRTS[i+1:]...)
				id := m.sendID
				r.mu.Unlock()
				if err := r.writePkt(pktCTS, m.tag, id, nil); err != nil {
					return nil, 0, err
				}
				return r.awaitData(id)
			}
		}
		if r.readErr != nil {
			err := r.readErr
			r.mu.Unlock()
			return nil, 0, err
		}
		r.cond.Wait()
		r.mu.Unlock()
	}
}

// awaitData waits for the rendezvous data packet with the given id.
func (r *Rank) awaitData(id uint32) ([]byte, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		for i, m := range r.unexpected {
			if !m.isRTS && m.sendID == id {
				r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
				tag := m.tag
				payload := m.payload
				r.mu.Unlock()
				p, err := r.decode(payload)
				r.mu.Lock()
				return p, tag, err
			}
		}
		if r.readErr != nil {
			return nil, 0, r.readErr
		}
		r.cond.Wait()
	}
}

func matches(m envelope, src, tag int) bool {
	return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
}

func (r *Rank) decode(body []byte) ([]byte, error) {
	if !r.convert {
		return body, nil
	}
	dec := xdr.NewDecoder(body)
	p, err := dec.Opaque()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out, nil
}

func (r *Rank) writePkt(kind uint8, tag int, id uint32, body []byte) error {
	buf := make([]byte, pktHeaderSize+len(body))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[4:], uint32(r.rank))
	binary.BigEndian.PutUint32(buf[8:], uint32(int32(tag)))
	binary.BigEndian.PutUint32(buf[12:], id)
	binary.BigEndian.PutUint32(buf[16:], uint32(len(body)))
	copy(buf[pktHeaderSize:], body)
	if err := r.conn.Send(buf); err != nil {
		return ErrClosed
	}
	return nil
}

func (r *Rank) recvLoop() {
	for {
		raw, err := r.conn.Recv()
		if err != nil {
			r.mu.Lock()
			r.readErr = ErrClosed
			r.cond.Broadcast()
			r.mu.Unlock()
			r.ctsMu.Lock()
			r.ctsCond.Broadcast()
			r.ctsMu.Unlock()
			return
		}
		if len(raw) < pktHeaderSize {
			continue
		}
		kind := raw[0]
		src := int(binary.BigEndian.Uint32(raw[4:]))
		tag := int(int32(binary.BigEndian.Uint32(raw[8:])))
		id := binary.BigEndian.Uint32(raw[12:])
		n := binary.BigEndian.Uint32(raw[16:])
		body := raw[pktHeaderSize:]
		if int(n) <= len(body) {
			body = body[:n]
		}
		cp := make([]byte, len(body))
		copy(cp, body)

		switch kind {
		case pktEager, pktData:
			r.mu.Lock()
			r.unexpected = append(r.unexpected, envelope{
				src: src, tag: tag, sendID: id, payload: cp, size: len(cp),
			})
			r.cond.Broadcast()
			r.mu.Unlock()
		case pktRTS:
			r.mu.Lock()
			r.pendingRTS = append(r.pendingRTS, envelope{
				src: src, tag: tag, sendID: id, isRTS: true,
			})
			r.cond.Broadcast()
			r.mu.Unlock()
		case pktCTS:
			r.ctsMu.Lock()
			r.cts[id] = true
			r.ctsCond.Broadcast()
			r.ctsMu.Unlock()
		}
	}
}

func (r *Rank) isClosed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Close shuts the rank down.
func (r *Rank) Close() error {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
	err := r.conn.Close()
	r.ctsMu.Lock()
	r.ctsCond.Broadcast()
	r.ctsMu.Unlock()
	return err
}

// Pair returns two connected MPI ranks over the given transport pair.
func Pair(a, b transport.Conn, heterogeneous bool) (*Rank, *Rank) {
	r0 := New(a, Config{Rank: 0, Peer: 1, Heterogeneous: heterogeneous})
	r1 := New(b, Config{Rank: 1, Peer: 0, Heterogeneous: heterogeneous})
	return r0, r1
}
