package mpi

import (
	"bytes"
	"testing"
	"time"

	"ncs/internal/transport"
)

func pair(t *testing.T, hetero bool, eager int) (*Rank, *Rank) {
	t.Helper()
	a, b := transport.HPIPair()
	r0 := New(a, Config{Rank: 0, Peer: 1, Heterogeneous: hetero, EagerThreshold: eager})
	r1 := New(b, Config{Rank: 1, Peer: 0, Heterogeneous: hetero, EagerThreshold: eager})
	t.Cleanup(func() { r0.Close(); r1.Close() })
	return r0, r1
}

func TestEagerSendRecv(t *testing.T) {
	for _, hetero := range []bool{false, true} {
		name := map[bool]string{false: "homogeneous", true: "heterogeneous"}[hetero]
		t.Run(name, func(t *testing.T) {
			r0, r1 := pair(t, hetero, 0)
			msg := []byte("small eager message")
			if err := r0.Send(5, msg); err != nil {
				t.Fatal(err)
			}
			got, tag, err := r1.Recv(0, 5)
			if err != nil || tag != 5 || !bytes.Equal(got, msg) {
				t.Fatalf("got %q tag=%d err=%v", got, tag, err)
			}
		})
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	r0, r1 := pair(t, false, 1024)

	msg := bytes.Repeat([]byte{0x5a}, 100*1024)
	sent := make(chan error, 1)
	go func() { sent <- r0.Send(8, msg) }()

	// The sender must be stuck in the handshake until we post a recv.
	select {
	case err := <-sent:
		t.Fatalf("rendezvous send completed without matching recv: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	got, _, err := r1.Recv(AnySource, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("rendezvous payload corrupted")
	}
}

func TestRendezvousHeterogeneous(t *testing.T) {
	r0, r1 := pair(t, true, 512)
	msg := bytes.Repeat([]byte("HTRO"), 10000)
	go func() { _ = r0.Send(2, msg) }()
	got, _, err := r1.Recv(0, 2)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("hetero rendezvous failed: %v", err)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	r0, r1 := pair(t, false, 0)
	if err := r0.Send(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := r0.Send(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, _, err := r1.Recv(AnySource, 2)
	if err != nil || string(got) != "two" {
		t.Fatalf("Recv(tag 2) = %q, %v", got, err)
	}
	got, tag, err := r1.Recv(0, AnyTag)
	if err != nil || string(got) != "one" || tag != 1 {
		t.Fatalf("Recv(any) = %q tag %d, %v", got, tag, err)
	}
}

func TestEcho(t *testing.T) {
	r0, r1 := pair(t, false, 4096)
	go func() {
		m, tag, err := r1.Recv(AnySource, AnyTag)
		if err != nil {
			return
		}
		_ = r1.Send(tag, m)
	}()
	msg := bytes.Repeat([]byte{0xbe}, 64*1024) // rendezvous path
	if err := r0.Send(6, msg); err != nil {
		t.Fatal(err)
	}
	got, _, err := r0.Recv(AnySource, 6)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo failed: %v", err)
	}
}

func TestUnexpectedMessagesBuffered(t *testing.T) {
	r0, r1 := pair(t, false, 0)
	for i := 0; i < 5; i++ {
		if err := r0.Send(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Receive in reverse order: all were unexpected.
	for i := 4; i >= 0; i-- {
		got, _, err := r1.Recv(AnySource, i)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("tag %d: %v", i, err)
		}
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	r0, r1 := pair(t, false, 16)

	recvErr := make(chan error, 1)
	go func() {
		_, _, err := r1.Recv(AnySource, AnyTag)
		recvErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	r0.Close()
	r1.Close()
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("recv returned nil after close with no sender")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv stuck after close")
	}
}

func TestCloseUnblocksRendezvousSend(t *testing.T) {
	// Separate pair: the receiver never posts a recv, so the RTS is
	// never answered; Close must unblock the sender.
	r0, r1 := pair(t, false, 16)
	_ = r1
	sendErr := make(chan error, 1)
	go func() {
		sendErr <- r0.Send(1, bytes.Repeat([]byte{1}, 1024))
	}()
	time.Sleep(20 * time.Millisecond)
	r0.Close()
	r1.Close()
	select {
	case err := <-sendErr:
		if err == nil {
			t.Fatal("rendezvous send succeeded with no matching recv")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rendezvous send stuck after close")
	}
}
