// Package pvm is a from-scratch Go port of the messaging behaviour of
// PVM 3 (Parallel Virtual Machine), the second comparator of the
// paper's §4.3 benchmark. It reproduces the protocol features that
// shape PVM's performance curve:
//
//   - PvmDataDefault encoding: every message body is XDR-encoded even
//     between identical machines — PVM's defining per-byte overhead
//     (PvmDataRaw, the opt-out, is also supported);
//   - message fragmentation into fixed fragments (4 KB in pvmd),
//     each carrying its own header;
//   - daemon routing: by default a task's message travels task → local
//     pvmd → remote pvmd → task; the RouteDirect option removes the
//     store-and-forward hop, just as pvm_setopt(PvmRoute,
//     PvmRouteDirect) does;
//   - matching by (source task, tag) with wildcard support.
package pvm

import (
	"encoding/binary"
	"errors"
	"sync"

	"ncs/internal/transport"
	"ncs/internal/xdr"
)

// Wildcards for Recv matching.
const (
	AnyTask = -1
	AnyTag  = -1
)

// Encoding selects the message body representation.
type Encoding int

// PVM data encodings.
const (
	// DataDefault XDR-encodes all data (PvmDataDefault) — safe across
	// heterogeneous hosts and always on by default in PVM.
	DataDefault Encoding = iota + 1
	// DataRaw sends host representation (PvmDataRaw).
	DataRaw
)

// ErrClosed is returned on operations against a closed task.
var ErrClosed = errors.New("pvm: task closed")

// FragmentSize matches pvmd's default message fragment.
const FragmentSize = 4096

const fragHeaderSize = 20

// Task is one PVM task (process) endpoint.
type Task struct {
	tid      int
	peerTid  int
	conn     transport.Conn
	encoding Encoding

	mu      sync.Mutex
	cond    *sync.Cond
	ready   []message            // fully reassembled messages
	partial map[uint32]*assembly // in-flight fragmented messages
	nextMsg uint32
	readErr error
	done    chan struct{}
}

type message struct {
	src     int
	tag     int
	payload []byte
}

type assembly struct {
	src, tag int
	frags    [][]byte
	total    int // fragment count, known from the last fragment
}

// Config describes one task.
type Config struct {
	// TID and PeerTID are PVM task identifiers.
	TID, PeerTID int
	// Encoding selects DataDefault (XDR, the PVM default) or DataRaw.
	Encoding Encoding
}

// New wraps a connected transport.Conn as a PVM task endpoint.
// The conn should be the task's route to its peer: either a direct
// connection (PvmRouteDirect) or one through a Daemon relay.
func New(conn transport.Conn, cfg Config) *Task {
	if cfg.Encoding == 0 {
		cfg.Encoding = DataDefault
	}
	t := &Task{
		tid:      cfg.TID,
		peerTid:  cfg.PeerTID,
		conn:     conn,
		encoding: cfg.Encoding,
		partial:  make(map[uint32]*assembly),
		done:     make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	go t.recvLoop()
	return t
}

// Send packs payload per the task's encoding and transmits it with the
// given tag, fragmenting at FragmentSize (pvm_initsend + pvm_pkbyte +
// pvm_send).
func (t *Task) Send(tag int, payload []byte) error {
	body := payload
	if t.encoding == DataDefault {
		enc := xdr.NewEncoder(len(payload) + 8)
		enc.PutOpaque(payload)
		body = enc.Bytes()
	}
	t.mu.Lock()
	msgID := t.nextMsg
	t.nextMsg++
	t.mu.Unlock()

	nfrags := (len(body) + FragmentSize - 1) / FragmentSize
	if nfrags == 0 {
		nfrags = 1
	}
	frag := make([]byte, 0, fragHeaderSize+FragmentSize)
	for i := 0; i < nfrags; i++ {
		lo := i * FragmentSize
		hi := lo + FragmentSize
		if hi > len(body) {
			hi = len(body)
		}
		frag = frag[:0]
		frag = binary.BigEndian.AppendUint32(frag, uint32(t.tid))
		frag = binary.BigEndian.AppendUint32(frag, uint32(tag))
		frag = binary.BigEndian.AppendUint32(frag, msgID)
		frag = binary.BigEndian.AppendUint32(frag, uint32(i))
		last := uint32(0)
		if i == nfrags-1 {
			last = uint32(nfrags)
		}
		frag = binary.BigEndian.AppendUint32(frag, last)
		frag = append(frag, body[lo:hi]...)
		if err := t.conn.Send(frag); err != nil {
			return ErrClosed
		}
	}
	return nil
}

// Recv blocks for a message matching (src, tag); AnyTask/AnyTag are
// wildcards. It returns the payload, source tid and tag (pvm_recv +
// pvm_upkbyte).
func (t *Task) Recv(src, tag int) ([]byte, int, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		for i, m := range t.ready {
			if (src == AnyTask || m.src == src) && (tag == AnyTag || m.tag == tag) {
				t.ready = append(t.ready[:i], t.ready[i+1:]...)
				return m.payload, m.src, m.tag, nil
			}
		}
		if t.readErr != nil {
			return nil, 0, 0, t.readErr
		}
		t.cond.Wait()
	}
}

func (t *Task) recvLoop() {
	for {
		raw, err := t.conn.Recv()
		if err != nil {
			t.mu.Lock()
			t.readErr = ErrClosed
			t.cond.Broadcast()
			t.mu.Unlock()
			return
		}
		if len(raw) < fragHeaderSize {
			continue
		}
		srcTid := int(binary.BigEndian.Uint32(raw[0:]))
		tag := int(int32(binary.BigEndian.Uint32(raw[4:])))
		msgID := binary.BigEndian.Uint32(raw[8:])
		fragIdx := binary.BigEndian.Uint32(raw[12:])
		lastMark := binary.BigEndian.Uint32(raw[16:])
		body := make([]byte, len(raw)-fragHeaderSize)
		copy(body, raw[fragHeaderSize:])

		t.mu.Lock()
		as, ok := t.partial[msgID]
		if !ok {
			as = &assembly{src: srcTid, tag: tag, total: -1}
			t.partial[msgID] = as
		}
		for int(fragIdx) >= len(as.frags) {
			as.frags = append(as.frags, nil)
		}
		as.frags[fragIdx] = body
		if lastMark > 0 {
			as.total = int(lastMark)
		}
		if as.total > 0 && len(as.frags) >= as.total {
			complete := true
			size := 0
			for i := 0; i < as.total; i++ {
				if as.frags[i] == nil {
					complete = false
					break
				}
				size += len(as.frags[i])
			}
			if complete {
				delete(t.partial, msgID)
				full := make([]byte, 0, size)
				for i := 0; i < as.total; i++ {
					full = append(full, as.frags[i]...)
				}
				payload := full
				if t.encoding == DataDefault {
					dec := xdr.NewDecoder(full)
					if p, err := dec.Opaque(); err == nil {
						payload = make([]byte, len(p))
						copy(payload, p)
					}
				}
				t.ready = append(t.ready, message{src: as.src, tag: as.tag, payload: payload})
				t.cond.Broadcast()
			}
		}
		t.mu.Unlock()
	}
}

// Close shuts the task down.
func (t *Task) Close() error {
	select {
	case <-t.done:
		return nil
	default:
		close(t.done)
	}
	return t.conn.Close()
}
