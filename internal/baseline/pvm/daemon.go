package pvm

import (
	"ncs/internal/transport"
)

// Daemon models pvmd store-and-forward routing: PVM's default message
// path is task → local pvmd → remote pvmd → task. The relay copies
// every fragment an extra time and serialises it through one goroutine
// per direction — the structural costs that pvm_setopt(PvmRoute,
// PvmRouteDirect) removes.
type Daemon struct {
	stop chan struct{}
	done chan struct{}
}

// Relay starts forwarding between two transport connections (each the
// daemon-facing end of a task link). Close the returned Daemon to stop.
func Relay(a, b transport.Conn) *Daemon {
	d := &Daemon{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		var inner [2]chan struct{}
		inner[0] = d.pump(a, b)
		inner[1] = d.pump(b, a)
		<-inner[0]
		<-inner[1]
	}()
	return d
}

// pump forwards packets from src to dst until either side fails.
func (d *Daemon) pump(src, dst transport.Conn) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			p, err := src.Recv()
			if err != nil {
				return
			}
			// The store-and-forward copy: pvmd buffers the fragment
			// before writing it onward.
			cp := make([]byte, len(p))
			copy(cp, p)
			if err := dst.Send(cp); err != nil {
				return
			}
		}
	}()
	return done
}

// Close stops the relay (closing the daemon-side connections unblocks
// the pumps).
func (d *Daemon) Close() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
}

// PairConfig configures NewPair.
type PairConfig struct {
	// Encoding applies to both tasks (DataDefault if zero).
	Encoding Encoding
	// RouteDirect bypasses the daemon relay (PvmRouteDirect).
	RouteDirect bool
	// MakeLink mints one connected transport pair; it is called once
	// per hop. Defaults to transport.HPIPair.
	MakeLink func() (transport.Conn, transport.Conn)
}

// NewPair builds two connected PVM tasks. With RouteDirect false the
// message path crosses a daemon relay, adding the default pvmd hop.
// The returned cleanup closes everything.
func NewPair(cfg PairConfig) (*Task, *Task, func()) {
	makeLink := cfg.MakeLink
	if makeLink == nil {
		makeLink = transport.HPIPair
	}
	if cfg.RouteDirect {
		a, b := makeLink()
		t1 := New(a, Config{TID: 1, PeerTID: 2, Encoding: cfg.Encoding})
		t2 := New(b, Config{TID: 2, PeerTID: 1, Encoding: cfg.Encoding})
		return t1, t2, func() { t1.Close(); t2.Close() }
	}
	// Task1 ── link1 ── [daemon relay] ── link2 ── Task2.
	t1End, d1End := makeLink()
	d2End, t2End := makeLink()
	relay := Relay(d1End, d2End)
	t1 := New(t1End, Config{TID: 1, PeerTID: 2, Encoding: cfg.Encoding})
	t2 := New(t2End, Config{TID: 2, PeerTID: 1, Encoding: cfg.Encoding})
	cleanup := func() {
		t1.Close()
		t2.Close()
		d1End.Close()
		d2End.Close()
		relay.Close()
	}
	return t1, t2, cleanup
}
