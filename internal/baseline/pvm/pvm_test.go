package pvm

import (
	"bytes"
	"testing"
)

func TestSendRecvDaemonRouted(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{})
	defer cleanup()

	msg := bytes.Repeat([]byte("pvm"), 4000) // 12 KB: multiple fragments
	if err := t1.Send(9, msg); err != nil {
		t.Fatal(err)
	}
	got, src, tag, err := t2.Recv(AnyTask, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if src != 1 || tag != 9 || !bytes.Equal(got, msg) {
		t.Fatalf("src=%d tag=%d len=%d", src, tag, len(got))
	}
}

func TestSendRecvDirectRoute(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{RouteDirect: true})
	defer cleanup()

	msg := []byte("direct route")
	if err := t1.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := t2.Recv(1, 1)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestRawEncodingSkipsXDR(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{Encoding: DataRaw, RouteDirect: true})
	defer cleanup()

	msg := bytes.Repeat([]byte{0xfe}, 100)
	if err := t1.Send(2, msg); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := t2.Recv(AnyTask, 2)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatal("raw round trip failed")
	}
}

func TestTagMatching(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{RouteDirect: true})
	defer cleanup()

	if err := t1.Send(10, []byte("ten")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Send(20, []byte("twenty")); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := t2.Recv(AnyTask, 20)
	if err != nil || string(got) != "twenty" {
		t.Fatalf("Recv(20) = %q, %v", got, err)
	}
	got, _, tag, err := t2.Recv(AnyTask, AnyTag)
	if err != nil || string(got) != "ten" || tag != 10 {
		t.Fatalf("Recv(any) = %q tag=%d, %v", got, tag, err)
	}
}

func TestLargeMessageFragmentation(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{})
	defer cleanup()

	msg := make([]byte, 64*1024)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	if err := t1.Send(5, msg); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := t2.Recv(AnyTask, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("fragmented message corrupted")
	}
}

func TestEmptyMessage(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{})
	defer cleanup()
	if err := t1.Send(1, nil); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := t2.Recv(AnyTask, AnyTag)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d bytes, %v", len(got), err)
	}
}

func TestEchoThroughDaemon(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{})
	defer cleanup()
	go func() {
		m, _, tag, err := t2.Recv(AnyTask, AnyTag)
		if err != nil {
			return
		}
		_ = t2.Send(tag, m)
	}()
	msg := bytes.Repeat([]byte{1, 2, 3}, 3000)
	if err := t1.Send(4, msg); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := t1.Recv(AnyTask, 4)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo failed: %v", err)
	}
}

func TestCloseUnblocks(t *testing.T) {
	t1, t2, cleanup := NewPair(PairConfig{RouteDirect: true})
	defer cleanup()
	t1.Close()
	t2.Close()
	if _, _, _, err := t2.Recv(AnyTask, AnyTag); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
