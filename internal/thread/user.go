package thread

import (
	"sync"
)

// userPackage is a cooperative, run-to-block scheduler. At most one
// managed thread executes at any instant; the dispatcher hands the
// processor to the head of the ready queue and waits for the thread to
// pause (yield, block on a primitive, or exit). Context switches are a
// pair of channel handoffs — far cheaper than a kernel crossing, which
// is the user-level advantage measured in Figure 10's small-message
// region.
type userPackage struct {
	mu      sync.Mutex
	ready   []*uthread
	readyCh chan struct{} // signals the dispatcher that ready is non-empty
	closed  bool
	live    int // spawned threads that have not exited

	current *uthread // thread currently holding the processor

	done chan struct{}
}

var _ Package = (*userPackage)(nil)

type uthread struct {
	t      *Thread
	resume chan struct{} // dispatcher → thread: run
	paused chan struct{} // thread → dispatcher: gave up the processor
	exited bool
}

// NewUser returns a user-level (QuickThreads-style) cooperative package.
// The dispatcher runs until Shutdown.
func NewUser() Package {
	u := &userPackage{
		readyCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go u.dispatch()
	return u
}

func (u *userPackage) Model() Model { return UserLevel }

func (u *userPackage) Spawn(name string, fn func()) (*Thread, error) {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil, ErrSchedulerClosed
	}
	u.live++
	u.mu.Unlock()

	ut := &uthread{
		t:      &Thread{name: name, done: make(chan struct{})},
		resume: make(chan struct{}),
		paused: make(chan struct{}),
	}
	go func() {
		<-ut.resume // wait to be scheduled the first time
		fn()
		close(ut.t.done)
		u.mu.Lock()
		u.live--
		u.mu.Unlock()
		ut.exited = true
		ut.paused <- struct{}{}
	}()
	u.enqueue(ut)
	return ut.t, nil
}

// Yield moves the calling thread to the back of the ready queue and
// hands the processor to the dispatcher.
func (u *userPackage) Yield() {
	ut := u.current
	if ut == nil {
		// Called from outside a managed thread; nothing to do.
		return
	}
	u.enqueue(ut)
	ut.paused <- struct{}{}
	<-ut.resume
}

// park blocks the calling thread without re-queuing it; some other
// component will re-enqueue it (mutex unlock, semaphore release).
func (u *userPackage) park() *uthread {
	ut := u.current
	ut.paused <- struct{}{}
	<-ut.resume
	return ut
}

func (u *userPackage) enqueue(ut *uthread) {
	u.mu.Lock()
	u.ready = append(u.ready, ut)
	u.mu.Unlock()
	select {
	case u.readyCh <- struct{}{}:
	default:
	}
}

func (u *userPackage) dispatch() {
	defer close(u.done)
	for {
		u.mu.Lock()
		var next *uthread
		if len(u.ready) > 0 {
			next = u.ready[0]
			u.ready = u.ready[1:]
		}
		closed := u.closed
		live := u.live
		u.mu.Unlock()

		if next == nil {
			if closed && live == 0 {
				return
			}
			<-u.readyCh
			continue
		}

		u.current = next
		next.resume <- struct{}{} // run it
		<-next.paused             // until it pauses
		u.current = nil
	}
}

func (u *userPackage) NewMutex() Mutex { return &userMutex{u: u} }

func (u *userPackage) NewSemaphore(initial int) Semaphore {
	return &userSemaphore{u: u, count: initial}
}

// Shutdown waits for all threads to finish, then stops the dispatcher.
// Threads that are parked forever (e.g. on a semaphore nobody releases)
// make Shutdown hang; release them first.
func (u *userPackage) Shutdown() {
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	select {
	case u.readyCh <- struct{}{}:
	default:
	}
	<-u.done
}

// userMutex blocks by parking the calling thread; no kernel involvement.
// Because only one thread runs at a time, the state fields need no
// additional lock beyond brief critical sections against Spawn.
type userMutex struct {
	u       *userPackage
	mu      sync.Mutex // protects held/waiters against external callers
	held    bool
	waiters []*uthread
}

func (m *userMutex) Lock() {
	m.mu.Lock()
	if !m.held {
		m.held = true
		m.mu.Unlock()
		return
	}
	ut := m.u.current
	if ut == nil {
		// External (non-managed) caller: spin-wait via the package's
		// cooperative semantics by polling. Rare; supported for tests.
		for {
			m.mu.Unlock()
			m.u.Yield()
			m.mu.Lock()
			if !m.held {
				m.held = true
				m.mu.Unlock()
				return
			}
		}
	}
	m.waiters = append(m.waiters, ut)
	m.mu.Unlock()
	m.u.park()
}

func (m *userMutex) Unlock() {
	m.mu.Lock()
	if len(m.waiters) == 0 {
		m.held = false
		m.mu.Unlock()
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	// Ownership passes directly to the woken thread.
	m.mu.Unlock()
	m.u.enqueue(next)
}

// userSemaphore parks waiters in user space.
type userSemaphore struct {
	u       *userPackage
	mu      sync.Mutex
	count   int
	waiters []*uthread
}

func (s *userSemaphore) Acquire() {
	s.mu.Lock()
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return
	}
	ut := s.u.current
	if ut == nil {
		for {
			s.mu.Unlock()
			s.u.Yield()
			s.mu.Lock()
			if s.count > 0 {
				s.count--
				s.mu.Unlock()
				return
			}
		}
	}
	s.waiters = append(s.waiters, ut)
	s.mu.Unlock()
	s.u.park()
}

func (s *userSemaphore) Release() {
	s.mu.Lock()
	if len(s.waiters) == 0 {
		s.count++
		s.mu.Unlock()
		return
	}
	next := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.mu.Unlock()
	s.u.enqueue(next)
}

// New returns the package for the requested model.
func New(m Model) Package {
	if m == UserLevel {
		return NewUser()
	}
	return NewKernel()
}
