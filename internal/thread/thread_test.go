package thread

import (
	"sync/atomic"
	"testing"
	"time"
)

func bothModels(t *testing.T, fn func(t *testing.T, p Package)) {
	t.Helper()
	for _, m := range []Model{KernelLevel, UserLevel} {
		t.Run(m.String(), func(t *testing.T) {
			p := New(m)
			defer p.Shutdown()
			fn(t, p)
		})
	}
}

func TestSpawnAndJoin(t *testing.T) {
	bothModels(t, func(t *testing.T, p Package) {
		var ran atomic.Bool
		th, err := p.Spawn("worker", func() { ran.Store(true) })
		if err != nil {
			t.Fatal(err)
		}
		th.Join()
		if !ran.Load() {
			t.Fatal("thread did not run")
		}
		if th.Name() != "worker" {
			t.Fatalf("Name = %q", th.Name())
		}
	})
}

func TestManyThreadsAllRun(t *testing.T) {
	bothModels(t, func(t *testing.T, p Package) {
		const n = 50
		var count atomic.Int32
		threads := make([]*Thread, n)
		for i := 0; i < n; i++ {
			th, err := p.Spawn("t", func() {
				count.Add(1)
				p.Yield()
				count.Add(1)
			})
			if err != nil {
				t.Fatal(err)
			}
			threads[i] = th
		}
		for _, th := range threads {
			th.Join()
		}
		if got := count.Load(); got != 2*n {
			t.Fatalf("count = %d, want %d", got, 2*n)
		}
	})
}

func TestMutexMutualExclusion(t *testing.T) {
	bothModels(t, func(t *testing.T, p Package) {
		mu := p.NewMutex()
		shared := 0
		const n, iters = 8, 100
		threads := make([]*Thread, n)
		for i := 0; i < n; i++ {
			th, err := p.Spawn("locker", func() {
				for j := 0; j < iters; j++ {
					mu.Lock()
					v := shared
					if j%3 == 0 {
						p.Yield() // widen the race window under the lock
					}
					shared = v + 1
					mu.Unlock()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			threads[i] = th
		}
		for _, th := range threads {
			th.Join()
		}
		if shared != n*iters {
			t.Fatalf("shared = %d, want %d", shared, n*iters)
		}
	})
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	bothModels(t, func(t *testing.T, p Package) {
		items := p.NewSemaphore(0)
		var produced, consumed atomic.Int32
		cons, err := p.Spawn("consumer", func() {
			for i := 0; i < 20; i++ {
				items.Acquire()
				consumed.Add(1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		prod, err := p.Spawn("producer", func() {
			for i := 0; i < 20; i++ {
				produced.Add(1)
				items.Release()
				if i%5 == 0 {
					p.Yield()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		prod.Join()
		cons.Join()
		if consumed.Load() != 20 {
			t.Fatalf("consumed = %d", consumed.Load())
		}
	})
}

// TestUserLevelSerialExecution verifies that the user-level package runs
// at most one thread at a time: unsynchronised increments cannot race.
func TestUserLevelSerialExecution(t *testing.T) {
	p := NewUser()
	defer p.Shutdown()

	var inCritical atomic.Int32
	var maxSeen atomic.Int32
	threads := make([]*Thread, 10)
	for i := range threads {
		th, err := p.Spawn("serial", func() {
			for j := 0; j < 50; j++ {
				cur := inCritical.Add(1)
				if cur > maxSeen.Load() {
					maxSeen.Store(cur)
				}
				inCritical.Add(-1)
				if j%10 == 0 {
					p.Yield()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		threads[i] = th
	}
	for _, th := range threads {
		th.Join()
	}
	if maxSeen.Load() != 1 {
		t.Fatalf("max concurrent user threads = %d, want 1", maxSeen.Load())
	}
}

// TestUserLevelBlockingCallStallsProcess reproduces the §4.1 semantics:
// a user-level thread that blocks in an ordinary call (not a scheduler
// primitive) stalls every other thread in the package.
func TestUserLevelBlockingCallStallsProcess(t *testing.T) {
	p := NewUser()
	defer p.Shutdown()

	unblock := make(chan struct{})
	var bRan atomic.Bool

	a, err := p.Spawn("blocker", func() {
		<-unblock // models a blocking system call
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Spawn("starved", func() { bRan.Store(true) })
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(20 * time.Millisecond)
	if bRan.Load() {
		t.Fatal("thread B ran while A was blocked in a system call; " +
			"user-level package should stall the whole process")
	}
	close(unblock)
	a.Join()
	b.Join()
	if !bRan.Load() {
		t.Fatal("thread B never ran after A unblocked")
	}
}

// TestKernelLevelBlockingCallOverlaps verifies the complementary
// behaviour: under the kernel-level package a blocked thread suspends
// alone and others keep running — the overlap behind Figure 10's
// large-message regime.
func TestKernelLevelBlockingCallOverlaps(t *testing.T) {
	p := NewKernel()
	defer p.Shutdown()

	unblock := make(chan struct{})
	bDone := make(chan struct{})

	_, err := p.Spawn("blocker", func() { <-unblock })
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Spawn("runner", func() { close(bDone) })
	if err != nil {
		t.Fatal(err)
	}

	select {
	case <-bDone:
	case <-time.After(2 * time.Second):
		t.Fatal("runner never ran while blocker was blocked")
	}
	close(unblock)
}

func TestYieldOutsideManagedThread(t *testing.T) {
	p := NewUser()
	defer p.Shutdown()
	p.Yield() // must not panic or deadlock
}

func TestSpawnAfterShutdown(t *testing.T) {
	bothModels(t, func(t *testing.T, p Package) {
		// bothModels defers Shutdown; shut down early here.
		p.Shutdown()
		if _, err := p.Spawn("late", func() {}); err != ErrSchedulerClosed {
			t.Fatalf("err = %v, want ErrSchedulerClosed", err)
		}
	})
}

func TestModelString(t *testing.T) {
	if KernelLevel.String() != "kernel-level" || UserLevel.String() != "user-level" {
		t.Fatal("Model.String misbehaving")
	}
}

func TestUserSpawnFromManagedThread(t *testing.T) {
	p := NewUser()
	defer p.Shutdown()

	var childRan atomic.Bool
	parent, err := p.Spawn("parent", func() {
		_, err := p.Spawn("child", func() { childRan.Store(true) })
		if err != nil {
			t.Errorf("child spawn: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	parent.Join()
	// Let the dispatcher schedule the child.
	deadline := time.Now().Add(2 * time.Second)
	for !childRan.Load() {
		if time.Now().After(deadline) {
			t.Fatal("child never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

// Context-switch cost comparison is the heart of §4.1's small-message
// claim: user-level switches must be no slower than kernel-level ones.
// We only assert both complete, and report the timings.
func BenchmarkContextSwitchUserLevel(b *testing.B) {
	p := NewUser()
	defer p.Shutdown()
	benchSwitch(b, p)
}

func BenchmarkContextSwitchKernelLevel(b *testing.B) {
	p := NewKernel()
	defer p.Shutdown()
	benchSwitch(b, p)
}

func benchSwitch(b *testing.B, p Package) {
	done := make(chan struct{})
	th, err := p.Spawn("ping", func() {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
		close(done)
	})
	if err != nil {
		b.Fatal(err)
	}
	_, err = p.Spawn("pong", func() {
		for {
			select {
			case <-done:
				return
			default:
				p.Yield()
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	th.Join()
}
