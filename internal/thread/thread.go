// Package thread abstracts the two thread-package architectures the
// paper evaluates in §4.1:
//
//   - a kernel-level package (Pthread over Solaris in the paper): the
//     operating system schedules threads preemptively; a blocking system
//     call suspends only the calling thread, so communication overlaps
//     computation "for free", but thread creation, context switching and
//     synchronisation cross the kernel and are comparatively slow.
//   - a user-level package (QuickThreads in the paper): scheduling,
//     context switching and synchronisation happen entirely in user
//     space and are very fast, but the kernel sees a single thread of
//     control — one blocking system call stalls every thread in the
//     process.
//
// Here the kernel-level package maps threads to goroutines, and the
// user-level package is a cooperative run-to-block scheduler in which at
// most one thread executes at a time and control changes hands only at
// explicit Yield/blocking points. Crucially, a user-level thread that
// blocks in an ordinary call (for example a send on a full simulated
// socket buffer) never reaches a scheduling point, so the entire
// "process" stalls — reproducing the mechanism behind Figure 10.
package thread

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Model identifies a thread package architecture.
type Model int

// The two architectures of §4.1.
const (
	// KernelLevel models a Pthread-style package.
	KernelLevel Model = iota + 1
	// UserLevel models a QuickThreads-style package.
	UserLevel
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case KernelLevel:
		return "kernel-level"
	case UserLevel:
		return "user-level"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ErrSchedulerClosed is returned by Spawn after Shutdown.
var ErrSchedulerClosed = errors.New("thread: scheduler closed")

// Package is the thread API NCS builds on: thread management and
// synchronisation, per §2's "multithreading services".
type Package interface {
	// Model reports the architecture.
	Model() Model
	// Spawn starts a new thread running fn.
	Spawn(name string, fn func()) (*Thread, error)
	// Yield gives up the processor: the NCS_thread_yield() primitive.
	// Called from inside a thread.
	Yield()
	// NewMutex creates a mutual-exclusion lock.
	NewMutex() Mutex
	// NewSemaphore creates a counting semaphore with an initial count.
	NewSemaphore(initial int) Semaphore
	// Shutdown stops the package after all threads finish. It is safe
	// to call once from outside any managed thread.
	Shutdown()
}

// Thread is a handle on a spawned thread.
type Thread struct {
	name string
	done chan struct{}
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Join blocks until the thread has finished. Join must be called from
// outside the user-level scheduler (e.g. the test or benchmark driver);
// threads inside the scheduler should synchronise with semaphores.
func (t *Thread) Join() { <-t.done }

// Mutex is a lock usable from managed threads.
type Mutex interface {
	Lock()
	Unlock()
}

// Semaphore is a counting semaphore usable from managed threads.
type Semaphore interface {
	// Acquire decrements the count, blocking while it is zero.
	Acquire()
	// Release increments the count, waking one waiter.
	Release()
}

// ---------------------------------------------------------------------------
// Kernel-level package: direct goroutines.

type kernelPackage struct {
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

var _ Package = (*kernelPackage)(nil)

// NewKernel returns a kernel-level (Pthread-style) package.
func NewKernel() Package { return &kernelPackage{} }

func (k *kernelPackage) Model() Model { return KernelLevel }

func (k *kernelPackage) Spawn(name string, fn func()) (*Thread, error) {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return nil, ErrSchedulerClosed
	}
	k.wg.Add(1)
	k.mu.Unlock()

	t := &Thread{name: name, done: make(chan struct{})}
	go func() {
		defer k.wg.Done()
		defer close(t.done)
		fn()
	}()
	return t, nil
}

func (k *kernelPackage) Yield() { runtime.Gosched() }

func (k *kernelPackage) NewMutex() Mutex { return &sync.Mutex{} }

func (k *kernelPackage) NewSemaphore(initial int) Semaphore {
	s := &kernelSemaphore{}
	s.cond = sync.NewCond(&s.mu)
	s.count = initial
	return s
}

func (k *kernelPackage) Shutdown() {
	k.mu.Lock()
	k.closed = true
	k.mu.Unlock()
	k.wg.Wait()
}

type kernelSemaphore struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
}

func (s *kernelSemaphore) Acquire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count == 0 {
		s.cond.Wait()
	}
	s.count--
}

func (s *kernelSemaphore) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.cond.Signal()
}
