package netsim

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// runImpaired pushes n sequence-numbered packets through a link whose
// a→b direction uses params, closes the sender, drains the receiver,
// and returns the delivered sequence numbers in arrival order plus the
// sender-side impairment stats.
func runImpaired(t *testing.T, params Params, n int) ([]int, ImpairStats) {
	t.Helper()
	a, b := Pipe(params, Params{})
	defer b.Close()
	for i := 0; i < n; i++ {
		var p [4]byte
		binary.BigEndian.PutUint32(p[:], uint32(i))
		if err := a.Send(p[:]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	stats := make(chan ImpairStats, 1)
	go func() {
		// Close drains the wire; stats are final once it returns.
		a.Close()
		stats <- a.ImpairStats()
	}()
	var got []int
	for {
		p, err := b.Recv()
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if len(p) != 4 {
			t.Fatalf("recv returned %d bytes", len(p))
		}
		got = append(got, int(binary.BigEndian.Uint32(p)))
	}
	return got, <-stats
}

// multiset returns the delivered counts per sequence number.
func multiset(ids []int) map[int]int {
	m := make(map[int]int, len(ids))
	for _, id := range ids {
		m[id]++
	}
	return m
}

// TestDuplicateReplay checks that duplication is applied, duplicates
// carry the same payload, and the whole failure pattern replays
// exactly from the seed.
func TestDuplicateReplay(t *testing.T) {
	params := Params{Seed: 7, Impair: Impairments{DupRate: 0.2}}
	const n = 300
	first, fstats := runImpaired(t, params, n)
	if fstats.Duplicated == 0 {
		t.Fatal("no duplicates with DupRate=0.2 over 300 packets")
	}
	if fstats.Sent != n || fstats.Dropped != 0 {
		t.Fatalf("stats = %+v", fstats)
	}
	if len(first) != n+int(fstats.Duplicated) {
		t.Fatalf("delivered %d packets, want %d + %d dups", len(first), n, fstats.Duplicated)
	}
	for id, count := range multiset(first) {
		if count > 2 {
			t.Fatalf("packet %d delivered %d times", id, count)
		}
	}
	second, sstats := runImpaired(t, params, n)
	if sstats != fstats {
		t.Fatalf("replay stats diverged: %+v vs %+v", sstats, fstats)
	}
	fm, sm := multiset(first), multiset(second)
	for id := 0; id < n; id++ {
		if fm[id] != sm[id] {
			t.Fatalf("replay diverged at packet %d: delivered %d then %d times", id, fm[id], sm[id])
		}
	}
}

// TestReorderReplay checks that jittered packets really arrive out of
// order, nothing is lost, and the reorder decisions replay from the
// seed.
func TestReorderReplay(t *testing.T) {
	params := Params{Seed: 11, Impair: Impairments{ReorderRate: 0.2, ReorderJitter: 20 * time.Millisecond}}
	const n = 50
	first, fstats := runImpaired(t, params, n)
	if fstats.Reordered == 0 {
		t.Fatal("no reorders with ReorderRate=0.2 over 50 packets")
	}
	if len(first) != n {
		t.Fatalf("delivered %d packets, want %d (reorder must not lose)", len(first), n)
	}
	inversions := 0
	for i := 1; i < len(first); i++ {
		if first[i] < first[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no out-of-order arrivals despite reordered packets")
	}
	_, sstats := runImpaired(t, params, n)
	if sstats != fstats {
		t.Fatalf("replay stats diverged: %+v vs %+v", sstats, fstats)
	}
}

// TestBurstLossReplay checks the Gilbert–Elliott model produces
// multi-packet loss bursts (not i.i.d. speckle) and replays exactly.
func TestBurstLossReplay(t *testing.T) {
	params := Params{Seed: 3, Impair: Impairments{Burst: GilbertElliott{
		PGoodBad: 0.03,
		PBadGood: 0.25,
		LossBad:  0.95,
	}}}
	const n = 500
	first, fstats := runImpaired(t, params, n)
	if fstats.Dropped == 0 {
		t.Fatal("no loss from the burst model over 500 packets")
	}
	// Without reorder the survivors stay in order, so a gap of k in the
	// delivered sequence is k consecutive losses.
	maxBurst, prev := 0, -1
	for _, id := range first {
		if gap := id - prev - 1; gap > maxBurst {
			maxBurst = gap
		}
		prev = id
	}
	if maxBurst < 2 {
		t.Fatalf("longest loss burst = %d packets; want >= 2 from the Gilbert–Elliott bad state", maxBurst)
	}
	second, sstats := runImpaired(t, params, n)
	if sstats != fstats {
		t.Fatalf("replay stats diverged: %+v vs %+v", sstats, fstats)
	}
	if len(second) != len(first) {
		t.Fatalf("replay delivered %d packets, first run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at position %d: %d vs %d", i, first[i], second[i])
		}
	}
}

// TestPartitionHealReplay runs a packet-count-keyed partition/heal
// schedule and asserts the exact delivered set — the schedule makes
// the outcome fully deterministic, not merely statistically stable.
func TestPartitionHealReplay(t *testing.T) {
	params := Params{Seed: 5, Schedule: []Phase{
		{Packets: 50, Imp: Impairments{}},
		{Packets: 100, Imp: Impairments{Partitioned: true}},
		{Imp: Impairments{}},
	}}
	const n = 300
	got, stats := runImpaired(t, params, n)
	if stats.Dropped != 100 {
		t.Fatalf("dropped %d packets, want exactly the 100 partitioned ones", stats.Dropped)
	}
	want := make([]int, 0, n-100)
	for i := 0; i < 50; i++ {
		want = append(want, i)
	}
	for i := 150; i < n; i++ {
		want = append(want, i)
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = packet %d, want %d", i, got[i], want[i])
		}
	}
}

// TestMutationScheduleReplay flips impairment parameters mid-run via a
// schedule (clean → full duplication → clean) and asserts the exact
// per-phase behaviour.
func TestMutationScheduleReplay(t *testing.T) {
	params := Params{Seed: 9, Schedule: []Phase{
		{Packets: 100, Imp: Impairments{}},
		{Packets: 50, Imp: Impairments{DupRate: 1.0}},
		{Imp: Impairments{}},
	}}
	const n = 200
	got, stats := runImpaired(t, params, n)
	if stats.Duplicated != 50 {
		t.Fatalf("duplicated %d packets, want exactly the 50 in the DupRate=1 phase", stats.Duplicated)
	}
	if len(got) != n+50 {
		t.Fatalf("delivered %d packets, want %d", len(got), n+50)
	}
	m := multiset(got)
	for id := 0; id < n; id++ {
		want := 1
		if id >= 100 && id < 150 {
			want = 2
		}
		if m[id] != want {
			t.Fatalf("packet %d delivered %d times, want %d", id, m[id], want)
		}
	}
}

// TestSetImpairmentsMidRun exercises the programmatic mutation path:
// partition the live link, observe silent drops, heal, observe
// delivery resume.
func TestSetImpairmentsMidRun(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer a.Close()
	defer b.Close()

	send := func(id uint32) {
		var p [4]byte
		binary.BigEndian.PutUint32(p[:], id)
		if err := a.Send(p[:]); err != nil {
			t.Fatalf("send %d: %v", id, err)
		}
	}
	recvID := func() uint32 {
		t.Helper()
		p, err := b.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		return binary.BigEndian.Uint32(p)
	}

	send(1)
	if id := recvID(); id != 1 {
		t.Fatalf("got packet %d, want 1", id)
	}

	a.Partition()
	send(2)
	if _, err := b.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned link delivered a packet (err=%v)", err)
	}

	a.Heal()
	send(3)
	if id := recvID(); id != 3 {
		t.Fatalf("got packet %d after heal, want 3", id)
	}
	if stats := a.ImpairStats(); stats.Dropped != 1 {
		t.Fatalf("dropped %d packets, want 1 (the partitioned one)", stats.Dropped)
	}
}
