package netsim

import (
	"math/rand"
	"time"
)

// Impairments configures the programmable failure modes of one link
// direction, beyond the steady-state Params (bandwidth, delay, i.i.d.
// loss, corruption). Every stochastic decision is drawn from the
// direction's seeded RNG in a fixed per-packet order, so a run with the
// same seed, the same configuration, and the same packet sequence
// replays its failures exactly — the property the chaos harness keys
// its reproductions on.
type Impairments struct {
	// DupRate is the probability in [0,1] that a packet is delivered
	// twice. The duplicate shares the original's storage (one extra
	// reference) and arrival deadline, exercising the receiver's
	// duplicate handling and any aliasing bugs at once.
	DupRate float64
	// ReorderRate is the probability in [0,1] that a packet is held
	// back by an extra jitter delay, letting packets sent after it
	// arrive first (out-of-order delivery).
	ReorderRate float64
	// ReorderJitter bounds the extra delay of a reordered packet; the
	// actual delay is drawn uniformly from (0, ReorderJitter]. Zero
	// with a non-zero ReorderRate uses DefaultReorderJitter.
	ReorderJitter time.Duration
	// Burst enables two-state Gilbert–Elliott burst loss; the zero
	// value disables it.
	Burst GilbertElliott
	// Partitioned silently drops every packet — a link partition. Heal
	// by clearing it (via a schedule Phase or SetImpairments).
	Partitioned bool
}

// DefaultReorderJitter is the reorder delay bound used when
// ReorderRate is set but ReorderJitter is not.
const DefaultReorderJitter = 2 * time.Millisecond

// GilbertElliott is the classic two-state Markov burst-loss model: the
// link flips between a Good and a Bad state per packet, with a
// state-dependent loss probability. High LossBad with a low PGoodBad
// and moderate PBadGood yields rare but dense loss bursts — the ATM
// WAN behaviour that distinguishes go-back-N from selective repeat far
// more sharply than i.i.d. loss does.
type GilbertElliott struct {
	// PGoodBad is the per-packet probability of entering the Bad state.
	PGoodBad float64
	// PBadGood is the per-packet probability of recovering to Good.
	PBadGood float64
	// LossGood is the loss probability while Good (usually 0).
	LossGood float64
	// LossBad is the loss probability while Bad (usually near 1).
	LossBad float64
}

// enabled reports whether the model can ever lose a packet.
func (g GilbertElliott) enabled() bool {
	return g.LossBad > 0 || g.LossGood > 0
}

// SteadyLoss reports the model's long-run loss probability: the
// stationary mix of good- and bad-state loss. A model expressing
// i.i.d. loss through LossGood alone scores exactly that rate. Path
// composition (atm.combineImpair) uses it as the dominance metric
// when two links both carry burst models.
func (g GilbertElliott) SteadyLoss() float64 {
	if !g.enabled() {
		return 0
	}
	switch {
	case g.PGoodBad <= 0:
		return g.LossGood // starts Good and never leaves it
	case g.PBadGood <= 0:
		return g.LossBad // absorbed into Bad
	}
	bad := g.PGoodBad / (g.PGoodBad + g.PBadGood)
	return (1-bad)*g.LossGood + bad*g.LossBad
}

// Phase is one step of an impairment schedule: Imp applies to the next
// Packets packets the wire processes (sent, dropped, or partitioned —
// every packet advances the schedule). Packets <= 0 makes the phase
// hold forever; the final phase holds forever regardless. Keying
// phases by packet count rather than wall time keeps schedules
// deterministic under arbitrary scheduler jitter.
type Phase struct {
	Packets int
	Imp     Impairments
}

// ImpairStats counts the impairment decisions one link direction has
// made. Because every decision is RNG-driven, two runs with the same
// seed and packet sequence produce identical stats — the deterministic
// replay tests assert exactly that.
type ImpairStats struct {
	// Sent counts packets the wire processed (before any impairment).
	Sent int64
	// Dropped counts packets lost to LossRate, burst loss, or partition.
	Dropped int64
	// Duplicated counts packets delivered twice.
	Duplicated int64
	// Reordered counts packets given extra jitter delay.
	Reordered int64
	// Corrupted counts packets with a flipped byte.
	Corrupted int64
}

// impairer holds the mutable impairment state of one direction: the
// active configuration, the remaining schedule, the Gilbert–Elliott
// state, and the decision counters. The owning direction's mutex
// guards it; all RNG draws happen on the wire goroutine in send order.
type impairer struct {
	imp       Impairments
	schedule  []Phase
	phaseLeft int // packets remaining in the active schedule phase
	geBad     bool
	stats     ImpairStats
}

func newImpairer(imp Impairments, schedule []Phase) *impairer {
	ip := &impairer{imp: imp, schedule: schedule}
	ip.advanceSchedule()
	return ip
}

// advanceSchedule activates the next schedule phase if the current one
// is exhausted. The last phase (or a Packets<=0 phase) holds forever.
func (ip *impairer) advanceSchedule() {
	for len(ip.schedule) > 0 && ip.phaseLeft == 0 {
		ph := ip.schedule[0]
		ip.imp = ph.Imp
		if ph.Packets <= 0 || len(ip.schedule) == 1 {
			// Terminal phase: hold forever.
			ip.schedule = nil
			ip.phaseLeft = -1
			return
		}
		ip.schedule = ip.schedule[1:]
		ip.phaseLeft = ph.Packets
	}
}

// set replaces the active impairments programmatically, cancelling any
// remaining schedule (the caller has taken manual control).
func (ip *impairer) set(imp Impairments) {
	ip.imp = imp
	ip.schedule = nil
	ip.phaseLeft = -1
}

// decision is the outcome of one packet's impairment draws.
type decision struct {
	drop    bool
	dup     bool
	corrupt bool
	jitter  time.Duration // extra delay for reordered packets
}

// decide draws this packet's fate. The draw order is fixed —
// burst-loss transition, burst/i.i.d. loss, corruption, duplication,
// reorder (+ jitter) — so a given seed and packet sequence always
// replays the same decisions. lossRate and corruptRate are the
// steady-state Params rates, folded in here so the whole failure
// process consumes one RNG stream.
func (ip *impairer) decide(rng *rand.Rand, lossRate, corruptRate float64) decision {
	ip.stats.Sent++
	if ip.phaseLeft > 0 {
		ip.phaseLeft--
		if ip.phaseLeft == 0 {
			defer ip.advanceSchedule()
		}
	}
	imp := ip.imp
	var d decision
	if imp.Partitioned {
		ip.stats.Dropped++
		d.drop = true
		return d
	}
	if g := imp.Burst; g.enabled() {
		if ip.geBad {
			if g.PBadGood > 0 && rng.Float64() < g.PBadGood {
				ip.geBad = false
			}
		} else if g.PGoodBad > 0 && rng.Float64() < g.PGoodBad {
			ip.geBad = true
		}
		p := g.LossGood
		if ip.geBad {
			p = g.LossBad
		}
		if p > 0 && rng.Float64() < p {
			d.drop = true
		}
	}
	if !d.drop && lossRate > 0 && rng.Float64() < lossRate {
		d.drop = true
	}
	if d.drop {
		ip.stats.Dropped++
		return d
	}
	if corruptRate > 0 && rng.Float64() < corruptRate {
		d.corrupt = true
		ip.stats.Corrupted++
	}
	if imp.DupRate > 0 && rng.Float64() < imp.DupRate {
		d.dup = true
		ip.stats.Duplicated++
	}
	if imp.ReorderRate > 0 && rng.Float64() < imp.ReorderRate {
		jitter := imp.ReorderJitter
		if jitter <= 0 {
			jitter = DefaultReorderJitter
		}
		d.jitter = time.Duration(1 + rng.Int63n(int64(jitter)))
		ip.stats.Reordered++
	}
	return d
}
