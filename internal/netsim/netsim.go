// Package netsim simulates point-to-point network links with finite
// bandwidth, propagation delay, packet loss, corruption, and a bounded
// sender-side buffer.
//
// The paper's testbed is the NYNET ATM network; we cannot attach to 1998
// ATM hardware, so every transport in this repository runs over either a
// real TCP socket or a netsim link. A netsim link preserves the
// behaviours the NCS protocol machinery reacts to:
//
//   - finite bandwidth: transmission time grows with message size,
//   - propagation delay: the latency/bandwidth trade-off of WAN computing
//     that motivates overlap (§1, §2 of the paper),
//   - loss and corruption: exercise the error-control algorithms,
//   - a bounded send buffer: writes block when the buffer fills, which is
//     the kernel socket-buffer behaviour behind Figure 10's crossover.
//
// Beyond the steady-state Params, each direction accepts programmable
// impairments (Impairments): duplication, reordering via delay jitter,
// Gilbert–Elliott burst loss, and link partition/heal — mutable mid-run
// either deterministically through a packet-count-keyed Schedule of
// Phases or programmatically through Endpoint.SetImpairments. Every
// stochastic decision comes from the direction's seeded RNG in a fixed
// per-packet order, so a failure run replays exactly from its seed;
// ImpairStats exposes the decisions for replay assertions.
//
// Links are full-duplex pipes of discrete packets; each direction has its
// own Params. Packet boundaries are preserved (datagram semantics): the
// stream-vs-datagram distinction is layered above, in transport.
package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"ncs/internal/buf"
)

// Errors returned by endpoint operations.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("netsim: endpoint closed")
	// ErrTimeout is returned by RecvTimeout when the deadline passes.
	ErrTimeout = errors.New("netsim: receive timeout")
)

// Params configures one direction of a link.
type Params struct {
	// Bandwidth is the link rate in bytes per second. Zero means
	// infinitely fast transmission.
	Bandwidth int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// LossRate is the probability in [0,1] that a packet is silently
	// dropped on the wire.
	LossRate float64
	// CorruptRate is the probability in [0,1] that one byte of a packet
	// is flipped in transit. Corruption is only meaningful under a
	// transport with integrity checking (e.g. AAL5 CRC).
	CorruptRate float64
	// BufferBytes bounds the sender-side buffer. A Send blocks while the
	// buffer is full, exactly like a kernel socket send buffer. Zero
	// means unbounded.
	BufferBytes int
	// Seed seeds the loss/corruption/impairment generator so failure
	// runs are reproducible. Zero selects a fixed default seed.
	Seed int64
	// Impair configures the direction's programmable impairments
	// (duplication, reordering, burst loss, partition). Ignored when
	// Schedule is non-empty.
	Impair Impairments
	// Schedule, when non-empty, drives the impairments through a
	// deterministic sequence of packet-count-keyed phases; the final
	// phase holds forever. See Phase.
	Schedule []Phase
}

// Endpoint is one side of a duplex link.
type Endpoint struct {
	send *direction // traffic we transmit
	recv *direction // traffic we receive

	closeOnce sync.Once
}

// Pipe creates a duplex link. aToB configures the a→b direction and bToA
// the reverse. Both returned endpoints must be closed by the caller.
func Pipe(aToB, bToA Params) (a, b *Endpoint) {
	d1 := newDirection(aToB)
	d2 := newDirection(bToA)
	return &Endpoint{send: d1, recv: d2}, &Endpoint{send: d2, recv: d1}
}

// LoopbackParams returns Params resembling a fast local link: no loss,
// no delay, unbounded buffer — useful for tests and the HPI transport.
func LoopbackParams() Params { return Params{} }

// Send transmits one packet. It blocks while the send buffer is full and
// returns ErrClosed after Close. The packet is copied (into a pooled
// buffer); the caller may reuse p.
func (e *Endpoint) Send(p []byte) error {
	cp := buf.Get(len(p))
	copy(cp.B, p)
	if err := e.send.enqueue(cp); err != nil {
		cp.Release()
		return err
	}
	return nil
}

// SendBuf is the zero-copy Send: it transfers ownership of b (one
// reference) to the link — the wire mutates and eventually releases it.
// The caller must not touch b afterwards unless it retained it first.
func (e *Endpoint) SendBuf(b *buf.Buffer) error {
	if err := e.send.enqueue(b); err != nil {
		b.Release()
		return err
	}
	return nil
}

// Recv returns the next delivered packet, blocking until one arrives or
// the link closes.
func (e *Endpoint) Recv() ([]byte, error) {
	b, err := e.recv.dequeue()
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvBuf is the pooled Recv: the returned buffer is owned by the
// caller, who must Release it.
func (e *Endpoint) RecvBuf() (*buf.Buffer, error) { return e.recv.dequeue() }

// RecvTimeout is Recv with a deadline; it returns ErrTimeout when no
// packet arrives within d.
func (e *Endpoint) RecvTimeout(d time.Duration) ([]byte, error) {
	b, err := e.recv.dequeueTimeout(d)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvBufTimeout is RecvBuf with a deadline.
func (e *Endpoint) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	return e.recv.dequeueTimeout(d)
}

// TryRecvBuf is the non-blocking RecvBuf: it returns (nil, nil) when no
// packet has arrived yet and ErrClosed once the link is closed and
// drained. Together with SetRecvNotify it is the readiness interface a
// reactor-style poller drives many endpoints from.
func (e *Endpoint) TryRecvBuf() (*buf.Buffer, error) { return e.recv.tryDequeue() }

// SetRecvNotify registers fn to be invoked whenever a packet becomes
// available to TryRecvBuf and whenever the link transitions toward
// closed. The hook runs outside the endpoint's locks and must not
// block; a doorbell write (non-blocking channel send) is the intended
// body. It fires once immediately on registration so packets that
// arrived earlier are never missed. One hook per endpoint; nil clears.
func (e *Endpoint) SetRecvNotify(fn func()) { e.recv.setNotify(fn) }

// TrySend is a non-blocking Send: it returns (false, nil) when the send
// buffer has no room, which lets user-level thread schedulers avoid
// blocking the whole process (§4.1). The packet is copied only once
// accepted, so a busy-polling sender pays nothing for rejections.
func (e *Endpoint) TrySend(p []byte) (bool, error) {
	return e.send.tryEnqueueCopy(p)
}

// Buffered reports the bytes currently occupying the send buffer.
func (e *Endpoint) Buffered() int { return e.send.buffered() }

// SetImpairments replaces the impairments applied to traffic this
// endpoint transmits, taking effect from the next packet the wire
// processes. It cancels any remaining Schedule: a programmatic
// mutation means the caller has taken manual control of the link's
// failure process. Impairing both directions of a link requires a call
// on each endpoint.
func (e *Endpoint) SetImpairments(imp Impairments) { e.send.setImpairments(imp) }

// Partition cuts this endpoint's transmit direction: every packet is
// silently dropped until Heal (or a SetImpairments that clears
// Partitioned). Other active impairments are preserved.
func (e *Endpoint) Partition() { e.send.setPartitioned(true) }

// Heal reopens a transmit direction cut by Partition.
func (e *Endpoint) Heal() { e.send.setPartitioned(false) }

// ImpairStats reports the impairment decisions made on traffic this
// endpoint has transmitted. Decisions are RNG-driven, so two runs with
// the same seed, configuration, and packet sequence report identical
// stats — the hook deterministic replay tests key on.
func (e *Endpoint) ImpairStats() ImpairStats { return e.send.impairStats() }

// Close shuts down the endpoint: its transmit direction drains and
// closes (waking blocked receivers on the peer), and its own receive
// side is invalidated so local Recv calls return ErrClosed — the same
// semantics as closing a socket. Close is idempotent.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.recv.closeRecv()
		e.send.close()
	})
	return nil
}

// direction is a unidirectional simulated wire.
//
// A direction runs in one of two modes. A link whose parameters involve
// time or failure — bandwidth, delay, bounded buffer, loss, corruption,
// impairments, a schedule — is ASYNC: a wire goroutine paces
// transmission and a delivery goroutine realises arrival deadlines
// (reordering included). A link with none of those (LoopbackParams: the
// HPI default and every control channel) is INLINE: enqueue pushes the
// packet straight onto the arrived queue under the lock, with no
// goroutines at all. Inline mode is what lets an endpoint hold
// thousands of idle HPI connections without thousands of simulator
// goroutines; a later SetImpairments/Partition call upgrades the
// direction to async on the spot.
type direction struct {
	p    Params
	seed int64 // resolved RNG seed; the RNG itself is async-only

	mu         sync.Mutex
	sendCond   *sync.Cond // waits for buffer space; created on first wait
	recvCond   *sync.Cond // waits for arrivals; created on first wait
	inflight   int        // bytes occupying the send buffer
	queue      bufDeque   // packets accepted but not yet on the wire
	arrived    bufDeque   // packets delivered to the receiver
	closed     bool
	recvClosed bool // the receiving endpoint closed locally

	// rng and ip exist only in async mode: an inline direction makes no
	// stochastic decisions, and the RNG's internal state (~5KB) is the
	// single largest piece of an idle simulated link. Four directions
	// back every NCS connection, so creating them with the wire
	// goroutine instead of at Pipe time is most of the cheap-idle-link
	// budget.
	rng    *rand.Rand
	ip     *impairer
	notify func() // receive-readiness hook (see setNotify)
	async  bool   // wire/delivery goroutines are running

	wireWake chan struct{} // signals the wire goroutine (async mode)
	done     chan struct{} // wire goroutine exited (async mode)

	deliveries   chan timedPacket // wire → delivery goroutine (async mode)
	deliveryDone chan struct{}
	deliverySeq  uint64 // FIFO tiebreak for equal arrival deadlines
}

// needsAsync reports whether the parameters require the wire/delivery
// goroutines: anything that spends time (bandwidth, delay, a bounded
// buffer that drains over time) or decides fates (loss, corruption,
// impairments, schedules). A direction with none of these is a pure
// FIFO handoff and runs inline.
func needsAsync(p Params) bool {
	return p.Bandwidth > 0 || p.Delay > 0 || p.BufferBytes > 0 ||
		p.LossRate > 0 || p.CorruptRate > 0 ||
		len(p.Schedule) > 0 || p.Impair != (Impairments{})
}

// timedPacket is a packet with its computed arrival deadline. seq
// preserves send order among packets with equal deadlines.
type timedPacket struct {
	payload  *buf.Buffer
	arriveAt time.Time
	seq      uint64
}

// deliveryHeap orders pending deliveries by arrival deadline (send
// order breaking ties), which is what lets a jittered packet overtake
// nothing while later packets overtake it — out-of-order delivery.
// It is hand-rolled rather than container/heap because the latter
// boxes every element into an interface, putting an allocation per
// packet on the delivery hot path.
type deliveryHeap []timedPacket

func (h deliveryHeap) less(i, j int) bool {
	if !h[i].arriveAt.Equal(h[j].arriveAt) {
		return h[i].arriveAt.Before(h[j].arriveAt)
	}
	return h[i].seq < h[j].seq
}

func (h *deliveryHeap) push(tp timedPacket) {
	q := append(*h, tp)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes the minimum element; the heap must be non-empty.
func (h *deliveryHeap) pop() timedPacket {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = timedPacket{}
	q = q[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && q.less(left, least) {
			least = left
		}
		if right < n && q.less(right, least) {
			least = right
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
	return top
}

// bufDeque is a head-indexed FIFO of buffers: popping advances a head
// index instead of re-slicing, so the backing array is reused once
// drained rather than abandoned to the allocator on every refill.
// Callers synchronise externally (direction.mu).
type bufDeque struct {
	items []*buf.Buffer
	head  int
}

func (q *bufDeque) empty() bool { return q.head == len(q.items) }

func (q *bufDeque) push(p *buf.Buffer) {
	if q.head > 0 && q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, p)
}

// pop removes the head packet; callers check empty first. A
// long-lagging head is compacted away so a deque that never fully
// drains cannot grow its array without bound.
func (q *bufDeque) pop() *buf.Buffer {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

func newDirection(p Params) *direction {
	seed := p.Seed
	if seed == 0 {
		seed = 42
	}
	d := &direction{p: p, seed: seed}
	if needsAsync(p) {
		d.startAsyncLocked()
	}
	return d
}

// startAsyncLocked switches the direction to async mode, building the
// stochastic machinery (RNG, impairer) and spawning the wire and
// delivery goroutines. Safe on a fresh direction (newDirection) or
// under mu when upgrading an inline direction mid-run.
func (d *direction) startAsyncLocked() {
	if d.async {
		return
	}
	d.async = true
	d.rng = rand.New(rand.NewSource(d.seed))
	d.ip = newImpairer(d.p.Impair, d.p.Schedule)
	d.wireWake = make(chan struct{}, 1)
	d.done = make(chan struct{})
	d.deliveries = make(chan timedPacket, 64)
	d.deliveryDone = make(chan struct{})
	go d.wire()
	go d.deliveryLoop()
}

// sendCondLocked and recvCondLocked return the direction's condition
// variables, created on first wait. Signal/broadcast sites skip a nil
// cond: no waiter can exist before the first Wait created it, and
// every cond access happens under mu, so the check is race-free.
func (d *direction) sendCondLocked() *sync.Cond {
	if d.sendCond == nil {
		d.sendCond = sync.NewCond(&d.mu)
	}
	return d.sendCond
}

func (d *direction) recvCondLocked() *sync.Cond {
	if d.recvCond == nil {
		d.recvCond = sync.NewCond(&d.mu)
	}
	return d.recvCond
}

// wakeSendLocked and wakeRecvLocked broadcast/signal if a waiter has
// ever existed. Caller holds mu.
func (d *direction) wakeSendLocked() {
	if d.sendCond != nil {
		d.sendCond.Broadcast()
	}
}

func (d *direction) wakeRecvLocked(all bool) {
	if d.recvCond == nil {
		return
	}
	if all {
		d.recvCond.Broadcast()
	} else {
		d.recvCond.Signal()
	}
}

// enqueue takes ownership of p's reference; the caller handles release
// on error (so the Endpoint wrappers can keep uniform consume-on-error
// semantics without a double release here).
func (d *direction) enqueue(p *buf.Buffer) error {
	d.mu.Lock()
	if !d.async {
		// Inline mode: the wire is instantaneous and faultless, so the
		// packet arrives right here — no goroutine hops on the hot path.
		if d.closed {
			d.mu.Unlock()
			return ErrClosed
		}
		d.deliverLocked(p)
		notify := d.notify
		d.mu.Unlock()
		if notify != nil {
			notify()
		}
		return nil
	}
	for !d.closed && d.p.BufferBytes > 0 && d.inflight > 0 &&
		d.inflight+p.Len() > d.p.BufferBytes {
		d.sendCondLocked().Wait()
	}
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.queue.push(p)
	d.inflight += p.Len()
	d.mu.Unlock()
	d.kick()
	return nil
}

// deliverLocked lands a packet on the receiver. Caller holds mu.
func (d *direction) deliverLocked(pkt *buf.Buffer) {
	if d.recvClosed {
		pkt.Release()
		return
	}
	d.arrived.push(pkt)
	d.wakeRecvLocked(false)
}

// tryEnqueueCopy admits p non-blockingly, copying it into a pooled
// buffer only after the room check succeeds.
func (d *direction) tryEnqueueCopy(p []byte) (bool, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, ErrClosed
	}
	if !d.async {
		cp := buf.Get(len(p))
		copy(cp.B, p)
		d.deliverLocked(cp)
		notify := d.notify
		d.mu.Unlock()
		if notify != nil {
			notify()
		}
		return true, nil
	}
	if d.p.BufferBytes > 0 && d.inflight > 0 && d.inflight+len(p) > d.p.BufferBytes {
		d.mu.Unlock()
		return false, nil
	}
	cp := buf.Get(len(p))
	copy(cp.B, p)
	d.queue.push(cp)
	d.inflight += cp.Len()
	d.mu.Unlock()
	d.kick()
	return true, nil
}

func (d *direction) kick() {
	select {
	case d.wireWake <- struct{}{}:
	default:
	}
}

func (d *direction) buffered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inflight
}

// wire drains the send queue at link speed, applies loss/corruption, and
// hands each surviving packet to the delivery goroutine stamped with its
// arrival deadline. Transmission time is serialised here (the line is
// occupied packet by packet); propagation pipelines because the delivery
// goroutine sleeps per deadline, and deadlines are monotone in send
// order, so ordering is preserved.
func (d *direction) wire() {
	defer close(d.done)
	defer close(d.deliveries)
	// lineFree tracks when the line finishes transmitting everything
	// accepted so far. Pacing sleeps only when the accumulated deficit
	// exceeds a scheduling quantum, so small packets (ATM cells) are
	// paced accurately on average instead of per-packet, where sleep
	// granularity would inflate them ~20×. The quantum also bounds how
	// far a sender can overrun the line before the send buffer pushes
	// back: a whole quantum's worth of bytes drains without blocking,
	// so it is kept well under typical message transmission times or a
	// fan-out sender (a multicast root) would never feel its links
	// serialise.
	var lineFree time.Time
	const pacingQuantum = 250 * time.Microsecond
	for {
		d.mu.Lock()
		for d.queue.empty() && !d.closed {
			d.mu.Unlock()
			<-d.wireWake
			d.mu.Lock()
		}
		if d.queue.empty() && d.closed {
			d.mu.Unlock()
			break
		}
		pkt := d.queue.pop()
		d.mu.Unlock()

		// Occupy the line for the transmission time.
		if d.p.Bandwidth > 0 {
			tx := time.Duration(int64(pkt.Len()) * int64(time.Second) / d.p.Bandwidth)
			now := time.Now()
			if lineFree.Before(now) {
				lineFree = now
			}
			lineFree = lineFree.Add(tx)
			if deficit := lineFree.Sub(now); deficit > pacingQuantum {
				time.Sleep(deficit)
			}
		}

		// The packet has left the send buffer once fully transmitted.
		d.mu.Lock()
		d.inflight -= pkt.Len()
		dec := d.ip.decide(d.rng, d.p.LossRate, d.p.CorruptRate)
		if dec.corrupt && pkt.Len() > 0 {
			// Safe to mutate: the sender transferred its reference, so
			// the wire is the sole owner here.
			pkt.B[d.rng.Intn(pkt.Len())] ^= 0xff
		}
		d.wakeSendLocked()
		d.mu.Unlock()

		if dec.drop {
			pkt.Release()
			continue
		}
		arriveBase := time.Now()
		if d.p.Bandwidth > 0 && lineFree.After(arriveBase) {
			arriveBase = lineFree
		}
		arriveAt := arriveBase.Add(d.p.Delay + dec.jitter)
		if dec.dup {
			// The duplicate shares the original's storage: take its
			// reference BEFORE publishing the original, which the
			// receiver may otherwise fully consume first.
			pkt.Retain()
		}
		d.deliveries <- timedPacket{payload: pkt, arriveAt: arriveAt, seq: d.deliverySeq}
		d.deliverySeq++
		if dec.dup {
			d.deliveries <- timedPacket{payload: pkt, arriveAt: arriveAt, seq: d.deliverySeq}
			d.deliverySeq++
		}
	}
}

// deliveryLoop delivers packets at their arrival deadlines, earliest
// deadline first. Unjittered packets have monotone deadlines and keep
// FIFO order; a jittered (reordered) packet waits in the heap while
// later packets overtake it.
func (d *direction) deliveryLoop() {
	defer close(d.deliveryDone)
	var pending deliveryHeap
	// One timer reused across wakeups: it is always quiescent (fired
	// and drained, or stopped and drained) before the next Reset, per
	// the Timer.Reset contract.
	var timer *time.Timer
	open := true
	for open || len(pending) > 0 {
		if len(pending) == 0 {
			tp, ok := <-d.deliveries
			if !ok {
				open = false
				continue
			}
			pending.push(tp)
			continue
		}
		next := pending[0]
		wait := time.Until(next.arriveAt)
		if wait <= 0 {
			pending.pop()
			d.deliver(next.payload)
			continue
		}
		if !open {
			time.Sleep(wait)
			continue
		}
		if timer == nil {
			timer = time.NewTimer(wait)
		} else {
			timer.Reset(wait)
		}
		select {
		case tp, ok := <-d.deliveries:
			if !timer.Stop() {
				<-timer.C
			}
			if !ok {
				open = false
			} else {
				pending.push(tp)
			}
		case <-timer.C:
		}
	}
	d.mu.Lock()
	d.wakeRecvLocked(true)
	d.wakeSendLocked()
	d.mu.Unlock()
}

func (d *direction) deliver(pkt *buf.Buffer) {
	d.mu.Lock()
	if d.recvClosed {
		// The receiving endpoint is gone; releasing here (instead of
		// parking the packet on a queue nobody will drain) keeps the
		// pooled-buffer audit clean after Close.
		d.mu.Unlock()
		pkt.Release()
		return
	}
	d.arrived.push(pkt)
	d.wakeRecvLocked(false)
	notify := d.notify
	d.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// setNotify registers fn as the receive-readiness hook: it is invoked
// (outside the direction lock) whenever a packet lands on the arrived
// queue and whenever the link transitions toward closed, so a poller
// that owns many endpoints can sleep on one doorbell instead of
// blocking a goroutine per endpoint. One hook per direction; nil
// clears it. The hook fires once immediately so a registration cannot
// miss packets that arrived before it.
func (d *direction) setNotify(fn func()) {
	d.mu.Lock()
	d.notify = fn
	d.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// tryDequeue returns the next arrived packet without blocking:
// (nil, nil) when nothing has arrived yet, ErrClosed once the link is
// closed and drained.
func (d *direction) tryDequeue() (*buf.Buffer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.recvClosed {
		return nil, ErrClosed
	}
	if !d.arrived.empty() {
		return d.arrived.pop(), nil
	}
	if d.closed && d.drainedLocked() {
		return nil, ErrClosed
	}
	return nil, nil
}

// setImpairments replaces the active impairments (see
// Endpoint.SetImpairments). An inline direction upgrades to async
// first: impairment decisions belong to the wire goroutine.
func (d *direction) setImpairments(imp Impairments) {
	d.mu.Lock()
	d.startAsyncLocked()
	d.ip.set(imp)
	d.mu.Unlock()
}

// setPartitioned toggles only the partition bit, preserving the other
// active impairments (it still cancels a running schedule — the caller
// has taken manual control).
func (d *direction) setPartitioned(on bool) {
	d.mu.Lock()
	d.startAsyncLocked()
	imp := d.ip.imp
	imp.Partitioned = on
	d.ip.set(imp)
	d.mu.Unlock()
}

func (d *direction) impairStats() ImpairStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ip == nil {
		// Inline direction: the wire never ran, so no decisions were
		// ever made (inline delivery has always bypassed the counters).
		return ImpairStats{}
	}
	return d.ip.stats
}

func (d *direction) dequeue() (*buf.Buffer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.arrived.empty() || d.recvClosed {
		if d.recvClosed || (d.closed && d.drainedLocked()) {
			return nil, ErrClosed
		}
		d.recvCondLocked().Wait()
	}
	return d.arrived.pop(), nil
}

// closeRecv invalidates the receiving side locally, waking any blocked
// Recv with ErrClosed and releasing packets already delivered but
// never read (the local endpoint abandoned them by closing).
func (d *direction) closeRecv() {
	d.mu.Lock()
	d.recvClosed = true
	for !d.arrived.empty() {
		d.arrived.pop().Release()
	}
	d.wakeRecvLocked(true)
	notify := d.notify
	d.mu.Unlock()
	if notify != nil {
		notify()
	}
}

func (d *direction) dequeueTimeout(timeout time.Duration) (*buf.Buffer, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		d.mu.Lock()
		d.wakeRecvLocked(true)
		d.mu.Unlock()
	})
	defer timer.Stop()

	d.mu.Lock()
	defer d.mu.Unlock()
	for d.arrived.empty() || d.recvClosed {
		if d.recvClosed || (d.closed && d.drainedLocked()) {
			return nil, ErrClosed
		}
		if !time.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		d.recvCondLocked().Wait()
	}
	return d.arrived.pop(), nil
}

// drainedLocked reports whether no packets remain in flight. Caller holds mu.
func (d *direction) drainedLocked() bool {
	if !d.async {
		// Inline delivery: nothing is ever in flight beyond arrived.
		return true
	}
	select {
	case <-d.deliveryDone:
		return d.arrived.empty()
	default:
		return false
	}
}

func (d *direction) close() {
	d.mu.Lock()
	d.closed = true
	d.wakeSendLocked()
	d.wakeRecvLocked(true)
	async := d.async
	notify := d.notify
	d.mu.Unlock()
	if !async {
		if notify != nil {
			notify()
		}
		return
	}
	d.kick()
	<-d.done
	<-d.deliveryDone
	// Wake any receiver that raced with the delivery goroutine's exit.
	d.mu.Lock()
	d.wakeRecvLocked(true)
	notify = d.notify
	d.mu.Unlock()
	if notify != nil {
		notify()
	}
}
