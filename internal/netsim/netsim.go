// Package netsim simulates point-to-point network links with finite
// bandwidth, propagation delay, packet loss, corruption, and a bounded
// sender-side buffer.
//
// The paper's testbed is the NYNET ATM network; we cannot attach to 1998
// ATM hardware, so every transport in this repository runs over either a
// real TCP socket or a netsim link. A netsim link preserves the
// behaviours the NCS protocol machinery reacts to:
//
//   - finite bandwidth: transmission time grows with message size,
//   - propagation delay: the latency/bandwidth trade-off of WAN computing
//     that motivates overlap (§1, §2 of the paper),
//   - loss and corruption: exercise the error-control algorithms,
//   - a bounded send buffer: writes block when the buffer fills, which is
//     the kernel socket-buffer behaviour behind Figure 10's crossover.
//
// Links are full-duplex pipes of discrete packets; each direction has its
// own Params. Packet boundaries are preserved (datagram semantics): the
// stream-vs-datagram distinction is layered above, in transport.
package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"ncs/internal/buf"
)

// Errors returned by endpoint operations.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("netsim: endpoint closed")
	// ErrTimeout is returned by RecvTimeout when the deadline passes.
	ErrTimeout = errors.New("netsim: receive timeout")
)

// Params configures one direction of a link.
type Params struct {
	// Bandwidth is the link rate in bytes per second. Zero means
	// infinitely fast transmission.
	Bandwidth int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// LossRate is the probability in [0,1] that a packet is silently
	// dropped on the wire.
	LossRate float64
	// CorruptRate is the probability in [0,1] that one byte of a packet
	// is flipped in transit. Corruption is only meaningful under a
	// transport with integrity checking (e.g. AAL5 CRC).
	CorruptRate float64
	// BufferBytes bounds the sender-side buffer. A Send blocks while the
	// buffer is full, exactly like a kernel socket send buffer. Zero
	// means unbounded.
	BufferBytes int
	// Seed seeds the loss/corruption generator so failure runs are
	// reproducible. Zero selects a fixed default seed.
	Seed int64
}

// Endpoint is one side of a duplex link.
type Endpoint struct {
	send *direction // traffic we transmit
	recv *direction // traffic we receive

	closeOnce sync.Once
}

// Pipe creates a duplex link. aToB configures the a→b direction and bToA
// the reverse. Both returned endpoints must be closed by the caller.
func Pipe(aToB, bToA Params) (a, b *Endpoint) {
	d1 := newDirection(aToB)
	d2 := newDirection(bToA)
	return &Endpoint{send: d1, recv: d2}, &Endpoint{send: d2, recv: d1}
}

// LoopbackParams returns Params resembling a fast local link: no loss,
// no delay, unbounded buffer — useful for tests and the HPI transport.
func LoopbackParams() Params { return Params{} }

// Send transmits one packet. It blocks while the send buffer is full and
// returns ErrClosed after Close. The packet is copied (into a pooled
// buffer); the caller may reuse p.
func (e *Endpoint) Send(p []byte) error {
	cp := buf.Get(len(p))
	copy(cp.B, p)
	if err := e.send.enqueue(cp); err != nil {
		cp.Release()
		return err
	}
	return nil
}

// SendBuf is the zero-copy Send: it transfers ownership of b (one
// reference) to the link — the wire mutates and eventually releases it.
// The caller must not touch b afterwards unless it retained it first.
func (e *Endpoint) SendBuf(b *buf.Buffer) error {
	if err := e.send.enqueue(b); err != nil {
		b.Release()
		return err
	}
	return nil
}

// Recv returns the next delivered packet, blocking until one arrives or
// the link closes.
func (e *Endpoint) Recv() ([]byte, error) {
	b, err := e.recv.dequeue()
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvBuf is the pooled Recv: the returned buffer is owned by the
// caller, who must Release it.
func (e *Endpoint) RecvBuf() (*buf.Buffer, error) { return e.recv.dequeue() }

// RecvTimeout is Recv with a deadline; it returns ErrTimeout when no
// packet arrives within d.
func (e *Endpoint) RecvTimeout(d time.Duration) ([]byte, error) {
	b, err := e.recv.dequeueTimeout(d)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvBufTimeout is RecvBuf with a deadline.
func (e *Endpoint) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	return e.recv.dequeueTimeout(d)
}

// TrySend is a non-blocking Send: it returns (false, nil) when the send
// buffer has no room, which lets user-level thread schedulers avoid
// blocking the whole process (§4.1). The packet is copied only once
// accepted, so a busy-polling sender pays nothing for rejections.
func (e *Endpoint) TrySend(p []byte) (bool, error) {
	return e.send.tryEnqueueCopy(p)
}

// Buffered reports the bytes currently occupying the send buffer.
func (e *Endpoint) Buffered() int { return e.send.buffered() }

// Close shuts down the endpoint: its transmit direction drains and
// closes (waking blocked receivers on the peer), and its own receive
// side is invalidated so local Recv calls return ErrClosed — the same
// semantics as closing a socket. Close is idempotent.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.recv.closeRecv()
		e.send.close()
	})
	return nil
}

// direction is a unidirectional simulated wire.
type direction struct {
	p Params

	mu         sync.Mutex
	sendCond   *sync.Cond // waits for buffer space
	recvCond   *sync.Cond // waits for arrivals
	inflight   int        // bytes occupying the send buffer
	queue      bufDeque   // packets accepted but not yet on the wire
	arrived    bufDeque   // packets delivered to the receiver
	closed     bool
	recvClosed bool // the receiving endpoint closed locally
	rng        *rand.Rand

	wireWake chan struct{} // signals the wire goroutine
	done     chan struct{} // wire goroutine exited

	deliveries   chan timedPacket // wire → delivery goroutine, FIFO
	deliveryDone chan struct{}
}

// timedPacket is a packet with its computed arrival deadline.
type timedPacket struct {
	payload  *buf.Buffer
	arriveAt time.Time
}

// bufDeque is a head-indexed FIFO of buffers: popping advances a head
// index instead of re-slicing, so the backing array is reused once
// drained rather than abandoned to the allocator on every refill.
// Callers synchronise externally (direction.mu).
type bufDeque struct {
	items []*buf.Buffer
	head  int
}

func (q *bufDeque) empty() bool { return q.head == len(q.items) }

func (q *bufDeque) push(p *buf.Buffer) {
	if q.head > 0 && q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, p)
}

// pop removes the head packet; callers check empty first. A
// long-lagging head is compacted away so a deque that never fully
// drains cannot grow its array without bound.
func (q *bufDeque) pop() *buf.Buffer {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

func newDirection(p Params) *direction {
	seed := p.Seed
	if seed == 0 {
		seed = 42
	}
	d := &direction{
		p:            p,
		rng:          rand.New(rand.NewSource(seed)),
		wireWake:     make(chan struct{}, 1),
		done:         make(chan struct{}),
		deliveries:   make(chan timedPacket, 64),
		deliveryDone: make(chan struct{}),
	}
	d.sendCond = sync.NewCond(&d.mu)
	d.recvCond = sync.NewCond(&d.mu)
	go d.wire()
	go d.deliveryLoop()
	return d
}

// enqueue takes ownership of p's reference; the caller handles release
// on error (so the Endpoint wrappers can keep uniform consume-on-error
// semantics without a double release here).
func (d *direction) enqueue(p *buf.Buffer) error {
	d.mu.Lock()
	for !d.closed && d.p.BufferBytes > 0 && d.inflight > 0 &&
		d.inflight+p.Len() > d.p.BufferBytes {
		d.sendCond.Wait()
	}
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.queue.push(p)
	d.inflight += p.Len()
	d.mu.Unlock()
	d.kick()
	return nil
}

// tryEnqueueCopy admits p non-blockingly, copying it into a pooled
// buffer only after the room check succeeds.
func (d *direction) tryEnqueueCopy(p []byte) (bool, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, ErrClosed
	}
	if d.p.BufferBytes > 0 && d.inflight > 0 && d.inflight+len(p) > d.p.BufferBytes {
		d.mu.Unlock()
		return false, nil
	}
	cp := buf.Get(len(p))
	copy(cp.B, p)
	d.queue.push(cp)
	d.inflight += cp.Len()
	d.mu.Unlock()
	d.kick()
	return true, nil
}

func (d *direction) kick() {
	select {
	case d.wireWake <- struct{}{}:
	default:
	}
}

func (d *direction) buffered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inflight
}

// wire drains the send queue at link speed, applies loss/corruption, and
// hands each surviving packet to the delivery goroutine stamped with its
// arrival deadline. Transmission time is serialised here (the line is
// occupied packet by packet); propagation pipelines because the delivery
// goroutine sleeps per deadline, and deadlines are monotone in send
// order, so ordering is preserved.
func (d *direction) wire() {
	defer close(d.done)
	defer close(d.deliveries)
	// lineFree tracks when the line finishes transmitting everything
	// accepted so far. Pacing sleeps only when the accumulated deficit
	// exceeds a scheduling quantum, so small packets (ATM cells) are
	// paced accurately on average instead of per-packet, where sleep
	// granularity would inflate them ~20×.
	var lineFree time.Time
	const pacingQuantum = time.Millisecond
	for {
		d.mu.Lock()
		for d.queue.empty() && !d.closed {
			d.mu.Unlock()
			<-d.wireWake
			d.mu.Lock()
		}
		if d.queue.empty() && d.closed {
			d.mu.Unlock()
			break
		}
		pkt := d.queue.pop()
		d.mu.Unlock()

		// Occupy the line for the transmission time.
		if d.p.Bandwidth > 0 {
			tx := time.Duration(int64(pkt.Len()) * int64(time.Second) / d.p.Bandwidth)
			now := time.Now()
			if lineFree.Before(now) {
				lineFree = now
			}
			lineFree = lineFree.Add(tx)
			if deficit := lineFree.Sub(now); deficit > pacingQuantum {
				time.Sleep(deficit)
			}
		}

		// The packet has left the send buffer once fully transmitted.
		d.mu.Lock()
		d.inflight -= pkt.Len()
		drop := d.p.LossRate > 0 && d.rng.Float64() < d.p.LossRate
		corrupt := !drop && d.p.CorruptRate > 0 && d.rng.Float64() < d.p.CorruptRate
		if corrupt && pkt.Len() > 0 {
			// Safe to mutate: the sender transferred its reference, so
			// the wire is the sole owner here.
			pkt.B[d.rng.Intn(pkt.Len())] ^= 0xff
		}
		d.sendCond.Broadcast()
		d.mu.Unlock()

		if drop {
			pkt.Release()
			continue
		}
		arriveBase := time.Now()
		if d.p.Bandwidth > 0 && lineFree.After(arriveBase) {
			arriveBase = lineFree
		}
		d.deliveries <- timedPacket{payload: pkt, arriveAt: arriveBase.Add(d.p.Delay)}
	}
}

// deliveryLoop delivers packets in FIFO order at their arrival deadlines.
func (d *direction) deliveryLoop() {
	defer close(d.deliveryDone)
	for tp := range d.deliveries {
		if wait := time.Until(tp.arriveAt); wait > 0 {
			time.Sleep(wait)
		}
		d.deliver(tp.payload)
	}
	d.mu.Lock()
	d.recvCond.Broadcast()
	d.sendCond.Broadcast()
	d.mu.Unlock()
}

func (d *direction) deliver(pkt *buf.Buffer) {
	d.mu.Lock()
	d.arrived.push(pkt)
	d.recvCond.Signal()
	d.mu.Unlock()
}

func (d *direction) dequeue() (*buf.Buffer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.arrived.empty() || d.recvClosed {
		if d.recvClosed || (d.closed && d.drainedLocked()) {
			return nil, ErrClosed
		}
		d.recvCond.Wait()
	}
	return d.arrived.pop(), nil
}

// closeRecv invalidates the receiving side locally, waking any blocked
// Recv with ErrClosed.
func (d *direction) closeRecv() {
	d.mu.Lock()
	d.recvClosed = true
	d.recvCond.Broadcast()
	d.mu.Unlock()
}

func (d *direction) dequeueTimeout(timeout time.Duration) (*buf.Buffer, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		d.mu.Lock()
		d.recvCond.Broadcast()
		d.mu.Unlock()
	})
	defer timer.Stop()

	d.mu.Lock()
	defer d.mu.Unlock()
	for d.arrived.empty() || d.recvClosed {
		if d.recvClosed || (d.closed && d.drainedLocked()) {
			return nil, ErrClosed
		}
		if !time.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		d.recvCond.Wait()
	}
	return d.arrived.pop(), nil
}

// drainedLocked reports whether no packets remain in flight. Caller holds mu.
func (d *direction) drainedLocked() bool {
	select {
	case <-d.deliveryDone:
		return d.arrived.empty()
	default:
		return false
	}
}

func (d *direction) close() {
	d.mu.Lock()
	d.closed = true
	d.sendCond.Broadcast()
	d.recvCond.Broadcast()
	d.mu.Unlock()
	d.kick()
	<-d.done
	<-d.deliveryDone
	// Wake any receiver that raced with the delivery goroutine's exit.
	d.mu.Lock()
	d.recvCond.Broadcast()
	d.mu.Unlock()
}
