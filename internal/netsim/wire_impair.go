package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// WireImpairer exposes the simulator's per-direction impairment engine
// to transports that move real datagrams — the UDP transport wraps one
// around each socket so the chaos matrix and the flow/error-control
// property tests run over genuine sockets with exactly the failure
// process netsim applies to simulated links. It is the same seeded
// machinery (Impairments, Phase schedules, Gilbert–Elliott burst
// state) behind one lock: given the same seed, configuration, and
// packet sequence, two WireImpairers replay identical decisions.
//
// The zero value is not usable; construct with NewWireImpairer. All
// methods are safe for concurrent use, but determinism additionally
// requires that the caller present packets in a deterministic order
// (the UDP transport serialises Decide under its send lock).
type WireImpairer struct {
	mu  sync.Mutex
	rng *rand.Rand
	ip  *impairer
}

// WireDecision is the fate Decide assigned to one outbound datagram.
type WireDecision struct {
	// Drop discards the datagram (burst loss or partition).
	Drop bool
	// Dup sends the datagram twice back to back.
	Dup bool
	// Delay holds the datagram back before sending — non-zero only for
	// reordered packets, letting later sends overtake it on the wire.
	Delay time.Duration
}

// NewWireImpairer builds an impairer seeded like a netsim direction
// (seed 0 means the default seed 42). imp is the initial impairment
// set; schedule, if non-nil, switches impairments by packet count
// exactly as netsim.Params.Schedule does — every Decide call advances
// it, dropped and partitioned packets included.
func NewWireImpairer(seed int64, imp Impairments, schedule []Phase) *WireImpairer {
	if seed == 0 {
		seed = 42
	}
	return &WireImpairer{
		rng: rand.New(rand.NewSource(seed)),
		ip:  newImpairer(imp, schedule),
	}
}

// Decide draws the fate of the next outbound datagram. The RNG draw
// order matches the simulator's wire exactly (burst transition, loss,
// duplication, reorder jitter), so seeds are portable between netsim
// links and real-wire links. Corruption is never drawn: a real socket
// delivers what it delivers, and the loss/corrupt steady-state rates
// belong to netsim.Params, which has no real-wire counterpart.
func (w *WireImpairer) Decide() WireDecision {
	w.mu.Lock()
	d := w.ip.decide(w.rng, 0, 0)
	w.mu.Unlock()
	return WireDecision{Drop: d.drop, Dup: d.dup, Delay: d.jitter}
}

// Set replaces the active impairments mid-run, cancelling any
// remaining schedule — the transport.Impair hook for UDP conns.
func (w *WireImpairer) Set(imp Impairments) {
	w.mu.Lock()
	w.ip.set(imp)
	w.mu.Unlock()
}

// Stats returns the decision counters so far. Corrupted is always 0
// for a wire impairer.
func (w *WireImpairer) Stats() ImpairStats {
	w.mu.Lock()
	s := w.ip.stats
	w.mu.Unlock()
	return s
}
