package netsim

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestBasicDelivery(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer a.Close()
	defer b.Close()

	want := []byte("hello over the wire")
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestDuplex(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer a.Close()
	defer b.Close()

	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if p, _ := b.Recv(); string(p) != "ping" {
		t.Fatalf("b received %q", p)
	}
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if p, _ := a.Recv(); string(p) != "pong" {
		t.Fatalf("a received %q", p)
	}
}

func TestOrderingPreserved(t *testing.T) {
	a, b := Pipe(Params{Delay: 200 * time.Microsecond}, Params{})
	defer a.Close()
	defer b.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		p, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i) {
			t.Fatalf("packet %d arrived out of order: got %d", i, p[0])
		}
	}
}

func TestSenderCopiesPayload(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer a.Close()
	defer b.Close()

	p := []byte("mutate me")
	if err := a.Send(p); err != nil {
		t.Fatal(err)
	}
	p[0] = 'X'
	got, _ := b.Recv()
	if string(got) != "mutate me" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestPropagationDelay(t *testing.T) {
	const delay = 30 * time.Millisecond
	a, b := Pipe(Params{Delay: delay}, Params{})
	defer a.Close()
	defer b.Close()

	start := time.Now()
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < delay {
		t.Fatalf("delivery took %v, want >= %v", got, delay)
	}
}

func TestBandwidthSerialisation(t *testing.T) {
	// 1 MB/s and a 10 KB packet => >= 10 ms of transmission time.
	a, b := Pipe(Params{Bandwidth: 1 << 20}, Params{})
	defer a.Close()
	defer b.Close()

	start := time.Now()
	if err := a.Send(make([]byte, 10*1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 9*time.Millisecond {
		t.Fatalf("10KB at 1MB/s took %v, want ~10ms", got)
	}
}

func TestSendBufferBlocks(t *testing.T) {
	// Buffer of 8 KB, slow link: the second large send must block until
	// the first drains.
	a, b := Pipe(Params{Bandwidth: 1 << 20, BufferBytes: 8 * 1024}, Params{})
	defer a.Close()
	defer b.Close()

	if err := a.Send(make([]byte, 8*1024)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send(make([]byte, 8*1024)); err != nil {
		t.Fatal(err)
	}
	blocked := time.Since(start)
	if blocked < 5*time.Millisecond {
		t.Fatalf("second send returned after %v; expected to block ~8ms", blocked)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrySendBackpressure(t *testing.T) {
	a, b := Pipe(Params{Bandwidth: 1 << 18, BufferBytes: 4 * 1024}, Params{})
	defer a.Close()
	defer b.Close()

	ok, err := a.TrySend(make([]byte, 4*1024))
	if err != nil || !ok {
		t.Fatalf("first TrySend = %v, %v", ok, err)
	}
	ok, err = a.TrySend(make([]byte, 4*1024))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("second TrySend succeeded; buffer should be full")
	}
	if a.Buffered() == 0 {
		t.Error("Buffered() = 0 while packet in flight")
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestLoss(t *testing.T) {
	a, b := Pipe(Params{LossRate: 1.0}, Params{})
	defer b.Close()

	for i := 0; i < 5; i++ {
		if err := a.Send([]byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("Recv on all-loss link: err = %v, want ErrClosed", err)
	}
}

func TestPartialLossStatistics(t *testing.T) {
	a, b := Pipe(Params{LossRate: 0.5, Seed: 7}, Params{})
	defer b.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	got := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		got++
	}
	if got == 0 || got == n {
		t.Fatalf("with 50%% loss, delivered %d of %d", got, n)
	}
}

func TestCorruption(t *testing.T) {
	a, b := Pipe(Params{CorruptRate: 1.0}, Params{})
	defer a.Close()
	defer b.Close()

	orig := bytes.Repeat([]byte{0x55}, 64)
	if err := a.Send(orig); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, bytes.Repeat([]byte{0x55}, 64)) {
		t.Fatal("packet not corrupted despite CorruptRate=1")
	}
}

func TestCloseUnblocksReceiver(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer b.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer b.Close()
	a.Close()
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("Send after Close: err = %v", err)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer b.Close()
	a.Close()
	a.Close()
	a.Close()
}

func TestConcurrentSenders(t *testing.T) {
	a, b := Pipe(Params{}, Params{})
	defer a.Close()
	defer b.Close()

	const senders, per = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send([]byte{1}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < senders*per; i++ {
			if _, err := b.Recv(); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out draining packets")
	}
}
