// Package chaos is the seeded fault-injection conformance harness: it
// runs any (error control × flow control × transport × thread model)
// combination of the NCS stack over a hostile simulated network and
// asserts the paper's delivery contracts.
//
// The hostility comes from internal/netsim's programmable impairments
// — duplication, reordering, Gilbert–Elliott burst loss, link
// partition/heal, and mid-run parameter mutation — driven through
// named, packet-count-keyed schedules (Schedules). Every stochastic
// decision derives from Config.Seed, so a failing run is a coordinate,
// not an anecdote: rerun the same subtest (the seed is in its name)
// and the same packets fail the same way.
//
// The contracts asserted (Run):
//
//   - selective repeat and go-back-N deliver every message exactly
//     once, in order, byte-identical, with Message.Lost == 0 — no
//     matter what the schedule did to the data path;
//   - None never blocks on recovery and reports loss honestly: a
//     delivery with Lost == 0 must be byte-identical to a message that
//     was actually sent (silent corruption is a violation; missing or
//     duplicated whole messages are the accepted price of "none");
//   - the run terminates: a partition heals, senders resynchronise,
//     and Close leaves no goroutine or pooled buffer behind (audited
//     by the package tests' TestMain).
//
// RunRPC layers the RPC client/server on the same impaired substrate
// and asserts the call contract: every call either completes with the
// correct echo or fails within (a small grace of) the caller's
// deadline.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ncs/internal/atm"
	"ncs/internal/core"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/netsim"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// Config selects one protocol-matrix combination and one impairment
// schedule.
type Config struct {
	// ErrCtl selects the error control algorithm (§3.2).
	ErrCtl errctl.Algorithm
	// FlowCtl selects the flow control algorithm (§3.3).
	FlowCtl flowctl.Algorithm
	// Transport selects the interface. HPI impairs at SDU-packet
	// granularity, ACI at ATM-cell granularity (where duplication and
	// reordering inside a frame surface as AAL5 frame loss). UDP runs
	// over real loopback sockets with the seeded wire impairer at
	// datagram (= SDU-packet) granularity. SCI rides a real TCP socket
	// and only accepts the clean schedule.
	Transport transport.Kind
	// FastPath selects the §4.2 thread-bypassing procedures instead of
	// the per-connection threads.
	FastPath bool
	// Sharded drives the connection from the System's shard pool
	// (core.RuntimeSharded) instead of per-connection threads. Ignored
	// when FastPath is set (the fast path bypasses both runtimes).
	Sharded bool
	// Schedule is the impairment schedule applied to the data path
	// (both directions); the control path stays clean, per the paper's
	// separated control plane.
	Schedule Schedule
	// Seed drives the payload generator and every link RNG. Zero means
	// seed 1.
	Seed int64
	// Messages is the number of messages to push through; default 6.
	Messages int
	// MaxMsg bounds the random message size; default 2800 bytes
	// (multi-SDU at the harness's 512-byte SDU).
	MaxMsg int
	// ConsumerDelay makes the receiver a slow consumer: it sleeps this
	// long before every receive, so the sender's flow control — not the
	// harness — is what bounds buffering on the producing side.
	ConsumerDelay time.Duration
}

// The harness's fixed protocol parameters: a small SDU so ordinary
// messages segment, and a short retransmission timer so loss recovery
// converges in test time.
const (
	harnessSDU        = 512
	harnessAckTimeout = 25 * time.Millisecond
	// cellsPerSDU approximates how many ATM cells carry one
	// harness-sized SDU; cell-level schedules scale by it so the
	// per-SDU impairment pressure matches the packet-level schedules.
	cellsPerSDU = 12
)

// Schedule is a named impairment schedule, defined at SDU-packet
// granularity.
type Schedule struct {
	Name   string
	Phases []netsim.Phase
}

// Clean reports whether the schedule injects nothing (the conformance
// baseline, and the only schedule a real-socket transport can run).
func (s Schedule) Clean() bool { return len(s.Phases) == 0 }

// scaled returns the schedule at cell granularity, keeping the
// per-SDU impairment pressure comparable to the packet-level
// schedules: one SDU's fate is decided across cellsPerSDU cells, so
// per-event probabilities (duplication, reorder, burst entry) divide
// by it, phase lengths and the burst dwell stretch by it, and
// good-state loss converts exactly — a per-cell rate p_c such that a
// whole frame survives with the per-SDU probability 1-p. LossBad
// stays as configured: it is the loss density inside a burst, and an
// unscaled bad state still shreds every frame it overlaps, which is
// the point of a burst.
func (s Schedule) scaled() []netsim.Phase {
	if s.Clean() {
		return nil
	}
	out := make([]netsim.Phase, len(s.Phases))
	for i, ph := range s.Phases {
		imp := ph.Imp
		imp.DupRate /= cellsPerSDU
		imp.ReorderRate /= cellsPerSDU
		imp.Burst.PGoodBad /= cellsPerSDU
		imp.Burst.PBadGood /= cellsPerSDU
		imp.Burst.LossGood = 1 - math.Pow(1-imp.Burst.LossGood, 1.0/cellsPerSDU)
		out[i] = netsim.Phase{Packets: ph.Packets * cellsPerSDU, Imp: imp}
	}
	return out
}

// Schedules are the named impairment schedules of the conformance
// matrix. Each exercises one failure family the 1998 testbed could
// produce; "mutate" changes the failure process mid-run.
var Schedules = []Schedule{
	{Name: "clean"},
	{Name: "loss", Phases: []netsim.Phase{
		// i.i.d. loss expressed through the burst model's good state,
		// so the whole failure process stays on one RNG stream.
		{Imp: netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: 0.15}}},
	}},
	{Name: "duplicate", Phases: []netsim.Phase{
		{Imp: netsim.Impairments{DupRate: 0.3}},
	}},
	{Name: "reorder", Phases: []netsim.Phase{
		{Imp: netsim.Impairments{ReorderRate: 0.3, ReorderJitter: 4 * time.Millisecond}},
	}},
	{Name: "burst", Phases: []netsim.Phase{
		{Imp: netsim.Impairments{Burst: netsim.GilbertElliott{
			PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.95,
		}}},
	}},
	{Name: "partition", Phases: []netsim.Phase{
		{Packets: 25, Imp: netsim.Impairments{}},
		{Packets: 40, Imp: netsim.Impairments{Partitioned: true}},
		{Imp: netsim.Impairments{}},
	}},
	{Name: "pressure", Phases: []netsim.Phase{
		// The backpressure schedule: a clean ramp so the sender's credit
		// window opens, then dense loss bursts while (in the dedicated
		// pressure tests) the consumer drains slowly. The sender must
		// park on withheld credits — bounded buffering — rather than
		// ballooning its queues, and still finish when the bursts pass.
		{Packets: 20, Imp: netsim.Impairments{}},
		{Imp: netsim.Impairments{Burst: netsim.GilbertElliott{
			PGoodBad: 0.03, PBadGood: 0.4, LossBad: 0.9,
		}}},
	}},
	{Name: "mutate", Phases: []netsim.Phase{
		{Packets: 30, Imp: netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: 0.25}}},
		{Packets: 30, Imp: netsim.Impairments{DupRate: 0.5, ReorderRate: 0.2, ReorderJitter: 3 * time.Millisecond}},
		{Packets: 20, Imp: netsim.Impairments{Partitioned: true}},
		{Imp: netsim.Impairments{}},
	}},
}

// ScheduleByName returns the named schedule, for replaying a failure
// reported by the matrix tests.
func ScheduleByName(name string) (Schedule, bool) {
	for _, s := range Schedules {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Messages <= 0 {
		c.Messages = 6
	}
	if c.MaxMsg <= 0 {
		c.MaxMsg = 2800
	}
	return c
}

// Name is the subtest-style identity of the combination — enough to
// replay the run exactly.
func (c Config) Name() string {
	model := "threaded"
	switch {
	case c.FastPath:
		model = "fastpath"
	case c.Sharded:
		model = "sharded"
	}
	return fmt.Sprintf("%v/%v/%v/%s/%s/seed%d",
		c.ErrCtl, c.FlowCtl, c.Transport, model, c.Schedule.Name, c.Seed)
}

// options builds the connection Options for the combination, wiring
// the schedule into the data path of the chosen transport.
func (c Config) options() (core.Options, error) {
	opts := core.Options{
		Interface:    c.Transport,
		ErrorControl: c.ErrCtl,
		FlowControl:  c.FlowCtl,
		SDUSize:      harnessSDU,
		AckTimeout:   harnessAckTimeout,
		FastPath:     c.FastPath,
	}
	if c.Sharded && !c.FastPath {
		opts.Runtime = core.RuntimeSharded
	}
	switch c.Transport {
	case transport.HPI:
		opts.HPILink = &netsim.Params{
			Delay:    100 * time.Microsecond,
			Seed:     c.Seed,
			Schedule: c.Schedule.Phases,
		}
	case transport.ACI:
		opts.QoS = atm.QoS{
			Delay:    100 * time.Microsecond,
			Seed:     c.Seed,
			Schedule: c.Schedule.scaled(),
		}
	case transport.UDP:
		opts.UDPLink = &transport.UDPLink{
			MaxPacket: harnessSDU + 128,
			Seed:      c.Seed,
			Schedule:  c.Schedule.Phases,
		}
	case transport.SCI:
		if !c.Schedule.Clean() {
			return core.Options{}, fmt.Errorf("chaos: SCI rides a real socket; schedule %q cannot be injected", c.Schedule.Name)
		}
	default:
		return core.Options{}, fmt.Errorf("chaos: unknown transport %v", c.Transport)
	}
	return opts, nil
}

// payloads derives the run's messages from the seed: sizes span the
// single-SDU fast path through multi-SDU reassembly, contents are
// random bytes the conformance checks compare exactly.
func (c Config) payloads() [][]byte {
	rng := rand.New(rand.NewSource(c.Seed))
	msgs := make([][]byte, c.Messages)
	for i := range msgs {
		n := 1 + rng.Intn(c.MaxMsg)
		m := make([]byte, n)
		rng.Read(m)
		msgs[i] = m
	}
	return msgs
}

// reliable reports whether the error-control mode guarantees delivery.
func (c Config) reliable() bool { return c.ErrCtl != errctl.None }

// Violation is a conformance failure: the stack broke one of the
// paper's delivery contracts under the schedule.
type Violation struct {
	Config Config
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("chaos %s: %s", v.Config.Name(), v.Detail)
}

func (c Config) violation(format string, args ...any) error {
	return &Violation{Config: c, Detail: fmt.Sprintf(format, args...)}
}

// connect builds a fresh two-system network and one configured
// connection across it. The caller must Close the network.
func (c Config) connect(nw *core.Network) (conn, peer *core.Connection, err error) {
	opts, err := c.options()
	if err != nil {
		return nil, nil, err
	}
	a, err := nw.NewSystem("chaos-a")
	if err != nil {
		return nil, nil, err
	}
	b, err := nw.NewSystem("chaos-b")
	if err != nil {
		return nil, nil, err
	}
	conn, err = a.Connect("chaos-b", opts)
	if err != nil {
		return nil, nil, err
	}
	peer, err = b.Accept()
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, peer, nil
}

// recvDeadline bounds one reliable receive: it must cover the longest
// schedule stall (a partition that heals only as retransmissions grind
// through it) with a wide margin, while still failing hung runs fast
// enough for a test matrix.
const recvDeadline = 20 * time.Second

// Report is the observability record of one conformance run: what the
// schedule actually did to the data path, next to what the stack's own
// instruments recorded while it happened. The reconciliation tests
// cross-check the two — injected faults must be visible in telemetry.
type Report struct {
	// DataPath holds the impairment decisions made on data packets the
	// sending side transmitted (HPI counts SDU packets, ACI counts ATM
	// cells). Valid only when DataPathKnown — SCI rides a real socket
	// and reports nothing.
	DataPath      netsim.ImpairStats
	DataPathKnown bool
	// Telemetry is the delta of the process-global instruments across
	// the run. Concurrent activity elsewhere in the process also lands
	// in the delta, so reconciliation assertions must be one-sided
	// (counter delta ≥ injected events, never equality).
	Telemetry telemetry.Snapshot
}

// Run pushes the configured message sequence through the combination
// and checks the delivery contracts. It returns nil on conformance, a
// *Violation when the stack broke a contract, or another error when
// the harness itself could not run.
func Run(cfg Config) error {
	_, err := RunReport(cfg)
	return err
}

// RunReport is Run returning the run's observability Report alongside
// the conformance verdict. The Report is valid whenever the harness
// itself ran (even when the verdict is a *Violation).
func RunReport(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	before := telemetry.Capture()
	nw := core.NewNetwork()
	defer nw.Close()
	conn, peer, err := cfg.connect(nw)
	if err != nil {
		return Report{}, err
	}
	defer conn.Close()
	defer peer.Close()

	expected := cfg.payloads()
	senderDone := make(chan error, 1)
	go func() {
		for _, msg := range expected {
			if err := conn.Send(msg); err != nil {
				senderDone <- fmt.Errorf("send: %w", err)
				return
			}
		}
		senderDone <- nil
	}()

	var recvErr error
	if cfg.reliable() {
		recvErr = cfg.recvReliable(peer, expected)
	} else {
		recvErr = cfg.recvUnreliable(peer, expected, senderDone)
	}
	if cfg.reliable() {
		// The reliable sender must itself have completed: every message
		// acknowledged end to end.
		select {
		case err := <-senderDone:
			if err != nil && recvErr == nil {
				recvErr = cfg.violation("%v", err)
			}
		case <-time.After(recvDeadline):
			if recvErr == nil {
				recvErr = cfg.violation("sender hung after receiver finished")
			}
		}
	}
	var rep Report
	rep.DataPath, rep.DataPathKnown = conn.ImpairStats()
	rep.Telemetry = telemetry.Capture().Delta(before)
	return rep, recvErr
}

// recvReliable asserts exactly-once, in-order, byte-identical delivery.
func (c Config) recvReliable(peer *core.Connection, expected [][]byte) error {
	for i, want := range expected {
		if c.ConsumerDelay > 0 {
			time.Sleep(c.ConsumerDelay)
		}
		m, err := peer.RecvMessageTimeout(recvDeadline)
		if err != nil {
			return c.violation("message %d/%d never delivered: %v", i+1, len(expected), err)
		}
		if m.Lost != 0 {
			return c.violation("message %d delivered with Lost=%d on a reliable connection", i+1, m.Lost)
		}
		if !bytes.Equal(m.Data, want) {
			return c.violation("message %d corrupted or out of order: got %d bytes, want %d",
				i+1, len(m.Data), len(want))
		}
	}
	// Nothing may trail the sequence: a duplicate here means a session
	// was delivered twice.
	if m, err := peer.RecvMessageTimeout(100 * time.Millisecond); err == nil {
		return c.violation("extra %d-byte message delivered after the full sequence (duplicate delivery)", len(m.Data))
	} else if !errors.Is(err, core.ErrRecvTimeout) {
		return c.violation("post-sequence receive failed: %v", err)
	}
	return nil
}

// recvUnreliable drains deliveries until the sender finishes and the
// line goes quiet, asserting honest loss accounting: Lost == 0 implies
// the payload matches a sent message byte for byte.
func (c Config) recvUnreliable(peer *core.Connection, expected [][]byte, senderDone <-chan error) error {
	sent := make(map[string]bool, len(expected))
	for _, m := range expected {
		sent[string(m)] = true
	}
	done := false
	delivered := 0
	for {
		if c.ConsumerDelay > 0 {
			time.Sleep(c.ConsumerDelay)
		}
		m, err := peer.RecvMessageTimeout(250 * time.Millisecond)
		if errors.Is(err, core.ErrRecvTimeout) {
			if done {
				return nil
			}
			select {
			case serr := <-senderDone:
				if serr != nil {
					return c.violation("unreliable sender failed: %v", serr)
				}
				done = true // one more quiet interval confirms the drain
			default:
			}
			continue
		}
		if err != nil {
			return c.violation("receive failed mid-run: %v", err)
		}
		delivered++
		if delivered > 2*len(expected) {
			return c.violation("delivered %d messages from %d sent (duplication storm)", delivered, len(expected))
		}
		if m.Lost == 0 && !sent[string(m.Data)] {
			return c.violation("Lost=0 delivery of %d bytes matching no sent message (silent corruption)", len(m.Data))
		}
	}
}
