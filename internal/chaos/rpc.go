package chaos

import (
	"bytes"
	"context"
	"math/rand"
	"time"

	"ncs/internal/core"
	"ncs/internal/rpc"
)

// RPC call deadlines: reliable error control must push a call through
// any schedule (retransmission grinds through partitions), so its
// deadline is generous and completion is mandatory; unreliable calls
// may legitimately lose their frames, so the contract degrades to
// "fail by the caller's deadline, promptly".
const (
	rpcReliableDeadline   = 15 * time.Second
	rpcUnreliableDeadline = 400 * time.Millisecond
	// rpcDeadlineGrace bounds how far past its deadline a failing call
	// may return: the contract is that cancellation is prompt, not
	// merely eventual.
	rpcDeadlineGrace = 2 * time.Second
)

// RunRPC layers an echo RPC server and client over the configured
// combination and asserts the call contract: every call either
// completes with a byte-identical echo, or (on unreliable error
// control only) fails within the caller's deadline plus a small grace.
func RunRPC(cfg Config) error {
	cfg = cfg.withDefaults()
	nw := core.NewNetwork()
	defer nw.Close()
	conn, peer, err := cfg.connect(nw)
	if err != nil {
		return err
	}
	defer conn.Close()
	defer peer.Close()

	srv := rpc.NewServer(rpc.ServerOptions{})
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	srv.ServeConn(peer)
	defer srv.Shutdown()

	cli := rpc.NewClient(conn)
	defer cli.Close()

	deadline := rpcUnreliableDeadline
	if cfg.reliable() {
		deadline = rpcReliableDeadline
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 0; i < cfg.Messages; i++ {
		req := make([]byte, 1+rng.Intn(cfg.MaxMsg))
		rng.Read(req)
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		resp, err := cli.Call(ctx, "echo", req)
		elapsed := time.Since(start)
		cancel()
		switch {
		case err == nil:
			if !bytes.Equal(resp, req) {
				return cfg.violation("call %d echoed %d bytes, want %d (corrupted reply)", i, len(resp), len(req))
			}
		case cfg.reliable():
			return cfg.violation("call %d failed on reliable error control: %v", i, err)
		case elapsed > deadline+rpcDeadlineGrace:
			return cfg.violation("call %d failed %v after its %v deadline: %v", i, elapsed-deadline, deadline, err)
		}
	}
	return nil
}
