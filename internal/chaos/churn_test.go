package chaos

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ncs/internal/core"
	"ncs/internal/transport"
)

// churnConns is the connection count the scaling assertions run at.
// The ISSUE's acceptance point: after a 1024-connection churn, the
// process must be back at baseline, and with 1024 sharded connections
// OPEN the goroutine count must be O(shards), not O(connections).
const churnConns = 1024

func churnCount(t *testing.T) int {
	if testing.Short() {
		return 256
	}
	return churnConns
}

// openConns establishes n connections from a to b and returns both
// ends.
func openConns(t *testing.T, a, b *core.System, peerName string, opts core.Options, n int) (conns, peers []*core.Connection) {
	t.Helper()
	peerCh := make(chan *core.Connection, n)
	go func() {
		for i := 0; i < n; i++ {
			p, err := b.Accept()
			if err != nil {
				return
			}
			peerCh <- p
		}
	}()
	conns = make([]*core.Connection, 0, n)
	peers = make([]*core.Connection, 0, n)
	for i := 0; i < n; i++ {
		c, err := a.Connect(peerName, opts)
		if err != nil {
			t.Fatalf("connect %d/%d: %v", i+1, n, err)
		}
		conns = append(conns, c)
	}
	for i := 0; i < n; i++ {
		select {
		case p := <-peerCh:
			peers = append(peers, p)
		case <-time.After(10 * time.Second):
			t.Fatalf("accepted only %d/%d connections", i, n)
		}
	}
	return conns, peers
}

// TestShardedGoroutinesOShards opens churnConns sharded HPI
// connections, pushes a message through each, and asserts the
// goroutine count stays O(shards): the whole point of the sharded
// runtime. (The threaded runtime at this scale would sit at 8
// goroutines per connection.)
func TestShardedGoroutinesOShards(t *testing.T) {
	n := churnCount(t)
	base := runtime.NumGoroutine()

	nw := core.NewNetwork()
	defer nw.Close()
	a, err := nw.NewSystem("scale-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.NewSystem("scale-b")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Interface: transport.HPI, Runtime: core.RuntimeSharded}
	conns, peers := openConns(t, a, b, "scale-b", opts, n)

	// Traffic on every connection, so the scaling claim covers active
	// connections, not just idle ones.
	errCh := make(chan error, n)
	for i, c := range conns {
		go func(i int, c *core.Connection) {
			if err := c.Send([]byte(fmt.Sprintf("conn %d", i))); err != nil {
				errCh <- err
				return
			}
			if _, err := peers[i].RecvTimeout(10 * time.Second); err != nil {
				errCh <- fmt.Errorf("conn %d recv: %w", i, err)
				return
			}
			errCh <- nil
		}(i, c)
	}
	for range conns {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	// Both systems run at most GOMAXPROCS shards plus a master thread;
	// the slack absorbs test goroutines still exiting. Anything near
	// O(n) means per-connection goroutines crept back in.
	limit := base + 2*runtime.GOMAXPROCS(0) + 32
	if limit > base+n/4 {
		t.Skipf("GOMAXPROCS too large for %d conns to discriminate", n)
	}
	if g := runtime.NumGoroutine(); g > limit {
		t.Fatalf("%d goroutines with %d sharded connections open (baseline %d, limit %d): O(connections), want O(shards)",
			g, n, base, limit)
	}
}

// TestConnectionChurn cycles open → send → close through churnConns
// connections on BOTH runtimes and asserts the process returns to its
// pre-churn goroutine count: no runtime may leak per-connection state.
// (The package TestMain additionally audits pooled buffers.)
func TestConnectionChurn(t *testing.T) {
	for _, rt := range []core.Runtime{core.RuntimeThreaded, core.RuntimeSharded} {
		t.Run(rt.String(), func(t *testing.T) {
			n := churnCount(t)
			base := runtime.NumGoroutine()

			nw := core.NewNetwork()
			defer nw.Close()
			a, err := nw.NewSystem("churn-a-" + rt.String())
			if err != nil {
				t.Fatal(err)
			}
			b, err := nw.NewSystem("churn-b-" + rt.String())
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{Interface: transport.HPI, Runtime: rt}

			// Churn in batches so the threaded runtime's transient
			// goroutines stay bounded while total churn still reaches n.
			const batch = 64
			peerCh := make(chan *core.Connection, batch)
			go func() {
				for {
					p, err := b.Accept()
					if err != nil {
						return
					}
					peerCh <- p
				}
			}()
			for done := 0; done < n; done += batch {
				conns := make([]*core.Connection, 0, batch)
				peers := make([]*core.Connection, 0, batch)
				for i := 0; i < batch; i++ {
					c, err := a.Connect("churn-b-"+rt.String(), opts)
					if err != nil {
						t.Fatalf("churn %d: %v", done+i, err)
					}
					conns = append(conns, c)
					select {
					case p := <-peerCh:
						peers = append(peers, p)
					case <-time.After(10 * time.Second):
						t.Fatalf("churn %d: accept timed out", done+i)
					}
				}
				for i, c := range conns {
					if err := c.Send([]byte{byte(i)}); err != nil {
						t.Fatalf("churn send: %v", err)
					}
					if _, err := peers[i].RecvTimeout(10 * time.Second); err != nil {
						t.Fatalf("churn recv: %v", err)
					}
				}
				for i := range conns {
					conns[i].Close()
					peers[i].Close()
				}
			}

			// Quiesce: only the accept helper, the masters, and (for
			// sharded) the fixed pool may remain.
			limit := base + 2*runtime.GOMAXPROCS(0) + 16
			deadline := time.Now().Add(10 * time.Second)
			for runtime.NumGoroutine() > limit && time.Now().Before(deadline) {
				time.Sleep(20 * time.Millisecond)
			}
			if g := runtime.NumGoroutine(); g > limit {
				t.Fatalf("%d goroutines after churning %d connections (baseline %d, limit %d)",
					g, n, base, limit)
			}
		})
	}
}
