package chaos

import (
	"testing"
	"time"

	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// TestPressureSlowConsumer is the backpressure axis of the matrix: a
// producer pushing multi-SDU messages at a consumer that sleeps before
// every receive, over the "pressure" schedule's burst loss. The credit
// flow control must absorb the rate mismatch by withholding grants —
// the sender parks instead of buffering without bound — and the run
// must still deliver everything once the bursts pass. After each run
// the shard pool's parked-connection gauge must be back to zero: a
// connection left parked is a delivery stall that survived teardown.
func TestPressureSlowConsumer(t *testing.T) {
	sched, ok := ScheduleByName("pressure")
	if !ok {
		t.Fatal("pressure schedule missing from roster")
	}
	seed := baseSeed(t)
	for _, ec := range []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN} {
		for _, m := range models {
			cfg := Config{
				ErrCtl: ec, FlowCtl: flowctl.Credit, Transport: transport.HPI,
				FastPath: m.fastPath, Sharded: m.sharded,
				Schedule: sched, Seed: seed,
				Messages: 5, ConsumerDelay: 2 * time.Millisecond,
			}
			t.Run("pressure/"+cfg.Name(), func(t *testing.T) {
				t.Parallel()
				if err := Run(cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestPressureLeavesNoParkedConns audits the gauge after the slow
// consumer runs (and any other parallel chaos activity) settle: every
// shard-parked connection must have been flushed or dropped at close.
// It runs in the package's sequential tail — t.Parallel tests above
// have all finished by the time non-parallel tests that come later in
// the file order run — but guards against stragglers by polling.
func TestPressureLeavesNoParkedConns(t *testing.T) {
	// One dedicated sharded slow-consumer run, sequentially, so the
	// assertion is about a settled process.
	sched, _ := ScheduleByName("pressure")
	cfg := Config{
		ErrCtl: errctl.SelectiveRepeat, FlowCtl: flowctl.Credit,
		Transport: transport.HPI, Sharded: true,
		Schedule: sched, Seed: baseSeed(t),
		Messages: 5, ConsumerDelay: 2 * time.Millisecond,
	}
	if err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		parked := telemetry.Capture().Gauges["core.shard.parked_conns"]
		if parked == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("core.shard.parked_conns = %d after pressure run; parked deliveries leaked past Close", parked)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
