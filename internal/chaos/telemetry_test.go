package chaos

import (
	"testing"

	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/transport"
)

// TestTelemetryReconciliation cross-checks the stack's own instruments
// against the fault injector's ground truth: on a reliable connection,
// every data packet the schedule dropped forces at least one
// retransmission, so the errctl.send.retransmit_sdus_total delta over
// the run must cover the link's Dropped count. The assertion is
// one-sided — the counter is process-global and retransmissions can
// also come from timeout false alarms — but a shortfall means the
// error-control layer recovered packets telemetry never saw, which is
// exactly the divergence the unified layer exists to rule out.
//
// HPI only: its injector drops whole SDU packets, so Dropped and the
// SDU-denominated retransmission counter share a unit. (ACI counts
// cells; several dropped cells collapse into one lost frame.)
func TestTelemetryReconciliation(t *testing.T) {
	seed := baseSeed(t)
	lossy := []string{"loss", "burst", "partition", "mutate"}
	if testing.Short() {
		lossy = []string{"loss", "partition"}
	}
	for _, ec := range []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN} {
		for _, m := range models {
			for _, name := range lossy {
				sched, ok := ScheduleByName(name)
				if !ok {
					t.Fatalf("schedule %q missing from roster", name)
				}
				cfg := Config{
					ErrCtl: ec, FlowCtl: flowctl.Credit, Transport: transport.HPI,
					FastPath: m.fastPath, Sharded: m.sharded,
					Schedule: sched, Seed: seed,
				}
				t.Run("reconcile/"+cfg.Name(), func(t *testing.T) {
					t.Parallel()
					rep, err := RunReport(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.DataPathKnown {
						t.Fatal("HPI run reported no data-path impairment stats")
					}
					retrans := rep.Telemetry.Counters["errctl.send.retransmit_sdus_total"]
					if retrans < rep.DataPath.Dropped {
						t.Fatalf("telemetry saw %d retransmitted SDUs but the link dropped %d data packets (injector stats: %+v)",
							retrans, rep.DataPath.Dropped, rep.DataPath)
					}
				})
			}
		}
	}
}
