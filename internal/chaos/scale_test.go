package chaos

import (
	"math"
	"testing"
)

// TestScaledPreservesPerSDUPressure pins the cell-level scaling: a
// schedule applied per ATM cell must exert roughly the same per-SDU
// pressure as the same schedule applied per packet — otherwise the
// matrix compares modes under unequal conditions and the ACI runs
// drift toward wholesale loss.
func TestScaledPreservesPerSDUPressure(t *testing.T) {
	loss, ok := ScheduleByName("loss")
	if !ok {
		t.Fatal("loss schedule missing")
	}
	perSDU := loss.Phases[0].Imp.Burst.LossGood
	scaled := loss.scaled()
	perCell := scaled[0].Imp.Burst.LossGood
	// A frame of cellsPerSDU cells survives iff every cell does.
	frameLoss := 1 - math.Pow(1-perCell, cellsPerSDU)
	if math.Abs(frameLoss-perSDU) > 1e-9 {
		t.Errorf("cell-level loss %.5f gives per-SDU loss %.5f, want %.5f", perCell, frameLoss, perSDU)
	}

	burst, ok := ScheduleByName("burst")
	if !ok {
		t.Fatal("burst schedule missing")
	}
	b := burst.Phases[0].Imp.Burst
	sb := burst.scaled()[0].Imp.Burst
	// Burst entry per SDU and burst dwell in SDUs must both carry
	// over: both transition probabilities divide by cellsPerSDU.
	if got, want := sb.PGoodBad, b.PGoodBad/cellsPerSDU; math.Abs(got-want) > 1e-12 {
		t.Errorf("scaled PGoodBad = %v, want %v", got, want)
	}
	if got, want := sb.PBadGood, b.PBadGood/cellsPerSDU; math.Abs(got-want) > 1e-12 {
		t.Errorf("scaled PBadGood = %v, want %v", got, want)
	}
	// Loss density inside a burst stays full strength: an unscaled bad
	// state is what makes a burst a burst.
	if sb.LossBad != b.LossBad {
		t.Errorf("scaled LossBad = %v, want %v unchanged", sb.LossBad, b.LossBad)
	}

	// Phase lengths stretch so partitions swallow the same number of
	// SDUs.
	part, _ := ScheduleByName("partition")
	if got, want := part.scaled()[1].Packets, part.Phases[1].Packets*cellsPerSDU; got != want {
		t.Errorf("scaled partition phase = %d cells, want %d", got, want)
	}
}
