package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ncs/internal/core"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/group"
	"ncs/internal/mcast"
	"ncs/internal/netsim"
	"ncs/internal/transport"
)

// CollectiveConfig selects one cell of the collective workload axis: a
// group of members over impaired HPI links, running the full collective
// repertoire under one named schedule.
type CollectiveConfig struct {
	// ErrCtl is the per-connection error control; reliable modes must
	// push every collective through the schedule.
	ErrCtl errctl.Algorithm
	// FlowCtl is the per-connection flow control.
	FlowCtl flowctl.Algorithm
	// Alg selects the multicast algorithm for the group's collectives.
	Alg mcast.Algorithm
	// Sharded drives the mesh connections from the member systems'
	// shard pools instead of per-connection threads.
	Sharded bool
	// Members is the group size; default 4.
	Members int
	// Schedule is applied to every mesh link's data path (control
	// stays clean, per the paper's separated control plane).
	Schedule Schedule
	// Seed drives the payload generator and every link RNG; zero means
	// seed 1.
	Seed int64
	// Deadline bounds each collective operation; default 20s (it must
	// ride out a partition that heals only under retransmission
	// pressure).
	Deadline time.Duration
	// ChunkSize is the broadcast pipelining unit; default 700 bytes so
	// ordinary payloads exercise the chunk pipeline.
	ChunkSize int
}

func (c CollectiveConfig) withDefaults() CollectiveConfig {
	if c.Members <= 0 {
		c.Members = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = recvDeadline
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 700
	}
	return c
}

// Name is the subtest-style replay coordinate of the combination.
func (c CollectiveConfig) Name() string {
	model := "threaded"
	if c.Sharded {
		model = "sharded"
	}
	return fmt.Sprintf("%v/%v/%v/%s/%s/seed%d",
		c.Alg, c.ErrCtl, c.FlowCtl, model, c.Schedule.Name, c.Seed)
}

func (c CollectiveConfig) violation(format string, args ...any) error {
	return fmt.Errorf("chaos collective %s: %s", c.Name(), fmt.Sprintf(format, args...))
}

// scriptDeadlineWindows is how many per-operation deadline windows the
// script can legitimately consume back to back: its 9 collective calls
// expand to 13 deadline-bounded operations (Barrier, AllGather,
// ReduceScatter, and AllReduce are each two engine operations). The
// watchdog allows all of them to run to their deadline before calling
// the run hung.
const scriptDeadlineWindows = 13

// collectiveWatchdogGrace pads the watchdog beyond the deadline
// windows: a run that outlives every per-operation deadline by this
// much has broken the completes-or-deadlines contract somewhere the
// deadline plumbing does not reach.
const collectiveWatchdogGrace = 40 * time.Second

// RunCollective builds the group over impaired links and runs the full
// collective repertoire — Broadcast, Reduce, Barrier, Scatter, Gather,
// AllGather, ReduceScatter, AllToAll, AllReduce — asserting that every
// operation completes with exact results (reliable error control
// recovering underneath) or fails by its deadline; nothing may hang.
// It returns nil on conformance.
func RunCollective(cfg CollectiveConfig) error {
	cfg = cfg.withDefaults()
	n := cfg.Members
	nw := core.NewNetwork()
	defer nw.Close()

	opts := core.Options{
		Interface:    transport.HPI,
		ErrorControl: cfg.ErrCtl,
		FlowControl:  cfg.FlowCtl,
		SDUSize:      harnessSDU,
		AckTimeout:   harnessAckTimeout,
		HPILink: &netsim.Params{
			Delay:    100 * time.Microsecond,
			Seed:     cfg.Seed,
			Schedule: cfg.Schedule.Phases,
		},
	}
	if cfg.Sharded {
		opts.Runtime = core.RuntimeSharded
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("chaos-coll-%d", i)
	}
	groups, err := group.BuildConfig(nw, names, opts, group.Config{
		Algorithm: cfg.Alg,
		Deadline:  cfg.Deadline,
		ChunkSize: cfg.ChunkSize,
	})
	if err != nil {
		return fmt.Errorf("chaos collective %s: build: %w", cfg.Name(), err)
	}
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()

	errs := make([]error, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i, g := range groups {
			wg.Add(1)
			go func(i int, g *group.Group) {
				defer wg.Done()
				errs[i] = cfg.script(g)
			}(i, g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(scriptDeadlineWindows*cfg.Deadline + collectiveWatchdogGrace):
		return cfg.violation("run hung past every operation deadline")
	}
	for i, err := range errs {
		if err != nil {
			return cfg.violation("rank %d: %v", i, err)
		}
	}
	return nil
}

// script runs one member's side of the scripted collective sequence,
// verifying every result byte for byte. Payload sizes straddle the
// chunk pipeline and the multi-SDU reassembly paths.
func (c CollectiveConfig) script(g *group.Group) error {
	n := g.Size()
	r := g.Rank()
	rng := rand.New(rand.NewSource(c.Seed))
	bcast := make([]byte, 1+rng.Intn(2500))
	rng.Read(bcast)
	concat := func(a, b []byte) []byte {
		out := make([]byte, 0, len(a)+len(b))
		out = append(out, a...)
		return append(out, b...)
	}

	// Broadcast from a non-zero root: exact bytes everywhere.
	var msg []byte
	if r == 1%n {
		msg = bcast
	}
	got, err := g.Broadcast(1%n, msg)
	if err != nil {
		return fmt.Errorf("broadcast: %w", err)
	}
	if !bytes.Equal(got, bcast) {
		return fmt.Errorf("broadcast: corrupted payload (%d bytes, want %d)", len(got), len(bcast))
	}

	// Reduce: strict rank order under reordering links.
	want := ""
	for i := 0; i < n; i++ {
		want += fmt.Sprintf("<%d>", i)
	}
	res, err := g.Reduce(2%n, []byte(fmt.Sprintf("<%d>", r)), concat)
	if err != nil {
		return fmt.Errorf("reduce: %w", err)
	}
	if r == 2%n && string(res) != want {
		return fmt.Errorf("reduce: %q, want %q", res, want)
	}

	if err := g.Barrier(); err != nil {
		return fmt.Errorf("barrier: %w", err)
	}

	// Scatter + Gather round trip through the bundle forwarding.
	var parts [][]byte
	if r == 0 {
		parts = make([][]byte, n)
		for i := range parts {
			parts[i] = bytes.Repeat([]byte{byte(i + 1)}, 64*(i+1))
		}
	}
	part, err := g.Scatter(0, parts)
	if err != nil {
		return fmt.Errorf("scatter: %w", err)
	}
	if wantPart := bytes.Repeat([]byte{byte(r + 1)}, 64*(r+1)); !bytes.Equal(part, wantPart) {
		return fmt.Errorf("scatter: rank %d part mismatch", r)
	}
	gathered, err := g.Gather(n-1, part)
	if err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	if r == n-1 {
		for i, p := range gathered {
			if !bytes.Equal(p, bytes.Repeat([]byte{byte(i + 1)}, 64*(i+1))) {
				return fmt.Errorf("gather: part %d mismatch", i)
			}
		}
	}

	// AllGather: every contribution lands everywhere.
	all, err := g.AllGather([]byte(fmt.Sprintf("ag%d", r)))
	if err != nil {
		return fmt.Errorf("allgather: %w", err)
	}
	for src, p := range all {
		if want := fmt.Sprintf("ag%d", src); string(p) != want {
			return fmt.Errorf("allgather: slot %d = %q, want %q", src, p, want)
		}
	}

	// ReduceScatter: rank-ordered per-slot combine.
	vec := make([][]byte, n)
	for i := range vec {
		vec[i] = []byte(fmt.Sprintf("(%d:%d)", r, i))
	}
	slot, err := g.ReduceScatter(vec, concat)
	if err != nil {
		return fmt.Errorf("reducescatter: %w", err)
	}
	wantSlot := ""
	for i := 0; i < n; i++ {
		wantSlot += fmt.Sprintf("(%d:%d)", i, r)
	}
	if string(slot) != wantSlot {
		return fmt.Errorf("reducescatter: %q, want %q", slot, wantSlot)
	}

	// AllToAll: personalised total exchange.
	a2a := make([][]byte, n)
	for i := range a2a {
		a2a[i] = []byte(fmt.Sprintf("%d>%d", r, i))
	}
	exch, err := g.AllToAll(a2a)
	if err != nil {
		return fmt.Errorf("alltoall: %w", err)
	}
	for src, p := range exch {
		if want := fmt.Sprintf("%d>%d", src, r); string(p) != want {
			return fmt.Errorf("alltoall: slot %d = %q, want %q", src, p, want)
		}
	}

	// AllReduce closes the script: result identical on every member.
	fin, err := g.AllReduce([]byte(fmt.Sprintf("<%d>", r)), concat)
	if err != nil {
		return fmt.Errorf("allreduce: %w", err)
	}
	if string(fin) != want {
		return fmt.Errorf("allreduce: %q, want %q", fin, want)
	}
	return nil
}
