package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ncs/internal/core"
)

// The streams axis: several streams deliver concurrently over one
// impaired connection — the stream-0 flow plus sibling streams opened
// with OpenStream — while one extra stream is deliberately never
// consumed. The contracts:
//
//   - every consumed flow (stream 0 and each sibling) delivers its
//     sequence exactly once, in order, byte-identical, Lost == 0 —
//     per-stream reliability holds under every schedule;
//   - the unconsumed stream stalls nobody: its messages arrive and
//     park on its own credit window while the siblings' sequences
//     complete (no cross-stream head-of-line blocking);
//   - teardown is clean: the parked, never-read messages release
//     their buffers at Close (the package TestMain audits pooled
//     buffers, goroutines, and pending flow-control timers).

// streamSiblings is how many extra consumed streams run beside
// stream 0; one more stream runs unconsumed.
const streamSiblings = 2

// RunStreams pushes concurrent per-stream sequences through the
// combination and checks the multi-stream delivery contracts. Only
// reliable error-control modes run: the axis asserts exactly-once
// delivery per stream.
func RunStreams(cfg Config) error {
	cfg = cfg.withDefaults()
	if !cfg.reliable() {
		return fmt.Errorf("chaos: streams axis asserts exactly-once delivery; error control %v cannot", cfg.ErrCtl)
	}
	nw := core.NewNetwork()
	defer nw.Close()
	conn, peer, err := cfg.connect(nw)
	if err != nil {
		return err
	}
	defer conn.Close()
	defer peer.Close()

	// Seed-derived sequences, one per consumed flow; flows[0] rides
	// stream 0 through the plain Send/Recv API.
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([][][]byte, streamSiblings+1)
	for i := range flows {
		msgs := make([][]byte, cfg.Messages)
		for j := range msgs {
			n := 1 + rng.Intn(cfg.MaxMsg)
			m := make([]byte, n)
			rng.Read(m)
			msgs[j] = m
		}
		flows[i] = msgs
	}

	sts := make([]*core.Stream, streamSiblings)
	for i := range sts {
		if sts[i], err = conn.OpenStream(); err != nil {
			return err
		}
	}
	// The unconsumed stream. Its messages are single-SDU and fit the
	// initial credit window, so its sender completes on arrival acks
	// alone — then the messages sit parked, unread, until Close reaps
	// them.
	idle, err := conn.OpenStream()
	if err != nil {
		return err
	}

	sendErr := make(chan error, streamSiblings+2)
	sender := func(name string, send func([]byte) error, msgs [][]byte) {
		for i, m := range msgs {
			if err := send(m); err != nil {
				sendErr <- cfg.violation("%s send %d/%d: %v", name, i+1, len(msgs), err)
				return
			}
		}
		sendErr <- nil
	}
	go sender("stream0", conn.Send, flows[0])
	for i, st := range sts {
		go sender(fmt.Sprintf("stream%d", st.ID()), st.Send, flows[i+1])
	}
	idleMsg := make([]byte, harnessSDU/2)
	rng.Read(idleMsg)
	go sender("idle", idle.Send, [][]byte{idleMsg, idleMsg, idleMsg})

	// Receiver side: route accepted streams by ID (the harness holds
	// both ends), drain each consumed flow concurrently, and leave the
	// idle stream untouched.
	recvErr := make(chan error, streamSiblings+1)
	go func() { recvErr <- cfg.recvReliable(peer, flows[0]) }()
	acceptDone := make(chan error, 1)
	go func() {
		for k := 0; k < streamSiblings+1; k++ {
			st, err := peer.AcceptStreamTimeout(recvDeadline)
			if err != nil {
				acceptDone <- cfg.violation("accept stream %d/%d: %v", k+1, streamSiblings+1, err)
				return
			}
			if st.ID() == idle.ID() {
				continue
			}
			for i := range sts {
				if st.ID() == sts[i].ID() {
					go func(st *core.Stream, expected [][]byte) {
						recvErr <- cfg.drainStream(st, expected)
					}(st, flows[i+1])
				}
			}
		}
		acceptDone <- nil
	}()

	// Collect everything under one deadline. A sibling that cannot
	// finish while the idle stream sits parked is exactly the
	// cross-stream HOL blocking this axis exists to catch.
	deadline := time.After(2 * recvDeadline)
	var firstErr error
	collect := func(ch <-chan error, n int, what string) {
		for k := 0; k < n; k++ {
			select {
			case err := <-ch:
				if err != nil && firstErr == nil {
					firstErr = err
				}
			case <-deadline:
				if firstErr == nil {
					firstErr = cfg.violation("%s hung with the idle stream parked", what)
				}
				return
			}
		}
	}
	collect(acceptDone, 1, "stream accept")
	collect(recvErr, streamSiblings+1, "receivers")
	collect(sendErr, streamSiblings+2, "senders")
	return firstErr
}

// drainStream asserts one stream's exactly-once, in-order,
// byte-identical delivery, mirroring recvReliable for stream 0.
func (c Config) drainStream(st *core.Stream, expected [][]byte) error {
	for i, want := range expected {
		if c.ConsumerDelay > 0 {
			time.Sleep(c.ConsumerDelay)
		}
		m, err := st.RecvMessageTimeout(recvDeadline)
		if err != nil {
			return c.violation("stream %d message %d/%d never delivered: %v", st.ID(), i+1, len(expected), err)
		}
		if m.Lost != 0 {
			return c.violation("stream %d message %d delivered with Lost=%d on a reliable connection", st.ID(), i+1, m.Lost)
		}
		if !bytes.Equal(m.Data, want) {
			return c.violation("stream %d message %d corrupted or out of order: got %d bytes, want %d",
				st.ID(), i+1, len(m.Data), len(want))
		}
	}
	// Nothing may trail the sequence on this stream — a duplicate here
	// is a session delivered twice.
	if m, err := st.RecvMessageTimeout(100 * time.Millisecond); err == nil {
		return c.violation("stream %d: extra %d-byte message after the full sequence (duplicate delivery)", st.ID(), len(m.Data))
	} else if !errors.Is(err, core.ErrRecvTimeout) && !errors.Is(err, core.ErrStreamClosed) {
		return c.violation("stream %d: post-sequence receive failed: %v", st.ID(), err)
	}
	return nil
}
