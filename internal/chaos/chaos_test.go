package chaos

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"ncs/internal/buf"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/mcast"
	"ncs/internal/transport"
)

// TestMain audits the whole matrix for leaks: every run closes its
// network, so once the tests finish the process must quiesce back to
// the pre-test goroutine count with zero pooled buffers outstanding
// and zero pending flow-control timers. A goroutine left behind is a
// connection thread that survived Close; a buffer left behind is a
// retained receive reference nothing will release — including one
// parked on a stream nobody consumed; a pending timer is a credit
// refresh (connection- or stream-level) that Close failed to drain.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if err := awaitQuiescence(baseline, 10*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

func awaitQuiescence(baseline int, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		goroutines := runtime.NumGoroutine()
		bufs := buf.Outstanding()
		timers := flowctl.PendingTimers()
		if goroutines <= baseline && bufs == 0 && timers == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<20)
			stack = stack[:runtime.Stack(stack, true)]
			return fmt.Errorf("leak audit: %d goroutines (baseline %d), %d pooled buffer refs outstanding, %d flow-control timers pending\n%s",
				goroutines, baseline, bufs, timers, stack)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// baseSeed lets a failing run be replayed under a different seed
// sweep: NCS_CHAOS_SEED=7 go test ./internal/chaos -run <subtest>.
func baseSeed(t *testing.T) int64 {
	if s := os.Getenv("NCS_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("NCS_CHAOS_SEED=%q: %v", s, err)
		}
		return n
	}
	return 1
}

// model is one point on the matrix's runtime axis: the paper's
// per-connection threads, the §4.2 fast path, or the shard pool.
type model struct {
	name     string
	fastPath bool
	sharded  bool
}

var (
	errctls  = []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN, errctl.None}
	flowctls = []flowctl.Algorithm{flowctl.None, flowctl.Credit, flowctl.Window, flowctl.Rate}
	models   = []model{
		{name: "threaded"},
		{name: "fastpath", fastPath: true},
		{name: "sharded", sharded: true},
	}
)

// matrixFlowctls trims the flow-control axis in -short mode (the CI
// smoke run): Credit is the paper's default and None the bypass; the
// full axis runs in the regular -race matrix.
func matrixFlowctls() []flowctl.Algorithm {
	if testing.Short() {
		return []flowctl.Algorithm{flowctl.None, flowctl.Credit}
	}
	return flowctls
}

// TestChaosMatrix sweeps the full protocol matrix — error control ×
// flow control × impairable transport × thread model — through every
// named impairment schedule, plus the clean schedule over SCI (a real
// socket takes no injected faults). Subtest names are replay
// coordinates: the seed pins every stochastic decision in the run.
func TestChaosMatrix(t *testing.T) {
	seed := baseSeed(t)
	messages := 6
	if testing.Short() {
		messages = 3
	}
	for _, ec := range errctls {
		for _, fc := range matrixFlowctls() {
			for _, m := range models {
				for _, sched := range Schedules {
					for _, tr := range []transport.Kind{transport.HPI, transport.ACI, transport.UDP} {
						cfg := Config{
							ErrCtl: ec, FlowCtl: fc, Transport: tr,
							FastPath: m.fastPath, Sharded: m.sharded,
							Schedule: sched, Seed: seed, Messages: messages,
						}
						t.Run(cfg.Name(), func(t *testing.T) {
							t.Parallel()
							if err := Run(cfg); err != nil {
								t.Fatal(err)
							}
						})
					}
				}
				// SCI: conformance baseline only (no fault injection on
				// a real TCP socket).
				cfg := Config{
					ErrCtl: ec, FlowCtl: fc, Transport: transport.SCI,
					FastPath: m.fastPath, Sharded: m.sharded,
					Schedule: Schedule{Name: "clean"}, Seed: seed, Messages: messages,
				}
				t.Run(cfg.Name(), func(t *testing.T) {
					t.Parallel()
					if err := Run(cfg); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestRPCContract runs the RPC layer over a hostile subset of the
// matrix: reliable calls must complete correctly through every
// schedule; unreliable calls must fail by their deadline, promptly.
func TestRPCContract(t *testing.T) {
	seed := baseSeed(t)
	calls := 5
	if testing.Short() {
		calls = 3
	}
	for _, ec := range []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN, errctl.None} {
		for _, m := range models {
			for _, sched := range Schedules {
				cfg := Config{
					ErrCtl: ec, FlowCtl: flowctl.Credit, Transport: transport.HPI,
					FastPath: m.fastPath, Sharded: m.sharded,
					Schedule: sched, Seed: seed, Messages: calls,
				}
				t.Run("rpc/"+cfg.Name(), func(t *testing.T) {
					t.Parallel()
					if err := RunRPC(cfg); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// matrixCollectiveSchedules trims the schedule axis in -short mode
// (the CI smoke run); the full roster runs in the regular -race matrix.
func matrixCollectiveSchedules() []Schedule {
	if testing.Short() {
		out := make([]Schedule, 0, 3)
		for _, name := range []string{"clean", "loss", "partition"} {
			s, ok := ScheduleByName(name)
			if !ok {
				panic("chaos: short collective schedule " + name + " missing from roster")
			}
			out = append(out, s)
		}
		return out
	}
	return Schedules
}

// TestCollectiveContract is the collective workload axis: the full
// group repertoire — broadcast, reduce, barrier, scatter, gather,
// allgather, reduce-scatter, all-to-all, allreduce — over impaired
// mesh links, for both multicast algorithms, both reliable
// error-control modes, and both runtimes. Every operation must
// complete with exact results or fail by its deadline; nothing may
// hang. Subtest names are replay coordinates.
func TestCollectiveContract(t *testing.T) {
	seed := baseSeed(t)
	for _, ec := range []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN} {
		for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
			for _, sharded := range []bool{false, true} {
				for _, sched := range matrixCollectiveSchedules() {
					cfg := CollectiveConfig{
						ErrCtl: ec, FlowCtl: flowctl.Credit, Alg: alg,
						Sharded: sharded, Schedule: sched, Seed: seed,
					}
					t.Run("collective/"+cfg.Name(), func(t *testing.T) {
						t.Parallel()
						if err := RunCollective(cfg); err != nil {
							t.Fatal(err)
						}
					})
				}
			}
		}
	}
}

// matrixStreamSchedules trims the schedule axis in -short mode (the
// CI smoke run); the full roster runs in the regular -race matrix.
func matrixStreamSchedules() []Schedule {
	if testing.Short() {
		out := make([]Schedule, 0, 3)
		for _, name := range []string{"clean", "loss", "reorder"} {
			s, ok := ScheduleByName(name)
			if !ok {
				panic("chaos: short streams schedule " + name + " missing from roster")
			}
			out = append(out, s)
		}
		return out
	}
	return Schedules
}

// TestStreamsContract is the multi-stream delivery axis: stream 0 plus
// sibling streams delivering concurrently — and one stream nobody
// consumes — over every impairment schedule, both impairable SDU-level
// transports, and all three thread models. Per-stream sequences must
// arrive exactly once, in order, byte-identical, and the unconsumed
// stream must stall neither its siblings nor teardown. Subtest names
// are replay coordinates.
func TestStreamsContract(t *testing.T) {
	seed := baseSeed(t)
	messages := 5
	if testing.Short() {
		messages = 3
	}
	for _, m := range models {
		for _, sched := range matrixStreamSchedules() {
			for _, tr := range []transport.Kind{transport.HPI, transport.UDP} {
				cfg := Config{
					ErrCtl: errctl.SelectiveRepeat, FlowCtl: flowctl.Credit, Transport: tr,
					FastPath: m.fastPath, Sharded: m.sharded,
					Schedule: sched, Seed: seed, Messages: messages,
				}
				t.Run("streams/"+cfg.Name(), func(t *testing.T) {
					t.Parallel()
					if err := RunStreams(cfg); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestSCIRejectsInjectedSchedule pins the harness's honesty: a real
// socket cannot be impaired, so asking for it must error rather than
// silently running clean.
func TestSCIRejectsInjectedSchedule(t *testing.T) {
	sched, ok := ScheduleByName("burst")
	if !ok {
		t.Fatal("burst schedule missing")
	}
	cfg := Config{
		ErrCtl: errctl.SelectiveRepeat, FlowCtl: flowctl.None,
		Transport: transport.SCI, Schedule: sched,
	}
	if err := Run(cfg); err == nil {
		t.Fatal("SCI accepted an impairment schedule")
	}
}

// TestScheduleRoster pins the named schedules the matrix must cover.
func TestScheduleRoster(t *testing.T) {
	for _, name := range []string{"clean", "loss", "duplicate", "reorder", "burst", "pressure", "partition", "mutate"} {
		if _, ok := ScheduleByName(name); !ok {
			t.Errorf("schedule %q missing from roster", name)
		}
	}
	if _, ok := ScheduleByName("nope"); ok {
		t.Error("unknown schedule resolved")
	}
}
