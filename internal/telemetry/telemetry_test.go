package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// Concurrency: parallel writers on every instrument kind vs snapshot
// readers. Run under -race; correctness here is "no race, totals add
// up once the writers stop".
func TestConcurrentWritersAndReaders(t *testing.T) {
	c := NewCounter("test.concurrent.ops_total")
	g := NewGauge("test.concurrent.level")
	h := NewHistogram("test.concurrent.lat_ns")

	const writers = 8
	const perWriter = 10000

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // snapshot reader racing the writers
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := Capture()
				if v := s.Counters["test.concurrent.ops_total"]; v < 0 {
					t.Errorf("negative counter in snapshot: %d", v)
					return
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				c.IncAt(uint32(w))
				g.Add(1)
				h.Observe(int64(i))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Fatalf("gauge = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

func TestCounterStriping(t *testing.T) {
	c := NewCounter("test.stripe.ops_total")
	for hint := uint32(0); hint < 32; hint++ {
		c.IncAt(hint)
	}
	c.Add(10)
	if got := c.Value(); got != 42 {
		t.Fatalf("striped counter = %d, want 42", got)
	}
}

// Histogram bucket boundaries: bucket i is exactly the values with bit
// length i — 0 → bucket 0, [2^(i-1), 2^i) → bucket i.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("test.hist.bounds_ns")
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{-5, 0}, // clamps to 0
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 38, histBuckets - 1},
		{1<<62 + 5, histBuckets - 1}, // far past the last bucket: clamps
	}
	for _, tc := range cases {
		h.Observe(tc.v)
		s := h.snapshot()
		if s.Buckets[tc.bucket] == 0 {
			t.Errorf("Observe(%d): bucket %d not hit (snapshot %+v)", tc.v, tc.bucket, s.Buckets)
		}
	}
	s := h.snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	// Upper bounds: bucket 0 holds only 0; bucket i tops out at 2^i-1.
	if got := s.BucketUpper(0); got != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", got)
	}
	if got := s.BucketUpper(3); got != 7 {
		t.Errorf("BucketUpper(3) = %d, want 7", got)
	}
	if got := s.BucketUpper(11); got != 2047 {
		t.Errorf("BucketUpper(11) = %d, want 2047", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	c := NewCounter("test.delta.ops_total")
	h := NewHistogram("test.delta.lat_ns")
	c.Add(5)
	h.Observe(100)
	before := Capture()
	c.Add(7)
	h.Observe(100)
	h.Observe(200)
	after := Capture()
	d := after.Delta(before)
	if got := d.Counters["test.delta.ops_total"]; got != 7 {
		t.Fatalf("delta counter = %d, want 7", got)
	}
	if got := d.Histograms["test.delta.lat_ns"].Count; got != 2 {
		t.Fatalf("delta histogram count = %d, want 2", got)
	}
	if got := d.Histograms["test.delta.lat_ns"].Sum; got != 300 {
		t.Fatalf("delta histogram sum = %d, want 300", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCounter("test.prom.ops_total")
	g := NewGauge("test.prom.level")
	h := NewHistogram("test.prom.lat_ns")
	c.Add(3)
	g.Set(-2)
	h.Observe(5)
	var sb strings.Builder
	if err := Capture().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE ncs_test_prom_ops_total counter\nncs_test_prom_ops_total 3\n",
		"# TYPE ncs_test_prom_level gauge\nncs_test_prom_level -2\n",
		"# TYPE ncs_test_prom_lat_ns histogram\n",
		"ncs_test_prom_lat_ns_bucket{le=\"7\"} 1\n",
		"ncs_test_prom_lat_ns_bucket{le=\"+Inf\"} 1\n",
		"ncs_test_prom_lat_ns_sum 5\n",
		"ncs_test_prom_lat_ns_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNamingConventionEnforced(t *testing.T) {
	for _, bad := range []string{"", "flat", "two.segments", "Upper.case.metric", "has.a space.metric"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCounter(%q) did not panic", bad)
				}
			}()
			NewCounter(bad)
		}()
	}
	// Duplicate registration panics too.
	NewCounter("test.dup.ops_total")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		NewCounter("test.dup.ops_total")
	}()
}

func TestFuncGauge(t *testing.T) {
	v := int64(41)
	NewFuncGauge("test.func.level", func() int64 { return v })
	v = 42
	if got := Capture().Gauges["test.func.level"]; got != 42 {
		t.Fatalf("func gauge = %d, want 42", got)
	}
}

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(1, 8)
	tracer.Store(tr)
	defer DisableTracing()

	TraceStart(7, 3, 4096)
	TraceStamp(7, 3, StageStaged)
	TraceStamp(7, 3, StageWireOut)
	TraceStamp(7, 3, StageWireIn)
	TraceStamp(7, 3, StageReassembled)
	TraceFinish(7, 3)

	got := TakeTraces()
	if len(got) != 1 {
		t.Fatalf("TakeTraces = %d records, want 1", len(got))
	}
	rec := got[0]
	if rec.ConnID != 7 || rec.Session != 3 || rec.Bytes != 4096 {
		t.Fatalf("trace identity = %+v", rec)
	}
	var prev int64
	for st := StageEnqueued; st < numStages; st++ {
		if rec.Stamp[st] == 0 {
			t.Fatalf("stage %v not stamped: %+v", st, rec)
		}
		if rec.Stamp[st] < prev {
			t.Fatalf("stage %v stamp went backwards: %+v", st, rec)
		}
		prev = rec.Stamp[st]
	}
	// Drained: a second take is empty.
	if extra := TakeTraces(); len(extra) != 0 {
		t.Fatalf("second TakeTraces = %d records, want 0", len(extra))
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 64)
	tracer.Store(tr)
	defer DisableTracing()
	for i := uint32(0); i < 40; i++ {
		TraceStart(1, i, 10)
		TraceFinish(1, i)
	}
	got := TakeTraces()
	if len(got) != 10 {
		t.Fatalf("sampled %d traces of 40 sends at every=4, want 10", len(got))
	}
}

func TestTracerOffIsFree(t *testing.T) {
	DisableTracing()
	// Must not panic, allocate, or record anything.
	TraceStart(1, 1, 1)
	TraceStamp(1, 1, StageWireOut)
	TraceFinish(1, 1)
	if got := TakeTraces(); got != nil {
		t.Fatalf("TakeTraces with tracing off = %v, want nil", got)
	}
	n := testing.AllocsPerRun(100, func() {
		TraceStart(2, 2, 64)
		TraceStamp(2, 2, StageStaged)
		TraceFinish(2, 2)
	})
	if n != 0 {
		t.Fatalf("trace helpers allocate %.1f allocs/op when off, want 0", n)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := NewTracer(1, 4)
	tracer.Store(tr)
	defer DisableTracing()
	for i := uint32(1); i <= 6; i++ {
		TraceStart(9, i, int(i))
		TraceFinish(9, i)
	}
	got := TakeTraces()
	if len(got) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(got))
	}
	// Oldest first: sessions 3,4,5,6 survive.
	for i, rec := range got {
		if want := uint32(i + 3); rec.Session != want {
			t.Fatalf("ring[%d].Session = %d, want %d", i, rec.Session, want)
		}
	}
}

func TestHotPathAllocs(t *testing.T) {
	c := NewCounter("test.alloc.ops_total")
	g := NewGauge("test.alloc.level")
	h := NewHistogram("test.alloc.lat_ns")
	n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.AddAt(3, 2)
		g.Add(1)
		h.Observe(1234)
	})
	if n != 0 {
		t.Fatalf("instrument hot path allocates %.1f allocs/op, want 0", n)
	}
}
