package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two histogram buckets. Bucket
// i holds observations whose bit length is i — bucket 0 is exactly 0,
// bucket i (i ≥ 1) covers [2^(i-1), 2^i). 40 buckets span nanosecond
// latencies past 9 minutes and depths past 500 billion; anything
// larger lands in the final bucket.
const histBuckets = 40

// Histogram records a distribution in fixed power-of-two buckets.
// Observe is three atomic adds: no locks, no allocation, no bucket
// search — the bucket index is the bit length of the value.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since start — the
// latency-instrument form.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Name returns the registered instrument name.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running total of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is the plain-data reading of one histogram.
type HistogramSnapshot struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Buckets [histBuckets]int64 `json:"buckets"`
}

// BucketUpper returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i - 1 for the rest.
func (HistogramSnapshot) BucketUpper(i int) int64 { return bucketUpper(i) }

// Mean returns the average observation, or 0 with no observations.
func (h HistogramSnapshot) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}
