package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceStage is one point in a message's life across the stack.
type TraceStage int

// The lifecycle stages, in the order a message crosses them. The first
// three are stamped by the sender, the last three by the receiver; on
// HPI both run in one process so a completed Trace spans the full path.
const (
	// StageEnqueued: the message entered the send path.
	StageEnqueued TraceStage = iota
	// StageStaged: the first SDU was segmented and admitted by flow
	// control (handed to the Send Thread or shard).
	StageStaged
	// StageWireOut: the first SDU left for the transport.
	StageWireOut
	// StageWireIn: the first SDU surfaced from the transport at the
	// receiver.
	StageWireIn
	// StageReassembled: the final SDU arrived and the message was
	// reassembled.
	StageReassembled
	// StageDelivered: the message was handed to the application's
	// receive queue or inbox.
	StageDelivered

	numStages
)

// String implements fmt.Stringer.
func (s TraceStage) String() string {
	switch s {
	case StageEnqueued:
		return "enqueued"
	case StageStaged:
		return "staged"
	case StageWireOut:
		return "wire-out"
	case StageWireIn:
		return "wire-in"
	case StageReassembled:
		return "reassembled"
	case StageDelivered:
		return "delivered"
	default:
		return "unknown"
	}
}

// Trace is the completed lifecycle record of one sampled message.
// Stamps are nanoseconds on the tracer's monotonic clock; a zero stamp
// means the stage was never reached (e.g. wire-in stamps are only
// taken when the receiving endpoint runs in the same process).
type Trace struct {
	// ConnID is the connection the message travelled on. Both
	// endpoints of a connection share the ID, so sender- and
	// receiver-side stamps meet in one record.
	ConnID uint32
	// Session is the message's reassembly session number.
	Session uint32
	// Bytes is the message payload length.
	Bytes int
	// Stamp holds one monotonic nanosecond reading per TraceStage.
	Stamp [numStages]int64
}

// Stage returns the stamp for one stage (0 if never reached).
func (t Trace) Stage(s TraceStage) int64 { return t.Stamp[s] }

// traceSlots is the size of the in-flight slot table. Sampling keeps
// the population small; collisions simply drop the sample.
const traceSlots = 64

// traceProbes is how many slots a key probes before giving up.
const traceProbes = 4

// slot is one in-flight trace. The key claims the slot (CAS from 0);
// stamps from different goroutines land in distinct atomic cells, and
// finish drains them into a Trace under the ring mutex.
type slot struct {
	key    atomic.Uint64
	bytes  atomic.Int64
	stamps [numStages]atomic.Int64
}

// Tracer samples message lifecycles: every Nth Start claims a slot,
// stamp sites write monotonic timestamps into it, and Finish moves the
// completed record into a fixed ring. One Tracer is installed globally
// (EnableTracing); all stamp helpers are free when none is.
type Tracer struct {
	every uint64
	n     atomic.Uint64
	base  time.Time
	slots [traceSlots]slot

	mu     sync.Mutex
	ring   []Trace
	next   int
	filled bool
}

// NewTracer builds a tracer sampling one in every messages (minimum
// 1), retaining up to capacity completed traces (default 256).
func NewTracer(every, capacity int) *Tracer {
	if every < 1 {
		every = 1
	}
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		every: uint64(every),
		base:  time.Now(),
		ring:  make([]Trace, capacity),
	}
}

func traceKey(connID, session uint32) uint64 {
	return uint64(connID)<<32 | uint64(session) | 1<<63 // bit 63 keeps keys nonzero
}

func (t *Tracer) now() int64 { return int64(time.Since(t.base)) }

// start claims a slot for the message if it is sampled.
func (t *Tracer) start(connID, session uint32, size int) {
	if t.n.Add(1)%t.every != 0 {
		return
	}
	key := traceKey(connID, session)
	idx := int(key % traceSlots)
	for p := 0; p < traceProbes; p++ {
		s := &t.slots[(idx+p)%traceSlots]
		if s.key.CompareAndSwap(0, key) {
			s.bytes.Store(int64(size))
			s.stamps[StageEnqueued].Store(t.now())
			return
		}
	}
	// Table full: drop the sample rather than block or allocate.
}

// stamp records a stage for the message if it is being traced.
func (t *Tracer) stamp(connID, session uint32, st TraceStage) {
	key := traceKey(connID, session)
	idx := int(key % traceSlots)
	for p := 0; p < traceProbes; p++ {
		s := &t.slots[(idx+p)%traceSlots]
		if s.key.Load() == key {
			if s.stamps[st].Load() == 0 {
				s.stamps[st].Store(t.now())
			}
			return
		}
	}
}

// finish stamps Delivered, moves the record into the ring, and frees
// the slot.
func (t *Tracer) finish(connID, session uint32) {
	key := traceKey(connID, session)
	idx := int(key % traceSlots)
	for p := 0; p < traceProbes; p++ {
		s := &t.slots[(idx+p)%traceSlots]
		if s.key.Load() != key {
			continue
		}
		s.stamps[StageDelivered].Store(t.now())
		rec := Trace{
			ConnID:  connID,
			Session: session,
			Bytes:   int(s.bytes.Load()),
		}
		for i := range rec.Stamp {
			rec.Stamp[i] = s.stamps[i].Load()
		}
		// Free the slot before publishing: stragglers stamping a stale
		// key find no slot and drop their write.
		for i := range s.stamps {
			s.stamps[i].Store(0)
		}
		s.key.Store(0)

		t.mu.Lock()
		t.ring[t.next] = rec
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
			t.filled = true
		}
		t.mu.Unlock()
		return
	}
}

// Take drains the completed traces accumulated so far, oldest first.
func (t *Tracer) Take() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Trace
	if t.filled {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	t.next = 0
	t.filled = false
	for i := range t.ring {
		t.ring[i] = Trace{}
	}
	return out
}

// ---------------------------------------------------------------------------
// The global tracer and the hot-path helpers the runtime calls.

var tracer atomic.Pointer[Tracer]

// EnableTracing installs a global lifecycle tracer sampling one in
// every messages and retaining up to capacity completed traces.
// It replaces any previous tracer (whose unread traces are lost).
func EnableTracing(every, capacity int) {
	tracer.Store(NewTracer(every, capacity))
}

// DisableTracing removes the global tracer; stamp sites revert to a
// nil-check.
func DisableTracing() { tracer.Store(nil) }

// TracingEnabled reports whether a global tracer is installed.
func TracingEnabled() bool { return tracer.Load() != nil }

// TakeTraces drains completed traces from the global tracer.
func TakeTraces() []Trace {
	t := tracer.Load()
	if t == nil {
		return nil
	}
	return t.Take()
}

// TraceStart marks a message entering the send path. All TraceX
// helpers are single atomic-load nil-checks when tracing is off.
func TraceStart(connID, session uint32, size int) {
	if t := tracer.Load(); t != nil {
		t.start(connID, session, size)
	}
}

// TraceStamp records a lifecycle stage for a possibly-traced message.
func TraceStamp(connID, session uint32, st TraceStage) {
	if t := tracer.Load(); t != nil {
		t.stamp(connID, session, st)
	}
}

// TraceFinish stamps Delivered and completes the record.
func TraceFinish(connID, session uint32) {
	if t := tracer.Load(); t != nil {
		t.finish(connID, session)
	}
}
