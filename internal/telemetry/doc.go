// Package telemetry is the unified observability layer for NCS: a
// zero-allocation metrics core (counters, gauges, latency histograms),
// an optional sampled message-lifecycle tracer, and snapshot/export
// plumbing that every subsystem reports through.
//
// The paper's evaluation hinges on knowing exactly where time goes
// inside the multithreaded pipeline — send thread, error/flow control,
// AAL5, wire (§4.3, Table I). This package is that visibility as a
// production feature rather than ad-hoc one-offs: instruments are
// registered once at package init, incremented with plain atomics on
// the hot path (no maps, no interface boxing, no allocation), and read
// by Capture, which walks the registry and materialises a Snapshot.
//
// # Instrument naming conventions
//
// Every instrument name has the form
//
//	layer.subsystem.metric
//
// where layer is the owning package (core, errctl, flowctl, buf, rpc,
// group, stream, transport), subsystem narrows it to a component (conn,
// shard, wheel, pool, recv, send, client, server, collective, window,
// credit, mux, udp), and
// metric is the measured quantity. Names are lowercase; words within a
// segment join with underscores. Conventions, following the Prometheus
// style:
//
//   - Monotonic counters end in _total: core.conn.sends_total.
//   - Quantities carry their unit as a suffix: _bytes, _ns.
//   - Gauges are instantaneous levels and carry no _total suffix:
//     buf.pool.outstanding, rpc.client.inflight.
//   - Histograms name the recorded quantity, with its unit suffix:
//     rpc.client.call_ns, core.send.coalesce_depth.
//
// Registration panics on a duplicate or ill-formed name, so a naming
// collision is caught by the first test that imports both packages.
//
// # The instrument catalogue
//
// Counters:
//
//	buf.pool.hit_total                 pooled buffer reused
//	buf.pool.miss_total                pool empty, buffer allocated
//	buf.pool.oversize_total            request above the largest tier
//	errctl.send.retransmit_sdus_total  SDUs retransmitted (SR + GBN)
//	errctl.gbn.nack_replay_total       go-back-N window replays
//	errctl.recv.dup_total              duplicate SDUs discarded
//	errctl.recv.out_of_order_total     out-of-order arrivals (GBN NACK)
//	flowctl.window.stall_total         window-sender admission stalls
//	flowctl.credit.wait_total          credit-sender admission waits
//	flowctl.credit.granted_total       credits advertised by receivers
//	flowctl.credit.consumed_total      credited arrivals at receivers
//	flowctl.credit.refill_total        standalone refill grant frames
//	flowctl.credit.piggyback_total     grants piggybacked on outgoing acks
//	flowctl.credit.resync_total        sender resync probes (wedge escape)
//	flowctl.send.blocked_ns_total      total ns senders spent blocked
//	core.conn.send_msgs_total          messages sent
//	core.conn.send_sdus_total          SDUs sent
//	core.conn.send_bytes_total         payload bytes sent
//	core.conn.recv_msgs_total          messages delivered
//	core.conn.recv_sdus_total          SDUs received
//	core.conn.recv_bytes_total         payload bytes received
//	core.recv.fastpath_total           single-SDU fastpath deliveries
//	core.recv.session_total            reassembly-session deliveries
//	core.shard.cycles_total            shard service cycles
//	core.shard.wakeups_total           shard doorbell wakeups
//	core.wheel.sweeps_total            timer-wheel slot sweeps
//	rpc.server.deadline_expired_total  calls expired before dispatch
//	stream.send.credit_wait_total      per-stream credit admission timeouts
//	stream.recv.hol_avoided_total      messages parked behind an unconsumed
//	                                   backlog (single-flow delivery would
//	                                   have head-of-line blocked here)
//	group.collective.chunks_total      pipelined broadcast chunks
//	group.collective.mismatch_total    ErrMismatch frames observed
//	group.collective.deadline_total    ErrDeadline collective failures
//	transport.udp.send_datagrams_total datagrams handed to the kernel
//	transport.udp.recv_datagrams_total datagrams received off the wire
//	transport.udp.send_syscalls_total  sendmmsg/sendto calls issued
//	transport.udp.recv_syscalls_total  recvmmsg/recvfrom calls issued
//	transport.udp.eagain_total         reader wakeups with empty socket
//	transport.udp.trunc_total          oversize datagrams truncated+dropped
//	transport.udp.demux_drop_total     datagrams for unknown channels
//	transport.udp.queue_drop_total     datagrams dropped on full recv queue
//
// Gauges:
//
//	buf.pool.outstanding               buffers checked out of the pools
//	core.shard.parked_conns            sharded conns parked on stalls
//	core.wheel.armed                   armed timer-wheel timers
//	rpc.client.inflight                calls awaiting replies
//	rpc.server.inflight                requests admitted, not replied
//	stream.mux.open                    streams currently open (all conns)
//
// Histograms (power-of-two buckets):
//
//	core.send.coalesce_depth           SDUs coalesced per shard batch
//	core.send.sendq_depth              send-queue occupancy at enqueue
//	transport.udp.send_batch_depth     datagrams per send syscall
//	transport.udp.recv_batch_depth     datagrams per receive syscall
//	flowctl.send.credit_wait_ns        time blocked awaiting credits
//	rpc.client.call_ns                 request→reply latency
//	group.collective.op_ns             collective operation latency
//
// # Lifecycle tracing
//
// EnableTracing arms a global sampled tracer; every Nth traced message
// gets monotonic stamps at the Enqueued → Staged → WireOut → WireIn →
// Reassembled → Delivered stages as it crosses the stack, and the
// completed Trace lands in a fixed ring drained by TakeTraces. Tracing
// is off by default and free when off: every stamp site is a single
// atomic pointer load and nil check.
package telemetry
