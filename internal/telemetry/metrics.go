package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// stripes is the number of cache-line-padded cells a Counter spreads
// its increments over. Hot counters touched from many shards pass a
// cheap locality hint (connection or shard ID) to AddAt so concurrent
// writers land on different lines; Value folds the stripes back
// together. Must be a power of two.
const stripes = 8

// stripe is one padded counter cell. The padding keeps adjacent
// stripes on distinct cache lines so striped increments do not
// false-share.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing, shard-striped counter.
// Increments are single atomic adds: no locks, no allocation.
type Counter struct {
	name string
	s    [stripes]stripe
}

// Inc adds 1 on the primary stripe.
func (c *Counter) Inc() { c.s[0].v.Add(1) }

// Add adds n on the primary stripe.
func (c *Counter) Add(n int64) { c.s[0].v.Add(n) }

// IncAt adds 1 on the stripe selected by the locality hint (typically
// a connection or shard ID), spreading contended hot-path increments
// across cache lines.
func (c *Counter) IncAt(hint uint32) { c.s[hint&(stripes-1)].v.Add(1) }

// AddAt adds n on the stripe selected by the locality hint.
func (c *Counter) AddAt(hint uint32, n int64) { c.s[hint&(stripes-1)].v.Add(n) }

// Value folds the stripes into the counter's current total.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.s {
		sum += c.s[i].v.Load()
	}
	return sum
}

// Name returns the registered instrument name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous level: it moves both ways.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered instrument name.
func (g *Gauge) Name() string { return g.name }

// FuncGauge is a gauge whose level is computed at capture time from a
// callback — for quantities another package already tracks (e.g. the
// buffer pools' outstanding count).
type FuncGauge struct {
	name string
	fn   func() int64
}

// Value invokes the callback.
func (g *FuncGauge) Value() int64 { return g.fn() }

// Name returns the registered instrument name.
func (g *FuncGauge) Name() string { return g.name }

// ---------------------------------------------------------------------------
// Registry.

// registry holds every registered instrument. Registration happens at
// package init (instruments are package-level vars), so the mutex is
// uncontended at runtime; Capture takes it only to snapshot the slices.
type registry struct {
	mu         sync.Mutex
	names      map[string]struct{}
	counters   []*Counter
	gauges     []*Gauge
	funcGauges []*FuncGauge
	histograms []*Histogram
}

var def = &registry{names: make(map[string]struct{})}

// checkName enforces the layer.subsystem.metric convention documented
// in doc.go and rejects duplicates. It panics on violation: instrument
// names are compile-time constants, so a bad one is a programming
// error best caught by the first test that loads the package.
func (r *registry) checkName(name string) {
	if strings.Count(name, ".") < 2 {
		panic(fmt.Sprintf("telemetry: instrument %q does not follow layer.subsystem.metric", name))
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_':
		default:
			panic(fmt.Sprintf("telemetry: instrument %q contains invalid character %q", name, c))
		}
	}
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate instrument %q", name))
	}
	r.names[name] = struct{}{}
}

// NewCounter registers a counter under the given name. Call once, at
// package init, and keep the returned pointer in a package-level var;
// the increment methods are the zero-allocation hot path.
func NewCounter(name string) *Counter {
	def.mu.Lock()
	defer def.mu.Unlock()
	def.checkName(name)
	c := &Counter{name: name}
	def.counters = append(def.counters, c)
	return c
}

// NewGauge registers a gauge under the given name.
func NewGauge(name string) *Gauge {
	def.mu.Lock()
	defer def.mu.Unlock()
	def.checkName(name)
	g := &Gauge{name: name}
	def.gauges = append(def.gauges, g)
	return g
}

// NewFuncGauge registers a capture-time computed gauge. fn must be
// safe to call from any goroutine.
func NewFuncGauge(name string, fn func() int64) *FuncGauge {
	def.mu.Lock()
	defer def.mu.Unlock()
	def.checkName(name)
	g := &FuncGauge{name: name, fn: fn}
	def.funcGauges = append(def.funcGauges, g)
	return g
}

// NewHistogram registers a power-of-two-bucket histogram.
func NewHistogram(name string) *Histogram {
	def.mu.Lock()
	defer def.mu.Unlock()
	def.checkName(name)
	h := &Histogram{name: name}
	def.histograms = append(def.histograms, h)
	return h
}

// ---------------------------------------------------------------------------
// Snapshots.

// Snapshot is a point-in-time reading of every registered instrument.
// It is plain data: safe to retain, diff, and marshal (the JSON form
// is what ncs-bench -telemetry embeds in BENCH_*.json artifacts).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Capture reads every registered instrument. Concurrent writers are
// not quiesced: the snapshot is per-instrument atomic, which is what
// monitoring needs.
func Capture() Snapshot {
	def.mu.Lock()
	counters := def.counters
	gauges := def.gauges
	funcGauges := def.funcGauges
	histograms := def.histograms
	def.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(funcGauges)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, g := range funcGauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range histograms {
		s.Histograms[h.name] = h.snapshot()
	}
	return s
}

// Delta returns this snapshot minus prev: counters and histogram
// tallies are subtracted (instruments absent from prev pass through
// unchanged), gauges keep their current level. Use it to attribute
// activity to one experiment or test window.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistogramSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum}
		for i := range h.Buckets {
			dh.Buckets[i] = h.Buckets[i] - p.Buckets[i]
		}
		d.Histograms[name] = dh
	}
	return d
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Instrument dots become underscores and every
// metric is prefixed ncs_, so core.conn.send_msgs_total scrapes as
// ncs_core_conn_send_msgs_total.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, n := range h.Buckets {
			cum += n
			if n == 0 && i != len(h.Buckets)-1 {
				continue // keep the exposition compact: only occupied buckets
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bucketUpper(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func promName(name string) string {
	return "ncs_" + strings.ReplaceAll(name, ".", "_")
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
