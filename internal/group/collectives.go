package group

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"ncs/internal/buf"
	"ncs/internal/mcast"
)

// Scatter distributes one distinct payload per rank from root. The root
// passes a slice indexed by rank (its own entry is returned to itself);
// other ranks pass nil and receive their part. Distribution follows the
// multicast tree: each interior node receives the bundle for its whole
// subtree and forwards the relevant sub-bundles, so the root does not
// serialise n transfers under the spanning-tree algorithm.
func (g *Group) Scatter(root int, parts [][]byte) ([]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.scatter(root, parts)
}

// scatter is the engine-callable implementation (see broadcast).
func (g *Group) scatter(root int, parts [][]byte) ([]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	if g.rank == root && len(parts) != g.size {
		return nil, fmt.Errorf("group scatter: %d parts for %d members", len(parts), g.size)
	}
	tag := g.nextTag()
	if g.size == 1 {
		return parts[0], nil
	}
	dl := g.opDeadline()

	var bundle map[int][]byte
	if g.rank == root {
		bundle = make(map[int][]byte, g.size)
		for rank, p := range parts {
			bundle[rank] = p
		}
	} else {
		parent := mcast.Parent(g.cfg.Algorithm, g.size, root, g.rank)
		f, err := g.recvFrame(parent, opScatter, tag, 0, dl)
		if err != nil {
			return nil, err
		}
		if bundle, err = decodeBundle(f.payload, g.size); err != nil {
			return nil, fmt.Errorf("group scatter from %d: %w", parent, err)
		}
	}

	// Forward each child the slice of the bundle covering its subtree.
	for _, child := range mcast.Children(g.cfg.Algorithm, g.size, root, g.rank) {
		ranks := mcast.Subtree(g.cfg.Algorithm, g.size, root, child)
		sort.Ints(ranks)
		if err := g.sendBundle(child, opScatter, tag, ranks, bundle); err != nil {
			return nil, err
		}
	}
	own, ok := bundle[g.rank]
	if !ok {
		return nil, fmt.Errorf("group scatter: bundle missing rank %d", g.rank)
	}
	return own, nil
}

// Gather collects one payload per rank at root (the inverse of
// Scatter). The root receives a slice indexed by rank; other ranks
// receive nil.
func (g *Group) Gather(root int, value []byte) ([][]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.gather(root, value)
}

// gather is the engine-callable implementation (see broadcast).
func (g *Group) gather(root int, value []byte) ([][]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	tag := g.nextTag()
	if g.size == 1 {
		return [][]byte{value}, nil
	}
	dl := g.opDeadline()

	bundle := map[int][]byte{g.rank: value}
	for _, child := range mcast.Children(g.cfg.Algorithm, g.size, root, g.rank) {
		f, err := g.recvFrame(child, opGather, tag, 0, dl)
		if err != nil {
			return nil, err
		}
		sub, err := decodeBundle(f.payload, g.size)
		if err != nil {
			return nil, fmt.Errorf("group gather from %d: %w", child, err)
		}
		for rank, p := range sub {
			bundle[rank] = p
		}
	}
	if g.rank != root {
		parent := mcast.Parent(g.cfg.Algorithm, g.size, root, g.rank)
		ranks := make([]int, 0, len(bundle))
		for rank := range bundle {
			ranks = append(ranks, rank)
		}
		sort.Ints(ranks)
		if err := g.sendBundle(parent, opGather, tag, ranks, bundle); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]byte, g.size)
	for rank, p := range bundle {
		out[rank] = p
	}
	return out, nil
}

// AllGather is Gather to rank 0 followed by a Broadcast of the bundle:
// every member ends with every rank's payload, indexed by rank. Large
// bundles ride the Broadcast chunk pipeline.
func (g *Group) AllGather(value []byte) ([][]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.allGather(value)
}

// allGather is the engine-callable implementation (see broadcast).
func (g *Group) allGather(value []byte) ([][]byte, error) {
	parts, err := g.gather(0, value)
	if err != nil {
		return nil, err
	}
	var raw []byte
	if g.rank == 0 {
		bundle := make(map[int][]byte, len(parts))
		ranks := make([]int, len(parts))
		for rank, p := range parts {
			bundle[rank] = p
			ranks[rank] = rank
		}
		raw = appendBundle(make([]byte, 0, bundleLen(ranks, bundle)), ranks, bundle)
	}
	raw, err = g.broadcast(0, raw)
	if err != nil {
		return nil, err
	}
	bundle, err := decodeBundle(raw, g.size)
	if err != nil {
		return nil, fmt.Errorf("group allgather: %w", err)
	}
	out := make([][]byte, g.size)
	for rank, p := range bundle {
		out[rank] = p
	}
	return out, nil
}

// ReduceScatter combines, for every slot i, the parts[i] contributions
// of all members (in ascending rank order, as Reduce does) and delivers
// the reduced slot i to rank i. Every member passes a slice of
// Size() parts; member i receives the combined slot i.
//
// The combine phase runs up the rank-ordered combining tree
// (mcast.CombineChildren) with whole-vector bundles, then the reduced
// vector is Scattered from rank 0 — the dual of AllGather's
// gather-then-broadcast.
func (g *Group) ReduceScatter(parts [][]byte, op ReduceOp) ([]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.reduceScatter(parts, op)
}

// reduceScatter is the engine-callable implementation (see broadcast).
func (g *Group) reduceScatter(parts [][]byte, op ReduceOp) ([]byte, error) {
	if len(parts) != g.size {
		return nil, fmt.Errorf("group reduce-scatter: %d parts for %d members", len(parts), g.size)
	}
	tag := g.nextTag()
	if g.size == 1 {
		return parts[0], nil
	}
	dl := g.opDeadline()

	acc := make([][]byte, g.size)
	copy(acc, parts)
	for _, child := range mcast.CombineChildren(g.cfg.Algorithm, g.size, g.rank) {
		f, err := g.recvFrame(child, opReduceScatter, tag, 0, dl)
		if err != nil {
			return nil, err
		}
		sub, err := decodeVector(f.payload, g.size)
		if err != nil {
			return nil, fmt.Errorf("group reduce-scatter from %d: %w", child, err)
		}
		for i := range acc {
			acc[i] = op(acc[i], sub[i])
		}
	}
	if g.rank != 0 {
		parent := mcast.CombineParent(g.cfg.Algorithm, g.size, g.rank)
		if err := g.sendVector(parent, opReduceScatter, tag, acc); err != nil {
			return nil, err
		}
		return g.scatter(0, nil)
	}
	return g.scatter(0, acc)
}

// AllToAll performs a personalised total exchange: member r receives
// parts[r] from every member, including its own (returned as an alias,
// not a copy). Every member passes Size() parts and receives Size()
// parts, indexed by source rank. The exchange follows mcast.Exchanges'
// linear pairwise schedule: n-1 contention-free rounds.
func (g *Group) AllToAll(parts [][]byte) ([][]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.allToAll(parts)
}

// allToAll is the engine-callable implementation (see broadcast).
func (g *Group) allToAll(parts [][]byte) ([][]byte, error) {
	if len(parts) != g.size {
		return nil, fmt.Errorf("group all-to-all: %d parts for %d members", len(parts), g.size)
	}
	tag := g.nextTag()
	out := make([][]byte, g.size)
	out[g.rank] = parts[g.rank]
	if g.size == 1 {
		return out, nil
	}
	dl := g.opDeadline()
	for _, ex := range mcast.Exchanges(g.size, g.rank) {
		p := parts[ex.To]
		if err := g.sendFrame(ex.To, opAllToAll, tag, 0, 1, uint32(len(p)), p); err != nil {
			return nil, err
		}
		f, err := g.recvFrame(ex.From, opAllToAll, tag, 0, dl)
		if err != nil {
			return nil, err
		}
		out[ex.From] = f.payload
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Bundle codec: rank-keyed payload sets, serialised in ascending rank
// order as count | (rank, length, bytes)*. Encoding stages through the
// pooled buffer pipeline; decoding returns views aliasing the received
// frame, not copies.

// sendBundle frames and transmits the parts for the given ranks
// (already sorted ascending) through a pooled staging buffer.
func (g *Group) sendBundle(dst int, op byte, tag uint32, ranks []int, parts map[int][]byte) error {
	size := bundleLen(ranks, parts)
	b := buf.GetCap(frameHeaderSize + size)
	b.B = appendFrameHeader(b.B, op, tag, 0, 1, uint32(size))
	b.B = appendBundle(b.B, ranks, parts)
	err := g.conns[dst].Send(b.B)
	b.Release()
	if err != nil {
		return fmt.Errorf("group %s send to %d: %w", opName(op), dst, err)
	}
	return nil
}

func bundleLen(ranks []int, parts map[int][]byte) int {
	size := 4
	for _, r := range ranks {
		size += 8 + len(parts[r])
	}
	return size
}

func appendBundle(dst []byte, ranks []int, parts map[int][]byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ranks)))
	for _, r := range ranks {
		dst = binary.BigEndian.AppendUint32(dst, uint32(r))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(parts[r])))
		dst = append(dst, parts[r]...)
	}
	return dst
}

// decodeBundle parses a bundle of at most size ranks; the returned
// payloads alias raw.
func decodeBundle(raw []byte, size int) (map[int][]byte, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("group: truncated bundle")
	}
	n := binary.BigEndian.Uint32(raw)
	raw = raw[4:]
	if int(n) > size {
		return nil, fmt.Errorf("group: bundle of %d parts for %d members", n, size)
	}
	m := make(map[int][]byte, n)
	for i := uint32(0); i < n; i++ {
		if len(raw) < 8 {
			return nil, fmt.Errorf("group: truncated bundle entry")
		}
		rank := int(binary.BigEndian.Uint32(raw))
		length := binary.BigEndian.Uint32(raw[4:])
		raw = raw[8:]
		if rank < 0 || rank >= size {
			return nil, fmt.Errorf("group: bundle rank %d out of range", rank)
		}
		if _, dup := m[rank]; dup {
			return nil, fmt.Errorf("group: bundle rank %d twice", rank)
		}
		if uint32(len(raw)) < length {
			return nil, fmt.Errorf("group: truncated bundle payload")
		}
		m[rank] = raw[:length:length]
		raw = raw[length:]
	}
	return m, nil
}

// sendVector is sendBundle for a dense rank-indexed vector (every slot
// present, in order).
func (g *Group) sendVector(dst int, op byte, tag uint32, parts [][]byte) error {
	size := 4
	for _, p := range parts {
		size += 4 + len(p)
	}
	b := buf.GetCap(frameHeaderSize + size)
	b.B = appendFrameHeader(b.B, op, tag, 0, 1, uint32(size))
	b.B = binary.BigEndian.AppendUint32(b.B, uint32(len(parts)))
	for _, p := range parts {
		b.B = binary.BigEndian.AppendUint32(b.B, uint32(len(p)))
		b.B = append(b.B, p...)
	}
	err := g.conns[dst].Send(b.B)
	b.Release()
	if err != nil {
		return fmt.Errorf("group %s send to %d: %w", opName(op), dst, err)
	}
	return nil
}

// decodeVector parses a dense n-slot vector; payload views alias raw.
func decodeVector(raw []byte, n int) ([][]byte, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("group: truncated vector")
	}
	if got := binary.BigEndian.Uint32(raw); int(got) != n {
		return nil, fmt.Errorf("group: vector of %d slots, want %d", got, n)
	}
	raw = raw[4:]
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(raw) < 4 {
			return nil, fmt.Errorf("group: truncated vector slot")
		}
		length := binary.BigEndian.Uint32(raw)
		raw = raw[4:]
		if uint32(len(raw)) < length {
			return nil, fmt.Errorf("group: truncated vector payload")
		}
		out[i] = raw[:length:length]
		raw = raw[length:]
	}
	return out, nil
}
