package group

import (
	"encoding/binary"
	"fmt"

	"ncs/internal/mcast"
)

// Scatter distributes one distinct payload per rank from root. The root
// passes a slice indexed by rank (its own entry is returned to itself);
// other ranks pass nil and receive their part. Distribution follows the
// multicast tree: each interior node receives the bundle for its whole
// subtree and forwards the relevant sub-bundles, so the root does not
// serialise n transfers under the spanning-tree algorithm.
func (g *Group) Scatter(root int, parts [][]byte) ([]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	if g.size == 1 {
		if len(parts) != 1 {
			return nil, fmt.Errorf("group scatter: %d parts for 1 member", len(parts))
		}
		return parts[0], nil
	}

	var bundle map[int][]byte
	if g.rank == root {
		if len(parts) != g.size {
			return nil, fmt.Errorf("group scatter: %d parts for %d members", len(parts), g.size)
		}
		bundle = make(map[int][]byte, g.size)
		for rank, p := range parts {
			bundle[rank] = p
		}
	} else {
		parent := mcast.Parent(g.alg, g.size, root, g.rank)
		raw, err := g.conns[parent].Recv()
		if err != nil {
			return nil, fmt.Errorf("group scatter recv from %d: %w", parent, err)
		}
		bundle, err = decodeBundle(raw)
		if err != nil {
			return nil, err
		}
	}

	// Forward each child the slice of the bundle covering its subtree.
	for _, child := range mcast.Children(g.alg, g.size, root, g.rank) {
		sub := make(map[int][]byte)
		for _, rank := range subtree(g.alg, g.size, root, child) {
			if p, ok := bundle[rank]; ok {
				sub[rank] = p
			}
		}
		if err := g.conns[child].Send(encodeBundle(sub)); err != nil {
			return nil, fmt.Errorf("group scatter send to %d: %w", child, err)
		}
	}
	own, ok := bundle[g.rank]
	if !ok {
		return nil, fmt.Errorf("group scatter: bundle missing rank %d", g.rank)
	}
	return own, nil
}

// Gather collects one payload per rank at root (the inverse of
// Scatter). The root receives a slice indexed by rank; other ranks
// receive nil.
func (g *Group) Gather(root int, value []byte) ([][]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	if g.size == 1 {
		return [][]byte{value}, nil
	}

	bundle := map[int][]byte{g.rank: value}
	for _, child := range mcast.Children(g.alg, g.size, root, g.rank) {
		raw, err := g.conns[child].Recv()
		if err != nil {
			return nil, fmt.Errorf("group gather recv from %d: %w", child, err)
		}
		sub, err := decodeBundle(raw)
		if err != nil {
			return nil, err
		}
		for rank, p := range sub {
			bundle[rank] = p
		}
	}
	if g.rank != root {
		parent := mcast.Parent(g.alg, g.size, root, g.rank)
		if err := g.conns[parent].Send(encodeBundle(bundle)); err != nil {
			return nil, fmt.Errorf("group gather send to %d: %w", parent, err)
		}
		return nil, nil
	}
	out := make([][]byte, g.size)
	for rank, p := range bundle {
		if rank >= 0 && rank < g.size {
			out[rank] = p
		}
	}
	return out, nil
}

// AllGather is Gather to rank 0 followed by a Broadcast of the bundle:
// every member ends with every rank's payload.
func (g *Group) AllGather(value []byte) ([][]byte, error) {
	parts, err := g.Gather(0, value)
	if err != nil {
		return nil, err
	}
	var raw []byte
	if g.rank == 0 {
		bundle := make(map[int][]byte, len(parts))
		for rank, p := range parts {
			bundle[rank] = p
		}
		raw = encodeBundle(bundle)
	}
	raw, err = g.Broadcast(0, raw)
	if err != nil {
		return nil, err
	}
	bundle, err := decodeBundle(raw)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, g.size)
	for rank, p := range bundle {
		if rank >= 0 && rank < g.size {
			out[rank] = p
		}
	}
	return out, nil
}

// subtree lists the ranks in the multicast subtree rooted at node
// (inclusive).
func subtree(alg mcast.Algorithm, n, root, node int) []int {
	out := []int{node}
	for _, c := range mcast.Children(alg, n, root, node) {
		out = append(out, subtree(alg, n, root, c)...)
	}
	return out
}

// encodeBundle serialises a rank→payload map: count, then
// (rank, length, bytes) triples.
func encodeBundle(m map[int][]byte) []byte {
	size := 4
	for _, p := range m {
		size += 8 + len(p)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint32(out, uint32(len(m)))
	for rank, p := range m {
		out = binary.BigEndian.AppendUint32(out, uint32(rank))
		out = binary.BigEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

func decodeBundle(raw []byte) (map[int][]byte, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("group: truncated bundle")
	}
	n := binary.BigEndian.Uint32(raw)
	raw = raw[4:]
	m := make(map[int][]byte, n)
	for i := uint32(0); i < n; i++ {
		if len(raw) < 8 {
			return nil, fmt.Errorf("group: truncated bundle entry")
		}
		rank := int(binary.BigEndian.Uint32(raw))
		length := binary.BigEndian.Uint32(raw[4:])
		raw = raw[8:]
		if uint32(len(raw)) < length {
			return nil, fmt.Errorf("group: truncated bundle payload")
		}
		p := make([]byte, length)
		copy(p, raw[:length])
		m[rank] = p
		raw = raw[length:]
	}
	return m, nil
}
