package group

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ncs/internal/core"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/mcast"
	"ncs/internal/netsim"
	"ncs/internal/transport"
)

// concatOp is the canonical non-commutative (but associative) reduce:
// any deviation from strict rank order changes the answer.
func concatOp(a, b []byte) []byte {
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// TestConnectRejectsDuplicateNames: two systems sharing a name used to
// collide in the accept-side rank map and silently mis-rank members;
// now it is a construction error.
func TestConnectRejectsDuplicateNames(t *testing.T) {
	nwA := core.NewNetwork()
	defer nwA.Close()
	nwB := core.NewNetwork()
	defer nwB.Close()

	// Same name on two fabrics, so registration succeeds but the group
	// would be ambiguous.
	a1, err := nwA.NewSystem("twin")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := nwB.NewSystem("twin")
	if err != nil {
		t.Fatal(err)
	}
	other, err := nwA.NewSystem("other")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Connect([]*core.System{a1, other, b1}, core.Options{Interface: transport.HPI}, mcast.SpanningTree)
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
}

// TestConnectClosesConnsOnFailure: a failed mesh build used to leak
// every connection already established (4 goroutines each on the
// threaded runtime). Build a mesh where one target system is already
// closed, let Connect fail, and assert the process quiesces back to
// its pre-call goroutine count without closing the network.
func TestConnectClosesConnsOnFailure(t *testing.T) {
	nw := core.NewNetwork()
	defer nw.Close()
	const n = 5
	systems := make([]*core.System, n)
	for i := range systems {
		s, err := nw.NewSystem(fmt.Sprintf("leak-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = s
	}
	// The last member is dead before the mesh is built: every dial to
	// it fails fast, while the other 6 edges establish successfully
	// and used to be abandoned.
	systems[n-1].Close()

	baseline := runtime.NumGoroutine()
	if _, err := Connect(systems, core.Options{Interface: transport.HPI}, mcast.SpanningTree); err == nil {
		t.Fatal("Connect succeeded over a closed system")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<20)
			stack = stack[:runtime.Stack(stack, true)]
			t.Fatalf("connections leaked: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, stack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReduceRankOrder: partials must combine in strict ascending rank
// order (MPI semantics) under BOTH multicast algorithms and for any
// root — the old tree fold was children-order and nondeterministic for
// non-commutative operations.
func TestReduceRankOrder(t *testing.T) {
	const n = 6
	want := []byte("<r0><r1><r2><r3><r4><r5>")
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, root := range []int{0, 3, n - 1} {
			t.Run(fmt.Sprintf("%v_root%d", alg, root), func(t *testing.T) {
				groups, cleanup := buildGroup(t, n, alg)
				defer cleanup()
				var got []byte
				runAll(t, groups, func(g *Group) error {
					val := []byte(fmt.Sprintf("<r%d>", g.Rank()))
					res, err := g.Reduce(root, val, concatOp)
					if err != nil {
						return err
					}
					if g.Rank() == root {
						got = res
					} else if res != nil {
						return fmt.Errorf("non-root rank %d got non-nil reduce result", g.Rank())
					}
					return nil
				})
				if !bytes.Equal(got, want) {
					t.Fatalf("reduce = %q, want %q (rank order violated)", got, want)
				}
			})
		}
	}
}

// TestAllReduceRankOrder pins the same ordering guarantee end to end.
func TestAllReduceRankOrder(t *testing.T) {
	const n = 5
	want := []byte("01234")
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		groups, cleanup := buildGroup(t, n, alg)
		runAll(t, groups, func(g *Group) error {
			res, err := g.AllReduce([]byte(fmt.Sprintf("%d", g.Rank())), concatOp)
			if err != nil {
				return err
			}
			if !bytes.Equal(res, want) {
				return fmt.Errorf("rank %d allreduce = %q, want %q", g.Rank(), res, want)
			}
			return nil
		})
		cleanup()
	}
}

// TestBarrierDeadlineOnMemberDeath: collectives used to block forever
// when a member died mid-operation. Kill one rank while the others sit
// in a barrier; every survivor must return an error within the group
// deadline (plus scheduling grace).
func TestBarrierDeadlineOnMemberDeath(t *testing.T) {
	const n = 4
	const deadline = 1 * time.Second
	nw := core.NewNetwork()
	defer nw.Close()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("mortal-%d", i)
	}
	groups, err := BuildConfig(nw, names, core.Options{Interface: transport.HPI},
		Config{Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}

	const victim = 2
	var wg sync.WaitGroup
	errs := make([]error, n)
	took := make([]time.Duration, n)
	start := time.Now()
	for i, g := range groups {
		if i == victim {
			continue
		}
		wg.Add(1)
		go func(i int, g *Group) {
			defer wg.Done()
			errs[i] = g.Barrier()
			took[i] = time.Since(start)
		}(i, g)
	}
	time.Sleep(100 * time.Millisecond)
	groups[victim].Close()
	wg.Wait()
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		if errs[i] == nil {
			t.Errorf("rank %d: barrier returned nil with a dead member", i)
			continue
		}
		if limit := deadline + 3*time.Second; took[i] > limit {
			t.Errorf("rank %d: barrier error took %v, past the %v budget (err: %v)",
				i, took[i], limit, errs[i])
		}
	}
	for _, g := range groups {
		g.Close()
	}
}

// TestDeadlineExpiresWithoutTraffic: a lone waiter (peer never enters
// the collective) must get ErrDeadline, not a hang.
func TestDeadlineExpiresWithoutTraffic(t *testing.T) {
	nw := core.NewNetwork()
	defer nw.Close()
	groups, err := BuildConfig(nw, []string{"dl-0", "dl-1"},
		core.Options{Interface: transport.HPI}, Config{Deadline: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer groups[0].Close()
	defer groups[1].Close()
	start := time.Now()
	_, err = groups[1].Broadcast(0, nil) // rank 0 never broadcasts
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("deadline took %v to fire", took)
	}
}

// TestCollectiveMismatchDetected: a member calling a different
// collective than its peers is a detected error, not silent corruption.
func TestCollectiveMismatchDetected(t *testing.T) {
	nw := core.NewNetwork()
	defer nw.Close()
	groups, err := BuildConfig(nw, []string{"mm-0", "mm-1"},
		core.Options{Interface: transport.HPI}, Config{Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer groups[0].Close()
	defer groups[1].Close()

	// Member 0 broadcasts (tag 1, op broadcast); member 1 runs a
	// barrier, whose down-phase receive expects op broadcast tag 2 —
	// the tag skew is the detection.
	var wg sync.WaitGroup
	var barrierErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		barrierErr = groups[1].Barrier()
	}()
	if _, err := groups[0].Broadcast(0, []byte("out of step")); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	wg.Wait()
	if !errors.Is(barrierErr, ErrMismatch) {
		t.Fatalf("barrier err = %v, want ErrMismatch", barrierErr)
	}
}

// TestShardedGroupGoroutineScaling: a group over the sharded runtime
// must cost O(members × shards) goroutines, not O(members²) — the mesh
// has n(n-1)/2 connections, each of which would pin 8 goroutines
// (4 per endpoint) on the threaded runtime.
func TestShardedGroupGoroutineScaling(t *testing.T) {
	const n = 24 // 276 mesh connections
	nw := core.NewNetwork()
	defer nw.Close()
	systems := make([]*core.System, n)
	for i := range systems {
		s, err := nw.NewSystem(fmt.Sprintf("shardg-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetShards(1); err != nil {
			t.Fatal(err)
		}
		systems[i] = s
	}
	baseline := runtime.NumGoroutine()
	groups, err := Connect(systems, core.Options{
		Interface: transport.HPI,
		Runtime:   core.RuntimeSharded,
	}, mcast.SpanningTree)
	if err != nil {
		t.Fatal(err)
	}
	delta := runtime.NumGoroutine() - baseline
	// One shard per member plus slack; the threaded equivalent would
	// be ~8 × 276 = 2208.
	if limit := 3*n + 16; delta > limit {
		t.Fatalf("sharded %d-member mesh costs %d goroutines (limit %d)", n, delta, limit)
	}

	// The mesh must actually work at this scale.
	payload := bytes.Repeat([]byte{0xAB}, 20_000)
	runAll(t, groups, func(g *Group) error {
		var msg []byte
		if g.Rank() == 0 {
			msg = payload
		}
		got, err := g.Broadcast(0, msg)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d payload mismatch", g.Rank())
		}
		return g.Barrier()
	})
	for _, g := range groups {
		g.Close()
	}
}

// TestUnreliableLossRejectedNotCombined: over ErrorControl None a
// loss-damaged frame is delivered with Message.Lost > 0. The engine
// must reject it (or time out waiting for a lost end segment) — never
// hand corrupted bytes to the collective as a nil-error result.
func TestUnreliableLossRejectedNotCombined(t *testing.T) {
	payload := make([]byte, 6000) // multi-SDU at the 512-byte harness SDU
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	sawError := false
	for seed := int64(1); seed <= 6; seed++ {
		nw := core.NewNetwork()
		names := []string{
			fmt.Sprintf("lossy-%d-0", seed),
			fmt.Sprintf("lossy-%d-1", seed),
			fmt.Sprintf("lossy-%d-2", seed),
		}
		groups, err := BuildConfig(nw, names, core.Options{
			Interface:    transport.HPI,
			ErrorControl: errctl.None,
			FlowControl:  flowctl.None,
			SDUSize:      512,
			HPILink: &netsim.Params{
				Seed:   seed,
				Impair: netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: 0.25}},
			},
		}, Config{Deadline: 2 * time.Second, ChunkSize: 2048})
		if err != nil {
			nw.Close()
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(groups))
		results := make([][]byte, len(groups))
		for i, g := range groups {
			wg.Add(1)
			go func(i int, g *Group) {
				defer wg.Done()
				var msg []byte
				if g.Rank() == 0 {
					msg = payload
				}
				results[i], errs[i] = g.Broadcast(0, msg)
			}(i, g)
		}
		wg.Wait()
		for i := range groups {
			if errs[i] != nil {
				sawError = true
				continue
			}
			if !bytes.Equal(results[i], payload) {
				t.Fatalf("seed %d rank %d: corrupted payload returned with nil error", seed, i)
			}
		}
		for _, g := range groups {
			g.Close()
		}
		nw.Close()
	}
	if !sawError {
		t.Fatal("no seed produced loss — the rejection path was never exercised; raise the loss rate")
	}
}
