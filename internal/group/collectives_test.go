package group

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ncs/internal/mcast"
)

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, n := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("%v_n%d", alg, n), func(t *testing.T) {
				groups, cleanup := buildGroup(t, n, alg)
				defer cleanup()

				parts := make([][]byte, n)
				for i := range parts {
					parts[i] = bytes.Repeat([]byte{byte(i + 1)}, 100*(i+1))
				}

				var mu sync.Mutex
				received := make([][]byte, n)
				runAll(t, groups, func(g *Group) error {
					var in [][]byte
					if g.Rank() == 0 {
						in = parts
					}
					got, err := g.Scatter(0, in)
					if err != nil {
						return err
					}
					mu.Lock()
					received[g.Rank()] = got
					mu.Unlock()
					return nil
				})
				for rank, got := range received {
					if !bytes.Equal(got, parts[rank]) {
						t.Fatalf("rank %d scatter mismatch", rank)
					}
				}

				// Gather the parts back; only the root sees the bundle.
				runAll(t, groups, func(g *Group) error {
					out, err := g.Gather(0, received[g.Rank()])
					if err != nil {
						return err
					}
					if g.Rank() != 0 {
						if out != nil {
							return fmt.Errorf("non-root got gather output")
						}
						return nil
					}
					for rank, p := range out {
						if !bytes.Equal(p, parts[rank]) {
							return fmt.Errorf("gathered part %d mismatch", rank)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestScatterNonZeroRoot(t *testing.T) {
	const n = 5
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	parts := make([][]byte, n)
	for i := range parts {
		parts[i] = []byte(fmt.Sprintf("part-%d", i))
	}
	runAll(t, groups, func(g *Group) error {
		var in [][]byte
		if g.Rank() == 2 {
			in = parts
		}
		got, err := g.Scatter(2, in)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, parts[g.Rank()]) {
			return fmt.Errorf("rank %d got %q", g.Rank(), got)
		}
		return nil
	})
}

func TestAllGather(t *testing.T) {
	const n = 6
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	runAll(t, groups, func(g *Group) error {
		mine := []byte(fmt.Sprintf("contribution-from-%d", g.Rank()))
		all, err := g.AllGather(mine)
		if err != nil {
			return err
		}
		if len(all) != n {
			return fmt.Errorf("rank %d got %d parts", g.Rank(), len(all))
		}
		for rank, p := range all {
			want := fmt.Sprintf("contribution-from-%d", rank)
			if string(p) != want {
				return fmt.Errorf("rank %d: part %d = %q", g.Rank(), rank, p)
			}
		}
		return nil
	})
}

func TestScatterValidation(t *testing.T) {
	groups, cleanup := buildGroup(t, 3, mcast.SpanningTree)
	defer cleanup()
	if _, err := groups[0].Scatter(9, nil); err != ErrBadRank {
		t.Fatalf("bad rank: %v", err)
	}
	// Wrong part count at root (run collectively so nothing deadlocks:
	// only the root validates before any I/O).
	if _, err := groups[0].Scatter(0, [][]byte{{1}}); err == nil {
		t.Fatal("wrong part count accepted")
	}
}

func TestBundleCodec(t *testing.T) {
	in := map[int][]byte{0: []byte("a"), 3: {}, 7: bytes.Repeat([]byte{9}, 1000)}
	out, err := decodeBundle(encodeBundle(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for k, v := range in {
		if !bytes.Equal(out[k], v) {
			t.Fatalf("key %d mismatch", k)
		}
	}
	if _, err := decodeBundle([]byte{0, 0}); err == nil {
		t.Fatal("truncated bundle accepted")
	}
}

func TestSubtreeCoversAllRanks(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		for root := 0; root < n; root++ {
			seen := make(map[int]bool)
			for _, r := range subtree(mcast.SpanningTree, n, root, root) {
				if seen[r] {
					t.Fatalf("n=%d root=%d: rank %d twice", n, root, r)
				}
				seen[r] = true
			}
			if len(seen) != n {
				t.Fatalf("n=%d root=%d: subtree covers %d ranks", n, root, len(seen))
			}
		}
	}
}
