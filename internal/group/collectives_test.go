package group

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ncs/internal/core"
	"ncs/internal/mcast"
	"ncs/internal/transport"
)

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, n := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("%v_n%d", alg, n), func(t *testing.T) {
				groups, cleanup := buildGroup(t, n, alg)
				defer cleanup()

				parts := make([][]byte, n)
				for i := range parts {
					parts[i] = bytes.Repeat([]byte{byte(i + 1)}, 100*(i+1))
				}

				var mu sync.Mutex
				received := make([][]byte, n)
				runAll(t, groups, func(g *Group) error {
					var in [][]byte
					if g.Rank() == 0 {
						in = parts
					}
					got, err := g.Scatter(0, in)
					if err != nil {
						return err
					}
					mu.Lock()
					received[g.Rank()] = got
					mu.Unlock()
					return nil
				})
				for rank, got := range received {
					if !bytes.Equal(got, parts[rank]) {
						t.Fatalf("rank %d scatter mismatch", rank)
					}
				}

				// Gather the parts back; only the root sees the bundle.
				runAll(t, groups, func(g *Group) error {
					out, err := g.Gather(0, received[g.Rank()])
					if err != nil {
						return err
					}
					if g.Rank() != 0 {
						if out != nil {
							return fmt.Errorf("non-root got gather output")
						}
						return nil
					}
					for rank, p := range out {
						if !bytes.Equal(p, parts[rank]) {
							return fmt.Errorf("gathered part %d mismatch", rank)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestScatterNonZeroRoot(t *testing.T) {
	const n = 5
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	parts := make([][]byte, n)
	for i := range parts {
		parts[i] = []byte(fmt.Sprintf("part-%d", i))
	}
	runAll(t, groups, func(g *Group) error {
		var in [][]byte
		if g.Rank() == 2 {
			in = parts
		}
		got, err := g.Scatter(2, in)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, parts[g.Rank()]) {
			return fmt.Errorf("rank %d got %q", g.Rank(), got)
		}
		return nil
	})
}

func TestAllGather(t *testing.T) {
	const n = 6
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	runAll(t, groups, func(g *Group) error {
		mine := []byte(fmt.Sprintf("contribution-from-%d", g.Rank()))
		all, err := g.AllGather(mine)
		if err != nil {
			return err
		}
		if len(all) != n {
			return fmt.Errorf("rank %d got %d parts", g.Rank(), len(all))
		}
		for rank, p := range all {
			want := fmt.Sprintf("contribution-from-%d", rank)
			if string(p) != want {
				return fmt.Errorf("rank %d: part %d = %q", g.Rank(), rank, p)
			}
		}
		return nil
	})
}

func TestScatterValidation(t *testing.T) {
	groups, cleanup := buildGroup(t, 3, mcast.SpanningTree)
	defer cleanup()
	if _, err := groups[0].Scatter(9, nil); err != ErrBadRank {
		t.Fatalf("bad rank: %v", err)
	}
	// Wrong part count at root (run collectively so nothing deadlocks:
	// only the root validates before any I/O).
	if _, err := groups[0].Scatter(0, [][]byte{{1}}); err == nil {
		t.Fatal("wrong part count accepted")
	}
}

func TestBundleCodec(t *testing.T) {
	in := map[int][]byte{0: []byte("a"), 3: {}, 7: bytes.Repeat([]byte{9}, 1000)}
	ranks := []int{0, 3, 7}
	raw := appendBundle(make([]byte, 0, bundleLen(ranks, in)), ranks, in)
	out, err := decodeBundle(raw, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for k, v := range in {
		if !bytes.Equal(out[k], v) {
			t.Fatalf("key %d mismatch", k)
		}
	}
	if _, err := decodeBundle([]byte{0, 0}, 8); err == nil {
		t.Fatal("truncated bundle accepted")
	}
	if _, err := decodeBundle(raw, 4); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestVectorCodec(t *testing.T) {
	in := [][]byte{[]byte("abc"), {}, bytes.Repeat([]byte{7}, 300)}
	size := 4
	for _, p := range in {
		size += 4 + len(p)
	}
	raw := make([]byte, 0, size)
	raw = append(raw, 0, 0, 0, 3)
	for _, p := range in {
		raw = append(raw, byte(len(p)>>24), byte(len(p)>>16), byte(len(p)>>8), byte(len(p)))
		raw = append(raw, p...)
	}
	out, err := decodeVector(raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if !bytes.Equal(out[i], in[i]) {
			t.Fatalf("slot %d mismatch", i)
		}
	}
	if _, err := decodeVector(raw, 4); err == nil {
		t.Fatal("wrong slot count accepted")
	}
	if _, err := decodeVector(raw[:7], 3); err == nil {
		t.Fatal("truncated vector accepted")
	}
}

func TestReduceScatter(t *testing.T) {
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, n := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("%v_n%d", alg, n), func(t *testing.T) {
				groups, cleanup := buildGroup(t, n, alg)
				defer cleanup()

				// Member r contributes "<r:slot>" for every slot; slot i,
				// reduced in rank order, must read "<0:i><1:i>…<n-1:i>".
				runAll(t, groups, func(g *Group) error {
					parts := make([][]byte, n)
					for i := range parts {
						parts[i] = []byte(fmt.Sprintf("<%d:%d>", g.Rank(), i))
					}
					got, err := g.ReduceScatter(parts, concatOp)
					if err != nil {
						return err
					}
					want := ""
					for r := 0; r < n; r++ {
						want += fmt.Sprintf("<%d:%d>", r, g.Rank())
					}
					if string(got) != want {
						return fmt.Errorf("rank %d: %q, want %q", g.Rank(), got, want)
					}
					return nil
				})
			})
		}
	}
}

func TestReduceScatterValidatesPartCount(t *testing.T) {
	groups, cleanup := buildGroup(t, 3, mcast.SpanningTree)
	defer cleanup()
	if _, err := groups[0].ReduceScatter([][]byte{{1}}, concatOp); err == nil {
		t.Fatal("wrong part count accepted")
	}
}

func TestAllToAll(t *testing.T) {
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, n := range []int{1, 2, 3, 5, 8} {
			t.Run(fmt.Sprintf("%v_n%d", alg, n), func(t *testing.T) {
				groups, cleanup := buildGroup(t, n, alg)
				defer cleanup()

				runAll(t, groups, func(g *Group) error {
					parts := make([][]byte, n)
					for i := range parts {
						parts[i] = []byte(fmt.Sprintf("from-%d-to-%d", g.Rank(), i))
					}
					got, err := g.AllToAll(parts)
					if err != nil {
						return err
					}
					if len(got) != n {
						return fmt.Errorf("rank %d: %d parts", g.Rank(), len(got))
					}
					for src, p := range got {
						want := fmt.Sprintf("from-%d-to-%d", src, g.Rank())
						if string(p) != want {
							return fmt.Errorf("rank %d from %d: %q, want %q", g.Rank(), src, p, want)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestAllToAllValidatesPartCount(t *testing.T) {
	groups, cleanup := buildGroup(t, 3, mcast.SpanningTree)
	defer cleanup()
	if _, err := groups[0].AllToAll(nil); err == nil {
		t.Fatal("wrong part count accepted")
	}
}

// TestChunkedBroadcastPipelining drives the pipelined path explicitly:
// a payload many times the chunk size, over both algorithms, with a
// chunk small enough that every interior rank forwards dozens of
// chunks.
func TestChunkedBroadcastPipelining(t *testing.T) {
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, root := range []int{0, 2} {
			t.Run(fmt.Sprintf("%v_root%d", alg, root), func(t *testing.T) {
				nw := core.NewNetwork()
				defer nw.Close()
				names := make([]string, 5)
				for i := range names {
					names[i] = fmt.Sprintf("chunk-%v-%d-%d", alg, root, i)
				}
				groups, err := BuildConfig(nw, names, core.Options{Interface: transport.HPI},
					Config{Algorithm: alg, ChunkSize: 1024})
				if err != nil {
					t.Fatal(err)
				}
				runAll(t, groups, func(g *Group) error {
					var msg []byte
					if g.Rank() == root {
						msg = payload
					}
					got, err := g.Broadcast(root, msg)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("rank %d payload mismatch", g.Rank())
					}
					return nil
				})
			})
		}
	}
}

// TestCollectiveScript runs every collective back to back on one group
// — the tag sequence must stay in lockstep across heterogeneous ops.
func TestCollectiveScript(t *testing.T) {
	const n = 5
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	runAll(t, groups, func(g *Group) error {
		r := g.Rank()
		if _, err := g.Broadcast(1, []byte("hello")); err != nil {
			return fmt.Errorf("broadcast: %w", err)
		}
		if _, err := g.Reduce(2, []byte{byte(r)}, concatOp); err != nil {
			return fmt.Errorf("reduce: %w", err)
		}
		if err := g.Barrier(); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
		parts := make([][]byte, n)
		for i := range parts {
			parts[i] = []byte(fmt.Sprintf("%d.%d", r, i))
		}
		if _, err := g.AllToAll(parts); err != nil {
			return fmt.Errorf("alltoall: %w", err)
		}
		if _, err := g.AllGather([]byte{byte(r)}); err != nil {
			return fmt.Errorf("allgather: %w", err)
		}
		if _, err := g.ReduceScatter(parts, concatOp); err != nil {
			return fmt.Errorf("reducescatter: %w", err)
		}
		if _, err := g.AllReduce([]byte{byte(r)}, concatOp); err != nil {
			return fmt.Errorf("allreduce: %w", err)
		}
		return nil
	})
}
