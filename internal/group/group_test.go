package group

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncs/internal/core"
	"ncs/internal/mcast"
	"ncs/internal/transport"
)

func buildGroup(t *testing.T, n int, alg mcast.Algorithm) ([]*Group, func()) {
	t.Helper()
	nw := core.NewNetwork()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("member-%d", i)
	}
	groups, err := Build(nw, names, core.Options{Interface: transport.HPI}, alg)
	if err != nil {
		nw.Close()
		t.Fatal(err)
	}
	return groups, nw.Close
}

// runAll invokes fn concurrently for every member and waits.
func runAll(t *testing.T, groups []*Group, fn func(g *Group) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *Group) {
			defer wg.Done()
			errs[i] = fn(g)
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestBroadcastBothAlgorithms(t *testing.T) {
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, n := range []int{1, 2, 5, 8} {
			t.Run(fmt.Sprintf("%v_n%d", alg, n), func(t *testing.T) {
				groups, cleanup := buildGroup(t, n, alg)
				defer cleanup()

				payload := []byte("broadcast payload")
				var mu sync.Mutex
				results := make(map[int][]byte)
				runAll(t, groups, func(g *Group) error {
					var msg []byte
					if g.Rank() == 0 {
						msg = payload
					}
					got, err := g.Broadcast(0, msg)
					if err != nil {
						return err
					}
					mu.Lock()
					results[g.Rank()] = got
					mu.Unlock()
					return nil
				})
				for rank, got := range results {
					if !bytes.Equal(got, payload) {
						t.Fatalf("rank %d got %q", rank, got)
					}
				}
			})
		}
	}
}

func TestBroadcastNonZeroRoot(t *testing.T) {
	groups, cleanup := buildGroup(t, 6, mcast.SpanningTree)
	defer cleanup()

	payload := []byte("from rank 3")
	runAll(t, groups, func(g *Group) error {
		var msg []byte
		if g.Rank() == 3 {
			msg = payload
		}
		got, err := g.Broadcast(3, msg)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d got %q", g.Rank(), got)
		}
		return nil
	})
}

func sumOp(a, b []byte) []byte {
	va := binary.BigEndian.Uint64(a)
	vb := binary.BigEndian.Uint64(b)
	return binary.BigEndian.AppendUint64(nil, va+vb)
}

func TestReduceSum(t *testing.T) {
	const n = 7
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	var got []byte
	runAll(t, groups, func(g *Group) error {
		val := binary.BigEndian.AppendUint64(nil, uint64(g.Rank()+1))
		res, err := g.Reduce(0, val, sumOp)
		if err != nil {
			return err
		}
		if g.Rank() == 0 {
			got = res
		} else if res != nil {
			return fmt.Errorf("non-root rank %d got non-nil reduce result", g.Rank())
		}
		return nil
	})
	want := uint64(n * (n + 1) / 2)
	if binary.BigEndian.Uint64(got) != want {
		t.Fatalf("reduce sum = %d, want %d", binary.BigEndian.Uint64(got), want)
	}
}

func TestAllReduce(t *testing.T) {
	const n = 5
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	want := uint64(n * (n + 1) / 2)
	runAll(t, groups, func(g *Group) error {
		val := binary.BigEndian.AppendUint64(nil, uint64(g.Rank()+1))
		res, err := g.AllReduce(val, sumOp)
		if err != nil {
			return err
		}
		if binary.BigEndian.Uint64(res) != want {
			return fmt.Errorf("rank %d allreduce = %d, want %d",
				g.Rank(), binary.BigEndian.Uint64(res), want)
		}
		return nil
	})
}

func TestBarrierSynchronises(t *testing.T) {
	const n = 4
	groups, cleanup := buildGroup(t, n, mcast.SpanningTree)
	defer cleanup()

	// Every member records the time it leaves the barrier; rank 0 enters
	// late. No member may leave before rank 0 entered.
	var rank0Entered time.Time
	exits := make([]time.Time, n)
	runAll(t, groups, func(g *Group) error {
		if g.Rank() == 0 {
			time.Sleep(50 * time.Millisecond)
			rank0Entered = time.Now()
		}
		if err := g.Barrier(); err != nil {
			return err
		}
		exits[g.Rank()] = time.Now()
		return nil
	})
	for rank, exit := range exits {
		if exit.Before(rank0Entered) {
			t.Fatalf("rank %d left the barrier %v before rank 0 entered",
				rank, rank0Entered.Sub(exit))
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	groups, cleanup := buildGroup(t, 3, mcast.SpanningTree)
	defer cleanup()

	runAll(t, groups, func(g *Group) error {
		for i := 0; i < 10; i++ {
			if err := g.Barrier(); err != nil {
				return fmt.Errorf("barrier %d: %w", i, err)
			}
		}
		return nil
	})
}

func TestBroadcastBadRank(t *testing.T) {
	groups, cleanup := buildGroup(t, 2, mcast.SpanningTree)
	defer cleanup()
	if _, err := groups[0].Broadcast(5, nil); err != ErrBadRank {
		t.Fatalf("err = %v, want ErrBadRank", err)
	}
	if _, err := groups[0].Reduce(-1, nil, sumOp); err != ErrBadRank {
		t.Fatalf("err = %v, want ErrBadRank", err)
	}
}

func TestGroupAccessors(t *testing.T) {
	groups, cleanup := buildGroup(t, 3, mcast.Repetitive)
	defer cleanup()
	g := groups[1]
	if g.Rank() != 1 || g.Size() != 3 {
		t.Fatalf("rank/size = %d/%d", g.Rank(), g.Size())
	}
	if g.Algorithm() != mcast.Repetitive {
		t.Fatalf("algorithm = %v", g.Algorithm())
	}
	if r := g.Ranks(); len(r) != 3 || r[0] != 0 || r[2] != 2 {
		t.Fatalf("Ranks = %v", r)
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	nw := core.NewNetwork()
	defer nw.Close()
	if _, err := Build(nw, nil, core.Options{Interface: transport.HPI}, mcast.SpanningTree); err != ErrTooSmall {
		t.Fatalf("err = %v, want ErrTooSmall", err)
	}
}

func TestGroupOverEveryInterface(t *testing.T) {
	for _, kind := range []transport.Kind{transport.SCI, transport.ACI, transport.HPI} {
		t.Run(kind.String(), func(t *testing.T) {
			nw := core.NewNetwork()
			defer nw.Close()
			names := []string{"gi-0-" + kind.String(), "gi-1-" + kind.String(), "gi-2-" + kind.String()}
			groups, err := Build(nw, names, core.Options{Interface: kind}, mcast.SpanningTree)
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte{5}, 10000)
			runAll(t, groups, func(g *Group) error {
				var msg []byte
				if g.Rank() == 0 {
					msg = payload
				}
				got, err := g.Broadcast(0, msg)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					return fmt.Errorf("rank %d payload mismatch", g.Rank())
				}
				return g.Barrier()
			})
		})
	}
}

func TestLargeBroadcastPayload(t *testing.T) {
	groups, cleanup := buildGroup(t, 4, mcast.SpanningTree)
	defer cleanup()

	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	runAll(t, groups, func(g *Group) error {
		var msg []byte
		if g.Rank() == 0 {
			msg = payload
		}
		got, err := g.Broadcast(0, msg)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d payload mismatch", g.Rank())
		}
		return nil
	})
}
