package group

import (
	"sync"
	"time"
)

// Nonblocking collectives: IBroadcast, IAllReduce, and IAllGather
// return immediately with a Handle the caller awaits later, so a
// member can keep thousands of collective operations in flight without
// a goroutine per operation.
//
// Each member owns one collective engine: a FIFO of submitted
// operations drained by a single goroutine that is spawned on first
// submission and exits the moment the queue runs dry — an idle group
// costs nothing. Operations execute strictly in submission order, and
// the tag advances at execution time exactly as it does for blocking
// calls, so the communicator contract is unchanged: every member
// submits the same collectives in the same order, whether blocking,
// nonblocking, or a mixture. Blocking collectives quiesce the engine
// (drain every pending Handle) before they run, which is what makes
// the mixture safe.
//
// Receive waits inside the engine flow through the member's shared
// core.Inbox like every other collective, so on the sharded runtime a
// whole group progressing thousands of concurrent operations still
// costs O(shards) runtime goroutines plus at most one engine goroutine
// per member.

// Handle is one in-flight nonblocking collective. It completes exactly
// once; after Wait returns (or Done reports true) the result accessors
// and Err are stable.
type Handle struct {
	run   func() error
	done  chan struct{}
	data  []byte
	parts [][]byte
	err   error
}

func newHandle(run func() error) *Handle {
	return &Handle{run: run, done: make(chan struct{})}
}

// Wait blocks until the operation completes and returns its error.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Done reports whether the operation has completed, without blocking.
func (h *Handle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// Err returns the operation's error. It is nil until Done reports
// true: poll Done (or call Wait) to distinguish "still running" from
// "succeeded".
func (h *Handle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// Data returns the operation's payload result (the broadcast message,
// the reduced value). Valid once the operation is done.
func (h *Handle) Data() []byte {
	<-h.done
	return h.data
}

// Parts returns the operation's per-rank results (IAllGather). Valid
// once the operation is done.
func (h *Handle) Parts() [][]byte {
	<-h.done
	return h.parts
}

// engine is a member's nonblocking-collective executor. The zero value
// is ready: the queue allocates on first submission and the drain
// goroutine lives only while operations are pending.
type engine struct {
	mu      sync.Mutex
	queue   []*Handle
	current *Handle // the operation the drain goroutine is executing
	running bool
}

// submit enqueues h and ensures the drain goroutine is running.
func (e *engine) submit(h *Handle) {
	e.mu.Lock()
	e.queue = append(e.queue, h)
	if !e.running {
		e.running = true
		go e.drain()
	}
	e.mu.Unlock()
}

// drain executes queued operations in FIFO order and exits when none
// remain. Under e.mu, running implies a queued or current operation,
// which is what lets quiesce wait on a Handle instead of spinning.
func (e *engine) drain() {
	e.mu.Lock()
	for {
		if len(e.queue) == 0 {
			e.running = false
			e.mu.Unlock()
			return
		}
		h := e.queue[0]
		e.queue[0] = nil
		e.queue = e.queue[1:]
		e.current = h
		e.mu.Unlock()

		start := time.Now()
		h.err = h.run()
		mOpNS.ObserveSince(start)
		close(h.done)

		e.mu.Lock()
		e.current = nil
	}
}

// quiesce blocks until every previously submitted nonblocking
// operation has completed. Blocking collectives call it on entry so
// they take their tag only after the in-flight queue drains — the
// ordering every other member observes.
func (g *Group) quiesce() {
	e := &g.eng
	for {
		e.mu.Lock()
		var wait *Handle
		if n := len(e.queue); n > 0 {
			wait = e.queue[n-1]
		} else {
			wait = e.current
		}
		e.mu.Unlock()
		if wait == nil {
			return
		}
		<-wait.done
	}
}

// IBroadcast is the nonblocking Broadcast: it enqueues the operation
// and returns a Handle immediately. The broadcast payload is available
// from Handle.Data once the operation completes. msg must not be
// mutated until then.
func (g *Group) IBroadcast(root int, msg []byte) (*Handle, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	h := newHandle(nil)
	h.run = func() error {
		data, err := g.broadcast(root, msg)
		h.data = data
		return err
	}
	g.eng.submit(h)
	return h, nil
}

// IAllReduce is the nonblocking AllReduce; the combined value is
// available from Handle.Data once the operation completes. value must
// not be mutated until then. Like AllReduce, it advances the tag twice
// (reduce, then broadcast) on every member.
func (g *Group) IAllReduce(value []byte, op ReduceOp) (*Handle, error) {
	h := newHandle(nil)
	h.run = func() error {
		data, err := g.allReduce(value, op)
		h.data = data
		return err
	}
	g.eng.submit(h)
	return h, nil
}

// IAllGather is the nonblocking AllGather; the rank-indexed payloads
// are available from Handle.Parts once the operation completes. value
// must not be mutated until then. Like AllGather, it advances the tag
// twice (gather, then broadcast) on every member.
func (g *Group) IAllGather(value []byte) (*Handle, error) {
	h := newHandle(nil)
	h.run = func() error {
		parts, err := g.allGather(value)
		h.parts = parts
		return err
	}
	g.eng.submit(h)
	return h, nil
}
