package group

import "ncs/internal/telemetry"

// Group-layer telemetry (catalogue in internal/telemetry doc.go).
var (
	// mOpNS observes wall-clock latency of one collective operation on
	// one member, in nanoseconds — blocking calls and engine-executed
	// nonblocking operations alike.
	mOpNS = telemetry.NewHistogram("group.collective.op_ns")
	// mChunks counts pipelined broadcast chunk frames transmitted
	// (frames belonging to a multi-chunk transfer).
	mChunks = telemetry.NewCounter("group.collective.chunks_total")
	// mMismatch counts collective frames rejected because the members
	// fell out of step (ErrMismatch).
	mMismatch = telemetry.NewCounter("group.collective.mismatch_total")
	// mDeadline counts collective receives that expired on the group
	// deadline (ErrDeadline).
	mDeadline = telemetry.NewCounter("group.collective.deadline_total")
)
