package group

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"ncs/internal/buf"
	"ncs/internal/core"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/mcast"
	"ncs/internal/netsim"
	"ncs/internal/transport"
)

// TestMain joins the group layer to the leak-audit regime every other
// subsystem already runs: after the tests the process must quiesce
// back to the pre-test goroutine count with zero pooled buffers
// outstanding — a leftover goroutine is a mesh connection that
// survived Close, a leftover buffer a frame staging reference nothing
// released.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		deadline := time.Now().Add(10 * time.Second)
		for {
			goroutines := runtime.NumGoroutine()
			bufs := buf.Outstanding()
			if goroutines <= baseline && bufs == 0 {
				break
			}
			if time.Now().After(deadline) {
				stack := make([]byte, 1<<20)
				stack = stack[:runtime.Stack(stack, true)]
				fmt.Fprintf(os.Stderr,
					"group leak audit: %d goroutines (baseline %d), %d pooled buffer refs outstanding\n%s",
					goroutines, baseline, bufs, stack)
				code = 1
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	os.Exit(code)
}

// chaosImpairments are the seeded failure families the property test
// sweeps; reliable error control must push every collective through
// all of them.
var chaosImpairments = []struct {
	name string
	imp  netsim.Impairments
}{
	{"loss", netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: 0.12}}},
	{"duplicate", netsim.Impairments{DupRate: 0.25}},
	{"reorder", netsim.Impairments{ReorderRate: 0.3, ReorderJitter: 2 * time.Millisecond}},
	{"mixed", netsim.Impairments{
		Burst:         netsim.GilbertElliott{LossGood: 0.08},
		DupRate:       0.1,
		ReorderRate:   0.15,
		ReorderJitter: time.Millisecond,
	}},
}

// TestCollectiveChaosProperty is the seeded property test: for both
// multicast algorithms and a sweep of seeds, the full collective
// repertoire must produce exact results over links that lose,
// duplicate, and reorder the data path, with selective-repeat error
// control recovering underneath. Subtest names are replay coordinates.
func TestCollectiveChaosProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, alg := range []mcast.Algorithm{mcast.Repetitive, mcast.SpanningTree} {
		for _, fam := range chaosImpairments {
			for _, seed := range seeds {
				alg, fam, seed := alg, fam, seed
				t.Run(fmt.Sprintf("%v/%s/seed%d", alg, fam.name, seed), func(t *testing.T) {
					t.Parallel()
					runChaosScript(t, alg, fam.imp, seed)
				})
			}
		}
	}
}

func runChaosScript(t *testing.T, alg mcast.Algorithm, imp netsim.Impairments, seed int64) {
	t.Helper()
	const n = 4
	nw := core.NewNetwork()
	defer nw.Close()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("chaos-%v-%d-%d", alg, seed, i)
	}
	opts := core.Options{
		Interface:    transport.HPI,
		ErrorControl: errctl.SelectiveRepeat,
		FlowControl:  flowctl.Credit,
		SDUSize:      512,
		AckTimeout:   25 * time.Millisecond,
		HPILink: &netsim.Params{
			Delay: 100 * time.Microsecond,
			Seed:  seed,
			Impair: netsim.Impairments{
				DupRate:       imp.DupRate,
				ReorderRate:   imp.ReorderRate,
				ReorderJitter: imp.ReorderJitter,
				Burst:         imp.Burst,
			},
		},
	}
	groups, err := BuildConfig(nw, names, opts, Config{
		Algorithm: alg,
		Deadline:  20 * time.Second,
		ChunkSize: 700, // force the chunk pipeline under impairment
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 1+rng.Intn(2500))
	rng.Read(payload)

	wantReduce := ""
	for r := 0; r < n; r++ {
		wantReduce += fmt.Sprintf("<%d>", r)
	}

	runAll(t, groups, func(g *Group) error {
		r := g.Rank()
		// Broadcast: multi-chunk, exact bytes everywhere.
		var msg []byte
		if r == 1 {
			msg = payload
		}
		got, err := g.Broadcast(1, msg)
		if err != nil {
			return fmt.Errorf("broadcast: %w", err)
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("broadcast: rank %d corrupted payload", r)
		}
		// Reduce: strict rank order even under reordering links.
		res, err := g.Reduce(2, []byte(fmt.Sprintf("<%d>", r)), concatOp)
		if err != nil {
			return fmt.Errorf("reduce: %w", err)
		}
		if r == 2 && string(res) != wantReduce {
			return fmt.Errorf("reduce: %q, want %q", res, wantReduce)
		}
		if err := g.Barrier(); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
		// AllToAll: personalised exchange, every part verified.
		parts := make([][]byte, n)
		for i := range parts {
			parts[i] = []byte(fmt.Sprintf("%d>%d", r, i))
		}
		exch, err := g.AllToAll(parts)
		if err != nil {
			return fmt.Errorf("alltoall: %w", err)
		}
		for src, p := range exch {
			if want := fmt.Sprintf("%d>%d", src, r); string(p) != want {
				return fmt.Errorf("alltoall: rank %d slot %d = %q, want %q", r, src, p, want)
			}
		}
		// AllGather: every contribution lands everywhere.
		all, err := g.AllGather([]byte(fmt.Sprintf("g%d", r)))
		if err != nil {
			return fmt.Errorf("allgather: %w", err)
		}
		for src, p := range all {
			if want := fmt.Sprintf("g%d", src); string(p) != want {
				return fmt.Errorf("allgather: rank %d slot %d = %q, want %q", r, src, p, want)
			}
		}
		return nil
	})
}
