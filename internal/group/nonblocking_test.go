package group

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ncs/internal/core"
	"ncs/internal/mcast"
	"ncs/internal/transport"
)

// buildShardedGroup builds a group whose mesh runs on the sharded
// runtime — the configuration the nonblocking engine is built for.
func buildShardedGroup(t *testing.T, n int) ([]*Group, func()) {
	t.Helper()
	nw := core.NewNetwork()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("imember-%d", i)
	}
	opts := core.Options{Interface: transport.HPI, Runtime: core.RuntimeSharded}
	groups, err := Build(nw, names, opts, mcast.SpanningTree)
	if err != nil {
		nw.Close()
		t.Fatal(err)
	}
	return groups, nw.Close
}

func TestIBroadcastDeliversToAll(t *testing.T) {
	groups, cleanup := buildShardedGroup(t, 4)
	defer cleanup()

	payload := []byte("ibroadcast payload")
	runAll(t, groups, func(g *Group) error {
		var msg []byte
		if g.Rank() == 0 {
			msg = payload
		}
		h, err := g.IBroadcast(0, msg)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		if !h.Done() {
			return fmt.Errorf("rank %d: Done false after Wait", g.Rank())
		}
		if got := h.Data(); !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d got %q", g.Rank(), got)
		}
		return nil
	})
}

func TestIAllGatherDeliversAllParts(t *testing.T) {
	groups, cleanup := buildShardedGroup(t, 3)
	defer cleanup()

	runAll(t, groups, func(g *Group) error {
		h, err := g.IAllGather([]byte{byte('a' + g.Rank())})
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		parts := h.Parts()
		if len(parts) != g.Size() {
			return fmt.Errorf("rank %d: %d parts", g.Rank(), len(parts))
		}
		for r, p := range parts {
			if want := []byte{byte('a' + r)}; !bytes.Equal(p, want) {
				return fmt.Errorf("rank %d part %d = %q, want %q", g.Rank(), r, p, want)
			}
		}
		return nil
	})
}

// TestBlockingQuiescesPendingOps submits nonblocking broadcasts and
// immediately calls a blocking Barrier: the barrier must drain the
// queue first (submission order is execution order), so its own frames
// carry later tags than every queued operation on every member.
func TestBlockingQuiescesPendingOps(t *testing.T) {
	groups, cleanup := buildShardedGroup(t, 3)
	defer cleanup()

	const inflight = 16
	runAll(t, groups, func(g *Group) error {
		handles := make([]*Handle, 0, inflight)
		for i := 0; i < inflight; i++ {
			var msg []byte
			if g.Rank() == 0 {
				msg = []byte{byte(i)}
			}
			h, err := g.IBroadcast(0, msg)
			if err != nil {
				return err
			}
			handles = append(handles, h)
		}
		if err := g.Barrier(); err != nil {
			return err
		}
		// After the barrier every queued operation must already be done.
		for i, h := range handles {
			if !h.Done() {
				return fmt.Errorf("rank %d: op %d not drained by Barrier", g.Rank(), i)
			}
			if err := h.Err(); err != nil {
				return err
			}
			if got := h.Data(); len(got) != 1 || got[0] != byte(i) {
				return fmt.Errorf("rank %d op %d got %v", g.Rank(), i, got)
			}
		}
		return nil
	})
}

// TestThousandConcurrentOpsNoGoroutinePerOp is the scale acceptance
// test: 1024 nonblocking collectives in flight per member on a default
// shard pool, audited to run without a goroutine per operation — the
// whole group adds at most one engine goroutine per member while the
// queue drains, and zero once idle.
func TestThousandConcurrentOpsNoGoroutinePerOp(t *testing.T) {
	const members = 4
	const ops = 1024

	groups, cleanup := buildShardedGroup(t, members)
	defer cleanup()

	baseline := runtime.NumGoroutine()

	var peak int
	var peakMu sync.Mutex
	stop := make(chan struct{})
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := runtime.NumGoroutine()
			peakMu.Lock()
			if n > peak {
				peak = n
			}
			peakMu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	seed := make([]byte, 8)
	binary.BigEndian.PutUint64(seed, 1)
	runAll(t, groups, func(g *Group) error {
		handles := make([]*Handle, 0, ops)
		// Alternate IBroadcast and IAllReduce, identically on every
		// member (the communicator contract).
		for i := 0; i < ops; i++ {
			var h *Handle
			var err error
			if i%2 == 0 {
				var msg []byte
				if g.Rank() == 0 {
					msg = []byte{byte(i), byte(i >> 8)}
				}
				h, err = g.IBroadcast(0, msg)
			} else {
				h, err = g.IAllReduce(seed, sumOp)
			}
			if err != nil {
				return err
			}
			handles = append(handles, h)
		}
		for i, h := range handles {
			if err := h.Wait(); err != nil {
				return fmt.Errorf("rank %d op %d: %w", g.Rank(), i, err)
			}
			if i%2 == 0 {
				want := []byte{byte(i), byte(i >> 8)}
				if !bytes.Equal(h.Data(), want) {
					return fmt.Errorf("rank %d op %d got %v, want %v", g.Rank(), i, h.Data(), want)
				}
			} else if got := binary.BigEndian.Uint64(h.Data()); got != members {
				return fmt.Errorf("rank %d op %d sum = %d, want %d", g.Rank(), i, got, members)
			}
		}
		return nil
	})
	close(stop)
	auditWG.Wait()

	// The audit: with members×ops operations in flight, the goroutine
	// peak must be bounded by the members (one engine goroutine each)
	// plus the submitters and the auditor — nowhere near one per op.
	budget := baseline + 3*members
	peakMu.Lock()
	observed := peak
	peakMu.Unlock()
	if observed > budget {
		t.Fatalf("goroutine peak %d exceeds budget %d (baseline %d) with %d ops in flight",
			observed, budget, baseline, members*ops)
	}

	// Idle again: every engine goroutine must have exited with its
	// drained queue.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline %d: %d still running",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
