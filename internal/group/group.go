// Package group provides NCS group communication and synchronisation
// services (§2: "communication services (e.g., point-to-point
// communication, group communication, synchronization)"): process
// groups with ranks, broadcast over a selectable multicast algorithm
// (repetitive or spanning tree, per §2's algorithm list), reduction, and
// barrier synchronisation.
//
// A Group is a collective communicator: every member must call the same
// collective operation (Broadcast, Reduce, Barrier, AllReduce) in the
// same order, as in MPI. The group owns its mesh of NCS connections;
// do not reuse them for point-to-point traffic.
package group

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ncs/internal/core"
	"ncs/internal/mcast"
)

// Errors returned by group operations.
var (
	ErrBadRank  = errors.New("group: rank out of range")
	ErrTooSmall = errors.New("group: need at least one member")
)

// Group is one member's handle on a process group.
type Group struct {
	rank  int
	size  int
	alg   mcast.Algorithm
	conns []*core.Connection // index = peer rank; nil at own rank
}

// Rank returns this member's rank in 0..Size()-1.
func (g *Group) Rank() int { return g.rank }

// Size returns the number of members.
func (g *Group) Size() int { return g.size }

// Algorithm returns the multicast algorithm chosen at build time.
func (g *Group) Algorithm() mcast.Algorithm { return g.alg }

// Build constructs a process group over the named systems, creating a
// full mesh of NCS connections with the given per-connection options.
// It returns one Group handle per member, indexed by rank (the order of
// names). The multicast algorithm applies to Broadcast/Reduce traffic.
func Build(nw *core.Network, names []string, opts core.Options, alg mcast.Algorithm) ([]*Group, error) {
	if len(names) == 0 {
		return nil, ErrTooSmall
	}
	if alg == 0 {
		alg = mcast.SpanningTree
	}
	systems := make([]*core.System, len(names))
	for i, name := range names {
		s, err := nw.NewSystem(name)
		if err != nil {
			return nil, fmt.Errorf("group build: %w", err)
		}
		systems[i] = s
	}
	return Connect(systems, opts, alg)
}

// Connect builds the group mesh over pre-existing systems. The rank
// order follows the systems slice.
func Connect(systems []*core.System, opts core.Options, alg mcast.Algorithm) ([]*Group, error) {
	n := len(systems)
	if n == 0 {
		return nil, ErrTooSmall
	}
	if alg == 0 {
		alg = mcast.SpanningTree
	}
	rankOf := make(map[string]int, n)
	for i, s := range systems {
		rankOf[s.Name()] = i
	}
	groups := make([]*Group, n)
	for i, s := range systems {
		groups[i] = &Group{rank: i, size: n, alg: alg, conns: make([]*core.Connection, n)}
		_ = s
	}

	// Dial the upper triangle; accept on the target side. Acceptance
	// order is not guaranteed, so match peers by name.
	type dialResult struct {
		i, j int
		conn *core.Connection
		err  error
	}
	results := make(chan dialResult, n*n)
	pending := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pending++
			go func(i, j int) {
				conn, err := systems[i].Connect(systems[j].Name(), opts)
				results <- dialResult{i: i, j: j, conn: conn, err: err}
			}(i, j)
		}
	}
	// Each system j accepts connections from every i < j.
	accepted := make(chan dialResult, n*n)
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			pending++
			go func(j int) {
				conn, err := systems[j].AcceptTimeout(10 * time.Second)
				if err != nil {
					accepted <- dialResult{err: err}
					return
				}
				i, ok := rankOf[conn.Peer()]
				if !ok {
					accepted <- dialResult{err: fmt.Errorf("group: unknown peer %q", conn.Peer())}
					return
				}
				accepted <- dialResult{i: i, j: j, conn: conn}
			}(j)
		}
	}

	var firstErr error
	for k := 0; k < pending; k++ {
		var r dialResult
		select {
		case r = <-results:
			if r.err == nil {
				groups[r.i].conns[r.j] = r.conn
			}
		case r = <-accepted:
			if r.err == nil {
				groups[r.j].conns[r.i] = r.conn
			}
		}
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return groups, nil
}

// Broadcast distributes msg from root to every member, following the
// group's multicast algorithm. The root passes the payload; other ranks
// pass nil and receive the payload as the return value. All members
// must call Broadcast collectively.
func (g *Group) Broadcast(root int, msg []byte) ([]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	if g.size == 1 {
		return msg, nil
	}
	if g.rank != root {
		parent := mcast.Parent(g.alg, g.size, root, g.rank)
		m, err := g.conns[parent].Recv()
		if err != nil {
			return nil, fmt.Errorf("group broadcast recv from %d: %w", parent, err)
		}
		msg = m
	}
	for _, child := range mcast.Children(g.alg, g.size, root, g.rank) {
		if err := g.conns[child].Send(msg); err != nil {
			return nil, fmt.Errorf("group broadcast send to %d: %w", child, err)
		}
	}
	return msg, nil
}

// ReduceOp combines two partial values into one.
type ReduceOp func(a, b []byte) []byte

// Reduce combines each member's value up the multicast tree to root.
// The root receives the fully combined value; other ranks receive nil.
func (g *Group) Reduce(root int, value []byte, op ReduceOp) ([]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	if g.size == 1 {
		return value, nil
	}
	acc := value
	// Children deliver their partials in reverse round order (deepest
	// subtree first keeps the tree pipelined, but any fixed order works
	// as long as both sides agree — we use the Children order).
	for _, child := range mcast.Children(g.alg, g.size, root, g.rank) {
		part, err := g.conns[child].Recv()
		if err != nil {
			return nil, fmt.Errorf("group reduce recv from %d: %w", child, err)
		}
		acc = op(acc, part)
	}
	if g.rank == root {
		return acc, nil
	}
	parent := mcast.Parent(g.alg, g.size, root, g.rank)
	if err := g.conns[parent].Send(acc); err != nil {
		return nil, fmt.Errorf("group reduce send to %d: %w", parent, err)
	}
	return nil, nil
}

// AllReduce is Reduce to rank 0 followed by Broadcast of the result.
func (g *Group) AllReduce(value []byte, op ReduceOp) ([]byte, error) {
	acc, err := g.Reduce(0, value, op)
	if err != nil {
		return nil, err
	}
	return g.Broadcast(0, acc)
}

// Barrier blocks until every member has entered it. It is implemented
// as an empty AllReduce over the multicast tree: ⌈log₂ n⌉ up plus
// ⌈log₂ n⌉ down rounds under the spanning tree.
func (g *Group) Barrier() error {
	_, err := g.AllReduce([]byte{}, func(a, b []byte) []byte { return a })
	return err
}

// Ranks returns all ranks ordered; handy for iteration in examples.
func (g *Group) Ranks() []int {
	out := make([]int, g.size)
	for i := range out {
		out[i] = i
	}
	sort.Ints(out)
	return out
}

// Close tears down this member's connections. Each connection is shared
// between two members; closing from either side suffices, and closing
// both is safe.
func (g *Group) Close() {
	for _, c := range g.conns {
		if c != nil {
			c.Close()
		}
	}
}
