// Package group provides NCS group communication and synchronisation
// services (§2: "communication services (e.g., point-to-point
// communication, group communication, synchronization)"): process
// groups with ranks, collectives over a selectable multicast algorithm
// (repetitive or spanning tree, per §2's algorithm list), reduction,
// and barrier synchronisation.
//
// A Group is a collective communicator: every member must call the same
// collective operation (Broadcast, Reduce, Barrier, Scatter, Gather,
// AllGather, ReduceScatter, AllToAll, AllReduce) in the same order, as
// in MPI. The group owns its mesh of NCS connections; do not reuse them
// for point-to-point traffic.
//
// Nonblocking variants (IBroadcast, IAllReduce, IAllGather) enqueue
// the operation on the member's collective engine and return an
// awaitable Handle immediately; see nonblocking.go. Submission order
// is execution order, so mixing blocking and nonblocking calls keeps
// the communicator contract: blocking collectives drain the pending
// queue before they run.
//
// # The collective engine
//
// Every transfer is a tagged frame: a 17-byte header carrying the
// operation code, a per-member collective sequence number, and chunk
// coordinates, followed by the payload. The tag advances identically on
// every member (one increment per collective call), so a member that
// falls out of step — calling Broadcast where the others call Reduce,
// or skipping a collective — is detected as a mismatch error instead of
// silently combining the wrong bytes.
//
// Every operation runs under the group's deadline (Config.Deadline,
// SetDeadline): receive waits are plumbed down to the connection's
// RecvTimeout, so the death of a member or the loss of an unreliable
// frame surfaces as an error within the deadline instead of a hang.
//
// Large broadcasts are pipelined: the payload is split into
// Config.ChunkSize chunks that flow down the multicast tree
// back-to-back, so an interior rank forwards chunk k while the wire
// delivers chunk k+1 from its parent. Dissemination of an M-byte
// message then costs ~M + chunk·⌈log₂ n⌉ instead of M·⌈log₂ n⌉ on the
// spanning tree's critical path.
//
// Frame staging goes through the pooled buffer pipeline
// (internal/buf), and received payloads are returned as views of the
// delivered message wherever the API allows, rather than copies.
//
// Members built over non-fast-path connections receive through one
// shared core.Inbox per member rather than per-connection waits: on the
// sharded runtime a group's whole mesh costs O(shards) goroutines, not
// O(n²).
package group

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"ncs/internal/buf"
	"ncs/internal/core"
	"ncs/internal/mcast"
)

// Errors returned by group operations.
var (
	ErrBadRank       = errors.New("group: rank out of range")
	ErrTooSmall      = errors.New("group: need at least one member")
	ErrDuplicateName = errors.New("group: duplicate system name")
	// ErrDeadline is returned when a collective's receive side did not
	// complete within the group deadline (Config.Deadline).
	ErrDeadline = errors.New("group: collective deadline exceeded")
	// ErrMismatch is returned when a frame arrives for a different
	// collective than the one this member is executing — the members
	// have fallen out of step.
	ErrMismatch = errors.New("group: collective mismatch")
)

// Defaults for Config.
const (
	// DefaultDeadline bounds each collective operation.
	DefaultDeadline = 30 * time.Second
	// DefaultChunkSize is the broadcast pipelining unit.
	DefaultChunkSize = 32 * 1024
)

// connCheckInterval paces the inbox receive loop's liveness check: a
// member blocked on a frame re-examines the source connection at this
// interval so a peer's death surfaces promptly instead of only at the
// operation deadline.
const connCheckInterval = 20 * time.Millisecond

// Config tunes a group's collective engine.
type Config struct {
	// Algorithm selects the multicast dissemination strategy for
	// tree-shaped collectives. Default mcast.SpanningTree.
	Algorithm mcast.Algorithm
	// Deadline bounds every collective operation: receive waits are
	// plumbed to Connection.RecvTimeout and expire with ErrDeadline.
	// Default DefaultDeadline.
	Deadline time.Duration
	// ChunkSize is the broadcast pipelining unit: payloads larger than
	// this are streamed down the tree in ChunkSize pieces. Default
	// DefaultChunkSize.
	ChunkSize int
}

func (c Config) withDefaults() Config {
	if c.Algorithm == 0 {
		c.Algorithm = mcast.SpanningTree
	}
	if c.Deadline <= 0 {
		c.Deadline = DefaultDeadline
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	return c
}

// ---------------------------------------------------------------------------
// Frames: every collective transfer is tagged with the operation and
// the member's collective sequence number, plus chunk coordinates for
// pipelined transfers.

// Collective operation codes carried in frame headers.
const (
	opBroadcast = byte(iota + 1)
	opReduce
	opScatter
	opGather
	opReduceScatter
	opAllToAll
)

func opName(op byte) string {
	switch op {
	case opBroadcast:
		return "broadcast"
	case opReduce:
		return "reduce"
	case opScatter:
		return "scatter"
	case opGather:
		return "gather"
	case opReduceScatter:
		return "reduce-scatter"
	case opAllToAll:
		return "all-to-all"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}

// frameHeaderSize is op(1) + tag(4) + chunk(4) + nchunks(4) + total(4).
const frameHeaderSize = 17

func appendFrameHeader(dst []byte, op byte, tag, chunk, nchunks, total uint32) []byte {
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint32(dst, tag)
	dst = binary.BigEndian.AppendUint32(dst, chunk)
	dst = binary.BigEndian.AppendUint32(dst, nchunks)
	dst = binary.BigEndian.AppendUint32(dst, total)
	return dst
}

// frame is a parsed collective transfer; payload aliases the delivered
// message storage (no copy).
type frame struct {
	op      byte
	tag     uint32
	chunk   uint32
	nchunks uint32
	total   uint32
	payload []byte
}

func parseFrame(raw []byte) (frame, error) {
	if len(raw) < frameHeaderSize {
		return frame{}, fmt.Errorf("%w: %d-byte frame", ErrMismatch, len(raw))
	}
	return frame{
		op:      raw[0],
		tag:     binary.BigEndian.Uint32(raw[1:]),
		chunk:   binary.BigEndian.Uint32(raw[5:]),
		nchunks: binary.BigEndian.Uint32(raw[9:]),
		total:   binary.BigEndian.Uint32(raw[13:]),
		payload: raw[frameHeaderSize:],
	}, nil
}

// ---------------------------------------------------------------------------

// Group is one member's handle on a process group.
type Group struct {
	rank int
	size int
	cfg  Config

	conns []*core.Connection // index = peer rank; nil at own rank

	// inbox merges every peer connection's deliveries into one stream
	// (nil on fast-path groups, which must receive per connection);
	// connRank demultiplexes a delivery back to its peer rank, and
	// pending queues frames that arrived while the member was waiting
	// on a different peer.
	inbox    *core.Inbox
	connRank map[*core.Connection]int
	pending  [][][]byte

	// tag is the member's collective sequence number. Collectives are
	// called in the same order on every member (the communicator
	// contract), one at a time per member, so plain arithmetic under
	// the caller's own ordering suffices. Nonblocking collectives keep
	// the contract by executing on the member's single engine
	// goroutine in submission order, and blocking collectives quiesce
	// that engine before taking their tag.
	tag uint32

	// eng executes nonblocking collectives (nonblocking.go). Zero
	// value ready; costs nothing until the first IBroadcast/IAllReduce.
	eng engine
}

// Rank returns this member's rank in 0..Size()-1.
func (g *Group) Rank() int { return g.rank }

// Size returns the number of members.
func (g *Group) Size() int { return g.size }

// Algorithm returns the multicast algorithm chosen at build time.
func (g *Group) Algorithm() mcast.Algorithm { return g.cfg.Algorithm }

// Deadline returns the per-operation deadline.
func (g *Group) Deadline() time.Duration { return g.cfg.Deadline }

// SetDeadline changes the per-operation deadline for subsequent
// collectives on this member. It bounds this member's receive waits
// only; set it identically on every member for a uniform budget.
func (g *Group) SetDeadline(d time.Duration) {
	if d <= 0 {
		d = DefaultDeadline
	}
	g.cfg.Deadline = d
}

// opDeadline computes the absolute deadline for one collective.
func (g *Group) opDeadline() time.Time { return time.Now().Add(g.cfg.Deadline) }

// nextTag advances the member's collective sequence number.
func (g *Group) nextTag() uint32 {
	g.tag++
	return g.tag
}

// Build constructs a process group over the named systems, creating a
// full mesh of NCS connections with the given per-connection options.
// It returns one Group handle per member, indexed by rank (the order of
// names). The multicast algorithm applies to collective traffic.
func Build(nw *core.Network, names []string, opts core.Options, alg mcast.Algorithm) ([]*Group, error) {
	return BuildConfig(nw, names, opts, Config{Algorithm: alg})
}

// BuildConfig is Build with full engine configuration.
func BuildConfig(nw *core.Network, names []string, opts core.Options, cfg Config) ([]*Group, error) {
	if len(names) == 0 {
		return nil, ErrTooSmall
	}
	systems := make([]*core.System, len(names))
	for i, name := range names {
		s, err := nw.NewSystem(name)
		if err != nil {
			return nil, fmt.Errorf("group build: %w", err)
		}
		systems[i] = s
	}
	return ConnectConfig(systems, opts, cfg)
}

// Connect builds the group mesh over pre-existing systems. The rank
// order follows the systems slice.
func Connect(systems []*core.System, opts core.Options, alg mcast.Algorithm) ([]*Group, error) {
	return ConnectConfig(systems, opts, Config{Algorithm: alg})
}

// dialResult is one mesh edge's establishment outcome: the connection
// belongs to groups[owner].conns[peer] on success.
type dialResult struct {
	owner, peer int
	conn        *core.Connection
	err         error
}

// ConnectConfig is Connect with full engine configuration. On failure
// no connection is leaked: every connection already established is
// closed, and connections still arriving from in-flight dial/accept
// goroutines are closed as they land.
func ConnectConfig(systems []*core.System, opts core.Options, cfg Config) ([]*Group, error) {
	n := len(systems)
	if n == 0 {
		return nil, ErrTooSmall
	}
	cfg = cfg.withDefaults()

	// Peers are matched by system name during accept, so names must be
	// unique or members would be silently mis-ranked.
	rankOf := make(map[string]int, n)
	for i, s := range systems {
		if prev, dup := rankOf[s.Name()]; dup {
			return nil, fmt.Errorf("%w: %q is both rank %d and rank %d",
				ErrDuplicateName, s.Name(), prev, i)
		}
		rankOf[s.Name()] = i
	}
	groups := make([]*Group, n)
	for i := range systems {
		groups[i] = &Group{rank: i, size: n, cfg: cfg, conns: make([]*core.Connection, n)}
	}

	// Dial the upper triangle; accept on the target side. Acceptance
	// order is not guaranteed, so match peers by name. The channel is
	// buffered for every outcome, so the dial/accept goroutines always
	// run to completion even if ConnectConfig returns early on error.
	results := make(chan dialResult, n*n)
	pending := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pending++
			go func(i, j int) {
				conn, err := systems[i].Connect(systems[j].Name(), opts)
				results <- dialResult{owner: i, peer: j, conn: conn, err: err}
			}(i, j)
		}
	}
	// Each system j accepts connections from every i < j.
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			pending++
			go func(j int) {
				conn, err := systems[j].AcceptTimeout(10 * time.Second)
				if err != nil {
					results <- dialResult{err: err}
					return
				}
				i, ok := rankOf[conn.Peer()]
				if !ok {
					conn.Close()
					results <- dialResult{err: fmt.Errorf("group: unknown peer %q", conn.Peer())}
					return
				}
				results <- dialResult{owner: j, peer: i, conn: conn}
			}(j)
		}
	}

	for k := 0; k < pending; k++ {
		r := <-results
		if r.err != nil {
			// Close everything established so far, then reap the
			// still-arriving connections asynchronously (an accept
			// against a dead dialer takes its full timeout to give up;
			// the caller should not wait for it).
			for _, g := range groups {
				for _, c := range g.conns {
					if c != nil {
						c.Close()
					}
				}
			}
			go func(remaining int) {
				for i := 0; i < remaining; i++ {
					if late := <-results; late.conn != nil {
						late.conn.Close()
					}
				}
			}(pending - k - 1)
			return nil, r.err
		}
		groups[r.owner].conns[r.peer] = r.conn
	}

	// Wire up collective delivery: one shared inbox per member (the
	// sharded runtime's fan-in path) unless the connections run the
	// fast path, whose receives must stay on the calling goroutine.
	if !opts.FastPath && n > 1 {
		depth := 4 * n
		if depth < 256 {
			depth = 256
		}
		for _, g := range groups {
			g.inbox = core.NewInbox(depth)
			g.connRank = make(map[*core.Connection]int, n-1)
			g.pending = make([][][]byte, n)
			for peer, c := range g.conns {
				if c == nil {
					continue
				}
				g.connRank[c] = peer
				if err := c.BindInbox(g.inbox); err != nil {
					for _, gg := range groups {
						gg.Close()
					}
					return nil, fmt.Errorf("group: bind inbox: %w", err)
				}
			}
		}
	}
	return groups, nil
}

// ---------------------------------------------------------------------------
// Frame transport.

// sendFrame stages one tagged frame through a pooled buffer and
// transmits it to dst.
func (g *Group) sendFrame(dst int, op byte, tag, chunk, nchunks, total uint32, payload []byte) error {
	if nchunks > 1 {
		mChunks.IncAt(uint32(dst))
	}
	b := buf.GetCap(frameHeaderSize + len(payload))
	b.B = appendFrameHeader(b.B, op, tag, chunk, nchunks, total)
	b.B = append(b.B, payload...)
	err := g.conns[dst].Send(b.B)
	b.Release()
	if err != nil {
		return fmt.Errorf("group %s send to %d: %w", opName(op), dst, err)
	}
	return nil
}

// recvRaw returns the next message from peer rank src, demultiplexing
// through the member's inbox when one is bound. Frames from other peers
// that arrive while waiting are queued for their own receives. The wait
// is bounded by dl and by the source connection's liveness.
func (g *Group) recvRaw(src int, dl time.Time) ([]byte, error) {
	if q := g.pending; q != nil && len(q[src]) > 0 {
		raw := q[src][0]
		q[src][0] = nil
		q[src] = q[src][1:]
		return raw, nil
	}
	if g.inbox == nil {
		remain := time.Until(dl)
		if remain <= 0 {
			return nil, fmt.Errorf("recv from %d: %w", src, ErrDeadline)
		}
		m, err := g.conns[src].RecvMessageTimeout(remain)
		if err != nil {
			if errors.Is(err, core.ErrRecvTimeout) {
				err = ErrDeadline
			}
			return nil, fmt.Errorf("recv from %d: %w", src, err)
		}
		if m.Lost > 0 {
			return nil, fmt.Errorf("recv from %d: frame lost %d SDUs", src, m.Lost)
		}
		return m.Data, nil
	}
	for {
		// A dead peer delivers nothing more: fail now rather than
		// holding every survivor until the operation deadline.
		if err := g.conns[src].Err(); err != nil {
			return nil, fmt.Errorf("recv from %d: %w", src, err)
		}
		remain := time.Until(dl)
		if remain <= 0 {
			return nil, fmt.Errorf("recv from %d: %w", src, ErrDeadline)
		}
		if remain > connCheckInterval {
			remain = connCheckInterval
		}
		im, err := g.inbox.RecvTimeout(remain)
		if err != nil {
			if errors.Is(err, core.ErrRecvTimeout) {
				continue
			}
			return nil, fmt.Errorf("recv from %d: %w", src, err)
		}
		from, ok := g.connRank[im.Conn]
		if !ok {
			continue
		}
		if im.Msg.Lost > 0 {
			// An unreliable (ErrorControl None) connection delivered a
			// frame with missing SDUs: honest loss accounting, but
			// never valid collective data — reject rather than combine
			// damaged bytes.
			return nil, fmt.Errorf("recv from %d: frame lost %d SDUs", from, im.Msg.Lost)
		}
		if from == src {
			return im.Msg.Data, nil
		}
		g.pending[from] = append(g.pending[from], im.Msg.Data)
	}
}

// recvFrame receives and validates one frame of the given collective
// from src: the operation, tag, and chunk index must match what this
// member is executing, or the members have diverged.
func (g *Group) recvFrame(src int, op byte, tag, chunk uint32, dl time.Time) (frame, error) {
	raw, err := g.recvRaw(src, dl)
	if err != nil {
		if errors.Is(err, ErrDeadline) {
			mDeadline.Inc()
		}
		return frame{}, fmt.Errorf("group %s: %w", opName(op), err)
	}
	f, err := parseFrame(raw)
	if err != nil {
		mMismatch.Inc()
		return frame{}, fmt.Errorf("group %s from %d: %w", opName(op), src, err)
	}
	if f.op != op || f.tag != tag || f.chunk != chunk {
		mMismatch.Inc()
		return frame{}, fmt.Errorf("%w: rank %d expected %s tag %d chunk %d from %d, got %s tag %d chunk %d",
			ErrMismatch, g.rank, opName(op), tag, chunk, src, opName(f.op), f.tag, f.chunk)
	}
	return f, nil
}

// ---------------------------------------------------------------------------
// Collectives.

// Broadcast distributes msg from root to every member, following the
// group's multicast algorithm. The root passes the payload; other ranks
// pass nil and receive the payload as the return value. Payloads larger
// than Config.ChunkSize are pipelined down the tree in chunks: an
// interior rank forwards chunk k while the wire delivers chunk k+1.
// All members must call Broadcast collectively.
func (g *Group) Broadcast(root int, msg []byte) ([]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.broadcast(root, msg)
}

// broadcast is the engine-callable implementation: it assumes any
// pending nonblocking operations have already drained (quiesce) or
// that it is itself running on the engine goroutine.
func (g *Group) broadcast(root int, msg []byte) ([]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	tag := g.nextTag()
	if g.size == 1 {
		return msg, nil
	}
	dl := g.opDeadline()
	children := mcast.Children(g.cfg.Algorithm, g.size, root, g.rank)

	if g.rank == root {
		return msg, g.broadcastChunks(children, tag, msg)
	}

	parent := mcast.Parent(g.cfg.Algorithm, g.size, root, g.rank)
	f, err := g.recvFrame(parent, opBroadcast, tag, 0, dl)
	if err != nil {
		return nil, err
	}
	if f.nchunks == 1 {
		// Single-chunk message: forward and return the payload view of
		// the delivered frame — no reassembly copy.
		for _, child := range children {
			if err := g.sendFrame(child, opBroadcast, tag, 0, 1, f.total, f.payload); err != nil {
				return nil, err
			}
		}
		return f.payload, nil
	}
	out := make([]byte, 0, f.total)
	nchunks := f.nchunks
	for k := uint32(0); ; k++ {
		if k > 0 {
			if f, err = g.recvFrame(parent, opBroadcast, tag, k, dl); err != nil {
				return nil, err
			}
			if f.nchunks != nchunks {
				return nil, fmt.Errorf("%w: chunk count changed mid-broadcast (%d → %d)",
					ErrMismatch, nchunks, f.nchunks)
			}
		}
		for _, child := range children {
			if err := g.sendFrame(child, opBroadcast, tag, k, nchunks, f.total, f.payload); err != nil {
				return nil, err
			}
		}
		out = append(out, f.payload...)
		if k == nchunks-1 {
			break
		}
	}
	if uint32(len(out)) != f.total {
		return nil, fmt.Errorf("%w: reassembled %d bytes, expected %d", ErrMismatch, len(out), f.total)
	}
	return out, nil
}

// broadcastChunks streams msg from the root. On the spanning tree each
// chunk reaches every child before the next is cut, so the pipeline
// fills the whole tree depth and downstream links drain in parallel.
// The repetitive algorithm is, per the paper, a transfer to each member
// in sequence: the root completes one child's whole message before
// starting the next — exactly the serialisation the spanning tree is
// there to beat.
func (g *Group) broadcastChunks(children []int, tag uint32, msg []byte) error {
	chunk := g.cfg.ChunkSize
	nchunks := (len(msg) + chunk - 1) / chunk
	if nchunks == 0 {
		nchunks = 1
	}
	send := func(child, k int) error {
		lo := k * chunk
		hi := lo + chunk
		if hi > len(msg) {
			hi = len(msg)
		}
		return g.sendFrame(child, opBroadcast, tag, uint32(k), uint32(nchunks),
			uint32(len(msg)), msg[lo:hi])
	}
	if g.cfg.Algorithm == mcast.Repetitive {
		for _, child := range children {
			for k := 0; k < nchunks; k++ {
				if err := send(child, k); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for k := 0; k < nchunks; k++ {
		for _, child := range children {
			if err := send(child, k); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReduceOp combines two partial values into one. It must be
// associative; it need not be commutative — partials are always
// combined in ascending rank order, as MPI requires, so
// non-commutative operations (concatenation, matrix products) give the
// same answer on every run and under both multicast algorithms.
type ReduceOp func(a, b []byte) []byte

// Reduce combines each member's value to root. The root receives the
// fully combined value; other ranks receive nil.
//
// Combination runs up the rank-ordered combining tree rooted at rank 0
// (mcast.CombineChildren) regardless of the requested root: every
// combining subtree covers a contiguous rank interval, so folding
// own-value-then-children yields the strict rank order 0⊕1⊕…⊕(n-1).
// When root ≠ 0, rank 0 relays the final value to root — one extra
// hop, in exchange for determinism under non-commutative operations.
func (g *Group) Reduce(root int, value []byte, op ReduceOp) ([]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.reduce(root, value, op)
}

// reduce is the engine-callable implementation (see broadcast).
func (g *Group) reduce(root int, value []byte, op ReduceOp) ([]byte, error) {
	if root < 0 || root >= g.size {
		return nil, ErrBadRank
	}
	tag := g.nextTag()
	if g.size == 1 {
		return value, nil
	}
	dl := g.opDeadline()

	acc := value
	for _, child := range mcast.CombineChildren(g.cfg.Algorithm, g.size, g.rank) {
		f, err := g.recvFrame(child, opReduce, tag, 0, dl)
		if err != nil {
			return nil, err
		}
		acc = op(acc, f.payload)
	}
	if g.rank != 0 {
		parent := mcast.CombineParent(g.cfg.Algorithm, g.size, g.rank)
		if err := g.sendFrame(parent, opReduce, tag, 0, 1, uint32(len(acc)), acc); err != nil {
			return nil, err
		}
		if g.rank != root {
			return nil, nil
		}
		f, err := g.recvFrame(0, opReduce, tag, 1, dl)
		if err != nil {
			return nil, err
		}
		return f.payload, nil
	}
	// Rank 0 holds the full rank-ordered reduction.
	if root != 0 {
		if err := g.sendFrame(root, opReduce, tag, 1, 1, uint32(len(acc)), acc); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return acc, nil
}

// AllReduce is Reduce to rank 0 followed by Broadcast of the result.
func (g *Group) AllReduce(value []byte, op ReduceOp) ([]byte, error) {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	return g.allReduce(value, op)
}

// allReduce is the engine-callable implementation (see broadcast).
func (g *Group) allReduce(value []byte, op ReduceOp) ([]byte, error) {
	acc, err := g.reduce(0, value, op)
	if err != nil {
		return nil, err
	}
	return g.broadcast(0, acc)
}

// Barrier blocks until every member has entered it (or the group
// deadline expires). It is implemented as an empty AllReduce over the
// multicast tree: ⌈log₂ n⌉ up plus ⌈log₂ n⌉ down rounds under the
// spanning tree.
func (g *Group) Barrier() error {
	g.quiesce()
	start := time.Now()
	defer mOpNS.ObserveSince(start)
	_, err := g.allReduce([]byte{}, func(a, b []byte) []byte { return a })
	return err
}

// Ranks returns all ranks ordered; handy for iteration in examples.
func (g *Group) Ranks() []int {
	out := make([]int, g.size)
	for i := range out {
		out[i] = i
	}
	sort.Ints(out)
	return out
}

// Close tears down this member's connections and its delivery inbox.
// Each connection is shared between two members; closing from either
// side suffices, and closing both is safe. Nonblocking operations
// still in flight fail promptly (closed connections) and their
// Handles complete with errors.
func (g *Group) Close() {
	for _, c := range g.conns {
		if c != nil {
			c.Close()
		}
	}
	if g.inbox != nil {
		g.inbox.Close()
	}
}
