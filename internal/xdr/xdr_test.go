package xdr

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(64)
	e.PutUint32(0xdeadbeef)
	e.PutInt32(-42)
	e.PutUint64(1 << 40)
	e.PutInt64(-1 << 40)
	e.PutBool(true)
	e.PutBool(false)
	e.PutFloat32(3.5)
	e.PutFloat64(-2.25)

	d := NewDecoder(e.Bytes())
	if v, err := d.Uint32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("Uint32 = %v, %v", v, err)
	}
	if v, err := d.Int32(); err != nil || v != -42 {
		t.Fatalf("Int32 = %v, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 1<<40 {
		t.Fatalf("Uint64 = %v, %v", v, err)
	}
	if v, err := d.Int64(); err != nil || v != -1<<40 {
		t.Fatalf("Int64 = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v != true {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v != false {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Float32(); err != nil || v != 3.5 {
		t.Fatalf("Float32 = %v, %v", v, err)
	}
	if v, err := d.Float64(); err != nil || v != -2.25 {
		t.Fatalf("Float64 = %v, %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n < 9; n++ {
		e := NewEncoder(32)
		payload := bytes.Repeat([]byte{0xab}, n)
		e.PutOpaque(payload)
		if e.Len()%4 != 0 {
			t.Errorf("len(%d-byte opaque) = %d, not 4-aligned", n, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil {
			t.Fatalf("Opaque(%d): %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("Opaque(%d) round trip mismatch", n)
		}
		if d.Remaining() != 0 {
			t.Errorf("Opaque(%d) left %d bytes", n, d.Remaining())
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	tests := []string{"", "a", "hello", "padded!", "exact４"}
	for _, s := range tests {
		e := NewEncoder(32)
		e.PutString(s)
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		if err != nil {
			t.Fatalf("String(%q): %v", s, err)
		}
		if got != s {
			t.Errorf("String(%q) = %q", s, got)
		}
	}
}

func TestSlices(t *testing.T) {
	ints := []int32{1, -2, 3, math.MaxInt32, math.MinInt32}
	floats := []float64{0, 1.5, -2.25, math.Inf(1)}

	e := NewEncoder(128)
	e.PutInt32Slice(ints)
	e.PutFloat64Slice(floats)

	d := NewDecoder(e.Bytes())
	gotInts, err := d.Int32Slice()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if gotInts[i] != ints[i] {
			t.Errorf("int[%d] = %d, want %d", i, gotInts[i], ints[i])
		}
	}
	gotFloats, err := d.Float64Slice()
	if err != nil {
		t.Fatal(err)
	}
	for i := range floats {
		if gotFloats[i] != floats[i] {
			t.Errorf("float[%d] = %v, want %v", i, gotFloats[i], floats[i])
		}
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Errorf("Uint32 on short buffer: err = %v", err)
	}
	if _, err := d.Uint64(); err != ErrShortBuffer {
		t.Errorf("Uint64 on short buffer: err = %v", err)
	}
	// Opaque claiming more data than present.
	e := NewEncoder(8)
	e.PutUint32(100)
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Errorf("Opaque with bogus length: err = %v", err)
	}
}

func TestInvalidBool(t *testing.T) {
	e := NewEncoder(4)
	e.PutUint32(7)
	d := NewDecoder(e.Bytes())
	if _, err := d.Bool(); err == nil {
		t.Error("Bool(7) succeeded, want error")
	}
}

func TestReset(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.PutUint32(2)
	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 2 {
		t.Fatalf("after Reset got %d, want 2", v)
	}
}

// Property: any byte slice round-trips through opaque encoding.
func TestQuickOpaqueRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		e := NewEncoder(len(p) + 8)
		e.PutOpaque(p)
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		return err == nil && bytes.Equal(got, p) && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mixed scalar sequences round-trip.
func TestQuickScalarRoundTrip(t *testing.T) {
	f := func(a int32, b uint64, c float64, s string) bool {
		e := NewEncoder(64)
		e.PutInt32(a)
		e.PutUint64(b)
		e.PutFloat64(c)
		e.PutString(s)
		d := NewDecoder(e.Bytes())
		ga, err1 := d.Int32()
		gb, err2 := d.Uint64()
		gc, err3 := d.Float64()
		gs, err4 := d.String()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		// NaN != NaN; compare bit patterns.
		return ga == a && gb == b &&
			math.Float64bits(gc) == math.Float64bits(c) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encoded length is always 4-byte aligned.
func TestQuickAlignment(t *testing.T) {
	f := func(p []byte, s string) bool {
		e := NewEncoder(0)
		e.PutOpaque(p)
		e.PutString(s)
		return e.Len()%4 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeOpaque4K(b *testing.B) {
	p := make([]byte, 4096)
	e := NewEncoder(4200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutOpaque(p)
	}
}

// ---------------------------------------------------------------------------
// Hostile-input decoder tests. The decoder now parses RPC headers
// arriving off the wire, so truncated or corrupt input must surface
// errors — never panic, never over-read.

// TestDecodeTruncatedEverywhere builds a valid multi-field stream and
// verifies that decoding any strict prefix of it fails cleanly at some
// field, with ErrShortBuffer and no panic.
func TestDecodeTruncatedEverywhere(t *testing.T) {
	e := NewEncoder(128)
	e.PutUint32(42)
	e.PutUint64(1 << 40)
	e.PutString("method/name")
	e.PutOpaque([]byte{1, 2, 3, 4, 5})
	e.PutInt32Slice([]int32{-1, 0, 1})
	e.PutFloat64Slice([]float64{3.14})
	e.PutBool(true)
	whole := e.Bytes()

	decodeAll := func(d *Decoder) error {
		if _, err := d.Uint32(); err != nil {
			return err
		}
		if _, err := d.Uint64(); err != nil {
			return err
		}
		if _, err := d.String(); err != nil {
			return err
		}
		if _, err := d.Opaque(); err != nil {
			return err
		}
		if _, err := d.Int32Slice(); err != nil {
			return err
		}
		if _, err := d.Float64Slice(); err != nil {
			return err
		}
		if _, err := d.Bool(); err != nil {
			return err
		}
		return nil
	}

	if err := decodeAll(NewDecoder(whole)); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
	for cut := 0; cut < len(whole); cut++ {
		err := decodeAll(NewDecoder(whole[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(whole))
		}
		if !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("prefix %d: err = %v, want ErrShortBuffer", cut, err)
		}
	}
}

// TestDecodeCorruptLengths attacks every length-prefixed decode with
// lengths that are absurd, near-overflow, or merely larger than the
// remaining input.
func TestDecodeCorruptLengths(t *testing.T) {
	put32 := func(v uint32) []byte {
		e := NewEncoder(4)
		e.PutUint32(v)
		return e.Bytes()
	}

	// Opaque/String with a length beyond the sanity maximum.
	for _, n := range []uint32{1<<30 + 1, 1<<31 + 7, 0xFFFFFFFF} {
		if _, err := NewDecoder(put32(n)).Opaque(); err == nil {
			t.Errorf("Opaque with length %#x succeeded", n)
		}
		if _, err := NewDecoder(put32(n)).String(); err == nil {
			t.Errorf("String with length %#x succeeded", n)
		}
	}

	// Counted arrays whose element count exceeds the input. The count
	// checks must not overflow into accepting the header.
	for _, n := range []uint32{16, 1 << 28, 0xFFFFFFFF} {
		if _, err := NewDecoder(put32(n)).Int32Slice(); !errors.Is(err, ErrShortBuffer) {
			t.Errorf("Int32Slice count %#x: err = %v, want ErrShortBuffer", n, err)
		}
		if _, err := NewDecoder(put32(n)).Float64Slice(); !errors.Is(err, ErrShortBuffer) {
			t.Errorf("Float64Slice count %#x: err = %v, want ErrShortBuffer", n, err)
		}
	}

	// FixedOpaque with negative and over-large sizes.
	d := NewDecoder([]byte{1, 2, 3, 4})
	if _, err := d.FixedOpaque(-1); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("FixedOpaque(-1): err = %v, want ErrShortBuffer", err)
	}
	if _, err := d.FixedOpaque(5); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("FixedOpaque(5) on 4 bytes: err = %v, want ErrShortBuffer", err)
	}
}

// TestDecodeMissingPadding: opaque data whose bytes are present but
// whose pad-to-4 tail was cut off must fail rather than read past the
// buffer or silently accept.
func TestDecodeMissingPadding(t *testing.T) {
	e := NewEncoder(16)
	e.PutOpaque([]byte{9, 9, 9}) // 4-byte length + 3 bytes + 1 pad byte
	whole := e.Bytes()
	if len(whole) != 8 {
		t.Fatalf("encoded length = %d, want 8", len(whole))
	}
	d := NewDecoder(whole[:7]) // drop the pad byte
	if _, err := d.Opaque(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Opaque without padding: err = %v, want ErrShortBuffer", err)
	}

	// A decoder must not consume anything it later rejects: after the
	// failure, a fresh decode of the intact stream still works.
	d = NewDecoder(whole)
	p, err := d.Opaque()
	if err != nil || len(p) != 3 {
		t.Fatalf("intact stream: p = %v, err = %v", p, err)
	}
}

// TestDecodeGarbageNoPanic feeds deterministic pseudo-random garbage to
// every decoder entry point; nothing may panic.
func TestDecodeGarbageNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1998))
	for trial := 0; trial < 200; trial++ {
		raw := make([]byte, rng.Intn(64))
		rng.Read(raw)
		d := NewDecoder(raw)
		// Rotate through typed reads until the input runs dry or a
		// decode rejects it; any panic fails the test.
		var err error
		for err == nil && d.Remaining() >= 4 {
			switch trial % 5 {
			case 0:
				_, err = d.Opaque()
			case 1:
				_, err = d.String()
			case 2:
				_, err = d.Int32Slice()
			case 3:
				_, err = d.Float64Slice()
			default:
				_, err = d.Bool()
			}
		}
	}
}
