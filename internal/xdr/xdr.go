// Package xdr implements an External Data Representation codec in the
// style of RFC 1832. It is the conversion layer used when two endpoints
// of a connection do not share a native data representation — exactly the
// role XDR played for PVM (which encodes by default) and for MPI
// implementations exchanging typed data between heterogeneous hosts.
//
// All quantities are encoded big-endian and padded to 4-byte boundaries,
// matching the XDR standard. The Encoder/Decoder pair is deliberately
// allocation-conscious: hot paths in the baselines call it per message.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

var (
	// ErrShortBuffer is returned when a Decoder runs out of input bytes.
	ErrShortBuffer = errors.New("xdr: short buffer")
	// ErrStringTooLong is returned when a string exceeds the XDR maximum.
	ErrStringTooLong = errors.New("xdr: string exceeds maximum length")
)

// maxLen bounds variable-length items (strings, opaque data). XDR proper
// allows 2^32-1; we keep it at 1 GiB to fail fast on corrupt headers.
const maxLen = 1 << 30

// Encoder appends XDR-encoded values to an internal buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// Bytes returns the encoded buffer. The slice aliases the Encoder's
// internal storage; it is valid until the next call to an encode method
// or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 encodes a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutInt32 encodes a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 encodes a 64-bit unsigned integer (XDR "unsigned hyper").
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutInt64 encodes a 64-bit signed integer (XDR "hyper").
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool encodes a boolean as an XDR enum (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
		return
	}
	e.PutUint32(0)
}

// PutFloat32 encodes an IEEE-754 single-precision float.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 encodes an IEEE-754 double-precision float.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutOpaque encodes variable-length opaque data: a 4-byte length followed
// by the bytes, zero-padded to a 4-byte boundary.
func (e *Encoder) PutOpaque(p []byte) {
	e.PutUint32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	e.pad(len(p))
}

// PutFixedOpaque encodes fixed-length opaque data (no length prefix),
// zero-padded to a 4-byte boundary.
func (e *Encoder) PutFixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	e.pad(len(p))
}

// PutString encodes a string as XDR opaque data.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	e.pad(len(s))
}

// PutInt32Slice encodes a counted array of 32-bit integers.
func (e *Encoder) PutInt32Slice(vs []int32) {
	e.PutUint32(uint32(len(vs)))
	for _, v := range vs {
		e.PutInt32(v)
	}
}

// PutFloat64Slice encodes a counted array of doubles.
func (e *Encoder) PutFloat64Slice(vs []float64) {
	e.PutUint32(uint32(len(vs)))
	for _, v := range vs {
		e.PutFloat64(v)
	}
}

func (e *Encoder) pad(n int) {
	for ; n%4 != 0; n++ {
		e.buf = append(e.buf, 0)
	}
}

// Decoder consumes XDR-encoded values from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder reading from p. The Decoder does not copy
// p; the caller must not mutate it during decoding.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("xdr: invalid bool value %d", v)
	}
}

// Float32 decodes a single-precision float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 decodes a double-precision float.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// Opaque decodes variable-length opaque data. The returned slice aliases
// the Decoder's input.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, ErrStringTooLong
	}
	return d.fixed(int(n))
}

// FixedOpaque decodes n bytes of fixed-length opaque data.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) { return d.fixed(n) }

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	p, err := d.Opaque()
	return string(p), err
}

// Int32Slice decodes a counted array of 32-bit integers.
func (d *Decoder) Int32Slice() ([]int32, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n)*4 > d.Remaining() {
		return nil, ErrShortBuffer
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i], err = d.Int32()
		if err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// Float64Slice decodes a counted array of doubles.
func (d *Decoder) Float64Slice() ([]float64, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n)*8 > d.Remaining() {
		return nil, ErrShortBuffer
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i], err = d.Float64()
		if err != nil {
			return nil, err
		}
	}
	return vs, nil
}

func (d *Decoder) fixed(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < n {
		return nil, ErrShortBuffer
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	// Skip the zero padding to the 4-byte boundary.
	padded := (n + 3) &^ 3
	if d.Remaining() < padded-n {
		return nil, ErrShortBuffer
	}
	d.off += padded - n
	return p, nil
}
