package platform

import (
	"testing"
	"time"

	"ncs/internal/transport"
)

func TestPresets(t *testing.T) {
	if !Heterogeneous(SUN4, RS6000) {
		t.Error("SUN4 vs RS6000 should be heterogeneous")
	}
	if Heterogeneous(SUN4, SUN4) {
		t.Error("SUN4 vs SUN4 should be homogeneous")
	}
	// The SUN-4 must be slower on every axis (the premise of Fig 12).
	if SUN4.SyscallUS <= RS6000.SyscallUS {
		t.Error("SUN4 syscalls should cost more than RS6000")
	}
	if SUN4.CopyUSPerKB <= RS6000.CopyUSPerKB {
		t.Error("SUN4 copies should cost more than RS6000")
	}
}

func TestSendCostScalesWithSize(t *testing.T) {
	small := RS6000.sendCost(1)
	large := RS6000.sendCost(64 * 1024)
	if large <= small {
		t.Fatalf("sendCost(64K)=%v <= sendCost(1)=%v", large, small)
	}
	// 64 KB at 12 µs/KB plus one 40 µs syscall ≈ 808 µs.
	want := 808 * time.Microsecond
	if large < want*9/10 || large > want*11/10 {
		t.Fatalf("sendCost(64K) = %v, want ≈ %v", large, want)
	}
}

func TestChunkedWritesPayPerChunk(t *testing.T) {
	// SUN4 chunks at 1460: a 64 KB write pays ~45 syscalls.
	one := SUN4.sendCost(1000)
	big := SUN4.sendCost(64 * 1024)
	chunks := (64*1024 + SUN4.WriteChunk - 1) / SUN4.WriteChunk
	minWant := time.Duration(float64(chunks)*SUN4.SyscallUS) * time.Microsecond
	if big < minWant {
		t.Fatalf("sendCost(64K)=%v, want >= %v (%d chunked syscalls)", big, minWant, chunks)
	}
	if one >= big {
		t.Fatal("larger writes must cost more")
	}
}

func TestXDRCost(t *testing.T) {
	if SUN4.XDRCost(0) != 0 {
		t.Error("XDRCost(0) != 0")
	}
	got := SUN4.XDRCost(64 * 1024)
	want := time.Duration(SUN4.XDRUSPerKB*64) * time.Microsecond
	if got != want {
		t.Errorf("XDRCost(64K) = %v, want %v", got, want)
	}
}

func TestTaxedConnRoundTrip(t *testing.T) {
	a, b := transport.HPIPair()
	ta := Tax(a, RS6000)
	tb := Tax(b, RS6000)
	defer ta.Close()
	defer tb.Close()

	if ta.Kind() != transport.HPI {
		t.Errorf("Kind = %v", ta.Kind())
	}
	if ta.Platform().Name != RS6000.Name {
		t.Errorf("Platform = %v", ta.Platform().Name)
	}

	msg := make([]byte, 8*1024)
	start := time.Now()
	if err := ta.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msg) {
		t.Fatalf("len = %d", len(got))
	}
	// Send tax (40 + 96 µs) + recv tax (40 + 96 µs) ≈ 272 µs minimum.
	if el := time.Since(start); el < 250*time.Microsecond {
		t.Fatalf("taxed round trip took %v; taxes not charged", el)
	}
}

func TestTaxedConnRecvTimeout(t *testing.T) {
	a, b := transport.HPIPair()
	tb := Tax(b, RS6000)
	defer a.Close()
	defer tb.Close()

	if _, err := tb.RecvTimeout(10 * time.Millisecond); err != transport.ErrRecvTimeout {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	if err := a.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	got, err := tb.RecvTimeout(time.Second)
	if err != nil || string(got) != "late" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestChargeShortDurationsSpin(t *testing.T) {
	start := time.Now()
	Charge(50 * time.Microsecond)
	el := time.Since(start)
	if el < 50*time.Microsecond {
		t.Fatalf("Charge(50µs) returned after %v", el)
	}
	if el > 5*time.Millisecond {
		t.Fatalf("Charge(50µs) took %v; spin loop broken", el)
	}
	Charge(0) // must not hang
}
