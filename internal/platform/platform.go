// Package platform models the 1998 computing platforms of the paper's
// evaluation — SUN-4 workstations under SunOS 5.5 and IBM RS/6000s
// under AIX 4.1 — so the benchmark harness can regenerate the shapes of
// Figures 12 and 13 without the original hardware.
//
// The model is structural where it matters and calibrated where it
// must be:
//
//   - protocol behaviour (XDR conversion, PVM's daemon hop, MPI's
//     rendezvous handshake, NCS's split control path) is executed for
//     real by the respective packages;
//   - platform speed (buffer copies, system calls, per-packet stack
//     processing) is injected as a per-operation tax on the transport,
//     using constants calibrated from the paper's published curves;
//   - platform idiosyncrasies called out by the figures (the p4/MPICH
//     socket path on SunOS issuing many small writes, which is why both
//     degrade on the SUN-4 but not on AIX) are expressed as a write
//     chunking limit.
//
// Substitution note (DESIGN.md §3): we claim shape fidelity — who wins,
// by roughly what factor, and where curves cross — not absolute 1998
// microseconds.
package platform

import (
	"time"

	"ncs/internal/buf"
	"ncs/internal/transport"
)

// Platform describes one host type's messaging-relevant costs.
type Platform struct {
	// Name identifies the platform in reports.
	Name string
	// SyscallUS is the fixed cost of entering the kernel for one
	// send/receive call, in microseconds.
	SyscallUS float64
	// CopyUSPerKB is the cost of staging one kilobyte through a buffer
	// copy (protocol stack copy + checksum), in microseconds.
	CopyUSPerKB float64
	// WriteChunk bounds the bytes accepted per socket write on this
	// platform's stack; writes larger than this pay one syscall per
	// chunk. Zero means unchunked.
	WriteChunk int
	// XDRUSPerKB is the cost of converting one kilobyte to or from the
	// external data representation, in microseconds. Charged by the
	// benchmark adapters wherever a system converts (PVM always;
	// p4/MPI on heterogeneous pairs).
	XDRUSPerKB float64
}

// The paper's two platforms. The constants are calibrated so that the
// simulated echo benchmark reproduces the published orderings: the
// SUN-4 is copy- and syscall-expensive (60 MHz microSPARC class), the
// RS/6000 is several times faster on both axes.
var (
	SUN4 = Platform{
		Name:        "SUN-4/SunOS 5.5",
		SyscallUS:   180,
		CopyUSPerKB: 55,
		WriteChunk:  1460, // SunOS-era MTU-sized socket writes (p4/MPICH path)
		XDRUSPerKB:  35,   // Sun's libnsl XDR was comparatively tuned;
		// conversion hides behind the slow SunOS socket path (the
		// published Figure 12 shows PVM tracking NCS on the SUN-4).
	}
	RS6000 = Platform{
		Name:        "RS6000/AIX 4.1",
		SyscallUS:   40,
		CopyUSPerKB: 12,
		WriteChunk:  0,
		XDRUSPerKB:  80, // conversion barely faster than the SUN's:
		// XDR's byte-wise marshalling did not scale with memcpy speed,
		// which is why PVM places last on the otherwise-fast RS6000.
	}
)

// Heterogeneous reports whether two platforms need data conversion.
func Heterogeneous(a, b Platform) bool { return a.Name != b.Name }

// sendCost returns the time tax for transmitting n bytes.
func (p Platform) sendCost(n int) time.Duration {
	chunks := 1
	if p.WriteChunk > 0 && n > p.WriteChunk {
		chunks = (n + p.WriteChunk - 1) / p.WriteChunk
	}
	us := p.SyscallUS*float64(chunks) + p.CopyUSPerKB*float64(n)/1024
	return time.Duration(us * float64(time.Microsecond))
}

// recvCost returns the time tax for receiving n bytes.
func (p Platform) recvCost(n int) time.Duration {
	us := p.SyscallUS + p.CopyUSPerKB*float64(n)/1024
	return time.Duration(us * float64(time.Microsecond))
}

// TaxedConn wraps a transport.Conn, charging the platform's send and
// receive costs on every operation. It is how benchmark topologies put
// a 1998 CPU in front of a simulated link.
type TaxedConn struct {
	inner transport.Conn
	plat  Platform
}

var _ transport.Conn = (*TaxedConn)(nil)

// Tax wraps conn with the platform's per-operation costs.
func Tax(conn transport.Conn, plat Platform) *TaxedConn {
	return &TaxedConn{inner: conn, plat: plat}
}

// Send charges the platform send cost, then forwards.
func (t *TaxedConn) Send(p []byte) error {
	busyWait(t.plat.sendCost(len(p)))
	return t.inner.Send(p)
}

// SendBuf charges the platform send cost, then forwards the buffer.
func (t *TaxedConn) SendBuf(b *buf.Buffer) error {
	busyWait(t.plat.sendCost(b.Len()))
	return t.inner.SendBuf(b)
}

// SendBatch charges the per-packet send cost for every packet — a 1998
// stack had no vectored fast path, so coalescing must not dodge the
// modelled syscall and copy taxes — then forwards the batch.
func (t *TaxedConn) SendBatch(bs []*buf.Buffer) error {
	for _, b := range bs {
		busyWait(t.plat.sendCost(b.Len()))
	}
	return t.inner.SendBatch(bs)
}

// Recv forwards, then charges the platform receive cost.
func (t *TaxedConn) Recv() ([]byte, error) {
	p, err := t.inner.Recv()
	if err != nil {
		return nil, err
	}
	busyWait(t.plat.recvCost(len(p)))
	return p, nil
}

// RecvBuf forwards, then charges the platform receive cost.
func (t *TaxedConn) RecvBuf() (*buf.Buffer, error) {
	b, err := t.inner.RecvBuf()
	if err != nil {
		return nil, err
	}
	busyWait(t.plat.recvCost(b.Len()))
	return b, nil
}

// RecvTimeout forwards with the deadline, then charges the receive cost.
func (t *TaxedConn) RecvTimeout(d time.Duration) ([]byte, error) {
	p, err := t.inner.RecvTimeout(d)
	if err != nil {
		return nil, err
	}
	busyWait(t.plat.recvCost(len(p)))
	return p, nil
}

// RecvBufTimeout forwards with the deadline, then charges the receive
// cost.
func (t *TaxedConn) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	b, err := t.inner.RecvBufTimeout(d)
	if err != nil {
		return nil, err
	}
	busyWait(t.plat.recvCost(b.Len()))
	return b, nil
}

// Close closes the wrapped connection.
func (t *TaxedConn) Close() error { return t.inner.Close() }

// MaxPacket reports the wrapped connection's limit.
func (t *TaxedConn) MaxPacket() int { return t.inner.MaxPacket() }

// Kind reports the wrapped connection's interface kind.
func (t *TaxedConn) Kind() transport.Kind { return t.inner.Kind() }

// Platform returns the platform whose costs this connection charges.
func (t *TaxedConn) Platform() Platform { return t.plat }

// Unwrap exposes the wrapped connection, letting transport-level
// helpers (e.g. transport.Impair) reach the underlying link.
func (t *TaxedConn) Unwrap() transport.Conn { return t.inner }

// XDRCost returns the conversion tax for n bytes on this platform.
func (p Platform) XDRCost(n int) time.Duration {
	return time.Duration(p.XDRUSPerKB * float64(n) / 1024 * float64(time.Microsecond))
}

// Charge blocks for d, spinning for short durations so that sleep
// granularity does not distort microsecond-scale costs. Benchmark
// adapters use it to bill conversion work.
func Charge(d time.Duration) { busyWait(d) }

// busyWait charges a CPU-time cost. Durations under ~100µs are spun
// (sleep granularity would distort them); longer ones sleep.
func busyWait(d time.Duration) {
	if d <= 0 {
		return
	}
	if d > 200*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
