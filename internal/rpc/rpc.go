// Package rpc layers multiplexed request/response calls on top of NCS
// connections. The paper positions NCS as the communication substrate
// for high performance distributed applications; this package supplies
// the layer those applications actually program against — named-method
// calls with deadlines and application-error propagation — without
// giving up anything the substrate provides: RPC traffic rides ordinary
// NCS messages, so it works over every interface (SCI, ACI, HPI), every
// flow/error control selection, and the §4.2 thread-bypassing fast
// path.
//
// A Client multiplexes many concurrent in-flight calls over one
// Connection, matching replies to callers by uint64 call IDs. A Server
// dispatches named-method handlers on a worker pool built from
// internal/thread, so the paper's kernel-level/user-level thread
// architectures apply to RPC dispatch exactly as they do to Compute
// Threads.
//
// # Wire format
//
// Every RPC message is one NCS message whose body is XDR-encoded
// (internal/xdr), the same external data representation the typed
// message layer and the PVM baseline use:
//
//	call:  uint32 kind=1 | uint64 id | string method |
//	       uint64 deadline-µs (0 = none) | opaque request
//	reply: uint32 kind=2 | uint64 id | uint32 status |
//	       string error  | opaque response
//
// The deadline travels as a relative budget, not an absolute clock
// reading, so heterogeneous hosts need no clock agreement. Malformed
// frames and frames arriving with SDU loss (Message.Lost > 0 on
// unreliable connections) are dropped, never dispatched: the caller's
// deadline is the recovery mechanism, as it is for a lost reply.
package rpc

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ncs/internal/xdr"
)

// Message kinds. kindStreamCall (3) lives in stream.go.
const (
	kindCall  uint32 = 1
	kindReply uint32 = 2
)

// maxDeadlineMicros rejects deadline budgets beyond ~292 years: they
// cannot come from a real clock reading, so treat them as corruption
// rather than letting the conversion overflow into "no deadline" (or
// a spurious tiny one).
const maxDeadlineMicros = uint64(math.MaxInt64 / int64(time.Microsecond))

// Reply status codes.
const (
	statusOK uint32 = iota
	statusError
	statusNoMethod
	statusShuttingDown
	statusDeadlineExceeded
)

// Errors surfaced by the RPC layer.
var (
	// ErrNoMethod reports a call to a method the server has not
	// registered.
	ErrNoMethod = errors.New("rpc: no such method")
	// ErrShuttingDown reports a call that reached the server after
	// Shutdown began; in-flight calls are unaffected.
	ErrShuttingDown = errors.New("rpc: server shutting down")
	// ErrClientClosed reports a call issued on (or outstanding when) a
	// closed Client.
	ErrClientClosed = errors.New("rpc: client closed")
	// errBadFrame marks an undecodable RPC frame (dropped, never
	// dispatched).
	errBadFrame = errors.New("rpc: malformed frame")
)

// ServerError is an application error returned by a handler,
// propagated to the caller with the failing method attached. Match it
// with errors.As.
type ServerError struct {
	Method  string
	Message string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("rpc: %s: %s", e.Method, e.Message)
}

// encPool recycles the XDR encoders both sides use to frame messages:
// steady-state call traffic encodes without allocating.
var encPool = sync.Pool{New: func() any { return xdr.NewEncoder(256) }}

// appendCall frames one call message.
func appendCall(enc *xdr.Encoder, id uint64, method string, deadline time.Duration, req []byte) {
	enc.PutUint32(kindCall)
	enc.PutUint64(id)
	enc.PutString(method)
	if deadline > 0 {
		enc.PutUint64(uint64(deadline / time.Microsecond))
	} else {
		enc.PutUint64(0)
	}
	enc.PutOpaque(req)
}

// appendReply frames one reply message.
func appendReply(enc *xdr.Encoder, id uint64, status uint32, errmsg string, resp []byte) {
	enc.PutUint32(kindReply)
	enc.PutUint64(id)
	enc.PutUint32(status)
	enc.PutString(errmsg)
	enc.PutOpaque(resp)
}

// callFrame is a parsed call. method and payload alias the message the
// frame was parsed from.
type callFrame struct {
	id       uint64
	method   []byte
	deadline time.Duration // 0 = none
	payload  []byte
}

// replyFrame is a parsed reply. errmsg and payload alias the message
// the frame was parsed from.
type replyFrame struct {
	id      uint64
	status  uint32
	errmsg  []byte
	payload []byte
}

// parseKind reads the leading message kind.
func parseKind(d *xdr.Decoder) (uint32, error) {
	k, err := d.Uint32()
	if err != nil {
		return 0, errBadFrame
	}
	return k, nil
}

// parseCall decodes the remainder of a call frame after its kind.
func parseCall(d *xdr.Decoder) (callFrame, error) {
	var cf callFrame
	var err error
	if cf.id, err = d.Uint64(); err != nil {
		return cf, errBadFrame
	}
	if cf.method, err = d.Opaque(); err != nil {
		return cf, errBadFrame
	}
	us, err := d.Uint64()
	if err != nil {
		return cf, errBadFrame
	}
	if us > maxDeadlineMicros {
		return cf, errBadFrame
	}
	cf.deadline = time.Duration(us) * time.Microsecond
	if cf.payload, err = d.Opaque(); err != nil {
		return cf, errBadFrame
	}
	return cf, nil
}

// parseReply decodes the remainder of a reply frame after its kind.
func parseReply(d *xdr.Decoder) (replyFrame, error) {
	var rf replyFrame
	var err error
	if rf.id, err = d.Uint64(); err != nil {
		return rf, errBadFrame
	}
	if rf.status, err = d.Uint32(); err != nil {
		return rf, errBadFrame
	}
	if rf.errmsg, err = d.Opaque(); err != nil {
		return rf, errBadFrame
	}
	if rf.payload, err = d.Opaque(); err != nil {
		return rf, errBadFrame
	}
	return rf, nil
}
