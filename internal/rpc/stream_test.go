package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"ncs/internal/core"
	"ncs/internal/transport"
)

// streamServer serves the three canonical streaming shapes on peer and
// returns a client on conn.
func streamServer(t *testing.T, opts core.Options) *Client {
	t.Helper()
	conn, peer := pair(t, opts)
	srv := NewServer(ServerOptions{Workers: 4})
	// Client-stream: sum the uploaded chunks' lengths.
	srv.HandleStream("upload", func(_ context.Context, req []byte, sc *ServerCall) ([]byte, error) {
		total := 0
		for {
			chunk, err := sc.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			total += len(chunk)
		}
		return []byte(fmt.Sprintf("%s:%d", req, total)), nil
	})
	// Server-stream: send req (count) chunks down.
	srv.HandleStream("download", func(_ context.Context, req []byte, sc *ServerCall) ([]byte, error) {
		n := int(req[0])
		for i := 0; i < n; i++ {
			if err := sc.Send(bytes.Repeat([]byte{byte(i)}, 1000)); err != nil {
				return nil, err
			}
		}
		return []byte("sent"), nil
	})
	// Bidi: echo each chunk until the client half-closes.
	srv.HandleStream("pingpong", func(_ context.Context, _ []byte, sc *ServerCall) ([]byte, error) {
		for {
			chunk, err := sc.Recv()
			if err == io.EOF {
				return []byte("done"), nil
			}
			if err != nil {
				return nil, err
			}
			if err := sc.Send(append([]byte("re:"), chunk...)); err != nil {
				return nil, err
			}
		}
	})
	srv.HandleStream("fail", func(_ context.Context, _ []byte, sc *ServerCall) ([]byte, error) {
		return nil, errors.New("handler says no")
	})
	srv.ServeConn(peer)
	t.Cleanup(srv.Shutdown)
	cli := NewClient(conn)
	t.Cleanup(func() { cli.Close() })
	return cli
}

func streamOptsMatrix() map[string]core.Options {
	return map[string]core.Options{
		"threaded": {Interface: transport.HPI},
		"sharded":  {Interface: transport.HPI, Runtime: core.RuntimeSharded},
	}
}

func TestClientStreamUpload(t *testing.T) {
	for name, opts := range streamOptsMatrix() {
		t.Run(name, func(t *testing.T) {
			cli := streamServer(t, opts)
			cc, err := cli.OpenClientStream(context.Background(), "upload", []byte("sum"))
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for i := 1; i <= 8; i++ {
				chunk := bytes.Repeat([]byte("u"), 500*i)
				total += len(chunk)
				if err := cc.Send(chunk); err != nil {
					t.Fatalf("chunk %d: %v", i, err)
				}
			}
			if err := cc.CloseSend(); err != nil {
				t.Fatal(err)
			}
			resp, err := cc.Result(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("sum:%d", total); string(resp) != want {
				t.Fatalf("got %q, want %q", resp, want)
			}
		})
	}
}

func TestServerStreamDownload(t *testing.T) {
	for name, opts := range streamOptsMatrix() {
		t.Run(name, func(t *testing.T) {
			cli := streamServer(t, opts)
			const n = 6
			cc, err := cli.OpenServerStream(context.Background(), "download", []byte{n})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				chunk, err := cc.Recv()
				if err != nil {
					t.Fatalf("chunk %d: %v", i, err)
				}
				if len(chunk) != 1000 || chunk[0] != byte(i) {
					t.Fatalf("chunk %d: %d bytes, first %d", i, len(chunk), chunk[0])
				}
			}
			if _, err := cc.Recv(); err != io.EOF {
				t.Fatalf("after last chunk: err = %v, want io.EOF", err)
			}
			resp, err := cc.Result(context.Background())
			if err != nil || string(resp) != "sent" {
				t.Fatalf("result = %q, %v", resp, err)
			}
		})
	}
}

func TestBidiStreamPingPong(t *testing.T) {
	cli := streamServer(t, core.Options{Interface: transport.HPI})
	cc, err := cli.OpenBidiStream(context.Background(), "pingpong", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("ball-%d", i))
		if err := cc.Send(msg); err != nil {
			t.Fatal(err)
		}
		back, err := cc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(back) != "re:"+string(msg) {
			t.Fatalf("round %d: got %q", i, back)
		}
	}
	if err := cc.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Recv(); err != io.EOF {
		t.Fatalf("after close-send: err = %v, want io.EOF", err)
	}
	resp, err := cc.Result(context.Background())
	if err != nil || string(resp) != "done" {
		t.Fatalf("result = %q, %v", resp, err)
	}
}

// TestStreamCallHandlerError: a failing streaming handler aborts the
// chunk flow (unblocking a client Recv) and surfaces as *ServerError
// from Result.
func TestStreamCallHandlerError(t *testing.T) {
	cli := streamServer(t, core.Options{Interface: transport.HPI})
	cc, err := cli.OpenServerStream(context.Background(), "fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Recv(); !errors.Is(err, ErrStreamAborted) {
		t.Fatalf("recv on failed call: err = %v, want ErrStreamAborted", err)
	}
	var se *ServerError
	if _, err := cc.Result(context.Background()); !errors.As(err, &se) {
		t.Fatalf("result: err = %v, want *ServerError", err)
	}
}

// TestStreamCallNoMethod: a streaming call to an unregistered (or
// unary-only) method fails cleanly.
func TestStreamCallNoMethod(t *testing.T) {
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{}, nil)
	cc, err := cli.OpenClientStream(context.Background(), "echo", nil) // unary-only method
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Result(context.Background()); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("err = %v, want ErrNoMethod", err)
	}
}

// TestStreamingDoesNotBlockUnary: a streaming call mid-flow must not
// head-of-line-block unary calls sharing the connection — the chunk
// stream has its own credit window and the call frames ride stream 0.
func TestStreamingDoesNotBlockUnary(t *testing.T) {
	conn, peer := pair(t, core.Options{Interface: transport.HPI})
	srv := NewServer(ServerOptions{Workers: 4})
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	release := make(chan struct{})
	srv.HandleStream("slow", func(_ context.Context, _ []byte, sc *ServerCall) ([]byte, error) {
		<-release // hold the stream open, consuming nothing
		for {
			if _, err := sc.Recv(); err != nil {
				return []byte("ok"), nil
			}
		}
	})
	srv.ServeConn(peer)
	t.Cleanup(srv.Shutdown)
	cli := NewClient(conn)
	t.Cleanup(func() { cli.Close() })

	cc, err := cli.OpenBidiStream(context.Background(), "slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A few chunks the blocked handler will not consume (within the
	// stream's initial credit window).
	for i := 0; i < 2; i++ {
		if err := cc.Send([]byte("parked")); err != nil {
			t.Fatal(err)
		}
	}
	// Unary traffic must flow while the streaming call is wedged.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 16; i++ {
		resp, err := cli.Call(ctx, "echo", []byte("fast"))
		if err != nil {
			t.Fatalf("unary call %d while stream wedged: %v", i, err)
		}
		if string(resp) != "fast" {
			t.Fatalf("unary call %d: got %q", i, resp)
		}
	}
	close(release)
	if err := cc.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Result(ctx); err != nil {
		t.Fatal(err)
	}
}
