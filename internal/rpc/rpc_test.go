package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncs/internal/core"
	"ncs/internal/thread"
	"ncs/internal/transport"
)

// pair returns both ends of a connection between two fresh systems on a
// fresh network, cleaned up with the test.
func pair(t *testing.T, opts core.Options) (*core.Connection, *core.Connection) {
	t.Helper()
	nw := core.NewNetwork()
	t.Cleanup(nw.Close)
	sa, err := nw.NewSystem("rpc-a")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := nw.NewSystem("rpc-b")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := sa.Connect("rpc-b", opts)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := sb.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return conn, peer
}

// startEcho serves an echo method (plus any extra handlers) on peer and
// returns a client on conn. Both are torn down with the test.
func startEcho(t *testing.T, opts core.Options, srvOpts ServerOptions, extra map[string]Handler) (*Client, *Server) {
	t.Helper()
	conn, peer := pair(t, opts)
	srv := NewServer(srvOpts)
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	for m, h := range extra {
		srv.Handle(m, h)
	}
	srv.ServeConn(peer)
	t.Cleanup(srv.Shutdown)
	cli := NewClient(conn)
	t.Cleanup(func() { cli.Close() })
	return cli, srv
}

// interfaces the round-trip tests sweep: every transport kind plus the
// §4.2 fast path.
var interfaceMatrix = []struct {
	name string
	opts core.Options
}{
	{"HPI", core.Options{Interface: transport.HPI}},
	{"HPI-fastpath", core.Options{Interface: transport.HPI, FastPath: true}},
	{"HPI-sharded", core.Options{Interface: transport.HPI, Runtime: core.RuntimeSharded}},
	{"SCI", core.Options{Interface: transport.SCI}},
	{"SCI-sharded", core.Options{Interface: transport.SCI, Runtime: core.RuntimeSharded}},
	{"ACI", core.Options{Interface: transport.ACI}},
}

// TestServeInboxShardedFanIn serves many sharded connections through
// ONE inbox demux loop: every client's calls must complete even though
// the server parks no goroutine per connection.
func TestServeInboxShardedFanIn(t *testing.T) {
	const conns = 8
	nw := core.NewNetwork()
	t.Cleanup(nw.Close)
	sa, err := nw.NewSystem("rpc-fan-a")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := nw.NewSystem("rpc-fan-b")
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(ServerOptions{Workers: 4})
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	ib := core.NewInbox(0)
	srv.ServeInbox(ib)
	t.Cleanup(srv.Shutdown)

	opts := core.Options{Interface: transport.HPI, Runtime: core.RuntimeSharded}
	ready := make(chan error, 1)
	go func() {
		for i := 0; i < conns; i++ {
			peer, err := sb.Accept()
			if err != nil {
				ready <- err
				return
			}
			if err := peer.BindInbox(ib); err != nil {
				ready <- err
				return
			}
		}
		ready <- nil
	}()
	clients := make([]*Client, conns)
	for i := range clients {
		conn, err := sa.Connect("rpc-fan-b", opts)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = NewClient(conn)
		t.Cleanup(func() { clients[i].Close() })
	}
	if err := <-ready; err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, conns*4)
	for i, cli := range clients {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(i, j int, cli *Client) {
				defer wg.Done()
				req := []byte(fmt.Sprintf("fan %d/%d", i, j))
				resp, err := cli.Call(context.Background(), "echo", req)
				if err != nil {
					errCh <- fmt.Errorf("conn %d call %d: %w", i, j, err)
					return
				}
				if !bytes.Equal(resp, req) {
					errCh <- fmt.Errorf("conn %d call %d: got %q", i, j, resp)
				}
			}(i, j, cli)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestCallRoundTrip(t *testing.T) {
	for _, tc := range interfaceMatrix {
		t.Run(tc.name, func(t *testing.T) {
			cli, _ := startEcho(t, tc.opts, ServerOptions{}, nil)
			for _, size := range []int{0, 1, 512, 64 * 1024} {
				req := bytes.Repeat([]byte{0xAB}, size)
				resp, err := cli.Call(context.Background(), "echo", req)
				if err != nil {
					t.Fatalf("size %d: %v", size, err)
				}
				if !bytes.Equal(resp, req) {
					t.Fatalf("size %d: response mismatch (%d bytes back)", size, len(resp))
				}
			}
		})
	}
}

// TestConcurrentInFlight floods one connection with concurrent calls
// whose responses must each match their request — the multiplexing
// correctness test.
func TestConcurrentInFlight(t *testing.T) {
	for _, tc := range interfaceMatrix {
		t.Run(tc.name, func(t *testing.T) {
			cli, _ := startEcho(t, tc.opts, ServerOptions{Workers: 8}, nil)
			const callers = 16
			const callsEach = 25
			var wg sync.WaitGroup
			errCh := make(chan error, callers)
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < callsEach; i++ {
						req := []byte(fmt.Sprintf("caller-%d-call-%d", g, i))
						resp, err := cli.Call(context.Background(), "echo", req)
						if err != nil {
							errCh <- fmt.Errorf("caller %d call %d: %w", g, i, err)
							return
						}
						if !bytes.Equal(resp, req) {
							errCh <- fmt.Errorf("caller %d call %d: got %q want %q", g, i, resp, req)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

// TestSlowCallDoesNotBlockFast verifies multiplexing in time, not just
// in correctness: a deliberately slow call and a fast call share the
// connection, and the fast one completes while the slow one is parked.
func TestSlowCallDoesNotBlockFast(t *testing.T) {
	release := make(chan struct{})
	slow := func(_ context.Context, req []byte) ([]byte, error) {
		<-release
		return req, nil
	}
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{Workers: 4},
		map[string]Handler{"slow": slow})

	slowDone := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), "slow", []byte("s"))
		slowDone <- err
	}()

	// The fast call must complete while "slow" is still parked.
	if _, err := cli.Call(context.Background(), "echo", []byte("f")); err != nil {
		t.Fatalf("fast call: %v", err)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished before release: %v", err)
	default:
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	stuck := func(ctx context.Context, req []byte) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{},
		map[string]Handler{"stuck": stuck})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cli.Call(ctx, "stuck", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}

	// The connection must still be usable after an abandoned call.
	if _, err := cli.Call(context.Background(), "echo", []byte("after")); err != nil {
		t.Fatalf("call after expiry: %v", err)
	}
}

// TestExpiredBeforeSend: a context already past its deadline never
// reaches the wire.
func TestExpiredBeforeSend(t *testing.T) {
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{}, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := cli.Call(ctx, "echo", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestServerSkipsExpiredWork: the propagated deadline lets the server
// refuse work whose caller has already given up.
func TestServerSkipsExpiredWork(t *testing.T) {
	ran := make(chan struct{}, 8)
	gate := make(chan struct{})
	slow := func(_ context.Context, req []byte) ([]byte, error) {
		ran <- struct{}{}
		<-gate
		return req, nil
	}
	// One worker: the first (slow) call occupies it, so the second
	// call's budget expires in the queue.
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{Workers: 1},
		map[string]Handler{"slow": slow})

	go cli.Call(context.Background(), "slow", nil)
	<-ran

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, "slow", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued call err = %v, want DeadlineExceeded", err)
	}
	close(gate)

	// The worker must NOT have run the expired request: it replies
	// DeadlineExceeded without dispatching the handler.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-ran:
		t.Fatal("server ran a request whose deadline had expired in queue")
	default:
	}
}

func TestServerSideError(t *testing.T) {
	boom := func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	}
	panicky := func(_ context.Context, _ []byte) ([]byte, error) {
		panic("worse")
	}
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{},
		map[string]Handler{"boom": boom, "panic": panicky})

	_, err := cli.Call(context.Background(), "boom", nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *ServerError", err, err)
	}
	if se.Method != "boom" || se.Message != "kaboom" {
		t.Fatalf("ServerError = %+v", se)
	}

	// A handler panic surfaces as an application error, and the worker
	// pool survives it.
	if _, err := cli.Call(context.Background(), "panic", nil); err == nil {
		t.Fatal("panic handler returned nil error")
	}
	if _, err := cli.Call(context.Background(), "echo", []byte("alive")); err != nil {
		t.Fatalf("call after panic: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{}, nil)
	if _, err := cli.Call(context.Background(), "nope", nil); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("err = %v, want ErrNoMethod", err)
	}
}

// TestGracefulShutdown: calls in flight when Shutdown begins complete
// with their replies; calls arriving during the drain are refused.
func TestGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	slow := func(_ context.Context, req []byte) ([]byte, error) {
		close(started)
		<-release
		return req, nil
	}
	conn, peerConn := pair(t, core.Options{Interface: transport.HPI})
	srv := NewServer(ServerOptions{Workers: 2})
	srv.Handle("slow", slow)
	srv.ServeConn(peerConn)
	cli := NewClient(conn)
	defer cli.Close()

	inflight := make(chan error, 1)
	var resp []byte
	go func() {
		var err error
		resp, err = cli.Call(context.Background(), "slow", []byte("drain-me"))
		inflight <- err
	}()
	<-started

	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(shutdownDone)
	}()

	// Shutdown must be draining, not done: the slow call still holds it.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a call was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	// A new call during the drain is refused.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cli.Call(ctx, "slow", nil); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("call during drain: err = %v, want ErrShuttingDown", err)
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight call failed across shutdown: %v", err)
	}
	if string(resp) != "drain-me" {
		t.Fatalf("in-flight call response = %q", resp)
	}
	<-shutdownDone
}

// TestShutdownIdempotent: double Shutdown and Shutdown with queued work
// across thread models.
func TestShutdownIdempotent(t *testing.T) {
	for _, model := range []thread.Model{thread.KernelLevel, thread.UserLevel} {
		t.Run(model.String(), func(t *testing.T) {
			cli, srv := startEcho(t, core.Options{Interface: transport.HPI},
				ServerOptions{Workers: 2, Threads: model}, nil)
			if _, err := cli.Call(context.Background(), "echo", []byte("x")); err != nil {
				t.Fatal(err)
			}
			srv.Shutdown()
			srv.Shutdown()
			if _, err := cli.Call(context.Background(), "echo", nil); err == nil {
				t.Fatal("call after shutdown succeeded")
			}
		})
	}
}

// TestUserLevelDispatch runs the concurrency suite's core on the
// cooperative user-level scheduler: handlers execute run-to-block, but
// every call must still complete and match.
func TestUserLevelDispatch(t *testing.T) {
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI},
		ServerOptions{Workers: 4, Threads: thread.UserLevel}, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				req := []byte(fmt.Sprintf("ul-%d-%d", g, i))
				resp, err := cli.Call(context.Background(), "echo", req)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(resp, req) {
					errCh <- fmt.Errorf("got %q want %q", resp, req)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestClientCloseFailsInFlight: closing the client (which closes the
// connection) fails parked calls with ErrClientClosed.
func TestClientCloseFailsInFlight(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := func(_ context.Context, req []byte) ([]byte, error) {
		<-release
		return req, nil
	}
	cli, _ := startEcho(t, core.Options{Interface: transport.HPI}, ServerOptions{},
		map[string]Handler{"slow": slow})

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := cli.Call(context.Background(), "slow", nil)
		done <- err
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the call reach the wire
	cli.Close()
	if err := <-done; !errors.Is(err, ErrClientClosed) {
		t.Fatalf("in-flight err = %v, want ErrClientClosed", err)
	}
	if _, err := cli.Call(context.Background(), "slow", nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("post-close err = %v, want ErrClientClosed", err)
	}
}

// TestDeadConnDeregistered: a connection that dies leaves the server's
// connection table, so a long-lived server does not accumulate entries
// for every client that ever connected.
func TestDeadConnDeregistered(t *testing.T) {
	conn, peerConn := pair(t, core.Options{Interface: transport.HPI})
	srv := NewServer(ServerOptions{})
	defer srv.Shutdown()
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	srv.ServeConn(peerConn)

	cli := NewClient(conn)
	if _, err := cli.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.cmu.Lock()
		n := len(srv.conns)
		srv.cmu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still tracks %d connections after client close", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeConnAfterShutdown: a connection offered to a stopped server
// is closed immediately rather than silently leaked — and Shutdown
// cannot hang on it.
func TestServeConnAfterShutdown(t *testing.T) {
	srv := NewServer(ServerOptions{})
	srv.Shutdown()

	conn, peerConn := pair(t, core.Options{Interface: transport.HPI})
	srv.ServeConn(peerConn)
	select {
	case <-peerConn.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("connection offered after Shutdown was not closed")
	}
	conn.Close()
	srv.Shutdown() // must not hang
}

// TestConnectionStateHooks covers the core hooks the RPC layer rides
// on: Done and Err reflect teardown.
func TestConnectionStateHooks(t *testing.T) {
	conn, peer := pair(t, core.Options{Interface: transport.HPI})
	select {
	case <-conn.Done():
		t.Fatal("Done closed on a live connection")
	default:
	}
	if err := conn.Err(); err != nil {
		t.Fatalf("Err on live connection = %v", err)
	}
	conn.Close()
	peer.Close()
	select {
	case <-conn.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after Close")
	}
	if !errors.Is(conn.Err(), core.ErrConnClosed) {
		t.Fatalf("Err after close = %v", conn.Err())
	}
}

// TestFastPathPeerTeardown: fast-path connections have no threads to
// observe transport death, so the inline procedures propagate it; the
// RPC client must report the connection error, not a local close.
func TestFastPathPeerTeardown(t *testing.T) {
	conn, peerConn := pair(t, core.Options{Interface: transport.HPI, FastPath: true})
	cli := NewClient(conn)
	defer cli.Close()

	peerConn.Close()
	select {
	case <-conn.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("fast-path connection did not observe peer teardown")
	}
	if _, err := cli.Call(context.Background(), "echo", nil); !errors.Is(err, core.ErrConnClosed) {
		t.Fatalf("call after peer teardown: err = %v, want ErrConnClosed", err)
	}
}

// TestMalformedFramesIgnored injects garbage and truncated RPC frames
// straight onto the connection: the server must drop them (no panic, no
// reply) and keep serving well-formed calls.
func TestMalformedFramesIgnored(t *testing.T) {
	conn, peerConn := pair(t, core.Options{Interface: transport.HPI})
	srv := NewServer(ServerOptions{})
	srv.Handle("echo", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	srv.ServeConn(peerConn)
	defer srv.Shutdown()

	// A frame whose deadline field would overflow the duration
	// conversion: kind=1, id, 4-byte method "echo", deadline-µs with
	// the top bit set, empty payload. Must be dropped, not dispatched
	// deadline-free.
	overflow := []byte{
		0, 0, 0, 1, // kind = call
		0, 0, 0, 0, 0, 0, 0, 1, // id
		0, 0, 0, 4, 'e', 'c', 'h', 'o', // method
		0x80, 0, 0, 0, 0, 0, 0, 0, // deadline-µs = 1<<63
		0, 0, 0, 0, // payload: empty
	}
	for _, raw := range [][]byte{
		{},                          // empty
		{0xFF},                      // short of a kind word
		{0, 0, 0, 1},                // call kind, then nothing
		{0, 0, 0, 1, 0, 0, 0, 0},    // call kind, truncated id
		{0, 0, 0, 9, 1, 2, 3, 4},    // unknown kind
		overflow,                    // deadline overflow
		bytes.Repeat([]byte{7}, 64), // noise
	} {
		if err := conn.Send(raw); err != nil {
			t.Fatal(err)
		}
	}

	// A well-formed call still round-trips after the garbage.
	cli := NewClient(conn)
	defer cli.Close()
	resp, err := cli.Call(context.Background(), "echo", []byte("still here"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "still here" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestLargeConcurrentMix stresses mixed sizes over SCI with several
// workers — the closest test to real request traffic.
func TestLargeConcurrentMix(t *testing.T) {
	cli, _ := startEcho(t, core.Options{Interface: transport.SCI}, ServerOptions{Workers: 8}, nil)
	sizes := []int{1, 100, 4096, 20000}
	var wg sync.WaitGroup
	errCh := make(chan error, len(sizes))
	for _, size := range sizes {
		wg.Add(1)
		go func(size int) {
			defer wg.Done()
			req := bytes.Repeat([]byte{byte(size)}, size)
			for i := 0; i < 20; i++ {
				resp, err := cli.Call(context.Background(), "echo", req)
				if err != nil {
					errCh <- fmt.Errorf("size %d: %w", size, err)
					return
				}
				if !bytes.Equal(resp, req) {
					errCh <- fmt.Errorf("size %d: mismatch", size)
					return
				}
			}
		}(size)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
