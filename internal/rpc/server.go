package rpc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ncs/internal/core"
	"ncs/internal/thread"
	"ncs/internal/xdr"
)

// Handler services one call: req aliases the received message (copy it
// to retain it past the call) and the returned bytes are sent back as
// the response. A non-nil error reaches the caller as *ServerError.
// ctx carries the caller's propagated deadline, when it sent one.
type Handler func(ctx context.Context, req []byte) ([]byte, error)

// ServerOptions configures a Server's dispatcher.
type ServerOptions struct {
	// Workers is the dispatcher pool size. Default 4.
	Workers int
	// Threads selects the worker thread architecture (§4.1): kernel
	// level (default) overlaps handlers across cores; user level runs
	// them on the cooperative scheduler, where one blocking handler
	// stalls the pool — the Figure 10 trade-off applied to RPC dispatch.
	Threads thread.Model
}

// request is one admitted call waiting for (or on) a worker. A nil h
// (or, for streaming calls, nil sh) marks a call to an unregistered
// method: the worker sends the no-method reply, so the demux loop
// never blocks on a reply send.
type request struct {
	conn     *core.Connection
	id       uint64
	h        Handler
	deadline time.Time // zero: the caller sent no deadline
	payload  []byte

	// Streaming calls (stream true) dispatch through sh against the
	// chunk stream the client named.
	stream   bool
	sh       StreamHandler
	streamID uint32
	mode     StreamMode
}

// Server dispatches named-method calls arriving over any number of NCS
// connections onto a worker pool built from internal/thread. Register
// handlers with Handle, attach connections with ServeConn, and stop
// with Shutdown, which drains in-flight calls before tearing down.
type Server struct {
	opts ServerOptions
	pkg  thread.Package

	hmu       sync.RWMutex
	handlers  map[string]Handler
	shandlers map[string]StreamHandler

	// The dispatch queue: a slice ring guarded by qmu, with sem (a
	// thread.Semaphore, so user-level workers park cooperatively)
	// counting queued requests. draining rejects new admissions;
	// wstop, together with an empty queue, tells a woken worker to
	// exit.
	qmu      sync.Mutex
	queue    []request
	head     int
	sem      thread.Semaphore
	draining bool
	wstop    bool

	inflight sync.WaitGroup // admitted requests not yet replied to

	cmu      sync.Mutex
	conns    map[*core.Connection]struct{}
	inboxes  []*core.Inbox
	stopping bool // Shutdown began; refuse new connections
	recvWG   sync.WaitGroup

	shutdownOnce sync.Once
}

// NewServer creates a server and starts its worker pool. The server
// owns the thread package it builds from opts.
func NewServer(opts ServerOptions) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Threads == 0 {
		opts.Threads = thread.KernelLevel
	}
	s := &Server{
		opts:     opts,
		pkg:      thread.New(opts.Threads),
		handlers: make(map[string]Handler),
		conns:    make(map[*core.Connection]struct{}),
	}
	s.sem = s.pkg.NewSemaphore(0)
	for i := 0; i < opts.Workers; i++ {
		// Spawn cannot fail on a fresh package.
		s.pkg.Spawn(fmt.Sprintf("rpc-worker-%d", i), s.worker)
	}
	return s
}

// Handle registers (or replaces) the handler for a named method.
// Registration is safe at any time, including while serving.
func (s *Server) Handle(method string, h Handler) {
	s.hmu.Lock()
	s.handlers[method] = h
	s.hmu.Unlock()
}

// ServeConn attaches an established connection to the server and starts
// demultiplexing its calls. It returns immediately; the connection is
// served until it closes or the server shuts down (Shutdown closes
// served connections). A connection offered after Shutdown began is
// closed immediately. The server owns the connection's receive side.
func (s *Server) ServeConn(conn *core.Connection) {
	s.cmu.Lock()
	if s.stopping {
		s.cmu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.recvWG.Add(1)
	s.cmu.Unlock()
	go s.recvLoop(conn)
}

// recvLoop reads one connection and admits its calls to the worker
// queue; replies — including no-method replies — go out from workers,
// so a reply send blocking on a reliable connection's ack cycle never
// head-of-line-blocks the demultiplexing of later calls. The one
// inline reply is the shutting-down refusal, bounded because Shutdown
// closes served connections right after the drain. On exit (connection
// death or shutdown) the loop deregisters its connection, so a
// long-lived server does not accumulate dead ones.
func (s *Server) recvLoop(conn *core.Connection) {
	defer func() {
		s.cmu.Lock()
		delete(s.conns, conn)
		s.cmu.Unlock()
		s.recvWG.Done()
	}()
	for {
		m, err := conn.RecvMessage()
		if err != nil {
			return
		}
		s.admit(conn, m)
	}
}

// admit parses one received message and, when it is a well-formed
// call, admits it to the worker queue — the shared back half of
// recvLoop and inboxLoop. Loss-damaged or undecodable frames are
// dropped, never dispatched: the caller's deadline is the recovery
// path.
func (s *Server) admit(conn *core.Connection, m core.Message) {
	if m.Lost > 0 {
		return
	}
	d := xdr.NewDecoder(m.Data)
	k, kerr := parseKind(d)
	if kerr != nil {
		return
	}
	if k == kindStreamCall {
		s.admitStream(conn, d)
		return
	}
	if k != kindCall {
		return
	}
	cf, cerr := parseCall(d)
	if cerr != nil {
		return
	}
	s.hmu.RLock()
	h := s.handlers[string(cf.method)]
	s.hmu.RUnlock()
	req := request{conn: conn, id: cf.id, h: h, payload: cf.payload}
	if cf.deadline > 0 {
		req.deadline = time.Now().Add(cf.deadline)
	}
	// Admission happens under qmu so Shutdown's draining flag and
	// inflight.Wait cannot race a late arrival.
	s.qmu.Lock()
	if s.draining {
		s.qmu.Unlock()
		s.reply(conn, cf.id, statusShuttingDown, "", nil)
		return
	}
	s.inflight.Add(1)
	mServerInflight.Inc()
	s.queue = append(s.queue, req)
	s.qmu.Unlock()
	s.sem.Release()
}

// ServeInbox serves every connection bound to ib with ONE
// demultiplexing goroutine, however many connections feed it — the
// RPC-layer counterpart of the core's sharded runtime. The caller
// binds accepted connections (Connection.BindInbox) and owns their
// lifecycle; the loop runs until the inbox closes or the server shuts
// down. Compare ServeConn, which parks a goroutine per connection.
func (s *Server) ServeInbox(ib *core.Inbox) {
	s.cmu.Lock()
	if s.stopping {
		s.cmu.Unlock()
		ib.Close()
		return
	}
	s.inboxes = append(s.inboxes, ib)
	s.recvWG.Add(1)
	s.cmu.Unlock()
	go s.inboxLoop(ib)
}

// inboxLoop is recvLoop over a shared inbox: the same admission, with
// the source connection taken per-message from the delivery.
func (s *Server) inboxLoop(ib *core.Inbox) {
	defer s.recvWG.Done()
	for {
		im, err := ib.Recv()
		if err != nil {
			return
		}
		s.admit(im.Conn, im.Msg)
	}
}

// worker is one pool thread: wait for an admitted request, run it,
// repeat. A semaphore release without a queued request is the shutdown
// sentinel.
func (s *Server) worker() {
	for {
		s.sem.Acquire()
		s.qmu.Lock()
		if s.wstop && s.head == len(s.queue) {
			s.qmu.Unlock()
			return
		}
		req := s.queue[s.head]
		s.queue[s.head] = request{}
		s.head++
		if s.head == len(s.queue) {
			s.queue = s.queue[:0]
			s.head = 0
		} else if s.head > 64 && s.head*2 >= len(s.queue) {
			// Under sustained backlog the queue never fully drains, so
			// compact the consumed prefix rather than letting append
			// grow the backing array without bound.
			n := copy(s.queue, s.queue[s.head:])
			for i := n; i < len(s.queue); i++ {
				s.queue[i] = request{}
			}
			s.queue = s.queue[:n]
			s.head = 0
		}
		s.qmu.Unlock()
		if req.stream {
			s.dispatchStream(req)
		} else {
			s.dispatch(req)
		}
		s.inflight.Done()
		mServerInflight.Dec()
	}
}

// dispatch runs one request through its handler and sends the reply.
func (s *Server) dispatch(req request) {
	if req.h == nil {
		s.reply(req.conn, req.id, statusNoMethod, "", nil)
		return
	}
	ctx := context.Background()
	if !req.deadline.IsZero() {
		// The caller's budget already expired (queueing delay, clock
		// budget spent in transit): skip the work, it can no longer be
		// consumed.
		if !time.Now().Before(req.deadline) {
			mDeadlineExpired.Inc()
			s.reply(req.conn, req.id, statusDeadlineExceeded, "", nil)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, req.deadline)
		defer cancel()
	}
	resp, err := s.run(ctx, req.h, req.payload)
	if err != nil {
		s.reply(req.conn, req.id, statusError, err.Error(), nil)
		return
	}
	s.reply(req.conn, req.id, statusOK, "", resp)
}

// run invokes the handler, converting a panic into an application
// error so one bad request cannot take the worker down.
func (s *Server) run(ctx context.Context, h Handler, req []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("handler panic: %v", r)
		}
	}()
	return h(ctx, req)
}

// reply frames and sends one reply. Send failures are ignored: the
// connection is going down and the caller's deadline recovers. The
// encoder is only repooled after a successful Send — a teardown-path
// Send Thread may still hold SDU views of its buffer.
func (s *Server) reply(conn *core.Connection, id uint64, status uint32, errmsg string, resp []byte) {
	enc := encPool.Get().(*xdr.Encoder)
	enc.Reset()
	appendReply(enc, id, status, errmsg, resp)
	if err := conn.Send(enc.Bytes()); err == nil {
		encPool.Put(enc)
	}
}

// Shutdown stops the server gracefully: new calls are refused with
// ErrShuttingDown, every already-admitted call runs to completion and
// its reply is sent, then the workers, the thread package, and the
// served connections are torn down. Safe to call more than once;
// subsequent calls wait for the first to finish.
func (s *Server) Shutdown() {
	s.shutdownOnce.Do(func() {
		s.qmu.Lock()
		s.draining = true
		s.qmu.Unlock()

		// Drain: every admitted request replied to.
		s.inflight.Wait()

		// Wake each worker once with nothing queued; they exit.
		s.qmu.Lock()
		s.wstop = true
		s.qmu.Unlock()
		for i := 0; i < s.opts.Workers; i++ {
			s.sem.Release()
		}
		s.pkg.Shutdown()

		s.cmu.Lock()
		s.stopping = true
		conns := make([]*core.Connection, 0, len(s.conns))
		for conn := range s.conns {
			conns = append(conns, conn)
		}
		inboxes := s.inboxes
		s.inboxes = nil
		s.cmu.Unlock()
		for _, conn := range conns {
			conn.Close()
		}
		for _, ib := range inboxes {
			ib.Close()
		}
	})
	s.recvWG.Wait()
}
