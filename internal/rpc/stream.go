package rpc

// Streaming RPC: calls whose request/response exchange is not one
// message each way but a sequence of chunks flowing while the call is
// open — client-stream (uploads), server-stream (downloads, fan-out
// reads), and bidi (pipelines). The control exchange stays on the
// connection's default channel exactly like a unary call: a
// kindStreamCall frame opens the call, a kindReply frame completes it,
// and both reuse the unary demux machinery. The chunks themselves ride
// a dedicated multiplexed stream (core.Stream) the client opens and
// names in the call frame, so a slow streaming call consumes only its
// own credit window and never head-of-line-blocks unary calls or other
// streams sharing the connection.
//
// Chunk wire format on the dedicated stream (each chunk is one NCS
// message, staged through a pooled buffer):
//
//	data:  0x00 | payload
//	end:   0x01              (half-close: no more chunks this direction)
//	error: 0x02 | message    (abnormal end of the chunk flow)
//
// The call frame extends the unary call with the chunk-flow mode and
// the stream id:
//
//	stream call: uint32 kind=3 | uint64 id | string method |
//	             uint64 deadline-µs | uint32 mode | uint32 streamID |
//	             opaque request
//
// Because the chunk stream and the call frame travel independently,
// chunks may reach the server before the call is dispatched; they park
// on the stream's own backlog until the handler attaches — ordering
// within the stream is preserved, and nothing blocks the connection.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"ncs/internal/buf"
	"ncs/internal/core"
	"ncs/internal/xdr"
)

// kindStreamCall opens a streaming call (see package doc above; kinds
// 1 and 2 are the unary call and the shared reply).
const kindStreamCall uint32 = 3

// Chunk opcodes on the dedicated stream.
const (
	chunkData  byte = 0x00
	chunkEnd   byte = 0x01
	chunkError byte = 0x02
)

// StreamMode declares which directions of the chunk flow a streaming
// call uses. The mode travels in the call frame so handlers and
// tooling can tell an upload from a download; the chunk protocol
// itself is symmetric.
type StreamMode uint32

// Stream modes.
const (
	ClientStream StreamMode = 1 // client sends chunks, server replies once
	ServerStream StreamMode = 2 // client requests once, server sends chunks
	BidiStream   StreamMode = 3 // both directions chunk concurrently
)

// ErrStreamAborted reports the peer ended the chunk flow with an error
// chunk; the accompanying message is attached.
var ErrStreamAborted = errors.New("rpc: stream aborted")

// appendStreamCall frames one streaming-call open.
func appendStreamCall(enc *xdr.Encoder, id uint64, method string, deadline time.Duration, mode StreamMode, streamID uint32, req []byte) {
	enc.PutUint32(kindStreamCall)
	enc.PutUint64(id)
	enc.PutString(method)
	if deadline > 0 {
		enc.PutUint64(uint64(deadline / time.Microsecond))
	} else {
		enc.PutUint64(0)
	}
	enc.PutUint32(uint32(mode))
	enc.PutUint32(streamID)
	enc.PutOpaque(req)
}

// streamCallFrame is a parsed streaming-call open. method and payload
// alias the message the frame was parsed from.
type streamCallFrame struct {
	callFrame
	mode     StreamMode
	streamID uint32
}

// parseStreamCall decodes the remainder of a stream-call frame after
// its kind.
func parseStreamCall(d *xdr.Decoder) (streamCallFrame, error) {
	var sf streamCallFrame
	var err error
	if sf.id, err = d.Uint64(); err != nil {
		return sf, errBadFrame
	}
	if sf.method, err = d.Opaque(); err != nil {
		return sf, errBadFrame
	}
	us, err := d.Uint64()
	if err != nil {
		return sf, errBadFrame
	}
	if us > maxDeadlineMicros {
		return sf, errBadFrame
	}
	sf.deadline = time.Duration(us) * time.Microsecond
	mode, err := d.Uint32()
	if err != nil {
		return sf, errBadFrame
	}
	sf.mode = StreamMode(mode)
	if sf.streamID, err = d.Uint32(); err != nil {
		return sf, errBadFrame
	}
	if sf.streamID == 0 {
		// Stream 0 is the call/reply channel itself; a frame naming it
		// is corrupt.
		return sf, errBadFrame
	}
	if sf.payload, err = d.Opaque(); err != nil {
		return sf, errBadFrame
	}
	return sf, nil
}

// sendChunk stages one prefixed chunk through a pooled buffer and
// sends it as one message on the dedicated stream. The stream's Send
// confirms its payload was staged (or written) before returning, so
// the buffer recycles immediately.
func sendChunk(st *core.Stream, op byte, payload []byte) error {
	sb := buf.GetCap(1 + len(payload))
	sb.B = append(sb.B, op)
	sb.B = append(sb.B, payload...)
	err := st.Send(sb.B)
	sb.Release()
	return err
}

// recvChunk receives and decodes one chunk from the dedicated stream.
// It returns io.EOF on the end marker and ErrStreamAborted (with the
// peer's message attached) on an error chunk.
func recvChunk(st *core.Stream) ([]byte, error) {
	m, err := st.Recv()
	if err != nil {
		return nil, err
	}
	if len(m) == 0 {
		return nil, errBadFrame
	}
	switch m[0] {
	case chunkData:
		return m[1:], nil
	case chunkEnd:
		return nil, io.EOF
	case chunkError:
		return nil, fmt.Errorf("%w: %s", ErrStreamAborted, m[1:])
	default:
		return nil, errBadFrame
	}
}

// ---------------------------------------------------------------------------
// Client side.

// ClientCall is an open streaming call. Send and Recv move chunks on
// the call's dedicated stream; Result waits for the server's final
// reply (the same frame that completes a unary call) and releases the
// stream. Always finish a call with Result or Close.
type ClientCall struct {
	c      *Client
	st     *core.Stream
	id     uint64
	method string
	mode   StreamMode
	ca     *call
}

// openStream opens a streaming call: a dedicated chunk stream plus the
// kindStreamCall frame naming it.
func (c *Client) openStream(ctx context.Context, method string, mode StreamMode, req []byte) (*ClientCall, error) {
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	ca := callPool.Get().(*call)
	id := c.nextID.Add(1)
	c.calls[id] = ca
	c.mu.Unlock()
	mClientInflight.Inc()

	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			c.abandon(id, ca)
			return nil, ctx.Err()
		}
	}
	st, err := c.conn.OpenStream()
	if err != nil {
		c.abandon(id, ca)
		return nil, err
	}

	enc := encPool.Get().(*xdr.Encoder)
	enc.Reset()
	appendStreamCall(enc, id, method, budget, mode, st.ID(), req)
	if err := c.conn.Send(enc.Bytes()); err != nil {
		st.Close()
		c.abandon(id, ca)
		return nil, err
	}
	encPool.Put(enc)
	return &ClientCall{c: c, st: st, id: id, method: method, mode: mode, ca: ca}, nil
}

// OpenClientStream starts a client-streaming call: the client Sends a
// sequence of chunks, CloseSends, and collects the server's single
// response with Result.
func (c *Client) OpenClientStream(ctx context.Context, method string, req []byte) (*ClientCall, error) {
	return c.openStream(ctx, method, ClientStream, req)
}

// OpenServerStream starts a server-streaming call: the server's
// handler Sends a sequence of chunks the client Recvs (until io.EOF),
// then Result collects the final reply.
func (c *Client) OpenServerStream(ctx context.Context, method string, req []byte) (*ClientCall, error) {
	return c.openStream(ctx, method, ServerStream, req)
}

// OpenBidiStream starts a bidirectional streaming call: both sides
// chunk concurrently (run Send and Recv from separate goroutines).
func (c *Client) OpenBidiStream(ctx context.Context, method string, req []byte) (*ClientCall, error) {
	return c.openStream(ctx, method, BidiStream, req)
}

// Stream exposes the call's dedicated chunk stream (for its ID, e.g.
// in traces).
func (cc *ClientCall) Stream() *core.Stream { return cc.st }

// Send transmits one chunk to the server's handler.
func (cc *ClientCall) Send(chunk []byte) error {
	return sendChunk(cc.st, chunkData, chunk)
}

// CloseSend half-closes the client→server chunk flow: the handler's
// Recv observes io.EOF after draining. The call stays open — Recv and
// Result still work.
func (cc *ClientCall) CloseSend() error {
	return sendChunk(cc.st, chunkEnd, nil)
}

// Abort ends the chunk flow abnormally: the handler's Recv observes
// ErrStreamAborted with the given message.
func (cc *ClientCall) Abort(msg string) error {
	return sendChunk(cc.st, chunkError, []byte(msg))
}

// Recv returns the next server chunk. io.EOF reports the handler
// finished its chunk flow (collect the final reply with Result);
// ErrStreamAborted carries a handler-side abnormal end.
func (cc *ClientCall) Recv() ([]byte, error) {
	return recvChunk(cc.st)
}

// Result blocks for the server's final reply — exactly a unary call's
// completion: the handler's return value, or its error as
// *ServerError — and closes the chunk stream. ctx bounds the wait.
func (cc *ClientCall) Result(ctx context.Context) ([]byte, error) {
	select {
	case r := <-cc.ca.ch:
		callPool.Put(cc.ca)
		mClientInflight.Dec()
		cc.st.Close()
		return r.result(cc.method)
	case <-ctx.Done():
		cc.c.abandon(cc.id, cc.ca)
		cc.st.Close()
		return nil, ctx.Err()
	}
}

// Close abandons the call without waiting for its reply and tears the
// chunk stream down (the handler observes the close as an ended chunk
// flow). Use Result for a graceful finish.
func (cc *ClientCall) Close() error {
	cc.c.abandon(cc.id, cc.ca)
	return cc.st.Close()
}

// ---------------------------------------------------------------------------
// Server side.

// ServerCall is the handler's end of a streaming call's chunk flow.
type ServerCall struct {
	st   *core.Stream
	mode StreamMode
}

// Mode reports the call's declared chunk-flow directions.
func (sc *ServerCall) Mode() StreamMode { return sc.mode }

// Recv returns the next client chunk; io.EOF after the client's
// CloseSend, ErrStreamAborted after its Abort.
func (sc *ServerCall) Recv() ([]byte, error) {
	return recvChunk(sc.st)
}

// Send transmits one chunk to the client.
func (sc *ServerCall) Send(chunk []byte) error {
	return sendChunk(sc.st, chunkData, chunk)
}

// StreamHandler services one streaming call: req is the call frame's
// request payload (aliasing the received message), sc the chunk flow.
// The returned bytes become the final reply the client's Result
// collects; a non-nil error reaches it as *ServerError. When the
// handler returns, the server ends the server→client chunk flow
// automatically (io.EOF on the client, or ErrStreamAborted on error).
type StreamHandler func(ctx context.Context, req []byte, sc *ServerCall) ([]byte, error)

// HandleStream registers (or replaces) the streaming handler for a
// named method. Streaming and unary methods share a namespace but not
// a table: a unary call to a streaming method is a no-method error and
// vice versa.
func (s *Server) HandleStream(method string, h StreamHandler) {
	s.hmu.Lock()
	if s.shandlers == nil {
		s.shandlers = make(map[string]StreamHandler)
	}
	s.shandlers[method] = h
	s.hmu.Unlock()
}

// admitStream is the kindStreamCall arm of admit: parse, resolve the
// handler, queue for a worker.
func (s *Server) admitStream(conn *core.Connection, d *xdr.Decoder) {
	sf, err := parseStreamCall(d)
	if err != nil {
		return
	}
	s.hmu.RLock()
	sh := s.shandlers[string(sf.method)]
	s.hmu.RUnlock()
	req := request{conn: conn, id: sf.id, sh: sh, stream: true,
		streamID: sf.streamID, mode: sf.mode, payload: sf.payload}
	if sf.deadline > 0 {
		req.deadline = time.Now().Add(sf.deadline)
	}
	s.qmu.Lock()
	if s.draining {
		s.qmu.Unlock()
		s.reply(conn, sf.id, statusShuttingDown, "", nil)
		return
	}
	s.inflight.Add(1)
	mServerInflight.Inc()
	s.queue = append(s.queue, req)
	s.qmu.Unlock()
	s.sem.Release()
}

// dispatchStream runs one streaming call on a worker: attach to the
// chunk stream the client named (chunks that raced ahead of the call
// frame are already parked on it), run the handler, end the chunk
// flow, send the final reply.
func (s *Server) dispatchStream(req request) {
	if req.sh == nil {
		s.reply(req.conn, req.id, statusNoMethod, "", nil)
		return
	}
	sc := &ServerCall{st: req.conn.StreamByID(req.streamID), mode: req.mode}
	ctx := context.Background()
	if !req.deadline.IsZero() {
		if !time.Now().Before(req.deadline) {
			mDeadlineExpired.Inc()
			s.reply(req.conn, req.id, statusDeadlineExceeded, "", nil)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, req.deadline)
		defer cancel()
	}
	resp, err := s.runStream(ctx, req.sh, req.payload, sc)
	if err != nil {
		// End the chunk flow abnormally first, so a client blocked in
		// Recv unblocks before (or regardless of) consuming the reply.
		sendChunk(sc.st, chunkError, []byte(err.Error()))
		s.reply(req.conn, req.id, statusError, err.Error(), nil)
		return
	}
	sendChunk(sc.st, chunkEnd, nil)
	s.reply(req.conn, req.id, statusOK, "", resp)
}

// runStream invokes the streaming handler, converting a panic into an
// application error, as run does for unary handlers.
func (s *Server) runStream(ctx context.Context, h StreamHandler, req []byte, sc *ServerCall) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("handler panic: %v", r)
		}
	}()
	return h(ctx, req, sc)
}
