package rpc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/core"
	"ncs/internal/xdr"
)

// reply is the demultiplexed outcome of one call: either a decoded
// reply frame or a terminal client/transport failure.
type reply struct {
	status  uint32
	errmsg  string
	payload []byte
	err     error // non-nil: the client failed before a reply arrived
}

// result maps a reply to the Call return values.
func (r reply) result(method string) ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	switch r.status {
	case statusOK:
		return r.payload, nil
	case statusNoMethod:
		return nil, fmt.Errorf("%w: %s", ErrNoMethod, method)
	case statusShuttingDown:
		return nil, ErrShuttingDown
	case statusDeadlineExceeded:
		return nil, context.DeadlineExceeded
	default:
		return nil, &ServerError{Method: method, Message: r.errmsg}
	}
}

// call is the per-call rendezvous between the issuing goroutine and the
// demultiplexing receive loop. The one-slot channel receives exactly
// one deposit per call ID, so a consumed (or drained) call recycles
// through callPool with a clean channel.
type call struct {
	ch chan reply
}

var callPool = sync.Pool{New: func() any { return &call{ch: make(chan reply, 1)} }}

// Client issues multiplexed RPC calls over one NCS connection. Many
// goroutines may Call concurrently; in-flight calls are matched to
// replies by call ID, so slow calls never head-of-line-block fast ones
// beyond what the connection itself serialises. The Client owns the
// connection's receive side: do not call Recv on the connection while a
// Client is attached.
type Client struct {
	conn *core.Connection

	nextID atomic.Uint64

	mu     sync.Mutex
	calls  map[uint64]*call
	closed bool
	err    error // terminal failure observed by the receive loop

	recvDone chan struct{}
}

// NewClient attaches an RPC client to an established connection. Close
// the Client (not the Connection) when done; Close tears the connection
// down and fails any in-flight calls.
func NewClient(conn *core.Connection) *Client {
	c := &Client{
		conn:     conn,
		calls:    make(map[uint64]*call),
		recvDone: make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

// Conn returns the underlying connection (for Stats, Options, …).
func (c *Client) Conn() *core.Connection { return c.conn }

// Call invokes a named method on the peer with the given request bytes
// and blocks for the response. ctx carries cancellation and the
// deadline; the remaining budget also travels in the call header so the
// server can skip work whose caller has already given up. The returned
// response aliases a heap slice owned by the caller.
//
// Errors: a handler failure surfaces as *ServerError; an unregistered
// method as ErrNoMethod; expiry as ctx.Err(); a client or connection
// teardown as ErrClientClosed / the connection's terminal error.
func (c *Client) Call(ctx context.Context, method string, req []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	ca := callPool.Get().(*call)
	id := c.nextID.Add(1)
	c.calls[id] = ca
	c.mu.Unlock()
	mClientInflight.Inc()
	start := time.Now()

	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			c.abandon(id, ca)
			return nil, ctx.Err()
		}
	}

	enc := encPool.Get().(*xdr.Encoder)
	enc.Reset()
	appendCall(enc, id, method, budget, req)
	if err := c.conn.Send(enc.Bytes()); err != nil {
		// A failed Send means the connection is tearing down, and its
		// Send Thread may still hold SDU views of the encoder's buffer:
		// abandon the encoder to the GC instead of repooling it.
		c.abandon(id, ca)
		return nil, err
	}
	encPool.Put(enc)

	select {
	case r := <-ca.ch:
		callPool.Put(ca)
		mClientInflight.Dec()
		mCallNS.ObserveSince(start)
		return r.result(method)
	case <-ctx.Done():
		c.abandon(id, ca)
		return nil, ctx.Err()
	}
}

// abandon deregisters a call that will never consume its reply and
// recycles its state. Deposits happen under c.mu, so after the delete
// no new deposit can land; at most one already-buffered reply needs
// draining before the channel is clean for reuse.
func (c *Client) abandon(id uint64, ca *call) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
	mClientInflight.Dec()
	select {
	case <-ca.ch:
	default:
	}
	callPool.Put(ca)
}

// recvLoop is the client's demultiplexer: it drains the connection,
// drops undecodable or loss-damaged frames, and routes each reply to
// its in-flight call.
func (c *Client) recvLoop() {
	defer close(c.recvDone)
	for {
		m, err := c.conn.RecvMessage()
		if err != nil {
			c.fail()
			return
		}
		// A reply that arrived with SDU loss (unreliable connections
		// report it via Message.Lost) is damaged: drop it and let the
		// caller's deadline recover, exactly as for a fully lost reply.
		if m.Lost > 0 {
			continue
		}
		d := xdr.NewDecoder(m.Data)
		k, kerr := parseKind(d)
		if kerr != nil || k != kindReply {
			continue
		}
		rf, rerr := parseReply(d)
		if rerr != nil {
			continue
		}
		c.mu.Lock()
		if ca := c.calls[rf.id]; ca != nil {
			delete(c.calls, rf.id)
			r := reply{status: rf.status, payload: rf.payload}
			if len(rf.errmsg) > 0 {
				r.errmsg = string(rf.errmsg)
			}
			ca.ch <- r // one-slot channel, sole deposit for this ID
		}
		c.mu.Unlock()
	}
}

// fail records the terminal error and fails every in-flight call with
// it. Runs when the receive loop exits: connection teardown (local
// Close or peer/heartbeat failure).
func (c *Client) fail() {
	c.mu.Lock()
	if c.err == nil {
		if c.closed {
			c.err = ErrClientClosed
		} else if err := c.conn.Err(); err != nil {
			c.err = err
		} else {
			c.err = ErrClientClosed
		}
	}
	for id, ca := range c.calls {
		delete(c.calls, id)
		ca.ch <- reply{err: c.err}
	}
	c.mu.Unlock()
}

// Close tears down the client and its connection. In-flight calls fail
// with ErrClientClosed. Close is idempotent and safe to call
// concurrently with Calls.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		c.conn.Close()
	}
	<-c.recvDone
	return nil
}
