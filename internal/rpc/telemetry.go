package rpc

import "ncs/internal/telemetry"

// RPC-layer telemetry (catalogue in internal/telemetry doc.go).
var (
	// mClientInflight is the number of calls issued and not yet
	// resolved (replied, failed, or abandoned) across all Clients.
	mClientInflight = telemetry.NewGauge("rpc.client.inflight")
	// mCallNS observes end-to-end call latency in nanoseconds for
	// calls that received a reply.
	mCallNS = telemetry.NewHistogram("rpc.client.call_ns")
	// mServerInflight is the number of admitted requests not yet
	// replied to across all Servers.
	mServerInflight = telemetry.NewGauge("rpc.server.inflight")
	// mDeadlineExpired counts calls whose propagated deadline had
	// already passed when a worker picked them up — work the server
	// skipped because the caller gave up.
	mDeadlineExpired = telemetry.NewCounter("rpc.server.deadline_expired_total")
)
