package errctl

import (
	"ncs/internal/buf"
	"ncs/internal/packet"
)

// gbnSender implements go-back-N: the receiver only accepts in-order
// SDUs and acknowledges cumulatively; on a NACK or timeout the sender
// replays everything from the first unacknowledged SDU.
type gbnSender struct {
	sdus []SDU
	base int // first unacknowledged SDU index
	// nackedAt is the base value of the last NACK-triggered replay.
	// The receiver NACKs every out-of-order arrival, so one loss inside
	// a window produces a NACK per in-flight SDU behind it; replaying
	// the window for each would answer k NACKs with k·(window) SDUs,
	// each generating a further control packet — on a fast-path sender
	// that consumes one control packet per replay batch, an unbounded
	// amplification livelock. Replaying once per base value keeps NACK
	// recovery one-shot; the retransmission timer covers a lost replay.
	nackedAt int
	done     bool
}

var _ Sender = (*gbnSender)(nil)

func newGBNSender(msg []byte, sduSize int, connID, streamID, sessionID uint32) *gbnSender {
	return &gbnSender{sdus: SegmentStream(msg, sduSize, connID, streamID, sessionID, 0), nackedAt: -1}
}

func (s *gbnSender) Initial() []SDU { return s.sdus }

func (s *gbnSender) OnAck(c packet.Control) ([]SDU, bool, error) {
	if s.done {
		return nil, true, ErrSessionDone
	}
	switch c.Type {
	case packet.CtrlAck:
		n, err := packet.ParseCreditBody(c.Body) // cumulative: highest in-order seq
		if err != nil {
			return nil, false, err
		}
		if int(n)+1 > s.base {
			s.base = int(n) + 1
		}
		if s.base >= len(s.sdus) {
			s.done = true
			return nil, true, nil
		}
		return nil, false, nil
	case packet.CtrlNack:
		n, err := packet.ParseCreditBody(c.Body) // expected seq
		if err != nil {
			return nil, false, err
		}
		if int(n) > s.base {
			s.base = int(n)
		}
		if s.base == s.nackedAt {
			// Duplicate or stale NACK: this base was already replayed.
			return nil, false, nil
		}
		s.nackedAt = s.base
		mNackReplay.Inc()
		return s.replay(), false, nil
	default:
		return nil, false, nil
	}
}

func (s *gbnSender) OnTimeout() []SDU {
	if s.done {
		return nil
	}
	return s.replay()
}

// replay returns copies of every SDU from base onward, marked as
// retransmissions. The final one keeps/gains the end bit so the receiver
// answers when the replayed tail arrives.
func (s *gbnSender) replay() []SDU {
	rt := make([]SDU, 0, len(s.sdus)-s.base)
	for i := s.base; i < len(s.sdus); i++ {
		sdu := s.sdus[i]
		sdu.Header.Flags |= packet.FlagRetransmit
		rt = append(rt, sdu)
	}
	mRetransmitSDUs.Add(int64(len(rt)))
	return rt
}

func (s *gbnSender) Done() bool { return s.done }

// gbnReceiver accepts only the expected next SDU; anything else is
// dropped and answered with a NACK carrying the expected sequence
// number. Every accepted SDU produces a cumulative ACK.
// gbnReceiver accepts only in-order SDUs, so reassembly appends into
// one amortised contiguous buffer: holding retained packet buffers
// would pin a pooled buffer per SDU for data that is already final,
// which is why this receiver copies where the selective-repeat one
// retains.
type gbnReceiver struct {
	expected uint32
	total    int // learned from the end bit; -1 until known
	buf      []byte
	done     bool
	ctlOut   [1]packet.Control
}

var _ Receiver = (*gbnReceiver)(nil)

func newGBNReceiver() *gbnReceiver { return &gbnReceiver{total: -1} }

// stage puts one control packet in the receiver's scratch slot (valid
// until the next OnData call, per the Receiver contract).
func (r *gbnReceiver) stage(c packet.Control) []packet.Control {
	r.ctlOut[0] = c
	return r.ctlOut[:1]
}

func (r *gbnReceiver) OnData(h packet.DataHeader, payload []byte, _ *buf.Buffer) ([]packet.Control, bool) {
	if r.done {
		// A retransmission after completion means the final cumulative
		// ACK was lost; repeat it so the sender can finish.
		mRecvDup.Inc()
		return r.stage(packet.Control{
			Type:      packet.CtrlAck,
			ConnID:    h.ConnID,
			SessionID: h.SessionID,
			Body:      packet.CreditBody(r.expected - 1),
		}), true
	}
	if h.Seq != r.expected {
		// Out of order: duplicate (already have it) or a gap (cells
		// were lost). A duplicate of an old SDU needs no NACK storm; a
		// gap needs the sender to go back. Both are answered with the
		// current cumulative position.
		if h.Seq > r.expected {
			mRecvOOO.Inc()
			return r.stage(packet.Control{
				Type:      packet.CtrlNack,
				ConnID:    h.ConnID,
				SessionID: h.SessionID,
				Body:      packet.CreditBody(r.expected),
			}), false
		}
		mRecvDup.Inc()
		return r.stage(r.ackLocked(h)), false
	}
	r.buf = append(r.buf, payload...)
	r.expected++
	if h.End() && h.Flags&packet.FlagRetransmit == 0 || (h.End() && r.total < 0) {
		r.total = int(h.Seq) + 1
	}
	if r.total >= 0 && int(r.expected) >= r.total {
		r.done = true
	}
	return r.stage(r.ackLocked(h)), r.done
}

func (r *gbnReceiver) ackLocked(h packet.DataHeader) packet.Control {
	var cum uint32
	if r.expected > 0 {
		cum = r.expected - 1
	} else {
		// Nothing accepted yet: NACK for the first packet instead of an
		// impossible negative cumulative ack.
		return packet.Control{
			Type:      packet.CtrlNack,
			ConnID:    h.ConnID,
			SessionID: h.SessionID,
			Body:      packet.CreditBody(0),
		}
	}
	return packet.Control{
		Type:      packet.CtrlAck,
		ConnID:    h.ConnID,
		SessionID: h.SessionID,
		Body:      packet.CreditBody(cum),
	}
}

func (r *gbnReceiver) Message() []byte {
	if !r.done {
		return nil
	}
	return r.buf
}

func (r *gbnReceiver) LostSDUs() int { return 0 }

// Abandon is a no-op: go-back-N assembles into an ordinary heap
// buffer and never retains pooled segments.
func (r *gbnReceiver) Abandon() {}
