// Package errctl implements the per-connection error control algorithms
// of §3.2: the default selective-repeat scheme of Figures 5–6, a
// go-back-N alternative, and "none" for loss-tolerant streams.
//
// An algorithm instance is a pure protocol state machine for one message
// transfer (one session): the sender half segments the user message into
// SDUs and decides what to (re)transmit in response to acknowledgments
// and timeouts; the receiver half reassembles arriving SDUs and decides
// when to emit acknowledgment packets on the control connection. All
// packet I/O and timer scheduling stay with the caller (the NCS Error
// Control Thread or the fast-path procedures).
package errctl

import (
	"errors"
	"fmt"

	"ncs/internal/packet"
)

// Algorithm selects an error control scheme.
type Algorithm int

// The error control schemes of §3.2.
const (
	None Algorithm = iota + 1
	SelectiveRepeat
	GoBackN
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case None:
		return "none"
	case SelectiveRepeat:
		return "selective-repeat"
	case GoBackN:
		return "go-back-n"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// SDU size limits (§3.2): "The SDU size is from 4 Kbytes to 64 Kbytes
// and corresponds to the single AAL5 frame (Default SDU size is 4
// Kbytes)." MinSDUSize is relaxed below 4K so tiny-message tests can
// exercise multi-SDU paths; DefaultSDUSize matches the paper.
const (
	DefaultSDUSize = 4 * 1024
	MaxSDUSize     = 64*1024 - 256 // AAL5 frame minus headers
)

// ErrSessionDone indicates an operation on a completed session.
var ErrSessionDone = errors.New("errctl: session complete")

// SDU is one segment of a user message, ready for the flow-control and
// data-transfer layers.
type SDU struct {
	Header  packet.DataHeader
	Payload []byte
}

// Sender drives the transmit side of one message transfer.
type Sender interface {
	// Initial returns the full set of SDUs to transmit first
	// (segmentation + header generation, steps 1–3 of Figure 5).
	Initial() []SDU
	// OnAck processes an acknowledgment control packet and returns any
	// SDUs to retransmit. done reports message completion.
	OnAck(c packet.Control) (retransmit []SDU, done bool, err error)
	// OnTimeout handles an acknowledgment timeout and returns the SDUs
	// to retransmit (the paper's whole-message fallback for selective
	// repeat, window replay for go-back-N).
	OnTimeout() []SDU
	// Done reports whether the transfer completed.
	Done() bool
}

// Receiver drives the receive side of one message transfer.
type Receiver interface {
	// OnData consumes one arriving SDU. acks carries any control
	// packets to return to the sender; done reports that the message is
	// fully reassembled.
	OnData(h packet.DataHeader, payload []byte) (acks []packet.Control, done bool)
	// Message returns the reassembled user message; valid once done.
	Message() []byte
	// LostSDUs reports segments that were never received (only ever
	// non-zero for the None algorithm, which does not recover losses).
	LostSDUs() int
}

// Segment splits msg into SDU payloads of at most sduSize bytes,
// attaching sequence numbers and the end bit; it implements steps 1–2 of
// Figure 5 and is shared by all sender implementations.
func Segment(msg []byte, sduSize int, connID, sessionID uint32, extraFlags uint16) []SDU {
	if sduSize <= 0 {
		sduSize = DefaultSDUSize
	}
	if sduSize > MaxSDUSize {
		sduSize = MaxSDUSize
	}
	n := (len(msg) + sduSize - 1) / sduSize
	if n == 0 {
		n = 1 // an empty message still needs one (empty) end SDU
	}
	sdus := make([]SDU, 0, n)
	for i := 0; i < n; i++ {
		lo := i * sduSize
		hi := lo + sduSize
		if hi > len(msg) {
			hi = len(msg)
		}
		var flags uint16 = extraFlags
		if i == n-1 {
			flags |= packet.FlagEnd
		}
		sdus = append(sdus, SDU{
			Header: packet.DataHeader{
				Flags:     flags,
				ConnID:    connID,
				SessionID: sessionID,
				Seq:       uint32(i),
				Length:    uint32(hi - lo),
			},
			Payload: msg[lo:hi],
		})
	}
	return sdus
}

// NewSender builds the transmit side of a session.
func NewSender(alg Algorithm, msg []byte, sduSize int, connID, sessionID uint32) Sender {
	switch alg {
	case SelectiveRepeat:
		return newSRSender(msg, sduSize, connID, sessionID)
	case GoBackN:
		return newGBNSender(msg, sduSize, connID, sessionID)
	default:
		return newNoneSender(msg, sduSize, connID, sessionID)
	}
}

// NewReceiver builds the receive side of a session.
func NewReceiver(alg Algorithm) Receiver {
	switch alg {
	case SelectiveRepeat:
		return newSRReceiver()
	case GoBackN:
		return newGBNReceiver()
	default:
		return newNoneReceiver()
	}
}
