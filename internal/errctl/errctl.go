// Package errctl implements the per-connection error control algorithms
// of §3.2: the default selective-repeat scheme of Figures 5–6, a
// go-back-N alternative, and "none" for loss-tolerant streams.
//
// An algorithm instance is a pure protocol state machine for one message
// transfer (one session): the sender half segments the user message into
// SDUs and decides what to (re)transmit in response to acknowledgments
// and timeouts; the receiver half reassembles arriving SDUs and decides
// when to emit acknowledgment packets on the control connection. All
// packet I/O and timer scheduling stay with the caller (the NCS Error
// Control Thread or the fast-path procedures).
package errctl

import (
	"errors"
	"fmt"

	"ncs/internal/buf"
	"ncs/internal/packet"
)

// Algorithm selects an error control scheme.
type Algorithm int

// The error control schemes of §3.2.
const (
	None Algorithm = iota + 1
	SelectiveRepeat
	GoBackN
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case None:
		return "none"
	case SelectiveRepeat:
		return "selective-repeat"
	case GoBackN:
		return "go-back-n"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// SDU size limits (§3.2): "The SDU size is from 4 Kbytes to 64 Kbytes
// and corresponds to the single AAL5 frame (Default SDU size is 4
// Kbytes)." MinSDUSize is relaxed below 4K so tiny-message tests can
// exercise multi-SDU paths; DefaultSDUSize matches the paper.
const (
	DefaultSDUSize = 4 * 1024
	MaxSDUSize     = 64*1024 - 256 // AAL5 frame minus headers
)

// ErrSessionDone indicates an operation on a completed session.
var ErrSessionDone = errors.New("errctl: session complete")

// SDU is one segment of a user message, ready for the flow-control and
// data-transfer layers.
type SDU struct {
	Header  packet.DataHeader
	Payload []byte
}

// Sender drives the transmit side of one message transfer.
type Sender interface {
	// Initial returns the full set of SDUs to transmit first
	// (segmentation + header generation, steps 1–3 of Figure 5).
	Initial() []SDU
	// OnAck processes an acknowledgment control packet and returns any
	// SDUs to retransmit. done reports message completion.
	OnAck(c packet.Control) (retransmit []SDU, done bool, err error)
	// OnTimeout handles an acknowledgment timeout and returns the SDUs
	// to retransmit (the paper's whole-message fallback for selective
	// repeat, window replay for go-back-N).
	OnTimeout() []SDU
	// Done reports whether the transfer completed.
	Done() bool
}

// Receiver drives the receive side of one message transfer.
type Receiver interface {
	// OnData consumes one arriving SDU. payload may alias the pooled
	// receive buffer ref; when ref is non-nil the receiver RETAINS it
	// to hold the segment zero-copy (releasing on delivery) instead of
	// copying — the caller keeps its own reference and releases it
	// after OnData returns. A nil ref (tests, legacy callers) falls
	// back to copying. acks carries any control packets to return to
	// the sender — the slice is only valid until the next OnData call;
	// done reports that the message is fully reassembled.
	OnData(h packet.DataHeader, payload []byte, ref *buf.Buffer) (acks []packet.Control, done bool)
	// Message returns the reassembled user message; valid once done.
	// It releases the retained segment buffers on first call and caches
	// the assembled message for any repeat call.
	Message() []byte
	// LostSDUs reports segments that were never received (only ever
	// non-zero for the None algorithm, which does not recover losses).
	LostSDUs() int
	// Abandon releases any retained segment buffers without delivering
	// the message. Callers use it when evicting an incomplete session;
	// the receiver must not be used afterwards. It is a no-op on a
	// receiver whose message was already delivered.
	Abandon()
}

// segment is one received SDU payload: a byte view plus the pooled
// buffer backing it. ref is nil when the payload was copied to the
// heap instead (no pooled buffer was offered).
type segment struct {
	data []byte
	ref  *buf.Buffer
}

// holdSegment takes ownership of payload for reassembly: zero-copy via
// a retained reference on the backing buffer when one is offered,
// otherwise a heap copy.
func holdSegment(payload []byte, ref *buf.Buffer) segment {
	if ref != nil {
		return segment{data: payload, ref: ref.Retain()}
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return segment{data: cp}
}

// release drops the segment's buffer reference, if it holds one.
func (s segment) release() {
	if s.ref != nil {
		s.ref.Release()
	}
}

// EffectiveSDUSize clamps a configured SDU size exactly the way
// Segment does, letting callers predict the segmentation (for example,
// whether a message fits in a single SDU).
func EffectiveSDUSize(n int) int {
	if n <= 0 {
		return DefaultSDUSize
	}
	if n > MaxSDUSize {
		return MaxSDUSize
	}
	return n
}

// Segment splits msg into SDU payloads of at most sduSize bytes,
// attaching sequence numbers and the end bit; it implements steps 1–2 of
// Figure 5 and is shared by all sender implementations. The SDUs are
// stamped for the connection's default stream 0.
func Segment(msg []byte, sduSize int, connID, sessionID uint32, extraFlags uint16) []SDU {
	return SegmentStream(msg, sduSize, connID, 0, sessionID, extraFlags)
}

// SegmentStream is Segment for an arbitrary stream: every SDU header
// carries streamID so the receive demux can route the session to the
// right per-stream reliability state.
func SegmentStream(msg []byte, sduSize int, connID, streamID, sessionID uint32, extraFlags uint16) []SDU {
	sduSize = EffectiveSDUSize(sduSize)
	n := (len(msg) + sduSize - 1) / sduSize
	if n == 0 {
		n = 1 // an empty message still needs one (empty) end SDU
	}
	sdus := make([]SDU, 0, n)
	for i := 0; i < n; i++ {
		lo := i * sduSize
		hi := lo + sduSize
		if hi > len(msg) {
			hi = len(msg)
		}
		var flags uint16 = extraFlags
		if i == n-1 {
			flags |= packet.FlagEnd
		}
		sdus = append(sdus, SDU{
			Header: packet.DataHeader{
				Flags:     flags,
				ConnID:    connID,
				SessionID: sessionID,
				Seq:       uint32(i),
				Length:    uint32(hi - lo),
				StreamID:  streamID,
			},
			Payload: msg[lo:hi],
		})
	}
	return sdus
}

// NewSender builds the transmit side of a stream-0 session.
func NewSender(alg Algorithm, msg []byte, sduSize int, connID, sessionID uint32) Sender {
	return NewSenderStream(alg, msg, sduSize, connID, 0, sessionID)
}

// NewSenderStream builds the transmit side of a session on an
// arbitrary stream.
func NewSenderStream(alg Algorithm, msg []byte, sduSize int, connID, streamID, sessionID uint32) Sender {
	switch alg {
	case SelectiveRepeat:
		return newSRSender(msg, sduSize, connID, streamID, sessionID)
	case GoBackN:
		return newGBNSender(msg, sduSize, connID, streamID, sessionID)
	default:
		return newNoneSender(msg, sduSize, connID, streamID, sessionID)
	}
}

// NewReceiver builds the receive side of a session.
func NewReceiver(alg Algorithm) Receiver {
	switch alg {
	case SelectiveRepeat:
		return newSRReceiver()
	case GoBackN:
		return newGBNReceiver()
	default:
		return newNoneReceiver()
	}
}
