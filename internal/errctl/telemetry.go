package errctl

import "ncs/internal/telemetry"

// Error-control telemetry (catalogue in internal/telemetry doc.go).
// The counters live here, in the protocol state machines, so every
// runtime — threaded, sharded, fast path — reports identically.
var (
	// mRetransmitSDUs counts SDUs queued for retransmission by any
	// scheme (selective-repeat bitmap gaps, timeouts, go-back-N
	// replays). On a lossy link it reconciles against the link's
	// ImpairStats: each lost data packet forces at least one entry.
	mRetransmitSDUs = telemetry.NewCounter("errctl.send.retransmit_sdus_total")
	// mNackReplay counts go-back-N window replays triggered by a NACK
	// (deduplicated per base value; see gbnSender.nackedAt).
	mNackReplay = telemetry.NewCounter("errctl.gbn.nack_replay_total")
	// mRecvDup counts duplicate SDU arrivals discarded by a receiver.
	mRecvDup = telemetry.NewCounter("errctl.recv.dup_total")
	// mRecvOOO counts out-of-order arrivals a go-back-N receiver
	// answered with a NACK.
	mRecvOOO = telemetry.NewCounter("errctl.recv.out_of_order_total")
)
