package errctl

import (
	"ncs/internal/buf"
	"ncs/internal/packet"
)

// srSender implements the sender half of Figure 6's pseudo code:
//
//	segment → transmit all → wait ACK →
//	  timeout        ⇒ retransmit everything
//	  bitmap > 0     ⇒ selective retransmission per bitmap
//	  bitmap == 0    ⇒ done
type srSender struct {
	sdus []SDU
	done bool
}

var _ Sender = (*srSender)(nil)

func newSRSender(msg []byte, sduSize int, connID, streamID, sessionID uint32) *srSender {
	return &srSender{sdus: SegmentStream(msg, sduSize, connID, streamID, sessionID, 0)}
}

func (s *srSender) Initial() []SDU { return s.sdus }

func (s *srSender) OnAck(c packet.Control) ([]SDU, bool, error) {
	if s.done {
		return nil, true, ErrSessionDone
	}
	if c.Type != packet.CtrlAck {
		return nil, false, nil
	}
	bm, err := packet.UnmarshalBitmap(c.Body)
	if err != nil {
		return nil, false, err
	}
	if !bm.AnySet() {
		s.done = true
		return nil, true, nil
	}
	var rt []SDU
	for _, seq := range bm.Missing() {
		if seq < len(s.sdus) {
			sdu := s.sdus[seq]
			sdu.Header.Flags |= packet.FlagRetransmit
			// A retransmitted batch needs a fresh trigger for the
			// receiver's ACK: mark the last retransmission as an end
			// packet so the receiving Error Control Thread answers
			// (Figure 6 keeps the original end bit; re-flagging the last
			// of the batch is the standard fix for a lost end SDU).
			rt = append(rt, sdu)
		}
	}
	if len(rt) > 0 {
		rt[len(rt)-1].Header.Flags |= packet.FlagEnd
		mRetransmitSDUs.Add(int64(len(rt)))
	}
	return rt, false, nil
}

func (s *srSender) OnTimeout() []SDU {
	if s.done {
		return nil
	}
	// "If the Error Control Thread at the sender side does not receive
	// an Acknowledgment packet within an appropriate interval, it
	// retransmits the whole packets."
	rt := make([]SDU, len(s.sdus))
	copy(rt, s.sdus)
	for i := range rt {
		rt[i].Header.Flags |= packet.FlagRetransmit
	}
	mRetransmitSDUs.Add(int64(len(rt)))
	return rt
}

func (s *srSender) Done() bool { return s.done }

// srReceiver implements the receiver half: clear bitmap positions as
// SDUs arrive; when an end-bit SDU arrives, send an ACK carrying the
// bitmap; the message completes when the bitmap is empty. Segments are
// held as retained views of the pooled receive buffers (zero-copy)
// until Message assembles and releases them.
type srReceiver struct {
	segments map[uint32]segment
	bitmap   *packet.Bitmap
	total    int // SDU count, learned from the end packet
	haveEnd  bool
	done     bool
	msg      []byte // cached assembly; segments released once set
	ackOut   [1]packet.Control
}

var _ Receiver = (*srReceiver)(nil)

func newSRReceiver() *srReceiver {
	return &srReceiver{segments: make(map[uint32]segment)}
}

// ack stages an acknowledgment in the receiver's scratch slot (valid
// until the next OnData call, per the Receiver contract).
func (r *srReceiver) ack(h packet.DataHeader) []packet.Control {
	r.ackOut[0] = packet.Control{
		Type:      packet.CtrlAck,
		ConnID:    h.ConnID,
		SessionID: h.SessionID,
		Body:      r.bitmap.Marshal(),
	}
	return r.ackOut[:1]
}

func (r *srReceiver) OnData(h packet.DataHeader, payload []byte, ref *buf.Buffer) ([]packet.Control, bool) {
	if r.done {
		// The sender retransmitting after completion means our final
		// ACK was lost: answer end-flagged SDUs with the (empty) bitmap
		// again so the sender can finish.
		mRecvDup.Inc()
		if h.End() {
			return r.ack(h), true
		}
		return nil, true
	}
	if _, dup := r.segments[h.Seq]; !dup {
		r.segments[h.Seq] = holdSegment(payload, ref)
	} else {
		mRecvDup.Inc()
	}
	// The first end-flagged SDU we see fixes the message length. Before
	// the receiver has ever acknowledged, every end-flagged packet
	// carries the true final sequence number: batch-end re-flagging only
	// happens in response to an ACK, and an ACK implies we had already
	// learned the length.
	if h.End() && !r.haveEnd {
		r.total = int(h.Seq) + 1
		r.haveEnd = true
		r.bitmap = packet.NewBitmap(r.total)
		for seq := range r.segments {
			r.bitmap.Clear(int(seq))
		}
	} else if r.haveEnd {
		r.bitmap.Clear(int(h.Seq))
	}

	// Acknowledge whenever an end-flagged SDU arrives (original end or
	// the re-flagged last packet of a retransmission batch).
	if h.End() && r.haveEnd {
		done := !r.bitmap.AnySet()
		if done {
			r.done = true
		}
		return r.ack(h), done
	}
	return nil, false
}

func (r *srReceiver) Message() []byte {
	if !r.done {
		return nil
	}
	if r.msg == nil {
		var size int
		for i := 0; i < r.total; i++ {
			size += len(r.segments[uint32(i)].data)
		}
		out := make([]byte, 0, size)
		for i := 0; i < r.total; i++ {
			out = append(out, r.segments[uint32(i)].data...)
		}
		// Delivery: the assembled message replaces the retained pooled
		// views, whose buffers can now recycle.
		for _, s := range r.segments {
			s.release()
		}
		r.segments = nil
		r.msg = out
	}
	return r.msg
}

func (r *srReceiver) LostSDUs() int { return 0 }

func (r *srReceiver) Abandon() {
	for _, s := range r.segments {
		s.release()
	}
	r.segments = nil
}
