package errctl

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ncs/internal/packet"
)

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		None: "none", SelectiveRepeat: "selective-repeat", GoBackN: "go-back-n",
		Algorithm(77): "Algorithm(77)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("String() = %q, want %q", a.String(), s)
		}
	}
}

func TestSegment(t *testing.T) {
	tests := []struct {
		name     string
		msgLen   int
		sduSize  int
		wantSDUs int
	}{
		{"empty", 0, 100, 1},
		{"one byte", 1, 100, 1},
		{"exact fit", 100, 100, 1},
		{"one over", 101, 100, 2},
		{"many", 1000, 100, 10},
		{"default size", 10000, 0, 3}, // 4K default
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			msg := bytes.Repeat([]byte{0xee}, tc.msgLen)
			sdus := Segment(msg, tc.sduSize, 1, 2, 0)
			if len(sdus) != tc.wantSDUs {
				t.Fatalf("got %d SDUs, want %d", len(sdus), tc.wantSDUs)
			}
			var total int
			for i, s := range sdus {
				if s.Header.Seq != uint32(i) {
					t.Fatalf("SDU %d has seq %d", i, s.Header.Seq)
				}
				if s.Header.End() != (i == len(sdus)-1) {
					t.Fatalf("SDU %d end bit wrong", i)
				}
				if int(s.Header.Length) != len(s.Payload) {
					t.Fatalf("SDU %d length mismatch", i)
				}
				total += len(s.Payload)
			}
			if total != tc.msgLen {
				t.Fatalf("segmented %d bytes, want %d", total, tc.msgLen)
			}
		})
	}
}

// deliver pushes SDUs through a receiver, returning all acks produced.
func deliver(r Receiver, sdus []SDU) (acks []packet.Control, done bool) {
	for _, s := range sdus {
		a, d := r.OnData(s.Header, s.Payload, nil)
		acks = append(acks, a...)
		done = d
	}
	return acks, done
}

func TestSelectiveRepeatHappyPath(t *testing.T) {
	msg := bytes.Repeat([]byte("selectiverepeat"), 100)
	s := NewSender(SelectiveRepeat, msg, 128, 1, 1)
	r := NewReceiver(SelectiveRepeat)

	acks, done := deliver(r, s.Initial())
	if !done {
		t.Fatal("receiver not done after full delivery")
	}
	if len(acks) != 1 {
		t.Fatalf("got %d acks, want 1 (on end bit)", len(acks))
	}
	rt, sdone, err := s.OnAck(acks[0])
	if err != nil || !sdone || len(rt) != 0 {
		t.Fatalf("OnAck = %v, %v, %v", rt, sdone, err)
	}
	if !bytes.Equal(r.Message(), msg) {
		t.Fatal("message mismatch")
	}
}

func TestSelectiveRepeatRetransmitsExactlyMissing(t *testing.T) {
	msg := bytes.Repeat([]byte{1, 2, 3, 4}, 250) // 1000 bytes
	s := NewSender(SelectiveRepeat, msg, 100, 1, 1)
	r := NewReceiver(SelectiveRepeat)

	initial := s.Initial()
	if len(initial) != 10 {
		t.Fatalf("expected 10 SDUs, got %d", len(initial))
	}
	// Drop SDUs 2 and 7; keep the end SDU so the receiver acks.
	var kept []SDU
	for i, sdu := range initial {
		if i == 2 || i == 7 {
			continue
		}
		kept = append(kept, sdu)
	}
	acks, done := deliver(r, kept)
	if done {
		t.Fatal("receiver done despite missing SDUs")
	}
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1", len(acks))
	}
	rt, sdone, err := s.OnAck(acks[0])
	if err != nil || sdone {
		t.Fatalf("OnAck: %v, %v", sdone, err)
	}
	if len(rt) != 2 || rt[0].Header.Seq != 2 || rt[1].Header.Seq != 7 {
		t.Fatalf("retransmit set wrong: %+v", rt)
	}
	for _, sdu := range rt {
		if sdu.Header.Flags&packet.FlagRetransmit == 0 {
			t.Fatal("retransmission not flagged")
		}
	}
	// The batch's last SDU must be end-flagged to trigger the next ack.
	if !rt[1].Header.End() {
		t.Fatal("last retransmitted SDU lacks end flag")
	}

	acks, done = deliver(r, rt)
	if !done {
		t.Fatal("receiver not done after retransmission")
	}
	_, sdone, err = s.OnAck(acks[len(acks)-1])
	if err != nil || !sdone {
		t.Fatalf("final OnAck: %v, %v", sdone, err)
	}
	if !bytes.Equal(r.Message(), msg) {
		t.Fatal("message corrupted by retransmission path")
	}
}

func TestSelectiveRepeatLostEndSDU(t *testing.T) {
	msg := make([]byte, 500)
	for i := range msg {
		msg[i] = byte(i)
	}
	s := NewSender(SelectiveRepeat, msg, 100, 1, 1)
	r := NewReceiver(SelectiveRepeat)

	initial := s.Initial()
	// Lose the final SDU: the receiver cannot ack, the sender times out
	// and retransmits the whole message (Figure 6).
	acks, done := deliver(r, initial[:len(initial)-1])
	if len(acks) != 0 || done {
		t.Fatalf("receiver acted without the end SDU: acks=%d done=%v", len(acks), done)
	}
	rt := s.OnTimeout()
	if len(rt) != len(initial) {
		t.Fatalf("timeout retransmitted %d SDUs, want all %d", len(rt), len(initial))
	}
	acks, done = deliver(r, rt)
	if !done {
		t.Fatal("not done after full retransmission")
	}
	if _, sdone, _ := s.OnAck(acks[len(acks)-1]); !sdone {
		t.Fatal("sender not done")
	}
	if !bytes.Equal(r.Message(), msg) {
		t.Fatal("message mismatch")
	}
}

func TestSelectiveRepeatLostAck(t *testing.T) {
	msg := make([]byte, 300)
	s := NewSender(SelectiveRepeat, msg, 100, 1, 1)
	r := NewReceiver(SelectiveRepeat)

	// Full delivery, but the ack vanishes; sender times out and resends
	// everything; receiver must tolerate duplicates and re-ack.
	_, done := deliver(r, s.Initial())
	if !done {
		t.Fatal("receiver should be done")
	}
	rt := s.OnTimeout()
	acks, _ := deliver(r, rt)
	if len(acks) == 0 {
		t.Fatal("receiver did not re-ack retransmitted end")
	}
	if _, sdone, _ := s.OnAck(acks[len(acks)-1]); !sdone {
		t.Fatal("sender stuck after duplicate-delivery ack")
	}
	if !bytes.Equal(r.Message(), msg) {
		t.Fatal("message mismatch after duplicates")
	}
}

func TestSelectiveRepeatIgnoresForeignControl(t *testing.T) {
	s := NewSender(SelectiveRepeat, []byte("x"), 10, 1, 1)
	rt, done, err := s.OnAck(packet.Control{Type: packet.CtrlCredit, Body: packet.CreditBody(1)})
	if rt != nil || done || err != nil {
		t.Fatalf("foreign control mishandled: %v %v %v", rt, done, err)
	}
}

func TestGoBackNHappyPath(t *testing.T) {
	msg := bytes.Repeat([]byte("gobackn!"), 64)
	s := NewSender(GoBackN, msg, 64, 3, 9)
	r := NewReceiver(GoBackN)

	acks, done := deliver(r, s.Initial())
	if !done {
		t.Fatal("receiver not done")
	}
	var sdone bool
	for _, a := range acks {
		_, sdone, _ = s.OnAck(a)
	}
	if !sdone {
		t.Fatal("sender not done after cumulative acks")
	}
	if !bytes.Equal(r.Message(), msg) {
		t.Fatal("message mismatch")
	}
}

func TestGoBackNGapTriggersNack(t *testing.T) {
	msg := make([]byte, 500)
	s := NewSender(GoBackN, msg, 100, 1, 1)
	r := NewReceiver(GoBackN)

	initial := s.Initial() // 5 SDUs
	// Deliver 0,1 then 3 (gap at 2).
	acks0, _ := deliver(r, initial[0:2])
	for _, a := range acks0 {
		s.OnAck(a)
	}
	acks, _ := r.OnData(initial[3].Header, initial[3].Payload, nil)
	if len(acks) != 1 || acks[0].Type != packet.CtrlNack {
		t.Fatalf("gap did not produce NACK: %+v", acks)
	}
	exp, _ := packet.ParseCreditBody(acks[0].Body)
	if exp != 2 {
		t.Fatalf("NACK expected seq = %d, want 2", exp)
	}
	rt, done, err := s.OnAck(acks[0])
	if err != nil || done {
		t.Fatal("sender mishandled NACK")
	}
	// Replay must start at 2 and run to the end.
	if len(rt) != 3 || rt[0].Header.Seq != 2 || rt[2].Header.Seq != 4 {
		t.Fatalf("replay wrong: %d SDUs starting at %d", len(rt), rt[0].Header.Seq)
	}
	facks, done := deliver(r, rt)
	if !done {
		t.Fatal("receiver not done after replay")
	}
	var sdone bool
	for _, a := range facks {
		_, sdone, _ = s.OnAck(a)
	}
	if !sdone || !bytes.Equal(r.Message(), msg) {
		t.Fatal("go-back-n recovery failed")
	}
}

func TestGoBackNTimeoutReplaysFromBase(t *testing.T) {
	msg := make([]byte, 300)
	s := NewSender(GoBackN, msg, 100, 1, 1)
	r := NewReceiver(GoBackN)

	initial := s.Initial() // 3 SDUs
	acks, _ := deliver(r, initial[:1])
	for _, a := range acks {
		s.OnAck(a)
	}
	// SDUs 1,2 lost entirely; sender times out.
	rt := s.OnTimeout()
	if len(rt) != 2 || rt[0].Header.Seq != 1 {
		t.Fatalf("timeout replay = %d SDUs from %d, want 2 from 1", len(rt), rt[0].Header.Seq)
	}
	facks, done := deliver(r, rt)
	if !done {
		t.Fatal("not done after timeout replay")
	}
	var sdone bool
	for _, a := range facks {
		_, sdone, _ = s.OnAck(a)
	}
	if !sdone {
		t.Fatal("sender not done")
	}
}

func TestNoneToleratesLoss(t *testing.T) {
	msg := bytes.Repeat([]byte{7}, 1000)
	s := NewSender(None, msg, 100, 1, 1)
	r := NewReceiver(None)

	if !s.Done() {
		t.Fatal("unreliable sender should be done immediately")
	}
	initial := s.Initial()
	for _, sdu := range initial {
		if sdu.Header.Flags&packet.FlagUnreliable == 0 {
			t.Fatal("unreliable SDU not flagged")
		}
	}
	// Drop SDUs 1 and 5, keep the rest including the end.
	var kept []SDU
	for i, sdu := range initial {
		if i == 1 || i == 5 {
			continue
		}
		kept = append(kept, sdu)
	}
	acks, done := deliver(r, kept)
	if len(acks) != 0 {
		t.Fatal("None receiver generated control traffic")
	}
	if !done {
		t.Fatal("None receiver should complete on end bit")
	}
	if got := r.LostSDUs(); got != 2 {
		t.Fatalf("LostSDUs = %d, want 2", got)
	}
	if len(r.Message()) != 800 {
		t.Fatalf("message length = %d, want 800 (holes omitted)", len(r.Message()))
	}
}

// lossySimulate drives a sender/receiver pair over a channel that drops
// data packets and acks with the given probabilities. Returns the
// reconstructed message.
func lossySimulate(t *testing.T, alg Algorithm, msg []byte, sduSize int, dataLoss, ackLoss float64, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewSender(alg, msg, sduSize, 1, 1)
	r := NewReceiver(alg)

	queue := s.Initial()
	const maxRounds = 200
	for round := 0; round < maxRounds; round++ {
		var acks []packet.Control
		progressed := false
		for _, sdu := range queue {
			if rng.Float64() < dataLoss {
				continue // dropped on the wire
			}
			progressed = true
			a, _ := r.OnData(sdu.Header, sdu.Payload, nil)
			acks = append(acks, a...)
		}
		queue = nil
		sdone := s.Done()
		for _, a := range acks {
			if rng.Float64() < ackLoss {
				continue
			}
			rt, d, err := s.OnAck(a)
			if err != nil && err != ErrSessionDone {
				t.Fatalf("OnAck: %v", err)
			}
			queue = append(queue, rt...)
			sdone = sdone || d
		}
		if sdone {
			return r.Message()
		}
		if len(queue) == 0 {
			// Nothing in flight: the sender's retransmission timer fires.
			queue = s.OnTimeout()
			if len(queue) == 0 && !progressed {
				t.Fatalf("%v: stalled at round %d", alg, round)
			}
		}
	}
	t.Fatalf("%v: no convergence after %d rounds", alg, maxRounds)
	return nil
}

func TestReliableAlgorithmsUnderHeavyLoss(t *testing.T) {
	msg := make([]byte, 5000)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	for _, alg := range []Algorithm{SelectiveRepeat, GoBackN} {
		t.Run(alg.String(), func(t *testing.T) {
			got := lossySimulate(t, alg, msg, 256, 0.3, 0.3, 99)
			if !bytes.Equal(got, msg) {
				t.Fatal("message corrupted under loss")
			}
		})
	}
}

// Property: both reliable algorithms deliver arbitrary messages intact
// across randomly lossy channels.
func TestQuickReliableDelivery(t *testing.T) {
	f := func(data []byte, seed int64, lossPct uint8) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		loss := float64(lossPct%60) / 100.0
		for _, alg := range []Algorithm{SelectiveRepeat, GoBackN} {
			s := NewSender(alg, data, 128, 1, 1)
			r := NewReceiver(alg)
			rng := rand.New(rand.NewSource(seed))
			queue := s.Initial()
			delivered := false
			for round := 0; round < 300 && !delivered; round++ {
				var acks []packet.Control
				for _, sdu := range queue {
					if rng.Float64() < loss {
						continue
					}
					a, _ := r.OnData(sdu.Header, sdu.Payload, nil)
					acks = append(acks, a...)
				}
				queue = nil
				for _, a := range acks {
					if rng.Float64() < loss {
						continue
					}
					rt, d, _ := s.OnAck(a)
					queue = append(queue, rt...)
					delivered = delivered || d
				}
				if len(queue) == 0 && !delivered {
					queue = s.OnTimeout()
				}
			}
			if !delivered || !bytes.Equal(r.Message(), data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSegmentStreamStampsStreamID: every SDU of a stream session must
// carry the stream id, and the stream-0 wrapper must stamp zero.
func TestSegmentStreamStampsStreamID(t *testing.T) {
	msg := bytes.Repeat([]byte("x"), 300)
	for _, sdu := range SegmentStream(msg, 100, 7, 42, 9, 0) {
		if sdu.Header.StreamID != 42 {
			t.Fatalf("SDU %d stamped stream %d, want 42", sdu.Header.Seq, sdu.Header.StreamID)
		}
		if sdu.Header.ConnID != 7 || sdu.Header.SessionID != 9 {
			t.Fatalf("routing fields diverged: %+v", sdu.Header)
		}
	}
	for _, sdu := range Segment(msg, 100, 7, 9, 0) {
		if sdu.Header.StreamID != 0 {
			t.Fatalf("Segment stamped stream %d, want 0", sdu.Header.StreamID)
		}
	}
	for _, alg := range []Algorithm{None, SelectiveRepeat, GoBackN} {
		snd := NewSenderStream(alg, msg, 100, 7, 42, 9)
		for _, sdu := range snd.Initial() {
			if sdu.Header.StreamID != 42 {
				t.Fatalf("%v sender stamped stream %d, want 42", alg, sdu.Header.StreamID)
			}
		}
	}
}
