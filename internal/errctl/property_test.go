package errctl

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ncs/internal/buf"
	"ncs/internal/packet"
)

// The property test drives each error-control mode's sender/receiver
// pair through seeded impairment schedules — loss, duplication, and
// reordering on both the data and the acknowledgment channel — and
// asserts the §3.2 delivery contracts:
//
//   - selective repeat and go-back-N deliver the message exactly, in
//     order, with no duplicated or missing bytes, and report zero lost
//     SDUs;
//   - None assembles exactly the segments that arrived (in sequence
//     order) and reports the missing ones via LostSDUs;
//   - every pooled buffer the receivers retain is released by delivery
//     or Abandon (checked via the buf refcount audit hook).
//
// Each schedule is one seed: the channel's drop/duplicate/reorder
// decisions all derive from it, so a failing seed replays exactly —
// rerun with -run 'TestErrctlProperty/<mode>/seed<N>'.

// propSchedule is one seeded channel behaviour.
type propSchedule struct {
	rng      *rand.Rand
	dropData float64 // per-delivery data SDU loss
	dupData  float64 // per-delivery data SDU duplication
	dropAck  float64 // per-delivery ack loss
	reorder  float64 // probability a delivery picks a random queue slot
}

// inflight carries a copied control packet (the Receiver scratch slice
// is only valid until the next OnData call).
func copyControl(c packet.Control) packet.Control {
	body := make([]byte, len(c.Body))
	copy(body, c.Body)
	c.Body = body
	return c
}

// pick removes a queue element: usually the head (FIFO), sometimes a
// random slot (reordering).
func pickSDU(sch *propSchedule, q *[]SDU) SDU {
	i := 0
	if len(*q) > 1 && sch.rng.Float64() < sch.reorder {
		i = sch.rng.Intn(len(*q))
	}
	v := (*q)[i]
	*q = append((*q)[:i], (*q)[i+1:]...)
	return v
}

func pickCtrl(sch *propSchedule, q *[]packet.Control) packet.Control {
	i := 0
	if len(*q) > 1 && sch.rng.Float64() < sch.reorder {
		i = sch.rng.Intn(len(*q))
	}
	v := (*q)[i]
	*q = append((*q)[:i], (*q)[i+1:]...)
	return v
}

// deliverData hands one SDU to the receiver through a pooled buffer,
// mimicking the receive path's ownership contract: the receiver must
// retain the ref to keep the payload, and the caller releases its own
// reference immediately after OnData returns.
func deliverData(rcv Receiver, sdu SDU) ([]packet.Control, bool) {
	b := buf.Get(len(sdu.Payload))
	copy(b.B, sdu.Payload)
	acks, done := rcv.OnData(sdu.Header, b.B, b)
	out := make([]packet.Control, len(acks))
	for i, a := range acks {
		out[i] = copyControl(a)
	}
	b.Release()
	return out, done
}

func runPropertySchedule(t *testing.T, mode Algorithm, seed int64) {
	t.Helper()
	baseline := buf.Outstanding()
	rng := rand.New(rand.NewSource(seed))
	sch := &propSchedule{
		rng:      rng,
		dropData: 0.05 + 0.3*rng.Float64(),
		dupData:  0.2 * rng.Float64(),
		dropAck:  0.25 * rng.Float64(),
		reorder:  0.4 * rng.Float64(),
	}
	msg := make([]byte, rng.Intn(6*1024))
	rng.Read(msg)
	sduSize := 128 << rng.Intn(3) // 128, 256, 512 → multi-SDU messages

	snd := NewSender(mode, msg, sduSize, 1, 1)
	rcv := NewReceiver(mode)

	dataQ := append([]SDU(nil), snd.Initial()...)
	var ackQ []packet.Control
	seen := make(map[uint32]bool) // data seqs ever delivered (for None)
	rcvDone := false

	const budget = 200_000
	for step := 0; step < budget; step++ {
		if snd.Done() && (rcvDone || mode == None) && len(dataQ) == 0 {
			break
		}
		switch {
		case len(dataQ) > 0:
			sdu := pickSDU(sch, &dataQ)
			n := 1
			if sch.rng.Float64() < sch.dupData {
				n = 2
			}
			if sch.rng.Float64() < sch.dropData {
				n--
			}
			for ; n > 0; n-- {
				wasDone := rcvDone
				acks, done := deliverData(rcv, sdu)
				if !wasDone {
					// A None receiver ignores segments arriving after
					// the End SDU completed the session.
					seen[sdu.Header.Seq] = true
				}
				rcvDone = rcvDone || done
				ackQ = append(ackQ, acks...)
			}
		case len(ackQ) > 0:
			a := pickCtrl(sch, &ackQ)
			if sch.rng.Float64() < sch.dropAck {
				continue
			}
			rt, _, err := snd.OnAck(a)
			if err != nil && err != ErrSessionDone {
				t.Fatalf("OnAck: %v", err)
			}
			dataQ = append(dataQ, rt...)
		default:
			// Both channels idle: the retransmission timer fires.
			dataQ = append(dataQ, snd.OnTimeout()...)
		}
	}

	switch mode {
	case SelectiveRepeat, GoBackN:
		if !snd.Done() {
			t.Fatalf("sender never completed (drop=%.2f dup=%.2f ackdrop=%.2f reorder=%.2f, %d SDUs)",
				sch.dropData, sch.dupData, sch.dropAck, sch.reorder, len(Segment(msg, sduSize, 1, 1, 0)))
		}
		if !rcvDone {
			t.Fatal("receiver never completed")
		}
		got := rcv.Message()
		if !bytes.Equal(got, msg) {
			t.Fatalf("message corrupted: got %d bytes, want %d (in-order, no-duplicate delivery violated)",
				len(got), len(msg))
		}
		if lost := rcv.LostSDUs(); lost != 0 {
			t.Fatalf("reliable mode reported %d lost SDUs", lost)
		}
	case None:
		if rcvDone {
			// Honest reassembly: the message is exactly the segments
			// that arrived, in sequence order, and LostSDUs counts the
			// holes.
			sdus := Segment(msg, sduSize, 1, 1, packet.FlagUnreliable)
			var want []byte
			lost := 0
			for _, sdu := range sdus {
				if seen[sdu.Header.Seq] {
					want = append(want, sdu.Payload...)
				} else {
					lost++
				}
			}
			if got := rcv.Message(); !bytes.Equal(got, want) {
				t.Fatalf("None mode assembled %d bytes, want %d (segments out of order or duplicated)",
					len(got), len(want))
			}
			if rcv.LostSDUs() != lost {
				t.Fatalf("LostSDUs = %d, want %d", rcv.LostSDUs(), lost)
			}
		} else {
			rcv.Abandon()
		}
	}
	Recycle(rcv)
	if now := buf.Outstanding(); now != baseline {
		t.Fatalf("receiver leaked %d pooled buffer refs", now-baseline)
	}
}

func TestErrctlProperty(t *testing.T) {
	schedules := 1000
	if testing.Short() {
		schedules = 100
	}
	for _, mode := range []Algorithm{SelectiveRepeat, GoBackN, None} {
		t.Run(mode.String(), func(t *testing.T) {
			for seed := 0; seed < schedules; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runPropertySchedule(t, mode, int64(seed))
				})
			}
		})
	}
}
