package errctl

import (
	"sync"

	"ncs/internal/buf"
	"ncs/internal/packet"
)

// noneSender transmits every SDU exactly once and never retransmits —
// the configuration the paper prescribes for audio/video streams whose
// timeliness matters more than completeness (Figure 2). SDUs are marked
// FlagUnreliable so diagnostics can tell the streams apart.
//
// The core bypasses this type on its hot paths (it segments unreliable
// messages inline, with no per-message sender object); noneSender
// remains the NewSender default for callers that want the uniform
// Sender interface.
type noneSender struct {
	sdus []SDU
}

var _ Sender = (*noneSender)(nil)

func newNoneSender(msg []byte, sduSize int, connID, streamID, sessionID uint32) *noneSender {
	return &noneSender{sdus: SegmentStream(msg, sduSize, connID, streamID, sessionID, packet.FlagUnreliable)}
}

func (s *noneSender) Initial() []SDU { return s.sdus }

// OnAck is a no-op: unreliable sessions complete as soon as the SDUs
// leave the sender.
func (s *noneSender) OnAck(packet.Control) ([]SDU, bool, error) { return nil, true, nil }

func (s *noneSender) OnTimeout() []SDU { return nil }

func (s *noneSender) Done() bool { return true }

// MaxUnreliableSegments bounds the segment index a None receiver will
// track (senders enforce it too: core rejects larger unreliable
// messages with ErrSendTooLarge rather than letting them silently
// never complete). The receiver's bookkeeping is dense (indexed
// 0..total-1), so one SDU whose header carries a huge sequence number
// would otherwise force a huge allocation. 64K segments means a 256MB
// message at the default SDU size — far beyond any real unreliable
// transfer — while capping the damage of a corrupt or hostile header
// at ~2MB; SDUs beyond the bound are dropped.
const MaxUnreliableSegments = 1 << 16

// maxPooledSegs bounds the segment storage a recycled receiver keeps:
// a receiver that grew unusually large (a near-cap sequence
// number) frees its slices rather than pinning them in the pool.
const maxPooledSegs = 4096

// noneReceiver reassembles whatever arrives; the message completes when
// the end-bit SDU shows up, with missing segments simply absent. The
// LostSDUs counter lets media applications observe the loss they chose
// to tolerate. Segments are retained views of the pooled receive
// buffers, released when Message assembles the delivery.
//
// Receivers recycle through a pool (Recycle): unreliable sessions are
// the per-message hot path for streams and RPC traffic, so the segment
// bookkeeping is dense slices reused across messages, not a fresh map
// per message.
type noneReceiver struct {
	segs      []segment // segment payloads, indexed by SDU sequence
	got       []bool    // which sequence numbers ever arrived
	total     int       // -1 until the end-bit SDU fixes the count
	done      bool
	msg       []byte
	assembled bool
}

var _ Receiver = (*noneReceiver)(nil)

var noneReceiverPool = sync.Pool{New: func() any { return &noneReceiver{total: -1} }}

func newNoneReceiver() *noneReceiver {
	return noneReceiverPool.Get().(*noneReceiver)
}

// Recycle returns a receiver to its pool once the caller is done with
// it (message delivered, or the session abandoned). Only the None
// scheme pools receivers; Recycle is a no-op for the others. The
// receiver must not be used after Recycle.
func Recycle(r Receiver) {
	nr, ok := r.(*noneReceiver)
	if !ok {
		return
	}
	nr.reset()
	noneReceiverPool.Put(nr)
}

// reset returns the receiver to its fresh state, releasing any segment
// buffers still retained (delivery and Abandon both release, so this is
// a defensive sweep) and keeping modestly-sized slice storage for
// reuse.
func (r *noneReceiver) reset() {
	for i := range r.segs {
		r.segs[i].release()
		r.segs[i] = segment{}
	}
	if cap(r.segs) > maxPooledSegs {
		r.segs, r.got = nil, nil
	}
	r.segs = r.segs[:0]
	r.got = r.got[:0]
	r.total = -1
	r.done = false
	r.msg = nil
	r.assembled = false
}

func (r *noneReceiver) OnData(h packet.DataHeader, payload []byte, ref *buf.Buffer) ([]packet.Control, bool) {
	if r.done {
		return nil, true
	}
	seq := int(h.Seq)
	if seq >= MaxUnreliableSegments {
		return nil, false // corrupt header; drop the SDU
	}
	for len(r.segs) <= seq {
		r.segs = append(r.segs, segment{})
		r.got = append(r.got, false)
	}
	if r.got[seq] {
		r.segs[seq].release()
		mRecvDup.Inc()
	}
	r.segs[seq] = holdSegment(payload, ref)
	r.got[seq] = true
	if h.End() {
		r.total = seq + 1
		r.done = true
	}
	return nil, r.done
}

func (r *noneReceiver) Message() []byte {
	if !r.done {
		return nil
	}
	if !r.assembled {
		size := 0
		for i := 0; i < r.total; i++ {
			if r.got[i] {
				size += len(r.segs[i].data)
			}
		}
		out := make([]byte, 0, size)
		for i := 0; i < r.total; i++ {
			if r.got[i] {
				out = append(out, r.segs[i].data...)
			}
		}
		// Release the retained buffers but keep the got bits: LostSDUs
		// still counts which sequence numbers ever arrived.
		for i := range r.segs {
			r.segs[i].release()
			r.segs[i] = segment{}
		}
		r.msg = out
		r.assembled = true
	}
	return r.msg
}

func (r *noneReceiver) Abandon() {
	for i := range r.segs {
		r.segs[i].release()
		r.segs[i] = segment{}
	}
}

func (r *noneReceiver) LostSDUs() int {
	if r.total < 0 {
		return 0
	}
	lost := 0
	for i := 0; i < r.total; i++ {
		if !r.got[i] {
			lost++
		}
	}
	return lost
}
