package errctl

import (
	"ncs/internal/buf"
	"ncs/internal/packet"
)

// noneSender transmits every SDU exactly once and never retransmits —
// the configuration the paper prescribes for audio/video streams whose
// timeliness matters more than completeness (Figure 2). SDUs are marked
// FlagUnreliable so diagnostics can tell the streams apart.
type noneSender struct {
	sdus []SDU
}

var _ Sender = (*noneSender)(nil)

func newNoneSender(msg []byte, sduSize int, connID, sessionID uint32) *noneSender {
	return &noneSender{sdus: Segment(msg, sduSize, connID, sessionID, packet.FlagUnreliable)}
}

func (s *noneSender) Initial() []SDU { return s.sdus }

// OnAck is a no-op: unreliable sessions complete as soon as the SDUs
// leave the sender.
func (s *noneSender) OnAck(packet.Control) ([]SDU, bool, error) { return nil, true, nil }

func (s *noneSender) OnTimeout() []SDU { return nil }

func (s *noneSender) Done() bool { return true }

// noneReceiver reassembles whatever arrives; the message completes when
// the end-bit SDU shows up, with missing segments simply absent. The
// LostSDUs counter lets media applications observe the loss they chose
// to tolerate. Segments are retained views of the pooled receive
// buffers, released when Message assembles the delivery.
type noneReceiver struct {
	segments  map[uint32]segment
	total     int
	done      bool
	msg       []byte
	assembled bool
}

var _ Receiver = (*noneReceiver)(nil)

func newNoneReceiver() *noneReceiver {
	return &noneReceiver{segments: make(map[uint32]segment), total: -1}
}

func (r *noneReceiver) OnData(h packet.DataHeader, payload []byte, ref *buf.Buffer) ([]packet.Control, bool) {
	if r.done {
		return nil, true
	}
	if old, dup := r.segments[h.Seq]; dup {
		old.release()
	}
	r.segments[h.Seq] = holdSegment(payload, ref)
	if h.End() {
		r.total = int(h.Seq) + 1
		r.done = true
	}
	return nil, r.done
}

func (r *noneReceiver) Message() []byte {
	if !r.done {
		return nil
	}
	if !r.assembled {
		var out []byte
		for i := 0; i < r.total; i++ {
			if seg, ok := r.segments[uint32(i)]; ok {
				out = append(out, seg.data...)
			}
		}
		// Release the retained buffers but keep the keys: LostSDUs
		// still counts which sequence numbers ever arrived.
		for seq, s := range r.segments {
			s.release()
			r.segments[seq] = segment{}
		}
		r.msg = out
		r.assembled = true
	}
	return r.msg
}

func (r *noneReceiver) Abandon() {
	for _, s := range r.segments {
		s.release() // no-op on already-assembled (zeroed) entries
	}
	r.segments = nil
}

func (r *noneReceiver) LostSDUs() int {
	if r.total < 0 {
		return 0
	}
	lost := 0
	for i := 0; i < r.total; i++ {
		if _, ok := r.segments[uint32(i)]; !ok {
			lost++
		}
	}
	return lost
}
