package errctl

import (
	"fmt"
	"os"
	"testing"

	"ncs/internal/buf"
)

// TestMain audits the package's pooled-buffer accounting: errctl
// receivers retain segment references during reassembly, and every
// test must end with those references released (via delivery, Abandon,
// or Recycle). A non-zero count here is a refcount leak that would pin
// pooled storage forever in a long-running process.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if n := buf.Outstanding(); n != 0 {
			fmt.Fprintf(os.Stderr, "errctl tests leaked %d pooled buffer refs\n", n)
			code = 1
		}
	}
	os.Exit(code)
}
