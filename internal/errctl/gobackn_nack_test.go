package errctl

import (
	"testing"

	"ncs/internal/packet"
)

// Regression test for the chaos-harness livelock
// (go-back-n/window/ACI/fastpath/reorder): the receiver NACKs every
// out-of-order arrival, so one loss inside a window yields a NACK per
// in-flight SDU behind it. The sender must replay the window once per
// base value, not once per NACK — otherwise each replayed SDU breeds
// another control packet faster than a fast-path sender consumes them.
func TestGBNSenderSuppressesDuplicateNACKs(t *testing.T) {
	msg := make([]byte, 10*64)
	s := newGBNSender(msg, 64, 1, 0, 1)
	if got := len(s.Initial()); got != 10 {
		t.Fatalf("segmented into %d SDUs, want 10", got)
	}

	nack := func(n uint32) []SDU {
		rt, done, err := s.OnAck(packet.Control{Type: packet.CtrlNack, Body: packet.CreditBody(n)})
		if err != nil || done {
			t.Fatalf("NACK(%d): rt=%d done=%v err=%v", n, len(rt), done, err)
		}
		return rt
	}

	if rt := nack(2); len(rt) != 8 {
		t.Fatalf("first NACK(2) replayed %d SDUs, want 8 (from base 2)", len(rt))
	}
	// The storm: duplicates of the same NACK, and stale earlier ones.
	for i := 0; i < 5; i++ {
		if rt := nack(2); rt != nil {
			t.Fatalf("duplicate NACK(2) replayed %d SDUs, want none", len(rt))
		}
		if rt := nack(1); rt != nil {
			t.Fatalf("stale NACK(1) replayed %d SDUs, want none", len(rt))
		}
	}
	// Progress reopens replay: a NACK at a new base replays once.
	if rt := nack(5); len(rt) != 5 {
		t.Fatalf("NACK(5) replayed %d SDUs, want 5", len(rt))
	}
	if rt := nack(5); rt != nil {
		t.Fatalf("duplicate NACK(5) replayed %d SDUs, want none", len(rt))
	}
	// A lost replay is the timer's job, and the timer is never
	// suppressed.
	if rt := s.OnTimeout(); len(rt) != 5 {
		t.Fatalf("timeout replayed %d SDUs, want 5", len(rt))
	}

	// Completion via cumulative ACK still works after suppression.
	rt, done, err := s.OnAck(packet.Control{Type: packet.CtrlAck, Body: packet.CreditBody(9)})
	if err != nil || !done || rt != nil {
		t.Fatalf("final ACK: rt=%d done=%v err=%v", len(rt), done, err)
	}
}
