package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ncs/internal/buf"
)

// AAL5 limits.
const (
	// MaxFrameSize is the largest AAL5 service data unit: the length
	// field in the trailer is 16 bits, so a single frame carries at most
	// 64 KB - 1 of user data. The paper's SDU sizes (4–64 KB) come from
	// this limit.
	MaxFrameSize = 1<<16 - 1
	// aal5TrailerSize is UU(1) + CPI(1) + Length(2) + CRC-32(4).
	aal5TrailerSize = 8
)

// Errors returned by AAL5 reassembly.
var (
	// ErrFrameCRC indicates the reassembled frame failed its CRC-32,
	// typically after cell loss or corruption. The frame is discarded;
	// recovery is the job of the error-control layer above (§3.2).
	ErrFrameCRC = errors.New("atm: AAL5 frame CRC mismatch")
	// ErrFrameLength indicates the trailer length field is inconsistent
	// with the number of reassembled cells.
	ErrFrameLength = errors.New("atm: AAL5 frame length mismatch")
	// ErrFrameTooLarge indicates the payload exceeds MaxFrameSize.
	ErrFrameTooLarge = errors.New("atm: frame exceeds AAL5 maximum")
)

// frameLength returns the total AAL5 frame length (payload + pad +
// trailer, a whole number of cell payloads) for a payload of n bytes.
func frameLength(n int) int {
	raw := n + aal5TrailerSize
	return (raw + CellPayloadSize - 1) / CellPayloadSize * CellPayloadSize
}

// finishAAL5Frame completes an AAL5 frame in place: frame's first
// payloadLen bytes hold user data, the rest is overwritten with the pad
// and the trailer (UU, CPI, length, CRC-32 over everything but the CRC
// field). len(frame) must equal frameLength(payloadLen).
func finishAAL5Frame(frame []byte, payloadLen int) {
	total := len(frame)
	clear(frame[payloadLen : total-4]) // pad + UU + CPI (+ length slot)
	tr := frame[total-aal5TrailerSize:]
	binary.BigEndian.PutUint16(tr[2:4], uint16(payloadLen))
	crc := crc32.ChecksumIEEE(frame[:total-4])
	binary.BigEndian.PutUint32(tr[4:8], crc)
}

// SegmentAAL5 splits payload into ATM cells for the given circuit,
// appending the AAL5 trailer (with CRC-32 over payload+pad+trailer) and
// padding so the frame occupies a whole number of cells. The final cell
// carries the end-of-frame PTI bit.
//
// The hot path (VC.SendFrame) does not materialise []Cell; it stages
// the frame in a pooled buffer and marshals cells straight onto the
// link. SegmentAAL5 remains the reference implementation and the API
// for callers that want the cells themselves.
func SegmentAAL5(vpi uint8, vci uint16, payload []byte) ([]Cell, error) {
	if len(payload) > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	total := frameLength(len(payload))
	fb := buf.Get(total)
	defer fb.Release()
	frame := fb.B
	copy(frame, payload)
	finishAAL5Frame(frame, len(payload))

	cells := make([]Cell, 0, total/CellPayloadSize)
	for off := 0; off < total; off += CellPayloadSize {
		c := Cell{VPI: vpi, VCI: vci}
		copy(c.Payload[:], frame[off:off+CellPayloadSize])
		if off+CellPayloadSize == total {
			c.PTI = 1 // end of frame
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// Reassembler rebuilds AAL5 frames from a cell stream for one VC,
// staging them in a pooled buffer. The zero value is ready to use.
type Reassembler struct {
	fb *buf.Buffer // pooled staging; nil between frames
}

// Push adds a cell's payload. It is PushFrame for legacy []byte
// callers: a completed frame is detached from the pool into an
// ordinary heap slice the caller owns.
func (r *Reassembler) Push(c Cell) ([]byte, bool, error) {
	fb, done, err := r.PushFrame(c)
	if fb == nil {
		return nil, done, err
	}
	return fb.TakeBytes(), done, err
}

// PushFrame adds a cell's payload. When the cell carries the
// end-of-frame bit, PushFrame validates the trailer and returns the
// frame payload in a pooled buffer (trimmed to the payload length)
// that the caller owns and must Release. On CRC or length failure the
// partial frame is discarded and an error is returned; the reassembler
// is then ready for the next frame, mirroring AAL5's frame-drop
// behaviour.
func (r *Reassembler) PushFrame(c Cell) (*buf.Buffer, bool, error) {
	if r.fb == nil {
		// Stage in the size class fitting a default-SDU frame (4 KB
		// payload + headers + trailer), the common case. Larger frames
		// grow by append past the pooled store — the pre-pool
		// behaviour — which beats staging everything in the 64 KB tier:
		// receivers that retain completed frames (selective repeat)
		// would otherwise pin a top-tier buffer per 4 KB segment.
		r.fb = buf.GetCap(buf.DefaultSDUStage)
	}
	r.fb.B = append(r.fb.B, c.Payload[:]...)
	if !c.EndOfFrame() {
		// Guard against an end-bit lost to cell drop: once the buffer
		// exceeds the largest legal frame, discard it.
		if len(r.fb.B) > MaxFrameSize+CellPayloadSize+aal5TrailerSize {
			r.Reset()
			return nil, false, ErrFrameLength
		}
		return nil, false, nil
	}
	fb := r.fb
	r.fb = nil
	frame := fb.B
	if len(frame) < aal5TrailerSize {
		fb.Release()
		return nil, false, ErrFrameLength
	}
	tr := frame[len(frame)-aal5TrailerSize:]
	length := int(binary.BigEndian.Uint16(tr[2:4]))
	wantCRC := binary.BigEndian.Uint32(tr[4:8])
	if got := crc32.ChecksumIEEE(frame[:len(frame)-4]); got != wantCRC {
		fb.Release()
		return nil, false, ErrFrameCRC
	}
	// The payload must fit within the frame minus the trailer, and the
	// padding must be less than one cell (otherwise cells were lost in a
	// way CRC happened to miss — impossible for CRC-32 over <64KB, but
	// cheap to check).
	if length > len(frame)-aal5TrailerSize {
		fb.Release()
		return nil, false, ErrFrameLength
	}
	fb.B = frame[:length]
	return fb, true, nil
}

// Pending reports the number of buffered bytes awaiting an end-of-frame
// cell.
func (r *Reassembler) Pending() int {
	if r.fb == nil {
		return 0
	}
	return r.fb.Len()
}

// Reset drops any partially reassembled frame, returning the staging
// buffer to its pool.
func (r *Reassembler) Reset() {
	if r.fb != nil {
		r.fb.Release()
		r.fb = nil
	}
}
