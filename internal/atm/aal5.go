package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// AAL5 limits.
const (
	// MaxFrameSize is the largest AAL5 service data unit: the length
	// field in the trailer is 16 bits, so a single frame carries at most
	// 64 KB - 1 of user data. The paper's SDU sizes (4–64 KB) come from
	// this limit.
	MaxFrameSize = 1<<16 - 1
	// aal5TrailerSize is UU(1) + CPI(1) + Length(2) + CRC-32(4).
	aal5TrailerSize = 8
)

// Errors returned by AAL5 reassembly.
var (
	// ErrFrameCRC indicates the reassembled frame failed its CRC-32,
	// typically after cell loss or corruption. The frame is discarded;
	// recovery is the job of the error-control layer above (§3.2).
	ErrFrameCRC = errors.New("atm: AAL5 frame CRC mismatch")
	// ErrFrameLength indicates the trailer length field is inconsistent
	// with the number of reassembled cells.
	ErrFrameLength = errors.New("atm: AAL5 frame length mismatch")
	// ErrFrameTooLarge indicates the payload exceeds MaxFrameSize.
	ErrFrameTooLarge = errors.New("atm: frame exceeds AAL5 maximum")
)

// SegmentAAL5 splits payload into ATM cells for the given circuit,
// appending the AAL5 trailer (with CRC-32 over payload+pad+trailer) and
// padding so the frame occupies a whole number of cells. The final cell
// carries the end-of-frame PTI bit.
func SegmentAAL5(vpi uint8, vci uint16, payload []byte) ([]Cell, error) {
	if len(payload) > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	// Total frame length: payload + pad + trailer, multiple of 48.
	raw := len(payload) + aal5TrailerSize
	total := (raw + CellPayloadSize - 1) / CellPayloadSize * CellPayloadSize
	frame := make([]byte, total)
	copy(frame, payload)
	// Trailer occupies the final 8 bytes.
	tr := frame[total-aal5TrailerSize:]
	tr[0] = 0 // CPCS-UU
	tr[1] = 0 // CPI
	binary.BigEndian.PutUint16(tr[2:4], uint16(len(payload)))
	// CRC-32 over the frame with the CRC field itself zeroed.
	crc := crc32.ChecksumIEEE(frame[:total-4])
	binary.BigEndian.PutUint32(tr[4:8], crc)

	cells := make([]Cell, 0, total/CellPayloadSize)
	for off := 0; off < total; off += CellPayloadSize {
		c := Cell{VPI: vpi, VCI: vci}
		copy(c.Payload[:], frame[off:off+CellPayloadSize])
		if off+CellPayloadSize == total {
			c.PTI = 1 // end of frame
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// Reassembler rebuilds AAL5 frames from a cell stream for one VC.
// The zero value is ready to use.
type Reassembler struct {
	buf []byte
}

// Push adds a cell's payload. When the cell carries the end-of-frame
// bit, Push validates the trailer and returns (payload, true, nil) on
// success. On CRC or length failure the partial frame is discarded and
// an error is returned; the reassembler is then ready for the next
// frame, mirroring AAL5's frame-drop behaviour.
func (r *Reassembler) Push(c Cell) ([]byte, bool, error) {
	r.buf = append(r.buf, c.Payload[:]...)
	if !c.EndOfFrame() {
		// Guard against an end-bit lost to cell drop: once the buffer
		// exceeds the largest legal frame, discard it.
		if len(r.buf) > MaxFrameSize+CellPayloadSize+aal5TrailerSize {
			r.buf = r.buf[:0]
			return nil, false, ErrFrameLength
		}
		return nil, false, nil
	}
	frame := r.buf
	r.buf = nil
	if len(frame) < aal5TrailerSize {
		return nil, false, ErrFrameLength
	}
	tr := frame[len(frame)-aal5TrailerSize:]
	length := int(binary.BigEndian.Uint16(tr[2:4]))
	wantCRC := binary.BigEndian.Uint32(tr[4:8])
	if got := crc32.ChecksumIEEE(frame[:len(frame)-4]); got != wantCRC {
		return nil, false, ErrFrameCRC
	}
	// The payload must fit within the frame minus the trailer, and the
	// padding must be less than one cell (otherwise cells were lost in a
	// way CRC happened to miss — impossible for CRC-32 over <64KB, but
	// cheap to check).
	if length > len(frame)-aal5TrailerSize {
		return nil, false, ErrFrameLength
	}
	return frame[:length], true, nil
}

// Pending reports the number of buffered bytes awaiting an end-of-frame
// cell.
func (r *Reassembler) Pending() int { return len(r.buf) }

// Reset drops any partially reassembled frame.
func (r *Reassembler) Reset() { r.buf = r.buf[:0] }
