package atm

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestCellRoundTrip(t *testing.T) {
	c := Cell{VPI: 3, VCI: 1234, PTI: 1, CLP: true}
	copy(c.Payload[:], "payload bytes")
	enc := c.Marshal(nil)
	if len(enc) != CellSize {
		t.Fatalf("cell size = %d, want %d", len(enc), CellSize)
	}
	got, err := UnmarshalCell(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
	if !got.EndOfFrame() {
		t.Error("EndOfFrame = false, want true")
	}
}

func TestCellHeaderCorruptionDetected(t *testing.T) {
	c := Cell{VCI: 9}
	enc := c.Marshal(nil)
	enc[1] ^= 0xff
	if _, err := UnmarshalCell(enc); err != ErrHeaderError {
		t.Fatalf("corrupted header: err = %v, want ErrHeaderError", err)
	}
}

func TestCellBadSize(t *testing.T) {
	if _, err := UnmarshalCell(make([]byte, 10)); err == nil {
		t.Fatal("short cell accepted")
	}
}

func TestSegmentReassemble(t *testing.T) {
	sizes := []int{0, 1, 39, 40, 41, 48, 96, 1000, 4096, 65535}
	for _, n := range sizes {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		cells, err := SegmentAAL5(0, 100, payload)
		if err != nil {
			t.Fatalf("segment %d: %v", n, err)
		}
		// Exactly one end-of-frame cell, at the end.
		for i, c := range cells {
			if c.EndOfFrame() != (i == len(cells)-1) {
				t.Fatalf("size %d: cell %d end bit wrong", n, i)
			}
		}
		var r Reassembler
		var got []byte
		done := false
		for _, c := range cells {
			var err error
			got, done, err = r.Push(c)
			if err != nil {
				t.Fatalf("reassemble %d: %v", n, err)
			}
		}
		if !done {
			t.Fatalf("size %d: frame never completed", n)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: payload mismatch", n)
		}
	}
}

func TestSegmentTooLarge(t *testing.T) {
	if _, err := SegmentAAL5(0, 1, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReassemblerDetectsPayloadCorruption(t *testing.T) {
	cells, err := SegmentAAL5(0, 5, []byte("an important message"))
	if err != nil {
		t.Fatal(err)
	}
	cells[0].Payload[0] ^= 0x01
	var r Reassembler
	for i, c := range cells {
		_, done, err := r.Push(c)
		if i == len(cells)-1 {
			if err != ErrFrameCRC {
				t.Fatalf("err = %v, want ErrFrameCRC", err)
			}
			if done {
				t.Fatal("done = true on corrupted frame")
			}
		}
	}
	if r.Pending() != 0 {
		t.Fatal("reassembler kept corrupt frame buffered")
	}
}

func TestReassemblerDetectsLostCell(t *testing.T) {
	payload := make([]byte, 4096)
	cells, err := SegmentAAL5(0, 5, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Drop a middle cell.
	cells = append(cells[:3], cells[4:]...)
	var r Reassembler
	var lastErr error
	for _, c := range cells {
		_, _, lastErr = r.Push(c)
	}
	if lastErr == nil {
		t.Fatal("lost cell went undetected")
	}
}

func TestReassemblerRecoversAfterMissingEndBit(t *testing.T) {
	// Frame A loses its final (end-bit) cell; frame B follows intact.
	a, err := SegmentAAL5(0, 5, bytes.Repeat([]byte{1}, 100))
	if err != nil {
		t.Fatal(err)
	}
	bPayload := bytes.Repeat([]byte{2}, 50)
	bCells, err := SegmentAAL5(0, 5, bPayload)
	if err != nil {
		t.Fatal(err)
	}
	var r Reassembler
	for _, c := range a[:len(a)-1] {
		if _, _, err := r.Push(c); err != nil {
			t.Fatal(err)
		}
	}
	// B's cells arrive: the merged frame must fail, then the
	// reassembler must be usable again.
	sawError := false
	for _, c := range bCells {
		if _, _, err := r.Push(c); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("merged frames passed CRC (expected failure)")
	}
}

func TestVCEndToEnd(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	alice := n.Host("alice")
	bob := n.Host("bob")

	vcCh := make(chan *VC, 1)
	go func() {
		vc, err := bob.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		vcCh <- vc
	}()

	out, err := alice.Dial("bob", QoS{})
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	in := <-vcCh
	defer in.Close()

	if out.VCI() != in.VCI() {
		t.Errorf("VCI mismatch: %d vs %d", out.VCI(), in.VCI())
	}
	if in.RemoteHost() != "alice" || out.RemoteHost() != "bob" {
		t.Errorf("remote hosts: %q, %q", in.RemoteHost(), out.RemoteHost())
	}

	msg := bytes.Repeat([]byte("atm!"), 1000)
	if err := out.SendFrame(msg); err != nil {
		t.Fatal(err)
	}
	got, err := in.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("frame payload mismatch")
	}
}

func TestVCDuplex(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a := n.Host("a")
	b := n.Host("b")
	go func() {
		vc, err := b.Accept()
		if err != nil {
			return
		}
		defer vc.Close()
		f, err := vc.RecvFrame()
		if err != nil {
			return
		}
		_ = vc.SendFrame(append([]byte("echo:"), f...))
	}()
	vc, err := a.Dial("b", QoS{})
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	if err := vc.SendFrame([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, err := vc.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hi" {
		t.Fatalf("got %q", got)
	}
}

func TestVCLossDropsFramesButRecovers(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a := n.Host("a")
	b := n.Host("b")
	go func() {
		vc, _ := b.Accept()
		// Send 50 single-cell frames over a lossy circuit.
		for i := 0; i < 50; i++ {
			_ = vc.SendFrame([]byte{byte(i)})
		}
		vc.Close()
	}()
	vc, err := a.Dial("b", QoS{CellLossRate: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	received := 0
	for {
		if _, err := vc.RecvFrame(); err != nil {
			break
		}
		received++
	}
	if received == 0 || received == 50 {
		t.Fatalf("with 30%% cell loss, received %d of 50 frames", received)
	}
}

func TestVCCorruptionCaughtByCRC(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a := n.Host("a")
	b := n.Host("b")
	recv := make(chan *VC, 1)
	go func() {
		vc, _ := b.Accept()
		recv <- vc
	}()
	vc, err := a.Dial("b", QoS{CellCorruptRate: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := <-recv
	defer in.Close()
	for i := 0; i < 10; i++ {
		if err := vc.SendFrame(bytes.Repeat([]byte{9}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	vc.Close()
	good := 0
	for {
		if _, err := in.RecvFrame(); err != nil {
			break
		}
		good++
	}
	if good != 0 {
		t.Fatalf("all cells corrupted but %d frames passed CRC", good)
	}
	if in.FramesDropped() == 0 {
		t.Fatal("FramesDropped = 0 on fully corrupted stream")
	}
}

func TestDialUnknownHost(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a := n.Host("a")
	if _, err := a.Dial("nobody", QoS{}); err == nil {
		t.Fatal("dial to unknown host succeeded")
	}
}

func TestNetworkClose(t *testing.T) {
	n := NewNetwork()
	h := n.Host("h")
	done := make(chan error, 1)
	go func() {
		_, err := h.Accept()
		done <- err
	}()
	time.Sleep(time.Millisecond)
	n.Close()
	if err := <-done; err != ErrNetworkClosed {
		t.Fatalf("Accept after Close: %v", err)
	}
	if _, err := h.Dial("h", QoS{}); err != ErrNetworkClosed {
		t.Fatalf("Dial after Close: %v", err)
	}
}

func TestQoSBandwidthShapesThroughput(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a := n.Host("a")
	b := n.Host("b")
	recv := make(chan *VC, 1)
	go func() {
		vc, _ := b.Accept()
		recv <- vc
	}()
	// 10,000 cells/s ≈ 530 KB/s on the wire. A 4 KB frame is 86 cells
	// ≈ 8.6 ms of transmission.
	vc, err := a.Dial("b", QoS{PeakCellRate: 10000})
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	in := <-recv
	defer in.Close()

	start := time.Now()
	if err := vc.SendFrame(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.RecvFrame(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Fatalf("4KB at 10k cells/s arrived in %v; QoS not enforced", took)
	}
}

// Property: segmentation always produces ceil((n+8)/48) cells and
// reassembly inverts it.
func TestQuickSegmentReassemble(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > MaxFrameSize {
			payload = payload[:MaxFrameSize]
		}
		cells, err := SegmentAAL5(1, 2, payload)
		if err != nil {
			return false
		}
		wantCells := (len(payload) + aal5TrailerSize + CellPayloadSize - 1) / CellPayloadSize
		if len(cells) != wantCells {
			return false
		}
		var r Reassembler
		for i, c := range cells {
			got, done, err := r.Push(c)
			if err != nil {
				return false
			}
			if done != (i == len(cells)-1) {
				return false
			}
			if done && !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any single flipped byte in any cell of a frame is detected.
func TestQuickSingleCorruptionDetected(t *testing.T) {
	f := func(payload []byte, cellIdx, byteIdx uint8) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		cells, err := SegmentAAL5(0, 7, payload)
		if err != nil {
			return false
		}
		ci := int(cellIdx) % len(cells)
		bi := int(byteIdx) % CellPayloadSize
		cells[ci].Payload[bi] ^= 0xA5

		var r Reassembler
		var finalErr error
		var done bool
		var got []byte
		for _, c := range cells {
			got, done, finalErr = r.Push(c)
		}
		if finalErr != nil {
			return true // detected
		}
		// A flip in trailing pad bytes changes the CRC input too, so
		// anything that completes must match exactly.
		return done && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
