package atm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ncs/internal/buf"
	"ncs/internal/netsim"
)

// Signaling and VC errors.
var (
	ErrUnknownHost   = errors.New("atm: unknown host")
	ErrVCClosed      = errors.New("atm: virtual circuit closed")
	ErrNetworkClosed = errors.New("atm: network closed")
	ErrRecvTimeout   = errors.New("atm: receive timeout")
)

// QoS is the traffic contract requested when a virtual circuit is
// established. NCS configures each connection's QoS independently — the
// architectural property the paper calls "compatible with the ATM
// technology where ... each connection can be configured to meet the QOS
// requirements of that connection".
type QoS struct {
	// PeakCellRate is the cell rate in cells/second. Zero means
	// unconstrained (the simulator transmits instantaneously).
	PeakCellRate int64
	// Delay is the one-way propagation delay of the path.
	Delay time.Duration
	// CellLossRate is the probability a cell is dropped in transit.
	CellLossRate float64
	// CellCorruptRate is the probability a cell byte is corrupted.
	CellCorruptRate float64
	// Seed makes loss/corruption/impairments reproducible; zero uses a
	// default.
	Seed int64
	// Impair applies programmable cell-level impairments (duplication,
	// reordering, burst loss, partition) to the circuit, on top of
	// whatever the routed path's links contribute. Reordered or
	// duplicated cells inside one AAL5 frame break its CRC, so at the
	// frame level these largely manifest as loss — exactly how a real
	// misbehaving ATM fabric presents to AAL5.
	Impair netsim.Impairments
	// Schedule drives the circuit's impairments through a deterministic
	// sequence of packet-count-keyed phases (see netsim.Phase). It is a
	// circuit-level contract; per-link Impair config from a Topology is
	// folded into each phase's steady state by Dial.
	Schedule []netsim.Phase
}

func (q QoS) linkParams() netsim.Params {
	var bw int64
	if q.PeakCellRate > 0 {
		bw = q.PeakCellRate * CellSize
	}
	return netsim.Params{
		Bandwidth:   bw,
		Delay:       q.Delay,
		LossRate:    q.CellLossRate,
		CorruptRate: q.CellCorruptRate,
		Seed:        q.Seed,
		Impair:      q.Impair,
		Schedule:    q.Schedule,
	}
}

// combineImpair merges two impairment configurations the way a path
// composes its links: independent duplication/reorder probabilities
// compound, jitters add (delays accumulate hop by hop), a partition
// anywhere partitions the path, and the burst-loss model with the
// larger long-run loss (SteadyLoss) dominates — merging the Markov
// chains exactly is not worth the state explosion for a simulator,
// but the dominance metric must see good-state loss too, since that
// is how i.i.d. loss is expressed on the impairment RNG stream.
func combineImpair(a, b netsim.Impairments) netsim.Impairments {
	out := netsim.Impairments{
		DupRate:       1 - (1-a.DupRate)*(1-b.DupRate),
		ReorderRate:   1 - (1-a.ReorderRate)*(1-b.ReorderRate),
		ReorderJitter: a.ReorderJitter + b.ReorderJitter,
		Partitioned:   a.Partitioned || b.Partitioned,
		Burst:         a.Burst,
	}
	if b.Burst.SteadyLoss() > a.Burst.SteadyLoss() {
		out.Burst = b.Burst
	}
	return out
}

// Network is a simulated ATM network: a set of named hosts that can
// signal virtual circuits to one another. Without a Topology the
// fabric is collapsed per circuit (every VC gets exactly its requested
// QoS); with one, circuits are routed across switches, admitted
// against link capacity, and shaped by the path they take.
type Network struct {
	mu     sync.Mutex
	hosts  map[string]*Host
	topo   *Topology
	nextVC uint16
	closed bool
}

// NewNetwork creates an empty ATM network with a collapsed fabric.
func NewNetwork() *Network {
	return &Network{hosts: make(map[string]*Host), nextVC: 32}
}

// NewNetworkWithTopology creates a network whose circuits are routed
// over the given switched fabric with connection admission control.
// Hosts must be attached to switches via Topology.AttachHost before
// they Dial.
func NewNetworkWithTopology(t *Topology) *Network {
	return &Network{hosts: make(map[string]*Host), topo: t, nextVC: 32}
}

// Host registers (or returns) the host with the given name.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[name]; ok {
		return h
	}
	h := &Host{
		name:     name,
		network:  n,
		incoming: make(chan *VC, 16),
	}
	n.hosts[name] = h
	return h
}

// Close tears down the network; subsequent Dial calls fail.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, h := range n.hosts {
		close(h.incoming)
	}
}

func (n *Network) allocVCI() uint16 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextVC++
	return n.nextVC
}

// Host is an endpoint attached to the ATM network.
type Host struct {
	name     string
	network  *Network
	incoming chan *VC
}

// Name returns the host's registered name.
func (h *Host) Name() string { return h.name }

// Dial establishes a virtual circuit to the named remote host with the
// requested QoS. It performs the signaling exchange — including, on a
// switched topology, routing and connection admission control — and
// returns the local end of the VC.
func (h *Host) Dial(remote string, qos QoS) (*VC, error) {
	h.network.mu.Lock()
	if h.network.closed {
		h.network.mu.Unlock()
		return nil, ErrNetworkClosed
	}
	peer, ok := h.network.hosts[remote]
	topo := h.network.topo
	h.network.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, remote)
	}

	effective := qos
	var path []edgeKey
	if topo != nil {
		var err error
		path, err = topo.route(h.name, remote)
		if err != nil {
			return nil, err
		}
		derived, err := topo.admit(path, qos.PeakCellRate)
		if err != nil {
			return nil, err
		}
		// The circuit experiences the path: summed propagation,
		// compounded loss, composed impairments, and the admitted (or
		// bottleneck) cell rate, on top of whatever the caller requested.
		effective.Delay = qos.Delay + derived.Delay
		effective.CellLossRate = 1 - (1-qos.CellLossRate)*(1-derived.CellLossRate)
		effective.PeakCellRate = derived.PeakCellRate
		if len(qos.Schedule) > 0 {
			// A scheduled circuit keeps its phase structure; the path's
			// per-link impairments fold into every phase's steady state.
			sched := make([]netsim.Phase, len(qos.Schedule))
			for i, ph := range qos.Schedule {
				sched[i] = netsim.Phase{Packets: ph.Packets, Imp: combineImpair(ph.Imp, derived.Impair)}
			}
			effective.Schedule = sched
		} else {
			effective.Impair = combineImpair(qos.Impair, derived.Impair)
		}
	}

	vci := h.network.allocVCI()
	p := effective.linkParams()
	local, remoteEnd := netsim.Pipe(p, p)
	caller := &VC{
		vci: vci, qos: effective, link: local,
		localHost: h.name, remoteHost: remote,
		topo: topo, path: path, reservedPCR: qos.PeakCellRate,
	}
	callee := &VC{vci: vci, qos: effective, link: remoteEnd, localHost: remote, remoteHost: h.name}

	// Signaling: offer the VC to the remote host's accept queue.
	defer func() {
		if r := recover(); r != nil {
			// The network closed concurrently; surface as an error path
			// is not possible from a deferred recover, so the caller VC
			// is simply closed.
			caller.Close()
		}
	}()
	peer.incoming <- callee
	return caller, nil
}

// Accept blocks until a remote host establishes a VC to this host, then
// returns the local end.
func (h *Host) Accept() (*VC, error) {
	vc, ok := <-h.incoming
	if !ok {
		return nil, ErrNetworkClosed
	}
	return vc, nil
}

// VC is one end of an established virtual circuit. It sends and receives
// AAL5 frames; segmentation into cells and reassembly happen internally,
// with CRC-verified integrity. Cells damaged or lost on the wire cause
// the whole frame to be dropped (standard AAL5 behaviour); RecvFrame
// transparently skips dropped frames and returns the next intact one,
// while CorruptionsSeen counts the drops so tests and benchmarks can
// observe the loss process.
type VC struct {
	vci        uint16
	qos        QoS
	link       *netsim.Endpoint
	localHost  string
	remoteHost string

	// Set on the dialing end of circuits routed over a Topology, so
	// Close releases the admitted capacity.
	topo        *Topology
	path        []edgeKey
	reservedPCR int64

	mu     sync.Mutex
	reass  Reassembler
	drops  int
	closed bool
}

// VCI returns the circuit identifier assigned at signaling time.
func (vc *VC) VCI() uint16 { return vc.vci }

// QoS returns the circuit's traffic contract.
func (vc *VC) QoS() QoS { return vc.qos }

// RemoteHost returns the peer host name.
func (vc *VC) RemoteHost() string { return vc.remoteHost }

// SendFrame transmits one AAL5 frame (at most MaxFrameSize bytes). The
// frame is staged in a pooled buffer and each cell is marshalled into
// a pooled buffer handed zero-copy to the link — the hot path never
// materialises Cell values.
func (vc *VC) SendFrame(payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	total := frameLength(len(payload))
	fb := buf.Get(total)
	defer fb.Release()
	copy(fb.B, payload)
	finishAAL5Frame(fb.B, len(payload))

	for off := 0; off < total; off += CellPayloadSize {
		var pti uint8
		if off+CellPayloadSize == total {
			pti = 1 // end of frame
		}
		cb := buf.GetCap(CellSize)
		cb.B = AppendCell(cb.B, 0, vc.vci, pti, false, fb.B[off:off+CellPayloadSize])
		if err := vc.link.SendBuf(cb); err != nil {
			return vc.mapErr(err)
		}
	}
	return nil
}

// RecvFrame returns the next intact AAL5 frame. Frames that fail CRC or
// lose cells are counted and skipped.
func (vc *VC) RecvFrame() ([]byte, error) {
	b, err := vc.recvFrame(0)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvFrameBuf is RecvFrame returning the reassembler's pooled staging
// buffer; the caller owns it and must Release.
func (vc *VC) RecvFrameBuf() (*buf.Buffer, error) { return vc.recvFrame(0) }

// RecvFrameTimeout is RecvFrame with an overall deadline; it returns
// ErrRecvTimeout if no intact frame completes within d.
func (vc *VC) RecvFrameTimeout(d time.Duration) ([]byte, error) {
	b, err := vc.recvFrame(d)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvFrameBufTimeout is RecvFrameBuf with an overall deadline.
func (vc *VC) RecvFrameBufTimeout(d time.Duration) (*buf.Buffer, error) {
	return vc.recvFrame(d)
}

func (vc *VC) recvFrame(timeout time.Duration) (*buf.Buffer, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		var raw *buf.Buffer
		var err error
		if timeout > 0 {
			remain := time.Until(deadline)
			if remain <= 0 {
				return nil, ErrRecvTimeout
			}
			raw, err = vc.link.RecvBufTimeout(remain)
			if errors.Is(err, netsim.ErrTimeout) {
				return nil, ErrRecvTimeout
			}
		} else {
			raw, err = vc.link.RecvBuf()
		}
		if err != nil {
			return nil, vc.mapErr(err)
		}
		cell, err := UnmarshalCell(raw.B)
		raw.Release()
		if err != nil {
			// Header corruption: the cell is undeliverable; the frame it
			// belonged to will fail CRC/length at end-of-frame, or we
			// lose the end bit and the length guard recovers. Count it
			// as a drop event now and also reset reassembly, because a
			// missing end-bit would otherwise merge two frames.
			vc.mu.Lock()
			vc.drops++
			vc.reass.Reset()
			vc.mu.Unlock()
			continue
		}
		vc.mu.Lock()
		if vc.closed {
			// Close already reset the reassembler; staging this cell
			// would re-pin a pooled buffer nothing will release.
			vc.mu.Unlock()
			return nil, ErrVCClosed
		}
		payload, done, err := vc.reass.PushFrame(cell)
		if err != nil {
			vc.drops++
			vc.mu.Unlock()
			continue
		}
		vc.mu.Unlock()
		if done {
			return payload, nil
		}
	}
}

// FramesDropped reports how many frames were discarded due to cell loss
// or corruption since the VC was established.
func (vc *VC) FramesDropped() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.drops
}

// SetImpairments replaces the cell-level impairments applied to the
// circuit's transmit direction mid-run, cancelling any remaining
// schedule. Each end of the VC impairs its own transmit side.
func (vc *VC) SetImpairments(imp netsim.Impairments) { vc.link.SetImpairments(imp) }

// Partition cuts the circuit's transmit direction (cells silently
// dropped) until Heal.
func (vc *VC) Partition() { vc.link.Partition() }

// Heal reopens a transmit direction cut by Partition.
func (vc *VC) Heal() { vc.link.Heal() }

// ImpairStats reports the cell-level impairment decisions made on the
// circuit's transmit direction.
func (vc *VC) ImpairStats() netsim.ImpairStats { return vc.link.ImpairStats() }

// Close releases the circuit, returning any admitted capacity to the
// fabric and dropping any partially reassembled frame (whose pooled
// staging buffer would otherwise never return to its pool).
func (vc *VC) Close() error {
	vc.mu.Lock()
	if vc.closed {
		vc.mu.Unlock()
		return nil
	}
	vc.closed = true
	vc.reass.Reset()
	vc.mu.Unlock()
	if vc.topo != nil {
		vc.topo.release(vc.path, vc.reservedPCR)
		vc.topo = nil
	}
	return vc.link.Close()
}

func (vc *VC) mapErr(err error) error {
	if errors.Is(err, netsim.ErrClosed) {
		return ErrVCClosed
	}
	return err
}
