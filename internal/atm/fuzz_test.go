package atm

import (
	"bytes"
	"testing"

	"ncs/internal/buf"
)

// Fuzz targets for the cell codec and AAL5 reassembly. The reassembler
// receives whatever survives a lossy, reordering wire, so arbitrary
// cell streams must never panic it, never hand back an oversized
// frame, and never leak the pooled staging buffer. Seed corpora live
// in testdata/fuzz; CI runs each target briefly.

func FuzzUnmarshalCell(f *testing.F) {
	var c Cell
	c.VPI, c.VCI, c.PTI = 1, 0x0203, 1
	copy(c.Payload[:], "cell payload")
	f.Add(c.Marshal(nil))
	f.Add(make([]byte, CellSize))               // all-zero cell (valid HEC)
	f.Add(make([]byte, CellSize-1))             // short
	f.Add(bytes.Repeat([]byte{0xff}, CellSize)) // HEC mismatch
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCell(data)
		if err != nil {
			return
		}
		re := c.Marshal(nil)
		c2, err := UnmarshalCell(re)
		if err != nil {
			t.Fatalf("re-encoded cell failed to decode: %v", err)
		}
		if c2 != c {
			t.Fatalf("round trip diverged: %+v vs %+v", c2, c)
		}
	})
}

// FuzzReassembler interprets the input as a cell stream — 49-byte
// units of one flag byte (bit 0: end of frame) plus one cell payload —
// and pushes it through a Reassembler, checking the structural
// invariants and the pooled-buffer accounting.
func FuzzReassembler(f *testing.F) {
	// One whole-frame cell with the end bit (CRC will fail — that is a
	// legitimate, common path), a frame spread over three cells, and a
	// headless tail.
	one := append([]byte{1}, make([]byte, CellPayloadSize)...)
	f.Add(one)
	multi := append([]byte{0}, bytes.Repeat([]byte{0xaa}, CellPayloadSize)...)
	multi = append(multi, append([]byte{0}, bytes.Repeat([]byte{0xbb}, CellPayloadSize)...)...)
	multi = append(multi, one...)
	f.Add(multi)
	f.Add(append([]byte{0}, bytes.Repeat([]byte{0xcc}, CellPayloadSize)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		baseline := buf.Outstanding()
		var r Reassembler
		const maxCells = 64
		for n := 0; len(data) >= 1+CellPayloadSize && n < maxCells; n++ {
			var c Cell
			c.PTI = data[0] & 1
			copy(c.Payload[:], data[1:1+CellPayloadSize])
			data = data[1+CellPayloadSize:]
			fb, done, err := r.PushFrame(c)
			if err != nil {
				if fb != nil {
					t.Fatal("PushFrame returned both a frame and an error")
				}
				continue
			}
			if !done {
				if r.Pending() > MaxFrameSize+CellPayloadSize+8 {
					t.Fatalf("reassembler buffered %d bytes past the frame ceiling", r.Pending())
				}
				continue
			}
			if fb.Len() > MaxFrameSize {
				t.Fatalf("reassembled frame of %d bytes exceeds MaxFrameSize", fb.Len())
			}
			fb.Release()
		}
		r.Reset()
		if now := buf.Outstanding(); now != baseline {
			t.Fatalf("reassembler leaked %d pooled buffer refs", now-baseline)
		}
	})
}

// FuzzAAL5RoundTrip checks the full segmentation/reassembly cycle:
// any payload within the AAL5 limit must survive cells → frame intact.
func FuzzAAL5RoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("hello, AAL5"))
	f.Add(bytes.Repeat([]byte{0x5a}, 4096))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxFrameSize {
			payload = payload[:MaxFrameSize]
		}
		cells, err := SegmentAAL5(0, 42, payload)
		if err != nil {
			t.Fatalf("SegmentAAL5: %v", err)
		}
		var r Reassembler
		for i, c := range cells {
			out, done, err := r.Push(c)
			if err != nil {
				t.Fatalf("cell %d: %v", i, err)
			}
			if done != (i == len(cells)-1) {
				t.Fatalf("frame completed at cell %d of %d", i+1, len(cells))
			}
			if done && !bytes.Equal(out, payload) {
				t.Fatalf("round trip corrupted: got %d bytes, want %d", len(out), len(payload))
			}
		}
		if r.Pending() != 0 {
			t.Fatalf("%d bytes left pending after a complete frame", r.Pending())
		}
	})
}
