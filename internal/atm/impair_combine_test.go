package atm

import (
	"math"
	"testing"
	"time"

	"ncs/internal/netsim"
)

func TestCombineImpair(t *testing.T) {
	a := netsim.Impairments{
		DupRate:       0.1,
		ReorderRate:   0.2,
		ReorderJitter: time.Millisecond,
	}
	b := netsim.Impairments{
		DupRate:       0.1,
		ReorderRate:   0.5,
		ReorderJitter: 2 * time.Millisecond,
		Partitioned:   true,
	}
	got := combineImpair(a, b)
	if want := 1 - 0.9*0.9; math.Abs(got.DupRate-want) > 1e-12 {
		t.Errorf("DupRate = %v, want %v (compounded)", got.DupRate, want)
	}
	if want := 1 - 0.8*0.5; math.Abs(got.ReorderRate-want) > 1e-12 {
		t.Errorf("ReorderRate = %v, want %v (compounded)", got.ReorderRate, want)
	}
	if got.ReorderJitter != 3*time.Millisecond {
		t.Errorf("ReorderJitter = %v, want summed 3ms", got.ReorderJitter)
	}
	if !got.Partitioned {
		t.Error("partition on one link must partition the path")
	}
}

// TestCombineImpairBurstDominance pins the regression where a burst
// model expressing i.i.d. loss through LossGood (the documented way
// to put plain loss on the impairment RNG stream) was discarded in
// favour of a zero model because dominance compared only LossBad.
func TestCombineImpairBurstDominance(t *testing.T) {
	iid := netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: 0.15}}

	// Composing with a clean link must keep the lossy model, from
	// either side.
	if got := combineImpair(netsim.Impairments{}, iid); got.Burst != iid.Burst {
		t.Errorf("clean+iid kept %+v, want the i.i.d. model", got.Burst)
	}
	if got := combineImpair(iid, netsim.Impairments{}); got.Burst != iid.Burst {
		t.Errorf("iid+clean kept %+v, want the i.i.d. model", got.Burst)
	}

	// A heavy good-state model beats a burst model that rarely bites:
	// the long-run loss decides, not the bad-state peak.
	rareBurst := netsim.Impairments{Burst: netsim.GilbertElliott{
		PGoodBad: 0.001, PBadGood: 0.9, LossBad: 0.5,
	}}
	heavy := netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: 0.4}}
	if got := combineImpair(rareBurst, heavy); got.Burst != heavy.Burst {
		t.Errorf("kept %+v (steady loss %.4f), want the heavier %+v (steady loss %.4f)",
			got.Burst, got.Burst.SteadyLoss(), heavy.Burst, heavy.Burst.SteadyLoss())
	}
}
