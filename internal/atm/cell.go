// Package atm simulates the ATM network substrate that NCS ran on
// (the NYNET testbed). It provides 53-byte cells, AAL5 segmentation and
// reassembly with CRC-32 integrity checking, virtual circuits with
// per-connection QoS, and a small signaling layer for VC establishment.
//
// The physical fabric is collapsed into one simulated link per virtual
// circuit whose bandwidth, delay, and cell-loss parameters derive from
// the VC's QoS contract. That is exactly what an endpoint of a switched
// ATM VC observes, and it is the level at which NCS interacts with ATM:
// per-connection QoS, AAL5 frames of at most 64 KB, and the need for
// software acknowledgment/retransmission above AAL5 (§3.2: "although the
// checksumming is done by the AAL5 layer ... acknowledgment and
// retransmission procedures are required").
package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ATM cell geometry.
const (
	// CellSize is the full ATM cell length in bytes.
	CellSize = 53
	// CellHeaderSize is the 5-byte ATM cell header.
	CellHeaderSize = 5
	// CellPayloadSize is the 48-byte cell payload.
	CellPayloadSize = CellSize - CellHeaderSize
)

// Errors returned by cell codec functions.
var (
	ErrBadCellSize = errors.New("atm: cell is not 53 bytes")
	ErrHeaderError = errors.New("atm: header integrity check failed")
)

// Cell is a single ATM cell. The header fields follow the UNI cell
// format: virtual path and channel identifiers, and the payload type
// indicator whose bit 0 marks the final cell of an AAL5 frame.
type Cell struct {
	VPI     uint8
	VCI     uint16
	PTI     uint8 // bit 0: AAL5 end-of-frame
	CLP     bool  // cell loss priority
	Payload [CellPayloadSize]byte
}

// EndOfFrame reports whether this cell terminates an AAL5 frame.
func (c *Cell) EndOfFrame() bool { return c.PTI&1 != 0 }

// Marshal encodes the cell into exactly CellSize bytes. The final header
// byte is the HEC, computed as a simple XOR checksum over the first four
// header bytes: a stand-in for the real CRC-8 HEC that still catches
// single-byte header corruption injected by the link simulator.
func (c *Cell) Marshal(dst []byte) []byte {
	return AppendCell(dst, c.VPI, c.VCI, c.PTI, c.CLP, c.Payload[:])
}

// AppendCell appends one marshalled cell to dst: the streaming form of
// Cell.Marshal, used by the pooled send path to build cells straight
// from a frame staging buffer without materialising Cell values.
// payload must be exactly CellPayloadSize bytes.
func AppendCell(dst []byte, vpi uint8, vci uint16, pti uint8, clp bool, payload []byte) []byte {
	var hdr [CellHeaderSize]byte
	hdr[0] = vpi
	binary.BigEndian.PutUint16(hdr[1:3], vci)
	hdr[3] = pti << 1
	if clp {
		hdr[3] |= 1
	}
	hdr[4] = hdr[0] ^ hdr[1] ^ hdr[2] ^ hdr[3] // HEC
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst
}

// UnmarshalCell decodes a 53-byte cell, verifying the HEC.
func UnmarshalCell(p []byte) (Cell, error) {
	if len(p) != CellSize {
		return Cell{}, fmt.Errorf("%w: got %d", ErrBadCellSize, len(p))
	}
	if p[0]^p[1]^p[2]^p[3] != p[4] {
		return Cell{}, ErrHeaderError
	}
	c := Cell{
		VPI: p[0],
		VCI: binary.BigEndian.Uint16(p[1:3]),
		PTI: p[3] >> 1,
		CLP: p[3]&1 != 0,
	}
	copy(c.Payload[:], p[CellHeaderSize:])
	return c, nil
}
