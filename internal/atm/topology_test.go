package atm

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// wanTopology builds: hostA ─ s1 ═══ s2 ─ hostB, plus an isolated s3.
func wanTopology(t *testing.T, linkRate int64) *Topology {
	t.Helper()
	topo := NewTopology()
	topo.AddSwitch("s1").AddSwitch("s2").AddSwitch("s3")
	if err := topo.Link("s1", "s2", LinkSpec{
		Delay:    2 * time.Millisecond,
		CellRate: linkRate,
	}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("hostA", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("hostB", "s2"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("island", "s3"); err != nil {
		t.Fatal(err)
	}
	return topo
}

func dialPair(t *testing.T, nw *Network, from, to string, qos QoS) (*VC, *VC) {
	t.Helper()
	acceptCh := make(chan *VC, 1)
	go func() {
		vc, err := nw.Host(to).Accept()
		if err == nil {
			acceptCh <- vc
		}
	}()
	out, err := nw.Host(from).Dial(to, qos)
	if err != nil {
		t.Fatal(err)
	}
	in := <-acceptCh
	t.Cleanup(func() { out.Close(); in.Close() })
	return out, in
}

func TestTopologyRoutedCircuitCarriesTraffic(t *testing.T) {
	topo := wanTopology(t, 100_000)
	nw := NewNetworkWithTopology(topo)
	defer nw.Close()
	nw.Host("hostA")
	nw.Host("hostB")

	out, in := dialPair(t, nw, "hostA", "hostB", QoS{PeakCellRate: 10_000})
	msg := bytes.Repeat([]byte("switched"), 100)
	if err := out.SendFrame(msg); err != nil {
		t.Fatal(err)
	}
	got, err := in.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted across switched path")
	}
	// The path's 2 ms propagation is part of the circuit.
	if out.QoS().Delay < 2*time.Millisecond {
		t.Fatalf("effective delay = %v, want >= 2ms from the path", out.QoS().Delay)
	}
}

func TestTopologyAdmissionControl(t *testing.T) {
	topo := wanTopology(t, 100_000)
	nw := NewNetworkWithTopology(topo)
	defer nw.Close()
	nw.Host("hostA")
	nw.Host("hostB")

	// Three 40k-cell circuits: the third must be refused (120k > 100k).
	_, _ = dialPair(t, nw, "hostA", "hostB", QoS{PeakCellRate: 40_000})
	_, _ = dialPair(t, nw, "hostA", "hostB", QoS{PeakCellRate: 40_000})
	if got := topo.Reserved("s1", "s2"); got != 80_000 {
		t.Fatalf("reserved = %d, want 80000", got)
	}
	_, err := nw.Host("hostA").Dial("hostB", QoS{PeakCellRate: 40_000})
	if !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("third circuit: err = %v, want ErrAdmissionDenied", err)
	}
}

func TestTopologyReleasesCapacityOnClose(t *testing.T) {
	topo := wanTopology(t, 50_000)
	nw := NewNetworkWithTopology(topo)
	defer nw.Close()
	nw.Host("hostA")
	nw.Host("hostB")

	out, in := dialPair(t, nw, "hostA", "hostB", QoS{PeakCellRate: 50_000})
	if _, err := nw.Host("hostA").Dial("hostB", QoS{PeakCellRate: 1}); !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("want admission denied while full, got %v", err)
	}
	out.Close()
	in.Close()
	if got := topo.Reserved("s1", "s2"); got != 0 {
		t.Fatalf("reserved after close = %d, want 0", got)
	}
	// Capacity is back: a new circuit is admitted.
	_, _ = dialPair(t, nw, "hostA", "hostB", QoS{PeakCellRate: 50_000})
}

func TestTopologyNoRoute(t *testing.T) {
	topo := wanTopology(t, 0)
	nw := NewNetworkWithTopology(topo)
	defer nw.Close()
	nw.Host("hostA")
	nw.Host("island")

	if _, err := nw.Host("hostA").Dial("island", QoS{}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestTopologySameSwitchNoHops(t *testing.T) {
	topo := NewTopology()
	topo.AddSwitch("s1")
	if err := topo.AttachHost("a", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("b", "s1"); err != nil {
		t.Fatal(err)
	}
	nw := NewNetworkWithTopology(topo)
	defer nw.Close()
	nw.Host("a")
	nw.Host("b")

	out, in := dialPair(t, nw, "a", "b", QoS{})
	if err := out.SendFrame([]byte("local")); err != nil {
		t.Fatal(err)
	}
	if got, err := in.RecvFrame(); err != nil || string(got) != "local" {
		t.Fatalf("got %q, %v", got, err)
	}
	if out.QoS().Delay != 0 {
		t.Fatalf("same-switch delay = %v", out.QoS().Delay)
	}
}

func TestTopologyMultiHopAggregation(t *testing.T) {
	topo := NewTopology()
	topo.AddSwitch("s1").AddSwitch("s2").AddSwitch("s3")
	if err := topo.Link("s1", "s2", LinkSpec{Delay: time.Millisecond, CellLossRate: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := topo.Link("s2", "s3", LinkSpec{Delay: 3 * time.Millisecond, CellLossRate: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("a", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AttachHost("b", "s3"); err != nil {
		t.Fatal(err)
	}
	nw := NewNetworkWithTopology(topo)
	defer nw.Close()
	nw.Host("a")
	nw.Host("b")

	out, _ := dialPair(t, nw, "a", "b", QoS{})
	q := out.QoS()
	if q.Delay != 4*time.Millisecond {
		t.Fatalf("delay = %v, want 4ms (summed hops)", q.Delay)
	}
	// Compounded loss: 1 - 0.9*0.9 = 0.19.
	if q.CellLossRate < 0.18 || q.CellLossRate > 0.20 {
		t.Fatalf("loss = %v, want ≈0.19", q.CellLossRate)
	}
}

func TestTopologyValidation(t *testing.T) {
	topo := NewTopology()
	topo.AddSwitch("s1")
	if err := topo.Link("s1", "ghost", LinkSpec{}); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("link to ghost: %v", err)
	}
	if err := topo.AttachHost("h", "ghost"); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("attach to ghost: %v", err)
	}
	if topo.Reserved("x", "y") != 0 {
		t.Fatal("Reserved on unknown link")
	}
}

func TestTopologyRequiresPCROnCapacityLinks(t *testing.T) {
	topo := wanTopology(t, 1000)
	nw := NewNetworkWithTopology(topo)
	defer nw.Close()
	nw.Host("hostA")
	nw.Host("hostB")
	// A circuit without a declared PCR cannot be admitted on a
	// capacity-managed link.
	if _, err := nw.Host("hostA").Dial("hostB", QoS{}); !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("err = %v, want ErrAdmissionDenied", err)
	}
}
