package atm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ncs/internal/netsim"
)

// Topology errors.
var (
	ErrNoRoute         = errors.New("atm: no route between hosts")
	ErrAdmissionDenied = errors.New("atm: connection admission denied (insufficient capacity)")
	ErrUnknownSwitch   = errors.New("atm: unknown switch")
)

// LinkSpec describes one physical link of the fabric.
type LinkSpec struct {
	// Delay is the link's one-way propagation delay.
	Delay time.Duration
	// CellRate is the link capacity in cells/second; zero means
	// unconstrained (no admission control on this link).
	CellRate int64
	// CellLossRate is the link's intrinsic loss probability.
	CellLossRate float64
	// Impair is the link's programmable impairment profile (burst
	// loss, duplication, reordering, partition). Circuits routed over
	// the link inherit it, composed with every other link of the path
	// and with the circuit's own QoS.Impair (see combineImpair).
	Impair netsim.Impairments
}

// Topology is a switched ATM fabric: named switches, links between
// them, and host attachment points. When a Network is built over a
// Topology, virtual circuits are routed hop by hop, their QoS contract
// is admitted against every link's remaining capacity (connection
// admission control), and the circuit's end-to-end behaviour — summed
// delay, bottleneck bandwidth, compounded loss — is derived from the
// actual path.
type Topology struct {
	mu       sync.Mutex
	switches map[string]bool
	adj      map[string][]string
	links    map[edgeKey]*linkState
	hosts    map[string]string // host name → attachment switch
}

type edgeKey struct{ a, b string }

func edge(a, b string) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a: a, b: b}
}

type linkState struct {
	spec     LinkSpec
	reserved int64 // cells/second currently admitted
}

// NewTopology creates an empty fabric description.
func NewTopology() *Topology {
	return &Topology{
		switches: make(map[string]bool),
		adj:      make(map[string][]string),
		links:    make(map[edgeKey]*linkState),
		hosts:    make(map[string]string),
	}
}

// AddSwitch registers a switch.
func (t *Topology) AddSwitch(name string) *Topology {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.switches[name] = true
	return t
}

// Link connects two switches with the given physical characteristics.
// Both switches must already exist.
func (t *Topology) Link(a, b string, spec LinkSpec) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.switches[a] {
		return fmt.Errorf("%w: %q", ErrUnknownSwitch, a)
	}
	if !t.switches[b] {
		return fmt.Errorf("%w: %q", ErrUnknownSwitch, b)
	}
	k := edge(a, b)
	if _, dup := t.links[k]; !dup {
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	t.links[k] = &linkState{spec: spec}
	return nil
}

// AttachHost binds a host name to a switch; the host-switch link is
// assumed ideal (attachment costs belong to the platform model).
func (t *Topology) AttachHost(host, sw string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.switches[sw] {
		return fmt.Errorf("%w: %q", ErrUnknownSwitch, sw)
	}
	t.hosts[host] = sw
	return nil
}

// route returns the switch path between two hosts (BFS hop-count).
func (t *Topology) route(fromHost, toHost string) ([]edgeKey, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	src, okS := t.hosts[fromHost]
	dst, okD := t.hosts[toHost]
	if !okS || !okD {
		return nil, fmt.Errorf("%w: %s→%s", ErrNoRoute, fromHost, toHost)
	}
	if src == dst {
		return nil, nil // same switch: no inter-switch hops
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 && prev[dst] == "" {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range t.adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			queue = append(queue, next)
		}
	}
	if _, ok := prev[dst]; !ok {
		return nil, fmt.Errorf("%w: %s→%s", ErrNoRoute, fromHost, toHost)
	}
	var path []edgeKey
	for cur := dst; cur != src; cur = prev[cur] {
		path = append(path, edge(prev[cur], cur))
	}
	// Reverse into src→dst order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// admit reserves pcr cells/second on every link of the path, rolling
// back on failure, and returns the end-to-end circuit characteristics.
func (t *Topology) admit(path []edgeKey, pcr int64) (QoS, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var agg QoS
	survive := 1.0
	var bottleneck int64
	for i, e := range path {
		l, ok := t.links[e]
		if !ok {
			t.rollbackLocked(path[:i], pcr)
			return QoS{}, fmt.Errorf("%w: missing link %v", ErrNoRoute, e)
		}
		if l.spec.CellRate > 0 {
			if pcr <= 0 {
				t.rollbackLocked(path[:i], pcr)
				return QoS{}, fmt.Errorf("%w: link %s-%s requires an explicit peak cell rate",
					ErrAdmissionDenied, e.a, e.b)
			}
			if l.reserved+pcr > l.spec.CellRate {
				t.rollbackLocked(path[:i], pcr)
				return QoS{}, fmt.Errorf("%w: link %s-%s has %d of %d cells/s reserved",
					ErrAdmissionDenied, e.a, e.b, l.reserved, l.spec.CellRate)
			}
			l.reserved += pcr
			if bottleneck == 0 || l.spec.CellRate < bottleneck {
				bottleneck = l.spec.CellRate
			}
		}
		agg.Delay += l.spec.Delay
		survive *= 1 - l.spec.CellLossRate
		agg.Impair = combineImpair(agg.Impair, l.spec.Impair)
	}
	agg.CellLossRate = 1 - survive
	agg.PeakCellRate = pcr
	if pcr == 0 {
		agg.PeakCellRate = bottleneck
	}
	return agg, nil
}

// release returns reserved capacity to the path's links.
func (t *Topology) release(path []edgeKey, pcr int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rollbackLocked(path, pcr)
}

func (t *Topology) rollbackLocked(path []edgeKey, pcr int64) {
	for _, e := range path {
		if l, ok := t.links[e]; ok && l.spec.CellRate > 0 {
			l.reserved -= pcr
			if l.reserved < 0 {
				l.reserved = 0
			}
		}
	}
}

// Reserved reports the cells/second currently admitted on a link, for
// tests and capacity dashboards.
func (t *Topology) Reserved(a, b string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.links[edge(a, b)]; ok {
		return l.reserved
	}
	return 0
}
