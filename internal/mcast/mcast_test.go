package mcast

import (
	"testing"
	"testing/quick"
)

func TestAlgorithmString(t *testing.T) {
	if Repetitive.String() != "repetitive" || SpanningTree.String() != "spanning-tree" {
		t.Fatal("String misbehaving")
	}
	if Algorithm(5).String() != "Algorithm(5)" {
		t.Fatal("unknown algorithm String")
	}
}

// simulate plays out a schedule and returns when each rank received the
// message (round index), or -1 if never.
func simulate(t *testing.T, steps []Step, n, root int) []int {
	t.Helper()
	recvRound := make([]int, n)
	for i := range recvRound {
		recvRound[i] = -1
	}
	recvRound[root] = 0
	for _, s := range steps {
		if recvRound[s.From] == -1 {
			t.Fatalf("step %+v: sender has not received the message", s)
		}
		if recvRound[s.From] > s.Round {
			t.Fatalf("step %+v: sender received only in round %d", s, recvRound[s.From])
		}
		if recvRound[s.To] != -1 {
			t.Fatalf("step %+v: receiver already had the message", s)
		}
		recvRound[s.To] = s.Round + 1
	}
	return recvRound
}

func TestSchedulesDeliverToAll(t *testing.T) {
	for _, alg := range []Algorithm{Repetitive, SpanningTree} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
			for _, root := range []int{0, n / 2, n - 1} {
				if root < 0 {
					root = 0
				}
				steps := Schedule(alg, n, root)
				got := simulate(t, steps, n, root)
				for rank, r := range got {
					if r == -1 {
						t.Fatalf("%v n=%d root=%d: rank %d never received", alg, n, root, rank)
					}
				}
				if len(steps) != n-1 && n > 1 {
					t.Fatalf("%v n=%d: %d steps, want %d (each member receives once)",
						alg, n, len(steps), n-1)
				}
			}
		}
	}
}

func TestRounds(t *testing.T) {
	tests := []struct {
		alg  Algorithm
		n    int
		want int
	}{
		{Repetitive, 1, 0},
		{Repetitive, 2, 1},
		{Repetitive, 8, 7},
		{SpanningTree, 1, 0},
		{SpanningTree, 2, 1},
		{SpanningTree, 8, 3},
		{SpanningTree, 9, 4},
		{SpanningTree, 16, 4},
		{SpanningTree, 17, 5},
	}
	for _, tc := range tests {
		if got := Rounds(tc.alg, tc.n); got != tc.want {
			t.Errorf("Rounds(%v, %d) = %d, want %d", tc.alg, tc.n, got, tc.want)
		}
	}
}

func TestTreeLatencyBeatsRepetitive(t *testing.T) {
	for _, n := range []int{8, 32, 100} {
		tree := Rounds(SpanningTree, n)
		rep := Rounds(Repetitive, n)
		if tree >= rep {
			t.Errorf("n=%d: tree rounds %d >= repetitive rounds %d", n, tree, rep)
		}
	}
}

func TestScheduleRoundsMatchRounds(t *testing.T) {
	for _, alg := range []Algorithm{Repetitive, SpanningTree} {
		for _, n := range []int{2, 5, 8, 13} {
			steps := Schedule(alg, n, 0)
			maxRound := 0
			for _, s := range steps {
				if s.Round > maxRound {
					maxRound = s.Round
				}
			}
			if maxRound+1 != Rounds(alg, n) {
				t.Errorf("%v n=%d: schedule has %d rounds, Rounds says %d",
					alg, n, maxRound+1, Rounds(alg, n))
			}
		}
	}
}

func TestParentChildrenConsistency(t *testing.T) {
	for _, alg := range []Algorithm{Repetitive, SpanningTree} {
		for _, n := range []int{1, 2, 5, 8, 11, 16} {
			for root := 0; root < n; root++ {
				for self := 0; self < n; self++ {
					p := Parent(alg, n, root, self)
					if self == root {
						if p != -1 {
							t.Fatalf("%v: root has parent %d", alg, p)
						}
						continue
					}
					if p < 0 || p >= n {
						t.Fatalf("%v n=%d root=%d self=%d: parent %d out of range",
							alg, n, root, self, p)
					}
					// self must appear in its parent's children.
					found := false
					for _, c := range Children(alg, n, root, p) {
						if c == self {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%v n=%d root=%d: %d not in children of parent %d",
							alg, n, root, self, p)
					}
				}
			}
		}
	}
}

func TestChildrenMatchSchedule(t *testing.T) {
	for _, alg := range []Algorithm{Repetitive, SpanningTree} {
		for _, n := range []int{2, 6, 8, 15} {
			for _, root := range []int{0, 1, n - 1} {
				fromSchedule := make(map[int][]int)
				for _, s := range Schedule(alg, n, root) {
					fromSchedule[s.From] = append(fromSchedule[s.From], s.To)
				}
				for self := 0; self < n; self++ {
					kids := Children(alg, n, root, self)
					want := fromSchedule[self]
					if len(kids) != len(want) {
						t.Fatalf("%v n=%d root=%d self=%d: Children=%v, schedule says %v",
							alg, n, root, self, kids, want)
					}
					for i := range kids {
						if kids[i] != want[i] {
							t.Fatalf("%v n=%d root=%d self=%d: Children=%v, schedule says %v",
								alg, n, root, self, kids, want)
						}
					}
				}
			}
		}
	}
}

// Property: for any n and root, forwarding along Children delivers to
// every rank exactly once.
func TestQuickTreeForwardingDelivers(t *testing.T) {
	f := func(nRaw, rootRaw uint8) bool {
		n := int(nRaw%64) + 1
		root := int(rootRaw) % n
		seen := make([]bool, n)
		var walk func(rank int)
		walk = func(rank int) {
			if seen[rank] {
				panic("double delivery")
			}
			seen[rank] = true
			for _, c := range Children(SpanningTree, n, root, rank) {
				walk(c)
			}
		}
		walk(root)
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubtreeCoversAllRanksOnce(t *testing.T) {
	for _, alg := range []Algorithm{Repetitive, SpanningTree} {
		for _, n := range []int{1, 2, 5, 8, 13} {
			for root := 0; root < n; root++ {
				seen := make(map[int]bool)
				for _, r := range Subtree(alg, n, root, root) {
					if seen[r] {
						t.Fatalf("%v n=%d root=%d: rank %d twice", alg, n, root, r)
					}
					seen[r] = true
				}
				if len(seen) != n {
					t.Fatalf("%v n=%d root=%d: subtree covers %d ranks", alg, n, root, len(seen))
				}
			}
		}
	}
}

func TestSubtreeDisjointUnionOfChildren(t *testing.T) {
	// A node's subtree must be the node plus the disjoint union of its
	// children's subtrees — the invariant bundle-forwarding relies on.
	for _, n := range []int{2, 7, 16} {
		for root := 0; root < n; root++ {
			for node := 0; node < n; node++ {
				count := 1
				for _, c := range Children(SpanningTree, n, root, node) {
					count += len(Subtree(SpanningTree, n, root, c))
				}
				if got := len(Subtree(SpanningTree, n, root, node)); got != count {
					t.Fatalf("n=%d root=%d node=%d: subtree %d ranks, children sum %d",
						n, root, node, got, count)
				}
			}
		}
	}
}

func TestExchangesPermutation(t *testing.T) {
	// In every round the send targets across all ranks form a
	// permutation, and To/From agree pairwise: if A sends to B in round
	// r, then B receives from A in round r.
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		all := make([][]Exchange, n)
		for self := 0; self < n; self++ {
			all[self] = Exchanges(n, self)
			if n > 1 && len(all[self]) != n-1 {
				t.Fatalf("n=%d self=%d: %d rounds, want %d", n, self, len(all[self]), n-1)
			}
		}
		for r := 0; r < n-1; r++ {
			seenTo := make(map[int]bool)
			for self := 0; self < n; self++ {
				ex := all[self][r]
				if seenTo[ex.To] {
					t.Fatalf("n=%d round %d: two ranks send to %d", n, r, ex.To)
				}
				seenTo[ex.To] = true
				if ex.To == self || ex.From == self {
					t.Fatalf("n=%d round %d self=%d: self-exchange %+v", n, r, self, ex)
				}
				if all[ex.To][r].From != self {
					t.Fatalf("n=%d round %d: %d sends to %d but %d receives from %d",
						n, r, self, ex.To, ex.To, all[ex.To][r].From)
				}
			}
		}
	}
}

func TestCombineTreeConsistency(t *testing.T) {
	for _, alg := range []Algorithm{Repetitive, SpanningTree} {
		for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 33} {
			// Every non-zero rank has a parent, and appears among its
			// parent's children exactly once.
			for self := 1; self < n; self++ {
				p := CombineParent(alg, n, self)
				if p < 0 || p >= self {
					t.Fatalf("%v n=%d self=%d: combine parent %d (want 0 ≤ parent < self)",
						alg, n, self, p)
				}
				found := 0
				for _, c := range CombineChildren(alg, n, p) {
					if c == self {
						found++
					}
				}
				if found != 1 {
					t.Fatalf("%v n=%d: %d appears %d times in parent %d's children",
						alg, n, self, found, p)
				}
			}
			if p := CombineParent(alg, n, 0); p != -1 {
				t.Fatalf("%v n=%d: rank 0 has combine parent %d", alg, n, p)
			}
		}
	}
}

// TestCombineTreeRankOrder simulates a concatenation reduce over the
// combining tree and asserts the strict rank order MPI requires of
// non-commutative operations.
func TestCombineTreeRankOrder(t *testing.T) {
	for _, alg := range []Algorithm{Repetitive, SpanningTree} {
		for _, n := range []int{1, 2, 3, 5, 6, 8, 13, 16, 33} {
			var combine func(self int) []int
			combine = func(self int) []int {
				acc := []int{self}
				for _, c := range CombineChildren(alg, n, self) {
					acc = append(acc, combine(c)...)
				}
				return acc
			}
			got := combine(0)
			if len(got) != n {
				t.Fatalf("%v n=%d: combined %d ranks", alg, n, len(got))
			}
			for i, r := range got {
				if r != i {
					t.Fatalf("%v n=%d: combine order %v violates rank order at %d", alg, n, got, i)
				}
			}
		}
	}
}

func TestCombineTreeDepthLogarithmic(t *testing.T) {
	depth := func(n, self int) int {
		d := 0
		for self != 0 {
			self = CombineParent(SpanningTree, n, self)
			d++
		}
		return d
	}
	for _, n := range []int{2, 8, 9, 16, 100, 1000} {
		want := Rounds(SpanningTree, n)
		for self := 0; self < n; self++ {
			if d := depth(n, self); d > want {
				t.Fatalf("n=%d self=%d: combine depth %d > ⌈log₂n⌉ = %d", n, self, d, want)
			}
		}
	}
}
