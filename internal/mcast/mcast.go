// Package mcast implements the multicast dissemination algorithms NCS
// offers per connection (§2, "Dynamic Support for Multiple Communication
// Algorithms"): repetitive send/receive, where the root transmits to
// every member directly, and a binomial spanning tree, where members
// forward to children so dissemination completes in ⌈log₂ n⌉ rounds.
//
// The algorithms are pure: they compute who sends to whom, and the NCS
// Multicast Thread (or the group layer) performs the actual transfers.
// Ranks are logical member indices 0..n-1; an arbitrary root is handled
// by relative-rank translation, as in classic MPI broadcast trees.
package mcast

import "fmt"

// Algorithm selects a dissemination strategy.
type Algorithm int

// The multicast strategies named in the paper.
const (
	// Repetitive sends from the root to each member in sequence.
	Repetitive Algorithm = iota + 1
	// SpanningTree uses a binomial tree rooted at the root.
	SpanningTree
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Repetitive:
		return "repetitive"
	case SpanningTree:
		return "spanning-tree"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Step is one point-to-point transfer in a multicast schedule.
type Step struct {
	Round int // transfers in the same round may proceed in parallel
	From  int // sender rank
	To    int // receiver rank
}

// Schedule returns the ordered transfer list that delivers a message
// from root to all n members.
func Schedule(alg Algorithm, n, root int) []Step {
	if n <= 1 {
		return nil
	}
	switch alg {
	case SpanningTree:
		return treeSchedule(n, root)
	default:
		return repetitiveSchedule(n, root)
	}
}

// Rounds reports the number of sequential rounds the schedule needs —
// the latency measure that separates the two algorithms.
func Rounds(alg Algorithm, n int) int {
	if n <= 1 {
		return 0
	}
	if alg == SpanningTree {
		r := 0
		for span := 1; span < n; span <<= 1 {
			r++
		}
		return r
	}
	return n - 1
}

func repetitiveSchedule(n, root int) []Step {
	steps := make([]Step, 0, n-1)
	round := 0
	for i := 1; i < n; i++ {
		to := (root + i) % n
		steps = append(steps, Step{Round: round, From: root, To: to})
		round++ // the root sends serially: one transfer per round
	}
	return steps
}

func treeSchedule(n, root int) []Step {
	var steps []Step
	round := 0
	for span := 1; span < n; span <<= 1 {
		for v := 0; v < span && v+span < n; v++ {
			steps = append(steps, Step{
				Round: round,
				From:  fromVirtual(v, root, n),
				To:    fromVirtual(v+span, root, n),
			})
		}
		round++
	}
	return steps
}

// Parent returns the rank that delivers the message to self, or -1 for
// the root.
func Parent(alg Algorithm, n, root, self int) int {
	if self == root || n <= 1 {
		return -1
	}
	if alg == Repetitive {
		return root
	}
	v := toVirtual(self, root, n)
	return fromVirtual(v&^highestBit(v), root, n)
}

// Children returns the ranks self must forward the message to, in the
// round order they should be served.
func Children(alg Algorithm, n, root, self int) []int {
	if n <= 1 {
		return nil
	}
	if alg == Repetitive {
		if self != root {
			return nil
		}
		out := make([]int, 0, n-1)
		for i := 1; i < n; i++ {
			out = append(out, (root+i)%n)
		}
		return out
	}
	v := toVirtual(self, root, n)
	var out []int
	start := 1
	if v > 0 {
		start = highestBit(v) << 1
	}
	for span := start; v+span < n; span <<= 1 {
		out = append(out, fromVirtual(v+span, root, n))
	}
	return out
}

// Subtree lists the ranks in the dissemination subtree rooted at node
// (inclusive), in the depth-first order a bundle-forwarding collective
// (scatter, gather) visits them. For the repetitive algorithm every
// non-root subtree is the node itself; the root's subtree is the whole
// group.
func Subtree(alg Algorithm, n, root, node int) []int {
	out := []int{node}
	for _, c := range Children(alg, n, root, node) {
		out = append(out, Subtree(alg, n, root, c)...)
	}
	return out
}

// CombineChildren returns the ranks whose partials self combines, in
// ascending order, in the rank-ordered combining tree rooted at rank 0
// — the reduction dual of the dissemination tree. Unlike the broadcast
// tree's subtrees, every combining subtree covers a contiguous rank
// interval: child self+2ʲ covers [self+2ʲ, self+2ʲ⁺¹)∩[0,n). A node
// that folds its own value first and then its children's partials in
// this order therefore combines the strict rank order
// self, self+1, …, which is what MPI requires of non-commutative
// reductions. Depth is ⌈log₂ n⌉, as for the dissemination tree.
func CombineChildren(alg Algorithm, n, self int) []int {
	if n <= 1 {
		return nil
	}
	if alg == Repetitive {
		if self != 0 {
			return nil
		}
		out := make([]int, 0, n-1)
		for i := 1; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
	var out []int
	for span := 1; self+span < n; span <<= 1 {
		if self != 0 && span >= lowestBit(self) {
			break
		}
		out = append(out, self+span)
	}
	return out
}

// CombineParent returns the rank self forwards its combined partial to
// in the combining tree, or -1 for rank 0 (the tree root).
func CombineParent(alg Algorithm, n, self int) int {
	if self == 0 || n <= 1 {
		return -1
	}
	if alg == Repetitive {
		return 0
	}
	return self &^ lowestBit(self)
}

// Exchange is one round of a pairwise all-to-all schedule: self sends
// its part to To while receiving From's part.
type Exchange struct {
	To   int
	From int
}

// Exchanges returns self's n-1 pairwise rounds of the classic linear
// all-to-all exchange: in round r every rank sends to (self+r) mod n
// and receives from (self-r) mod n, so each round forms a perfect
// permutation and no two ranks ever contend for the same link.
func Exchanges(n, self int) []Exchange {
	if n <= 1 {
		return nil
	}
	out := make([]Exchange, 0, n-1)
	for r := 1; r < n; r++ {
		out = append(out, Exchange{To: (self + r) % n, From: (self - r + n) % n})
	}
	return out
}

func toVirtual(rank, root, n int) int { return (rank - root + n) % n }
func fromVirtual(v, root, n int) int  { return (v + root) % n }

func lowestBit(v int) int { return v & -v }

func highestBit(v int) int {
	h := 1
	for h<<1 <= v {
		h <<= 1
	}
	return h
}
