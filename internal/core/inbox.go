package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInboxClosed is returned by Inbox receives after Close once the
// queue has drained.
var ErrInboxClosed = errors.New("ncs: inbox closed")

// InboxMessage is one delivery through an Inbox: the message plus the
// connection it arrived on (the reply path for request/response
// servers).
type InboxMessage struct {
	Conn *Connection
	Msg  Message
}

// Inbox is a shared delivery queue: any number of connections bind to
// it (Connection.BindInbox) and their completed messages merge into
// one stream. It is the accept-side counterpart of the sharded
// runtime: a fixed pool of workers looping on Inbox.Recv can serve
// thousands of connections, where one Recv goroutine per connection
// would undo everything the shards saved. Threaded connections may
// bind too — their Receive Threads deliver into the inbox directly.
//
// On sharded connections a full inbox never blocks a shard: the
// connection's messages park on its stall list, its data path pauses,
// and the next Inbox.Recv wakes it — per-connection backpressure with
// collective delivery.
type Inbox struct {
	ch   chan InboxMessage
	done chan struct{}

	closeOnce sync.Once

	// waiterN mirrors len(waiters) so the per-message wake check on
	// the Recv hot path stays lock-free when nothing is stalled (the
	// overwhelmingly common case).
	waiterN atomic.Int32

	mu      sync.Mutex
	waiters []*Connection // sharded conns stalled on a full inbox
}

// NewInbox creates an inbox holding up to depth undelivered messages
// (default 1024 when depth <= 0). The caller owns it and should Close
// it when the consumers stop.
func NewInbox(depth int) *Inbox {
	if depth <= 0 {
		depth = 1024
	}
	return &Inbox{
		ch:   make(chan InboxMessage, depth),
		done: make(chan struct{}),
	}
}

// Recv blocks for the next delivery from any bound connection. After
// Close it drains the remaining queue, then returns ErrInboxClosed.
func (ib *Inbox) Recv() (InboxMessage, error) {
	select {
	case m := <-ib.ch:
		ib.wakeWaiters()
		return m, nil
	case <-ib.done:
		select {
		case m := <-ib.ch:
			ib.wakeWaiters()
			return m, nil
		default:
			return InboxMessage{}, ErrInboxClosed
		}
	}
}

// RecvTimeout is Recv with a deadline.
func (ib *Inbox) RecvTimeout(d time.Duration) (InboxMessage, error) {
	select {
	case m := <-ib.ch:
		ib.wakeWaiters()
		return m, nil
	case <-ib.done:
		select {
		case m := <-ib.ch:
			ib.wakeWaiters()
			return m, nil
		default:
			return InboxMessage{}, ErrInboxClosed
		}
	case <-time.After(d):
		return InboxMessage{}, ErrRecvTimeout
	}
}

// Close stops the inbox: pending Recv calls drain what is queued and
// then observe ErrInboxClosed. Stalled connections are woken so their
// shards can drop parked deliveries at connection close.
func (ib *Inbox) Close() {
	ib.closeOnce.Do(func() {
		close(ib.done)
		ib.wakeWaiters()
	})
}

// Done returns a channel closed when the inbox is closed.
func (ib *Inbox) Done() <-chan struct{} { return ib.done }

// offer is the sharded runtime's non-blocking delivery. On failure the
// connection registers as a waiter (once) so the next Recv re-queues
// it on its shard; a recheck after registration closes the race with a
// concurrently draining consumer.
func (ib *Inbox) offer(c *Connection, m Message) bool {
	im := InboxMessage{Conn: c, Msg: m}
	select {
	case ib.ch <- im:
		return true
	default:
	}
	sc := c.sh
	if !sc.inboxWaiting.Swap(true) {
		ib.mu.Lock()
		ib.waiters = append(ib.waiters, c)
		ib.waiterN.Store(int32(len(ib.waiters)))
		ib.mu.Unlock()
	}
	select {
	case ib.ch <- im:
		// Delivered after all; the pending wake just re-services the
		// connection, which finds nothing stalled.
		return true
	default:
		return false
	}
}

// put is the threaded runtime's blocking delivery (the Receive Thread
// can afford to block — that is its backpressure). It reports false
// when the connection or inbox closed first.
func (ib *Inbox) put(c *Connection, m Message) bool {
	select {
	case ib.ch <- InboxMessage{Conn: c, Msg: m}:
		return true
	case <-c.closedCh:
		return false
	case <-ib.done:
		return false
	}
}

// wakeWaiters re-queues every connection that stalled on a full inbox.
// The lock-free empty check is safe against a concurrent registration:
// offer re-attempts its delivery after registering, so a waiter this
// wake misses either delivered after all or is woken by the next Recv.
func (ib *Inbox) wakeWaiters() {
	if ib.waiterN.Load() == 0 {
		return
	}
	ib.mu.Lock()
	if len(ib.waiters) == 0 {
		ib.mu.Unlock()
		return
	}
	ws := ib.waiters
	ib.waiters = nil
	ib.waiterN.Store(0)
	ib.mu.Unlock()
	for _, c := range ws {
		c.sh.inboxWaiting.Store(false)
		c.sh.shard.requeue(c)
	}
}
