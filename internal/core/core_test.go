package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncs/internal/atm"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/transport"
)

// newPairT builds a connected two-system fabric with one connection.
func newPairT(t *testing.T, opts Options) (client, server *Connection, cleanup func()) {
	t.Helper()
	nw := NewNetwork()
	a, err := nw.NewSystem("client")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.NewSystem("server")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := a.Connect("server", opts)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := b.AcceptTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return conn, peer, func() { nw.Close() }
}

func TestSendRecvAllInterfaces(t *testing.T) {
	for _, kind := range []transport.Kind{transport.SCI, transport.ACI, transport.HPI} {
		t.Run(kind.String(), func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, Options{Interface: kind})
			defer cleanup()

			for _, size := range []int{0, 1, 100, 4096, 5000, 70000} {
				msg := bytes.Repeat([]byte{byte(size % 251)}, size)
				if err := conn.Send(msg); err != nil {
					t.Fatalf("send %d: %v", size, err)
				}
				got, err := peer.Recv()
				if err != nil {
					t.Fatalf("recv %d: %v", size, err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("size %d: message mismatch (got %d bytes)", size, len(got))
				}
			}
		})
	}
}

// TestUnreliableSendTooLarge: an unreliable message spanning more
// segments than the receiver's dense reassembly tracks is refused at
// Send rather than transmitted and silently never delivered.
func TestUnreliableSendTooLarge(t *testing.T) {
	// Small SDUs keep the oversized message affordable: 65537 segments
	// of 64 bytes. One segment fewer must still be accepted by the
	// size check (delivery itself is exercised elsewhere).
	conn, _, cleanup := newPairT(t, Options{Interface: transport.HPI, SDUSize: 64})
	defer cleanup()
	tooBig := make([]byte, (errctl.MaxUnreliableSegments+1)*64)
	if err := conn.Send(tooBig); !errors.Is(err, ErrSendTooLarge) {
		t.Fatalf("oversized unreliable send: err = %v, want ErrSendTooLarge", err)
	}
	if err := conn.checkSendSize(tooBig[:errctl.MaxUnreliableSegments*64]); err != nil {
		t.Fatalf("max-sized unreliable send refused: %v", err)
	}
}

func TestDuplexExchange(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{Interface: transport.HPI})
	defer cleanup()

	done := make(chan error, 1)
	go func() {
		m, err := peer.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- peer.Send(append([]byte("echo:"), m...))
	}()
	if err := conn.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hello" {
		t.Fatalf("got %q", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAllAlgorithmCombinations(t *testing.T) {
	flows := []flowctl.Algorithm{flowctl.None, flowctl.Credit, flowctl.Window, flowctl.Rate}
	errs := []errctl.Algorithm{errctl.None, errctl.SelectiveRepeat, errctl.GoBackN}
	msg := bytes.Repeat([]byte("combo"), 2000) // 10 KB, multiple SDUs

	for _, fc := range flows {
		for _, ec := range errs {
			name := fmt.Sprintf("%v_%v", fc, ec)
			t.Run(name, func(t *testing.T) {
				conn, peer, cleanup := newPairT(t, Options{
					Interface:    transport.HPI,
					FlowControl:  fc,
					ErrorControl: ec,
					SDUSize:      1024,
					FlowConfig:   flowctl.Config{RatePerSec: 1e6},
				})
				defer cleanup()

				errCh := make(chan error, 1)
				go func() { errCh <- conn.Send(msg) }()
				got, err := peer.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatal("message mismatch")
				}
				if err := <-errCh; err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestReliableDeliveryOverLossyATM(t *testing.T) {
	for _, ec := range []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN} {
		t.Run(ec.String(), func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, Options{
				Interface:    transport.ACI,
				ErrorControl: ec,
				FlowControl:  flowctl.Credit,
				SDUSize:      512,
				AckTimeout:   50 * time.Millisecond,
				QoS:          atm.QoS{CellLossRate: 0.05, Seed: 21},
			})
			defer cleanup()

			msg := make([]byte, 20000)
			for i := range msg {
				msg[i] = byte(i * 13)
			}
			errCh := make(chan error, 1)
			go func() { errCh <- conn.Send(msg) }()
			got, err := peer.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatal("message corrupted across lossy ATM")
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnreliableStreamToleratesLoss(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.ACI,
		ErrorControl: errctl.None,
		FlowControl:  flowctl.None,
		SDUSize:      256,
		QoS:          atm.QoS{CellLossRate: 0.10, Seed: 17},
	})
	defer cleanup()

	// Stream 30 "video frames"; some SDUs will vanish. Completion relies
	// on end SDUs surviving, so retry frames until enough arrive.
	const frames = 30
	received := 0
	var lostTotal int
	for i := 0; i < frames; i++ {
		frame := bytes.Repeat([]byte{byte(i)}, 2048)
		if err := conn.Send(frame); err != nil {
			t.Fatal(err)
		}
		m, err := peer.RecvTimeout(200 * time.Millisecond)
		if err != nil {
			continue // frame's end SDU lost: the stream skips it
		}
		_ = m
		received++
		// Loss metadata is on RecvMessage; use it for a few frames.
	}
	if received == 0 {
		t.Fatal("no frames survived 10% cell loss")
	}
	_ = lostTotal
}

func TestFastPathSendRecv(t *testing.T) {
	for _, kind := range []transport.Kind{transport.SCI, transport.HPI} {
		t.Run(kind.String(), func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, Options{
				Interface: kind,
				FastPath:  true,
			})
			defer cleanup()

			for _, size := range []int{1, 4096, 50000} {
				msg := bytes.Repeat([]byte{0xcd}, size)
				errCh := make(chan error, 1)
				go func() { errCh <- conn.Send(msg) }()
				got, err := peer.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("size %d mismatch", size)
				}
				if err := <-errCh; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestFastPathReliableOverLossyATM(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.ACI,
		FastPath:     true,
		ErrorControl: errctl.SelectiveRepeat,
		FlowControl:  flowctl.None,
		SDUSize:      512,
		AckTimeout:   50 * time.Millisecond,
		QoS:          atm.QoS{CellLossRate: 0.05, Seed: 5},
	})
	defer cleanup()

	msg := make([]byte, 8000)
	for i := range msg {
		msg[i] = byte(i)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- conn.Send(msg) }()
	got, err := peer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("fast path failed to recover losses")
	}
}

func TestFastPathCreditFlow(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.HPI,
		FastPath:     true,
		FlowControl:  flowctl.Credit,
		ErrorControl: errctl.SelectiveRepeat,
		SDUSize:      256,
		FlowConfig:   flowctl.Config{InitialCredits: 2, MaxCredits: 8},
	})
	defer cleanup()

	msg := bytes.Repeat([]byte{9}, 5000) // 20 SDUs >> 2 initial credits
	errCh := make(chan error, 1)
	go func() { errCh <- conn.Send(msg) }()
	got, err := peer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("credit-gated fast path corrupted message")
	}
}

func TestConcurrentSendersOneConnection(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface: transport.HPI,
		SDUSize:   512,
	})
	defer cleanup()

	const senders = 8
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := bytes.Repeat([]byte{byte(i + 1)}, 3000)
			if err := conn.Send(msg); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	seen := make(map[byte]bool)
	for i := 0; i < senders; i++ {
		m, err := peer.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 3000 {
			t.Fatalf("message %d: len %d", i, len(m))
		}
		for _, b := range m {
			if b != m[0] {
				t.Fatal("interleaved sessions corrupted a message")
			}
		}
		seen[m[0]] = true
	}
	wg.Wait()
	if len(seen) != senders {
		t.Fatalf("got %d distinct messages, want %d", len(seen), senders)
	}
}

func TestMultipleConnectionsBetweenSameSystems(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	a, _ := nw.NewSystem("a")
	b, _ := nw.NewSystem("b")

	// Figure 2's multimedia pattern: one reliable, one unreliable
	// connection between the same pair.
	reliable, err := a.Connect("b", Options{Interface: transport.HPI})
	if err != nil {
		t.Fatal(err)
	}
	unreliable, err := a.Connect("b", Options{
		Interface:    transport.HPI,
		ErrorControl: errctl.None,
		FlowControl:  flowctl.None,
	})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := b.AcceptTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := b.AcceptTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pr.ID() != reliable.ID() || pu.ID() != unreliable.ID() {
		t.Fatal("accept order/IDs mismatched")
	}

	if err := reliable.Send([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := unreliable.Send([]byte("video")); err != nil {
		t.Fatal(err)
	}
	if m, _ := pr.Recv(); string(m) != "data" {
		t.Fatalf("reliable conn got %q", m)
	}
	if m, _ := pu.Recv(); string(m) != "video" {
		t.Fatalf("unreliable conn got %q", m)
	}
}

func TestRecvTimeout(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{Interface: transport.HPI})
	defer cleanup()
	_ = conn

	start := time.Now()
	_, err := peer.RecvTimeout(30 * time.Millisecond)
	if err != ErrRecvTimeout {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
}

func TestSendInstrumented(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:  transport.SCI,
		Instrument: true,
	})
	defer cleanup()

	go func() { _, _ = peer.Recv() }()
	tr, err := conn.SendInstrumented([]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() <= 0 {
		t.Fatal("trace total not positive")
	}
	if tr.SessionOverhead()+tr.DataTransfer() != tr.Total() {
		t.Fatal("trace stages do not sum to total")
	}
	if tr.DataTransfer() <= 0 {
		t.Fatal("data transfer stage missing")
	}
	if conn.LastTrace() != tr {
		t.Fatal("LastTrace not recorded")
	}
	if tbl := tr.Table(); len(tbl) == 0 || !bytes.Contains([]byte(tbl), []byte("Session Overhead")) {
		t.Fatalf("Table output malformed:\n%s", tbl)
	}
}

func TestCloseUnblocksEverything(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{Interface: transport.HPI})
	defer cleanup()

	recvErr := make(chan error, 1)
	go func() {
		_, err := peer.Recv()
		recvErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	conn.Close()
	peer.Close()
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("Recv returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv never unblocked")
	}
	if err := conn.Send([]byte("x")); err == nil {
		t.Fatal("Send after close succeeded")
	}
}

func TestConnectUnknownSystem(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	a, _ := nw.NewSystem("a")
	if _, err := a.Connect("ghost", Options{Interface: transport.HPI}); err == nil {
		t.Fatal("connect to unknown system succeeded")
	}
}

func TestDuplicateSystemName(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	if _, err := nw.NewSystem("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.NewSystem("dup"); err == nil {
		t.Fatal("duplicate system name accepted")
	}
}

func TestSystemCloseRejectsNewWork(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	a, _ := nw.NewSystem("a")
	b, _ := nw.NewSystem("b")
	_ = b
	a.Close()
	if _, err := a.Connect("b", Options{Interface: transport.HPI}); err != ErrSystemClosed {
		t.Fatalf("err = %v, want ErrSystemClosed", err)
	}
	if _, err := a.Accept(); err != ErrSystemClosed {
		t.Fatalf("Accept err = %v, want ErrSystemClosed", err)
	}
}

func TestManyMessagesSequential(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{Interface: transport.HPI, SDUSize: 128})
	defer cleanup()

	// Far more sessions than maxTrackedSessions, to exercise pruning.
	const n = 200
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := conn.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < n; i++ {
		m, err := peer.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m[0] != byte(i) || m[1] != byte(i>>8) {
			t.Fatalf("message %d out of order: % x", i, m)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestInbandControlAblation(t *testing.T) {
	// The ablation mode must still deliver reliably over a lossy link,
	// just with control competing against data.
	conn, peer, cleanup := newPairT(t, Options{
		Interface:     transport.ACI,
		ErrorControl:  errctl.SelectiveRepeat,
		FlowControl:   flowctl.Credit,
		InbandControl: true,
		SDUSize:       512,
		AckTimeout:    50 * time.Millisecond,
		QoS:           atm.QoS{CellLossRate: 0.03, Seed: 13},
	})
	defer cleanup()

	msg := make([]byte, 10000)
	for i := range msg {
		msg[i] = byte(i * 11)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- conn.Send(msg) }()
	got, err := peer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("in-band mode corrupted message")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Interface != transport.SCI {
		t.Errorf("default interface = %v", o.Interface)
	}
	if o.FlowControl != flowctl.None || o.ErrorControl != errctl.None {
		t.Errorf("reliable interface should default to no flow/error control: %v/%v",
			o.FlowControl, o.ErrorControl)
	}
	o = Options{Interface: transport.ACI}.withDefaults()
	if o.FlowControl != flowctl.Credit || o.ErrorControl != errctl.SelectiveRepeat {
		t.Errorf("ACI defaults wrong: %v/%v", o.FlowControl, o.ErrorControl)
	}
	if o.SDUSize != errctl.DefaultSDUSize {
		t.Errorf("SDU default = %d", o.SDUSize)
	}
}
