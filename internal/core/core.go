// Package core implements the NCS runtime: the multithreaded
// message-passing system of the paper, with its control plane (Master
// Thread, Flow/Error Control, Control Send/Receive Threads) and data
// plane (per-connection Send and Receive Threads), separate control and
// data connections, per-connection algorithm selection, and the
// thread-bypassing fast path of §4.2.
//
// A System is one NCS process. Systems attach to a Network, which plays
// the role of the signaling fabric: it names systems, routes connection
// setup requests to the target's Master Thread, and mints the two
// transport connections (control + data) that every NCS connection owns.
//
// # Deviations from the paper, and why
//
//   - The paper multiplexes all connections' control traffic through one
//     Control Send Thread and one Control Receive Thread per process
//     (Figure 1). Here each connection owns its control connection and
//     its own CS/CR threads: the wire-level property the paper argues
//     for — control information never competes with data for a data
//     connection's bandwidth — is identical, and per-connection control
//     channels make teardown and the fast path simpler.
//   - NCS worker threads are goroutines (kernel-level threads in the
//     paper's taxonomy). The user-level/kernel-level comparison of §4.1
//     is reproduced in internal/bench with the internal/thread package,
//     where the scheduling semantics are the experiment itself.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/atm"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/netsim"
	"ncs/internal/platform"
	"ncs/internal/transport"
)

// Errors surfaced by the runtime.
var (
	ErrSystemClosed    = errors.New("ncs: system closed")
	ErrUnknownSystem   = errors.New("ncs: unknown system")
	ErrConnClosed      = errors.New("ncs: connection closed")
	ErrSendTooLarge    = errors.New("ncs: message exceeds connection limit")
	ErrRecvTimeout     = errors.New("ncs: receive timed out")
	ErrNotFastPath     = errors.New("ncs: connection not configured for fast path")
	ErrFastPathOnly    = errors.New("ncs: connection configured for fast path")
	ErrPeerUnreachable = errors.New("ncs: peer unreachable (heartbeat timeout)")
	ErrStreamClosed    = errors.New("ncs: stream closed")

	errShardsStarted = errors.New("ncs: shard pool already started")
)

// Options configures one NCS connection at establishment time — the
// per-connection QoS selection that is the heart of the paper's
// flexibility claims (§2, §3).
type Options struct {
	// Interface selects SCI, ACI, HPI, or the real-wire UDP interface.
	// Default SCI.
	Interface transport.Kind
	// FlowControl selects the flow control algorithm. Default: Credit
	// for unreliable interfaces, None for reliable ones (the §3.1
	// bypass).
	FlowControl flowctl.Algorithm
	// ErrorControl selects the error control algorithm. Default:
	// SelectiveRepeat for unreliable interfaces, None for reliable ones.
	ErrorControl errctl.Algorithm
	// FlowConfig tunes the chosen flow control algorithm.
	FlowConfig flowctl.Config
	// SDUSize is the segmentation unit (§3.2). Default 4096.
	SDUSize int
	// QoS configures the ATM virtual circuits for ACI connections.
	QoS atm.QoS
	// HPILink, when non-nil, configures the simulated link under an HPI
	// connection's data path (both directions): bandwidth, delay, loss,
	// and the programmable impairments of internal/netsim — the hook
	// the chaos harness uses to put a hostile network under the full
	// protocol stack without the ATM cell machinery. The control
	// connection stays clean, mirroring the loss-free control circuit
	// ACI connections get (the paper's separated control plane).
	HPILink *netsim.Params
	// UDPLink, when non-nil, configures the real-wire loopback sockets
	// under a UDP connection's data path: syscall batching, packet
	// budget, and the seeded netsim-style impairments applied to each
	// direction's outbound datagrams. As with HPI and ACI, the control
	// connection rides a clean, unimpaired UDP pair. nil gives clean
	// defaults when Interface is transport.UDP.
	UDPLink *transport.UDPLink
	// FastPath selects the §4.2 procedure variant: no per-connection
	// threads; Send/Recv run the protocol inline on the caller.
	FastPath bool
	// Runtime selects the connection's runtime architecture:
	// RuntimeThreaded (default) gives it the paper's dedicated
	// per-connection threads; RuntimeSharded drives it from the
	// System's fixed pool of I/O shards, which demultiplex receives
	// and coalesce sends across every sharded connection — the
	// many-connection scale-out. FastPath takes precedence: a
	// fast-path connection bypasses shards exactly as it bypasses
	// threads. The option travels through signaling, so both endpoints
	// run the architecture the dialer chose.
	Runtime Runtime
	// AckTimeout is the retransmission timer (§3.2 step 5).
	// Default 200 ms.
	AckTimeout time.Duration
	// AdaptiveTimeout derives the retransmission timer from observed
	// acknowledgment round trips (Jacobson/Karels estimation, Karn's
	// rule); AckTimeout then acts as the ceiling and initial value.
	AdaptiveTimeout bool
	// Instrument enables per-stage timing capture on the send path
	// (Table I). Only honoured on threaded (non-fast-path) connections.
	Instrument bool
	// Heartbeat, when positive, probes the peer over the control
	// connection at this interval; three missed intervals without any
	// inbound traffic mark the peer unreachable and fail the
	// connection with ErrPeerUnreachable — the fault-tolerance hook §2
	// attributes to the separated control path. Threaded connections
	// only.
	Heartbeat time.Duration
	// InbandControl multiplexes control packets onto the data
	// connection instead of the separate control connection. This is
	// the architecture the paper argues AGAINST (§2, "Separation of
	// Control and Data Functions"); it exists for the ablation
	// benchmark that quantifies the separation's benefit. Threaded
	// connections only.
	InbandControl bool
	// Platform, when non-nil, charges this side's per-operation CPU
	// costs (copies, system calls) on the connection's transports — the
	// benchmark harness's stand-in for 1998 hardware. PeerPlatform
	// applies to the accepting side; the signaling exchange swaps them
	// so each endpoint pays its own costs.
	Platform     *platform.Platform
	PeerPlatform *platform.Platform
}

func (o Options) withDefaults() Options {
	if o.Interface == 0 {
		o.Interface = transport.SCI
	}
	if o.FlowControl == 0 {
		if o.Interface.Reliable() {
			o.FlowControl = flowctl.None
		} else {
			o.FlowControl = flowctl.Credit
		}
	}
	if o.ErrorControl == 0 {
		if o.Interface.Reliable() {
			o.ErrorControl = errctl.None
		} else {
			o.ErrorControl = errctl.SelectiveRepeat
		}
	}
	if o.SDUSize <= 0 {
		o.SDUSize = errctl.DefaultSDUSize
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 200 * time.Millisecond
	}
	return o
}

// QoSForLink derives an ATM traffic contract matching a link of the
// given byte rate and one-way propagation delay.
func QoSForLink(bytesPerSec int64, delay time.Duration) atm.QoS {
	var pcr int64
	if bytesPerSec > 0 {
		pcr = bytesPerSec / atm.CellSize
	}
	return atm.QoS{PeakCellRate: pcr, Delay: delay}
}

// Network is the signaling fabric binding Systems together.
type Network struct {
	mu      sync.Mutex
	systems map[string]*System
	atmNet  *atm.Network
	nextID  atomic.Uint32
	closed  bool

	// vcMu serialises ATM VC establishment: a VC is paired by matching
	// one Dial with one Accept on the target host, so two concurrent
	// Connects to the same system could otherwise cross their circuits
	// (A's data VC delivered as B's control VC). Held only during
	// signaling.
	vcMu sync.Mutex
}

// NewNetwork creates an empty fabric with a collapsed ATM network
// (every ACI circuit receives exactly its requested QoS).
func NewNetwork() *Network {
	return &Network{
		systems: make(map[string]*System),
		atmNet:  atm.NewNetwork(),
	}
}

// NewNetworkWithTopology creates a fabric whose ACI circuits are routed
// over the given switched ATM topology with connection admission
// control. Systems must be attached to switches (Topology.AttachHost,
// keyed by system name) before they establish ACI connections.
func NewNetworkWithTopology(t *atm.Topology) *Network {
	return &Network{
		systems: make(map[string]*System),
		atmNet:  atm.NewNetworkWithTopology(t),
	}
}

// NewSystem registers a named NCS process on the fabric and starts its
// Master Thread.
func (n *Network) NewSystem(name string) (*System, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrSystemClosed
	}
	if _, dup := n.systems[name]; dup {
		return nil, fmt.Errorf("ncs: system %q already exists", name)
	}
	s := &System{
		name:    name,
		network: n,
		atmHost: n.atmNet.Host(name),
		setups:  make(chan *setupRequest, 16),
		accepts: make(chan *Connection, 16),
		done:    make(chan struct{}),
	}
	n.systems[name] = s
	go s.master()
	return s, nil
}

// Close shuts down every system and the underlying fabrics.
func (n *Network) Close() {
	n.mu.Lock()
	systems := make([]*System, 0, len(n.systems))
	for _, s := range n.systems {
		systems = append(systems, s)
	}
	n.closed = true
	n.mu.Unlock()
	for _, s := range systems {
		s.Close()
	}
	n.atmNet.Close()
}

func (n *Network) lookup(name string) (*System, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.systems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSystem, name)
	}
	return s, nil
}

// newConnPair mints the data and control transport connections between
// two systems for the requested interface kind. The first return value
// of each pair belongs to the dialing side.
func (n *Network) newConnPair(from, to *System, opts Options) (data, peerData, ctrl, peerCtrl transport.Conn, err error) {
	switch opts.Interface {
	case transport.HPI:
		if opts.HPILink != nil {
			data, peerData = transport.HPIPairWithParams(*opts.HPILink, *opts.HPILink)
		} else {
			data, peerData = transport.HPIPair()
		}
		ctrl, peerCtrl = transport.HPIPair()
		return data, peerData, ctrl, peerCtrl, nil

	case transport.ACI:
		// Two VCs per connection: the separated data and control
		// circuits of Figure 4. Control rides a loss-free, unimpaired
		// circuit with the same propagation profile: in NYNET terms, a
		// low-bandwidth high-priority VC. Loss on the control VC would
		// only slow convergence (timeout retransmission), not
		// correctness, but a clean control channel matches the paper's
		// architecture.
		dataQoS := opts.QoS
		ctrlQoS := opts.QoS
		ctrlQoS.CellLossRate = 0
		ctrlQoS.CellCorruptRate = 0
		ctrlQoS.Impair = netsim.Impairments{}
		ctrlQoS.Schedule = nil
		dvc, dpeer, err := n.dialVC(from, to, dataQoS)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cvc, cpeer, err := n.dialVC(from, to, ctrlQoS)
		if err != nil {
			dvc.Close()
			dpeer.Close()
			return nil, nil, nil, nil, err
		}
		return transport.NewACI(dvc), transport.NewACI(dpeer),
			transport.NewACI(cvc), transport.NewACI(cpeer), nil

	case transport.UDP:
		// Real loopback sockets. Impairments from UDPLink apply to the
		// data pair only; control always gets a clean link, mirroring
		// the separated loss-free control circuit of the other
		// interfaces.
		d1, d2, err := transport.UDPPair(opts.UDPLink)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		var ctrlLink *transport.UDPLink
		if opts.UDPLink != nil {
			clean := *opts.UDPLink
			clean.Impair = netsim.Impairments{}
			clean.Schedule = nil
			ctrlLink = &clean
		}
		c1, c2, err := transport.UDPPair(ctrlLink)
		if err != nil {
			d1.Close()
			d2.Close()
			return nil, nil, nil, nil, err
		}
		return d1, d2, c1, c2, nil

	case transport.SCI:
		d1, d2, err := n.sciPair(to)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		c1, c2, err := n.sciPair(to)
		if err != nil {
			d1.Close()
			d2.Close()
			return nil, nil, nil, nil, err
		}
		return d1, d2, c1, c2, nil

	default:
		return nil, nil, nil, nil, fmt.Errorf("ncs: unsupported interface %v", opts.Interface)
	}
}

// dialVC establishes one ATM VC between two systems' hosts. The
// network-wide lock keeps the Dial/Accept pairing atomic under
// concurrent connection setup.
func (n *Network) dialVC(from, to *System, qos atm.QoS) (*atm.VC, *atm.VC, error) {
	n.vcMu.Lock()
	defer n.vcMu.Unlock()
	acceptCh := make(chan *atm.VC, 1)
	errCh := make(chan error, 1)
	go func() {
		vc, err := to.atmHost.Accept()
		if err != nil {
			errCh <- err
			return
		}
		acceptCh <- vc
	}()
	local, err := from.atmHost.Dial(to.name, qos)
	if err != nil {
		return nil, nil, err
	}
	select {
	case remote := <-acceptCh:
		return local, remote, nil
	case err := <-errCh:
		local.Close()
		return nil, nil, err
	}
}

// sciPair mints a connected TCP pair via an ephemeral loopback listener.
func (n *Network) sciPair(to *System) (transport.Conn, transport.Conn, error) {
	l, err := transport.ListenSCI("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer l.Close()
	connCh := make(chan transport.Conn, 1)
	errCh := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		connCh <- c
	}()
	out, err := transport.DialSCI(l.Addr())
	if err != nil {
		return nil, nil, err
	}
	select {
	case in := <-connCh:
		return out, in, nil
	case err := <-errCh:
		out.Close()
		return nil, nil, err
	}
}

// setupRequest is the signaling message handled by the Master Thread.
type setupRequest struct {
	from   string
	connID uint32
	opts   Options
	data   transport.Conn
	ctrl   transport.Conn
}

// System is one NCS process: a set of connections, an accept queue, and
// a Master Thread that services connection management signaling.
type System struct {
	name    string
	network *Network
	atmHost *atm.Host

	setups  chan *setupRequest
	accepts chan *Connection
	done    chan struct{}

	mu     sync.Mutex
	conns  []*Connection
	closed bool

	// The sharded runtime's I/O pool, built lazily on the first
	// RuntimeSharded connection (see shard.go), and the pool's hashed
	// timer wheel (timerwheel.go), built lazily on the first armed
	// timer. Both share shardMu and stop together in stopShards.
	shardMu      sync.Mutex
	shards       []*shard
	shardN       int
	shardStopped bool
	shardWG      sync.WaitGroup
	wheel        *timerWheel
}

// Name returns the system's registered name.
func (s *System) Name() string { return s.name }

// master is the Master Thread: it owns connection management (§2's
// control plane list: "connection management, ... configuration
// management") and spawns the per-connection data transfer threads.
func (s *System) master() {
	for {
		select {
		case req := <-s.setups:
			conn := newConnection(s, req.from, req.connID, req.opts, req.data, req.ctrl, false)
			s.track(conn)
			select {
			case s.accepts <- conn:
			case <-s.done:
				conn.Close()
				return
			}
		case <-s.done:
			return
		}
	}
}

func (s *System) track(c *Connection) {
	s.mu.Lock()
	s.conns = append(s.conns, c)
	s.mu.Unlock()
}

// Connect establishes an NCS connection to the named peer system with
// the given per-connection configuration, performing the signaling
// handshake with the peer's Master Thread.
func (s *System) Connect(peer string, opts Options) (*Connection, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSystemClosed
	}
	s.mu.Unlock()

	opts = opts.withDefaults()
	target, err := s.network.lookup(peer)
	if err != nil {
		return nil, err
	}
	data, peerData, ctrl, peerCtrl, err := s.network.newConnPair(s, target, opts)
	if err != nil {
		return nil, fmt.Errorf("ncs: connect %s→%s: %w", s.name, peer, err)
	}
	connID := s.network.nextID.Add(1)

	peerOpts := opts
	peerOpts.Platform, peerOpts.PeerPlatform = opts.PeerPlatform, opts.Platform
	req := &setupRequest{
		from:   s.name,
		connID: connID,
		opts:   peerOpts,
		data:   peerData,
		ctrl:   peerCtrl,
	}
	select {
	case target.setups <- req:
	case <-target.done:
		data.Close()
		ctrl.Close()
		peerData.Close()
		peerCtrl.Close()
		return nil, ErrSystemClosed
	}

	conn := newConnection(s, peer, connID, opts, data, ctrl, true)
	s.track(conn)
	return conn, nil
}

// Accept blocks until a peer establishes a connection to this system.
func (s *System) Accept() (*Connection, error) {
	select {
	case c := <-s.accepts:
		return c, nil
	case <-s.done:
		return nil, ErrSystemClosed
	}
}

// AcceptTimeout is Accept with a deadline.
func (s *System) AcceptTimeout(d time.Duration) (*Connection, error) {
	select {
	case c := <-s.accepts:
		return c, nil
	case <-s.done:
		return nil, ErrSystemClosed
	case <-time.After(d):
		return nil, ErrRecvTimeout
	}
}

// Close tears down every connection and stops the Master Thread.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*Connection, len(s.conns))
	copy(conns, s.conns)
	s.mu.Unlock()

	close(s.done)
	for _, c := range conns {
		c.Close()
	}
	s.stopShards()
}
