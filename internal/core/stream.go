package core

import (
	"time"

	"ncs/internal/buf"
	"ncs/internal/packet"
	"ncs/internal/stream"
)

// This file is the core side of stream multiplexing: the lazy per-
// connection mux, the demux hook dispatchData calls for frames whose
// StreamID is non-zero, the control routing for the three stream
// control types, and the application-facing Stream handle.
//
// The layering mirrors the rest of the core: internal/stream owns all
// per-stream protocol state (credits, reassembly sessions, parking);
// this file owns the wire — which thread a frame arrives on, which
// queue a control packet leaves through, and how a blocked receiver
// waits on each runtime. Stream 0 never touches any of it.

// muxIfAny returns the connection's stream mux if one exists. Frame
// and control routing use it where a missing mux means "no stream ever
// existed here" and the event can be dropped or must create one.
func (c *Connection) muxIfAny() *stream.Mux { return c.muxp.Load() }

// mux returns the connection's stream mux, creating it on first use —
// the first OpenStream, AcceptStream, or inbound stream frame. The
// construction mirrors the lazy flow-control constructors: c.mu
// serialises builders, and a mux built concurrently with Close is
// reaped immediately so no stream can outlive its connection.
func (c *Connection) mux() *stream.Mux {
	if m := c.muxp.Load(); m != nil {
		return m
	}
	c.mu.Lock()
	if m := c.muxp.Load(); m != nil {
		c.mu.Unlock()
		return m
	}
	m := stream.NewMux(c.initiator, stream.Config{
		Flow: c.opts.FlowConfig,
		Err:  c.opts.ErrorControl,
	})
	m.SetEmitter(c.emitStreamCtrl)
	c.muxp.Store(m)
	var closed bool
	select {
	case <-c.closedCh:
		closed = true
	default:
	}
	c.mu.Unlock()
	if closed {
		m.ReapAll()
	}
	return m
}

// reapStreams tears down every stream at connection close, releasing
// retained reassembly buffers and draining per-stream credit timers.
// The load runs under c.mu so it serialises with a racing mux():
// whichever side runs second observes the other's work.
func (c *Connection) reapStreams() {
	c.mu.Lock()
	m := c.muxp.Load()
	c.mu.Unlock()
	if m != nil {
		m.ReapAll()
	}
}

// emitStreamCtrl sends one stream-scoped control packet (grants, open
// and close announcements) over the connection's control path. It is
// the mux's emitter, so it also runs on consumer goroutines — a
// TryPop that refills the peer's credit window emits from whatever
// goroutine popped. On the fast path that means an inline marshal and
// write under fastCtrlMu (the pump's ack writes take the same lock);
// the threaded and sharded runtimes enqueue as usual.
func (c *Connection) emitStreamCtrl(ctl packet.Control) bool {
	ctl.ConnID = c.id
	if c.opts.FastPath {
		sb := buf.GetCap(packet.ControlHeaderSize + len(ctl.Body))
		sb.B = ctl.Marshal(sb.B)
		c.stats.controlSent.Add(1)
		c.fastCtrlMu.Lock()
		err := c.ctrl.SendBuf(sb)
		c.fastCtrlMu.Unlock()
		return err == nil
	}
	return c.enqueueCtrl(ctl)
}

// dispatchStream routes one arriving stream frame (StreamID != 0) to
// its stream's protocol state, creating the stream on first frame —
// which is what makes CtrlStreamOpen advisory and lets the fast path
// (whose control connection is only read by senders) accept streams
// purely from data arrivals. Completed messages park on the stream,
// never on the caller's delivery path, so the receive thread, shard
// loop, or fast-path pump keeps draining the wire regardless of
// whether anyone consumes this stream.
func (c *Connection) dispatchStream(h packet.DataHeader, payload []byte, ref *buf.Buffer, emit func(packet.Control) bool) {
	c.stats.sdusReceived.Add(1)
	c.stats.bytesReceived.Add(uint64(len(payload)))
	mRecvSDUs.IncAt(c.id)
	mRecvBytes.AddAt(c.id, int64(len(payload)))
	st := c.mux().Get(h.StreamID)
	st.OnData(h, payload, ref, func(ctl packet.Control) bool {
		ctl.ConnID = c.id
		return emit(ctl)
	})
}

// routeStreamCtrl dispatches one stream-scoped control packet. Bodies
// alias the pooled receive buffer; every branch parses synchronously.
func (c *Connection) routeStreamCtrl(ctl packet.Control) {
	switch ctl.Type {
	case packet.CtrlStreamGrant:
		// A grant can only answer data we sent, so the mux must exist;
		// if it does not (or the stream is unknown), the grant is a
		// straggler for a torn-down stream.
		m := c.muxIfAny()
		if m == nil {
			return
		}
		id, _, err := packet.ParseStreamGrant(ctl.Body)
		if err != nil {
			return
		}
		if st, ok := m.Lookup(id); ok {
			st.OnGrant(ctl)
		}
	case packet.CtrlStreamOpen:
		id, err := packet.ParseStreamID(ctl.Body)
		if err != nil {
			return
		}
		// Create-on-announce: the stream lands on the accept queue
		// before its first data frame, so AcceptStream can return for
		// streams the peer opened but has not written to yet.
		c.mux().Get(id)
	case packet.CtrlStreamClose:
		m := c.muxIfAny()
		if m == nil {
			return
		}
		id, err := packet.ParseStreamID(ctl.Body)
		if err != nil {
			return
		}
		if st, ok := m.Lookup(id); ok {
			st.RemoteClose()
		}
	}
}

// streamSendable reports why a stream send should stop retrying
// admission: ErrStreamClosed once the stream was closed locally or by
// the peer (whose grants will never come), nil while it is live.
func (c *Connection) streamSendable(id uint32) error {
	m := c.muxIfAny()
	if m == nil {
		return nil
	}
	st, ok := m.Lookup(id)
	if !ok {
		return nil
	}
	if st.Closed() || st.RemoteClosed() {
		return ErrStreamClosed
	}
	return nil
}

// ---------------------------------------------------------------------------
// The application-facing stream handle.

// Stream is one ordered message channel multiplexed over a Connection.
// Each stream has its own receiver-advertised credit window and its
// own reliability sessions, so a slow or unconsumed stream exhausts
// only its own credits: siblings — and the connection's default
// channel (stream 0, the plain Send/Recv API) — keep flowing.
//
// Send and Recv follow Connection semantics: Send blocks until the
// transfer completes (reliable) or is handed to the interface
// (unreliable); Recv blocks for the next fully received message.
// Streams are created with OpenStream and surface to the peer via
// AcceptStream.
type Stream struct {
	c  *Connection
	st *stream.State
}

// ID returns the stream identifier carried in its data frames. The
// connection's dialing side opens odd ids, the accepting side even.
func (s *Stream) ID() uint32 { return s.st.ID() }

// Conn returns the connection this stream is multiplexed over.
func (s *Stream) Conn() *Connection { return s.c }

// OpenStream opens a new ordered channel over the connection and
// announces it to the peer, which collects it with AcceptStream.
func (c *Connection) OpenStream() (*Stream, error) {
	m := c.mux()
	st, ok := m.Open()
	if !ok {
		return nil, c.closeErr()
	}
	// The announcement is advisory — the first data frame would create
	// the peer state too — but it lets the peer accept before traffic.
	c.emitStreamCtrl(packet.Control{
		Type: packet.CtrlStreamOpen,
		Body: packet.StreamIDBody(st.ID()),
	})
	return &Stream{c: c, st: st}, nil
}

// AcceptStream blocks for the next stream the peer opened.
func (c *Connection) AcceptStream() (*Stream, error) {
	return c.AcceptStreamTimeout(0)
}

// AcceptStreamTimeout is AcceptStream with a deadline (d > 0); it
// returns ErrRecvTimeout when no stream arrives in time.
func (c *Connection) AcceptStreamTimeout(d time.Duration) (*Stream, error) {
	m := c.mux()
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	if c.opts.FastPath {
		st, err := c.acceptFast(m, deadline)
		if err != nil {
			return nil, err
		}
		return &Stream{c: c, st: st}, nil
	}
	var timerC <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timerC = t.C
	}
	for {
		if st, ok := m.PopAccept(); ok {
			return &Stream{c: c, st: st}, nil
		}
		select {
		case <-m.AcceptBell():
		case <-c.closedCh:
			return nil, c.closeErr()
		case <-timerC:
			return nil, ErrRecvTimeout
		}
	}
}

// StreamByID returns the stream with the given id, creating it if
// needed and claiming it away from the accept queue. Layered
// protocols that communicate stream ids out of band — the RPC layer's
// streaming calls carry theirs in the call frame — use it to attach
// to a peer-opened stream without racing AcceptStream.
func (c *Connection) StreamByID(id uint32) *Stream {
	return &Stream{c: c, st: c.mux().Take(id)}
}

// Send transmits msg on the stream, reliably or unreliably per the
// connection's error-control configuration. Sends on one stream are
// serialised (it is an ordered channel); sends on different streams
// proceed independently, each against its own credit window.
func (s *Stream) Send(msg []byte) error {
	st := s.st
	st.LockSend()
	defer st.UnlockSend()
	if st.Closed() || st.RemoteClosed() {
		return ErrStreamClosed
	}
	lane := sendLane{streamID: st.ID(), fc: st.FlowSender(), tx: st.TxCounter()}
	if s.c.opts.FastPath {
		return s.c.sendFastOn(lane, msg, nil)
	}
	return s.c.sendThreadedOn(lane, msg, nil)
}

// Recv blocks for the next fully received message on the stream.
func (s *Stream) Recv() ([]byte, error) {
	m, err := s.RecvMessage()
	return m.Data, err
}

// RecvMessage is Recv with loss metadata.
func (s *Stream) RecvMessage() (Message, error) { return s.recvMessage(0) }

// RecvTimeout is Recv with a deadline.
func (s *Stream) RecvTimeout(d time.Duration) ([]byte, error) {
	m, err := s.RecvMessageTimeout(d)
	return m.Data, err
}

// RecvMessageTimeout is RecvMessage with a deadline.
func (s *Stream) RecvMessageTimeout(d time.Duration) (Message, error) {
	return s.recvMessage(d)
}

func (s *Stream) recvMessage(d time.Duration) (Message, error) {
	if s.c.opts.FastPath {
		return s.c.recvStreamFast(s.st, d)
	}
	var timerC <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timerC = t.C
	}
	for {
		if m, ok := s.st.TryPop(); ok {
			return Message{Data: m.Data, Lost: m.Lost}, nil
		}
		// Order matters: pop before the lifecycle check, so messages
		// parked before a remote close drain to the application first.
		if s.st.Closed() || s.st.RemoteClosed() {
			return Message{}, ErrStreamClosed
		}
		select {
		case <-s.st.Bell():
		case <-s.c.closedCh:
			if m, ok := s.st.TryPop(); ok {
				return Message{Data: m.Data, Lost: m.Lost}, nil
			}
			return Message{}, s.c.closeErr()
		case <-timerC:
			return Message{}, ErrRecvTimeout
		}
	}
}

// Close tears the stream down on this side and announces the close to
// the peer, whose receivers observe ErrStreamClosed once drained and
// whose blocked senders stop retrying admission. Retained buffers —
// parked messages, incomplete reassembly — release immediately. Close
// a stream only after its senders have quiesced; frames still in
// flight for a closed stream are dropped on arrival.
func (s *Stream) Close() error {
	if s.st.Closed() {
		return nil
	}
	s.st.Reap()
	s.c.emitStreamCtrl(packet.Control{
		Type: packet.CtrlStreamClose,
		Body: packet.StreamIDBody(s.st.ID()),
	})
	return nil
}

// Closed reports whether the stream was closed locally or by the peer.
func (s *Stream) Closed() bool {
	return s.st.Closed() || s.st.RemoteClosed()
}
