package core

import (
	"unsafe"

	"ncs/internal/packet"
)

// Rough heap sizes of lazily-built state that lives in other packages,
// where unsafe.Sizeof cannot reach. They only need to be honest enough
// for capacity planning: MemStats is an estimator, not an allocator
// audit (the alloc-precise numbers live in the benchmark suite).
const (
	// flowHalfEstimate approximates one flow-control half (sender or
	// receiver): a small struct of counters plus its mutex/cond.
	flowHalfEstimate = 128
	// recvSessionEstimate approximates one inbound reassembly session's
	// bookkeeping (errctl receiver state, map entry, age ring slot),
	// excluding the payload buffers it stages, which are pooled and
	// accounted by internal/buf.
	recvSessionEstimate = 256
	// waiterEstimate approximates one outbound ack-waiter registration
	// (map entry plus its buffered channel).
	waiterEstimate = 128
)

// MemStats is a snapshot of a System's per-connection memory footprint
// — the capacity-planning companion to ShardStats. All byte figures are
// estimates of retained heap, summed from each connection's struct plus
// whatever lazy state (queues, flow control, session tables) it has
// actually materialised; an idle connection that never sent or received
// counts little more than its bare struct.
type MemStats struct {
	// Conns is the number of connections tracked by the System,
	// including closed ones not yet dropped by teardown.
	Conns int
	// EstimatedBytes is the estimated retained heap across those
	// connections.
	EstimatedBytes uint64
	// LiveSessions counts inbound reassembly sessions currently held
	// across all connections (bounded per connection by the session
	// pruning table).
	LiveSessions int
	// PendingTimers counts timers currently armed on the System's
	// hashed timer wheel: shard heartbeat sweeps plus in-flight sharded
	// retransmission timers. Idle sharded connections contribute zero.
	PendingTimers int
}

// BytesPerConn reports the mean estimated footprint per connection.
func (m MemStats) BytesPerConn() float64 {
	if m.Conns == 0 {
		return 0
	}
	return float64(m.EstimatedBytes) / float64(m.Conns)
}

// MemStats estimates the System's per-connection memory footprint. It
// walks every tracked connection, so it is a diagnostic to sample, not
// a hot-path counter.
//
// Deprecated: the same snapshot is the Mem field of System.Telemetry,
// alongside the shard summary and the instrument registry. This
// wrapper remains for existing callers.
func (s *System) MemStats() MemStats { return s.memStats() }

func (s *System) memStats() MemStats {
	s.mu.Lock()
	conns := make([]*Connection, len(s.conns))
	copy(conns, s.conns)
	s.mu.Unlock()

	st := MemStats{Conns: len(conns)}
	for _, c := range conns {
		bytes, sessions := c.memEstimate()
		st.EstimatedBytes += bytes
		st.LiveSessions += sessions
	}

	s.shardMu.Lock()
	if s.wheel != nil {
		st.PendingTimers = s.wheel.liveTimers()
	}
	s.shardMu.Unlock()
	return st
}

// memEstimate sizes one connection: the struct itself plus every piece
// of lazily-allocated state it has actually built. The estimate tracks
// the memory-diet work directly — state that stays nil contributes
// nothing, which is the point.
func (c *Connection) memEstimate() (bytes uint64, sessions int) {
	bytes = uint64(unsafe.Sizeof(*c))
	if c.sendQ != nil {
		bytes += uint64(cap(c.sendQ)) * uint64(unsafe.Sizeof(sendItem{}))
	}
	if c.ctrlQ != nil {
		bytes += uint64(cap(c.ctrlQ)) * uint64(unsafe.Sizeof(packet.Control{}))
	}
	if p := c.delivered.Load(); p != nil {
		bytes += uint64(cap(*p)) * uint64(unsafe.Sizeof(Message{}))
	}
	if c.fcSend.Load() != nil {
		bytes += flowHalfEstimate
	}
	if c.fcRecv.Load() != nil {
		bytes += flowHalfEstimate
	}

	c.mu.Lock()
	sessions = len(c.sessions)
	bytes += uint64(len(c.sessions)) * recvSessionEstimate
	bytes += uint64(cap(c.sessAge)) * uint64(unsafe.Sizeof(uint32(0)))
	bytes += uint64(len(c.waiters)) * waiterEstimate
	c.mu.Unlock()

	if c.sh != nil {
		bytes += uint64(unsafe.Sizeof(*c.sh))
	}
	return bytes, sessions
}
