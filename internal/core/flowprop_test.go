package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ncs/internal/atm"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/netsim"
	"ncs/internal/transport"
)

// Credit-conservation matrix: the flowctl property tests prove the
// sender/receiver state machines in isolation; this proves them wired
// through every runtime. Each cell runs credit flow control under one
// error-control scheme, one runtime, and one impairment (loss,
// duplication, reordering — cell-level, so at the frame level all
// three manifest as grant and data loss in different patterns), then
// asserts delivery completes and the sender's conservation invariants
// held:
//
//   - Used ≤ Granted + Probes + Lost — no transmission beyond
//     authority (written-off losses return to the grant space)
//   - PeerConsumed + Lost ≤ Used — in-flight never underflows
//
// Buffer hygiene rides the package TestMain's buf.Outstanding audit.

// checkFlowInvariants asserts the credit conservation invariants on a
// sender-side connection snapshot.
func checkFlowInvariants(t *testing.T, c *Connection, when string) {
	t.Helper()
	st, ok := c.FlowStats()
	if !ok {
		t.Fatalf("%s: FlowStats unavailable on a credit connection", when)
	}
	if st.Used > st.Granted+st.Probes+st.Lost {
		t.Fatalf("%s: conservation violated: used %d > granted %d + probes %d + lost %d",
			when, st.Used, st.Granted, st.Probes, st.Lost)
	}
	if st.PeerConsumed+st.Lost > st.Used {
		t.Fatalf("%s: inflight underflow: consumed %d + lost %d > used %d",
			when, st.PeerConsumed, st.Lost, st.Used)
	}
}

func TestCreditConservationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("impairment matrix soak")
	}
	runtimes := []struct {
		name string
		set  func(*Options)
	}{
		{"threaded", func(*Options) {}},
		{"sharded", func(o *Options) { o.Runtime = RuntimeSharded }},
		{"fastpath", func(o *Options) { o.FastPath = true }},
	}
	schemes := []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN}
	// Rates are per ATM cell and an SDU spans several cells, so a
	// damaged cell loses its whole frame: these values land near 10–20%
	// frame loss, heavy enough to exercise grant recovery while letting
	// every cell of the matrix converge quickly.
	impairments := []struct {
		name string
		qos  atm.QoS
	}{
		{"loss", atm.QoS{CellLossRate: 0.02}},
		{"dup", atm.QoS{Impair: netsim.Impairments{DupRate: 0.04}}},
		{"reorder", atm.QoS{Impair: netsim.Impairments{
			ReorderRate:   0.02,
			ReorderJitter: 500 * time.Microsecond,
		}}},
	}

	// The same invariants must hold when the datagrams cross real
	// loopback sockets: the UDP cells put the seeded wire impairer
	// under the identical credit/error-control stack. Impairment here
	// is per datagram (= per SDU packet), so rates are set to land in
	// the same 10–20% effective loss band as the cell-level ACI rates.
	udpImpairments := []struct {
		name string
		imp  netsim.Impairments
	}{
		{"udp_loss", netsim.Impairments{Burst: netsim.GilbertElliott{LossGood: 0.1}}},
		{"udp_dup", netsim.Impairments{DupRate: 0.1}},
		{"udp_reorder", netsim.Impairments{
			ReorderRate:   0.08,
			ReorderJitter: 500 * time.Microsecond,
		}},
	}

	seed := int64(0)
	for _, rt := range runtimes {
		for _, ec := range schemes {
			for _, imp := range impairments {
				seed++
				rt, ec, imp, seed := rt, ec, imp, seed
				name := fmt.Sprintf("%s_%v_%s", rt.name, ec, imp.name)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runCreditMatrixCell(t, rt.set, ec, func(o *Options) {
						q := imp.qos
						q.Seed = seed
						o.Interface = transport.ACI
						o.QoS = q
					}, seed)
				})
			}
			for _, imp := range udpImpairments {
				seed++
				rt, ec, imp, seed := rt, ec, imp, seed
				name := fmt.Sprintf("%s_%v_%s", rt.name, ec, imp.name)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runCreditMatrixCell(t, rt.set, ec, func(o *Options) {
						o.Interface = transport.UDP
						o.UDPLink = &transport.UDPLink{Seed: seed, Impair: imp.imp}
					}, seed)
				})
			}
		}
	}
}

func runCreditMatrixCell(t *testing.T, set func(*Options), ec errctl.Algorithm, link func(*Options), seed int64) {
	rng := rand.New(rand.NewSource(seed))
	opts := Options{
		FlowControl:  flowctl.Credit,
		ErrorControl: ec,
		FlowConfig:   flowctl.Config{InitialCredits: 4, MaxCredits: 64},
		SDUSize:      256,
		AckTimeout:   40 * time.Millisecond,
	}
	link(&opts)
	set(&opts)
	conn, peer, cleanup := newPairT(t, opts)
	defer cleanup()

	const messages = 5
	sent := make([][]byte, messages)
	for i := range sent {
		msg := make([]byte, 1+rng.Intn(3000))
		rng.Read(msg)
		sent[i] = msg
	}
	errCh := make(chan error, 1)
	go func() {
		for _, m := range sent {
			if err := conn.Send(m); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := range sent {
		got, err := peer.RecvTimeout(20 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v (sender %+v)", i, err, statsOrNil(conn))
		}
		if !bytes.Equal(got, sent[i]) {
			t.Fatalf("message %d corrupted (got %d bytes, want %d)", i, len(got), len(sent[i]))
		}
		checkFlowInvariants(t, conn, fmt.Sprintf("after message %d", i))
	}
	if err := <-errCh; err != nil {
		t.Fatalf("send: %v", err)
	}
	checkFlowInvariants(t, conn, "final")
	st, _ := conn.FlowStats()
	if st.Used == 0 {
		t.Fatal("no admissions recorded despite delivered traffic")
	}
}

// statsOrNil renders sender stats for failure messages without
// tripping on a connection that never built its flow sender.
func statsOrNil(c *Connection) any {
	if st, ok := c.FlowStats(); ok {
		return st
	}
	return "no flow stats"
}
