package core

import (
	"bytes"
	"testing"
	"time"

	"ncs/internal/atm"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/transport"
)

func TestRTTEstimatorConverges(t *testing.T) {
	var e rttEstimator
	if _, _, ok := e.snapshot(); ok {
		t.Fatal("fresh estimator claims samples")
	}
	if got := e.timeout(time.Second, time.Millisecond); got != time.Second {
		t.Fatalf("uninitialised timeout = %v, want fallback", got)
	}
	for i := 0; i < 50; i++ {
		e.observe(10 * time.Millisecond)
	}
	srtt, rttvar, ok := e.snapshot()
	if !ok {
		t.Fatal("estimator not initialised after samples")
	}
	if srtt < 9*time.Millisecond || srtt > 11*time.Millisecond {
		t.Fatalf("srtt = %v, want ≈10ms", srtt)
	}
	if rttvar > 2*time.Millisecond {
		t.Fatalf("rttvar = %v for constant samples", rttvar)
	}
	rto := e.timeout(time.Second, time.Millisecond)
	if rto < 10*time.Millisecond || rto > 30*time.Millisecond {
		t.Fatalf("rto = %v, want srtt+4·rttvar ≈ 10-20ms", rto)
	}
}

func TestRTTEstimatorClamps(t *testing.T) {
	var e rttEstimator
	e.observe(100 * time.Microsecond)
	if got := e.timeout(time.Second, 5*time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("rto = %v, want clamped to 5ms floor", got)
	}
	e2 := rttEstimator{}
	e2.observe(10 * time.Second)
	if got := e2.timeout(200*time.Millisecond, time.Millisecond); got != 200*time.Millisecond {
		t.Fatalf("rto = %v, want clamped to fallback ceiling", got)
	}
	e.observe(0)  // ignored
	e.observe(-1) // ignored
}

func TestAdaptiveTimeoutEndToEnd(t *testing.T) {
	// A 5 ms-delay circuit: the adaptive timer should settle near the
	// ~10 ms ack round trip instead of the 500 ms configured ceiling.
	conn, peer, cleanup := newPairT(t, Options{
		Interface:       transport.ACI,
		ErrorControl:    errctl.SelectiveRepeat,
		FlowControl:     flowctl.None,
		SDUSize:         1024,
		AckTimeout:      500 * time.Millisecond,
		AdaptiveTimeout: true,
		QoS:             atm.QoS{Delay: 5 * time.Millisecond},
	})
	defer cleanup()

	msg := bytes.Repeat([]byte{3}, 3000)
	for i := 0; i < 5; i++ {
		errCh := make(chan error, 1)
		go func() { errCh <- conn.Send(msg) }()
		if _, err := peer.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	rtt := conn.RTT()
	if rtt == 0 {
		t.Fatal("RTT never estimated")
	}
	if rtt < 8*time.Millisecond || rtt > 80*time.Millisecond {
		t.Fatalf("RTT estimate = %v, want ≈10ms over a 5ms-delay circuit", rtt)
	}

	// The estimate must actually shorten loss recovery: with a lost
	// packet, retransmission fires at the adaptive RTO, far below the
	// 500 ms ceiling.
	if rto := conn.rtt.timeout(conn.opts.AckTimeout, minAdaptiveTimeout); rto >= conn.opts.AckTimeout {
		t.Fatalf("adaptive rto = %v did not drop below ceiling", rto)
	}
}

func TestAdaptiveTimeoutRecoversLossFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	run := func(adaptive bool) time.Duration {
		conn, peer, cleanup := newPairT(t, Options{
			Interface:       transport.ACI,
			ErrorControl:    errctl.SelectiveRepeat,
			FlowControl:     flowctl.None,
			SDUSize:         512,
			AckTimeout:      400 * time.Millisecond,
			AdaptiveTimeout: adaptive,
			QoS:             atm.QoS{CellLossRate: 0.08, Seed: 9, Delay: time.Millisecond},
		})
		defer cleanup()

		msg := make([]byte, 6000)
		// Warm the estimator on a few sends.
		for i := 0; i < 3; i++ {
			errCh := make(chan error, 1)
			go func() { errCh <- conn.Send(msg) }()
			if _, err := peer.Recv(); err != nil {
				t.Fatal(err)
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		for i := 0; i < 10; i++ {
			errCh := make(chan error, 1)
			go func() { errCh <- conn.Send(msg) }()
			if _, err := peer.Recv(); err != nil {
				t.Fatal(err)
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	fixed := run(false)
	adaptive := run(true)
	// With 8% cell loss, several transfers need timeout recovery; the
	// adaptive timer (≈ms) should beat the fixed 400 ms timer clearly.
	if adaptive >= fixed {
		t.Fatalf("adaptive %v not faster than fixed %v under loss", adaptive, fixed)
	}
}
