package core

import (
	"fmt"
	"strings"
	"time"
)

// SendTrace captures the per-stage timing of one threaded NCS_send,
// reproducing the methodology of Table I ("Cost of Sending 1-Byte
// Message via Send Thread"). Stages:
//
//	tEnter        NCS_send entry
//	tHeader       after segmentation and header generation
//	tQueued       after the request is queued for the Send Thread
//	tDequeued     the Send Thread picked the request up
//	tTransmitted  the interface accepted the data
//	tReturned     control returned to NCS_send
//	tExit         NCS_send exit
//
// The session overhead is everything except the data transfer itself,
// exactly as the paper divides it.
type SendTrace struct {
	tEnter, tHeader, tQueued, tDequeued, tTransmitted, tReturned, tExit time.Time

	now func() time.Time
}

func newSendTrace() *SendTrace { return &SendTrace{now: time.Now} }

func (t *SendTrace) stamp(field *time.Time) {
	if t == nil {
		return
	}
	*field = t.now()
}

// EntryAndHeader covers NCS_send function entry plus header attachment
// (Table I rows 1–2).
func (t *SendTrace) EntryAndHeader() time.Duration { return t.tHeader.Sub(t.tEnter) }

// Queue covers queuing the message request (row 3).
func (t *SendTrace) Queue() time.Duration { return t.tQueued.Sub(t.tHeader) }

// SwitchToSendThread covers the context switch into the Send Thread
// plus its dequeue (rows 4–5).
func (t *SendTrace) SwitchToSendThread() time.Duration { return t.tDequeued.Sub(t.tQueued) }

// DataTransfer is the interface transmission itself — the only
// component Table I classifies as data transfer overhead (row 6).
func (t *SendTrace) DataTransfer() time.Duration { return t.tTransmitted.Sub(t.tDequeued) }

// SwitchBack covers freeing the request and the context switch back to
// NCS_send (rows 7–8).
func (t *SendTrace) SwitchBack() time.Duration { return t.tReturned.Sub(t.tTransmitted) }

// Exit covers NCS_send function exit.
func (t *SendTrace) Exit() time.Duration { return t.tExit.Sub(t.tReturned) }

// SessionOverhead is the total minus the data transfer (the paper's
// session overhead category).
func (t *SendTrace) SessionOverhead() time.Duration {
	return t.Total() - t.DataTransfer()
}

// Total is the complete NCS_send duration.
func (t *SendTrace) Total() time.Duration { return t.tExit.Sub(t.tEnter) }

// Table formats the breakdown in the layout of Table I.
func (t *SendTrace) Table() string {
	var b strings.Builder
	total := t.Total()
	pct := func(d time.Duration) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(d) / float64(total)
	}
	row := func(name string, d time.Duration) {
		fmt.Fprintf(&b, "  %-46s %10v %5.1f%%\n", name, d, pct(d))
	}
	b.WriteString("Session Overhead\n")
	row("NCS_send entry + header attach", t.EntryAndHeader())
	row("Queuing a message request", t.Queue())
	row("Context switch to Send Thread + dequeue", t.SwitchToSendThread())
	row("Free request + context switch back", t.SwitchBack())
	row("NCS_send exit", t.Exit())
	row("Session overhead total", t.SessionOverhead())
	b.WriteString("Data Transfer Overhead\n")
	row("Transmitting via interface", t.DataTransfer())
	fmt.Fprintf(&b, "  %-46s %10v %5.1f%%\n", "Total", total, 100.0)
	return b.String()
}
