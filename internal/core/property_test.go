package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ncs/internal/atm"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/transport"
)

// TestPropertyReliableDeliveryRandomised sends randomly sized messages
// over randomly lossy ATM circuits with randomly chosen reliable
// configurations; every message must arrive intact and in order.
func TestPropertyReliableDeliveryRandomised(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised soak test")
	}
	rng := rand.New(rand.NewSource(2024))

	for trial := 0; trial < 8; trial++ {
		ec := []errctl.Algorithm{errctl.SelectiveRepeat, errctl.GoBackN}[rng.Intn(2)]
		fc := []flowctl.Algorithm{flowctl.None, flowctl.Credit, flowctl.Window}[rng.Intn(3)]
		loss := rng.Float64() * 0.08
		sdu := 256 << rng.Intn(3) // 256, 512, 1024

		opts := Options{
			Interface:    transport.ACI,
			ErrorControl: ec,
			FlowControl:  fc,
			SDUSize:      sdu,
			AckTimeout:   40 * time.Millisecond,
			QoS:          atm.QoS{CellLossRate: loss, Seed: rng.Int63() + 1},
		}
		conn, peer, cleanup := newPairT(t, opts)

		const messages = 5
		sent := make([][]byte, messages)
		for i := range sent {
			msg := make([]byte, 1+rng.Intn(8000))
			rng.Read(msg)
			sent[i] = msg
		}
		errCh := make(chan error, 1)
		go func() {
			for _, m := range sent {
				if err := conn.Send(m); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
		for i := range sent {
			got, err := peer.Recv()
			if err != nil {
				t.Fatalf("trial %d (ec=%v fc=%v loss=%.3f): recv %d: %v",
					trial, ec, fc, loss, i, err)
			}
			if !bytes.Equal(got, sent[i]) {
				t.Fatalf("trial %d (ec=%v fc=%v loss=%.3f sdu=%d): message %d corrupted",
					trial, ec, fc, loss, sdu, i)
			}
		}
		if err := <-errCh; err != nil {
			t.Fatalf("trial %d: send: %v", trial, err)
		}
		cleanup()
	}
}

// TestUnreliableLossMetadata verifies the Lost counter on unreliable
// transfers: with forced SDU loss, delivered messages report their
// missing segments.
func TestUnreliableLossMetadata(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.ACI,
		ErrorControl: errctl.None,
		FlowControl:  flowctl.None,
		SDUSize:      256,
		QoS:          atm.QoS{CellLossRate: 0.12, Seed: 77},
	})
	defer cleanup()

	var delivered, lostSDUs int
	for i := 0; i < 40; i++ {
		if err := conn.Send(make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		// A frame whose end SDU vanished never completes; the playout
		// deadline skips it.
		m, err := peer.RecvMessageTimeout(100 * time.Millisecond)
		if err == nil {
			delivered++
			lostSDUs += m.Lost
		}
	}
	if delivered == 0 {
		t.Fatal("no messages delivered at 12% cell loss")
	}
	if lostSDUs == 0 {
		t.Fatal("Lost metadata never reported missing SDUs despite loss")
	}
}

// TestFastPathInterleavedWithThreaded ensures a system can hold both
// kinds of connections at once.
func TestFastPathInterleavedWithThreaded(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	a, _ := nw.NewSystem("mix-a")
	b, _ := nw.NewSystem("mix-b")

	threaded, err := a.Connect("mix-b", Options{Interface: transport.HPI})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := a.Connect("mix-b", Options{Interface: transport.HPI, FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := b.AcceptTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := b.AcceptTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		if err := threaded.Send([]byte("threaded")); err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 1)
		go func() { errCh <- fast.Send([]byte("fast")) }()
		if m, err := pt.Recv(); err != nil || string(m) != "threaded" {
			t.Fatalf("threaded recv: %q, %v", m, err)
		}
		if m, err := pf.Recv(); err != nil || string(m) != "fast" {
			t.Fatalf("fast recv: %q, %v", m, err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionPruningBounded verifies long-lived connections do not
// accumulate unbounded reassembly state.
func TestSessionPruningBounded(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{Interface: transport.HPI})
	defer cleanup()

	errCh := make(chan error, 1)
	const n = maxTrackedSessions * 3
	go func() {
		for i := 0; i < n; i++ {
			if err := conn.Send([]byte{1}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < n; i++ {
		if _, err := peer.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	peer.mu.Lock()
	tracked := len(peer.sessions)
	peer.mu.Unlock()
	if tracked > maxTrackedSessions+8 {
		t.Fatalf("session table grew to %d entries (bound %d)", tracked, maxTrackedSessions)
	}
}

// TestWindowFlowControlSpansSessions is a regression test: flow control
// indexes transmissions with a connection-lifetime counter, so the
// window keeps pacing across many small messages whose per-session SDU
// sequence numbers all restart at zero.
func TestWindowFlowControlSpansSessions(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.HPI,
		FlowControl:  flowctl.Window,
		ErrorControl: errctl.SelectiveRepeat,
		FlowConfig:   flowctl.Config{WindowSize: 4},
		SDUSize:      64,
	})
	defer cleanup()

	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if err := conn.Send([]byte{byte(i)}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < 50; i++ {
		m, err := peer.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m[0] != byte(i) {
			t.Fatalf("message %d out of order", i)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestHeartbeatDetectsSilentPeer builds a connection whose "peer" is a
// raw transport that never answers: the heartbeat must declare it
// unreachable and fail blocked receivers with ErrPeerUnreachable.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	data, silentData := transport.HPIPair()
	ctrl, silentCtrl := transport.HPIPair()
	defer silentData.Close()
	defer silentCtrl.Close()

	opts := Options{
		Interface: transport.HPI,
		Heartbeat: 20 * time.Millisecond,
	}.withDefaults()
	conn := newConnection(nil, "silent-peer", 1, opts, data, ctrl, true)
	defer conn.Close()

	start := time.Now()
	_, err := conn.Recv()
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("detection took %v, want ≈3 heartbeat intervals", elapsed)
	}
}

// TestHeartbeatKeepsHealthyConnectionAlive verifies pings/pongs flow
// and an idle-but-healthy connection is not declared dead.
func TestHeartbeatKeepsHealthyConnectionAlive(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface: transport.HPI,
		Heartbeat: 15 * time.Millisecond,
	})
	defer cleanup()

	// Idle across many intervals, then exchange a message: both
	// directions must still work.
	time.Sleep(150 * time.Millisecond)
	errCh := make(chan error, 1)
	go func() { errCh <- conn.Send([]byte("still alive")) }()
	m, err := peer.RecvTimeout(2 * time.Second)
	if err != nil || string(m) != "still alive" {
		t.Fatalf("recv after idle: %q, %v", m, err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if conn.Stats().ControlReceived == 0 {
		t.Fatal("no pongs observed during idle period")
	}
}

// TestTraceStagesMonotonic checks the Table I instrumentation is
// internally consistent across many sends.
func TestTraceStagesMonotonic(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{Interface: transport.HPI, Instrument: true})
	defer cleanup()
	go func() {
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		tr, err := conn.SendInstrumented([]byte{9})
		if err != nil {
			t.Fatal(err)
		}
		for name, d := range map[string]time.Duration{
			"EntryAndHeader": tr.EntryAndHeader(),
			"Queue":          tr.Queue(),
			"SwitchToSend":   tr.SwitchToSendThread(),
			"DataTransfer":   tr.DataTransfer(),
			"SwitchBack":     tr.SwitchBack(),
			"Exit":           tr.Exit(),
		} {
			if d < 0 {
				t.Fatalf("stage %s negative: %v", name, d)
			}
		}
		if tr.Total() < tr.DataTransfer() {
			t.Fatal("total < data transfer")
		}
	}
}
