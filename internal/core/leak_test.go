package core

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ncs/internal/buf"
	"ncs/internal/flowctl"
)

// TestMain is the package's goleak-style audit: after every test has
// run (and closed its networks), the process must quiesce back to the
// pre-test goroutine count and to zero outstanding pooled buffers.
// Goroutine leaks are connection threads that survived Close; buffer
// leaks are retained receive references nothing will ever release
// (e.g. reassembly state of a session abandoned at teardown).
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if err := awaitQuiescence(baseline, 5*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// awaitQuiescence polls until the goroutine count returns to the
// baseline, no pooled buffers remain outstanding, and no flow-control
// deadline timers are still armed, tolerating the short tail of
// exiting threads after the final Close. The timer check catches acked
// sends that abandon their AcquireTimeout timers: each would pin its
// sender (and its connection) on the runtime timer heap until the full
// ack deadline elapsed.
func awaitQuiescence(baseline int, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		goroutines := runtime.NumGoroutine()
		bufs := buf.Outstanding()
		timers := flowctl.PendingTimers()
		if goroutines <= baseline && bufs == 0 && timers == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<20)
			stack = stack[:runtime.Stack(stack, true)]
			return fmt.Errorf("leak audit: %d goroutines (baseline %d), %d pooled buffer refs outstanding, %d flowctl timers armed\n%s",
				goroutines, baseline, bufs, timers, stack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
