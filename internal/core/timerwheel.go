package core

import (
	"sync"
	"time"
)

// The timer wheel is the sharded runtime's answer to timer scale-out,
// the same trade the shard pool makes for goroutines. The threaded
// runtime gives every connection a heartbeat ticker goroutine and every
// reliable send its own runtime timer — faithful to the paper's
// thread-per-function architecture, and fine at hundreds of
// connections. At 100k connections that is 100k runtime timers parked
// in the Go timer heap for the common case where nothing ever fires.
//
// Instead, a System owns one hashed timing wheel: a ring of slots
// advanced by a single coarse ticker, with each armed timer hashed to
// the slot matching its deadline (plus a rounds counter for deadlines
// beyond one revolution). Arming, re-arming, and cancelling are O(1)
// appends and flag flips; the wheel goroutine exists only while the
// wheel is running, and the wheel itself starts lazily on the first
// armed timer — a System whose connections never arm one (no
// heartbeats, no reliable retransmissions pending) costs zero timers
// and zero timer goroutines no matter how many connections it carries.
//
// The price is granularity: a wheel timer fires up to one tick late.
// Both wheel clients are tolerant — heartbeat silence windows are
// multiples of the (millisecond-scale) interval, and a retransmission
// timer that fires a tick late only delays recovery, never correctness
// (the acknowledgment clock is event-driven).

const (
	// wheelTick is the wheel's granularity: armed timers fire within
	// one tick after their deadline. 1ms keeps the shortest adaptive
	// retransmission timeouts (minAdaptiveTimeout) honest.
	wheelTick = time.Millisecond
	// wheelSlotCount is the ring size; deadlines beyond
	// wheelTick×wheelSlotCount carry a rounds counter.
	wheelSlotCount = 256
)

// wheelTimer is one timer on the wheel. Entries in the ring reference
// the timer together with the generation at arm time; Reset and Stop
// bump the generation, so a stale ring entry (an earlier arm that was
// since re-armed or cancelled) is recognised and skipped when its slot
// comes up — cancellation never has to search the ring.
type wheelTimer struct {
	w  *timerWheel
	fn func() // runs on the wheel goroutine, outside the wheel lock

	// Guarded by w.mu.
	gen   uint64
	armed bool
}

// wheelEntry is one arming of a timer, parked in a slot.
type wheelEntry struct {
	t      *wheelTimer
	gen    uint64
	rounds int // full revolutions remaining before it fires
}

// timerWheel is the System-wide hashed timing wheel.
type timerWheel struct {
	mu    sync.Mutex
	slots [wheelSlotCount][]wheelEntry
	pos   int // slot the next tick advances into
	live  int // armed timers

	started bool
	stopped bool
	quit    chan struct{}
	wg      sync.WaitGroup

	// fired is scratch for the entries one tick expires, reused across
	// ticks so steady-state firing does not allocate.
	fired []wheelEntry
}

func newTimerWheel() *timerWheel {
	return &timerWheel{quit: make(chan struct{})}
}

// newTimer creates an unarmed timer whose fn runs on the wheel
// goroutine when it expires. fn must not block for long — it shares the
// goroutine with every other timer on the System — and may re-arm its
// own timer (periodic use) or arm others.
func (w *timerWheel) newTimer(fn func()) *wheelTimer {
	return &wheelTimer{w: w, fn: fn}
}

// reset (re-)arms the timer to fire d from now, cancelling any earlier
// arming. It starts the wheel goroutine on first use.
func (t *wheelTimer) reset(d time.Duration) {
	w := t.w
	ticks := int(d / wheelTick)
	// Rounding up plus one guard tick guarantees the timer never fires
	// early: the current tick may be mid-flight.
	if time.Duration(ticks)*wheelTick < d {
		ticks++
	}
	ticks++
	w.mu.Lock()
	t.gen++
	if !t.armed {
		t.armed = true
		w.live++
		mWheelArmed.Inc()
	}
	slot := (w.pos + ticks) % wheelSlotCount
	w.slots[slot] = append(w.slots[slot], wheelEntry{t: t, gen: t.gen, rounds: ticks / wheelSlotCount})
	w.startLocked()
	w.mu.Unlock()
}

// stop cancels the timer if armed. A callback already extracted for
// firing still runs (the time.Timer.Stop caveat); wheel clients
// tolerate one late fire.
func (t *wheelTimer) stop() {
	w := t.w
	w.mu.Lock()
	t.gen++
	if t.armed {
		t.armed = false
		w.live--
		mWheelArmed.Dec()
	}
	w.mu.Unlock()
}

// pending reports whether the timer is armed.
func (t *wheelTimer) pending() bool {
	t.w.mu.Lock()
	defer t.w.mu.Unlock()
	return t.armed
}

// startLocked launches the wheel goroutine on the first armed timer. A
// wheel on a System already shut down stays inert: timers arm but never
// fire, mirroring the inert shards a racing Connect gets.
func (w *timerWheel) startLocked() {
	if w.started || w.stopped {
		return
	}
	w.started = true
	w.wg.Add(1)
	go w.loop()
}

// stop terminates the wheel goroutine and inerts the wheel.
func (w *timerWheel) stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	running := w.started
	w.mu.Unlock()
	close(w.quit)
	if running {
		w.wg.Wait()
	}
}

// liveTimers reports the number of armed timers.
func (w *timerWheel) liveTimers() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.live
}

func (w *timerWheel) loop() {
	defer w.wg.Done()
	ticker := time.NewTicker(wheelTick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.advance()
		case <-w.quit:
			return
		}
	}
}

// advance moves the wheel one slot and fires the entries that came due.
// Callbacks run outside the lock so they may arm timers freely.
func (w *timerWheel) advance() {
	mWheelSweeps.Inc()
	w.mu.Lock()
	w.pos = (w.pos + 1) % wheelSlotCount
	slot := w.slots[w.pos]
	kept := slot[:0]
	fired := w.fired[:0]
	for _, e := range slot {
		switch {
		case e.gen != e.t.gen:
			// Stale: re-armed or stopped since this entry was parked.
		case e.rounds > 0:
			e.rounds--
			kept = append(kept, e)
		default:
			e.t.armed = false
			w.live--
			mWheelArmed.Dec()
			fired = append(fired, e)
		}
	}
	// Zero the dropped tail so dead entries do not pin their timers
	// until the slot's backing array is overwritten.
	for i := len(kept); i < len(slot); i++ {
		slot[i] = wheelEntry{}
	}
	w.slots[w.pos] = kept
	w.mu.Unlock()

	for i, e := range fired {
		e.t.fn()
		fired[i] = wheelEntry{}
	}
	w.fired = fired[:0]
}
