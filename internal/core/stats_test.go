package core

import (
	"testing"
	"time"

	"ncs/internal/atm"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/transport"
)

func TestStatsCountReliableTraffic(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.HPI,
		FlowControl:  flowctl.Credit,
		ErrorControl: errctl.SelectiveRepeat,
		SDUSize:      1024,
	})
	defer cleanup()

	const messages, msgSize = 5, 4096
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < messages; i++ {
			if err := conn.Send(make([]byte, msgSize)); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < messages; i++ {
		if _, err := peer.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	s := conn.Stats()
	if s.MessagesSent != messages {
		t.Errorf("MessagesSent = %d, want %d", s.MessagesSent, messages)
	}
	wantSDUs := uint64(messages * msgSize / 1024)
	if s.SDUsSent != wantSDUs {
		t.Errorf("SDUsSent = %d, want %d (lossless path)", s.SDUsSent, wantSDUs)
	}
	if s.BytesSent != messages*msgSize {
		t.Errorf("BytesSent = %d, want %d", s.BytesSent, messages*msgSize)
	}
	if s.Retransmissions != 0 {
		t.Errorf("Retransmissions = %d on a lossless link", s.Retransmissions)
	}
	if s.ControlReceived == 0 {
		t.Error("ControlReceived = 0; credits/acks expected")
	}

	p := peer.Stats()
	if p.MessagesReceived != messages {
		t.Errorf("peer MessagesReceived = %d, want %d", p.MessagesReceived, messages)
	}
	if p.SDUsReceived != wantSDUs {
		t.Errorf("peer SDUsReceived = %d, want %d", p.SDUsReceived, wantSDUs)
	}
	if p.BytesReceived != messages*msgSize {
		t.Errorf("peer BytesReceived = %d, want %d", p.BytesReceived, messages*msgSize)
	}
	if p.ControlSent == 0 {
		t.Error("peer ControlSent = 0; acks expected")
	}
}

func TestStatsCountRetransmissions(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.ACI,
		ErrorControl: errctl.SelectiveRepeat,
		FlowControl:  flowctl.None,
		SDUSize:      256,
		AckTimeout:   40 * time.Millisecond,
		QoS:          atm.QoS{CellLossRate: 0.15, Seed: 31},
	})
	defer cleanup()

	errCh := make(chan error, 1)
	go func() { errCh <- conn.Send(make([]byte, 8192)) }()
	if _, err := peer.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	s := conn.Stats()
	if s.Retransmissions == 0 {
		t.Error("Retransmissions = 0 at 15% cell loss; error control idle?")
	}
	if s.SDUsSent <= 8192/256 {
		t.Errorf("SDUsSent = %d; should exceed the %d originals", s.SDUsSent, 8192/256)
	}
}

func TestStatsFastPath(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface: transport.HPI,
		FastPath:  true,
	})
	defer cleanup()

	errCh := make(chan error, 1)
	go func() { errCh <- conn.Send(make([]byte, 2048)) }()
	if _, err := peer.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	s := conn.Stats()
	if s.MessagesSent != 1 || s.BytesSent != 2048 {
		t.Errorf("fast path stats: %+v", s)
	}
	if p := peer.Stats(); p.MessagesReceived != 1 || p.BytesReceived != 2048 {
		t.Errorf("fast path peer stats: %+v", p)
	}
}
