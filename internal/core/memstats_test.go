package core

import (
	"testing"
	"time"

	"ncs/internal/transport"
)

// TestMemStatsLazyFootprint checks that MemStats sees the memory diet:
// an idle sharded connection counts little more than its bare struct,
// and traffic materialises the lazy state the estimate then reflects.
func TestMemStatsLazyFootprint(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	sa, err := nw.NewSystem("mem-a")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := nw.NewSystem("mem-b")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Interface: transport.HPI, Runtime: RuntimeSharded}
	conn, err := sa.Connect("mem-b", opts)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := sb.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	defer peer.Close()

	idle := sa.MemStats()
	if idle.Conns != 1 {
		t.Fatalf("Conns = %d, want 1", idle.Conns)
	}
	if idle.LiveSessions != 0 {
		t.Fatalf("idle LiveSessions = %d, want 0", idle.LiveSessions)
	}
	if idle.PendingTimers != 0 {
		t.Fatalf("idle PendingTimers = %d, want 0 (no heartbeat, no sends)", idle.PendingTimers)
	}
	// The idle estimate must stay near the bare struct: no send/recv
	// queues, no flow control halves, no session tables.
	if per := idle.BytesPerConn(); per > 2048 {
		t.Fatalf("idle BytesPerConn = %.0f, want <= 2048", per)
	}

	if err := conn.Send([]byte("wake up")); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.RecvTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	active := sa.MemStats()
	if active.EstimatedBytes <= idle.EstimatedBytes {
		t.Fatalf("active estimate %d not above idle %d: lazy state not counted",
			active.EstimatedBytes, idle.EstimatedBytes)
	}
	// The receiving side materialised its delivered queue and a session.
	peerStats := sb.MemStats()
	if peerStats.EstimatedBytes <= idle.EstimatedBytes {
		t.Fatalf("receiver estimate %d not above idle floor %d",
			peerStats.EstimatedBytes, idle.EstimatedBytes)
	}
}
