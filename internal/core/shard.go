package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/buf"
	"ncs/internal/errctl"
	"ncs/internal/packet"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The sharded runtime is the scale-out alternative to the paper's
// thread-per-function architecture. The paper gives every connection
// dedicated Send/Receive (and Control Send/Receive) threads — faithful,
// and ideal up to a few hundred connections, but each connection then
// costs four goroutines and four channel hops whether it is busy or
// idle. A server facing thousands of connections wants the opposite
// trade: a small fixed pool of event loops that amortise scheduling and
// syscall cost across every connection they own.
//
// A System lazily builds one pool of I/O shards (default GOMAXPROCS;
// see SetShards). Connections established with Options.Runtime ==
// RuntimeSharded hash onto a shard by connection ID and are driven
// entirely by that shard's loop:
//
//   - receives: the shard demultiplexes arrivals across all of its
//     connections — via transport.Poller (HPI exposes its arrival queue
//     plus a readiness doorbell, so an idle connection costs zero
//     goroutines) or, for transports that cannot be polled (SCI rides a
//     kernel socket, ACI a cell reassembler), via a minimal pump
//     goroutine that feeds the loop;
//   - sends: NCS_send callers run flow-control admission on their own
//     goroutine exactly as in the threaded runtime, then deposit SDUs
//     on the shard's outbound queue; each loop cycle drains the queue
//     and issues one vectored SendBatch per connection — PR 1's
//     per-connection 16-SDU coalescing extended across connections, so
//     one wakeup flushes many connections' traffic;
//   - flow/error control state stays strictly per-connection (the same
//     objects the threads drive); the shard serialises all receive-side
//     protocol work for a connection on one goroutine, which is the
//     same single-writer discipline the per-connection Receive Thread
//     provided;
//   - the §4.2 fast path bypasses shards exactly as it bypasses
//     threads: Options.FastPath takes precedence over Options.Runtime.
//
// Backpressure never blocks a shard: when a connection's delivery
// queue (or bound Inbox) is full, its completed messages park on a
// per-connection stall list and its data path pauses; the consumer's
// next Recv rings the shard's doorbell to resume. Control packets keep
// flowing while data is stalled, so acknowledgment clocks never stop.
//
// The shard loops are plain goroutines (kernel-level threads in the
// paper's §4.1 taxonomy) on purpose: they block in transport writes,
// and a user-level package would stall every connection on the shard
// for the duration of one blocking call — the exact pathology Figure
// 10 measures.

// Runtime selects a connection's runtime architecture.
type Runtime int

const (
	// RuntimeThreaded is the paper's architecture: dedicated Send,
	// Receive, Control Send, and Control Receive threads per
	// connection. Lowest latency at modest connection counts; cost
	// grows linearly with connections. The default.
	RuntimeThreaded Runtime = iota
	// RuntimeSharded drives the connection from its System's shard
	// pool: a fixed set of event loops demultiplexing receives and
	// coalescing sends across all sharded connections. Goroutine count
	// stays O(shards) regardless of connection count (on pollable
	// transports), at the price of one queue hop per packet.
	RuntimeSharded
)

// String implements fmt.Stringer.
func (r Runtime) String() string {
	switch r {
	case RuntimeThreaded:
		return "threaded"
	case RuntimeSharded:
		return "sharded"
	default:
		return "runtime?"
	}
}

// shardRecvBudget bounds how many packets one cycle drains from a
// single connection's data (and control) path before yielding, so one
// busy connection cannot starve its shard-mates. A connection with
// leftover backlog is simply re-queued.
const shardRecvBudget = 64

// pumpDepth is the inbound queue between a pump goroutine and the
// shard loop for non-pollable transports. The pump blocks when it
// fills — per-connection backpressure toward the transport, exactly
// like a Receive Thread that stopped reading.
const pumpDepth = 64

// outItem is one outbound unit deposited on a shard's queue: a data
// SDU or a control packet, with the transmission bookkeeping the
// threaded Send Thread would have carried.
type outItem struct {
	c          *Connection
	sdu        errctl.SDU
	ctrl       packet.Control
	isCtrl     bool
	ctrlPath   bool          // write to the control connection (false: data)
	trace      *SendTrace    // stamped as the threaded Send Thread would
	done       chan struct{} // non-nil: deposit a token after transmission
	slot       bool          // release one of the connection's send slots after transmission
	streamSlot bool          // release one of the connection's stream send slots after transmission
}

// shardConn is a connection's attachment to its shard. Fields marked
// loop-owned are touched only by the shard loop goroutine.
type shardConn struct {
	shard *shard

	dataPoll transport.Poller // non-nil: poll the data transport directly
	ctrlPoll transport.Poller // non-nil: poll the control transport directly
	dataIn   chan *buf.Buffer // pump-fed when dataPoll is nil
	ctrlIn   chan *buf.Buffer // pump-fed when ctrlPoll is nil (nil in in-band mode)

	queued       atomic.Bool   // on the shard's ready list
	inboxWaiting atomic.Bool   // registered as a bound Inbox's wake waiter
	hasStalled   atomic.Bool   // completed messages await delivery space
	sendSlots    chan struct{} // bounds outbound data SDUs in the shard queue

	// Loop-owned state.
	stalled  []Message // completed messages awaiting delivery space
	lastPing time.Time // heartbeat bookkeeping

	// Loop-owned cycle scratch: the per-connection batches one flush
	// builds and writes.
	inCycle   bool
	dataBatch []*buf.Buffer
	dataItems []outItem
	ctrlBatch []*buf.Buffer
	ctrlItems []outItem
}

// shard is one event loop of a System's pool.
type shard struct {
	sys *System
	id  int

	doorbell chan struct{} // level-triggered wakeup, capacity 1
	quit     chan struct{}

	// serviceMu is held by the loop across each cycle. Connection.Close
	// acquires it (after deregistering) as a barrier: once it is
	// released, no in-flight cycle is still dispatching the closing
	// connection's packets, so the session table can be reaped.
	serviceMu sync.Mutex

	mu      sync.Mutex
	conns   map[*Connection]struct{}
	ready   []*Connection
	outQ    []outItem
	hbEvery time.Duration // min heartbeat interval among registered conns
	hbTimer *wheelTimer   // periodic sweep on the System's timer wheel

	// Loop-owned scratch, ping-ponged with the locked slices.
	readyScratch []*Connection
	outScratch   []outItem
	active       []*Connection

	// hbScratch is heartbeatSweep's connection snapshot, reused across
	// sweeps; the wheel goroutine is its sole user.
	hbScratch []*Connection

	wakeups        atomic.Uint64
	batches        atomic.Uint64
	batchedPackets atomic.Uint64
}

func newShard(sys *System, id int) *shard {
	return &shard{
		sys:      sys,
		id:       id,
		doorbell: make(chan struct{}, 1),
		quit:     make(chan struct{}),
		conns:    make(map[*Connection]struct{}),
	}
}

// ring wakes the loop; a full doorbell already guarantees a wakeup.
func (sh *shard) ring() {
	select {
	case sh.doorbell <- struct{}{}:
	default:
	}
}

// requeue flags c for service. Idempotent while the flag is pending;
// the loop clears it just before servicing, so an event arriving
// mid-service re-queues the connection for another pass. Membership is
// checked under the lock so a stale wakeup — a transport notify or an
// afterRecv drain racing Close — can never resurrect a deregistered
// connection on the ready list (the loop must not touch its state
// after unregister's barrier).
func (sh *shard) requeue(c *Connection) {
	sc := c.sh
	if sc.queued.Swap(true) {
		return
	}
	sh.mu.Lock()
	if _, registered := sh.conns[c]; !registered {
		sh.mu.Unlock()
		return
	}
	sh.ready = append(sh.ready, c)
	sh.mu.Unlock()
	sh.ring()
}

// enqueueOut deposits one outbound item; it reports false when the
// connection has closed.
func (sh *shard) enqueueOut(it outItem) bool {
	select {
	case <-it.c.closedCh:
		return false
	default:
	}
	sh.mu.Lock()
	sh.outQ = append(sh.outQ, it)
	sh.mu.Unlock()
	sh.ring()
	return true
}

// register attaches a connection: readiness hooks ring this shard's
// doorbell, and an initial requeue catches anything that arrived
// before the hooks were installed.
func (sh *shard) register(c *Connection) {
	sc := c.sh
	sh.mu.Lock()
	sh.conns[c] = struct{}{}
	var arm time.Duration
	if hb := c.opts.Heartbeat; hb > 0 && (sh.hbEvery == 0 || hb < sh.hbEvery) {
		sh.hbEvery = hb
		arm = hb
	}
	sh.mu.Unlock()
	if arm > 0 {
		sh.armHeartbeat(arm)
	}
	if sc.dataPoll != nil {
		sc.dataPoll.SetRecvNotify(func() { sh.requeue(c) })
	}
	if sc.ctrlPoll != nil {
		sc.ctrlPoll.SetRecvNotify(func() { sh.requeue(c) })
	}
	sh.requeue(c)
}

// unregister detaches a closing connection and barriers against the
// cycle that may be dispatching its packets. After unregister returns,
// the loop will never run the connection's receive-side protocol again
// (leftover outbound items still flush — into a closed transport,
// which releases them). The caller may then reap session state.
func (sh *shard) unregister(c *Connection) {
	sc := c.sh
	if sc.dataPoll != nil {
		sc.dataPoll.SetRecvNotify(nil)
	}
	if sc.ctrlPoll != nil {
		sc.ctrlPoll.SetRecvNotify(nil)
	}
	sh.mu.Lock()
	delete(sh.conns, c)
	for i, rc := range sh.ready {
		if rc == c {
			sh.ready = append(sh.ready[:i], sh.ready[i+1:]...)
			break
		}
	}
	// Recompute the heartbeat minimum so the sweep timer disarms once
	// the last heartbeat-enabled connection is gone (register only
	// ratchets it down). Connections without heartbeat cannot have
	// set it, so the scan is skipped on their (common) close.
	var disarm *wheelTimer
	if c.opts.Heartbeat > 0 {
		sh.hbEvery = 0
		for rc := range sh.conns {
			if hb := rc.opts.Heartbeat; hb > 0 && (sh.hbEvery == 0 || hb < sh.hbEvery) {
				sh.hbEvery = hb
			}
		}
		if sh.hbEvery == 0 {
			disarm = sh.hbTimer
		}
	}
	sh.mu.Unlock()
	if disarm != nil {
		disarm.stop()
	}
	sh.serviceMu.Lock()
	//lint:ignore SA2001 empty critical section: the acquire itself is the barrier.
	sh.serviceMu.Unlock()
}

// loop is the shard's event loop. Heartbeats do not wake it: the
// System's timer wheel sweeps registered connections directly
// (armHeartbeat), so an all-idle shard sleeps in this select with no
// ticker armed.
func (sh *shard) loop() {
	defer sh.sys.shardWG.Done()
	for {
		select {
		case <-sh.doorbell:
		case <-sh.quit:
			return
		}
		sh.wakeups.Add(1)
		mShardWakeups.IncAt(uint32(sh.id))
		sh.cycle()
	}
}

// armHeartbeat (re)schedules the shard's heartbeat sweep on the
// System's timer wheel, creating the timer on first use. The timer is
// built outside sh.mu: System.timerWheel takes shardMu, which orders
// before sh.mu elsewhere (ShardStats).
func (sh *shard) armHeartbeat(hb time.Duration) {
	sh.mu.Lock()
	t := sh.hbTimer
	sh.mu.Unlock()
	if t == nil {
		nt := sh.sys.timerWheel().newTimer(sh.heartbeatTick)
		sh.mu.Lock()
		if sh.hbTimer == nil {
			sh.hbTimer = nt
		}
		t = sh.hbTimer
		sh.mu.Unlock()
	}
	t.reset(hb)
}

// heartbeatTick is the wheel callback: one sweep, then re-arm at the
// current minimum interval. A shard whose last heartbeat connection
// left (hbEvery == 0) simply does not re-arm.
func (sh *shard) heartbeatTick() {
	select {
	case <-sh.quit:
		return
	default:
	}
	sh.heartbeatSweep()
	sh.mu.Lock()
	hb := sh.hbEvery
	t := sh.hbTimer
	sh.mu.Unlock()
	if hb > 0 && t != nil {
		t.reset(hb)
	}
}

// cycle is one turn of the loop: flush outbound, service every ready
// connection, flush the outbound traffic those services produced
// (acknowledgments, credits) before sleeping again.
func (sh *shard) cycle() {
	sh.serviceMu.Lock()
	defer sh.serviceMu.Unlock()
	mShardCycles.IncAt(uint32(sh.id))

	sh.flushOut()

	sh.mu.Lock()
	ready := sh.ready
	sh.ready = sh.readyScratch[:0]
	sh.readyScratch = ready
	sh.mu.Unlock()

	for i, c := range ready {
		c.sh.queued.Store(false)
		sh.service(c)
		ready[i] = nil
	}

	sh.flushOut()
}

// flushOut drains the outbound queue, building one data batch and one
// control batch per connection, then issues one vectored SendBatch per
// batch — the cross-connection coalescing that lets a single wakeup
// flush many connections' queued SDUs.
func (sh *shard) flushOut() {
	sh.mu.Lock()
	out := sh.outQ
	sh.outQ = sh.outScratch[:0]
	sh.outScratch = out
	sh.mu.Unlock()
	if len(out) == 0 {
		return
	}

	active := sh.active[:0]
	for i := range out {
		it := &out[i]
		sc := it.c.sh
		var sb *buf.Buffer
		if it.isCtrl {
			sb = buf.GetCap(packet.ControlHeaderSize + len(it.ctrl.Body))
			sb.B = it.ctrl.Marshal(sb.B)
			it.c.stats.controlSent.Add(1)
		} else {
			if it.trace != nil {
				it.trace.stamp(&it.trace.tDequeued)
			}
			sb = buf.GetCap(packet.DataHeaderSize + len(it.sdu.Payload))
			sb.B = packet.AppendSDU(sb.B, it.sdu.Header, it.sdu.Payload)
		}
		if it.ctrlPath {
			sc.ctrlBatch = append(sc.ctrlBatch, sb)
			sc.ctrlItems = append(sc.ctrlItems, *it)
		} else {
			sc.dataBatch = append(sc.dataBatch, sb)
			sc.dataItems = append(sc.dataItems, *it)
		}
		if !sc.inCycle {
			sc.inCycle = true
			active = append(active, it.c)
		}
	}
	sh.active = active

	for i, c := range active {
		sc := c.sh
		var failed bool
		if len(sc.dataBatch) > 0 {
			sh.batches.Add(1)
			sh.batchedPackets.Add(uint64(len(sc.dataBatch)))
			mCoalesceDepth.Observe(int64(len(sc.dataBatch)))
			if err := c.data.SendBatch(sc.dataBatch); err != nil { // consumes the buffer refs
				failed = true
			}
			sh.finishItems(c, sc.dataItems)
		}
		if len(sc.ctrlBatch) > 0 {
			sh.batches.Add(1)
			sh.batchedPackets.Add(uint64(len(sc.ctrlBatch)))
			if err := c.ctrl.SendBatch(sc.ctrlBatch); err != nil {
				failed = true
			}
			sh.finishItems(c, sc.ctrlItems)
		}
		sc.dataBatch = sc.dataBatch[:0]
		sc.ctrlBatch = sc.ctrlBatch[:0]
		clearItems(&sc.dataItems)
		clearItems(&sc.ctrlItems)
		sc.inCycle = false
		if failed {
			// The transport died; propagate as the threaded Send
			// Thread does, from a fresh goroutine (Close barriers on
			// this loop via serviceMu).
			go c.Close()
		}
		active[i] = nil
	}

	clearItems(&out)
	sh.outScratch = out
}

// finishItems performs per-item post-transmission bookkeeping: trace
// stamps, done tokens, send-slot releases.
func (sh *shard) finishItems(c *Connection, items []outItem) {
	for i := range items {
		it := &items[i]
		if it.trace != nil {
			it.trace.stamp(&it.trace.tTransmitted)
		}
		if !it.isCtrl {
			telemetry.TraceStamp(c.id, it.sdu.Header.SessionID, telemetry.StageWireOut)
		}
		if it.done != nil {
			it.done <- struct{}{} // one-token confirmation (pooled chan)
		}
		if it.slot {
			<-c.sh.sendSlots
		}
		if it.streamSlot {
			<-c.streamSlotCh()
		}
	}
}

// clearItems zeroes a drained item slice so payload views, traces, and
// done channels do not stay pinned until the scratch is overwritten.
func clearItems(items *[]outItem) {
	s := *items
	for i := range s {
		s[i] = outItem{}
	}
	*items = s[:0]
}

// service runs one connection's receive side: flush stalled
// deliveries, then drain control and data arrivals up to the budget.
func (sh *shard) service(c *Connection) {
	sc := c.sh
	if len(sc.stalled) > 0 && !sc.flushStalled(c) {
		// Delivery is still blocked: keep control flowing (the ack
		// clock must not stop) but leave data parked until the
		// consumer's Recv rings us back.
		sh.pumpCtrl(c)
		return
	}
	sh.pumpCtrl(c)
	sh.pumpData(c)
}

// pumpCtrl drains the control path through the connection's
// demultiplexer (credits and rate updates to flow control, acks to the
// waiting sender).
func (sh *shard) pumpCtrl(c *Connection) {
	sc := c.sh
	if sc.ctrlPoll == nil && sc.ctrlIn == nil {
		return // in-band mode: control arrives on the data path
	}
	for i := 0; i < shardRecvBudget; i++ {
		var b *buf.Buffer
		if sc.ctrlPoll != nil {
			var err error
			b, err = sc.ctrlPoll.TryRecvBuf()
			if err != nil {
				go c.Close()
				return
			}
		} else {
			select {
			case b = <-sc.ctrlIn:
			default:
			}
		}
		if b == nil {
			return
		}
		c.demuxControl(b)
		b.Release()
	}
	sh.requeue(c) // budget exhausted: likely backlog
}

// pumpData drains the data path through dispatchData — the same flow
// control, error control, and reassembly the Receive Thread drives.
func (sh *shard) pumpData(c *Connection) {
	sc := c.sh
	for i := 0; i < shardRecvBudget; i++ {
		var b *buf.Buffer
		if sc.dataPoll != nil {
			var err error
			b, err = sc.dataPoll.TryRecvBuf()
			if err != nil {
				go c.Close()
				return
			}
		} else {
			select {
			case b = <-sc.dataIn:
			default:
			}
		}
		if b == nil {
			return
		}
		c.lastHeard.Store(time.Now().UnixNano())
		h, payload, perr := packet.SplitData(b.B)
		if perr != nil {
			if c.opts.InbandControl {
				c.demuxControl(b)
			}
			b.Release()
			continue
		}
		m, ok := c.dispatchData(h, payload, b, c.enqueueCtrl)
		b.Release()
		if ok {
			// The trace completes at the delivery hand-off; a parked
			// message would otherwise pin its slot until the consumer
			// drains, starving the sampler.
			telemetry.TraceFinish(c.id, h.SessionID)
			if !sc.deliverOrStall(c, m) {
				return // delivery blocked: pause the data path
			}
		}
	}
	sh.requeue(c)
}

// deliverOrStall hands a completed message to the consumer. On a full
// delivery queue the message parks on the stall list and the
// connection's data path pauses; hasStalled is raised BEFORE the final
// delivery attempt so a concurrently draining consumer cannot miss it
// (Recv checks the flag after every take).
func (sc *shardConn) deliverOrStall(c *Connection, m Message) bool {
	if len(sc.stalled) == 0 && sc.deliver(c, m) {
		return true
	}
	sc.stalled = append(sc.stalled, m)
	if !sc.hasStalled.Swap(true) {
		mParkedConns.Inc()
	}
	return sc.flushStalled(c)
}

// flushStalled retries parked deliveries in order; it reports whether
// the stall list fully drained.
func (sc *shardConn) flushStalled(c *Connection) bool {
	for len(sc.stalled) > 0 {
		if !sc.deliver(c, sc.stalled[0]) {
			return false
		}
		sc.stalled[0] = Message{}
		sc.stalled = sc.stalled[1:]
	}
	sc.stalled = nil
	if sc.hasStalled.Swap(false) {
		mParkedConns.Dec()
	}
	return true
}

// deliver attempts a non-blocking delivery to the bound Inbox or the
// connection's own queue. An inbox closed under a live connection is
// unbound, falling back to the connection's own queue.
func (sc *shardConn) deliver(c *Connection, m Message) bool {
	if ib := c.inbox.Load(); ib != nil {
		select {
		case <-ib.done:
			c.inbox.CompareAndSwap(ib, nil)
		default:
			return ib.offer(c, m)
		}
	}
	select {
	case c.deliveredQ() <- m:
		return true
	default:
		return false
	}
}

// drainInbound releases pooled buffers the pumps parked after the
// connection closed. Called from Close after unregister's barrier: the
// pumps are dead and the loop no longer services this connection, so
// nothing else touches the channels.
func (sc *shardConn) drainInbound() {
	drainBufChan(sc.dataIn)
	drainBufChan(sc.ctrlIn)
	sc.stalled = nil
	if sc.hasStalled.Swap(false) {
		// A connection closed while parked leaves the gauge otherwise.
		mParkedConns.Dec()
	}
}

func drainBufChan(ch chan *buf.Buffer) {
	if ch == nil {
		return
	}
	for {
		select {
		case b := <-ch:
			b.Release()
		default:
			return
		}
	}
}

// heartbeatSweep is the sharded counterpart of heartbeatThread: one
// wheel-driven sweep checks every registered connection's silence
// window and emits pings, instead of one timer goroutine per
// connection. It runs on the wheel goroutine, which is the sole
// writer of every sharded connection's lastPing.
func (sh *shard) heartbeatSweep() {
	now := time.Now()
	sh.mu.Lock()
	conns := sh.hbScratch[:0]
	for c := range sh.conns {
		if c.opts.Heartbeat > 0 {
			conns = append(conns, c)
		}
	}
	sh.mu.Unlock()
	for _, c := range conns {
		hb := c.opts.Heartbeat
		sc := c.sh
		if now.Sub(sc.lastPing) < hb {
			continue
		}
		sc.lastPing = now
		if silent := time.Duration(now.UnixNano() - c.lastHeard.Load()); silent > 3*hb {
			c.failed.Store(true)
			go c.Close()
			continue
		}
		c.enqueueCtrl(packet.Control{Type: packet.CtrlPing, ConnID: c.id})
	}
	for i := range conns {
		conns[i] = nil
	}
	sh.hbScratch = conns[:0]
}

// ---------------------------------------------------------------------------
// System-side pool management.

// SetShards configures the size of this System's shard pool. It must
// be called before the first sharded connection is established; the
// default is GOMAXPROCS.
func (s *System) SetShards(n int) error {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if s.shards != nil {
		return errShardsStarted
	}
	s.shardN = n
	return nil
}

// shardFor returns the shard owning connID, starting the pool on first
// use.
func (s *System) shardFor(connID uint32) *shard {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if s.shards == nil {
		n := s.shardN
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.shards = make([]*shard, n)
		for i := range s.shards {
			sh := newShard(s, i)
			s.shards[i] = sh
			// A Connect that raced System.Close gets inert shards:
			// registration works, nothing runs, nothing leaks.
			if !s.shardStopped {
				s.shardWG.Add(1)
				go sh.loop()
			}
		}
	}
	return s.shards[int(connID)%len(s.shards)]
}

// timerWheel returns the System's shared hashed timer wheel, creating
// it on first use. A System already shut down gets an inert wheel
// (timers arm but never fire), mirroring shardFor's inert shards.
func (s *System) timerWheel() *timerWheel {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if s.wheel == nil {
		s.wheel = newTimerWheel()
		if s.shardStopped {
			s.wheel.stop()
		}
	}
	return s.wheel
}

// stopShards terminates the pool (and its timer wheel) after every
// connection has closed.
func (s *System) stopShards() {
	s.shardMu.Lock()
	shards := s.shards
	s.shards = nil
	s.shardStopped = true
	wheel := s.wheel
	s.shardMu.Unlock()
	for _, sh := range shards {
		close(sh.quit)
	}
	s.shardWG.Wait()
	if wheel != nil {
		wheel.stop()
	}
}
