package core

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"ncs/internal/transport"
)

// TestHeartbeatScaleSharedWheel is the scale proof for the shared timer
// wheel: thousands of heartbeat-enabled sharded connections on ONE
// System must cost zero per-connection goroutines and zero
// per-connection timers while idle — the wheel arms one sweep timer per
// shard, the shard loops do the rest — and the heartbeat must still do
// its job at that scale: a silenced peer is declared unreachable within
// a few intervals while every healthy connection stays up on pongs.
func TestHeartbeatScaleSharedWheel(t *testing.T) {
	const shardN = 4
	conns := 8192
	if testing.Short() {
		conns = 1024
	}

	baseline := runtime.NumGoroutine()

	nw := NewNetwork()
	defer nw.Close()
	sysA, err := nw.NewSystem("hb-scale-a")
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := nw.NewSystem("hb-scale-b")
	if err != nil {
		t.Fatal(err)
	}
	if err := sysA.SetShards(shardN); err != nil {
		t.Fatal(err)
	}
	if err := sysB.SetShards(shardN); err != nil {
		t.Fatal(err)
	}

	// The A side carries the heartbeats; the B side only answers pings
	// (pong handling is unconditional), so every ping/pong pair in the
	// test is driven by the one wheel under test on sysA. The interval
	// is deliberately wide: each sweep bursts thousands of ping/pong
	// round trips through one CPU's shard loops, and under the race
	// detector a burst can take a large fraction of a second — the
	// 3-interval silence window must comfortably absorb that.
	const massHB = time.Second
	massOpts := Options{
		Interface: transport.HPI,
		Runtime:   RuntimeSharded,
		Heartbeat: massHB,
	}.withDefaults()
	peerOpts := Options{
		Interface: transport.HPI,
		Runtime:   RuntimeSharded,
	}.withDefaults()

	healthy := make([]*Connection, 0, conns)
	start := time.Now()
	for i := 0; i < conns; i++ {
		data, pdata := transport.HPIPair()
		ctrl, pctrl := transport.HPIPair()
		id := uint32(i + 1)
		c := newConnection(sysA, "hb-scale-b", id, massOpts, data, ctrl, true)
		sysA.track(c)
		healthy = append(healthy, c)
		p := newConnection(sysB, "hb-scale-a", id, peerOpts, pdata, pctrl, false)
		sysB.track(p)
	}
	t.Logf("established %d heartbeat pairs in %v", conns, time.Since(start))

	// Idle footprint: goroutines are O(shards) — two shard pools, two
	// master threads, one wheel goroutine — never O(conns). At 8k
	// connections even one goroutine per hundred connections would blow
	// this budget.
	if grown := runtime.NumGoroutine() - baseline; grown > 2*shardN+10 {
		t.Fatalf("goroutines grew by %d for %d connections, want O(shards)=%d", grown, conns, shardN)
	}
	ms := sysA.MemStats()
	if ms.Conns != conns {
		t.Fatalf("MemStats.Conns = %d, want %d", ms.Conns, conns)
	}
	// One sweep timer per shard with heartbeat connections — not one
	// per connection.
	if ms.PendingTimers > shardN {
		t.Fatalf("PendingTimers = %d for %d heartbeat connections, want ≤ %d (one sweep per shard)", ms.PendingTimers, conns, shardN)
	}
	if per := ms.BytesPerConn(); per > 2048 {
		t.Fatalf("estimated idle bytes/conn = %.0f at %d conns, want ≤ 2048", per, conns)
	}

	// A silenced peer among thousands of healthy ones: its raw
	// endpoints are never wrapped in a Connection, so nothing ever
	// answers, and the sweep must declare it dead within a few
	// intervals even while sharing shards with the full population.
	const silentHB = 25 * time.Millisecond
	data, silentData := transport.HPIPair()
	ctrl, silentCtrl := transport.HPIPair()
	defer silentData.Close()
	defer silentCtrl.Close()
	silentOpts := Options{
		Interface: transport.HPI,
		Runtime:   RuntimeSharded,
		Heartbeat: silentHB,
	}.withDefaults()
	silent := newConnection(sysA, "silent-peer", uint32(conns+1), silentOpts, data, ctrl, true)
	sysA.track(silent)

	detect := time.Now()
	_, err = silent.RecvTimeout(10 * time.Second)
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("silent peer: err = %v, want ErrPeerUnreachable", err)
	}
	// Nominal detection is ≈3×silentHB; the bound is generous because
	// the race detector on a single-core CI runner stretches the wall
	// clock badly at this connection count. The regression this guards
	// against — a sweep that skips the silent connection and never
	// fires — hits the 10s RecvTimeout instead.
	if elapsed := time.Since(detect); elapsed > 5*time.Second {
		t.Fatalf("silent peer detected after %v, want ≈3×%v", elapsed, silentHB)
	}

	// The healthy population must outlive several of its own silence
	// windows: pongs flowed through the shard loops, so nobody else
	// was declared dead.
	if wait := 4*massHB - time.Since(start); wait > 0 {
		time.Sleep(wait)
	}
	pongs := uint64(0)
	for i, c := range healthy {
		if c.failed.Load() {
			t.Fatalf("healthy connection %d declared dead", i)
		}
		pongs += c.Stats().ControlReceived
	}
	if pongs == 0 {
		t.Fatal("no pongs observed across the healthy population")
	}
}
