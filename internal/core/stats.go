package core

import "sync/atomic"

// Stats are cumulative per-connection counters. All fields are safe to
// read while the connection operates.
type Stats struct {
	// MessagesSent counts completed NCS_send calls.
	MessagesSent uint64
	// MessagesReceived counts messages delivered to NCS_recv.
	MessagesReceived uint64
	// SDUsSent counts data-plane packets transmitted, including
	// retransmissions.
	SDUsSent uint64
	// SDUsReceived counts data-plane packets accepted by the Receive
	// Thread (or the fast-path receive procedure).
	SDUsReceived uint64
	// Retransmissions counts SDUs re-sent by error control.
	Retransmissions uint64
	// ControlSent and ControlReceived count control-plane packets
	// (credits, acks, rate updates) in each direction.
	ControlSent     uint64
	ControlReceived uint64
	// BytesSent and BytesReceived count data-plane payload bytes.
	BytesSent     uint64
	BytesReceived uint64
}

// statCounters is the live atomic representation inside Connection.
type statCounters struct {
	messagesSent     atomic.Uint64
	messagesReceived atomic.Uint64
	sdusSent         atomic.Uint64
	sdusReceived     atomic.Uint64
	retransmissions  atomic.Uint64
	controlSent      atomic.Uint64
	controlReceived  atomic.Uint64
	bytesSent        atomic.Uint64
	bytesReceived    atomic.Uint64
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		MessagesSent:     s.messagesSent.Load(),
		MessagesReceived: s.messagesReceived.Load(),
		SDUsSent:         s.sdusSent.Load(),
		SDUsReceived:     s.sdusReceived.Load(),
		Retransmissions:  s.retransmissions.Load(),
		ControlSent:      s.controlSent.Load(),
		ControlReceived:  s.controlReceived.Load(),
		BytesSent:        s.bytesSent.Load(),
		BytesReceived:    s.bytesReceived.Load(),
	}
}

// Stats returns a snapshot of the connection's counters.
func (c *Connection) Stats() Stats { return c.stats.snapshot() }
