package core

import "sync/atomic"

// Stats are cumulative per-connection counters. All fields are safe to
// read while the connection operates.
type Stats struct {
	// MessagesSent counts completed NCS_send calls.
	MessagesSent uint64
	// MessagesReceived counts messages delivered to NCS_recv.
	MessagesReceived uint64
	// SDUsSent counts data-plane packets transmitted, including
	// retransmissions.
	SDUsSent uint64
	// SDUsReceived counts data-plane packets accepted by the Receive
	// Thread (or the fast-path receive procedure).
	SDUsReceived uint64
	// Retransmissions counts SDUs re-sent by error control.
	Retransmissions uint64
	// ControlSent and ControlReceived count control-plane packets
	// (credits, acks, rate updates) in each direction.
	ControlSent     uint64
	ControlReceived uint64
	// BytesSent and BytesReceived count data-plane payload bytes.
	BytesSent     uint64
	BytesReceived uint64
}

// statCounters is the live atomic representation inside Connection.
type statCounters struct {
	messagesSent     atomic.Uint64
	messagesReceived atomic.Uint64
	sdusSent         atomic.Uint64
	sdusReceived     atomic.Uint64
	retransmissions  atomic.Uint64
	controlSent      atomic.Uint64
	controlReceived  atomic.Uint64
	bytesSent        atomic.Uint64
	bytesReceived    atomic.Uint64
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		MessagesSent:     s.messagesSent.Load(),
		MessagesReceived: s.messagesReceived.Load(),
		SDUsSent:         s.sdusSent.Load(),
		SDUsReceived:     s.sdusReceived.Load(),
		Retransmissions:  s.retransmissions.Load(),
		ControlSent:      s.controlSent.Load(),
		ControlReceived:  s.controlReceived.Load(),
		BytesSent:        s.bytesSent.Load(),
		BytesReceived:    s.bytesReceived.Load(),
	}
}

// Stats returns a snapshot of the connection's counters.
func (c *Connection) Stats() Stats { return c.stats.snapshot() }

// ShardStats is a snapshot of a System's sharded-runtime pool: how
// many event loops it runs, how many connections they carry, and how
// well the cross-connection send coalescing is working (PacketsPerBatch
// above 1 means queued SDUs from one or more connections shared
// vectored writes).
type ShardStats struct {
	// Shards is the pool size; zero until the first sharded connection.
	Shards int
	// Conns is the number of currently registered sharded connections.
	Conns int
	// Wakeups counts event-loop cycles across all shards.
	Wakeups uint64
	// Batches counts vectored transport writes issued by the shards.
	Batches uint64
	// BatchedPackets counts packets written through those batches.
	BatchedPackets uint64
}

// PacketsPerBatch reports the mean batch occupancy.
func (s ShardStats) PacketsPerBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedPackets) / float64(s.Batches)
}

// ShardStats snapshots the System's shard pool counters.
//
// Deprecated: the same snapshot is the Shards field of
// System.Telemetry, alongside the memory summary and the instrument
// registry. This wrapper remains for existing callers.
func (s *System) ShardStats() ShardStats { return s.shardStats() }

func (s *System) shardStats() ShardStats {
	s.shardMu.Lock()
	shards := s.shards
	s.shardMu.Unlock()
	st := ShardStats{Shards: len(shards)}
	for _, sh := range shards {
		sh.mu.Lock()
		st.Conns += len(sh.conns)
		sh.mu.Unlock()
		st.Wakeups += sh.wakeups.Load()
		st.Batches += sh.batches.Load()
		st.BatchedPackets += sh.batchedPackets.Load()
	}
	return st
}
