package core

import (
	"errors"
	"time"

	"ncs/internal/buf"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/packet"
	"ncs/internal/stream"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The fast path implements §4.2's conclusion: "another version of
// NCS_send() and NCS_recv() primitives, which bypasses all NCS threads
// ... and transmits or receives directly ... In this case, all threads
// can be replaced by procedures. These procedures include flow control,
// error control, multicasting algorithms, and low-level communication
// primitives."
//
// The flow- and error-control state machines are the same objects the
// threads drive; here they execute inline on the caller's goroutine.
// FastPath takes precedence over Options.Runtime: a fast-path
// connection bypasses the sharded runtime's event loops (shard.go)
// exactly as it bypasses the per-connection threads — there is nothing
// between the caller and the transport either way.
// With no threads to observe transport death, the inline procedures
// propagate it themselves: any non-timeout transport failure closes
// the connection, so Done/Err observers (the RPC layer, select loops)
// see fast-path teardown exactly as they see threaded teardown.
// Full duplex is preserved — Send reads only the control connection and
// writes the data connection; Recv reads the data connection and writes
// the control connection — so an echo exchange may run Send and Recv
// from different goroutines concurrently.
//
// Packets stage through the pooled buffers of internal/buf end to end:
// on HPI the SDU written here is the very storage the peer's receive
// procedure parses (a true zero-copy handoff), and steady-state sends
// allocate nothing.
//
// Streams and the fast path: with no receive threads, whichever
// receiver reaches the data transport first becomes the pump — it
// holds fastRecvMu, reads the wire for everyone, and dispatches each
// frame wherever it belongs: its own channel's completions return (or
// stop the pump), other channels' completions park on their stream (or
// on park0 for stream 0) and ring that channel's doorbell. Receivers
// that find the pump busy wait on their doorbell plus pumpFree, which
// is rung whenever the pump hands off. The no-stream single-receiver
// hot path degenerates to exactly the pre-stream loop — one atomic
// backlog check, an uncontended TryLock, and the same blocking RecvBuf
// — preserving its allocation profile.
//
// Sends on all channels serialise on fastSendMu (the procedure-call
// model has one caller in the protocol at a time), so a fast-path
// stream send that exhausts its credit window can delay siblings for
// up to the bounded admission wait; keep unconsumed fast-path streams
// within their initial credit window. The threaded and sharded
// runtimes have no such coupling.

// maxCreditWait bounds how long a fast-path sender waits for flow
// control admission before giving up, in multiples of AckTimeout.
const maxCreditWait = 10

func (c *Connection) sendFast(msg []byte, tr *SendTrace) error {
	return c.sendFastOn(c.lane0(), msg, tr)
}

// sendFastOn is the §4.2 send procedure against an arbitrary send
// lane: stream 0 uses the connection's flow-control state, any other
// stream its own credit engine, so admission blocks only the lane
// whose window is exhausted.
func (c *Connection) sendFastOn(lane sendLane, msg []byte, tr *SendTrace) error {
	if err := c.checkSendSize(msg); err != nil {
		return err
	}
	c.fastSendMu.Lock()
	defer c.fastSendMu.Unlock()

	sess := c.nextSession.Add(1)
	telemetry.TraceStart(c.id, sess, len(msg))
	if c.opts.ErrorControl == errctl.None {
		// Unreliable transfer: flow-control admission, one pooled
		// staging buffer, one transport write per SDU — the procedure
		// call §4.2 promises, with no per-message protocol objects.
		// Segmentation happens inline; nothing allocates.
		sduSize, n := c.unreliableSegments(msg)
		for i := 0; i < n; i++ {
			lo := i * sduSize
			hi := lo + sduSize
			if hi > len(msg) {
				hi = len(msg)
			}
			if err := c.fastAdmitOn(lane, sess, nil); err != nil {
				return err
			}
			telemetry.TraceStamp(c.id, sess, telemetry.StageStaged)
			sdu := c.unreliableSDU(msg[lo:hi], lane.streamID, sess, i, n)
			sb := buf.GetCap(packet.DataHeaderSize + len(sdu.Payload))
			sb.B = packet.AppendSDU(sb.B, sdu.Header, sdu.Payload)
			if err := c.data.SendBuf(sb); err != nil {
				c.Close()
				return ErrConnClosed
			}
			c.stats.sdusSent.Add(1)
			c.stats.bytesSent.Add(uint64(len(sdu.Payload)))
			mSendSDUs.IncAt(c.id)
			mSendBytes.AddAt(c.id, int64(len(sdu.Payload)))
			telemetry.TraceStamp(c.id, sess, telemetry.StageWireOut)
		}
		c.stats.messagesSent.Add(1)
		mSendMsgs.IncAt(c.id)
		return nil
	}
	snd := errctl.NewSenderStream(c.opts.ErrorControl, msg, c.opts.SDUSize, c.id, lane.streamID, sess)

	queue := snd.Initial()
	for {
		// Transmit the queued SDUs, processing control traffic inline
		// whenever flow control withholds admission. Retransmissions in
		// the queue are presumed losses: return their credits first so
		// the write-off funds the resend (see Connection.transmit).
		rtx := 0
		for _, sdu := range queue {
			if sdu.Header.Flags&packet.FlagRetransmit != 0 {
				rtx++
			}
		}
		if rtx > 0 {
			flowctl.NoteLoss(lane.fc, rtx)
		}
		for _, sdu := range queue {
			if err := c.fastAdmitOn(lane, sess, snd); err != nil {
				return err
			}
			telemetry.TraceStamp(c.id, sess, telemetry.StageStaged)
			sb := buf.GetCap(packet.DataHeaderSize + len(sdu.Payload))
			sb.B = packet.AppendSDU(sb.B, sdu.Header, sdu.Payload)
			if err := c.data.SendBuf(sb); err != nil {
				c.Close()
				return ErrConnClosed
			}
			c.stats.sdusSent.Add(1)
			c.stats.bytesSent.Add(uint64(len(sdu.Payload)))
			mSendSDUs.IncAt(c.id)
			mSendBytes.AddAt(c.id, int64(len(sdu.Payload)))
			telemetry.TraceStamp(c.id, sess, telemetry.StageWireOut)
			if sdu.Header.Flags&packet.FlagRetransmit != 0 {
				c.stats.retransmissions.Add(1)
			}
		}
		queue = queue[:0]
		if snd.Done() {
			c.stats.messagesSent.Add(1)
			mSendMsgs.IncAt(c.id)
			return nil
		}

		// Await the acknowledgment (or retransmit on timeout).
		cb, err := c.ctrl.RecvBufTimeout(c.opts.AckTimeout)
		switch {
		case errors.Is(err, transport.ErrRecvTimeout):
			queue = snd.OnTimeout()
			continue
		case err != nil:
			c.Close()
			return ErrConnClosed
		}
		pkt, perr := packet.UnmarshalControl(cb.B)
		if perr != nil {
			cb.Release()
			continue
		}
		c.stats.controlReceived.Add(1)
		var (
			rt      []errctl.SDU
			done    bool
			ackErr  error
			matched bool
		)
		switch pkt.Type {
		case packet.CtrlCredit, packet.CtrlCreditGrant, packet.CtrlRate, packet.CtrlWinAck:
			c.flowSend().OnControl(pkt)
		case packet.CtrlStreamGrant, packet.CtrlStreamOpen, packet.CtrlStreamClose:
			c.routeStreamCtrl(pkt)
		case packet.CtrlAck, packet.CtrlNack:
			if pkt.SessionID == sess {
				matched = true
				rt, done, ackErr = snd.OnAck(pkt)
			}
			// Otherwise: stale ack from an earlier session; ignore.
			// (fastSendMu serialises senders, so no concurrent session's
			// acknowledgments can arrive here.)
		}
		// Control handling is synchronous; the receive buffer can
		// recycle before we act on the outcome.
		cb.Release()
		if !matched {
			continue
		}
		if ackErr != nil && !errors.Is(ackErr, errctl.ErrSessionDone) {
			return ackErr
		}
		if done {
			c.stats.messagesSent.Add(1)
			mSendMsgs.IncAt(c.id)
			return nil
		}
		queue = rt
	}
}

// fastAdmitOn blocks until the lane's flow control admits the next
// transmission, pumping the control connection while it waits. Stream
// lanes that burn a full wait interval with no grant record the credit
// wait and check for a closed stream, so a send toward a peer that
// closed the stream surfaces ErrStreamClosed instead of spinning out
// the whole admission budget.
func (c *Connection) fastAdmitOn(lane sendLane, sess uint32, snd errctl.Sender) error {
	fc := lane.fc
	idx := lane.tx.Add(1) - 1
	if fc.TryAcquire(idx) {
		return nil
	}
	// The fast path bypasses the Sender's blocking entry points, so it
	// reports its admission wait to flow control's instruments itself.
	blockedAt := time.Now()
	defer func() { flowctl.NoteFastPathWait(c.opts.FlowControl, time.Since(blockedAt)) }()
	for attempt := 0; attempt < maxCreditWait; attempt++ {
		cb, err := c.ctrl.RecvBufTimeout(c.opts.AckTimeout)
		if errors.Is(err, transport.ErrRecvTimeout) {
			// No control traffic at all: assume credit loss and resync.
			if lane.streamID != 0 {
				stream.NoteCreditWait()
				if serr := c.streamSendable(lane.streamID); serr != nil {
					return serr
				}
			}
			fc.Resync()
			if fc.TryAcquire(idx) {
				return nil
			}
			continue
		}
		if err != nil {
			c.Close()
			return ErrConnClosed
		}
		pkt, perr := packet.UnmarshalControl(cb.B)
		if perr == nil {
			switch pkt.Type {
			case packet.CtrlStreamGrant, packet.CtrlStreamOpen, packet.CtrlStreamClose:
				// Stream grants route through the mux to their stream's
				// credit engine — including, when addressed to it, this
				// very lane's.
				c.routeStreamCtrl(pkt)
			default:
				// Connection-scoped control feeds the connection's flow
				// sender, never a stream lane's: the two credit spaces
				// must not contaminate each other.
				c.flowSend().OnControl(pkt)
				// Acks that arrive while we wait for credits still belong
				// to the active session's error control. Processing them
				// here would reorder the protocol; the sender sees them
				// after the batch. Selective repeat and go-back-N both
				// tolerate delayed acks via their timers.
				_ = snd
				_ = sess
			}
		}
		cb.Release()
		if fc.TryAcquire(idx) {
			return nil
		}
	}
	return ErrRecvTimeout
}

// ---------------------------------------------------------------------------
// Fast-path receive: the shared pump.

// pumpRelease deposits the hand-off token that wakes one receiver
// blocked waiting for the pump. It is rung when the pump is released
// and after any parked-message pop, so a backlog left by a departing
// receiver always has a successor to drain it.
func (c *Connection) pumpRelease() {
	select {
	case c.pumpFree <- struct{}{}:
	default:
	}
}

// park0Put parks a completed stream-0 message pumped up by a stream
// receiver (or acceptor) for whoever is blocked in Recv.
func (c *Connection) park0Put(m Message) {
	c.park0Mu.Lock()
	c.park0 = append(c.park0, m)
	c.nPark0.Store(int32(len(c.park0)))
	c.park0Mu.Unlock()
	select {
	case c.bell0 <- struct{}{}:
	default:
	}
}

// park0Pop takes the oldest parked stream-0 message. The no-stream hot
// path costs exactly the leading atomic load.
func (c *Connection) park0Pop() (Message, bool) {
	if c.nPark0.Load() == 0 {
		return Message{}, false
	}
	c.park0Mu.Lock()
	if len(c.park0) == 0 {
		c.park0Mu.Unlock()
		return Message{}, false
	}
	m := c.park0[0]
	c.park0[0] = Message{}
	c.park0 = c.park0[1:]
	if len(c.park0) == 0 {
		c.park0 = nil
	}
	remaining := len(c.park0)
	c.nPark0.Store(int32(remaining))
	c.park0Mu.Unlock()
	if remaining > 0 {
		// bell0 is capacity-1; re-ring for the rest of the backlog.
		select {
		case c.bell0 <- struct{}{}:
		default:
		}
	}
	return m, true
}

// fastPump reads the data transport with fastRecvMu held (the caller
// acquires it), dispatching every arriving frame: stream frames to
// their streams, stream-0 completions either returned directly (the
// stream-0 receiver's own pump, direct=true) or parked on park0. It
// returns when direct delivery succeeds, when stop — checked before
// each blocking read — reports the caller's condition was met
// elsewhere (its stream's backlog grew, an accept arrived), when the
// deadline passes (ErrRecvTimeout), or when the transport dies.
func (c *Connection) fastPump(direct bool, stop func() bool, deadline time.Time) (Message, bool, error) {
	emit := func(ctl packet.Control) bool {
		sb := buf.GetCap(packet.ControlHeaderSize + len(ctl.Body))
		sb.B = ctl.Marshal(sb.B)
		c.stats.controlSent.Add(1)
		c.fastCtrlMu.Lock()
		err := c.ctrl.SendBuf(sb)
		c.fastCtrlMu.Unlock()
		return err == nil
	}
	for {
		if stop != nil && stop() {
			return Message{}, false, nil
		}
		var b *buf.Buffer
		var err error
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				return Message{}, false, ErrRecvTimeout
			}
			b, err = c.data.RecvBufTimeout(remain)
			if errors.Is(err, transport.ErrRecvTimeout) {
				return Message{}, false, ErrRecvTimeout
			}
		} else {
			b, err = c.data.RecvBuf()
		}
		if err != nil {
			c.Close()
			return Message{}, false, ErrConnClosed
		}
		h, payload, perr := packet.SplitData(b.B)
		if perr != nil {
			b.Release()
			continue
		}
		m, ok := c.dispatchData(h, payload, b, emit)
		b.Release()
		if ok {
			telemetry.TraceFinish(c.id, h.SessionID)
			if direct {
				return m, true, nil
			}
			c.park0Put(m)
		}
	}
}

// fastWait blocks a receiver that found the pump busy until its
// doorbell rings, the pump frees up, the connection closes, or the
// deadline passes. A nil error means "re-check and retry".
func (c *Connection) fastWait(bell <-chan struct{}, deadline time.Time) error {
	if deadline.IsZero() {
		select {
		case <-bell:
		case <-c.pumpFree:
		case <-c.closedCh:
			return c.closeErr()
		}
		return nil
	}
	remain := time.Until(deadline)
	if remain <= 0 {
		return ErrRecvTimeout
	}
	t := time.NewTimer(remain)
	defer t.Stop()
	select {
	case <-bell:
	case <-c.pumpFree:
	case <-c.closedCh:
		return c.closeErr()
	case <-t.C:
		return ErrRecvTimeout
	}
	return nil
}

// recvFast is the §4.2 receive procedure for stream 0.
func (c *Connection) recvFast(timeout time.Duration) (Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if m, ok := c.park0Pop(); ok {
			c.pumpRelease()
			return m, nil
		}
		if c.fastRecvMu.TryLock() {
			m, got, err := c.fastPump(true, nil, deadline)
			c.fastRecvMu.Unlock()
			c.pumpRelease()
			if err != nil {
				return Message{}, err
			}
			if got {
				return m, nil
			}
			continue
		}
		if err := c.fastWait(c.bell0, deadline); err != nil {
			return Message{}, err
		}
	}
}

// recvStreamFast is the receive procedure for a multiplexed stream:
// pop the stream's backlog, else pump (stopping as soon as the
// backlog grows — possibly via a sibling pump parking into it), else
// wait on the stream's doorbell.
func (c *Connection) recvStreamFast(st *stream.State, timeout time.Duration) (Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if m, ok := st.TryPop(); ok {
			c.pumpRelease()
			return Message{Data: m.Data, Lost: m.Lost}, nil
		}
		if st.Closed() || st.RemoteClosed() {
			return Message{}, ErrStreamClosed
		}
		if c.fastRecvMu.TryLock() {
			_, _, err := c.fastPump(false, st.Ready, deadline)
			c.fastRecvMu.Unlock()
			c.pumpRelease()
			if err != nil {
				return Message{}, err
			}
			continue
		}
		if err := c.fastWait(st.Bell(), deadline); err != nil {
			return Message{}, err
		}
	}
}

// acceptFast waits for a peer-initiated stream on the fast path,
// pumping the data transport when no one else is: the peer's
// CtrlStreamOpen rides the control connection (which only senders
// read), so fast-path accepts materialise from the stream's first
// data frame instead.
func (c *Connection) acceptFast(m *stream.Mux, deadline time.Time) (*stream.State, error) {
	for {
		if st, ok := m.PopAccept(); ok {
			c.pumpRelease()
			return st, nil
		}
		if m.Closed() {
			return nil, c.closeErr()
		}
		if c.fastRecvMu.TryLock() {
			_, _, err := c.fastPump(false, m.HasAccept, deadline)
			c.fastRecvMu.Unlock()
			c.pumpRelease()
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := c.fastWait(m.AcceptBell(), deadline); err != nil {
			return nil, err
		}
	}
}
