package core

import (
	"errors"
	"time"

	"ncs/internal/buf"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/packet"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// The fast path implements §4.2's conclusion: "another version of
// NCS_send() and NCS_recv() primitives, which bypasses all NCS threads
// ... and transmits or receives directly ... In this case, all threads
// can be replaced by procedures. These procedures include flow control,
// error control, multicasting algorithms, and low-level communication
// primitives."
//
// The flow- and error-control state machines are the same objects the
// threads drive; here they execute inline on the caller's goroutine.
// FastPath takes precedence over Options.Runtime: a fast-path
// connection bypasses the sharded runtime's event loops (shard.go)
// exactly as it bypasses the per-connection threads — there is nothing
// between the caller and the transport either way.
// With no threads to observe transport death, the inline procedures
// propagate it themselves: any non-timeout transport failure closes
// the connection, so Done/Err observers (the RPC layer, select loops)
// see fast-path teardown exactly as they see threaded teardown.
// Full duplex is preserved — Send reads only the control connection and
// writes the data connection; Recv reads the data connection and writes
// the control connection — so an echo exchange may run Send and Recv
// from different goroutines concurrently.
//
// Packets stage through the pooled buffers of internal/buf end to end:
// on HPI the SDU written here is the very storage the peer's receive
// procedure parses (a true zero-copy handoff), and steady-state sends
// allocate nothing.

// maxCreditWait bounds how long a fast-path sender waits for flow
// control admission before giving up, in multiples of AckTimeout.
const maxCreditWait = 10

func (c *Connection) sendFast(msg []byte, tr *SendTrace) error {
	if err := c.checkSendSize(msg); err != nil {
		return err
	}
	c.fastSendMu.Lock()
	defer c.fastSendMu.Unlock()

	sess := c.nextSession.Add(1)
	telemetry.TraceStart(c.id, sess, len(msg))
	if c.opts.ErrorControl == errctl.None {
		// Unreliable transfer: flow-control admission, one pooled
		// staging buffer, one transport write per SDU — the procedure
		// call §4.2 promises, with no per-message protocol objects.
		// Segmentation happens inline; nothing allocates.
		sduSize, n := c.unreliableSegments(msg)
		for i := 0; i < n; i++ {
			lo := i * sduSize
			hi := lo + sduSize
			if hi > len(msg) {
				hi = len(msg)
			}
			if err := c.fastAdmit(sess, nil); err != nil {
				return err
			}
			telemetry.TraceStamp(c.id, sess, telemetry.StageStaged)
			sdu := c.unreliableSDU(msg[lo:hi], sess, i, n)
			sb := buf.GetCap(packet.DataHeaderSize + len(sdu.Payload))
			sb.B = packet.AppendSDU(sb.B, sdu.Header, sdu.Payload)
			if err := c.data.SendBuf(sb); err != nil {
				c.Close()
				return ErrConnClosed
			}
			c.stats.sdusSent.Add(1)
			c.stats.bytesSent.Add(uint64(len(sdu.Payload)))
			mSendSDUs.IncAt(c.id)
			mSendBytes.AddAt(c.id, int64(len(sdu.Payload)))
			telemetry.TraceStamp(c.id, sess, telemetry.StageWireOut)
		}
		c.stats.messagesSent.Add(1)
		mSendMsgs.IncAt(c.id)
		return nil
	}
	snd := errctl.NewSender(c.opts.ErrorControl, msg, c.opts.SDUSize, c.id, sess)

	queue := snd.Initial()
	for {
		// Transmit the queued SDUs, processing control traffic inline
		// whenever flow control withholds admission. Retransmissions in
		// the queue are presumed losses: return their credits first so
		// the write-off funds the resend (see Connection.transmit).
		rtx := 0
		for _, sdu := range queue {
			if sdu.Header.Flags&packet.FlagRetransmit != 0 {
				rtx++
			}
		}
		if rtx > 0 {
			flowctl.NoteLoss(c.flowSend(), rtx)
		}
		for _, sdu := range queue {
			if err := c.fastAdmit(sess, snd); err != nil {
				return err
			}
			telemetry.TraceStamp(c.id, sess, telemetry.StageStaged)
			sb := buf.GetCap(packet.DataHeaderSize + len(sdu.Payload))
			sb.B = packet.AppendSDU(sb.B, sdu.Header, sdu.Payload)
			if err := c.data.SendBuf(sb); err != nil {
				c.Close()
				return ErrConnClosed
			}
			c.stats.sdusSent.Add(1)
			c.stats.bytesSent.Add(uint64(len(sdu.Payload)))
			mSendSDUs.IncAt(c.id)
			mSendBytes.AddAt(c.id, int64(len(sdu.Payload)))
			telemetry.TraceStamp(c.id, sess, telemetry.StageWireOut)
			if sdu.Header.Flags&packet.FlagRetransmit != 0 {
				c.stats.retransmissions.Add(1)
			}
		}
		queue = queue[:0]
		if snd.Done() {
			c.stats.messagesSent.Add(1)
			mSendMsgs.IncAt(c.id)
			return nil
		}

		// Await the acknowledgment (or retransmit on timeout).
		cb, err := c.ctrl.RecvBufTimeout(c.opts.AckTimeout)
		switch {
		case errors.Is(err, transport.ErrRecvTimeout):
			queue = snd.OnTimeout()
			continue
		case err != nil:
			c.Close()
			return ErrConnClosed
		}
		pkt, perr := packet.UnmarshalControl(cb.B)
		if perr != nil {
			cb.Release()
			continue
		}
		c.stats.controlReceived.Add(1)
		var (
			rt      []errctl.SDU
			done    bool
			ackErr  error
			matched bool
		)
		switch pkt.Type {
		case packet.CtrlCredit, packet.CtrlCreditGrant, packet.CtrlRate, packet.CtrlWinAck:
			c.flowSend().OnControl(pkt)
		case packet.CtrlAck, packet.CtrlNack:
			if pkt.SessionID == sess {
				matched = true
				rt, done, ackErr = snd.OnAck(pkt)
			}
			// Otherwise: stale ack from an earlier session; ignore.
		}
		// Control handling is synchronous; the receive buffer can
		// recycle before we act on the outcome.
		cb.Release()
		if !matched {
			continue
		}
		if ackErr != nil && !errors.Is(ackErr, errctl.ErrSessionDone) {
			return ackErr
		}
		if done {
			c.stats.messagesSent.Add(1)
			mSendMsgs.IncAt(c.id)
			return nil
		}
		queue = rt
	}
}

// fastAdmit blocks until flow control admits the next transmission,
// pumping the control connection for credits while it waits.
func (c *Connection) fastAdmit(sess uint32, snd errctl.Sender) error {
	fc := c.flowSend()
	idx := c.txCounter.Add(1) - 1
	if fc.TryAcquire(idx) {
		return nil
	}
	// The fast path bypasses the Sender's blocking entry points, so it
	// reports its admission wait to flow control's instruments itself.
	blockedAt := time.Now()
	defer func() { flowctl.NoteFastPathWait(c.opts.FlowControl, time.Since(blockedAt)) }()
	for attempt := 0; attempt < maxCreditWait; attempt++ {
		cb, err := c.ctrl.RecvBufTimeout(c.opts.AckTimeout)
		if errors.Is(err, transport.ErrRecvTimeout) {
			// No control traffic at all: assume credit loss and resync.
			fc.Resync()
			if fc.TryAcquire(idx) {
				return nil
			}
			continue
		}
		if err != nil {
			c.Close()
			return ErrConnClosed
		}
		pkt, perr := packet.UnmarshalControl(cb.B)
		if perr == nil {
			fc.OnControl(pkt)
			// Acks that arrive while we wait for credits still belong to
			// the active session's error control.
			if (pkt.Type == packet.CtrlAck || pkt.Type == packet.CtrlNack) && pkt.SessionID == sess {
				// Processing them here would reorder the protocol; the
				// sender sees them after the batch. Selective repeat and
				// go-back-N both tolerate delayed acks via their timers.
				_ = snd
			}
		}
		cb.Release()
		if fc.TryAcquire(idx) {
			return nil
		}
	}
	return ErrRecvTimeout
}

func (c *Connection) recvFast(timeout time.Duration) (Message, error) {
	c.fastRecvMu.Lock()
	defer c.fastRecvMu.Unlock()

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	emit := func(ctl packet.Control) bool {
		sb := buf.GetCap(packet.ControlHeaderSize + len(ctl.Body))
		sb.B = ctl.Marshal(sb.B)
		c.stats.controlSent.Add(1)
		return c.ctrl.SendBuf(sb) == nil
	}
	for {
		var b *buf.Buffer
		var err error
		if timeout > 0 {
			remain := time.Until(deadline)
			if remain <= 0 {
				return Message{}, ErrRecvTimeout
			}
			b, err = c.data.RecvBufTimeout(remain)
			if errors.Is(err, transport.ErrRecvTimeout) {
				return Message{}, ErrRecvTimeout
			}
		} else {
			b, err = c.data.RecvBuf()
		}
		if err != nil {
			c.Close()
			return Message{}, ErrConnClosed
		}
		h, payload, perr := packet.SplitData(b.B)
		if perr != nil {
			b.Release()
			continue
		}
		m, ok := c.dispatchData(h, payload, b, emit)
		b.Release()
		if ok {
			telemetry.TraceFinish(c.id, h.SessionID)
			return m, nil
		}
	}
}
