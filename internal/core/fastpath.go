package core

import (
	"errors"
	"time"

	"ncs/internal/errctl"
	"ncs/internal/packet"
	"ncs/internal/transport"
)

// The fast path implements §4.2's conclusion: "another version of
// NCS_send() and NCS_recv() primitives, which bypasses all NCS threads
// ... and transmits or receives directly ... In this case, all threads
// can be replaced by procedures. These procedures include flow control,
// error control, multicasting algorithms, and low-level communication
// primitives."
//
// The flow- and error-control state machines are the same objects the
// threads drive; here they execute inline on the caller's goroutine.
// Full duplex is preserved — Send reads only the control connection and
// writes the data connection; Recv reads the data connection and writes
// the control connection — so an echo exchange may run Send and Recv
// from different goroutines concurrently.

// maxCreditWait bounds how long a fast-path sender waits for flow
// control admission before giving up, in multiples of AckTimeout.
const maxCreditWait = 10

func (c *Connection) sendFast(msg []byte, tr *SendTrace) error {
	if err := c.checkSendSize(msg); err != nil {
		return err
	}
	c.fastSendMu.Lock()
	defer c.fastSendMu.Unlock()

	sess := c.nextSession.Add(1)
	snd := errctl.NewSender(c.opts.ErrorControl, msg, c.opts.SDUSize, c.id, sess)

	// The staging buffer persists across sends (guarded by fastSendMu):
	// the fast path's whole point is removing per-send overhead.
	if cap(c.fastBuf) < c.opts.SDUSize+packet.DataHeaderSize {
		c.fastBuf = make([]byte, 0, c.opts.SDUSize+packet.DataHeaderSize)
	}
	buf := c.fastBuf
	queue := snd.Initial()
	for {
		// Transmit the queued SDUs, processing control traffic inline
		// whenever flow control withholds admission.
		for _, sdu := range queue {
			if err := c.fastAdmit(sess, snd); err != nil {
				return err
			}
			buf = sdu.Header.Marshal(buf[:0])
			buf = append(buf, sdu.Payload...)
			if err := c.data.Send(buf); err != nil {
				return ErrConnClosed
			}
			c.stats.sdusSent.Add(1)
			c.stats.bytesSent.Add(uint64(len(sdu.Payload)))
			if sdu.Header.Flags&packet.FlagRetransmit != 0 {
				c.stats.retransmissions.Add(1)
			}
		}
		queue = queue[:0]
		if snd.Done() {
			c.stats.messagesSent.Add(1)
			return nil
		}

		// Await the acknowledgment (or retransmit on timeout).
		ctl, err := c.ctrl.RecvTimeout(c.opts.AckTimeout)
		switch {
		case errors.Is(err, transport.ErrRecvTimeout):
			queue = snd.OnTimeout()
			continue
		case err != nil:
			return ErrConnClosed
		}
		pkt, perr := packet.UnmarshalControl(ctl)
		if perr != nil {
			continue
		}
		c.stats.controlReceived.Add(1)
		switch pkt.Type {
		case packet.CtrlCredit, packet.CtrlRate, packet.CtrlWinAck:
			c.fcSend.OnControl(pkt)
		case packet.CtrlAck, packet.CtrlNack:
			if pkt.SessionID != sess {
				continue // stale ack from an earlier session
			}
			rt, done, err := snd.OnAck(pkt)
			if err != nil && !errors.Is(err, errctl.ErrSessionDone) {
				return err
			}
			if done {
				c.stats.messagesSent.Add(1)
				return nil
			}
			queue = rt
		}
	}
}

// fastAdmit blocks until flow control admits the next transmission,
// pumping the control connection for credits while it waits.
func (c *Connection) fastAdmit(sess uint32, snd errctl.Sender) error {
	idx := c.txCounter.Add(1) - 1
	if c.fcSend.TryAcquire(idx) {
		return nil
	}
	for attempt := 0; attempt < maxCreditWait; attempt++ {
		ctl, err := c.ctrl.RecvTimeout(c.opts.AckTimeout)
		if errors.Is(err, transport.ErrRecvTimeout) {
			// No control traffic at all: assume credit loss and resync.
			c.fcSend.Resync()
			if c.fcSend.TryAcquire(idx) {
				return nil
			}
			continue
		}
		if err != nil {
			return ErrConnClosed
		}
		pkt, perr := packet.UnmarshalControl(ctl)
		if perr == nil {
			c.fcSend.OnControl(pkt)
			// Acks that arrive while we wait for credits still belong to
			// the active session's error control.
			if (pkt.Type == packet.CtrlAck || pkt.Type == packet.CtrlNack) && pkt.SessionID == sess {
				// Processing them here would reorder the protocol; the
				// sender sees them after the batch. Selective repeat and
				// go-back-N both tolerate delayed acks via their timers.
				_ = snd
			}
		}
		if c.fcSend.TryAcquire(idx) {
			return nil
		}
	}
	return ErrRecvTimeout
}

func (c *Connection) recvFast(timeout time.Duration) (Message, error) {
	c.fastRecvMu.Lock()
	defer c.fastRecvMu.Unlock()

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	emit := func(ctl packet.Control) bool {
		c.stats.controlSent.Add(1)
		return c.ctrl.Send(ctl.Marshal(nil)) == nil
	}
	for {
		var raw []byte
		var err error
		if timeout > 0 {
			remain := time.Until(deadline)
			if remain <= 0 {
				return Message{}, ErrRecvTimeout
			}
			raw, err = c.data.RecvTimeout(remain)
			if errors.Is(err, transport.ErrRecvTimeout) {
				return Message{}, ErrRecvTimeout
			}
		} else {
			raw, err = c.data.Recv()
		}
		if err != nil {
			return Message{}, ErrConnClosed
		}
		h, perr := packet.UnmarshalDataHeader(raw)
		if perr != nil {
			continue
		}
		payload := raw[packet.DataHeaderSize:]
		if int(h.Length) <= len(payload) {
			payload = payload[:h.Length]
		}
		if m, ok := c.dispatchData(h, payload, emit); ok {
			return m, nil
		}
	}
}
