package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncs/internal/buf"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/transport"
)

// streamRuntimes enumerates the three runtime architectures a stream
// must behave identically on.
func streamRuntimes() map[string]Options {
	return map[string]Options{
		"threaded": {Interface: transport.HPI},
		"sharded":  {Interface: transport.HPI, Runtime: RuntimeSharded},
		"fastpath": {Interface: transport.HPI, FastPath: true},
	}
}

func TestStreamEchoAllRuntimes(t *testing.T) {
	for name, opts := range streamRuntimes() {
		t.Run(name, func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, opts)
			defer cleanup()

			st, err := conn.OpenStream()
			if err != nil {
				t.Fatal(err)
			}
			if st.ID()%2 != 1 {
				t.Fatalf("dialer-opened stream id = %d, want odd", st.ID())
			}

			done := make(chan error, 1)
			go func() {
				ps, err := peer.AcceptStreamTimeout(5 * time.Second)
				if err != nil {
					done <- err
					return
				}
				for {
					m, err := ps.Recv()
					if err != nil {
						done <- err
						return
					}
					if string(m) == "done" {
						done <- nil
						return
					}
					if err := ps.Send(append([]byte("echo:"), m...)); err != nil {
						done <- err
						return
					}
				}
			}()

			// Sizes spanning one SDU through multi-SDU reassembly.
			for _, size := range []int{1, 100, 4096, 5000, 70000} {
				msg := bytes.Repeat([]byte{byte(size % 251)}, size)
				if err := st.Send(msg); err != nil {
					t.Fatalf("stream send %d: %v", size, err)
				}
				got, err := st.RecvTimeout(5 * time.Second)
				if err != nil {
					t.Fatalf("stream recv %d: %v", size, err)
				}
				if len(got) != size+5 || !bytes.Equal(got[5:], msg) {
					t.Fatalf("size %d: echo mismatch (got %d bytes)", size, len(got))
				}
			}
			if err := st.Send([]byte("done")); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamIsolation is the head-of-line-blocking contract: a stream
// nobody consumes exhausts only its own credit window; its siblings —
// another stream and the connection's default channel — keep flowing.
func TestStreamIsolation(t *testing.T) {
	for name, opts := range streamRuntimes() {
		t.Run(name, func(t *testing.T) {
			opts.FlowControl = flowctl.Credit
			opts.FlowConfig = flowctl.Config{InitialCredits: 4, MaxCredits: 16}
			conn, peer, cleanup := newPairT(t, opts)
			defer cleanup()

			stale, err := conn.OpenStream()
			if err != nil {
				t.Fatal(err)
			}
			live, err := conn.OpenStream()
			if err != nil {
				t.Fatal(err)
			}

			// Fill the unconsumed stream up to its initial window (its
			// messages are single-SDU, so each costs one credit). Nobody
			// ever reads it.
			for i := 0; i < 4; i++ {
				if err := stale.Send([]byte("stuck")); err != nil {
					t.Fatalf("stale send %d: %v", i, err)
				}
			}

			// The peer never accepts `stale`; it consumes only `live` and
			// stream 0. Both must flow indefinitely past the stale
			// stream's exhausted window.
			peerErr := make(chan error, 1)
			go func() {
				ls, err := peer.AcceptStreamTimeout(5 * time.Second)
				if err != nil {
					peerErr <- err
					return
				}
				for ls.ID() != live.ID() {
					// The stale stream may be accepted first; skip it
					// without ever receiving from it.
					ls, err = peer.AcceptStreamTimeout(5 * time.Second)
					if err != nil {
						peerErr <- err
						return
					}
				}
				for i := 0; i < 32; i++ {
					if _, err := ls.RecvTimeout(5 * time.Second); err != nil {
						peerErr <- fmt.Errorf("live stream recv %d: %w", i, err)
						return
					}
					if _, err := peer.RecvTimeout(5 * time.Second); err != nil {
						peerErr <- fmt.Errorf("stream-0 recv %d: %w", i, err)
						return
					}
				}
				peerErr <- nil
			}()

			msg := bytes.Repeat([]byte("x"), 2000)
			for i := 0; i < 32; i++ {
				if err := live.Send(msg); err != nil {
					t.Fatalf("live stream send %d: %v", i, err)
				}
				if err := conn.Send(msg); err != nil {
					t.Fatalf("stream-0 send %d: %v", i, err)
				}
			}
			if err := <-peerErr; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamConcurrentSenders drives several streams from independent
// goroutines at once: per-stream ordering must hold even though the
// connection interleaves their SDUs.
func TestStreamConcurrentSenders(t *testing.T) {
	for _, name := range []string{"threaded", "sharded"} {
		opts := streamRuntimes()[name]
		t.Run(name, func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, opts)
			defer cleanup()

			const streams, msgs = 3, 16
			var wg sync.WaitGroup
			sendErr := make(chan error, streams)
			for i := 0; i < streams; i++ {
				st, err := conn.OpenStream()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(st *Stream, tag int) {
					defer wg.Done()
					for n := 0; n < msgs; n++ {
						msg := bytes.Repeat([]byte{byte(tag)}, 1000*(n%5+1))
						msg = append(msg, byte(n))
						if err := st.Send(msg); err != nil {
							sendErr <- err
							return
						}
					}
				}(st, i)
			}

			recvErr := make(chan error, streams)
			for i := 0; i < streams; i++ {
				ps, err := peer.AcceptStreamTimeout(5 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				go func(ps *Stream) {
					for n := 0; n < msgs; n++ {
						m, err := ps.RecvTimeout(10 * time.Second)
						if err != nil {
							recvErr <- fmt.Errorf("stream %d msg %d: %w", ps.ID(), n, err)
							return
						}
						if int(m[len(m)-1]) != n {
							recvErr <- fmt.Errorf("stream %d: got seq %d, want %d (ordering broken)", ps.ID(), m[len(m)-1], n)
							return
						}
					}
					recvErr <- nil
				}(ps)
			}
			for i := 0; i < streams; i++ {
				if err := <-recvErr; err != nil {
					t.Fatal(err)
				}
			}
			wg.Wait()
			select {
			case err := <-sendErr:
				t.Fatal(err)
			default:
			}
		})
	}
}

// TestStreamClose: closing a stream surfaces ErrStreamClosed to the
// local sender immediately and to the peer's receiver once drained.
func TestStreamClose(t *testing.T) {
	for _, name := range []string{"threaded", "sharded"} {
		opts := streamRuntimes()[name]
		t.Run(name, func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, opts)
			defer cleanup()

			st, err := conn.OpenStream()
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Send([]byte("before close")); err != nil {
				t.Fatal(err)
			}
			ps, err := peer.AcceptStreamTimeout(5 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if err := st.Send([]byte("after")); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("send on closed stream: err = %v, want ErrStreamClosed", err)
			}

			// The peer drains the pre-close message, then observes close.
			m, err := ps.RecvTimeout(5 * time.Second)
			if err != nil {
				t.Fatalf("pre-close message lost: %v", err)
			}
			if string(m) != "before close" {
				t.Fatalf("got %q", m)
			}
			deadline := time.Now().Add(5 * time.Second)
			for {
				_, err = ps.RecvTimeout(100 * time.Millisecond)
				if errors.Is(err, ErrStreamClosed) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("peer receiver never observed close (last err %v)", err)
				}
			}
			// The peer's sender stops too (the close travelled).
			if err := ps.Send([]byte("x")); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("peer send after remote close: err = %v, want ErrStreamClosed", err)
			}
		})
	}
}

// TestStreamUnconsumedReleasedAtConnClose: messages parked on a stream
// nobody reads — including incomplete reassembly — must release their
// pooled buffers when the connection closes. The package TestMain's
// quiescence audit enforces the global invariant; this test pins the
// per-connection delta.
func TestStreamUnconsumedReleasedAtConnClose(t *testing.T) {
	for name, opts := range streamRuntimes() {
		t.Run(name, func(t *testing.T) {
			before := buf.Outstanding()
			conn, peer, cleanup := newPairT(t, opts)

			st, err := conn.OpenStream()
			if err != nil {
				t.Fatal(err)
			}
			// Multi-SDU messages so the peer's reassembly retains pooled
			// segment buffers, parked until... never.
			msg := bytes.Repeat([]byte("retain"), 2000)
			for i := 0; i < 3; i++ {
				if err := st.Send(msg); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			// On the fast path nothing pumps the peer side unless a
			// receiver runs; pump the frames up so they actually park.
			if opts.FastPath {
				peer.RecvMessageTimeout(200 * time.Millisecond)
			} else {
				time.Sleep(100 * time.Millisecond)
			}
			cleanup()

			deadline := time.Now().Add(5 * time.Second)
			for buf.Outstanding() != before {
				if time.Now().After(deadline) {
					t.Fatalf("pooled buffers leaked by unconsumed stream: %d outstanding, baseline %d",
						buf.Outstanding(), before)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestStreamFrameForUnknownConnDefaults: a legacy peer that never
// stamps StreamID produces frames for stream 0 — the existing
// Send/Recv path — by construction. Pin that a stream-0 exchange works
// when the connection also carries streams (no cross-contamination of
// credit spaces).
func TestStreamZeroUnaffected(t *testing.T) {
	opts := Options{Interface: transport.HPI, FlowControl: flowctl.Credit,
		FlowConfig: flowctl.Config{InitialCredits: 4, MaxCredits: 16},
		SDUSize:    512}
	conn, peer, cleanup := newPairT(t, opts)
	defer cleanup()

	st, err := conn.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := peer.AcceptStreamTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave stream and stream-0 traffic; both multi-SDU so both
	// credit engines cycle through grants.
	msg := bytes.Repeat([]byte("i"), 3000)
	for i := 0; i < 8; i++ {
		if err := st.Send(msg); err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := ps.RecvTimeout(5 * time.Second); err != nil {
			t.Fatalf("stream recv %d: %v", i, err)
		}
		if _, err := peer.RecvTimeout(5 * time.Second); err != nil {
			t.Fatalf("stream-0 recv %d: %v", i, err)
		}
	}
}

// TestStreamErrCtlModes runs a stream exchange under each error-control
// algorithm: stream reliability state is per-stream (sessions live in
// the stream's own table), and unreliable streams deliver with loss
// metadata exactly like stream 0.
func TestStreamErrCtlModes(t *testing.T) {
	for _, ec := range []errctl.Algorithm{errctl.None, errctl.SelectiveRepeat, errctl.GoBackN} {
		t.Run(ec.String(), func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, Options{Interface: transport.HPI, ErrorControl: ec})
			defer cleanup()

			st, err := conn.OpenStream()
			if err != nil {
				t.Fatal(err)
			}
			ps, err := peer.AcceptStreamTimeout(5 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			msg := bytes.Repeat([]byte("e"), 9000)
			for i := 0; i < 4; i++ {
				if err := st.Send(msg); err != nil {
					t.Fatal(err)
				}
				m, err := ps.RecvMessageTimeout(5 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(m.Data, msg) || m.Lost != 0 {
					t.Fatalf("round %d: %d bytes (want %d), lost %d", i, len(m.Data), len(msg), m.Lost)
				}
			}
		})
	}
}
