package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/transport"
)

// TestShardedSendRecvAllInterfaces runs the basic duplex exchange over
// every interface with the sharded runtime on both ends: pollable HPI,
// pumped SCI and ACI.
func TestShardedSendRecvAllInterfaces(t *testing.T) {
	for _, kind := range []transport.Kind{transport.HPI, transport.SCI, transport.ACI} {
		t.Run(kind.String(), func(t *testing.T) {
			conn, peer, cleanup := newPairT(t, Options{
				Interface: kind,
				Runtime:   RuntimeSharded,
				SDUSize:   512,
			})
			defer cleanup()

			msg := bytes.Repeat([]byte("shard!"), 700) // multi-SDU
			errCh := make(chan error, 1)
			go func() { errCh <- conn.Send(msg) }()
			got, err := peer.RecvTimeout(5 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("got %d bytes, want %d", len(got), len(msg))
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}

			// Reverse direction over the same connection.
			go func() { errCh <- peer.Send([]byte("reply")) }()
			back, err := conn.RecvTimeout(5 * time.Second)
			if err != nil || string(back) != "reply" {
				t.Fatalf("reverse: %q, %v", back, err)
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedErrorControl drives the full reliable protocol — selective
// repeat plus credit flow control, so acknowledgments and credits cross
// the shard's control path — through a sharded connection.
func TestShardedErrorControl(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:    transport.HPI,
		Runtime:      RuntimeSharded,
		ErrorControl: errctl.SelectiveRepeat,
		FlowControl:  flowctl.Credit,
		SDUSize:      256,
		AckTimeout:   50 * time.Millisecond,
	})
	defer cleanup()

	for i := 0; i < 8; i++ {
		msg := bytes.Repeat([]byte{byte('a' + i)}, 300+i*700)
		errCh := make(chan error, 1)
		go func() { errCh <- conn.Send(msg) }()
		got, err := peer.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d corrupted: %d bytes, want %d", i, len(got), len(msg))
		}
		if err := <-errCh; err != nil {
			t.Fatalf("message %d send: %v", i, err)
		}
	}
}

// TestShardedGoroutinesStayFlat is the runtime's reason to exist: many
// open sharded HPI connections must cost O(shards) goroutines, not
// O(connections).
func TestShardedGoroutinesStayFlat(t *testing.T) {
	const conns = 256
	base := runtime.NumGoroutine()

	nw := NewNetwork()
	defer nw.Close()
	a, err := nw.NewSystem("flat-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.NewSystem("flat-b")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Connection, conns)
	go func() {
		for i := 0; i < conns; i++ {
			c, err := b.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	opts := Options{Interface: transport.HPI, Runtime: RuntimeSharded}
	for i := 0; i < conns; i++ {
		c, err := a.Connect("flat-b", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	for i := 0; i < conns; i++ {
		select {
		case c := <-accepted:
			defer c.Close()
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d connections accepted", i)
		}
	}

	// Two systems each run at most GOMAXPROCS shards plus a master
	// thread; everything beyond that slack is a per-connection
	// goroutine that should not exist.
	limit := base + 2*runtime.GOMAXPROCS(0) + 8
	if n := runtime.NumGoroutine(); n > limit {
		t.Fatalf("%d goroutines for %d sharded connections (baseline %d, limit %d): O(conns), want O(shards)",
			n, conns, base, limit)
	}
}

// TestInboxFanIn binds many sharded connections to one Inbox and
// serves them with a single worker — the accept-side pattern the
// sharded runtime exists for.
func TestInboxFanIn(t *testing.T) {
	for _, rt := range []Runtime{RuntimeThreaded, RuntimeSharded} {
		t.Run(rt.String(), func(t *testing.T) {
			const conns = 16
			nw := NewNetwork()
			defer nw.Close()
			a, _ := nw.NewSystem("fan-a-" + rt.String())
			b, _ := nw.NewSystem("fan-b-" + rt.String())

			ib := NewInbox(0)
			defer ib.Close()

			ready := make(chan struct{})
			go func() {
				for i := 0; i < conns; i++ {
					c, err := b.Accept()
					if err != nil {
						return
					}
					if err := c.BindInbox(ib); err != nil {
						t.Error(err)
					}
				}
				close(ready)
			}()

			clients := make([]*Connection, conns)
			opts := Options{Interface: transport.HPI, Runtime: rt}
			for i := range clients {
				c, err := a.Connect("fan-b-"+rt.String(), opts)
				if err != nil {
					t.Fatal(err)
				}
				clients[i] = c
			}
			<-ready

			// One echo worker serves every connection.
			go func() {
				for {
					im, err := ib.Recv()
					if err != nil {
						return
					}
					if err := im.Conn.Send(im.Msg.Data); err != nil {
						return
					}
				}
			}()

			errCh := make(chan error, conns)
			for i, c := range clients {
				go func(i int, c *Connection) {
					msg := []byte(fmt.Sprintf("fan-in %d", i))
					if err := c.Send(msg); err != nil {
						errCh <- err
						return
					}
					got, err := c.RecvTimeout(5 * time.Second)
					if err != nil {
						errCh <- fmt.Errorf("conn %d: %w", i, err)
						return
					}
					if !bytes.Equal(got, msg) {
						errCh <- fmt.Errorf("conn %d: echo %q, want %q", i, got, msg)
						return
					}
					errCh <- nil
				}(i, c)
			}
			for range clients {
				if err := <-errCh; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestShardedDeliveryBackpressure floods a sharded connection far past
// its delivery queue depth before the consumer reads anything: the
// overflow must park on the stall list (without wedging the shard) and
// drain, in order, once the consumer starts.
func TestShardedDeliveryBackpressure(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface: transport.HPI,
		Runtime:   RuntimeSharded,
	})
	defer cleanup()

	const msgs = deliveredQueueDepth + 200
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if err := conn.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// The shard must still be alive for other work while this
	// connection is stalled: a second connection's traffic flows.
	c2, p2, cleanup2 := newPairT(t, Options{Interface: transport.HPI, Runtime: RuntimeSharded})
	defer cleanup2()
	go c2.Send([]byte("unstalled"))
	if m, err := p2.RecvTimeout(5 * time.Second); err != nil || string(m) != "unstalled" {
		t.Fatalf("second connection blocked by first's backpressure: %q, %v", m, err)
	}

	for i := 0; i < msgs; i++ {
		m, err := peer.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("message %d/%d: %v", i+1, msgs, err)
		}
		if got := int(m[0]) | int(m[1])<<8; got != i {
			t.Fatalf("message %d out of order (got %d)", i, got)
		}
	}
}

// TestShardStats checks the pool's counters move and batching occurs.
func TestShardStats(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	a, _ := nw.NewSystem("stats-a")
	b, _ := nw.NewSystem("stats-b")
	if err := a.SetShards(2); err != nil {
		t.Fatal(err)
	}
	conn, err := a.Connect("stats-b", Options{Interface: transport.HPI, Runtime: RuntimeSharded, SDUSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := b.Accept()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	if err := conn.Send(bytes.Repeat([]byte("x"), 8*256)); err != nil {
		t.Fatal(err)
	}

	st := a.ShardStats()
	if st.Shards != 2 {
		t.Fatalf("Shards = %d, want 2", st.Shards)
	}
	if st.Conns != 1 {
		t.Fatalf("Conns = %d, want 1", st.Conns)
	}
	if st.Batches == 0 || st.BatchedPackets < 8 {
		t.Fatalf("batching counters did not move: %+v", st)
	}
	if err := a.SetShards(4); err == nil {
		t.Fatal("SetShards accepted after the pool started")
	}
}

// TestShardedHeartbeat covers both heartbeat outcomes on the sharded
// runtime: a silent peer is declared unreachable, and a healthy idle
// connection stays up (pongs flow through the shard loop).
func TestShardedHeartbeat(t *testing.T) {
	t.Run("silent-peer", func(t *testing.T) {
		nw := NewNetwork()
		defer nw.Close()
		sys, err := nw.NewSystem("hb-sharded")
		if err != nil {
			t.Fatal(err)
		}
		data, silentData := transport.HPIPair()
		ctrl, silentCtrl := transport.HPIPair()
		defer silentData.Close()
		defer silentCtrl.Close()

		opts := Options{
			Interface: transport.HPI,
			Runtime:   RuntimeSharded,
			Heartbeat: 20 * time.Millisecond,
		}.withDefaults()
		conn := newConnection(sys, "silent-peer", 1, opts, data, ctrl, true)
		defer conn.Close()

		_, err = conn.RecvTimeout(5 * time.Second)
		if !errors.Is(err, ErrPeerUnreachable) {
			t.Fatalf("err = %v, want ErrPeerUnreachable", err)
		}
	})
	t.Run("healthy-idle", func(t *testing.T) {
		conn, peer, cleanup := newPairT(t, Options{
			Interface: transport.HPI,
			Runtime:   RuntimeSharded,
			Heartbeat: 15 * time.Millisecond,
		})
		defer cleanup()
		time.Sleep(150 * time.Millisecond)
		errCh := make(chan error, 1)
		go func() { errCh <- conn.Send([]byte("still alive")) }()
		m, err := peer.RecvTimeout(2 * time.Second)
		if err != nil || string(m) != "still alive" {
			t.Fatalf("recv after idle: %q, %v", m, err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		if conn.Stats().ControlReceived == 0 {
			t.Fatal("no pongs observed during idle period")
		}
	})
}

// TestShardedInstrumentedSend checks the Table I trace stamps survive
// the shard path (queued → dequeued → transmitted → returned).
func TestShardedInstrumentedSend(t *testing.T) {
	conn, peer, cleanup := newPairT(t, Options{
		Interface:  transport.SCI,
		Runtime:    RuntimeSharded,
		Instrument: true,
	})
	defer cleanup()
	go func() {
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	tr, err := conn.SendInstrumented([]byte("trace me"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SessionOverhead() < 0 || tr.DataTransfer() < 0 {
		t.Fatalf("negative trace stages: %+v", tr)
	}
}
