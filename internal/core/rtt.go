package core

import (
	"sync"
	"time"
)

// rttEstimator adapts the retransmission timeout from observed
// acknowledgment round trips, Jacobson/Karels style:
//
//	srtt   ← (1-α)·srtt + α·sample         (α = 1/8)
//	rttvar ← (1-β)·rttvar + β·|srtt-sample| (β = 1/4)
//	rto    = srtt + 4·rttvar, clamped
//
// The paper fixes the retransmission interval per connection and notes
// the trade-off against "the available timer resolution" (§3.2);
// adaptive timers are the natural extension and are enabled with
// Options.AdaptiveTimeout. Samples from retransmitted batches are
// excluded (Karn's rule).
type rttEstimator struct {
	mu     sync.Mutex
	srtt   time.Duration
	rttvar time.Duration
	inited bool
}

// observe folds one acknowledgment round-trip sample in.
func (e *rttEstimator) observe(sample time.Duration) {
	if sample <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.inited {
		e.srtt = sample
		e.rttvar = sample / 2
		e.inited = true
		return
	}
	diff := e.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	e.rttvar += (diff - e.rttvar) / 4
	e.srtt += (sample - e.srtt) / 8
}

// timeout returns the current retransmission timeout, or fallback when
// no samples exist yet. The result is clamped to [min, fallback] so a
// mis-estimated RTT can never exceed the configured ceiling nor spin
// below timer resolution.
func (e *rttEstimator) timeout(fallback, min time.Duration) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.inited {
		return fallback
	}
	rto := e.srtt + 4*e.rttvar
	if rto < min {
		rto = min
	}
	if rto > fallback {
		rto = fallback
	}
	return rto
}

// snapshot reports the current estimate for tests and stats.
func (e *rttEstimator) snapshot() (srtt, rttvar time.Duration, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srtt, e.rttvar, e.inited
}

// minAdaptiveTimeout floors the adaptive RTO; Go timers are reliable
// well below this, but retransmitting more aggressively than 2 ms only
// wastes bandwidth on the simulated links this runtime drives.
const minAdaptiveTimeout = 2 * time.Millisecond

// RTT returns the connection's smoothed round-trip estimate (zero
// before the first acknowledgment). Only meaningful on connections
// with AdaptiveTimeout enabled.
func (c *Connection) RTT() time.Duration {
	srtt, _, ok := c.rtt.snapshot()
	if !ok {
		return 0
	}
	return srtt
}
