package core

import (
	"ncs/internal/netsim"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// Core-runtime telemetry (catalogue in internal/telemetry doc.go).
// The counters sit next to the per-connection stats they mirror: the
// stats stay per-connection diagnostics, the instruments aggregate the
// same events system-wide for export. Hot-path sites pass the
// connection or shard ID as the stripe hint so concurrent connections
// do not false-share.
var (
	mSendMsgs  = telemetry.NewCounter("core.conn.send_msgs_total")
	mSendSDUs  = telemetry.NewCounter("core.conn.send_sdus_total")
	mSendBytes = telemetry.NewCounter("core.conn.send_bytes_total")
	mRecvMsgs  = telemetry.NewCounter("core.conn.recv_msgs_total")
	mRecvSDUs  = telemetry.NewCounter("core.conn.recv_sdus_total")
	mRecvBytes = telemetry.NewCounter("core.conn.recv_bytes_total")

	// mRecvFastpath counts messages completed by the single-SDU
	// arrival shortcut (no session table, no reassembly);
	// mRecvSession counts messages that went through a reassembly
	// session. Their sum is core.conn.recv_msgs_total.
	mRecvFastpath = telemetry.NewCounter("core.recv.fastpath_total")
	mRecvSession  = telemetry.NewCounter("core.recv.session_total")

	// mShardCycles counts event-loop turns; mShardWakeups counts
	// doorbell-triggered loop wakeups (1:1 with cycles today, kept
	// separate so batched-cycle variants stay observable).
	mShardCycles  = telemetry.NewCounter("core.shard.cycles_total")
	mShardWakeups = telemetry.NewCounter("core.shard.wakeups_total")
	// mParkedConns is the number of sharded connections whose data path
	// is paused on a full delivery queue (stalled messages parked).
	mParkedConns = telemetry.NewGauge("core.shard.parked_conns")

	// mWheelSweeps counts timer-wheel slot advances; mWheelArmed is the
	// number of currently armed wheel timers.
	mWheelSweeps = telemetry.NewCounter("core.wheel.sweeps_total")
	mWheelArmed  = telemetry.NewGauge("core.wheel.armed")

	// mCoalesceDepth observes how many SDUs each vectored transport
	// write carried (threaded Send Thread batches and sharded per-cycle
	// flushes alike); mSendQDepth observes send-queue occupancy at
	// enqueue time.
	mCoalesceDepth = telemetry.NewHistogram("core.send.coalesce_depth")
	mSendQDepth    = telemetry.NewHistogram("core.send.sendq_depth")
)

// Telemetry is a System-wide observability snapshot: the memory and
// shard-pool summaries that previously lived behind separate accessors,
// plus a reading of every registered instrument across all layers
// (buf, flowctl, errctl, core, rpc, group).
type Telemetry struct {
	Mem     MemStats           `json:"mem"`
	Shards  ShardStats         `json:"shards"`
	Metrics telemetry.Snapshot `json:"metrics"`
}

// Telemetry captures the System's unified observability snapshot. Note
// that Metrics is process-global (instruments are package-level), so on
// a process hosting several Systems the counter section spans all of
// them, while Mem and Shards are this System's own.
func (s *System) Telemetry() Telemetry {
	return Telemetry{
		Mem:     s.memStats(),
		Shards:  s.shardStats(),
		Metrics: telemetry.Capture(),
	}
}

// ImpairStats reports the impairment decisions made on the data
// packets this connection has transmitted, when its data path rides a
// simulated link (HPI or ACI; false otherwise). The chaos harness
// reconciles these against the error-control instruments: every
// dropped data packet on a reliable connection must show up as at
// least one retransmission.
func (c *Connection) ImpairStats() (netsim.ImpairStats, bool) {
	return transport.ImpairStats(c.data)
}
