package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/packet"
	"ncs/internal/platform"
	"ncs/internal/transport"
)

// maxTrackedSessions bounds the inbound session table; the oldest
// completed sessions are pruned beyond this. A pruned session can no
// longer re-acknowledge duplicate retransmissions, which is safe: by the
// time 64 newer sessions completed, the peer's sender has long finished.
const maxTrackedSessions = 64

// deliveredQueueDepth is the number of fully reassembled messages that
// may wait for NCS_recv before the Receive Thread blocks (natural
// backpressure toward the data connection).
const deliveredQueueDepth = 128

// Message is a received user message. Lost reports SDUs missing from an
// unreliable (ErrorControl: None) transfer; it is always zero on
// reliable connections.
type Message struct {
	Data []byte
	Lost int
}

// sendItem is one SDU handed to the Send Thread, optionally carrying
// instrumentation state for Table I measurements. When ctrl is non-nil
// the item is an in-band control packet (InbandControl mode) instead of
// an SDU.
type sendItem struct {
	sdu   errctl.SDU
	ctrl  *packet.Control
	trace *SendTrace
	done  chan struct{} // non-nil: Send Thread closes after transmission
}

// recvSession wraps an inbound error-control session with its delivery
// state.
type recvSession struct {
	rcv       errctl.Receiver
	delivered bool
}

// Connection is one NCS point-to-point connection: a data connection
// and a control connection, the per-connection threads of Figure 4, and
// the flow/error control configuration chosen at establishment.
type Connection struct {
	sys  *System
	peer string
	id   uint32
	opts Options

	data transport.Conn
	ctrl transport.Conn

	fcSend flowctl.Sender
	fcRecv flowctl.Receiver

	sendQ chan sendItem
	ctrlQ chan packet.Control

	delivered chan Message

	mu       sync.Mutex
	sessions map[uint32]*recvSession
	sessAge  []uint32
	waiters  map[uint32]chan packet.Control

	nextSession atomic.Uint32

	// txCounter and rxCounter are connection-lifetime packet indices fed
	// to flow control, so that window/credit state spans sessions even
	// though SDU sequence numbers restart per message.
	txCounter atomic.Uint32
	rxCounter atomic.Uint32

	fastSendMu sync.Mutex // serialises fast-path senders
	fastBuf    []byte     // fast-path staging buffer (under fastSendMu)
	fastRecvMu sync.Mutex // serialises fast-path receivers

	closeOnce sync.Once
	closedCh  chan struct{}
	wg        sync.WaitGroup

	lastTrace atomic.Pointer[SendTrace]
	stats     statCounters
	rtt       rttEstimator

	lastHeard atomic.Int64 // unix nanos of the last inbound packet
	failed    atomic.Bool  // heartbeat declared the peer dead
}

func newConnection(sys *System, peer string, id uint32, opts Options, data, ctrl transport.Conn) *Connection {
	if opts.Platform != nil {
		data = platform.Tax(data, *opts.Platform)
		ctrl = platform.Tax(ctrl, *opts.Platform)
	}
	c := &Connection{
		sys:       sys,
		peer:      peer,
		id:        id,
		opts:      opts,
		data:      data,
		ctrl:      ctrl,
		fcSend:    flowctl.NewSender(opts.FlowControl, opts.FlowConfig),
		fcRecv:    flowctl.NewReceiver(opts.FlowControl, opts.FlowConfig),
		sendQ:     make(chan sendItem, 1),
		ctrlQ:     make(chan packet.Control, 16),
		delivered: make(chan Message, deliveredQueueDepth),
		sessions:  make(map[uint32]*recvSession),
		waiters:   make(map[uint32]chan packet.Control),
		closedCh:  make(chan struct{}),
	}
	c.lastHeard.Store(time.Now().UnixNano())
	switch {
	case opts.FastPath:
		// No threads: Send/Recv run the protocol inline (§4.2).
	case opts.InbandControl:
		// Ablation mode: control shares the data connection, so the
		// Send Thread carries both and the Receive Thread demultiplexes
		// — exactly the per-packet demux cost the split planes avoid.
		c.wg.Add(2)
		go c.sendThread()
		go c.recvThread()
	default:
		// Data plane: per-connection Send and Receive Threads; control
		// plane: per-connection Control Send/Receive Threads.
		c.wg.Add(4)
		go c.sendThread()
		go c.recvThread()
		go c.ctrlSendThread()
		go c.ctrlRecvThread()
	}
	if opts.Heartbeat > 0 && !opts.FastPath {
		c.wg.Add(1)
		go c.heartbeatThread()
	}
	return c
}

// heartbeatThread probes the peer and declares it unreachable after
// three silent intervals, failing the connection.
func (c *Connection) heartbeatThread() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			silent := time.Duration(time.Now().UnixNano() - c.lastHeard.Load())
			if silent > 3*c.opts.Heartbeat {
				c.failed.Store(true)
				// Close from a fresh goroutine: Close waits for this
				// thread via wg.Wait.
				go c.Close()
				return
			}
			c.enqueueCtrl(packet.Control{Type: packet.CtrlPing, ConnID: c.id})
		case <-c.closedCh:
			return
		}
	}
}

// closeErr maps connection shutdown to the caller-visible error.
func (c *Connection) closeErr() error {
	if c.failed.Load() {
		return ErrPeerUnreachable
	}
	return ErrConnClosed
}

// ID returns the connection identifier assigned at setup.
func (c *Connection) ID() uint32 { return c.id }

// Peer returns the remote system name.
func (c *Connection) Peer() string { return c.peer }

// Options returns the connection's configuration.
func (c *Connection) Options() Options { return c.opts }

// ---------------------------------------------------------------------------
// Send path (steps 1–4 of Figure 4).

// Send transmits msg reliably or unreliably according to the
// connection's error control configuration, blocking until the transfer
// completes (reliable) or is fully handed to the interface (unreliable).
func (c *Connection) Send(msg []byte) error {
	if c.opts.FastPath {
		return c.sendFast(msg, nil)
	}
	return c.sendThreaded(msg, nil)
}

func (c *Connection) sendThreaded(msg []byte, tr *SendTrace) error {
	if err := c.checkSendSize(msg); err != nil {
		return err
	}
	sess := c.nextSession.Add(1)
	snd := errctl.NewSender(c.opts.ErrorControl, msg, c.opts.SDUSize, c.id, sess)
	if tr != nil {
		tr.stamp(&tr.tHeader)
	}

	if snd.Done() {
		// Unreliable transfer: hand every SDU to the Send Thread; the
		// session completes as soon as the last is transmitted.
		if err := c.transmit(snd.Initial(), tr, true); err != nil {
			return err
		}
		c.stats.messagesSent.Add(1)
		return nil
	}

	ackCh := make(chan packet.Control, 4)
	c.mu.Lock()
	c.waiters[sess] = ackCh
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, sess)
		c.mu.Unlock()
	}()

	if err := c.transmit(snd.Initial(), tr, false); err != nil {
		return err
	}
	rto := func() time.Duration {
		if !c.opts.AdaptiveTimeout {
			return c.opts.AckTimeout
		}
		return c.rtt.timeout(c.opts.AckTimeout, minAdaptiveTimeout)
	}
	lastSend := time.Now()
	retransmitted := false // Karn's rule: skip samples after a retransmit
	timer := time.NewTimer(rto())
	defer timer.Stop()
	for {
		select {
		case ack := <-ackCh:
			if c.opts.AdaptiveTimeout && !retransmitted {
				c.rtt.observe(time.Since(lastSend))
			}
			rt, done, err := snd.OnAck(ack)
			if err != nil && !errors.Is(err, errctl.ErrSessionDone) {
				return err
			}
			if done {
				c.stats.messagesSent.Add(1)
				return nil
			}
			if len(rt) > 0 {
				if err := c.transmit(rt, nil, false); err != nil {
					return err
				}
				lastSend = time.Now()
				retransmitted = true
			}
			resetTimer(timer, rto())
		case <-timer.C:
			if err := c.transmit(snd.OnTimeout(), nil, false); err != nil {
				return err
			}
			lastSend = time.Now()
			retransmitted = true
			resetTimer(timer, rto())
		case <-c.closedCh:
			return ErrConnClosed
		}
	}
}

func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// transmit performs the Error-Control → Flow-Control → Send-Thread
// hand-off for a batch of SDUs. When sync is true it waits for the Send
// Thread to confirm the final SDU left the interface.
func (c *Connection) transmit(sdus []errctl.SDU, tr *SendTrace, sync bool) error {
	for i, sdu := range sdus {
		idx := c.txCounter.Add(1) - 1
		for {
			err := c.fcSend.AcquireTimeout(idx, c.opts.AckTimeout)
			if err == nil {
				break
			}
			if errors.Is(err, flowctl.ErrAcquireTimeout) {
				// On lossy links, dropped data packets consume credits
				// whose grants never return; resynchronise and retry.
				c.fcSend.Resync()
				continue
			}
			return ErrConnClosed
		}
		c.stats.sdusSent.Add(1)
		c.stats.bytesSent.Add(uint64(len(sdu.Payload)))
		if sdu.Header.Flags&packet.FlagRetransmit != 0 {
			c.stats.retransmissions.Add(1)
		}
		item := sendItem{sdu: sdu}
		if i == len(sdus)-1 {
			item.trace = tr
			if sync {
				item.done = make(chan struct{})
			}
		}
		if tr != nil && i == len(sdus)-1 {
			tr.stamp(&tr.tQueued)
		}
		select {
		case c.sendQ <- item:
		case <-c.closedCh:
			return ErrConnClosed
		}
		if item.done != nil {
			select {
			case <-item.done:
				if tr != nil {
					tr.stamp(&tr.tReturned)
				}
			case <-c.closedCh:
				return ErrConnClosed
			}
		}
	}
	return nil
}

func (c *Connection) checkSendSize(msg []byte) error {
	if max := c.data.MaxPacket(); max > 0 && c.opts.SDUSize+packet.DataHeaderSize > max {
		return ErrSendTooLarge
	}
	return nil
}

// sendThread is the per-connection Send Thread: it drains the message
// queue and performs only the data transfer for this connection.
func (c *Connection) sendThread() {
	defer c.wg.Done()
	buf := make([]byte, 0, c.opts.SDUSize+packet.DataHeaderSize)
	for {
		select {
		case item := <-c.sendQ:
			if item.trace != nil {
				item.trace.stamp(&item.trace.tDequeued)
			}
			if item.ctrl != nil {
				buf = item.ctrl.Marshal(buf[:0])
				c.stats.controlSent.Add(1)
			} else {
				buf = item.sdu.Header.Marshal(buf[:0])
				buf = append(buf, item.sdu.Payload...)
			}
			err := c.data.Send(buf)
			if item.trace != nil {
				item.trace.stamp(&item.trace.tTransmitted)
			}
			if item.done != nil {
				close(item.done)
			}
			if err != nil {
				// The connection is going down; Send callers see
				// ErrConnClosed via closedCh.
				return
			}
		case <-c.closedCh:
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Receive path (steps 5–10 of Figure 4).

// Recv blocks for the next fully received message.
func (c *Connection) Recv() ([]byte, error) {
	m, err := c.RecvMessage()
	return m.Data, err
}

// RecvMessage is Recv with loss metadata (relevant for unreliable
// connections).
func (c *Connection) RecvMessage() (Message, error) {
	if c.opts.FastPath {
		return c.recvFast(0)
	}
	select {
	case m := <-c.delivered:
		return m, nil
	case <-c.closedCh:
		// Drain anything completed before close.
		select {
		case m := <-c.delivered:
			return m, nil
		default:
			return Message{}, c.closeErr()
		}
	}
}

// RecvTimeout is Recv with a deadline.
func (c *Connection) RecvTimeout(d time.Duration) ([]byte, error) {
	m, err := c.RecvMessageTimeout(d)
	return m.Data, err
}

// RecvMessageTimeout is RecvMessage with a deadline — the combination
// media streams need: loss metadata plus a playout deadline for frames
// whose final segment never arrived.
func (c *Connection) RecvMessageTimeout(d time.Duration) (Message, error) {
	if c.opts.FastPath {
		return c.recvFast(d)
	}
	select {
	case m := <-c.delivered:
		return m, nil
	case <-c.closedCh:
		return Message{}, c.closeErr()
	case <-time.After(d):
		return Message{}, ErrRecvTimeout
	}
}

// recvThread is the per-connection Receive Thread: it reads the data
// connection and activates the flow- and error-control machinery.
func (c *Connection) recvThread() {
	defer c.wg.Done()
	for {
		raw, err := c.data.Recv()
		if err != nil {
			return
		}
		c.lastHeard.Store(time.Now().UnixNano())
		h, err := packet.UnmarshalDataHeader(raw)
		if err != nil {
			// In in-band mode the data connection also carries control
			// packets; demultiplex them here (the per-packet cost the
			// separate control connection eliminates).
			if c.opts.InbandControl {
				if ctl, cerr := packet.UnmarshalControl(raw); cerr == nil {
					body := make([]byte, len(ctl.Body))
					copy(body, ctl.Body)
					ctl.Body = body
					c.routeControl(ctl)
				}
			}
			continue
		}
		payload := raw[packet.DataHeaderSize:]
		if int(h.Length) <= len(payload) {
			payload = payload[:h.Length]
		}
		if m, ok := c.dispatchData(h, payload, c.enqueueCtrl); ok {
			select {
			case c.delivered <- m:
			case <-c.closedCh:
				return
			}
		}
	}
}

// dispatchData runs one arriving SDU through the receive-side flow and
// error control, emitting control packets via emit. It returns a
// completed message when the SDU finishes a session.
func (c *Connection) dispatchData(h packet.DataHeader, payload []byte, emit func(packet.Control) bool) (Message, bool) {
	// Step 8–9: the Flow Control Thread updates its state and returns
	// credit/ack information over the control connection. Flow control
	// sees the connection-lifetime arrival index, not the per-session
	// SDU sequence number.
	rxIdx := c.rxCounter.Add(1) - 1
	for _, ctl := range c.fcRecv.OnData(rxIdx) {
		ctl.ConnID = c.id
		ctl.SessionID = h.SessionID
		if !emit(ctl) {
			return Message{}, false
		}
	}

	c.stats.sdusReceived.Add(1)
	c.stats.bytesReceived.Add(uint64(len(payload)))

	// Step 10: the Error Control Thread reassembles and acknowledges.
	c.mu.Lock()
	rs, ok := c.sessions[h.SessionID]
	if !ok {
		rs = &recvSession{rcv: errctl.NewReceiver(c.opts.ErrorControl)}
		c.sessions[h.SessionID] = rs
		c.sessAge = append(c.sessAge, h.SessionID)
		c.pruneSessionsLocked()
	}
	c.mu.Unlock()

	acks, done := rs.rcv.OnData(h, payload)
	for _, a := range acks {
		a.ConnID = c.id
		a.SessionID = h.SessionID
		if !emit(a) {
			return Message{}, false
		}
	}
	if done && !rs.delivered {
		rs.delivered = true
		c.stats.messagesReceived.Add(1)
		return Message{Data: rs.rcv.Message(), Lost: rs.rcv.LostSDUs()}, true
	}
	return Message{}, false
}

func (c *Connection) pruneSessionsLocked() {
	for len(c.sessAge) > maxTrackedSessions {
		victim := c.sessAge[0]
		c.sessAge = c.sessAge[1:]
		if rs, ok := c.sessions[victim]; ok && rs.delivered {
			delete(c.sessions, victim)
		}
	}
}

// enqueueCtrl hands a control packet to the Control Send Thread (or,
// in in-band mode, to the Send Thread where it competes with data).
// It reports false when the connection closed.
func (c *Connection) enqueueCtrl(ctl packet.Control) bool {
	if c.opts.InbandControl {
		item := sendItem{ctrl: &ctl}
		select {
		case c.sendQ <- item:
			return true
		case <-c.closedCh:
			return false
		}
	}
	select {
	case c.ctrlQ <- ctl:
		return true
	case <-c.closedCh:
		return false
	}
}

// ctrlSendThread serialises control packets onto the control connection
// (the Control Send Thread of Figure 1).
func (c *Connection) ctrlSendThread() {
	defer c.wg.Done()
	buf := make([]byte, 0, 256)
	for {
		select {
		case ctl := <-c.ctrlQ:
			buf = ctl.Marshal(buf[:0])
			c.stats.controlSent.Add(1)
			if err := c.ctrl.Send(buf); err != nil {
				return
			}
		case <-c.closedCh:
			return
		}
	}
}

// ctrlRecvThread reads the control connection and dispatches: flow
// control updates go to the Flow Control machinery, acknowledgments to
// the waiting Error Control session (the Control Receive Thread).
func (c *Connection) ctrlRecvThread() {
	defer c.wg.Done()
	for {
		raw, err := c.ctrl.Recv()
		if err != nil {
			return
		}
		ctl, err := packet.UnmarshalControl(raw)
		if err != nil {
			continue
		}
		// Control bodies alias the transport buffer; copy before the
		// buffer escapes to another goroutine.
		body := make([]byte, len(ctl.Body))
		copy(body, ctl.Body)
		ctl.Body = body
		c.routeControl(ctl)
	}
}

func (c *Connection) routeControl(ctl packet.Control) {
	c.stats.controlReceived.Add(1)
	c.lastHeard.Store(time.Now().UnixNano())
	switch ctl.Type {
	case packet.CtrlPing:
		c.enqueueCtrl(packet.Control{Type: packet.CtrlPong, ConnID: c.id})
	case packet.CtrlPong:
		// lastHeard already refreshed; nothing else to do.
	case packet.CtrlCredit, packet.CtrlRate, packet.CtrlWinAck:
		c.fcSend.OnControl(ctl)
	case packet.CtrlAck, packet.CtrlNack:
		c.mu.Lock()
		w := c.waiters[ctl.SessionID]
		c.mu.Unlock()
		if w != nil {
			select {
			case w <- ctl:
			default:
				// The session is busy processing a previous ack; dropping
				// this one is safe — the sender's timer recovers.
			}
		}
	}
}

// ---------------------------------------------------------------------------

// LastTrace returns the most recent instrumented send breakdown, or nil.
func (c *Connection) LastTrace() *SendTrace { return c.lastTrace.Load() }

// SendInstrumented sends msg and captures the Table I stage breakdown.
// The connection must have Instrument enabled and use the threaded path.
func (c *Connection) SendInstrumented(msg []byte) (*SendTrace, error) {
	if c.opts.FastPath {
		return nil, ErrFastPathOnly
	}
	tr := newSendTrace()
	tr.stamp(&tr.tEnter)
	err := c.sendThreaded(msg, tr)
	tr.stamp(&tr.tExit)
	if err != nil {
		return nil, err
	}
	c.lastTrace.Store(tr)
	return tr, nil
}

// Close tears the connection down: both transport connections, the flow
// control state, and all four per-connection threads.
func (c *Connection) Close() error {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		c.fcSend.Close()
		c.fcRecv.Close()
		c.data.Close()
		c.ctrl.Close()
		c.wg.Wait()
	})
	return nil
}
